// A1 (ablation) — DESIGN.md design decision 2: "From-scratch ML on CPU,
// small frames". Sweeps the camera resolution and reports model quality,
// CPU training cost, and the simulated full-scale GPU cost, justifying the
// default 32x24 frames: quality saturates while compute keeps growing.
#include "bench_common.hpp"

#include "camera/camera.hpp"

#include "gpu/perf_model.hpp"
#include "util/table.hpp"

namespace {

using namespace autolearn;

void BM_RenderByResolution(benchmark::State& state) {
  const track::Track track = track::Track::paper_oval();
  camera::CameraConfig cfg;
  cfg.width = static_cast<std::size_t>(state.range(0));
  cfg.height = cfg.width * 3 / 4;
  camera::Camera cam(cfg, util::Rng(1));
  vehicle::CarState st;
  st.pos = track.position_at(1.0);
  st.heading = track.heading_at(1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cam.render(track, st));
  }
}
BENCHMARK(BM_RenderByResolution)
    ->Arg(24)
    ->Arg(32)
    ->Arg(64)
    ->Unit(benchmark::kMicrosecond);

void reproduce() {
  const track::Track track = track::Track::paper_oval();
  util::TablePrinter table({"frame", "val MAE", "CPU train (s)",
                            "model params", "V100 (s, sim)"});
  for (std::size_t w : {24u, 32u, 48u, 64u}) {
    const std::size_t h = w * 3 / 4;
    data::CollectOptions copt;
    copt.duration_s = 90.0;
    copt.img_w = w;
    copt.img_h = h;
    copt.expert.steering_noise = 0.08;
    const auto dir = bench::work_root() / ("framesize_" + std::to_string(w));
    std::filesystem::remove_all(dir);
    data::collect_session(track, data::DataPath::Sample, copt, dir);
    data::Tub tub(dir);
    auto samples = data::build_samples(tub.read_all(), {});
    auto [train, val] = data::split_train_val(std::move(samples), 0.15);

    ml::ModelConfig mcfg;
    mcfg.img_w = w;
    mcfg.img_h = h;
    auto model = ml::make_model(ml::ModelType::Linear, mcfg);
    ml::TrainOptions topt;
    topt.epochs = 6;
    const ml::TrainResult result = ml::fit(*model, train, val, topt);
    gpu::TrainingWorkload load;
    load.forward_flops = result.forward_flops;
    load.samples = result.samples_seen;
    table.add_row(
        {std::to_string(w) + "x" + std::to_string(h),
         util::TablePrinter::num(ml::steering_mae(*model, val), 3),
         util::TablePrinter::num(result.wall_seconds, 1),
         util::TablePrinter::num(
             static_cast<long long>(model->num_parameters())),
         util::TablePrinter::num(
             gpu::training_time_s(gpu::device("V100"), load), 3)});
  }
  table.print(std::cout, "A1: camera resolution ablation");
  std::cout << "\nShape to check: steering MAE saturates by 32x24 while "
               "training cost\nkeeps growing with the pixel count.\n";
}

}  // namespace

int main(int argc, char** argv) {
  return autolearn::bench::run_bench_main(argc, argv, reproduce);
}
