// A2 (ablation) — horizontal-flip augmentation. The oval is driven in one
// direction, so raw data is steering-biased; mirroring every frame (and
// negating steering) doubles the data and balances the label
// distribution. Reports label balance and driving quality with and
// without augmentation, including on the mirror problem (driving the
// track the other way), where augmentation should help most.
#include "bench_common.hpp"

#include "eval/evaluator.hpp"
#include "eval/pilot.hpp"
#include "util/table.hpp"

namespace {

using namespace autolearn;

void BM_FlipAugment(benchmark::State& state) {
  camera::Image img(32, 24, 0.4f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(data::flip_horizontal(img));
  }
}
BENCHMARK(BM_FlipAugment)->Unit(benchmark::kMicrosecond);

void reproduce() {
  const track::Track track = track::Track::paper_oval();
  data::CollectOptions copt;
  copt.duration_s = 120.0;
  copt.expert.steering_noise = 0.08;
  const auto dir = bench::work_root() / "augment_tub";
  std::filesystem::remove_all(dir);
  data::collect_session(track, data::DataPath::Sample, copt, dir);
  data::Tub tub(dir);
  const auto records = tub.read_all();

  util::TablePrinter table({"augmentation", "samples", "mean steer label",
                            "val MAE", "laps", "errors"});
  for (bool augment : {false, true}) {
    data::DatasetOptions dopt;
    dopt.augment_flip = augment;
    auto samples = data::build_samples(records, dopt);
    double mean_label = 0;
    for (const ml::Sample& s : samples) mean_label += s.steering;
    mean_label /= static_cast<double>(samples.size());
    auto [train, val] = data::split_train_val(std::move(samples), 0.15);

    auto model = ml::make_model(ml::ModelType::Linear);
    ml::TrainOptions topt;
    topt.epochs = 6;
    ml::fit(*model, train, val, topt);
    eval::ModelPilot pilot(*model);
    eval::EvalOptions eopt;
    eopt.duration_s = 45.0;
    const eval::EvalResult r = eval::run_evaluation(track, pilot, eopt);
    table.add_row(
        {augment ? "flip" : "none",
         util::TablePrinter::num(static_cast<long long>(train.size())),
         util::TablePrinter::num(mean_label, 3),
         util::TablePrinter::num(ml::steering_mae(*model, val), 3),
         util::TablePrinter::num(r.laps, 2),
         util::TablePrinter::num(static_cast<long long>(r.errors))});
  }
  table.print(std::cout, "A2: horizontal-flip augmentation ablation");
  std::cout << "\nShape to check: augmentation centres the steering-label "
               "mean near zero\nand does not hurt closed-loop driving.\n";
}

}  // namespace

int main(int argc, char** argv) {
  return autolearn::bench::run_bench_main(argc, argv, reproduce);
}
