// A3 (ablation) — the hybrid placement's staleness threshold (DESIGN.md
// design decision 1 / core::ContinuumOptions::hybrid_staleness_s): how old
// may a cloud command be before the edge model takes over? Too small and
// the hybrid never uses the better cloud model; too large and it acts on
// stale commands. Sweeps the threshold at a fixed RTT and reports cloud
// usage and driving quality.
#include "bench_common.hpp"

#include "core/continuum.hpp"
#include "eval/evaluator.hpp"
#include "util/table.hpp"

namespace {

using namespace autolearn;

void BM_PlacementLatency(benchmark::State& state) {
  core::ContinuumOptions copt;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::placement_latency_s(
        core::Placement::Cloud, copt, 2'000'000, 40'000'000));
  }
}
BENCHMARK(BM_PlacementLatency)->Unit(benchmark::kNanosecond);

void reproduce() {
  const track::Track track = track::Track::paper_oval();
  vehicle::ExpertConfig driver;
  driver.steering_noise = 0.08;
  const bench::PreparedData data =
      bench::prepare_data(track, data::DataPath::Sample, 120.0, driver);
  std::cout << "Training cloud (linear) and edge (inferred) models...\n";
  bench::TrainedModel cloud_model =
      bench::train_model(ml::ModelType::Linear, data, 8);
  // Same weak edge fallback as E7: small, briefly trained, conservative.
  ml::ModelConfig edge_cfg;
  edge_cfg.inferred_throttle_base = 0.30;
  edge_cfg.inferred_throttle_gain = 0.18;
  bench::TrainedModel edge_model =
      bench::train_model(ml::ModelType::Inferred, data, 2, edge_cfg);

  util::TablePrinter table({"RTT (ms)", "staleness (ms)", "cloud usage",
                            "laps", "errors", "score"});
  for (double rtt_ms : {120.0, 400.0}) {
    for (double staleness_ms : {60.0, 150.0, 500.0}) {
      core::ContinuumOptions copt;
      copt.network_rtt_s = rtt_ms / 1000.0;
      copt.hybrid_staleness_s = staleness_ms / 1000.0;
      copt.flops_scale = 1500.0;  // full-scale DonkeyCar deployment
      core::HybridPilot pilot(*edge_model.model, *cloud_model.model, copt,
                              util::Rng(31));
      eval::EvalOptions eopt;
      eopt.duration_s = 45.0;
      eopt.real_profiles = true;
      eopt.command_latency_s = core::placement_latency_s(
          core::Placement::Hybrid, copt,
          edge_model.model->flops_per_sample(),
          cloud_model.model->flops_per_sample());
      const eval::EvalResult r = eval::run_evaluation(track, pilot, eopt);
      table.add_row(
          {util::TablePrinter::num(rtt_ms, 0),
           util::TablePrinter::num(staleness_ms, 0),
           util::TablePrinter::num(pilot.cloud_usage(), 2),
           util::TablePrinter::num(r.laps, 2),
           util::TablePrinter::num(static_cast<long long>(r.errors)),
           util::TablePrinter::num(r.score(), 3)});
    }
  }
  table.print(std::cout, "A3: hybrid staleness-threshold ablation");
  std::cout << "\nShape to check: a threshold below the RTT fences the "
               "cloud out entirely\n(weak edge model drives); at a fast RTT "
               "a moderate threshold admits the\nbetter cloud commands, "
               "while at a slow RTT a generous threshold lets\nstale cloud "
               "commands degrade driving below the edge fallback.\n";
}

}  // namespace

int main(int argc, char** argv) {
  return autolearn::bench::run_bench_main(argc, argv, reproduce);
}
