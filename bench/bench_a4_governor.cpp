// A4 — the reliability study the module seeded (Fowler et al., SC'23
// poster: "Road To Reliability: Optimizing Self-Driving Consistency With
// Real-Time Speed Data"): closing a speed loop around the pilot trades a
// little raw pace for repeatable laps. Compares ungoverned driving against
// the speed governor at several targets, on the noisy real-car profiles.
#include "bench_common.hpp"

#include "core/speed_governor.hpp"
#include "cv/pilots.hpp"
#include "eval/evaluator.hpp"
#include "util/table.hpp"

namespace {

using namespace autolearn;

void BM_GovernorStep(benchmark::State& state) {
  cv::LineFollowPilot inner;
  core::SpeedGovernedPilot pilot(inner);
  camera::Image frame(32, 24, 0.4f);
  pilot.set_measured_speed(1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pilot.act(frame));
  }
}
BENCHMARK(BM_GovernorStep)->Unit(benchmark::kMicrosecond);

void reproduce() {
  const track::Track track = track::Track::paper_oval();
  eval::EvalOptions opt;
  opt.duration_s = 120.0;
  opt.real_profiles = true;

  util::TablePrinter table({"pilot", "target (m/s)", "mean speed", "laps",
                            "errors", "lap stddev (s)"});
  {
    cv::LineFollowPilot raw;
    const eval::EvalResult r = eval::run_evaluation(track, raw, opt);
    table.add_row({"line-follow (ungoverned)", "-",
                   util::TablePrinter::num(r.mean_speed, 2),
                   util::TablePrinter::num(r.laps, 2),
                   util::TablePrinter::num(static_cast<long long>(r.errors)),
                   util::TablePrinter::num(core::lap_time_stddev(r), 2)});
  }
  for (double target : {0.9, 1.1, 1.3}) {
    cv::LineFollowPilot inner;
    core::GovernorConfig cfg;
    cfg.target_speed = target;
    core::SpeedGovernedPilot pilot(inner, cfg);
    const eval::EvalResult r =
        core::run_governed_evaluation(track, pilot, opt);
    table.add_row({"line-follow + governor",
                   util::TablePrinter::num(target, 1),
                   util::TablePrinter::num(r.mean_speed, 2),
                   util::TablePrinter::num(r.laps, 2),
                   util::TablePrinter::num(static_cast<long long>(r.errors)),
                   util::TablePrinter::num(core::lap_time_stddev(r), 2)});
  }
  table.print(std::cout,
              "A4: lap consistency with real-time speed data (Fowler poster)");
  std::cout << "\nShape to check: the governed rows hold their target speed "
               "and post a\nlap-time stddev no worse than the ungoverned "
               "pilot's.\n";
}

}  // namespace

int main(int argc, char** argv) {
  return autolearn::bench::run_bench_main(argc, argv, reproduce);
}
