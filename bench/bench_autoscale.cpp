// Metrics-driven autoscaler benchmark: what elastic sharding buys and
// what it refuses to do.
//
// Two measurements, both simulated on the virtual clock (deterministic:
// same seed, same JSON):
//   1. steady — a fleet riding comfortably inside the autoscaler's target
//      bands for the whole run: the control loop must issue ZERO scale
//      events (hysteresis holds against Poisson arrival noise).
//   2. spike — the same fleet under a 4x offered-load spike mid-run,
//      once with the scaler disabled (the single shard saturates and
//      sheds) and once enabled (the scaler grows the ring, absorbs the
//      spike, and the post-spike p99 queue latency returns to the
//      steady-state band). The run must finish with ZERO failed
//      requests and materially less shed than the fixed fleet.
//
// Writes BENCH_autoscale.json (override with --out=PATH). `--smoke`
// shrinks the workload so the binary doubles as a ctest smoke test
// (`ctest -L scale`).
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "ml/driving_model.hpp"
#include "serve/model_registry.hpp"
#include "serve/service.hpp"
#include "util/event_queue.hpp"
#include "util/json.hpp"

namespace autolearn::bench {
namespace {

struct ScaleConfig {
  double duration_s = 4.0;
  bool scaler = true;
  bool spike = false;       // 4x offered load for the middle half
  double spike_factor = 4.0;
};

serve::FleetOptions fleet_options(const ScaleConfig& cfg) {
  serve::FleetOptions opt;
  opt.cars = 16;
  opt.shards = 1;
  opt.duration_s = cfg.duration_s;
  opt.mean_interarrival_s = 0.02;
  opt.batcher.max_batch = 8;
  opt.batcher.max_delay_s = 0.01;
  opt.placement = core::Placement::OnDevice;
  // Price the model so ONE shard rides comfortably at the base load but
  // saturates under the 4x spike — the scaler has real work to do.
  opt.continuum.flops_scale = 30.0;
  opt.queue_budget = 24;
  opt.seed = 11;
  opt.autoscaler.enabled = cfg.scaler;
  opt.autoscaler.sample_interval_s = 0.02;
  // The batcher legitimately holds up to max_batch (8/24 = 0.33 of the
  // budget) while a batch forms, so the high band sits ABOVE that natural
  // occupancy: steady load must produce zero scale events.
  opt.autoscaler.queue_high = 0.50;
  opt.autoscaler.queue_low = 0.20;
  opt.autoscaler.breach_samples = 2;
  opt.autoscaler.idle_samples = 10;
  opt.autoscaler.cooldown_s = 0.1;
  opt.autoscaler.min_shards = 1;
  opt.autoscaler.max_shards = 4;
  if (cfg.spike) {
    opt.load_spikes.push_back(
        {0.25 * cfg.duration_s, 0.40 * cfg.duration_s, cfg.spike_factor});
  }
  return opt;
}

serve::ServeReport run_fleet(const ScaleConfig& cfg) {
  util::EventQueue queue;
  serve::ModelRegistry registry;
  registry.publish(std::shared_ptr<ml::DrivingModel>(
                       ml::make_model(ml::ModelType::Linear)),
                   "bench");
  serve::FleetService service(queue, registry, fleet_options(cfg));
  return service.run();
}

/// p99 of batcher queueing delay over completed requests dispatched in
/// [from, to) — isolates the spike window from the recovered tail.
double windowed_p99(const serve::ServeReport& r, double from, double to) {
  std::vector<double> waits;
  for (const auto& rec : r.records) {
    if (rec.shed || rec.t_dispatch < from || rec.t_dispatch >= to) continue;
    waits.push_back(rec.queued_s());
  }
  if (waits.empty()) return 0.0;
  std::sort(waits.begin(), waits.end());
  const double pos = 0.99 * static_cast<double>(waits.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, waits.size() - 1);
  return waits[lo] + (pos - static_cast<double>(lo)) * (waits[hi] - waits[lo]);
}

util::Json report_row(const serve::ServeReport& r) {
  util::Json row = util::Json::object();
  row.set("requests", r.requests);
  row.set("completed", r.completed);
  row.set("shed", r.shed);
  row.set("failed", r.requests - r.completed - r.shed);
  row.set("throughput_rps", r.throughput_rps);
  row.set("queued_p50_s", r.queued_quantile_s(0.50));
  row.set("queued_p99_s", r.queued_quantile_s(0.99));
  row.set("initial_shards", r.initial_shards);
  row.set("peak_shards", r.shards);
  row.set("final_shards", r.final_shards);
  row.set("scale_ups", r.scale_ups);
  row.set("scale_downs", r.scale_downs);
  util::Json events = util::Json::array();
  for (const auto& e : r.scale_events) {
    util::Json ev = util::Json::object();
    ev.set("t", e.t);
    ev.set("up", e.up);
    ev.set("from", e.from_shards);
    ev.set("to", e.to_shards);
    ev.set("moved_cars", e.moved_cars);
    ev.set("drained", e.drained);
    ev.set("reason", e.reason);
    events.push_back(std::move(ev));
  }
  row.set("scale_events", std::move(events));
  return row;
}

int run(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_autoscale.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else {
      std::cerr << "usage: bench_autoscale [--smoke] [--out=PATH]\n";
      return 1;
    }
  }
  std::cout << "bench_autoscale" << (smoke ? " (smoke mode)" : "") << "\n";
  const double duration = smoke ? 1.0 : 4.0;

  util::Json doc = util::Json::object();
  doc.set("bench", "autoscale");
  doc.set("smoke", smoke);
  std::size_t total_requests = 0;

  // --- 1: steady load inside the bands — the scaler must sit still --------
  ScaleConfig steady_cfg;
  steady_cfg.duration_s = duration;
  const serve::ServeReport steady = run_fleet(steady_cfg);
  total_requests += steady.requests;
  std::cout << "steady: " << steady.scale_events.size()
            << " scale event(s) over " << duration << " s, queued p99 "
            << steady.queued_quantile_s(0.99) << " s\n";
  doc.set("steady", report_row(steady));

  // --- 2: 4x spike, fixed fleet vs autoscaled ------------------------------
  ScaleConfig fixed_cfg;
  fixed_cfg.duration_s = duration;
  fixed_cfg.spike = true;
  fixed_cfg.scaler = false;
  ScaleConfig scaled_cfg = fixed_cfg;
  scaled_cfg.scaler = true;
  const serve::ServeReport fixed = run_fleet(fixed_cfg);
  const serve::ServeReport scaled = run_fleet(scaled_cfg);
  total_requests += fixed.requests + scaled.requests;

  const double spike_at = 0.25 * duration;
  const double spike_end = spike_at + 0.40 * duration;
  const double p99_during = windowed_p99(scaled, spike_at, spike_end);
  const double p99_after = windowed_p99(scaled, spike_end + 0.2 * duration,
                                        duration + 1.0);
  const double p99_base = windowed_p99(scaled, 0.0, spike_at);

  util::Json spike_doc = util::Json::object();
  spike_doc.set("fixed", report_row(fixed));
  spike_doc.set("scaled", report_row(scaled));
  spike_doc.set("scaled_p99_before_s", p99_base);
  spike_doc.set("scaled_p99_during_s", p99_during);
  spike_doc.set("scaled_p99_after_s", p99_after);
  spike_doc.set("shed_ratio_fixed_over_scaled",
                scaled.shed > 0
                    ? static_cast<double>(fixed.shed) /
                          static_cast<double>(scaled.shed)
                    : static_cast<double>(fixed.shed));
  std::cout << "4x spike, fixed 1-shard fleet: " << fixed.shed << " shed, "
            << (fixed.requests - fixed.completed - fixed.shed)
            << " failed, queued p99 " << fixed.queued_quantile_s(0.99)
            << " s\n";
  std::cout << "4x spike, autoscaled:          " << scaled.shed << " shed, "
            << (scaled.requests - scaled.completed - scaled.shed)
            << " failed, " << scaled.scale_ups << " up / "
            << scaled.scale_downs << " down, peak " << scaled.shards
            << " shards\n";
  for (const auto& e : scaled.scale_events)
    std::cout << "  t=" << e.t << " " << (e.up ? "up" : "down") << " "
              << e.from_shards << "->" << e.to_shards << " (moved "
              << e.moved_cars << ", drained " << e.drained << "): "
              << e.reason << "\n";
  std::cout << "  p99 before/during/after spike: " << p99_base << " / "
            << p99_during << " / " << p99_after << " s\n";
  doc.set("spike", std::move(spike_doc));
  doc.set("total_requests", total_requests);

  std::ofstream f(out_path);
  if (!f) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  f << doc.dump(2) << "\n";
  std::cout << "wrote " << out_path << " (" << total_requests
            << " simulated requests)\n";
  return 0;
}

}  // namespace
}  // namespace autolearn::bench

int main(int argc, char** argv) { return autolearn::bench::run(argc, argv); }
