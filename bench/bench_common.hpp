// Shared helpers for the experiment benches (E1-E12, DESIGN.md §3).
//
// Every bench binary follows the same pattern: google-benchmark
// microbenchmarks for the hot primitive the experiment rests on, then a
// reproduction pass that regenerates the paper-style table through
// util::TablePrinter. Collected tubs are cached under the system temp
// directory keyed by their parameters so repeated bench runs are fast.
#pragma once

#include <benchmark/benchmark.h>

#include <filesystem>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "data/collector.hpp"
#include "data/dataset.hpp"
#include "data/tubclean.hpp"
#include "data/tub.hpp"
#include "ml/trainer.hpp"
#include "track/track.hpp"

namespace autolearn::bench {

inline std::filesystem::path work_root() {
  const auto p = std::filesystem::temp_directory_path() / "autolearn_bench";
  std::filesystem::create_directories(p);
  return p;
}

/// Collects (or reuses) a session tub and returns train/val samples.
struct PreparedData {
  std::vector<ml::Sample> train;
  std::vector<ml::Sample> val;
  data::CollectStats stats;
};

inline PreparedData prepare_data(const track::Track& track,
                                 data::DataPath path, double duration_s,
                                 const vehicle::ExpertConfig& driver = {},
                                 std::uint64_t seed = 1,
                                 bool clean = true) {
  data::CollectOptions copt;
  copt.duration_s = duration_s;
  copt.seed = seed;
  copt.expert = driver;
  const auto dir = work_root() /
                   (track.name() + "_" + data::to_string(path) + "_" +
                    std::to_string(static_cast<int>(duration_s)) + "_" +
                    std::to_string(seed) + "_" +
                    std::to_string(static_cast<int>(driver.mistake_rate)) +
                    "_" + std::to_string(clean));
  std::filesystem::remove_all(dir);
  PreparedData out;
  out.stats = data::collect_session(track, path, copt, dir);
  data::Tub tub(dir);
  if (clean) data::review_clean(tub);
  auto samples = data::build_samples(tub.read_all(), {});
  auto [train, val] = data::split_train_val(std::move(samples), 0.15, seed);
  out.train = std::move(train);
  out.val = std::move(val);
  return out;
}

/// Trains a fresh model of the given type on prepared data.
struct TrainedModel {
  std::unique_ptr<ml::DrivingModel> model;
  ml::TrainResult result;
  double steering_mae = 0.0;
};

inline TrainedModel train_model(ml::ModelType type, const PreparedData& data,
                                std::size_t epochs = 6,
                                const ml::ModelConfig& config = {}) {
  TrainedModel out;
  out.model = ml::make_model(type, config);
  ml::TrainOptions opt;
  opt.epochs = epochs;
  out.result = ml::fit(*out.model, data.train, data.val, opt);
  out.steering_mae = ml::steering_mae(*out.model, data.val);
  return out;
}

/// Runs google-benchmark then the experiment's reproduction table.
inline int run_bench_main(int argc, char** argv,
                          const std::function<void()>& reproduce) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  reproduce();
  return 0;
}

}  // namespace autolearn::bench
