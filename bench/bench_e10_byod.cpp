// E10 — §3.5 "zero to ready": "This allows a student to launch a container
// on the car's Raspberry Pi using a Docker image which pre-installs all
// DonkeyCar dependencies simply by executing one cell in the corresponding
// Jupyter notebook; this provides a 'zero to ready' configuration pathway
// with minimum time and effort."
//
// Compares three orchestration paths to a working DonkeyCar environment:
//   manual          student installs everything on the Pi by hand
//   BYOD+notebook   the paper's path: enrol, boot, one-cell container
//   byod cached     the same car the second time (image already pulled)
// plus the datacenter path (lease + bare-metal trainer image).
//
// Microbenchmark: lease-request throughput on the full inventory.
#include "bench_common.hpp"

#include "edge/container.hpp"
#include "edge/registry.hpp"
#include "testbed/deployment.hpp"
#include "testbed/inventory.hpp"
#include "testbed/lease.hpp"
#include "util/table.hpp"
#include "workflow/notebook.hpp"

namespace {

using namespace autolearn;

void BM_LeaseRequest(benchmark::State& state) {
  const testbed::Inventory inv = testbed::Inventory::chameleon();
  double start = 0;
  for (auto _ : state) {
    testbed::LeaseManager lm(inv);
    benchmark::DoNotOptimize(
        lm.request_on_demand("p", "gpu_rtx6000", 1, start, 3600));
    start += 1;
  }
}
BENCHMARK(BM_LeaseRequest)->Unit(benchmark::kMicrosecond);

void reproduce() {
  util::TablePrinter table(
      {"path", "student steps", "simulated time (min)", "notes"});

  // --- Manual path: timings from the DonkeyCar docs' install steps -----
  {
    const double manual_minutes =
        12      // flash stock OS
        + 10    // network + ssh setup
        + 45    // apt + pip dependency builds on the Pi
        + 15    // donkeycar install + calibration config
        + 8;    // camera + joystick setup
    table.add_row({"manual install on the Pi", "23",
                   util::TablePrinter::num(manual_minutes, 0),
                   "error-prone, per-car"});
  }

  // --- BYOD + notebook path (simulated end-to-end) ---------------------
  auto byod_run = [&](bool cached, const char* label, const char* notes) {
    util::EventQueue clock;
    edge::EdgeRegistry registry(clock);
    edge::ContainerService containers(registry, clock);
    // Student steps are notebook cells: register, flash, boot, launch.
    workflow::Notebook nb("zero-to-ready");
    nb.add_cell("register car", [&] {
      return registry.register_device("pi-01", "CHI-edu-1");
    });
    nb.add_cell("flash SD image", [&] {
      registry.flash_device("pi-01");
      return "flashed";
    });
    double ready_at = -1;
    nb.add_cell("boot + wait", [&] {
      registry.boot_device("pi-01");
      clock.run_until(clock.now() + 60);
      return std::string("device ") +
             edge::to_string(registry.device("pi-01").state);
    });
    nb.add_cell("launch DonkeyCar container", [&] {
      if (cached) {
        // Simulate a pre-seeded image cache via a prior launch.
        const auto warm = containers.launch(
            "pi-01", "CHI-edu-1", edge::ContainerSpec::autolearn_car());
        clock.run();
        containers.stop(warm);
      }
      const double t0 = clock.now();
      containers.launch("pi-01", "CHI-edu-1",
                        edge::ContainerSpec::autolearn_car());
      clock.run();
      ready_at = clock.now() - t0;
      return "running";
    });
    const std::size_t ok = nb.run_all();
    const double total_min = clock.now() / 60.0;
    table.add_row({label, util::TablePrinter::num(static_cast<long long>(ok)),
                   util::TablePrinter::num(cached ? ready_at / 60.0 + 1.0
                                                  : total_min,
                                           1),
                   notes});
  };
  byod_run(false, "BYOD + notebook (first launch)", "one cell per step");
  byod_run(true, "BYOD + notebook (image cached)", "container reuse");

  // --- Datacenter trainer path -----------------------------------------
  {
    util::EventQueue clock;
    const testbed::Inventory inv = testbed::Inventory::chameleon();
    testbed::LeaseManager lm(inv);
    testbed::DeploymentService ds(lm, clock);
    const auto lease = lm.request_on_demand("CHI-edu-1", "gpu_v100", 1,
                                            clock.now(), 7200);
    lm.tick(clock.now());
    ds.deploy(*lease, testbed::ImageSpec::autolearn_trainer());
    clock.run();
    table.add_row({"GPU trainer node (lease+deploy)", "2",
                   util::TablePrinter::num(clock.now() / 60.0, 1),
                   "bare-metal provision dominates"});
  }

  table.print(std::cout, "E10: zero-to-ready configuration paths (§3.5)");
  std::cout << "\nShape to check: the BYOD/notebook path needs an order of "
               "magnitude\nless student time (and fewer steps) than the "
               "manual install.\n";
}

}  // namespace

int main(int argc, char** argv) {
  return autolearn::bench::run_bench_main(argc, argv, reproduce);
}
