// E11 — §3.2 resource management: "All hardware is available either
// on-demand or via advance reservations so that users can reserve required
// resources ahead of time, for example, to manage resource scarcity or to
// guarantee resource availability at a specific time slot for a class or a
// demonstration."
//
// Drives the lease calendar with a randomized multi-project load and
// reports grant/conflict rates and utilization per node type — then shows
// that an advance reservation made early survives a later on-demand storm
// while the same class request made late is rejected.
//
// Microbenchmark: availability query under a loaded calendar.
#include "bench_common.hpp"

#include "testbed/inventory.hpp"
#include "testbed/lease.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace autolearn;

void BM_AvailabilityQuery(benchmark::State& state) {
  const testbed::Inventory inv = testbed::Inventory::chameleon();
  testbed::LeaseManager lm(inv);
  util::Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    lm.request_on_demand("p" + std::to_string(i % 10), "gpu_rtx6000", 1,
                         rng.uniform(0, 86400), 3600);
  }
  double t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lm.available("gpu_rtx6000", t, t + 3600));
    t += 13;
  }
}
BENCHMARK(BM_AvailabilityQuery)->Unit(benchmark::kMicrosecond);

void reproduce() {
  const testbed::Inventory inv = testbed::Inventory::chameleon();

  // --- randomized load across a simulated day ----------------------------
  util::TablePrinter table({"node type", "nodes", "requests", "granted",
                            "conflict rate", "utilization"});
  for (const char* type : {"gpu_rtx6000", "gpu_v100", "gpu_a100"}) {
    testbed::LeaseManager lm(inv);
    util::Rng rng(42);
    const int requests = 300;
    int granted = 0;
    for (int i = 0; i < requests; ++i) {
      testbed::LeaseRequest req;
      req.project_id = "proj-" + std::to_string(i % 25);
      req.node_type = type;
      req.count = static_cast<std::size_t>(rng.uniform_int(1, 2));
      req.start = rng.uniform(0, 86400);
      req.duration = rng.uniform(1800, 14400);
      granted += lm.request(req).has_value();
    }
    table.add_row(
        {type,
         util::TablePrinter::num(
             static_cast<long long>(inv.count_of_type(type))),
         util::TablePrinter::num(static_cast<long long>(requests)),
         util::TablePrinter::num(static_cast<long long>(granted)),
         util::TablePrinter::num(
             1.0 - static_cast<double>(granted) / requests, 3),
         util::TablePrinter::num(lm.utilization(type, 0, 86400), 3)});
  }
  table.print(std::cout, "E11: lease calendar under randomized load");

  // --- the advance-reservation guarantee ---------------------------------
  testbed::LeaseManager lm(inv);
  testbed::LeaseRequest klass;
  klass.project_id = "CHI-edu-class";
  klass.node_type = "gpu_a100";
  klass.count = 4;
  klass.start = 4 * 3600;  // class this afternoon
  klass.duration = 7200;
  const bool advance_granted = lm.request(klass).has_value();
  // An on-demand storm arrives before class time.
  util::Rng rng(9);
  int storm_granted = 0;
  for (int i = 0; i < 60; ++i) {
    storm_granted += lm.request_on_demand("walkin-" + std::to_string(i),
                                          "gpu_a100", 1,
                                          rng.uniform(0, 8 * 3600),
                                          rng.uniform(1800, 7200))
                         .has_value();
  }
  // The same class request made after the storm is now a conflict.
  testbed::LeaseManager lm_late(inv);
  for (int i = 0; i < 60; ++i) {
    lm_late.request_on_demand("walkin-" + std::to_string(i), "gpu_a100", 1,
                              rng.uniform(0, 8 * 3600),
                              rng.uniform(1800, 7200));
  }
  const bool late_granted = lm_late.request(klass).has_value();
  std::cout << "\nAdvance reservation made early: "
            << (advance_granted ? "granted" : "rejected") << " ("
            << storm_granted
            << "/60 later on-demand requests squeezed around it)\n"
            << "Same class request made after the storm: "
            << (late_granted ? "granted" : "rejected")
            << "\nShape to check: early advance reservation guarantees the "
               "class slot;\nwaiting loses it.\n";
}

}  // namespace

int main(int argc, char** argv) {
  return autolearn::bench::run_bench_main(argc, argv, reproduce);
}
