// E12 — §3.3 sample datasets: "Each of the existing datasets contains
// 10-50K records". Sweeps the dataset size from 1K records to the paper's
// range and reports collection cost, training cost (real CPU + simulated
// GPU across node types), and model quality — the trade students explore
// when deciding how long to drive.
//
// Microbenchmark: tub record append (collection hot path).
#include "bench_common.hpp"

#include "data/tub.hpp"
#include "gpu/perf_model.hpp"
#include "util/table.hpp"

namespace {

using namespace autolearn;

void BM_TubAppend(benchmark::State& state) {
  const auto dir = bench::work_root() / "tub_append_micro";
  std::filesystem::remove_all(dir);
  data::TubWriter writer(dir);
  camera::Image img(32, 24, 0.5f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(writer.append(img, 0.1f, 0.5f));
  }
}
BENCHMARK(BM_TubAppend)->Unit(benchmark::kMicrosecond);

void reproduce() {
  const track::Track track = track::Track::paper_oval();
  util::TablePrinter table({"records", "train samples", "val MAE",
                            "CPU train (s)", "A100 (ms, sim)", "P100 (ms, sim)",
                            "Pi4 (s, sim)"});
  // 20 Hz collection: records = duration * 20. The paper's sample datasets
  // span 10-50K records; we sweep up to the low end of that range and
  // model the rest (the workload is linear in N).
  for (double duration : {50.0, 150.0, 500.0, 1500.0}) {
    vehicle::ExpertConfig driver;
    driver.steering_noise = 0.08;
    const bench::PreparedData data = bench::prepare_data(
        track, data::DataPath::Sample, duration, driver, /*seed=*/13);
    const bench::TrainedModel tm =
        bench::train_model(ml::ModelType::Inferred, data, 4);
    gpu::TrainingWorkload load;
    load.forward_flops = tm.result.forward_flops;
    load.samples = tm.result.samples_seen;
    table.add_row(
        {util::TablePrinter::num(static_cast<long long>(data.stats.records)),
         util::TablePrinter::num(static_cast<long long>(data.train.size())),
         util::TablePrinter::num(tm.steering_mae, 3),
         util::TablePrinter::num(tm.result.wall_seconds, 1),
         util::TablePrinter::num(
             gpu::training_time_s(gpu::device("A100"), load) * 1000, 1),
         util::TablePrinter::num(
             gpu::training_time_s(gpu::device("P100"), load) * 1000, 1),
         util::TablePrinter::num(
             gpu::training_time_s(gpu::device("RaspberryPi4"), load), 1)});
  }
  table.print(std::cout, "E12: dataset-size sweep (toward 10-50K records)");
  std::cout << "\nShape to check: MAE improves then saturates with more "
               "records; GPU time\nscales linearly; the Pi4 column shows why "
               "§3.3 trains in the datacenter.\n";
}

}  // namespace

int main(int argc, char** argv) {
  return autolearn::bench::run_bench_main(argc, argv, reproduce);
}
