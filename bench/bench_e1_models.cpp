// E1 — §3.3 "Model training": AutoLearn ships six tested models (linear,
// memory, 3D, categorical, inferred, RNN). Trains all six on the oval
// sample dataset and reports size, loss, steering accuracy, real CPU
// training time, and simulated V100 training time.
//
// Microbenchmarks: single-sample inference cost per model type — the
// quantity that matters in the 20 Hz control loop.
#include "bench_common.hpp"

#include "gpu/perf_model.hpp"
#include "util/table.hpp"

namespace {

using namespace autolearn;

const bench::PreparedData& shared_data() {
  static const bench::PreparedData data = [] {
    const track::Track track = track::Track::paper_oval();
    vehicle::ExpertConfig driver;
    driver.steering_noise = 0.08;  // mild weave -> recovery examples
    return bench::prepare_data(track, data::DataPath::Sample, 90.0, driver);
  }();
  return data;
}

void BM_Inference(benchmark::State& state) {
  const auto type = static_cast<ml::ModelType>(state.range(0));
  auto model = ml::make_model(type);
  const ml::Sample& sample = shared_data().train.front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->predict(sample));
  }
  state.SetLabel(ml::to_string(type));
}
BENCHMARK(BM_Inference)
    ->DenseRange(0, 5, 1)
    ->Unit(benchmark::kMicrosecond);

void reproduce() {
  const auto& data = shared_data();
  util::TablePrinter table({"model", "params", "val loss", "steering MAE",
                            "CPU train (s)", "V100 train (ms, simulated)"});
  std::cout << "\nTraining all six model types on " << data.train.size()
            << " samples (paper oval, sample-dataset path)...\n";
  for (ml::ModelType type : ml::all_model_types()) {
    const bench::TrainedModel tm = bench::train_model(type, data, 6);
    gpu::TrainingWorkload load;
    load.forward_flops = tm.result.forward_flops;
    load.samples = tm.result.samples_seen;
    const double v100 = gpu::training_time_s(gpu::device("V100"), load);
    table.add_row(
        {ml::to_string(type),
         util::TablePrinter::num(
             static_cast<long long>(tm.model->num_parameters())),
         util::TablePrinter::num(tm.result.best_val_loss, 4),
         util::TablePrinter::num(tm.steering_mae, 3),
         util::TablePrinter::num(tm.result.wall_seconds, 1),
         util::TablePrinter::num(v100 * 1000, 1)});
  }
  table.print(std::cout, "E1: six DonkeyCar model types (paper §3.3)");
}

}  // namespace

int main(int argc, char** argv) {
  return autolearn::bench::run_bench_main(argc, argv, reproduce);
}
