// E2 — §3.3: "we found that the inferred model was best because it gave
// the car the ability to speed fast, while still being accurate."
//
// Trains all six model types, then drives each closed-loop on the paper
// oval and scores speed vs. errors. The reproduction claim is the
// *ordering*: the inferred model tops the combined score.
//
// Microbenchmark: one full control-loop step (render + inference).
#include "bench_common.hpp"

#include <algorithm>

#include "camera/camera.hpp"
#include "eval/evaluator.hpp"
#include "eval/pilot.hpp"
#include "util/table.hpp"

namespace {

using namespace autolearn;

void BM_ControlLoopStep(benchmark::State& state) {
  const track::Track track = track::Track::paper_oval();
  camera::Camera cam(camera::CameraConfig{}, util::Rng(1));
  auto model = ml::make_model(ml::ModelType::Inferred);
  eval::ModelPilot pilot(*model);
  vehicle::Car car(vehicle::CarConfig{}, util::Rng(2));
  car.reset(track.position_at(0), track.heading_at(0), 1.0);
  for (auto _ : state) {
    const camera::Image frame = cam.render(track, car.state());
    const vehicle::DriveCommand cmd = pilot.act(frame);
    car.step(cmd, 0.05);
    benchmark::DoNotOptimize(cmd);
  }
}
BENCHMARK(BM_ControlLoopStep)->Unit(benchmark::kMicrosecond);

void reproduce() {
  const track::Track track = track::Track::paper_oval();
  vehicle::ExpertConfig driver;
  driver.steering_noise = 0.08;
  const bench::PreparedData data =
      bench::prepare_data(track, data::DataPath::Sample, 120.0, driver);

  struct Row {
    std::string name;
    eval::EvalResult result;
  };
  std::vector<Row> rows;
  std::cout << "\nTraining and closed-loop evaluating all six models...\n";
  for (ml::ModelType type : ml::all_model_types()) {
    const bench::TrainedModel tm = bench::train_model(type, data, 8);
    eval::ModelPilot pilot(*tm.model);
    eval::EvalOptions eopt;
    eopt.duration_s = 60.0;
    // The paper's students evaluate on the physical car; the real-car
    // profiles are what separates fast-but-sloppy from fast-and-accurate.
    eopt.real_profiles = true;
    rows.push_back({ml::to_string(type),
                    eval::run_evaluation(track, pilot, eopt)});
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.result.score() > b.result.score();
  });
  util::TablePrinter table({"model", "mean speed (m/s)", "laps", "errors",
                            "best lap (s)", "score"});
  for (const Row& r : rows) {
    table.add_row(
        {r.name, util::TablePrinter::num(r.result.mean_speed, 2),
         util::TablePrinter::num(r.result.laps, 2),
         util::TablePrinter::num(static_cast<long long>(r.result.errors)),
         util::TablePrinter::num(r.result.best_lap(), 1),
         util::TablePrinter::num(r.result.score(), 3)});
  }
  table.print(std::cout,
              "E2: closed-loop autonomy, sorted by combined score");
  std::cout << "\nPaper claim: 'the inferred model was best because it gave "
               "the car\nthe ability to speed fast, while still being "
               "accurate.'\nReproduced winner: "
            << rows.front().name << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  return autolearn::bench::run_bench_main(argc, argv, reproduce);
}
