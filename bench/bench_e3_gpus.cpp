// E3 — §3.3: "We tested this process on a range of GPU nodes available
// via Chameleon including A100, V100, v100NVLINK, RTX6000, and P100."
//
// Measures the real training workload of the linear model (FLOPs counted
// by the layer library), then reports simulated wall-clock on each of the
// paper's node types, including the 4-GPU configurations Chameleon's
// multi-GPU nodes provide. Expected shape: A100 fastest, P100 slowest,
// NVLink beating PCIe at equal GPU counts.
//
// Microbenchmark: one optimizer step of the linear model (the unit the
// GPU model scales).
#include "bench_common.hpp"

#include "gpu/perf_model.hpp"
#include "testbed/inventory.hpp"
#include "util/table.hpp"

namespace {

using namespace autolearn;

void BM_TrainBatch(benchmark::State& state) {
  const track::Track track = track::Track::paper_oval();
  const bench::PreparedData data =
      bench::prepare_data(track, data::DataPath::Sample, 30.0);
  auto model = ml::make_model(ml::ModelType::Linear);
  std::vector<const ml::Sample*> batch;
  for (std::size_t i = 0; i < 32 && i < data.train.size(); ++i) {
    batch.push_back(&data.train[i]);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->train_batch(batch));
  }
  state.SetLabel("linear, batch 32");
}
BENCHMARK(BM_TrainBatch)->Unit(benchmark::kMillisecond);

void reproduce() {
  const track::Track track = track::Track::paper_oval();
  const bench::PreparedData data =
      bench::prepare_data(track, data::DataPath::Sample, 90.0);
  std::cout << "\nMeasuring the linear-model training workload ("
            << data.train.size() << " samples x 8 epochs)...\n";
  const bench::TrainedModel tm =
      bench::train_model(ml::ModelType::Linear, data, 8);

  gpu::TrainingWorkload load;
  load.forward_flops = tm.result.forward_flops;
  load.samples = tm.result.samples_seen;

  // The paper trains the real DonkeyCar stack: 160x120 frames through a
  // five-conv network (~300 MFLOP forward per sample — 25x our pixels and
  // a much wider/deeper net) over ~20K records and ~50 epochs (§3.3
  // datasets hold 10-50K records). Estimate that full-scale notebook job.
  const std::uint64_t full_flops_per_sample = 300'000'000;
  const std::uint64_t full_samples = 20'000ull * 50;
  gpu::TrainingWorkload full;
  full.forward_flops = full_flops_per_sample * full_samples;
  full.samples = full_samples;

  const testbed::Inventory inventory = testbed::Inventory::chameleon();
  util::TablePrinter table({"node", "GPUs", "interconnect",
                            "bench job (ms, sim)", "full job (min, sim)",
                            "speedup vs P100"});
  const double p100_base = gpu::training_time_s(gpu::device("P100"), load);
  struct Config {
    const char* device;
    int count;
    gpu::Interconnect link;
    const char* link_name;
  };
  const Config configs[] = {
      {"A100", 1, gpu::Interconnect::None, "-"},
      {"A100", 4, gpu::Interconnect::NVLink, "NVLink"},
      {"v100NVLINK", 1, gpu::Interconnect::None, "-"},
      {"v100NVLINK", 4, gpu::Interconnect::NVLink, "NVLink"},
      {"V100", 1, gpu::Interconnect::None, "-"},
      {"V100", 4, gpu::Interconnect::PCIe, "PCIe"},
      {"RTX6000", 1, gpu::Interconnect::None, "-"},
      {"P100", 1, gpu::Interconnect::None, "-"},
      {"P100", 4, gpu::Interconnect::PCIe, "PCIe"},
  };
  for (const Config& c : configs) {
    const double t =
        gpu::training_time_s(gpu::device(c.device), load, c.count, c.link);
    const double t_full =
        gpu::training_time_s(gpu::device(c.device), full, c.count, c.link);
    table.add_row({c.device, util::TablePrinter::num(
                                 static_cast<long long>(c.count)),
                   c.link_name, util::TablePrinter::num(t * 1000, 1),
                   util::TablePrinter::num(t_full / 60, 2),
                   util::TablePrinter::num(p100_base / t, 2)});
  }
  table.print(std::cout, "E3: training time across Chameleon GPU nodes");
  std::cout << "\nInventory check (paper §3.2): "
            << inventory.count_of_type("gpu_rtx6000")
            << " RTX6000 nodes, 4-node sets of 4x V100/P100/A100; "
            << "workload = " << load.forward_flops / 1'000'000
            << " MFLOPs forward.\n";
}

}  // namespace

int main(int argc, char** argv) {
  return autolearn::bench::run_bench_main(argc, argv, reproduce);
}
