// E4 — Fig. 2: the three data-collection paths (sample datasets, the
// simulator, and the physical car) all feed the same training pipeline.
// Trains the same model type from each path and shows that every path
// yields a driving model; the physical-car path is noisier, so its MAE is
// expected to be slightly worse.
//
// Microbenchmark: camera frame rendering, the per-record cost of
// collection.
#include "bench_common.hpp"

#include "camera/camera.hpp"
#include "eval/evaluator.hpp"
#include "eval/pilot.hpp"
#include "util/table.hpp"

namespace {

using namespace autolearn;

void BM_CameraRender(benchmark::State& state) {
  const track::Track track = track::Track::paper_oval();
  camera::Camera cam(camera::CameraConfig{}, util::Rng(1));
  vehicle::CarState st;
  st.pos = track.position_at(1.0);
  st.heading = track.heading_at(1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cam.render(track, st));
  }
}
BENCHMARK(BM_CameraRender)->Unit(benchmark::kMicrosecond);

void reproduce() {
  const track::Track track = track::Track::paper_oval();
  util::TablePrinter table({"collection path", "records", "flagged", "val MAE",
                            "laps", "errors"});
  for (data::DataPath path : {data::DataPath::Sample,
                              data::DataPath::Simulator,
                              data::DataPath::PhysicalCar}) {
    vehicle::ExpertConfig driver;
    driver.steering_noise = 0.08;
    const bench::PreparedData data =
        bench::prepare_data(track, path, 120.0, driver, /*seed=*/3);
    const bench::TrainedModel tm =
        bench::train_model(ml::ModelType::Linear, data, 8);
    eval::ModelPilot pilot(*tm.model);
    eval::EvalOptions eopt;
    eopt.duration_s = 45.0;
    const eval::EvalResult r = eval::run_evaluation(track, pilot, eopt);
    table.add_row(
        {data::to_string(path),
         util::TablePrinter::num(static_cast<long long>(data.stats.records)),
         util::TablePrinter::num(
             static_cast<long long>(data.stats.mistake_records)),
         util::TablePrinter::num(tm.steering_mae, 3),
         util::TablePrinter::num(r.laps, 2),
         util::TablePrinter::num(static_cast<long long>(r.errors))});
  }
  table.print(std::cout, "E4: the three data-collection paths of Fig. 2");
  std::cout << "\nShape to check: every path produces a model that drives "
               "(laps > 0,\nfew errors); the physical-car path is noisier "
               "than the simulator.\n";
}

}  // namespace

int main(int argc, char** argv) {
  return autolearn::bench::run_bench_main(argc, argv, reproduce);
}
