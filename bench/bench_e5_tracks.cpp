// E5 — Fig. 3: the default orange-tape oval (330 in / 509 in / 27.59 in)
// vs. the Waveshare commercial track. Trains a model per track and
// cross-evaluates: models drive their own track well and generalize
// imperfectly to the other ("accuracy following tracks of different
// shapes" is one of the paper's competition ideas).
//
// Microbenchmark: track projection, the geometric primitive everything
// rests on.
#include "bench_common.hpp"

#include "eval/evaluator.hpp"
#include "eval/pilot.hpp"
#include "util/table.hpp"

namespace {

using namespace autolearn;

void BM_TrackProject(benchmark::State& state) {
  const track::Track track = track::Track::waveshare();
  util::Rng rng(4);
  std::vector<track::Vec2> points;
  for (int i = 0; i < 256; ++i) {
    points.push_back({rng.uniform(-1, 4), rng.uniform(-1, 4)});
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(track.project(points[i++ % points.size()]));
  }
}
BENCHMARK(BM_TrackProject)->Unit(benchmark::kNanosecond);

void reproduce() {
  const track::Track oval = track::Track::paper_oval();
  const track::Track wave = track::Track::waveshare();
  const track::Track* tracks[] = {&oval, &wave};

  vehicle::ExpertConfig driver;
  driver.steering_noise = 0.08;
  std::vector<bench::TrainedModel> models;
  for (const track::Track* t : tracks) {
    std::cout << "Training on " << t->name() << "...\n";
    const bench::PreparedData data =
        bench::prepare_data(*t, data::DataPath::Sample, 120.0, driver);
    models.push_back(bench::train_model(ml::ModelType::Linear, data, 8));
  }

  util::TablePrinter table(
      {"trained on", "evaluated on", "laps", "errors", "score"});
  for (std::size_t m = 0; m < 2; ++m) {
    for (std::size_t t = 0; t < 2; ++t) {
      eval::ModelPilot pilot(*models[m].model);
      eval::EvalOptions eopt;
      eopt.duration_s = 45.0;
      const eval::EvalResult r =
          eval::run_evaluation(*tracks[t], pilot, eopt);
      table.add_row(
          {tracks[m]->name(), tracks[t]->name(),
           util::TablePrinter::num(r.laps, 2),
           util::TablePrinter::num(static_cast<long long>(r.errors)),
           util::TablePrinter::num(r.score(), 3)});
    }
  }
  table.print(std::cout, "E5: cross-track generalization (Fig. 3 tracks)");
  std::cout << "\nShape to check: the diagonal (same-track) scores beat the "
               "off-diagonal\n(cross-track) scores.\n";
}

}  // namespace

int main(int argc, char** argv) {
  return autolearn::bench::run_bench_main(argc, argv, reproduce);
}
