// E6 — §3.3 "Additional data collection": "Learners will likely generate
// some bad data consisting of mistakes (i.e., crashes or images that are
// off-side) while driving; this data need to be deleted for the training
// set to represent a valid scenario."
//
// Sweeps the driver's mistake rate and trains with and without the
// tubclean review pass. Expected shape: at zero mistakes cleaning is a
// no-op; as mistakes grow, the uncleaned model degrades while the cleaned
// model holds.
//
// Microbenchmark: the tubclean review pass itself.
#include "bench_common.hpp"

#include "data/tubclean.hpp"
#include "eval/evaluator.hpp"
#include "eval/pilot.hpp"
#include "util/table.hpp"

namespace {

using namespace autolearn;

void BM_ReviewClean(benchmark::State& state) {
  const track::Track track = track::Track::paper_oval();
  data::CollectOptions copt;
  copt.duration_s = 60.0;
  copt.expert.mistake_rate = 15.0;
  const auto dir = bench::work_root() / "tubclean_micro";
  std::filesystem::remove_all(dir);
  data::collect_session(track, data::DataPath::Simulator, copt, dir);
  for (auto _ : state) {
    data::Tub tub(dir);
    tub.restore_all();
    benchmark::DoNotOptimize(data::review_clean(tub));
  }
}
BENCHMARK(BM_ReviewClean)->Unit(benchmark::kMillisecond);

void reproduce() {
  const track::Track track = track::Track::paper_oval();
  util::TablePrinter table({"mistakes/min", "flagged", "train samples",
                            "cleaned?", "val MAE", "laps", "errors"});
  for (double rate : {0.0, 6.0, 15.0, 30.0}) {
    for (bool clean : {false, true}) {
      vehicle::ExpertConfig driver;
      driver.steering_noise = 0.08;
      driver.mistake_rate = rate;
      const bench::PreparedData data = bench::prepare_data(
          track, data::DataPath::Simulator, 120.0, driver, /*seed=*/11, clean);
      const bench::TrainedModel tm =
          bench::train_model(ml::ModelType::Linear, data, 8);
      eval::ModelPilot pilot(*tm.model);
      eval::EvalOptions eopt;
      eopt.duration_s = 45.0;
      const eval::EvalResult r = eval::run_evaluation(track, pilot, eopt);
      table.add_row(
          {util::TablePrinter::num(rate, 0),
           util::TablePrinter::num(
               static_cast<long long>(data.stats.mistake_records)),
           util::TablePrinter::num(
               static_cast<long long>(data.train.size())),
           clean ? "yes" : "no",
           util::TablePrinter::num(tm.steering_mae, 3),
           util::TablePrinter::num(r.laps, 2),
           util::TablePrinter::num(static_cast<long long>(r.errors))});
    }
  }
  table.print(std::cout, "E6: tubclean vs. mistake rate");
  std::cout << "\nShape to check: with rising mistake rate, the uncleaned "
               "rows degrade\n(higher MAE / more errors) while the cleaned "
               "rows stay close to the\nzero-mistake baseline.\n";
}

}  // namespace

int main(int argc, char** argv) {
  return autolearn::bench::run_bench_main(argc, argv, reproduce);
}
