// E7 — §3.3/§3.4 extensions: "exploring the edge to cloud interaction by
// attempting to run inference models in the cloud, constructing hybrid
// edge cloud inference models" (the study the Zheng SC'23 poster carried
// out on real hardware).
//
// Sweeps the car<->cloud network RTT and evaluates the three inference
// placements. Expected shape: cloud wins at small RTT (better model, low
// latency), on-device wins past a crossover RTT, and hybrid tracks the
// better of the two across the sweep.
//
// Microbenchmark: hybrid-pilot step cost.
#include "bench_common.hpp"

#include "core/continuum.hpp"
#include "eval/evaluator.hpp"
#include "util/table.hpp"

namespace {

using namespace autolearn;

void BM_HybridPilotStep(benchmark::State& state) {
  ml::ModelConfig cfg;
  auto edge_model = ml::make_model(ml::ModelType::Inferred, cfg);
  auto cloud_model = ml::make_model(ml::ModelType::Linear, cfg);
  core::ContinuumOptions copt;
  core::HybridPilot pilot(*edge_model, *cloud_model, copt, util::Rng(5));
  camera::Image frame(cfg.img_w, cfg.img_h, 0.5f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pilot.act(frame));
  }
}
BENCHMARK(BM_HybridPilotStep)->Unit(benchmark::kMicrosecond);

void reproduce() {
  const track::Track track = track::Track::paper_oval();
  vehicle::ExpertConfig driver;
  driver.steering_noise = 0.08;
  const bench::PreparedData data =
      bench::prepare_data(track, data::DataPath::Sample, 120.0, driver);
  std::cout << "Training the cloud (linear) and edge (inferred) models...\n";
  bench::TrainedModel cloud_model =
      bench::train_model(ml::ModelType::Linear, data, 8);
  // The edge fallback is deliberately the lesser pilot: a small model,
  // briefly trained, with a conservative throttle policy — what actually
  // fits next to the data-collection stack on the Pi.
  ml::ModelConfig edge_cfg;
  edge_cfg.inferred_throttle_base = 0.30;
  edge_cfg.inferred_throttle_gain = 0.18;
  bench::TrainedModel edge_model =
      bench::train_model(ml::ModelType::Inferred, data, 2, edge_cfg);

  util::TablePrinter table({"RTT (ms)", "placement", "cmd latency (ms)",
                            "mean speed", "laps", "errors", "score"});
  struct Best {
    double rtt;
    std::string winner;
  };
  std::vector<Best> winners;
  eval::EvalOptions eopt;
  eopt.duration_s = 45.0;
  // Like E2: evaluation happens on the physical car.
  eopt.real_profiles = true;
  for (double rtt_ms : {5.0, 20.0, 60.0, 120.0, 250.0, 400.0}) {
    core::ContinuumOptions copt;
    copt.network_rtt_s = rtt_ms / 1000.0;
    // Model the paper's full-scale deployment: the real 160x120 DonkeyCar
    // network is ~1500x our reduced-resolution arithmetic.
    copt.flops_scale = 1500.0;
    double best_score = -1;
    std::string best_name;
    for (core::Placement p : {core::Placement::OnDevice,
                              core::Placement::Cloud,
                              core::Placement::Hybrid}) {
      const double latency = core::placement_latency_s(
          p, copt, edge_model.model->flops_per_sample(),
          cloud_model.model->flops_per_sample());
      const eval::EvalResult r = core::evaluate_placement(
          track, *cloud_model.model, *edge_model.model, p, copt, eopt);
      table.add_row(
          {util::TablePrinter::num(rtt_ms, 0), core::to_string(p),
           util::TablePrinter::num(latency * 1000, 1),
           util::TablePrinter::num(r.mean_speed, 2),
           util::TablePrinter::num(r.laps, 2),
           util::TablePrinter::num(static_cast<long long>(r.errors)),
           util::TablePrinter::num(r.score(), 3)});
      if (p != core::Placement::Hybrid && r.score() > best_score) {
        best_score = r.score();
        best_name = core::to_string(p);
      }
    }
    winners.push_back({rtt_ms, best_name});
  }
  table.print(std::cout, "E7: inference placement across the continuum");
  std::cout << "\nEdge-vs-cloud winner per RTT:";
  for (const Best& w : winners) {
    std::cout << "  " << w.rtt << "ms->" << w.winner;
  }
  std::cout << "\nShape to check: cloud wins at low RTT, on-device past the "
               "crossover.\n";
}

}  // namespace

int main(int argc, char** argv) {
  return autolearn::bench::run_bench_main(argc, argv, reproduce);
}
