// E8 — §3.3/§3.4 digital twin: "combining the simulator and real-life
// validation can lead to interesting exploration of digital twin
// modeling." Sweeps the hardware-noise scale and reports sim-vs-real
// trajectory divergence and the twin fidelity metric.
//
// Microbenchmark: one twin comparison step pair (two renders + dynamics).
#include "bench_common.hpp"

#include "core/twin.hpp"
#include "eval/evaluator.hpp"
#include "eval/pilot.hpp"
#include "util/table.hpp"

namespace {

using namespace autolearn;

void BM_VehicleStep(benchmark::State& state) {
  vehicle::Car car(vehicle::CarConfig{}, util::Rng(6));
  car.reset({0, 0}, 0, 1.0);
  for (auto _ : state) {
    car.step({0.1, 0.5}, 0.05);
    benchmark::DoNotOptimize(car.state());
  }
}
BENCHMARK(BM_VehicleStep)->Unit(benchmark::kNanosecond);

void reproduce() {
  const track::Track track = track::Track::paper_oval();
  vehicle::ExpertConfig driver;
  driver.steering_noise = 0.08;
  const bench::PreparedData data =
      bench::prepare_data(track, data::DataPath::Sample, 120.0, driver);
  std::cout << "Training the twin's pilot (linear)...\n";
  bench::TrainedModel tm = bench::train_model(ml::ModelType::Linear, data, 8);
  eval::ModelPilot pilot(*tm.model);

  util::TablePrinter table({"noise scale", "traj RMSE (m)", "final gap (m)",
                            "speed RMSE", "sim errors", "real errors",
                            "fidelity"});
  for (double scale : {0.0, 0.25, 0.5, 1.0, 2.0}) {
    core::TwinOptions topt;
    topt.duration_s = 45.0;
    topt.noise_scale = scale;
    const core::TwinReport r = core::compare_sim_to_real(track, pilot, topt);
    table.add_row(
        {util::TablePrinter::num(scale, 2),
         util::TablePrinter::num(r.position_rmse_m, 3),
         util::TablePrinter::num(r.final_divergence_m, 3),
         util::TablePrinter::num(r.speed_rmse, 3),
         util::TablePrinter::num(static_cast<long long>(r.sim_errors)),
         util::TablePrinter::num(static_cast<long long>(r.real_errors)),
         util::TablePrinter::num(r.fidelity, 3)});
  }
  table.print(std::cout, "E8: digital-twin divergence vs hardware noise");
  std::cout << "\nShape to check: fidelity = 1.0 at scale 0 and decays "
               "monotonically;\nthe 'real car' accumulates more errors than "
               "the simulator at high noise.\n";
}

}  // namespace

int main(int argc, char** argv) {
  return autolearn::bench::run_bench_main(argc, argv, reproduce);
}
