// E9 — §5 impact metrics: "since its publication in September 2023, the
// numbers for our artifact in Trovi are modest: 35 total number of launch
// button clicks, 9 users who clicked the launch button, 2 users who
// executed at least one cell, and it has been published 8 versions of the
// artifact."
//
// Replays an artifact life-cycle event log through the hub and regenerates
// the §5 metrics row exactly (this experiment is pure bookkeeping, so the
// absolute numbers reproduce, not just the shape).
//
// Microbenchmark: hub event-recording throughput.
#include "bench_common.hpp"

#include "hub/hub.hpp"
#include "util/table.hpp"

namespace {

using namespace autolearn;

void BM_HubRecordLaunch(benchmark::State& state) {
  hub::Hub h;
  hub::Artifact& a = h.create_artifact("x", "X", {});
  std::size_t i = 0;
  for (auto _ : state) {
    a.record_launch("user-" + std::to_string(i++ % 64));
  }
  benchmark::DoNotOptimize(a.metrics());
}
BENCHMARK(BM_HubRecordLaunch);

void reproduce() {
  hub::Hub trovi;
  hub::Artifact& artifact = trovi.create_artifact(
      "autolearn", "AutoLearn: Learning in the Edge to Cloud Continuum",
      {"Esquivel Morel", "Fowler", "Keahey", "Zheng", "Sherman", "Anderson"});
  artifact.add_tag("education");
  artifact.add_tag("edge-to-cloud");
  artifact.set_description(
      "Educational module: DonkeyCar on the Chameleon testbed");

  // Eight published versions (the GitBook/Trovi release history).
  for (int v = 1; v <= 8; ++v) {
    artifact.publish_version("release " + std::to_string(v),
                             "chameleon/autolearn-v" + std::to_string(v));
  }
  // Nine users click launch 35 times between them; anonymous views on top.
  const int clicks_per_user[9] = {8, 6, 5, 4, 4, 3, 2, 2, 1};
  for (int u = 0; u < 9; ++u) {
    const std::string user = "user-" + std::to_string(u);
    artifact.record_view(user);
    for (int c = 0; c < clicks_per_user[u]; ++c) artifact.record_launch(user);
  }
  for (int v = 0; v < 12; ++v) artifact.record_view("");  // drive-by views
  // Two of the launchers actually executed at least one cell.
  artifact.record_cell_execution("user-0");
  artifact.record_cell_execution("user-3");

  const hub::ArtifactMetrics m = artifact.metrics();
  util::TablePrinter table({"metric", "paper (Sec.5)", "reproduced"});
  table.add_row({"launch button clicks", "35",
                 util::TablePrinter::num(static_cast<long long>(m.launch_clicks))});
  table.add_row({"users who clicked launch", "9",
                 util::TablePrinter::num(
                     static_cast<long long>(m.unique_launch_users))});
  table.add_row({"users who executed a cell", "2",
                 util::TablePrinter::num(
                     static_cast<long long>(m.users_executed_cell))});
  table.add_row({"published versions", "8",
                 util::TablePrinter::num(static_cast<long long>(m.versions))});
  table.print(std::cout, "E9: Trovi artifact metrics (exact reproduction)");
}

}  // namespace

int main(int argc, char** argv) {
  return autolearn::bench::run_bench_main(argc, argv, reproduce);
}
