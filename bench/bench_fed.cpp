// Federated continual learning benchmark: what round-based FedAvg buys
// at the fleet scale the paper cares about.
//
// Two measurements, both on the virtual clock (deterministic: same seed,
// same JSON):
//   1. rounds — held-out steering MAE of the fleet incumbent after 1..R
//      federated rounds with every car healthy: the curve must descend
//      from the bootstrap MAE (each round's canary-gated merge helps).
//   2. dropout — the same fleet with 0, 1, and 2 of the cars dropped for
//      the whole run (FaultKind::ClientDropout via the chaos engine):
//      rounds still publish off the surviving quorum, and the final MAE
//      degrades gracefully rather than collapsing.
// Every scenario also totals the bytes the round actually shipped
// (CRC-framed weight deltas, FedReport::delta_bytes_shipped) against the
// raw-frame alternative — uploading every participating car's local
// slice each round — to quantify the paper's "ship deltas, not frames"
// saving.
//
// Writes BENCH_fed.json (override with --out=PATH). `--smoke` shrinks
// the workload so the binary doubles as a ctest smoke test
// (`ctest -L fed`).
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "fault/chaos.hpp"
#include "fed/aggregator.hpp"
#include "fed/client.hpp"
#include "fed/delta.hpp"
#include "fed/report.hpp"
#include "ml/driving_model.hpp"
#include "net/network.hpp"
#include "net/transfer.hpp"
#include "objectstore/objectstore.hpp"
#include "serve/replication.hpp"
#include "util/event_queue.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace autolearn::bench {
namespace {

struct FedConfig {
  std::size_t cars = 4;
  std::uint64_t rounds = 3;
  std::size_t dropped = 0;  // cars offline for the whole run
  std::size_t slice_base = 10;
  std::size_t slice_step = 2;  // car i trains on slice_base + i * step
  std::size_t probe_count = 24;
};

ml::ModelConfig bench_config() {
  ml::ModelConfig cfg;
  cfg.img_w = 32;
  cfg.img_h = 24;
  cfg.lr = 2e-3;
  return cfg;
}

/// Bright vertical band whose column encodes the steering label (the
/// repo's standard synthetic task).
std::vector<ml::Sample> synthetic_dataset(std::size_t n,
                                          const ml::ModelConfig& cfg,
                                          std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<ml::Sample> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t col = static_cast<std::size_t>(
        rng.uniform_int(2, static_cast<std::int64_t>(cfg.img_w) - 3));
    camera::Image img(cfg.img_w, cfg.img_h, 0.1f);
    for (std::size_t y = 0; y < cfg.img_h; ++y) {
      for (std::size_t dx = 0; dx < 3; ++dx) img.at(col - 1 + dx, y) = 0.9f;
    }
    ml::Sample s;
    for (std::size_t f = 0; f < cfg.seq_len; ++f) s.frames.push_back(img);
    const float steer = static_cast<float>(
        2.0 * static_cast<double>(col) / (cfg.img_w - 1) - 1.0);
    for (std::size_t h = 0; h < cfg.history_len; ++h) {
      s.history.push_back(steer);
      s.history.push_back(0.5f);
    }
    s.steering = steer;
    s.throttle = 0.5f;
    out.push_back(std::move(s));
  }
  return out;
}

std::string car_name(std::size_t i) { return "car-0" + std::to_string(i + 1); }

std::size_t slice_size(const FedConfig& cfg, std::size_t car) {
  return cfg.slice_base + cfg.slice_step * car;
}

/// Bytes a car would ship per round under the centralized alternative:
/// its whole local slice as raw float32 frames (plus the scalar labels).
std::uint64_t raw_slice_bytes(const FedConfig& fed, const ml::ModelConfig& ml,
                              std::size_t car) {
  const std::uint64_t frame = static_cast<std::uint64_t>(ml.img_w) * ml.img_h *
                              sizeof(float);
  const std::uint64_t sample =
      frame * ml.seq_len + 2 * sizeof(float) * ml.history_len +
      2 * sizeof(float);
  return sample * slice_size(fed, car);
}

double steering_mae(ml::DrivingModel& model,
                    const std::vector<ml::Sample>& probes) {
  double sum = 0.0;
  for (const auto& p : probes) {
    sum += std::abs(model.predict(p).steering - static_cast<double>(p.steering));
  }
  return probes.empty() ? 0.0 : sum / static_cast<double>(probes.size());
}

struct FedRun {
  fed::FedReport report;
  double mae_bootstrap = 0.0;
  double mae_final = 0.0;
  std::uint64_t raw_frame_bytes = 0;  // centralized-alternative bytes
};

/// One complete federated run: cloud + cars on a simulated network, a
/// two-shard replicated registry bootstrapped with a fresh Linear model,
/// and (optionally) the first `dropped` cars offline for the whole run.
FedRun run_federation(const FedConfig& cfg) {
  util::EventQueue queue;
  net::Network network;
  network.add_host("cloud");
  for (std::size_t i = 0; i < cfg.cars; ++i) {
    network.add_host(car_name(i));
    network.add_duplex(car_name(i), "cloud", net::LinkSpec{});
  }
  net::TransferManager transfers{network, queue, util::Rng(5), 2};
  objectstore::ObjectStore os;
  serve::ReplicatedRegistry registry{2};

  const ml::ModelConfig mlcfg = bench_config();
  std::shared_ptr<ml::DrivingModel> bootstrap =
      ml::make_model(ml::ModelType::Linear, mlcfg);
  registry.publish_all(bootstrap, "bootstrap");

  fed::FedOptions opt;
  opt.rounds = cfg.rounds;
  opt.round_timeout_s = 600.0;
  opt.quorum_frac = 0.5;
  opt.cloud_host = "cloud";
  opt.canary.max_steering_drift = 0.5;
  opt.canary.bake_s = 1.0;

  fed::Aggregator agg(queue, registry, transfers, os, ml::ModelType::Linear,
                      mlcfg, opt);
  for (std::size_t i = 0; i < cfg.cars; ++i) {
    fed::ClientOptions copt;
    copt.name = car_name(i);
    copt.seed = 100 + i;
    agg.add_client(copt, synthetic_dataset(slice_size(cfg, i), mlcfg, 500 + i));
  }
  const std::vector<ml::Sample> probes =
      synthetic_dataset(cfg.probe_count, mlcfg, 999);
  agg.set_probes(synthetic_dataset(8, mlcfg, 777));

  fault::ChaosEngine chaos(queue, 42);
  chaos.attach_fed(agg.fault_hooks());
  for (std::size_t i = 0; i < cfg.dropped; ++i) {
    fault::FaultSpec spec;
    spec.kind = fault::FaultKind::ClientDropout;
    spec.at = 0.0;
    spec.duration = cfg.rounds * (opt.round_timeout_s + 60.0);  // whole run
    spec.target = car_name(i);
    chaos.inject(spec);
  }

  FedRun out;
  out.mae_bootstrap = steering_mae(*bootstrap, probes);
  out.report = agg.run();
  out.mae_final = steering_mae(*registry.shard(0).current()->model, probes);
  for (const auto& round : out.report.rounds) {
    for (std::size_t i = 0; i < round.clients.size(); ++i) {
      // Dropped cars ship nothing either way; everyone else would have
      // uploaded its full slice under the centralized alternative.
      if (round.clients[i].outcome == fed::ClientOutcome::Dropout) continue;
      out.raw_frame_bytes += raw_slice_bytes(cfg, mlcfg, i);
    }
  }
  return out;
}

util::Json run_row(const FedConfig& cfg, const FedRun& run) {
  util::Json row = util::Json::object();
  row.set("cars", cfg.cars);
  row.set("dropped", cfg.dropped);
  row.set("rounds", cfg.rounds);
  row.set("rounds_published", run.report.rounds_published);
  row.set("rounds_rolled_back", run.report.rounds_rolled_back);
  row.set("rounds_no_quorum", run.report.rounds_no_quorum);
  row.set("deltas_accepted", run.report.deltas_accepted);
  row.set("dropouts", run.report.dropouts);
  row.set("mae_bootstrap", run.mae_bootstrap);
  row.set("mae_final", run.mae_final);
  row.set("delta_bytes_shipped", run.report.delta_bytes_shipped);
  row.set("raw_frame_bytes", run.raw_frame_bytes);
  row.set("frames_over_deltas",
          run.report.delta_bytes_shipped > 0
              ? static_cast<double>(run.raw_frame_bytes) /
                    static_cast<double>(run.report.delta_bytes_shipped)
              : 0.0);
  return row;
}

int run(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_fed.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else {
      std::cerr << "usage: bench_fed [--smoke] [--out=PATH]\n";
      return 1;
    }
  }
  std::cout << "bench_fed" << (smoke ? " (smoke mode)" : "") << "\n";
  const std::uint64_t max_rounds = smoke ? 1 : 3;

  util::Json doc = util::Json::object();
  doc.set("bench", "fed");
  doc.set("smoke", smoke);

  // --- 1: rounds vs held-out steering MAE, healthy fleet -------------------
  util::Json curve = util::Json::array();
  for (std::uint64_t r = 1; r <= max_rounds; ++r) {
    FedConfig cfg;
    cfg.rounds = r;
    const FedRun run = run_federation(cfg);
    std::cout << "rounds=" << r << ": MAE " << run.mae_bootstrap << " -> "
              << run.mae_final << " (" << run.report.rounds_published
              << " published)\n";
    curve.push_back(run_row(cfg, run));
  }
  doc.set("rounds_curve", std::move(curve));

  // --- 2: dropout sweep at fixed rounds ------------------------------------
  util::Json sweep = util::Json::array();
  const std::size_t max_dropped = smoke ? 1 : 2;
  for (std::size_t dropped = 0; dropped <= max_dropped; ++dropped) {
    FedConfig cfg;
    cfg.rounds = max_rounds;
    cfg.dropped = dropped;
    const FedRun run = run_federation(cfg);
    std::cout << "dropped=" << dropped << "/" << cfg.cars << ": MAE "
              << run.mae_final << ", " << run.report.deltas_accepted
              << " deltas accepted, " << run.report.delta_bytes_shipped
              << " delta bytes vs " << run.raw_frame_bytes
              << " raw-frame bytes ("
              << (run.report.delta_bytes_shipped > 0
                      ? static_cast<double>(run.raw_frame_bytes) /
                            static_cast<double>(run.report.delta_bytes_shipped)
                      : 0.0)
              << "x saving)\n";
    sweep.push_back(run_row(cfg, run));
  }
  doc.set("dropout_sweep", std::move(sweep));

  std::ofstream f(out_path);
  if (!f) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  f << doc.dump(2) << "\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

}  // namespace
}  // namespace autolearn::bench

int main(int argc, char** argv) { return autolearn::bench::run(argc, argv); }
