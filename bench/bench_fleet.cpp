// Geo-sharded fleet serving benchmark: what sharding buys and what a site
// loss costs.
//
// Two measurements, both simulated on the virtual clock (deterministic:
// same seed, same JSON):
//   1. scaling — the same saturating arrival stream against 1 / 2 / 4
//      shard workers (linear zoo model, flops_scale=1500 to model the
//      full DonkeyCar stack, so the V100 workers are compute-bound):
//      completed throughput should scale near-linearly with shards.
//   2. chaos — a 4-shard fleet at moderate load, once undisturbed and
//      once with CHI@TACC partitioned for a quarter of the run (killing
//      half the shards): the health monitor reroutes, admission control
//      sheds to the edge, and the run must finish with ZERO failed
//      requests and a p99 queue latency within 2x of steady state.
//
// Writes BENCH_fleet.json (override with --out=PATH). `--smoke` shrinks
// the workload so the binary doubles as a ctest smoke test
// (`ctest -L shard`).
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "fault/chaos.hpp"
#include "ml/driving_model.hpp"
#include "net/network.hpp"
#include "serve/model_registry.hpp"
#include "serve/service.hpp"
#include "testbed/topology.hpp"
#include "util/event_queue.hpp"
#include "util/json.hpp"

namespace autolearn::bench {
namespace {

struct FleetConfig {
  std::size_t shards = 1;
  std::size_t cars = 256;
  double duration_s = 4.0;
  // ~91k req/s offered: past the ~82k req/s a 4-shard fleet can complete
  // (one V100 worker sustains ~20.5k req/s on the scaled linear stack;
  // 256 cars keep the consistent-hash ring load-balanced),
  // so every row in the scaling sweep is capacity-bound, not offer-bound.
  double mean_interarrival_s = 0.0028;
  bool partition_tacc = false;  // CHI@TACC dark for [25%, 50%) of the run
};

serve::ServeReport run_fleet(const FleetConfig& cfg) {
  util::EventQueue queue;
  serve::ModelRegistry registry;
  registry.publish(std::shared_ptr<ml::DrivingModel>(
                       ml::make_model(ml::ModelType::Linear)),
                   "bench");

  serve::FleetOptions opt;
  opt.cars = cfg.cars;
  opt.shards = cfg.shards;
  opt.duration_s = cfg.duration_s;
  opt.mean_interarrival_s = cfg.mean_interarrival_s;
  opt.batcher.max_batch = 32;
  opt.batcher.max_delay_s = 0.005;
  opt.placement = core::Placement::Cloud;
  // Model the full DonkeyCar stack on the V100 workers so batches are
  // compute-bound and per-shard capacity is the bottleneck under load.
  opt.continuum.flops_scale = 1500.0;
  opt.seed = 7;

  net::Network net = testbed::chameleon_network();
  fault::ChaosEngine chaos(queue, 7);
  if (cfg.partition_tacc) {
    opt.site_probe = [&net](const std::string& site, double) {
      return net.route(testbed::kCampusGateway, site).has_value();
    };
    chaos.attach_network(net);
    fault::FaultSpec spec;
    spec.kind = fault::FaultKind::Partition;
    spec.at = 0.25 * cfg.duration_s;
    spec.duration = 0.25 * cfg.duration_s;
    spec.target = testbed::kSiteTACC;
    chaos.inject(spec);
  }

  serve::FleetService service(queue, registry, opt);
  return service.run();
}

util::Json report_row(const FleetConfig& cfg, const serve::ServeReport& r) {
  util::Json row = util::Json::object();
  row.set("shards", cfg.shards);
  row.set("requests", r.requests);
  row.set("completed", r.completed);
  row.set("shed", r.shed);
  row.set("failed", r.requests - r.completed - r.shed);
  row.set("throughput_rps", r.throughput_rps);
  row.set("mean_batch", r.mean_batch());
  row.set("queued_p50_s", r.queued_quantile_s(0.50));
  row.set("queued_p99_s", r.queued_quantile_s(0.99));
  row.set("shard_downs", r.shard_downs);
  row.set("shard_ups", r.shard_ups);
  row.set("rebalanced", r.rebalanced);
  return row;
}

int run(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_fleet.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else {
      std::cerr << "usage: bench_fleet [--smoke] [--out=PATH]\n";
      return 1;
    }
  }
  std::cout << "bench_fleet" << (smoke ? " (smoke mode)" : "") << "\n";

  util::Json doc = util::Json::object();
  doc.set("bench", "fleet");
  doc.set("smoke", smoke);
  std::size_t total_requests = 0;

  // --- 1: shard scaling under a saturating stream -------------------------
  std::cout << "shard scaling, saturating arrivals:\n";
  util::Json scaling = util::Json::array();
  double rps1 = 0.0;
  double rps4 = 0.0;
  for (std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    FleetConfig cfg;
    cfg.shards = shards;
    if (smoke) {
      cfg.cars = 8;
      cfg.duration_s = 0.05;
      cfg.mean_interarrival_s = 0.002;
    }
    const serve::ServeReport r = run_fleet(cfg);
    total_requests += r.requests;
    if (shards == 1) rps1 = r.throughput_rps;
    if (shards == 4) rps4 = r.throughput_rps;
    std::cout << "  " << shards << " shard(s): " << r.throughput_rps
              << " req/s completed, " << r.shed << " shed, queued p99 "
              << r.queued_quantile_s(0.99) << " s\n";
    scaling.push_back(report_row(cfg, r));
  }
  util::Json scale_doc = util::Json::object();
  scale_doc.set("rows", std::move(scaling));
  scale_doc.set("speedup_4_vs_1", rps1 > 0.0 ? rps4 / rps1 : 0.0);
  scale_doc.set("efficiency_4_vs_1",
                rps1 > 0.0 ? rps4 / (4.0 * rps1) : 0.0);
  std::cout << "  scaling 1 -> 4 shards: "
            << (rps1 > 0.0 ? rps4 / rps1 : 0.0) << "x ("
            << (rps1 > 0.0 ? 100.0 * rps4 / (4.0 * rps1) : 0.0)
            << "% efficiency)\n";
  doc.set("scaling", std::move(scale_doc));

  // --- 2: chaos loss of one site vs steady state ---------------------------
  std::cout << "4-shard fleet, steady vs CHI@TACC partition:\n";
  FleetConfig steady;
  steady.shards = 4;
  // ~32k req/s offered: moderate load, under even the two-shard capacity
  // left after the site loss, so the survivors can absorb the reroute.
  steady.mean_interarrival_s = 0.008;
  FleetConfig chaos_cfg = steady;
  chaos_cfg.partition_tacc = true;
  if (smoke) {
    steady.cars = chaos_cfg.cars = 8;
    steady.duration_s = chaos_cfg.duration_s = 0.4;
    steady.mean_interarrival_s = chaos_cfg.mean_interarrival_s = 0.004;
  }
  const serve::ServeReport rs = run_fleet(steady);
  const serve::ServeReport rc = run_fleet(chaos_cfg);
  total_requests += rs.requests + rc.requests;
  const double p99_steady = rs.queued_quantile_s(0.99);
  const double p99_chaos = rc.queued_quantile_s(0.99);
  util::Json chaos_doc = util::Json::object();
  chaos_doc.set("steady", report_row(steady, rs));
  chaos_doc.set("partitioned", report_row(chaos_cfg, rc));
  chaos_doc.set("p99_ratio",
                p99_steady > 0.0 ? p99_chaos / p99_steady : 0.0);
  std::cout << "  steady:      queued p99 " << p99_steady << " s, "
            << rs.shed << " shed\n";
  std::cout << "  partitioned: queued p99 " << p99_chaos << " s, " << rc.shed
            << " shed, " << rc.shard_downs << " shard down(s), "
            << rc.rebalanced << " rerouted, "
            << (rc.requests - rc.completed - rc.shed) << " failed\n";
  std::cout << "  p99 ratio through the site loss: "
            << (p99_steady > 0.0 ? p99_chaos / p99_steady : 0.0) << "x\n";
  doc.set("chaos", std::move(chaos_doc));
  doc.set("total_requests", total_requests);

  std::ofstream f(out_path);
  if (!f) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  f << doc.dump(2) << "\n";
  std::cout << "wrote " << out_path << " (" << total_requests
            << " simulated requests)\n";
  return 0;
}

}  // namespace
}  // namespace autolearn::bench

int main(int argc, char** argv) { return autolearn::bench::run(argc, argv); }
