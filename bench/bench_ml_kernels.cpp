// Kernel benchmark for the ml GEMM backbone. Measures:
//   1. sgemm GFLOP/s on the six layer shapes of the default model zoo
//      (batch 32, 24x32 frames),
//   2. naive loop-nest convolution vs the im2col+GEMM layer,
//   3. end-to-end training wall time of the Linear architecture with
//      faithful pre-GEMM layer implementations vs the shipped layers,
//      plus the real ml::fit wall time for reference.
//
// Writes BENCH_ml.json (override with --out=PATH). `--smoke` shrinks
// iteration counts so the binary doubles as a ctest smoke test
// (`ctest -L bench`). Set AUTOLEARN_THREADS to pin the worker count the
// JSON records.
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "camera/image.hpp"
#include "ml/conv.hpp"
#include "ml/driving_model.hpp"
#include "ml/gemm.hpp"
#include "ml/plan.hpp"
#include "ml/layers.hpp"
#include "ml/loss.hpp"
#include "ml/optimizer.hpp"
#include "ml/sequential.hpp"
#include "ml/trainer.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace autolearn::bench {
namespace {

using ml::Tensor;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// --- faithful pre-GEMM layer implementations ------------------------------
// Copies of the loop-nest Conv2D/Dense this PR replaced: batch-parallel
// forward, serial backward with the zero-gradient skip. They are the
// "before" side of the end-to-end comparison.

class NaiveConv2D : public ml::Layer {
 public:
  NaiveConv2D(std::size_t in_channels, std::size_t out_channels,
              std::size_t kernel, std::size_t stride, util::Rng& rng)
      : ic_(in_channels),
        oc_(out_channels),
        k_(kernel),
        stride_(stride),
        w_(Tensor::randn({out_channels, in_channels, kernel, kernel}, rng,
                         std::sqrt(2.0 / static_cast<double>(
                                             in_channels * kernel * kernel)))),
        b_(Tensor({out_channels}, 0.0f)) {}

  Tensor forward(const Tensor& x, bool /*train*/) override {
    last_input_ = x;
    const std::size_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
    const std::size_t oh = ml::Conv2D::out_dim(h, k_, stride_);
    const std::size_t ow = ml::Conv2D::out_dim(w, k_, stride_);
    Tensor y({n, oc_, oh, ow});
    const Tensor& wt = w_.value;
    const Tensor& bt = b_.value;
    util::ThreadPool::shared().parallel_for_chunks(
        0, n, [&](std::size_t n0, std::size_t n1) {
          for (std::size_t i = n0; i < n1; ++i) {
            for (std::size_t oc = 0; oc < oc_; ++oc) {
              for (std::size_t oy = 0; oy < oh; ++oy) {
                for (std::size_t ox = 0; ox < ow; ++ox) {
                  float acc = bt[oc];
                  const std::size_t iy0 = oy * stride_, ix0 = ox * stride_;
                  for (std::size_t ic = 0; ic < ic_; ++ic) {
                    for (std::size_t ky = 0; ky < k_; ++ky) {
                      const float* xrow = &x.at(i, ic, iy0 + ky, ix0);
                      const float* wrow = &wt.at(oc, ic, ky, 0);
                      for (std::size_t kx = 0; kx < k_; ++kx) {
                        acc += xrow[kx] * wrow[kx];
                      }
                    }
                  }
                  y.at(i, oc, oy, ox) = acc;
                }
              }
            }
          }
        });
    return y;
  }

  Tensor backward(const Tensor& grad_out) override {
    const Tensor& x = last_input_;
    const std::size_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
    const std::size_t oh = ml::Conv2D::out_dim(h, k_, stride_);
    const std::size_t ow = ml::Conv2D::out_dim(w, k_, stride_);
    Tensor grad_in(x.shape());
    const Tensor& wt = w_.value;
    Tensor& dw = w_.grad;
    Tensor& db = b_.grad;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t oc = 0; oc < oc_; ++oc) {
        for (std::size_t oy = 0; oy < oh; ++oy) {
          for (std::size_t ox = 0; ox < ow; ++ox) {
            const float g = grad_out.at(i, oc, oy, ox);
            if (g == 0.0f) continue;
            db[oc] += g;
            const std::size_t iy0 = oy * stride_, ix0 = ox * stride_;
            for (std::size_t ic = 0; ic < ic_; ++ic) {
              for (std::size_t ky = 0; ky < k_; ++ky) {
                const float* xrow = &x.at(i, ic, iy0 + ky, ix0);
                float* dxrow = &grad_in.at(i, ic, iy0 + ky, ix0);
                float* dwrow = &dw.at(oc, ic, ky, 0);
                const float* wrow = &wt.at(oc, ic, ky, 0);
                for (std::size_t kx = 0; kx < k_; ++kx) {
                  dwrow[kx] += g * xrow[kx];
                  dxrow[kx] += g * wrow[kx];
                }
              }
            }
          }
        }
      }
    }
    return grad_in;
  }

  std::vector<ml::Param*> params() override { return {&w_, &b_}; }
  std::string name() const override { return "naive_conv2d"; }

 private:
  std::size_t ic_, oc_, k_, stride_;
  ml::Param w_, b_;
  Tensor last_input_;
};

class NaiveDense : public ml::Layer {
 public:
  NaiveDense(std::size_t in_features, std::size_t out_features, util::Rng& rng)
      : in_features_(in_features),
        out_features_(out_features),
        w_(Tensor::randn({out_features, in_features}, rng,
                         std::sqrt(2.0 / static_cast<double>(in_features)))),
        b_(Tensor({out_features}, 0.0f)) {}

  Tensor forward(const Tensor& x, bool /*train*/) override {
    last_input_ = x;
    const std::size_t n = x.dim(0);
    Tensor y({n, out_features_});
    const Tensor& w = w_.value;
    const Tensor& b = b_.value;
    util::ThreadPool::shared().parallel_for_chunks(
        0, n, [&](std::size_t b0, std::size_t b1) {
          for (std::size_t i = b0; i < b1; ++i) {
            const float* xi = x.data() + i * in_features_;
            float* yi = y.data() + i * out_features_;
            for (std::size_t o = 0; o < out_features_; ++o) {
              const float* wo = w.data() + o * in_features_;
              float acc = b[o];
              for (std::size_t k = 0; k < in_features_; ++k) {
                acc += wo[k] * xi[k];
              }
              yi[o] = acc;
            }
          }
        });
    return y;
  }

  Tensor backward(const Tensor& grad_out) override {
    const std::size_t n = last_input_.dim(0);
    Tensor grad_in({n, in_features_});
    const Tensor& w = w_.value;
    Tensor& dw = w_.grad;
    Tensor& db = b_.grad;
    for (std::size_t i = 0; i < n; ++i) {
      const float* gi = grad_out.data() + i * out_features_;
      const float* xi = last_input_.data() + i * in_features_;
      float* dxi = grad_in.data() + i * in_features_;
      for (std::size_t o = 0; o < out_features_; ++o) {
        const float g = gi[o];
        if (g == 0.0f) continue;
        db[o] += g;
        float* dwo = dw.data() + o * in_features_;
        const float* wo = w.data() + o * in_features_;
        for (std::size_t k = 0; k < in_features_; ++k) {
          dwo[k] += g * xi[k];
          dxi[k] += g * wo[k];
        }
      }
    }
    return grad_in;
  }

  std::vector<ml::Param*> params() override { return {&w_, &b_}; }
  std::string name() const override { return "naive_dense"; }

 private:
  std::size_t in_features_, out_features_;
  ml::Param w_, b_;
  Tensor last_input_;
};

// --- GEMM shape sweep ------------------------------------------------------

struct GemmShape {
  const char* name;  // which model-zoo layer this is (batch 32, 24x32)
  std::size_t m, n, k;
};

// [OC, C*K*K] @ [C*K*K, N*OH*OW] for the encoder convs, [N, F] @ [F, O]^T
// for the heads; all at the default batch size 32 on 24x32 frames.
constexpr GemmShape kZooShapes[] = {
    {"encoder_conv1", 8, 5280, 9},    // Conv2D 1->8  k3 s2 on 24x32
    {"encoder_conv2", 16, 1120, 72},  // Conv2D 8->16 k3 s2 on 11x15
    {"encoder_conv3", 32, 192, 144},  // Conv2D 16->32 k3 s2 on 5x7
    {"dense_head", 32, 64, 192},      // Dense 192->64
    {"lstm_gates", 32, 128, 192},     // LSTM Wx: [N,D] @ [4H,D]^T
    {"conv3d_stage1", 8, 10560, 18},  // Conv3D 1->8 kd2 k3 sd1 s2, T=3
};

util::Json bench_gemm_shapes(bool smoke) {
  util::Json out = util::Json::array();
  util::Rng rng(1);
  for (const GemmShape& s : kZooShapes) {
    std::vector<float> a(s.m * s.k), b(s.k * s.n), c(s.m * s.n, 0.0f);
    for (float& v : a) v = static_cast<float>(rng.uniform(-1, 1));
    for (float& v : b) v = static_cast<float>(rng.uniform(-1, 1));
    const double flop = 2.0 * static_cast<double>(s.m) *
                        static_cast<double>(s.n) * static_cast<double>(s.k);
    // Repeat until ~0.2s of work (2 reps in smoke mode); report the best
    // rep so scheduling noise does not understate the kernel.
    const int reps =
        smoke ? 2 : std::max(10, static_cast<int>(2e8 / flop));
    ml::sgemm(false, false, s.m, s.n, s.k, 1.0f, a.data(), s.k, b.data(), s.n,
              0.0f, c.data(), s.n);  // warm-up: sizes thread-local packs
    double best = 1e30;
    for (int r = 0; r < reps; ++r) {
      const double t0 = now_seconds();
      ml::sgemm(false, false, s.m, s.n, s.k, 1.0f, a.data(), s.k, b.data(),
                s.n, 0.0f, c.data(), s.n);
      best = std::min(best, now_seconds() - t0);
    }
    util::Json row = util::Json::object();
    row.set("name", s.name);
    row.set("m", s.m);
    row.set("n", s.n);
    row.set("k", s.k);
    row.set("gflops", flop / best / 1e9);
    out.push_back(std::move(row));
    std::cout << "  gemm " << s.name << ": " << flop / best / 1e9
              << " GFLOP/s\n";
  }
  return out;
}

// --- naive vs GEMM convolution --------------------------------------------

util::Json bench_conv_speedup(bool smoke) {
  // Encoder stage 2 (8->16, k3, s2 on 11x15), the mid-sized conv of the
  // zoo, forward + backward at batch 32.
  const std::size_t n = 32, ic = 8, oc = 16, h = 11, w = 15, k = 3, s = 2;
  util::Rng rng(2);
  ml::Conv2D fast(ic, oc, k, s, rng);
  util::Rng rng2(2);
  NaiveConv2D naive(ic, oc, k, s, rng2);
  util::Rng data_rng(3);
  const Tensor x = Tensor::randn({n, ic, h, w}, data_rng, 1.0);
  const int reps = smoke ? 2 : 50;

  auto time_layer = [&](ml::Layer& layer) {
    Tensor y = layer.forward(x, true);  // warm-up + shape for grad
    const Tensor grad = Tensor::randn(y.shape(), data_rng, 1.0);
    layer.backward(grad);
    double best = 1e30;
    for (int r = 0; r < reps; ++r) {
      const double t0 = now_seconds();
      layer.forward(x, true);
      layer.backward(grad);
      best = std::min(best, now_seconds() - t0);
    }
    return best;
  };

  const double naive_s = time_layer(naive);
  const double gemm_s = time_layer(fast);
  util::Json out = util::Json::object();
  out.set("shape", "conv2d n32 8->16 k3 s2 11x15 fwd+bwd");
  out.set("naive_ms", naive_s * 1e3);
  out.set("gemm_ms", gemm_s * 1e3);
  out.set("speedup", naive_s / gemm_s);
  std::cout << "  conv naive " << naive_s * 1e3 << " ms, gemm "
            << gemm_s * 1e3 << " ms, speedup " << naive_s / gemm_s << "x\n";
  return out;
}

// --- end-to-end training --------------------------------------------------

/// The Linear architecture (encoder + dense head, dropout omitted so both
/// variants run the exact same math).
template <class ConvT, class DenseT>
ml::Sequential build_net(std::uint64_t seed) {
  ml::Sequential net;
  util::Rng rng(seed);
  net.add<ConvT>(1, 8, 3, 2, rng);
  net.add<ml::ReLU>();
  net.add<ConvT>(8, 16, 3, 2, rng);
  net.add<ml::ReLU>();
  net.add<ConvT>(16, 32, 3, 2, rng);
  net.add<ml::ReLU>();
  net.add<ml::Flatten>();
  net.add<DenseT>(static_cast<std::size_t>(192), static_cast<std::size_t>(64),
                  rng);
  net.add<ml::ReLU>();
  net.add<DenseT>(static_cast<std::size_t>(64), static_cast<std::size_t>(2),
                  rng);
  return net;
}

double train_epochs(ml::Sequential& net, const Tensor& images,
                    const Tensor& targets, std::size_t epochs,
                    std::size_t batch_size) {
  ml::Adam opt(2e-3);
  const std::size_t n = images.dim(0);
  const std::size_t img = images.dim(1) * images.dim(2) * images.dim(3);
  const double t0 = now_seconds();
  for (std::size_t e = 0; e < epochs; ++e) {
    for (std::size_t b = 0; b < n; b += batch_size) {
      const std::size_t sz = std::min(batch_size, n - b);
      Tensor xb({sz, images.dim(1), images.dim(2), images.dim(3)});
      std::memcpy(xb.data(), images.data() + b * img, sz * img * sizeof(float));
      Tensor yb({sz, 2});
      std::memcpy(yb.data(), targets.data() + b * 2, sz * 2 * sizeof(float));
      const Tensor pred = net.forward(xb, true);
      auto [loss, grad] = ml::mse_loss(pred, yb);
      net.backward(grad);
      opt.step(net.params());
    }
  }
  return now_seconds() - t0;
}

std::vector<ml::Sample> band_dataset(std::size_t n, const ml::ModelConfig& cfg,
                                     std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<ml::Sample> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t col = static_cast<std::size_t>(
        rng.uniform_int(2, static_cast<std::int64_t>(cfg.img_w) - 3));
    camera::Image img(cfg.img_w, cfg.img_h, 0.1f);
    for (std::size_t y = 0; y < cfg.img_h; ++y) {
      for (std::size_t dx = 0; dx < 3; ++dx) img.at(col - 1 + dx, y) = 0.9f;
    }
    ml::Sample smp;
    for (std::size_t f = 0; f < cfg.seq_len; ++f) smp.frames.push_back(img);
    const float steer = static_cast<float>(
        2.0 * static_cast<double>(col) / (cfg.img_w - 1) - 1.0);
    for (std::size_t h = 0; h < cfg.history_len; ++h) {
      smp.history.push_back(steer);
      smp.history.push_back(0.5f);
    }
    smp.steering = steer;
    smp.throttle = 0.5f;
    out.push_back(std::move(smp));
  }
  return out;
}

util::Json bench_end_to_end(bool smoke) {
  const std::size_t n = smoke ? 64 : 256;
  const std::size_t epochs = smoke ? 1 : 3;
  const std::size_t batch_size = 32;
  util::Rng data_rng(4);
  Tensor images = Tensor::randn({n, 1, 24, 32}, data_rng, 0.3);
  Tensor targets = Tensor::randn({n, 2}, data_rng, 0.5);

  auto naive_net = build_net<NaiveConv2D, NaiveDense>(9);
  auto gemm_net = build_net<ml::Conv2D, ml::Dense>(9);
  const double naive_s = train_epochs(naive_net, images, targets, epochs,
                                      batch_size);
  const double gemm_s = train_epochs(gemm_net, images, targets, epochs,
                                     batch_size);

  // The real trainer on the real Linear model (with dropout), for the
  // absolute wall-time record.
  ml::ModelConfig cfg;
  cfg.img_w = 32;
  cfg.img_h = 24;
  cfg.lr = 2e-3;
  auto model = ml::make_model(ml::ModelType::Linear, cfg);
  const auto train = band_dataset(n, cfg, 41);
  ml::TrainOptions opt;
  opt.epochs = epochs;
  opt.batch_size = batch_size;
  const ml::TrainResult r = ml::fit(*model, train, {}, opt);

  util::Json out = util::Json::object();
  out.set("architecture", "linear (3xconv2d + 2xdense)");
  out.set("samples", n);
  out.set("epochs", epochs);
  out.set("batch_size", batch_size);
  out.set("naive_seconds", naive_s);
  out.set("gemm_seconds", gemm_s);
  out.set("speedup", naive_s / gemm_s);
  out.set("fit_linear_wall_seconds", r.wall_seconds);
  std::cout << "  fit naive " << naive_s << " s, gemm " << gemm_s
            << " s, speedup " << naive_s / gemm_s << "x (ml::fit "
            << r.wall_seconds << " s)\n";
  return out;
}

// --- interpreted vs compiled forward --------------------------------------

util::Json bench_compiled_plan(bool smoke) {
  // Steady-state predict_batch at the serving batch size: the interpreted
  // per-layer walk (tensor allocation per layer per batch) vs the compiled
  // arena program (zero allocation, fused epilogues). Same model object,
  // bitwise-identical outputs (ctest -L plan); only wall time may differ.
  const std::size_t batch = 32;
  const int reps = smoke ? 3 : 200;
  util::Json out = util::Json::array();
  for (const ml::ModelType type : ml::all_model_types()) {
    ml::ModelConfig cfg;
    const auto model = ml::make_model(type, cfg);
    util::Rng rng(17);
    std::vector<ml::Sample> samples;
    samples.reserve(batch);
    for (std::size_t i = 0; i < batch; ++i) {
      ml::Sample s;
      for (std::size_t f = 0; f < cfg.seq_len; ++f) {
        camera::Image img(cfg.img_w, cfg.img_h);
        for (float& px : img.pixels()) {
          px = static_cast<float>(rng.uniform(0.0, 1.0));
        }
        s.frames.push_back(std::move(img));
      }
      for (std::size_t h = 0; h < cfg.history_len; ++h) {
        s.history.push_back(static_cast<float>(rng.uniform(-1.0, 1.0)));
        s.history.push_back(static_cast<float>(rng.uniform(0.0, 1.0)));
      }
      samples.push_back(std::move(s));
    }
    std::vector<ml::Prediction> pred(batch);

    auto time_path = [&] {
      model->predict_batch(samples.data(), batch, pred.data());  // warm-up
      double best = 1e30;
      for (int r = 0; r < reps; ++r) {
        const double t0 = now_seconds();
        model->predict_batch(samples.data(), batch, pred.data());
        best = std::min(best, now_seconds() - t0);
      }
      return best;
    };

    model->detach_plan();
    const double interp_s = time_path();
    model->attach_plan(batch);
    const double plan_s = time_path();
    model->detach_plan();

    util::Json row = util::Json::object();
    row.set("model", std::string(ml::to_string(type)));
    row.set("batch", batch);
    row.set("interpreted_ms", interp_s * 1e3);
    row.set("compiled_ms", plan_s * 1e3);
    row.set("speedup", interp_s / plan_s);
    out.push_back(std::move(row));
    std::cout << "  plan " << ml::to_string(type) << ": interpreted "
              << interp_s * 1e3 << " ms, compiled " << plan_s * 1e3
              << " ms, speedup " << interp_s / plan_s << "x\n";
  }
  return out;
}

int run(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_ml.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else {
      std::cerr << "usage: bench_ml_kernels [--smoke] [--out=PATH]\n";
      return 1;
    }
  }
  const std::size_t threads = util::ThreadPool::shared().size();
  std::cout << "bench_ml_kernels: " << threads << " worker(s)"
            << (smoke ? ", smoke mode" : "") << "\n";

  util::Json doc = util::Json::object();
  doc.set("bench", "ml_kernels");
  doc.set("threads", threads);
  doc.set("smoke", smoke);
  std::cout << "GEMM model-zoo shapes:\n";
  doc.set("gemm", bench_gemm_shapes(smoke));
  std::cout << "convolution lowering:\n";
  doc.set("conv_naive_vs_gemm", bench_conv_speedup(smoke));
  std::cout << "end-to-end training:\n";
  doc.set("fit_end_to_end", bench_end_to_end(smoke));
  std::cout << "interpreted vs compiled forward:\n";
  doc.set("compiled_plan", bench_compiled_plan(smoke));

  const ml::KernelCounters kc = ml::kernel_counters();
  util::Json counters = util::Json::object();
  counters.set("gemm_calls", kc.gemm_calls);
  counters.set("gemm_flops", kc.gemm_flops);
  counters.set("im2col_elems", kc.im2col_elems);
  counters.set("col2im_elems", kc.col2im_elems);
  doc.set("kernel_counters", std::move(counters));

  std::ofstream f(out_path);
  if (!f) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  f << doc.dump(2) << "\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

}  // namespace
}  // namespace autolearn::bench

int main(int argc, char** argv) { return autolearn::bench::run(argc, argv); }
