// Observability kill-switch overhead (docs/observability.md §overhead).
//
// The spine's contract is that instrumentation costs nothing when it is
// off: a SpanGuard on a null tracer (the runtime kill switch) must be a
// branch and nothing else, and a muted tracer must not allocate or
// record. The microbenchmarks compare a bare workload against the null,
// muted, and enabled paths; the reproduction pass re-times the same four
// variants with std::chrono and writes BENCH_obs.json so the acceptance
// check ("disabled within noise of baseline") is machine-readable.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"

namespace {

using namespace autolearn;

// A workload small enough that span overhead would show if it existed.
inline std::uint64_t work_step(std::uint64_t x) {
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  return x;
}

void BM_BareWorkload(benchmark::State& state) {
  std::uint64_t x = 1;
  for (auto _ : state) {
    x = work_step(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_BareWorkload);

void BM_NullTracerSpan(benchmark::State& state) {
  // The runtime kill switch: subsystems keep a Tracer* that is null.
  obs::Tracer* tracer = nullptr;
  std::uint64_t x = 1;
  for (auto _ : state) {
    const obs::SpanGuard span(tracer, "bench.step", "bench");
    x = work_step(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_NullTracerSpan);

void BM_MutedTracerSpan(benchmark::State& state) {
  obs::Tracer tracer;
  tracer.set_enabled(false);
  std::uint64_t x = 1;
  for (auto _ : state) {
    const obs::SpanGuard span(&tracer, "bench.step", "bench");
    x = work_step(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_MutedTracerSpan);

void BM_EnabledTracerSpan(benchmark::State& state) {
  obs::Tracer tracer;
  std::uint64_t x = 1;
  for (auto _ : state) {
    if (tracer.size() > 1u << 16) tracer.clear();  // before any span opens
    const obs::SpanGuard span(&tracer, "bench.step", "bench");
    x = work_step(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_EnabledTracerSpan);

void BM_CounterInc(benchmark::State& state) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("bench.steps");  // resolved once, hot-path
  for (auto _ : state) {
    c.inc();
    benchmark::DoNotOptimize(c.value());
  }
}
BENCHMARK(BM_CounterInc);

void BM_HistogramObserve(benchmark::State& state) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("bench.lat");
  double v = 0.0001;
  for (auto _ : state) {
    h.observe(v);
    v = v < 10.0 ? v * 1.01 : 0.0001;
    benchmark::DoNotOptimize(h.count());
  }
}
BENCHMARK(BM_HistogramObserve);

/// Times `body` over `iters` iterations and returns ns per iteration.
double time_ns_per_op(std::size_t iters,
                      const std::function<std::uint64_t()>& body) {
  // Warm-up pass so lazy init and cache effects do not skew the first run.
  std::uint64_t sink = body();
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) sink ^= body();
  const auto t1 = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(sink);
  const double ns =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              t1 - t0)
                              .count());
  return ns / static_cast<double>(iters);
}

void reproduce() {
  constexpr std::size_t kIters = 2'000'000;
  constexpr int kSteps = 8;  // workload steps per measured op

  const auto workload = [] {
    std::uint64_t x = 1;
    for (int i = 0; i < kSteps; ++i) x = work_step(x);
    return x;
  };

  const double baseline = time_ns_per_op(kIters, workload);

  obs::Tracer* null_tracer = nullptr;
  const double null_path = time_ns_per_op(kIters, [&] {
    const obs::SpanGuard span(null_tracer, "bench.step", "bench");
    return workload();
  });

  obs::Tracer muted;
  muted.set_enabled(false);
  const double muted_path = time_ns_per_op(kIters, [&] {
    const obs::SpanGuard span(&muted, "bench.step", "bench");
    return workload();
  });

  obs::Tracer enabled;
  const double enabled_path = time_ns_per_op(kIters, [&] {
    if (enabled.size() > 1u << 16) enabled.clear();  // before any span opens
    const obs::SpanGuard span(&enabled, "bench.step", "bench");
    return workload();
  });

  util::Json out = util::Json::object();
#ifdef AUTOLEARN_OBS_DISABLED
  out.set("compiled_out", util::Json(true));
#else
  out.set("compiled_out", util::Json(false));
#endif
  out.set("iters", util::Json(static_cast<double>(kIters)));
  out.set("baseline_ns", util::Json(baseline));
  out.set("null_tracer_ns", util::Json(null_path));
  out.set("muted_tracer_ns", util::Json(muted_path));
  out.set("enabled_tracer_ns", util::Json(enabled_path));
  out.set("null_overhead_ns", util::Json(null_path - baseline));
  out.set("muted_overhead_ns", util::Json(muted_path - baseline));
  out.set("enabled_overhead_ns", util::Json(enabled_path - baseline));
  out.set("null_ratio", util::Json(null_path / baseline));
  out.set("muted_ratio", util::Json(muted_path / baseline));
  out.set("enabled_ratio", util::Json(enabled_path / baseline));

  std::ofstream file("BENCH_obs.json", std::ios::binary);
  file << out.dump() << "\n";
  std::cout << "Observability overhead (ns/op over " << kSteps
            << " workload steps):\n"
            << "  baseline        " << baseline << "\n"
            << "  null tracer     " << null_path << "  (x"
            << null_path / baseline << ")\n"
            << "  muted tracer    " << muted_path << "  (x"
            << muted_path / baseline << ")\n"
            << "  enabled tracer  " << enabled_path << "  (x"
            << enabled_path / baseline << ")\n"
            << "Wrote BENCH_obs.json. Acceptance: the null/muted paths stay "
               "within noise of baseline.\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  reproduce();
  return 0;
}
