// Int8 inference benchmark. Measures:
//   1. qgemm (packed int8, AVX2 vpmaddubsw when available) vs fp32 sgemm
//      GFLOP/s on the six layer shapes of the default model zoo, plus
//      the portable scalar qgemm for reference,
//   2. end-to-end predict_batch wall time of every zoo model fp32 vs its
//      quantized twin (max-abs calibration from tub-style samples),
//   3. the perf-model continuum view: simulated inference_latency_s per
//      zoo model on the Pi 4 edge tier at fp32 vs int8, against a V100
//      fp32 datacenter baseline.
//
// Writes BENCH_quant.json (override with --out=PATH). `--smoke` shrinks
// iteration counts so the binary doubles as a ctest smoke test
// (`ctest -L bench`). Set AUTOLEARN_THREADS to pin the worker count the
// JSON records.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "camera/image.hpp"
#include "gpu/perf_model.hpp"
#include "ml/driving_model.hpp"
#include "ml/gemm.hpp"
#include "ml/quant.hpp"
#include "ml/quant_model.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace autolearn::bench {
namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// --- int8 vs fp32 GEMM on the zoo shapes ----------------------------------

struct GemmShape {
  const char* name;  // which model-zoo layer this is (batch 32, 24x32)
  std::size_t m, n, k;
};

// Same sweep as bench_ml_kernels: [OC, C*K*K] @ [C*K*K, N*OH*OW] for the
// encoder convs, [N, F] @ [F, O]^T for the heads, batch 32, 24x32 frames.
constexpr GemmShape kZooShapes[] = {
    {"encoder_conv1", 8, 5280, 9},    // Conv2D 1->8  k3 s2 on 24x32
    {"encoder_conv2", 16, 1120, 72},  // Conv2D 8->16 k3 s2 on 11x15
    {"encoder_conv3", 32, 192, 144},  // Conv2D 16->32 k3 s2 on 5x7
    {"dense_head", 32, 64, 192},      // Dense 192->64
    {"lstm_gates", 32, 128, 192},     // LSTM Wx: [N,D] @ [4H,D]^T
    {"conv3d_stage1", 8, 10560, 18},  // Conv3D 1->8 kd2 k3 sd1 s2, T=3
};

template <class Fn>
double best_of(int reps, Fn&& fn) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    const double t0 = now_seconds();
    fn();
    best = std::min(best, now_seconds() - t0);
  }
  return best;
}

util::Json bench_qgemm_shapes(bool smoke) {
  util::Json out = util::Json::array();
  util::Rng rng(1);
  const bool have_avx2 = ml::qgemm_isa_supported(ml::QGemmIsa::Avx2);
  for (const GemmShape& s : kZooShapes) {
    std::vector<float> w(s.m * s.k), x(s.k * s.n), c(s.m * s.n, 0.0f);
    for (float& v : w) v = static_cast<float>(rng.uniform(-1, 1));
    for (float& v : x) v = static_cast<float>(rng.uniform(0, 1));
    const double flop = 2.0 * static_cast<double>(s.m) *
                        static_cast<double>(s.n) * static_cast<double>(s.k);
    const int reps = smoke ? 2 : std::max(10, static_cast<int>(2e8 / flop));

    // fp32 baseline: the same m x n x k product through sgemm.
    ml::sgemm(false, false, s.m, s.n, s.k, 1.0f, w.data(), s.k, x.data(), s.n,
              0.0f, c.data(), s.n);  // warm-up: sizes thread-local packs
    const double fp32_s = best_of(reps, [&] {
      ml::sgemm(false, false, s.m, s.n, s.k, 1.0f, w.data(), s.k, x.data(),
                s.n, 0.0f, c.data(), s.n);
    });

    // int8: weights prepacked offline (as in a deployed artifact),
    // activations pre-quantized (that cost is in the end-to-end section).
    const ml::QuantizedWeights qw = ml::quantize_weights(w.data(), s.m, s.k);
    const ml::ActQuant xq = ml::choose_act_quant(0.0f, 1.0f);
    std::vector<std::uint8_t> qx(s.k * s.n);
    ml::quantize_activations(x.data(), x.size(), xq, qx.data());
    ml::qgemm(qw, qx.data(), s.n, xq, c.data(), s.n);  // warm-up
    const double int8_s = best_of(reps, [&] {
      ml::qgemm(qw, qx.data(), s.n, xq, c.data(), s.n);
    });
    const double scalar_s = best_of(reps, [&] {
      ml::qgemm(qw, qx.data(), s.n, xq, c.data(), s.n, true,
                ml::QGemmIsa::Scalar);
    });

    util::Json row = util::Json::object();
    row.set("name", s.name);
    row.set("m", s.m);
    row.set("n", s.n);
    row.set("k", s.k);
    row.set("fp32_gflops", flop / fp32_s / 1e9);
    row.set("int8_gflops", flop / int8_s / 1e9);
    row.set("int8_scalar_gflops", flop / scalar_s / 1e9);
    row.set("int8_speedup", fp32_s / int8_s);
    row.set("avx2", have_avx2);
    out.push_back(std::move(row));
    std::cout << "  gemm " << s.name << ": fp32 " << flop / fp32_s / 1e9
              << " GFLOP/s, int8 " << flop / int8_s / 1e9 << " (scalar "
              << flop / scalar_s / 1e9 << "), speedup " << fp32_s / int8_s
              << "x\n";
  }
  return out;
}

// --- end-to-end zoo model latency -----------------------------------------

std::vector<ml::Sample> band_dataset(std::size_t n, const ml::ModelConfig& cfg,
                                     std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<ml::Sample> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t col = static_cast<std::size_t>(
        rng.uniform_int(2, static_cast<std::int64_t>(cfg.img_w) - 3));
    camera::Image img(cfg.img_w, cfg.img_h, 0.1f);
    for (std::size_t y = 0; y < cfg.img_h; ++y) {
      for (std::size_t dx = 0; dx < 3; ++dx) img.at(col - 1 + dx, y) = 0.9f;
    }
    ml::Sample smp;
    for (std::size_t f = 0; f < cfg.seq_len; ++f) smp.frames.push_back(img);
    const float steer = static_cast<float>(
        2.0 * static_cast<double>(col) / (cfg.img_w - 1) - 1.0);
    for (std::size_t h = 0; h < cfg.history_len; ++h) {
      smp.history.push_back(steer);
      smp.history.push_back(0.5f);
    }
    smp.steering = steer;
    smp.throttle = 0.5f;
    out.push_back(std::move(smp));
  }
  return out;
}

util::Json bench_zoo_models(bool smoke, util::Json* continuum_out) {
  util::Json out = util::Json::array();
  util::Json continuum = util::Json::array();
  ml::ModelConfig cfg;
  cfg.img_w = 32;
  cfg.img_h = 24;
  const std::size_t batch = 32;
  const auto samples = band_dataset(batch, cfg, 5);
  const auto calibration = band_dataset(64, cfg, 6);
  const int reps = smoke ? 2 : 30;
  const gpu::DeviceSpec& pi = gpu::device("RaspberryPi4");
  const gpu::DeviceSpec& v100 = gpu::device("V100");
  for (ml::ModelType type : ml::all_model_types()) {
    auto fp32 = ml::make_model(type, cfg);
    auto int8 = ml::quantize_model(*fp32, cfg, calibration,
                                   ml::QuantizeOptions{});
    std::vector<ml::Prediction> sink(batch);
    auto time_model = [&](ml::DrivingModel& m) {
      m.predict_batch(samples.data(), batch, sink.data());  // warm-up
      return best_of(reps,
                     [&] { m.predict_batch(samples.data(), batch, sink.data()); });
    };
    const double fp32_s = time_model(*fp32);
    const double int8_s = time_model(*int8);
    util::Json row = util::Json::object();
    row.set("model", fp32->type_name());
    row.set("batch", batch);
    row.set("fp32_ms", fp32_s * 1e3);
    row.set("int8_ms", int8_s * 1e3);
    row.set("speedup", fp32_s / int8_s);
    out.push_back(std::move(row));
    std::cout << "  model " << fp32->type_name() << ": fp32 "
              << fp32_s * 1e3 << " ms, int8 " << int8_s * 1e3
              << " ms, speedup " << fp32_s / int8_s << "x\n";

    // Continuum view: the same model priced by the perf model — edge
    // (Pi 4) fp32 vs int8 and the V100 fp32 datacenter tier, batch 1
    // (the on-device steering loop is unbatched).
    const std::uint64_t flops = fp32->flops_per_sample();
    util::Json crow = util::Json::object();
    crow.set("model", fp32->type_name());
    crow.set("flops_per_sample", flops);
    crow.set("pi4_fp32_ms",
             gpu::inference_latency_s(pi, flops, 1, gpu::Precision::Fp32) *
                 1e3);
    crow.set("pi4_int8_ms",
             gpu::inference_latency_s(pi, flops, 1, gpu::Precision::Int8) *
                 1e3);
    crow.set("v100_fp32_ms",
             gpu::inference_latency_s(v100, flops, 1, gpu::Precision::Fp32) *
                 1e3);
    continuum.push_back(std::move(crow));
  }
  *continuum_out = std::move(continuum);
  return out;
}

int run(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_quant.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else {
      std::cerr << "usage: bench_quant [--smoke] [--out=PATH]\n";
      return 1;
    }
  }
  const std::size_t threads = util::ThreadPool::shared().size();
  std::cout << "bench_quant: " << threads << " worker(s)"
            << (smoke ? ", smoke mode" : "")
            << (ml::qgemm_isa_supported(ml::QGemmIsa::Avx2) ? ", avx2"
                                                            : ", scalar")
            << "\n";

  util::Json doc = util::Json::object();
  doc.set("bench", "quant");
  doc.set("threads", threads);
  doc.set("smoke", smoke);
  doc.set("avx2", ml::qgemm_isa_supported(ml::QGemmIsa::Avx2));
  std::cout << "int8 vs fp32 GEMM on model-zoo shapes:\n";
  doc.set("gemm", bench_qgemm_shapes(smoke));
  std::cout << "end-to-end zoo models (predict_batch, batch 32):\n";
  util::Json continuum;
  doc.set("models", bench_zoo_models(smoke, &continuum));
  doc.set("continuum_latency", std::move(continuum));

  const ml::KernelCounters kc = ml::kernel_counters();
  util::Json counters = util::Json::object();
  counters.set("gemm_calls", kc.gemm_calls);
  counters.set("gemm_flops", kc.gemm_flops);
  counters.set("qgemm_calls", kc.qgemm_calls);
  counters.set("qgemm_ops", kc.qgemm_ops);
  doc.set("kernel_counters", std::move(counters));

  std::ofstream f(out_path);
  if (!f) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  f << doc.dump(2) << "\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

}  // namespace
}  // namespace autolearn::bench

int main(int argc, char** argv) { return autolearn::bench::run(argc, argv); }
