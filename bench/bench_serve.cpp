// Fleet serving benchmark: what dynamic batching buys.
//
// Two measurements, both on the conv3d zoo model (the heaviest forward):
//   1. wall_clock — real CPU time of predict() one-by-one vs
//      predict_batch() in chunks of 8 and 32: the GEMM-backbone
//      amortization (one im2col + one sgemm per layer instead of n).
//   2. fleet_sim — the FleetService under a saturating arrival stream at
//      batch caps 1 / 8 / 32: simulated throughput (req/s) and p50/p99
//      queue latency, priced by the gpu::perf_model batched latency on a
//      V100 worker.
//
// Writes BENCH_serve.json (override with --out=PATH). `--smoke` shrinks
// the workload so the binary doubles as a ctest smoke test
// (`ctest -L bench -L serve`).
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "camera/image.hpp"
#include "ml/driving_model.hpp"
#include "serve/model_registry.hpp"
#include "serve/service.hpp"
#include "util/event_queue.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace autolearn::bench {
namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<ml::Sample> make_samples(const ml::ModelConfig& cfg,
                                     std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<ml::Sample> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ml::Sample s;
    for (std::size_t f = 0; f < cfg.seq_len; ++f) {
      camera::Image img(cfg.img_w, cfg.img_h);
      for (float& px : img.pixels()) {
        px = static_cast<float>(rng.uniform(0.0, 1.0));
      }
      s.frames.push_back(std::move(img));
    }
    out.push_back(std::move(s));
  }
  return out;
}

// --- 1: real wall-clock, per-sample vs batched forward ---------------------

util::Json bench_wall_clock(bool smoke) {
  const std::size_t n = smoke ? 64 : 512;
  const int reps = smoke ? 1 : 5;
  ml::ModelConfig cfg;
  const auto model = ml::make_model(ml::ModelType::Conv3d, cfg);
  const auto samples = make_samples(cfg, n, 3);
  std::vector<ml::Prediction> preds(n);
  model->predict_batch(samples.data(), 1, preds.data());  // size the layers

  const auto time_chunked = [&](std::size_t chunk) {
    double best = 1e30;
    for (int r = 0; r < reps; ++r) {
      const double t0 = now_seconds();
      for (std::size_t b = 0; b < n; b += chunk) {
        const std::size_t m = std::min(chunk, n - b);
        model->predict_batch(samples.data() + b, m, preds.data() + b);
      }
      best = std::min(best, now_seconds() - t0);
    }
    return best;
  };

  const double per_sample_s = time_chunked(1);
  util::Json out = util::Json::object();
  out.set("model", "3d");
  out.set("samples", n);
  out.set("per_sample_s", per_sample_s);
  out.set("per_sample_rps", static_cast<double>(n) / per_sample_s);
  util::Json rows = util::Json::array();
  for (std::size_t chunk : {std::size_t{8}, std::size_t{32}}) {
    const double t = time_chunked(chunk);
    util::Json row = util::Json::object();
    row.set("batch", chunk);
    row.set("total_s", t);
    row.set("rps", static_cast<double>(n) / t);
    row.set("speedup_vs_per_sample", per_sample_s / t);
    std::cout << "  wall-clock batch " << chunk << ": "
              << static_cast<double>(n) / t << " samples/s ("
              << per_sample_s / t << "x per-sample)\n";
    rows.push_back(std::move(row));
  }
  out.set("batched", std::move(rows));
  return out;
}

// --- 2: simulated fleet throughput vs batch cap ----------------------------

serve::ServeReport run_fleet(std::size_t batch_cap, bool smoke,
                             bool compile_plans = true) {
  util::EventQueue queue;
  serve::ModelRegistry registry;
  ml::ModelConfig cfg;
  registry.publish(std::shared_ptr<ml::DrivingModel>(
                       ml::make_model(ml::ModelType::Conv3d, cfg)),
                   "bench");

  serve::FleetOptions opt;
  opt.compile_plans = compile_plans;
  opt.cars = 16;
  // ~80k req/s offered: saturates the cap-1 worker (a V100 is launch-bound
  // at ~18k calls/s on this model) while cap-32 keeps up.
  opt.mean_interarrival_s = smoke ? 0.0008 : 0.0002;
  // Long enough that the constant RTT tail on the last response does not
  // dominate the makespan.
  opt.duration_s = smoke ? 0.02 : 0.1;
  opt.batcher.max_batch = batch_cap;
  opt.batcher.max_delay_s = 0.01;
  opt.placement = core::Placement::Cloud;
  // Capacity measurement: admission control off (nothing shed), the
  // backlog drains after the arrival window and the makespan reflects it.
  opt.queue_budget = 1u << 20;
  opt.seed = 7;
  serve::FleetService service(queue, registry, opt);
  return service.run();
}

util::Json fleet_row(std::size_t cap, bool smoke) {
  const serve::ServeReport r = run_fleet(cap, smoke);
  util::Json row = util::Json::object();
  row.set("batch_cap", cap);
  row.set("requests", r.requests);
  row.set("completed", r.completed);
  row.set("batches", r.batches);
  row.set("mean_batch", r.mean_batch());
  row.set("makespan_s", r.duration_s);
  row.set("throughput_rps", r.throughput_rps);
  row.set("queued_p50_s", r.queued_quantile_s(0.50));
  row.set("queued_p99_s", r.queued_quantile_s(0.99));
  std::cout << "  fleet cap " << cap << ": " << r.throughput_rps
            << " req/s, mean batch " << r.mean_batch() << ", queued p99 "
            << r.queued_quantile_s(0.99) << " s\n";
  return row;
}

// --- 3: interpreted vs compiled serving host --------------------------------

util::Json bench_compiled_serving(bool smoke) {
  // Same deterministic workload with plans off vs on. The simulated
  // report is identical either way (ctest -L plan pins that); what the
  // compiled path buys is host CPU time — every dispatched batch runs the
  // arena step program instead of the per-layer tensor walk.
  const int reps = smoke ? 1 : 3;
  const auto time_run = [&](bool plans) {
    double best = 1e30;
    for (int r = 0; r < reps; ++r) {
      const double t0 = now_seconds();
      run_fleet(32, smoke, plans);
      best = std::min(best, now_seconds() - t0);
    }
    return best;
  };
  const double interp_s = time_run(false);
  const double plan_s = time_run(true);
  util::Json out = util::Json::object();
  out.set("workload", "conv3d fleet, batch cap 32");
  out.set("interpreted_host_s", interp_s);
  out.set("compiled_host_s", plan_s);
  out.set("speedup", interp_s / plan_s);
  std::cout << "  host wall-clock interpreted " << interp_s << " s, compiled "
            << plan_s << " s, speedup " << interp_s / plan_s << "x\n";
  return out;
}

int run(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else {
      std::cerr << "usage: bench_serve [--smoke] [--out=PATH]\n";
      return 1;
    }
  }
  std::cout << "bench_serve" << (smoke ? " (smoke mode)" : "") << "\n";

  util::Json doc = util::Json::object();
  doc.set("bench", "serve");
  doc.set("smoke", smoke);

  std::cout << "real wall-clock, conv3d predict vs predict_batch:\n";
  doc.set("wall_clock", bench_wall_clock(smoke));

  std::cout << "simulated fleet, throughput vs batch cap:\n";
  util::Json fleet = util::Json::array();
  double cap1_rps = 0.0;
  double cap32_rps = 0.0;
  for (std::size_t cap : {std::size_t{1}, std::size_t{8}, std::size_t{32}}) {
    util::Json row = fleet_row(cap, smoke);
    const double rps = row.at("throughput_rps").as_number();
    if (cap == 1) cap1_rps = rps;
    if (cap == 32) cap32_rps = rps;
    fleet.push_back(std::move(row));
  }
  util::Json sim = util::Json::object();
  sim.set("rows", std::move(fleet));
  sim.set("speedup_vs_cap1", cap1_rps > 0.0 ? cap32_rps / cap1_rps : 0.0);
  doc.set("fleet_sim", std::move(sim));
  std::cout << "  dynamic batching speedup (cap 32 vs cap 1): "
            << (cap1_rps > 0.0 ? cap32_rps / cap1_rps : 0.0) << "x\n";

  std::cout << "interpreted vs compiled serving host:\n";
  doc.set("compiled_serving", bench_compiled_serving(smoke));

  std::ofstream f(out_path);
  if (!f) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  f << doc.dump(2) << "\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

}  // namespace
}  // namespace autolearn::bench

int main(int argc, char** argv) { return autolearn::bench::run(argc, argv); }
