file(REMOVE_RECURSE
  "CMakeFiles/bench_a1_framesize.dir/bench_a1_framesize.cpp.o"
  "CMakeFiles/bench_a1_framesize.dir/bench_a1_framesize.cpp.o.d"
  "bench_a1_framesize"
  "bench_a1_framesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_framesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
