# Empty dependencies file for bench_a1_framesize.
# This may be replaced when dependencies are built.
