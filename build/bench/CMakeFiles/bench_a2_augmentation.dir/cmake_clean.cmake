file(REMOVE_RECURSE
  "CMakeFiles/bench_a2_augmentation.dir/bench_a2_augmentation.cpp.o"
  "CMakeFiles/bench_a2_augmentation.dir/bench_a2_augmentation.cpp.o.d"
  "bench_a2_augmentation"
  "bench_a2_augmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_augmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
