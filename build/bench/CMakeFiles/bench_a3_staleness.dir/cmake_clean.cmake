file(REMOVE_RECURSE
  "CMakeFiles/bench_a3_staleness.dir/bench_a3_staleness.cpp.o"
  "CMakeFiles/bench_a3_staleness.dir/bench_a3_staleness.cpp.o.d"
  "bench_a3_staleness"
  "bench_a3_staleness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a3_staleness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
