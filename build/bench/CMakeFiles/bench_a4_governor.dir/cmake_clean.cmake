file(REMOVE_RECURSE
  "CMakeFiles/bench_a4_governor.dir/bench_a4_governor.cpp.o"
  "CMakeFiles/bench_a4_governor.dir/bench_a4_governor.cpp.o.d"
  "bench_a4_governor"
  "bench_a4_governor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a4_governor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
