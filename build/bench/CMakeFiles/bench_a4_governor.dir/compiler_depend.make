# Empty compiler generated dependencies file for bench_a4_governor.
# This may be replaced when dependencies are built.
