file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_byod.dir/bench_e10_byod.cpp.o"
  "CMakeFiles/bench_e10_byod.dir/bench_e10_byod.cpp.o.d"
  "bench_e10_byod"
  "bench_e10_byod.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_byod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
