# Empty dependencies file for bench_e10_byod.
# This may be replaced when dependencies are built.
