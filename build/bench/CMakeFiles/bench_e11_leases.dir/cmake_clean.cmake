file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_leases.dir/bench_e11_leases.cpp.o"
  "CMakeFiles/bench_e11_leases.dir/bench_e11_leases.cpp.o.d"
  "bench_e11_leases"
  "bench_e11_leases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_leases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
