file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_datasize.dir/bench_e12_datasize.cpp.o"
  "CMakeFiles/bench_e12_datasize.dir/bench_e12_datasize.cpp.o.d"
  "bench_e12_datasize"
  "bench_e12_datasize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_datasize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
