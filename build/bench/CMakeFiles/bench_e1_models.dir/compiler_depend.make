# Empty compiler generated dependencies file for bench_e1_models.
# This may be replaced when dependencies are built.
