file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_autonomy.dir/bench_e2_autonomy.cpp.o"
  "CMakeFiles/bench_e2_autonomy.dir/bench_e2_autonomy.cpp.o.d"
  "bench_e2_autonomy"
  "bench_e2_autonomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_autonomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
