# Empty dependencies file for bench_e2_autonomy.
# This may be replaced when dependencies are built.
