file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_gpus.dir/bench_e3_gpus.cpp.o"
  "CMakeFiles/bench_e3_gpus.dir/bench_e3_gpus.cpp.o.d"
  "bench_e3_gpus"
  "bench_e3_gpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_gpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
