# Empty compiler generated dependencies file for bench_e3_gpus.
# This may be replaced when dependencies are built.
