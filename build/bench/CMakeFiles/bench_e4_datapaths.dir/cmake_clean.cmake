file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_datapaths.dir/bench_e4_datapaths.cpp.o"
  "CMakeFiles/bench_e4_datapaths.dir/bench_e4_datapaths.cpp.o.d"
  "bench_e4_datapaths"
  "bench_e4_datapaths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_datapaths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
