# Empty dependencies file for bench_e4_datapaths.
# This may be replaced when dependencies are built.
