file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_tracks.dir/bench_e5_tracks.cpp.o"
  "CMakeFiles/bench_e5_tracks.dir/bench_e5_tracks.cpp.o.d"
  "bench_e5_tracks"
  "bench_e5_tracks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_tracks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
