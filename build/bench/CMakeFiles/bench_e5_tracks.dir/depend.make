# Empty dependencies file for bench_e5_tracks.
# This may be replaced when dependencies are built.
