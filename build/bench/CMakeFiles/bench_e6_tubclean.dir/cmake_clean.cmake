file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_tubclean.dir/bench_e6_tubclean.cpp.o"
  "CMakeFiles/bench_e6_tubclean.dir/bench_e6_tubclean.cpp.o.d"
  "bench_e6_tubclean"
  "bench_e6_tubclean.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_tubclean.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
