# Empty dependencies file for bench_e6_tubclean.
# This may be replaced when dependencies are built.
