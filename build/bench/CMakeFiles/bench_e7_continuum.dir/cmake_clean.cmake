file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_continuum.dir/bench_e7_continuum.cpp.o"
  "CMakeFiles/bench_e7_continuum.dir/bench_e7_continuum.cpp.o.d"
  "bench_e7_continuum"
  "bench_e7_continuum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_continuum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
