# Empty compiler generated dependencies file for bench_e7_continuum.
# This may be replaced when dependencies are built.
