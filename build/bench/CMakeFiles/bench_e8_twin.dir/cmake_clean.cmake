file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_twin.dir/bench_e8_twin.cpp.o"
  "CMakeFiles/bench_e8_twin.dir/bench_e8_twin.cpp.o.d"
  "bench_e8_twin"
  "bench_e8_twin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_twin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
