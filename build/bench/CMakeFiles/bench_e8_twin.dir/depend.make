# Empty dependencies file for bench_e8_twin.
# This may be replaced when dependencies are built.
