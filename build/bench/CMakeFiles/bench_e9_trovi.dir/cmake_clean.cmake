file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_trovi.dir/bench_e9_trovi.cpp.o"
  "CMakeFiles/bench_e9_trovi.dir/bench_e9_trovi.cpp.o.d"
  "bench_e9_trovi"
  "bench_e9_trovi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_trovi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
