# Empty dependencies file for bench_e9_trovi.
# This may be replaced when dependencies are built.
