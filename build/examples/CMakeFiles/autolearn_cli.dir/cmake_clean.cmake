file(REMOVE_RECURSE
  "CMakeFiles/autolearn_cli.dir/autolearn_cli.cpp.o"
  "CMakeFiles/autolearn_cli.dir/autolearn_cli.cpp.o.d"
  "autolearn_cli"
  "autolearn_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autolearn_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
