# Empty dependencies file for autolearn_cli.
# This may be replaced when dependencies are built.
