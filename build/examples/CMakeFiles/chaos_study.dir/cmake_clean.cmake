file(REMOVE_RECURSE
  "CMakeFiles/chaos_study.dir/chaos_study.cpp.o"
  "CMakeFiles/chaos_study.dir/chaos_study.cpp.o.d"
  "chaos_study"
  "chaos_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chaos_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
