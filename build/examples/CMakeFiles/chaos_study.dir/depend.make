# Empty dependencies file for chaos_study.
# This may be replaced when dependencies are built.
