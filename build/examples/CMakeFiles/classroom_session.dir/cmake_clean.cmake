file(REMOVE_RECURSE
  "CMakeFiles/classroom_session.dir/classroom_session.cpp.o"
  "CMakeFiles/classroom_session.dir/classroom_session.cpp.o.d"
  "classroom_session"
  "classroom_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classroom_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
