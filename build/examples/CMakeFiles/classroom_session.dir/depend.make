# Empty dependencies file for classroom_session.
# This may be replaced when dependencies are built.
