file(REMOVE_RECURSE
  "CMakeFiles/continuum_study.dir/continuum_study.cpp.o"
  "CMakeFiles/continuum_study.dir/continuum_study.cpp.o.d"
  "continuum_study"
  "continuum_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/continuum_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
