# Empty dependencies file for continuum_study.
# This may be replaced when dependencies are built.
