# Empty dependencies file for digital_twin.
# This may be replaced when dependencies are built.
