# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("fault")
subdirs("net")
subdirs("track")
subdirs("testbed")
subdirs("objectstore")
subdirs("hub")
subdirs("workflow")
subdirs("vehicle")
subdirs("camera")
subdirs("edge")
subdirs("data")
subdirs("ml")
subdirs("gpu")
subdirs("cv")
subdirs("drone")
subdirs("rl")
subdirs("core")
subdirs("eval")
