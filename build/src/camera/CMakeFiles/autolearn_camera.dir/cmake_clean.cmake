file(REMOVE_RECURSE
  "CMakeFiles/autolearn_camera.dir/camera.cpp.o"
  "CMakeFiles/autolearn_camera.dir/camera.cpp.o.d"
  "CMakeFiles/autolearn_camera.dir/image.cpp.o"
  "CMakeFiles/autolearn_camera.dir/image.cpp.o.d"
  "libautolearn_camera.a"
  "libautolearn_camera.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autolearn_camera.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
