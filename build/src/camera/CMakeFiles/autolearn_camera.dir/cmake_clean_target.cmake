file(REMOVE_RECURSE
  "libautolearn_camera.a"
)
