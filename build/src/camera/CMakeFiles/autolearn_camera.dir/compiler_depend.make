# Empty compiler generated dependencies file for autolearn_camera.
# This may be replaced when dependencies are built.
