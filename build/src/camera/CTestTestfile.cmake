# CMake generated Testfile for 
# Source directory: /root/repo/src/camera
# Build directory: /root/repo/build/src/camera
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
