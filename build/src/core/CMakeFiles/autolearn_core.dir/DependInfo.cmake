
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/competition.cpp" "src/core/CMakeFiles/autolearn_core.dir/competition.cpp.o" "gcc" "src/core/CMakeFiles/autolearn_core.dir/competition.cpp.o.d"
  "/root/repo/src/core/continuum.cpp" "src/core/CMakeFiles/autolearn_core.dir/continuum.cpp.o" "gcc" "src/core/CMakeFiles/autolearn_core.dir/continuum.cpp.o.d"
  "/root/repo/src/core/model_zoo.cpp" "src/core/CMakeFiles/autolearn_core.dir/model_zoo.cpp.o" "gcc" "src/core/CMakeFiles/autolearn_core.dir/model_zoo.cpp.o.d"
  "/root/repo/src/core/module_catalog.cpp" "src/core/CMakeFiles/autolearn_core.dir/module_catalog.cpp.o" "gcc" "src/core/CMakeFiles/autolearn_core.dir/module_catalog.cpp.o.d"
  "/root/repo/src/core/pathway.cpp" "src/core/CMakeFiles/autolearn_core.dir/pathway.cpp.o" "gcc" "src/core/CMakeFiles/autolearn_core.dir/pathway.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/autolearn_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/autolearn_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/speed_governor.cpp" "src/core/CMakeFiles/autolearn_core.dir/speed_governor.cpp.o" "gcc" "src/core/CMakeFiles/autolearn_core.dir/speed_governor.cpp.o.d"
  "/root/repo/src/core/twin.cpp" "src/core/CMakeFiles/autolearn_core.dir/twin.cpp.o" "gcc" "src/core/CMakeFiles/autolearn_core.dir/twin.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/autolearn_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/autolearn_data.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/autolearn_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/autolearn_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/objectstore/CMakeFiles/autolearn_objectstore.dir/DependInfo.cmake"
  "/root/repo/build/src/workflow/CMakeFiles/autolearn_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/camera/CMakeFiles/autolearn_camera.dir/DependInfo.cmake"
  "/root/repo/build/src/vehicle/CMakeFiles/autolearn_vehicle.dir/DependInfo.cmake"
  "/root/repo/build/src/track/CMakeFiles/autolearn_track.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/autolearn_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/autolearn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
