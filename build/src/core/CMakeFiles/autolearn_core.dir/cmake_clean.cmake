file(REMOVE_RECURSE
  "CMakeFiles/autolearn_core.dir/competition.cpp.o"
  "CMakeFiles/autolearn_core.dir/competition.cpp.o.d"
  "CMakeFiles/autolearn_core.dir/continuum.cpp.o"
  "CMakeFiles/autolearn_core.dir/continuum.cpp.o.d"
  "CMakeFiles/autolearn_core.dir/model_zoo.cpp.o"
  "CMakeFiles/autolearn_core.dir/model_zoo.cpp.o.d"
  "CMakeFiles/autolearn_core.dir/module_catalog.cpp.o"
  "CMakeFiles/autolearn_core.dir/module_catalog.cpp.o.d"
  "CMakeFiles/autolearn_core.dir/pathway.cpp.o"
  "CMakeFiles/autolearn_core.dir/pathway.cpp.o.d"
  "CMakeFiles/autolearn_core.dir/pipeline.cpp.o"
  "CMakeFiles/autolearn_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/autolearn_core.dir/speed_governor.cpp.o"
  "CMakeFiles/autolearn_core.dir/speed_governor.cpp.o.d"
  "CMakeFiles/autolearn_core.dir/twin.cpp.o"
  "CMakeFiles/autolearn_core.dir/twin.cpp.o.d"
  "libautolearn_core.a"
  "libautolearn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autolearn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
