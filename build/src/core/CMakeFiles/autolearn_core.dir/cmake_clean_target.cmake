file(REMOVE_RECURSE
  "libautolearn_core.a"
)
