# Empty compiler generated dependencies file for autolearn_core.
# This may be replaced when dependencies are built.
