file(REMOVE_RECURSE
  "CMakeFiles/autolearn_cv.dir/features.cpp.o"
  "CMakeFiles/autolearn_cv.dir/features.cpp.o.d"
  "CMakeFiles/autolearn_cv.dir/pilots.cpp.o"
  "CMakeFiles/autolearn_cv.dir/pilots.cpp.o.d"
  "libautolearn_cv.a"
  "libautolearn_cv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autolearn_cv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
