file(REMOVE_RECURSE
  "libautolearn_cv.a"
)
