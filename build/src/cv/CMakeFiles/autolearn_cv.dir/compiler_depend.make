# Empty compiler generated dependencies file for autolearn_cv.
# This may be replaced when dependencies are built.
