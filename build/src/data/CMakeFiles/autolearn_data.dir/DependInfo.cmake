
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/collector.cpp" "src/data/CMakeFiles/autolearn_data.dir/collector.cpp.o" "gcc" "src/data/CMakeFiles/autolearn_data.dir/collector.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "src/data/CMakeFiles/autolearn_data.dir/dataset.cpp.o" "gcc" "src/data/CMakeFiles/autolearn_data.dir/dataset.cpp.o.d"
  "/root/repo/src/data/pgm.cpp" "src/data/CMakeFiles/autolearn_data.dir/pgm.cpp.o" "gcc" "src/data/CMakeFiles/autolearn_data.dir/pgm.cpp.o.d"
  "/root/repo/src/data/stats.cpp" "src/data/CMakeFiles/autolearn_data.dir/stats.cpp.o" "gcc" "src/data/CMakeFiles/autolearn_data.dir/stats.cpp.o.d"
  "/root/repo/src/data/tub.cpp" "src/data/CMakeFiles/autolearn_data.dir/tub.cpp.o" "gcc" "src/data/CMakeFiles/autolearn_data.dir/tub.cpp.o.d"
  "/root/repo/src/data/tubclean.cpp" "src/data/CMakeFiles/autolearn_data.dir/tubclean.cpp.o" "gcc" "src/data/CMakeFiles/autolearn_data.dir/tubclean.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ml/CMakeFiles/autolearn_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/camera/CMakeFiles/autolearn_camera.dir/DependInfo.cmake"
  "/root/repo/build/src/vehicle/CMakeFiles/autolearn_vehicle.dir/DependInfo.cmake"
  "/root/repo/build/src/track/CMakeFiles/autolearn_track.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/autolearn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
