file(REMOVE_RECURSE
  "CMakeFiles/autolearn_data.dir/collector.cpp.o"
  "CMakeFiles/autolearn_data.dir/collector.cpp.o.d"
  "CMakeFiles/autolearn_data.dir/dataset.cpp.o"
  "CMakeFiles/autolearn_data.dir/dataset.cpp.o.d"
  "CMakeFiles/autolearn_data.dir/pgm.cpp.o"
  "CMakeFiles/autolearn_data.dir/pgm.cpp.o.d"
  "CMakeFiles/autolearn_data.dir/stats.cpp.o"
  "CMakeFiles/autolearn_data.dir/stats.cpp.o.d"
  "CMakeFiles/autolearn_data.dir/tub.cpp.o"
  "CMakeFiles/autolearn_data.dir/tub.cpp.o.d"
  "CMakeFiles/autolearn_data.dir/tubclean.cpp.o"
  "CMakeFiles/autolearn_data.dir/tubclean.cpp.o.d"
  "libautolearn_data.a"
  "libautolearn_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autolearn_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
