file(REMOVE_RECURSE
  "libautolearn_data.a"
)
