# Empty compiler generated dependencies file for autolearn_data.
# This may be replaced when dependencies are built.
