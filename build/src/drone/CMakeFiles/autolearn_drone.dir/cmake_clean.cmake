file(REMOVE_RECURSE
  "CMakeFiles/autolearn_drone.dir/drone.cpp.o"
  "CMakeFiles/autolearn_drone.dir/drone.cpp.o.d"
  "CMakeFiles/autolearn_drone.dir/survey.cpp.o"
  "CMakeFiles/autolearn_drone.dir/survey.cpp.o.d"
  "libautolearn_drone.a"
  "libautolearn_drone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autolearn_drone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
