file(REMOVE_RECURSE
  "libautolearn_drone.a"
)
