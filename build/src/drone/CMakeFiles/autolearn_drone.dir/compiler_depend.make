# Empty compiler generated dependencies file for autolearn_drone.
# This may be replaced when dependencies are built.
