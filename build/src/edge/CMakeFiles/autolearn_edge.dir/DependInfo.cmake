
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/edge/container.cpp" "src/edge/CMakeFiles/autolearn_edge.dir/container.cpp.o" "gcc" "src/edge/CMakeFiles/autolearn_edge.dir/container.cpp.o.d"
  "/root/repo/src/edge/registry.cpp" "src/edge/CMakeFiles/autolearn_edge.dir/registry.cpp.o" "gcc" "src/edge/CMakeFiles/autolearn_edge.dir/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/autolearn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/autolearn_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/autolearn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
