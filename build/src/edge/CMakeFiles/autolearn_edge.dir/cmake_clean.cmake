file(REMOVE_RECURSE
  "CMakeFiles/autolearn_edge.dir/container.cpp.o"
  "CMakeFiles/autolearn_edge.dir/container.cpp.o.d"
  "CMakeFiles/autolearn_edge.dir/registry.cpp.o"
  "CMakeFiles/autolearn_edge.dir/registry.cpp.o.d"
  "libautolearn_edge.a"
  "libautolearn_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autolearn_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
