file(REMOVE_RECURSE
  "libautolearn_edge.a"
)
