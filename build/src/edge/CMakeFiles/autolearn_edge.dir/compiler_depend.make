# Empty compiler generated dependencies file for autolearn_edge.
# This may be replaced when dependencies are built.
