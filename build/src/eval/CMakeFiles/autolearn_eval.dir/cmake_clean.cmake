file(REMOVE_RECURSE
  "CMakeFiles/autolearn_eval.dir/evaluator.cpp.o"
  "CMakeFiles/autolearn_eval.dir/evaluator.cpp.o.d"
  "CMakeFiles/autolearn_eval.dir/pilot.cpp.o"
  "CMakeFiles/autolearn_eval.dir/pilot.cpp.o.d"
  "CMakeFiles/autolearn_eval.dir/wrappers.cpp.o"
  "CMakeFiles/autolearn_eval.dir/wrappers.cpp.o.d"
  "libautolearn_eval.a"
  "libautolearn_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autolearn_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
