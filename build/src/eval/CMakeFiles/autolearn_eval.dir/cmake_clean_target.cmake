file(REMOVE_RECURSE
  "libautolearn_eval.a"
)
