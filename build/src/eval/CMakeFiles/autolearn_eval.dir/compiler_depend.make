# Empty compiler generated dependencies file for autolearn_eval.
# This may be replaced when dependencies are built.
