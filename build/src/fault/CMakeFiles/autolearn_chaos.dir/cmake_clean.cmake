file(REMOVE_RECURSE
  "CMakeFiles/autolearn_chaos.dir/chaos.cpp.o"
  "CMakeFiles/autolearn_chaos.dir/chaos.cpp.o.d"
  "libautolearn_chaos.a"
  "libautolearn_chaos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autolearn_chaos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
