file(REMOVE_RECURSE
  "libautolearn_chaos.a"
)
