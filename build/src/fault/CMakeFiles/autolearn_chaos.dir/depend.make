# Empty dependencies file for autolearn_chaos.
# This may be replaced when dependencies are built.
