
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fault/circuit_breaker.cpp" "src/fault/CMakeFiles/autolearn_fault.dir/circuit_breaker.cpp.o" "gcc" "src/fault/CMakeFiles/autolearn_fault.dir/circuit_breaker.cpp.o.d"
  "/root/repo/src/fault/report.cpp" "src/fault/CMakeFiles/autolearn_fault.dir/report.cpp.o" "gcc" "src/fault/CMakeFiles/autolearn_fault.dir/report.cpp.o.d"
  "/root/repo/src/fault/retry.cpp" "src/fault/CMakeFiles/autolearn_fault.dir/retry.cpp.o" "gcc" "src/fault/CMakeFiles/autolearn_fault.dir/retry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/autolearn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
