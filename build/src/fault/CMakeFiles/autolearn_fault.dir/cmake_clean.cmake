file(REMOVE_RECURSE
  "CMakeFiles/autolearn_fault.dir/circuit_breaker.cpp.o"
  "CMakeFiles/autolearn_fault.dir/circuit_breaker.cpp.o.d"
  "CMakeFiles/autolearn_fault.dir/report.cpp.o"
  "CMakeFiles/autolearn_fault.dir/report.cpp.o.d"
  "CMakeFiles/autolearn_fault.dir/retry.cpp.o"
  "CMakeFiles/autolearn_fault.dir/retry.cpp.o.d"
  "libautolearn_fault.a"
  "libautolearn_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autolearn_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
