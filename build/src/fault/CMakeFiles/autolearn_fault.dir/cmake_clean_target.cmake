file(REMOVE_RECURSE
  "libautolearn_fault.a"
)
