# Empty dependencies file for autolearn_fault.
# This may be replaced when dependencies are built.
