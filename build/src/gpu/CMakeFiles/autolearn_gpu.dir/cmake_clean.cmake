file(REMOVE_RECURSE
  "CMakeFiles/autolearn_gpu.dir/perf_model.cpp.o"
  "CMakeFiles/autolearn_gpu.dir/perf_model.cpp.o.d"
  "libautolearn_gpu.a"
  "libautolearn_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autolearn_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
