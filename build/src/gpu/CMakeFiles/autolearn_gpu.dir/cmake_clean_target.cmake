file(REMOVE_RECURSE
  "libautolearn_gpu.a"
)
