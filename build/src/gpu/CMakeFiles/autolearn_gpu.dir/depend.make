# Empty dependencies file for autolearn_gpu.
# This may be replaced when dependencies are built.
