file(REMOVE_RECURSE
  "CMakeFiles/autolearn_hub.dir/collaboration.cpp.o"
  "CMakeFiles/autolearn_hub.dir/collaboration.cpp.o.d"
  "CMakeFiles/autolearn_hub.dir/hub.cpp.o"
  "CMakeFiles/autolearn_hub.dir/hub.cpp.o.d"
  "libautolearn_hub.a"
  "libautolearn_hub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autolearn_hub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
