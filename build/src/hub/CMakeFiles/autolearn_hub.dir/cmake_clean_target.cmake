file(REMOVE_RECURSE
  "libautolearn_hub.a"
)
