# Empty compiler generated dependencies file for autolearn_hub.
# This may be replaced when dependencies are built.
