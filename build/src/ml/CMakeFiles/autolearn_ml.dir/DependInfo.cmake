
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/conv.cpp" "src/ml/CMakeFiles/autolearn_ml.dir/conv.cpp.o" "gcc" "src/ml/CMakeFiles/autolearn_ml.dir/conv.cpp.o.d"
  "/root/repo/src/ml/driving_model.cpp" "src/ml/CMakeFiles/autolearn_ml.dir/driving_model.cpp.o" "gcc" "src/ml/CMakeFiles/autolearn_ml.dir/driving_model.cpp.o.d"
  "/root/repo/src/ml/layers.cpp" "src/ml/CMakeFiles/autolearn_ml.dir/layers.cpp.o" "gcc" "src/ml/CMakeFiles/autolearn_ml.dir/layers.cpp.o.d"
  "/root/repo/src/ml/loss.cpp" "src/ml/CMakeFiles/autolearn_ml.dir/loss.cpp.o" "gcc" "src/ml/CMakeFiles/autolearn_ml.dir/loss.cpp.o.d"
  "/root/repo/src/ml/lstm.cpp" "src/ml/CMakeFiles/autolearn_ml.dir/lstm.cpp.o" "gcc" "src/ml/CMakeFiles/autolearn_ml.dir/lstm.cpp.o.d"
  "/root/repo/src/ml/optimizer.cpp" "src/ml/CMakeFiles/autolearn_ml.dir/optimizer.cpp.o" "gcc" "src/ml/CMakeFiles/autolearn_ml.dir/optimizer.cpp.o.d"
  "/root/repo/src/ml/sequential.cpp" "src/ml/CMakeFiles/autolearn_ml.dir/sequential.cpp.o" "gcc" "src/ml/CMakeFiles/autolearn_ml.dir/sequential.cpp.o.d"
  "/root/repo/src/ml/tensor.cpp" "src/ml/CMakeFiles/autolearn_ml.dir/tensor.cpp.o" "gcc" "src/ml/CMakeFiles/autolearn_ml.dir/tensor.cpp.o.d"
  "/root/repo/src/ml/trainer.cpp" "src/ml/CMakeFiles/autolearn_ml.dir/trainer.cpp.o" "gcc" "src/ml/CMakeFiles/autolearn_ml.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/camera/CMakeFiles/autolearn_camera.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/autolearn_util.dir/DependInfo.cmake"
  "/root/repo/build/src/vehicle/CMakeFiles/autolearn_vehicle.dir/DependInfo.cmake"
  "/root/repo/build/src/track/CMakeFiles/autolearn_track.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
