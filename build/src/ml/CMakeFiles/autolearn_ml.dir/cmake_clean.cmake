file(REMOVE_RECURSE
  "CMakeFiles/autolearn_ml.dir/conv.cpp.o"
  "CMakeFiles/autolearn_ml.dir/conv.cpp.o.d"
  "CMakeFiles/autolearn_ml.dir/driving_model.cpp.o"
  "CMakeFiles/autolearn_ml.dir/driving_model.cpp.o.d"
  "CMakeFiles/autolearn_ml.dir/layers.cpp.o"
  "CMakeFiles/autolearn_ml.dir/layers.cpp.o.d"
  "CMakeFiles/autolearn_ml.dir/loss.cpp.o"
  "CMakeFiles/autolearn_ml.dir/loss.cpp.o.d"
  "CMakeFiles/autolearn_ml.dir/lstm.cpp.o"
  "CMakeFiles/autolearn_ml.dir/lstm.cpp.o.d"
  "CMakeFiles/autolearn_ml.dir/optimizer.cpp.o"
  "CMakeFiles/autolearn_ml.dir/optimizer.cpp.o.d"
  "CMakeFiles/autolearn_ml.dir/sequential.cpp.o"
  "CMakeFiles/autolearn_ml.dir/sequential.cpp.o.d"
  "CMakeFiles/autolearn_ml.dir/tensor.cpp.o"
  "CMakeFiles/autolearn_ml.dir/tensor.cpp.o.d"
  "CMakeFiles/autolearn_ml.dir/trainer.cpp.o"
  "CMakeFiles/autolearn_ml.dir/trainer.cpp.o.d"
  "libautolearn_ml.a"
  "libautolearn_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autolearn_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
