file(REMOVE_RECURSE
  "libautolearn_ml.a"
)
