# Empty compiler generated dependencies file for autolearn_ml.
# This may be replaced when dependencies are built.
