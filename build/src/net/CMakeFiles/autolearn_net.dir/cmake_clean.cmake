file(REMOVE_RECURSE
  "CMakeFiles/autolearn_net.dir/link.cpp.o"
  "CMakeFiles/autolearn_net.dir/link.cpp.o.d"
  "CMakeFiles/autolearn_net.dir/network.cpp.o"
  "CMakeFiles/autolearn_net.dir/network.cpp.o.d"
  "CMakeFiles/autolearn_net.dir/transfer.cpp.o"
  "CMakeFiles/autolearn_net.dir/transfer.cpp.o.d"
  "CMakeFiles/autolearn_net.dir/tunnel.cpp.o"
  "CMakeFiles/autolearn_net.dir/tunnel.cpp.o.d"
  "libautolearn_net.a"
  "libautolearn_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autolearn_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
