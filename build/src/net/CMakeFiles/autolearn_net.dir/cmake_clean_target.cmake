file(REMOVE_RECURSE
  "libautolearn_net.a"
)
