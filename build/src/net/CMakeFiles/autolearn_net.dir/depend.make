# Empty dependencies file for autolearn_net.
# This may be replaced when dependencies are built.
