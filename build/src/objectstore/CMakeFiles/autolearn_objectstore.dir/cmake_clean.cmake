file(REMOVE_RECURSE
  "CMakeFiles/autolearn_objectstore.dir/objectstore.cpp.o"
  "CMakeFiles/autolearn_objectstore.dir/objectstore.cpp.o.d"
  "libautolearn_objectstore.a"
  "libautolearn_objectstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autolearn_objectstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
