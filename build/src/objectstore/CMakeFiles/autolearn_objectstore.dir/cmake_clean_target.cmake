file(REMOVE_RECURSE
  "libautolearn_objectstore.a"
)
