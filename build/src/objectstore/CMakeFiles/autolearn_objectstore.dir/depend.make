# Empty dependencies file for autolearn_objectstore.
# This may be replaced when dependencies are built.
