
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rl/qlearning.cpp" "src/rl/CMakeFiles/autolearn_rl.dir/qlearning.cpp.o" "gcc" "src/rl/CMakeFiles/autolearn_rl.dir/qlearning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vehicle/CMakeFiles/autolearn_vehicle.dir/DependInfo.cmake"
  "/root/repo/build/src/track/CMakeFiles/autolearn_track.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/autolearn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
