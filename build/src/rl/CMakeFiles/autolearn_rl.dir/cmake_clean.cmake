file(REMOVE_RECURSE
  "CMakeFiles/autolearn_rl.dir/qlearning.cpp.o"
  "CMakeFiles/autolearn_rl.dir/qlearning.cpp.o.d"
  "libautolearn_rl.a"
  "libautolearn_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autolearn_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
