file(REMOVE_RECURSE
  "libautolearn_rl.a"
)
