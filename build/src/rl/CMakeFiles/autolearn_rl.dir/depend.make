# Empty dependencies file for autolearn_rl.
# This may be replaced when dependencies are built.
