file(REMOVE_RECURSE
  "CMakeFiles/autolearn_testbed.dir/deployment.cpp.o"
  "CMakeFiles/autolearn_testbed.dir/deployment.cpp.o.d"
  "CMakeFiles/autolearn_testbed.dir/identity.cpp.o"
  "CMakeFiles/autolearn_testbed.dir/identity.cpp.o.d"
  "CMakeFiles/autolearn_testbed.dir/inventory.cpp.o"
  "CMakeFiles/autolearn_testbed.dir/inventory.cpp.o.d"
  "CMakeFiles/autolearn_testbed.dir/lease.cpp.o"
  "CMakeFiles/autolearn_testbed.dir/lease.cpp.o.d"
  "CMakeFiles/autolearn_testbed.dir/topology.cpp.o"
  "CMakeFiles/autolearn_testbed.dir/topology.cpp.o.d"
  "libautolearn_testbed.a"
  "libautolearn_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autolearn_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
