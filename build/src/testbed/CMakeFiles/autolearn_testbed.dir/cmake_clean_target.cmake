file(REMOVE_RECURSE
  "libautolearn_testbed.a"
)
