# Empty compiler generated dependencies file for autolearn_testbed.
# This may be replaced when dependencies are built.
