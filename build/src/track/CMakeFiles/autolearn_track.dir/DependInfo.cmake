
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/track/path_builder.cpp" "src/track/CMakeFiles/autolearn_track.dir/path_builder.cpp.o" "gcc" "src/track/CMakeFiles/autolearn_track.dir/path_builder.cpp.o.d"
  "/root/repo/src/track/track.cpp" "src/track/CMakeFiles/autolearn_track.dir/track.cpp.o" "gcc" "src/track/CMakeFiles/autolearn_track.dir/track.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/autolearn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
