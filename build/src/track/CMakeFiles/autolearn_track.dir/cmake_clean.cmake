file(REMOVE_RECURSE
  "CMakeFiles/autolearn_track.dir/path_builder.cpp.o"
  "CMakeFiles/autolearn_track.dir/path_builder.cpp.o.d"
  "CMakeFiles/autolearn_track.dir/track.cpp.o"
  "CMakeFiles/autolearn_track.dir/track.cpp.o.d"
  "libautolearn_track.a"
  "libautolearn_track.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autolearn_track.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
