file(REMOVE_RECURSE
  "libautolearn_track.a"
)
