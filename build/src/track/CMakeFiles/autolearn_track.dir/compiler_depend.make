# Empty compiler generated dependencies file for autolearn_track.
# This may be replaced when dependencies are built.
