file(REMOVE_RECURSE
  "CMakeFiles/autolearn_util.dir/event_queue.cpp.o"
  "CMakeFiles/autolearn_util.dir/event_queue.cpp.o.d"
  "CMakeFiles/autolearn_util.dir/json.cpp.o"
  "CMakeFiles/autolearn_util.dir/json.cpp.o.d"
  "CMakeFiles/autolearn_util.dir/logging.cpp.o"
  "CMakeFiles/autolearn_util.dir/logging.cpp.o.d"
  "CMakeFiles/autolearn_util.dir/rng.cpp.o"
  "CMakeFiles/autolearn_util.dir/rng.cpp.o.d"
  "CMakeFiles/autolearn_util.dir/stats.cpp.o"
  "CMakeFiles/autolearn_util.dir/stats.cpp.o.d"
  "CMakeFiles/autolearn_util.dir/table.cpp.o"
  "CMakeFiles/autolearn_util.dir/table.cpp.o.d"
  "CMakeFiles/autolearn_util.dir/thread_pool.cpp.o"
  "CMakeFiles/autolearn_util.dir/thread_pool.cpp.o.d"
  "libautolearn_util.a"
  "libautolearn_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autolearn_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
