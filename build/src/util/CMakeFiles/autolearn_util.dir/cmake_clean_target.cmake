file(REMOVE_RECURSE
  "libautolearn_util.a"
)
