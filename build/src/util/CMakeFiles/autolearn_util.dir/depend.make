# Empty dependencies file for autolearn_util.
# This may be replaced when dependencies are built.
