file(REMOVE_RECURSE
  "CMakeFiles/autolearn_vehicle.dir/car.cpp.o"
  "CMakeFiles/autolearn_vehicle.dir/car.cpp.o.d"
  "CMakeFiles/autolearn_vehicle.dir/expert.cpp.o"
  "CMakeFiles/autolearn_vehicle.dir/expert.cpp.o.d"
  "libautolearn_vehicle.a"
  "libautolearn_vehicle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autolearn_vehicle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
