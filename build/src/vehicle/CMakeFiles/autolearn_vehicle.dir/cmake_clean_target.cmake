file(REMOVE_RECURSE
  "libautolearn_vehicle.a"
)
