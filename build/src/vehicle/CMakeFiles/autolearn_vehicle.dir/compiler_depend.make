# Empty compiler generated dependencies file for autolearn_vehicle.
# This may be replaced when dependencies are built.
