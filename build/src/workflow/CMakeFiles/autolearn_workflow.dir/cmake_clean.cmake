file(REMOVE_RECURSE
  "CMakeFiles/autolearn_workflow.dir/notebook.cpp.o"
  "CMakeFiles/autolearn_workflow.dir/notebook.cpp.o.d"
  "libautolearn_workflow.a"
  "libautolearn_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autolearn_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
