file(REMOVE_RECURSE
  "libautolearn_workflow.a"
)
