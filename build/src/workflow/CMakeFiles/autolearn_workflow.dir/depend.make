# Empty dependencies file for autolearn_workflow.
# This may be replaced when dependencies are built.
