
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core_extensions_test.cpp" "tests/CMakeFiles/core_extensions_test.dir/core_extensions_test.cpp.o" "gcc" "tests/CMakeFiles/core_extensions_test.dir/core_extensions_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/autolearn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cv/CMakeFiles/autolearn_cv.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/autolearn_data.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/autolearn_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/objectstore/CMakeFiles/autolearn_objectstore.dir/DependInfo.cmake"
  "/root/repo/build/src/workflow/CMakeFiles/autolearn_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/autolearn_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/autolearn_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/autolearn_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/camera/CMakeFiles/autolearn_camera.dir/DependInfo.cmake"
  "/root/repo/build/src/vehicle/CMakeFiles/autolearn_vehicle.dir/DependInfo.cmake"
  "/root/repo/build/src/track/CMakeFiles/autolearn_track.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/autolearn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
