file(REMOVE_RECURSE
  "CMakeFiles/cv_test.dir/cv_test.cpp.o"
  "CMakeFiles/cv_test.dir/cv_test.cpp.o.d"
  "cv_test"
  "cv_test.pdb"
  "cv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
