# Empty dependencies file for cv_test.
# This may be replaced when dependencies are built.
