file(REMOVE_RECURSE
  "CMakeFiles/drone_test.dir/drone_test.cpp.o"
  "CMakeFiles/drone_test.dir/drone_test.cpp.o.d"
  "drone_test"
  "drone_test.pdb"
  "drone_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drone_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
