# Empty dependencies file for drone_test.
# This may be replaced when dependencies are built.
