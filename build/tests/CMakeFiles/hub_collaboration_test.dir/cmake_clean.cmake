file(REMOVE_RECURSE
  "CMakeFiles/hub_collaboration_test.dir/hub_collaboration_test.cpp.o"
  "CMakeFiles/hub_collaboration_test.dir/hub_collaboration_test.cpp.o.d"
  "hub_collaboration_test"
  "hub_collaboration_test.pdb"
  "hub_collaboration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hub_collaboration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
