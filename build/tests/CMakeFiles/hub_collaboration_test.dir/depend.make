# Empty dependencies file for hub_collaboration_test.
# This may be replaced when dependencies are built.
