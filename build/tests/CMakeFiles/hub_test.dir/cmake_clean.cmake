file(REMOVE_RECURSE
  "CMakeFiles/hub_test.dir/hub_test.cpp.o"
  "CMakeFiles/hub_test.dir/hub_test.cpp.o.d"
  "hub_test"
  "hub_test.pdb"
  "hub_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hub_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
