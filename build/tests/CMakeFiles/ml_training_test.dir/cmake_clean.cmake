file(REMOVE_RECURSE
  "CMakeFiles/ml_training_test.dir/ml_training_test.cpp.o"
  "CMakeFiles/ml_training_test.dir/ml_training_test.cpp.o.d"
  "ml_training_test"
  "ml_training_test.pdb"
  "ml_training_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_training_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
