# Empty compiler generated dependencies file for ml_training_test.
# This may be replaced when dependencies are built.
