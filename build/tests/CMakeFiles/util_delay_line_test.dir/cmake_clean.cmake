file(REMOVE_RECURSE
  "CMakeFiles/util_delay_line_test.dir/util_delay_line_test.cpp.o"
  "CMakeFiles/util_delay_line_test.dir/util_delay_line_test.cpp.o.d"
  "util_delay_line_test"
  "util_delay_line_test.pdb"
  "util_delay_line_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_delay_line_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
