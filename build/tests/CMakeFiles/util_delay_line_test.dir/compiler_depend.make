# Empty compiler generated dependencies file for util_delay_line_test.
# This may be replaced when dependencies are built.
