file(REMOVE_RECURSE
  "CMakeFiles/util_event_queue_test.dir/util_event_queue_test.cpp.o"
  "CMakeFiles/util_event_queue_test.dir/util_event_queue_test.cpp.o.d"
  "util_event_queue_test"
  "util_event_queue_test.pdb"
  "util_event_queue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_event_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
