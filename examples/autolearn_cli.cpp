// Command-line interface to the AutoLearn pipeline — the analogue of the
// donkey/CHI@Edge CLI utilities the paper's students drive. Each
// subcommand wraps one pipeline phase so sessions can be scripted:
//
//   autolearn_cli tracks
//   autolearn_cli collect  <track> <sample|simulator|physical-car> <secs> <tub>
//   autolearn_cli clean    <tub>
//   autolearn_cli train    <tub> <model> <epochs> <checkpoint>
//   autolearn_cli evaluate <track> <model> <checkpoint> <secs>
//   autolearn_cli devices
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "data/collector.hpp"
#include "data/dataset.hpp"
#include "data/tub.hpp"
#include "data/tubclean.hpp"
#include "eval/evaluator.hpp"
#include "eval/pilot.hpp"
#include "gpu/perf_model.hpp"
#include "ml/trainer.hpp"
#include "track/track.hpp"
#include "util/table.hpp"

namespace {

using namespace autolearn;

track::Track track_by_name(const std::string& name) {
  if (name == "paper-oval") return track::Track::paper_oval();
  if (name == "waveshare") return track::Track::waveshare();
  if (name == "square-loop") return track::Track::square_loop();
  throw std::invalid_argument("unknown track '" + name +
                              "' (try: paper-oval, waveshare, square-loop)");
}

data::DataPath path_by_name(const std::string& name) {
  if (name == "sample") return data::DataPath::Sample;
  if (name == "simulator") return data::DataPath::Simulator;
  if (name == "physical-car") return data::DataPath::PhysicalCar;
  throw std::invalid_argument("unknown data path '" + name + "'");
}

int cmd_tracks() {
  util::TablePrinter table({"track", "length (m)", "width (m)", "notes"});
  const track::Track oval = track::Track::paper_oval();
  table.add_row({oval.name(), util::TablePrinter::num(oval.length(), 2),
                 util::TablePrinter::num(oval.width(), 2),
                 "paper Fig. 3a: 330/509 in tape oval"});
  const track::Track wave = track::Track::waveshare();
  table.add_row({wave.name(), util::TablePrinter::num(wave.length(), 2),
                 util::TablePrinter::num(wave.width(), 2),
                 "commercial mat with S-bend"});
  const track::Track square = track::Track::square_loop();
  table.add_row({square.name(), util::TablePrinter::num(square.length(), 2),
                 util::TablePrinter::num(square.width(), 2),
                 "custom classroom layout"});
  table.print(std::cout, "available tracks");
  return 0;
}

int cmd_collect(const std::vector<std::string>& args) {
  if (args.size() != 4) {
    std::cerr << "usage: collect <track> <path> <seconds> <tubdir>\n";
    return 2;
  }
  const track::Track track = track_by_name(args[0]);
  data::CollectOptions opt;
  opt.duration_s = std::stod(args[2]);
  opt.expert.steering_noise = 0.08;
  const data::CollectStats stats =
      data::collect_session(track, path_by_name(args[1]), opt, args[3]);
  std::cout << "collected " << stats.records << " records ("
            << stats.mistake_records << " flagged) over "
            << stats.distance_m << " m into " << args[3] << "\n";
  return 0;
}

int cmd_clean(const std::vector<std::string>& args) {
  if (args.size() != 1) {
    std::cerr << "usage: clean <tubdir>\n";
    return 2;
  }
  data::Tub tub(args[0]);
  const data::CleanStats stats = data::review_clean(tub);
  std::cout << "reviewed " << stats.reviewed << " records, deleted "
            << stats.deleted << " in " << stats.segments << " segment(s); "
            << tub.active_records() << " remain\n";
  return 0;
}

int cmd_train(const std::vector<std::string>& args) {
  if (args.size() != 4) {
    std::cerr << "usage: train <tubdir> <model> <epochs> <checkpoint>\n";
    return 2;
  }
  data::Tub tub(args[0]);
  auto samples = data::build_samples(tub.read_all(), {});
  auto [train, val] = data::split_train_val(std::move(samples), 0.15);
  auto model = ml::make_model(ml::model_type_from_string(args[1]));
  ml::TrainOptions opt;
  opt.epochs = static_cast<std::size_t>(std::stoul(args[2]));
  const ml::TrainResult result = ml::fit(*model, train, val, opt);
  std::ofstream os(args[3], std::ios::binary);
  if (!os) {
    std::cerr << "cannot write " << args[3] << "\n";
    return 1;
  }
  model->save(os);
  gpu::TrainingWorkload load;
  load.forward_flops = result.forward_flops;
  load.samples = result.samples_seen;
  std::cout << "trained " << args[1] << " on " << train.size()
            << " samples: val loss " << result.best_val_loss
            << ", steering MAE " << ml::steering_mae(*model, val)
            << "\nCPU time " << result.wall_seconds
            << " s; simulated V100 time "
            << gpu::training_time_s(gpu::device("V100"), load)
            << " s\ncheckpoint written to " << args[3] << "\n";
  return 0;
}

int cmd_evaluate(const std::vector<std::string>& args) {
  if (args.size() != 4) {
    std::cerr << "usage: evaluate <track> <model> <checkpoint> <seconds>\n";
    return 2;
  }
  const track::Track track = track_by_name(args[0]);
  auto model = ml::make_model(ml::model_type_from_string(args[1]));
  std::ifstream is(args[2], std::ios::binary);
  if (!is) {
    std::cerr << "cannot read " << args[2] << "\n";
    return 1;
  }
  model->load(is);
  eval::ModelPilot pilot(*model);
  eval::EvalOptions opt;
  opt.duration_s = std::stod(args[3]);
  const eval::EvalResult r = eval::run_evaluation(track, pilot, opt);
  std::cout << "laps " << r.laps << ", errors " << r.errors
            << ", mean speed " << r.mean_speed << " m/s, best lap "
            << r.best_lap() << " s, score " << r.score() << "\n";
  return 0;
}

int cmd_devices() {
  util::TablePrinter table(
      {"device", "peak fp32 (TFLOPS)", "year", "inference 300 MFLOP (ms)"});
  for (const std::string& name : gpu::all_devices()) {
    const gpu::DeviceSpec& spec = gpu::device(name);
    table.add_row(
        {spec.name, util::TablePrinter::num(spec.peak_fp32_tflops, 1),
         util::TablePrinter::num(static_cast<long long>(spec.year)),
         util::TablePrinter::num(
             gpu::inference_latency_s(spec, 300'000'000) * 1000, 2)});
  }
  table.print(std::cout, "device catalogue (full-scale DonkeyCar inference)");
  return 0;
}

int usage() {
  std::cerr << "autolearn_cli — AutoLearn pipeline CLI\n"
               "  tracks\n"
               "  collect  <track> <sample|simulator|physical-car> <secs> "
               "<tubdir>\n"
               "  clean    <tubdir>\n"
               "  train    <tubdir> <model> <epochs> <checkpoint>\n"
               "  evaluate <track> <model> <checkpoint> <secs>\n"
               "  devices\n"
               "models: linear memory 3d categorical inferred rnn\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (cmd == "tracks") return cmd_tracks();
    if (cmd == "collect") return cmd_collect(args);
    if (cmd == "clean") return cmd_clean(args);
    if (cmd == "train") return cmd_train(args);
    if (cmd == "evaluate") return cmd_evaluate(args);
    if (cmd == "devices") return cmd_devices();
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
