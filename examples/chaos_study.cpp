// Chaos study: how does the hybrid edge/cloud control loop degrade when
// the continuum fails underneath it?
//
// Builds the car <-> campus <-> Chameleon topology, trains a cloud model
// and an edge fallback, then evaluates the Hybrid placement three times:
// once on a healthy network, once under a scripted mid-run partition of
// the cloud site, and once under a seed-generated random fault plan. The
// circuit breaker guarding cloud inference trips during each outage, the
// edge model takes over, and the breaker's half-open probes re-admit the
// cloud once the partition heals. Every run is reproducible from the seed
// printed with the report.
//
//   $ ./chaos_study [seed]
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "core/continuum.hpp"
#include "core/pipeline.hpp"
#include "fault/chaos.hpp"
#include "fault/preempt.hpp"
#include "fed/aggregator.hpp"
#include "ml/trainer.hpp"
#include "net/network.hpp"
#include "net/transfer.hpp"
#include "objectstore/objectstore.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/replication.hpp"
#include "serve/service.hpp"
#include "util/rng.hpp"
#include "testbed/topology.hpp"
#include "track/track.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace autolearn;
  namespace fs = std::filesystem;

  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  const track::Track track = track::Track::paper_oval();

  auto train_model = [&](ml::ModelType type, std::size_t epochs,
                         ml::ModelConfig mcfg) {
    core::PipelineOptions opt;
    opt.model = type;
    opt.model_config = mcfg;
    opt.collect_duration_s = 120.0;
    opt.driver.steering_noise = 0.08;
    opt.train.epochs = epochs;
    opt.eval.duration_s = 1.0;  // skip the long built-in eval
    core::Pipeline pipe(track, opt,
                        fs::temp_directory_path() /
                            (std::string("autolearn_chaos_") +
                             ml::to_string(type)));
    pipe.run();
    return pipe;
  };
  std::cout << "Training the cloud model (linear)...\n";
  core::Pipeline cloud_pipe =
      train_model(ml::ModelType::Linear, 8, ml::ModelConfig{});
  std::cout << "Training the edge fallback (inferred)...\n";
  core::Pipeline edge_pipe =
      train_model(ml::ModelType::Inferred, 2, ml::ModelConfig{});

  // The paper's deployment: car on campus Wi-Fi, Chameleon over Internet2.
  net::Network net;
  net.add_host("car-01");
  net.add_host("campus");
  net.add_host("chi-uc");
  net.add_duplex("car-01", "campus", net::Link::edge_wifi());
  net.add_duplex("campus", "chi-uc", net::Link::campus_to_cloud());

  const double duration_s = 40.0;
  util::TablePrinter table({"scenario", "laps", "errors", "cloud use",
                            "failovers", "denied", "degraded (s)",
                            "recovery (ms)"});

  // One metrics registry across scenarios; one tracer, cleared per
  // scenario so the exported file holds the last (random plan) timeline.
  obs::MetricsRegistry metrics;
  obs::Tracer tracer;

  // Each scenario gets its own event queue + engine so timelines don't mix.
  auto run_scenario = [&](const char* name,
                          const std::vector<fault::FaultSpec>& plan) {
    util::EventQueue queue;
    tracer.clear();
    tracer.use_clock([&queue] { return queue.now(); });
    fault::ChaosEngine engine(queue, seed);
    engine.instrument(&tracer, &metrics);
    engine.attach_network(net);
    engine.inject_plan(plan);

    core::ContinuumOptions copt;
    copt.network_rtt_s = 0.08;
    copt.rtt_jitter_s = 0.0;
    copt.breaker.failure_threshold = 2;
    copt.breaker.open_duration_s = 0.5;
    copt.cloud_probe = [&net](double) {
      return net.route("car-01", "chi-uc").has_value();
    };
    copt.tracer = &tracer;
    copt.metrics = &metrics;

    eval::EvalOptions eopt;
    eopt.duration_s = duration_s;
    eopt.seed = seed;
    eopt.chaos_queue = &queue;
    const eval::EvalResult r = core::evaluate_placement(
        track, cloud_pipe.model(), edge_pipe.model(), core::Placement::Hybrid,
        copt, eopt);

    const fault::DegradationStats& d = r.degradation;
    table.add_row(
        {name, util::TablePrinter::num(r.laps, 2),
         util::TablePrinter::num(static_cast<long long>(r.errors)),
         util::TablePrinter::num(d.cloud_usage, 3),
         util::TablePrinter::num(static_cast<long long>(d.failovers)),
         util::TablePrinter::num(static_cast<long long>(d.denied_calls)),
         util::TablePrinter::num(d.degraded_time_s, 2),
         util::TablePrinter::num(d.recovery_latency_s * 1000, 0)});
    if (!engine.report().timeline.empty()) {
      std::cout << "\n[" << name << "] fault timeline:\n"
                << engine.report().summary();
    }
  };

  run_scenario("healthy", {});
  // One scripted outage: the cloud site drops off the routing graph for a
  // quarter of the run, mid-evaluation.
  run_scenario("partition",
               {{fault::FaultKind::Partition, duration_s * 0.4,
                 duration_s * 0.25, "chi-uc"}});
  // A seeded random plan mixing partitions and Wi-Fi degradation.
  {
    util::EventQueue queue;
    fault::ChaosEngine planner(queue, seed);
    fault::RandomPlanOptions popt;
    popt.horizon_s = duration_s;
    popt.faults = 4;
    popt.mean_duration_s = 4.0;
    popt.partition_host = "chi-uc";
    popt.link_from = "car-01";
    popt.link_to = "campus";
    run_scenario("random plan", planner.random_plan(popt));
  }

  // --- Part 2: lease preemption during training ---------------------------
  //
  // A Chameleon lease ending mid-fit is a SIGKILL — the process gets no
  // chance to save. The checkpoint interval decides the blast radius: the
  // batches trained since the last durable generation are re-run on
  // resume, everything older is recovered from the store, and the resumed
  // fit continues bitwise-identically either way. Each row kills the same
  // fit at the same seed-drawn tick and only varies the interval.
  std::cout << "\nTraining under lease preemption (same kill, four "
               "checkpoint intervals)...\n";

  // A small synthetic steering task: a bright vertical band whose column
  // position encodes the steering label.
  ml::ModelConfig mcfg;
  mcfg.seed = seed;
  std::vector<ml::Sample> band_train;
  {
    util::Rng data_rng(seed + 1);
    for (int i = 0; i < 96; ++i) {
      const std::size_t col = static_cast<std::size_t>(data_rng.uniform_int(
          2, static_cast<std::int64_t>(mcfg.img_w) - 3));
      camera::Image img(mcfg.img_w, mcfg.img_h, 0.1f);
      for (std::size_t y = 0; y < mcfg.img_h; ++y) {
        for (std::size_t dx = 0; dx < 3; ++dx) img.at(col - 1 + dx, y) = 0.9f;
      }
      ml::Sample s;
      s.frames.push_back(img);
      s.steering = static_cast<float>(
          2.0 * static_cast<double>(col) / (mcfg.img_w - 1) - 1.0);
      s.throttle = 0.5f;
      band_train.push_back(std::move(s));
    }
  }
  const std::vector<ml::Sample> no_val;

  util::TablePrinter preempt_table({"ckpt interval", "kill tick",
                                    "batches lost", "recovered", "saves",
                                    "ckpt KB"});
  std::string last_timeline;
  for (const std::size_t interval : {std::size_t{0}, std::size_t{4},
                                     std::size_t{2}, std::size_t{1}}) {
    util::EventQueue queue;
    objectstore::ObjectStore blobs;
    ckpt::StoreOptions sopt;
    sopt.spill_dir = "checkpoints";  // git-ignored local envelope copies
    ckpt::CheckpointStore ckpts(blobs, sopt);
    ckpts.instrument(nullptr, &metrics);
    // Same seed every iteration => the engine draws the same kill tick.
    fault::ChaosEngine engine(queue, seed);
    engine.attach_checkpoints(ckpts);
    engine.instrument(nullptr, &metrics);

    ml::TrainOptions topt;
    topt.epochs = 2;  // long epochs: the interval, not the epoch boundary,
    topt.batch_size = 8;  // decides how much work a kill destroys
    topt.metrics = &metrics;
    topt.checkpoint_store = &ckpts;
    topt.checkpoint_key =
        "lease-fit-every-" + (interval ? std::to_string(interval) : "epoch");
    topt.checkpoint_every_batches = interval;
    const std::size_t total_batches =
        (band_train.size() / topt.batch_size) * topt.epochs;

    fault::PreemptionToken token;
    fault::PreemptPlanOptions window;
    window.min_tick = 2;
    window.max_tick = 2 * total_batches - 1;
    const std::uint64_t tick = engine.arm_preemption(token, window);
    const std::uint64_t bytes0 = metrics.counter_value("ckpt.save_bytes");

    std::size_t done_before_kill = 0;
    {
      ml::TrainOptions killed = topt;
      killed.preempt = &token;
      auto doomed = ml::make_model(ml::ModelType::Linear, mcfg);
      ml::Trainer trainer(*doomed, band_train, no_val, killed);
      try {
        trainer.fit();
      } catch (const fault::PreemptedError& e) {
        done_before_kill = static_cast<std::size_t>(e.tick() / 2);
      }
    }  // the leased node is gone; only the checkpoint store survives

    auto model = ml::make_model(ml::ModelType::Linear, mcfg);
    ml::Trainer trainer(*model, band_train, no_val, topt);
    const ml::TrainResult r = trainer.fit();
    const std::size_t recovered = total_batches - r.batches_run;
    const std::size_t lost = done_before_kill - recovered;
    engine.record_preempt_outcome(lost, recovered);

    preempt_table.add_row(
        {interval ? std::to_string(interval) +
                        (interval == 1 ? " batch" : " batches")
                  : "epoch end",
         util::TablePrinter::num(static_cast<long long>(tick)),
         util::TablePrinter::num(static_cast<long long>(lost)),
         util::TablePrinter::num(static_cast<long long>(recovered)),
         util::TablePrinter::num(static_cast<long long>(ckpts.saves())),
         util::TablePrinter::num(
             (metrics.counter_value("ckpt.save_bytes") - bytes0) / 1024.0,
             1)});
    last_timeline = engine.report().summary();
  }

  // --- Part 3: geo-sharded fleet serving through site partitions -----------
  //
  // Four shard workers alternate across the two Chameleon sites; a seeded
  // random plan partitions either site (note the topology: CHI@TACC is
  // reached THROUGH CHI@UC, so losing UC darkens the whole cloud). The
  // health monitor reroutes dead shards' cars to survivors, admission
  // control sheds overflow to the cars' own edge tier, and the report
  // attributes every degraded request to the car that paid for it and the
  // shard whose death forced the churn.
  std::cout << "\nServing a 4-shard fleet through seeded site partitions...\n";
  util::TablePrinter shard_table({"shard", "site", "requests", "completed",
                                  "shed", "failed over", "rerouted in",
                                  "downs"});
  std::string fleet_summary;
  std::string fleet_timeline;
  std::string shed_by_car_line;
  {
    util::EventQueue queue;
    net::Network fleet_net = testbed::chameleon_network();
    fault::ChaosEngine engine(queue, seed);
    engine.attach_network(fleet_net);
    engine.instrument(nullptr, &metrics);
    fault::RandomPlanOptions popt;
    popt.horizon_s = 0.8;
    popt.faults = 2;
    popt.mean_duration_s = 0.25;
    popt.partition_host = testbed::kSiteUC;
    popt.partition_hosts = {testbed::kSiteTACC};  // chaos picks per fault
    engine.inject_plan(engine.random_plan(popt));

    serve::ModelRegistry registry;
    registry.publish(std::shared_ptr<ml::DrivingModel>(
                         ml::make_model(ml::ModelType::Linear, mcfg)),
                     "chaos-study");
    serve::FleetOptions fopt;
    fopt.cars = 8;
    fopt.shards = 4;
    fopt.duration_s = 1.0;
    fopt.mean_interarrival_s = 0.005;
    fopt.batcher.max_batch = 8;
    fopt.batcher.max_delay_s = 0.01;
    fopt.placement = core::Placement::Cloud;
    fopt.seed = seed;
    fopt.continuum.metrics = &metrics;
    fopt.site_probe = [&fleet_net](const std::string& site, double) {
      return fleet_net.route(testbed::kCampusGateway, site).has_value();
    };
    serve::FleetService fleet(queue, registry, fopt);
    const serve::ServeReport fr = fleet.run();

    for (std::size_t s = 0; s < fr.shard_stats.size(); ++s) {
      const serve::ShardStats& st = fr.shard_stats[s];
      shard_table.add_row(
          {std::to_string(s), st.site,
           util::TablePrinter::num(static_cast<long long>(st.requests)),
           util::TablePrinter::num(static_cast<long long>(st.completed)),
           util::TablePrinter::num(static_cast<long long>(st.shed)),
           util::TablePrinter::num(static_cast<long long>(st.failed_over)),
           util::TablePrinter::num(static_cast<long long>(st.rerouted_in)),
           util::TablePrinter::num(static_cast<long long>(st.downs))});
    }
    shed_by_car_line = "Per-car shed counts:";
    for (std::size_t c = 0; c < fr.shed_by_car.size(); ++c) {
      shed_by_car_line +=
          " car-" + std::to_string(c) + "=" + std::to_string(fr.shed_by_car[c]);
    }
    fleet_summary = fr.summary() + "; " +
                    std::to_string(fr.requests - fr.completed - fr.shed) +
                    " failed";
    fleet_timeline = engine.report().summary();
  }

  // --- Part 4: federated rounds through dropouts and corrupt deltas --------
  //
  // Three cars fine-tune the incumbent on private slices of the band task
  // and ship CRC-framed weight deltas to the cloud aggregator. A seeded
  // random plan (client_dropout_hosts) knocks cars offline mid-round and a
  // scripted DeltaCorrupt flips bits in one upload; the round survives on
  // the quorum that remains, the corrupt delta lands in quarantine (never
  // the merge), and the dropped cars rejoin when their faults lift.
  std::cout << "\nFederating 3 cars through seeded dropouts + a corrupt "
               "delta...\n";
  std::string fed_summary;
  std::string fed_timeline;
  std::size_t fed_dropouts = 0, fed_dropout_recoveries = 0, fed_corrupts = 0;
  {
    util::EventQueue queue;
    net::Network fed_net;
    fed_net.add_host("cloud");
    for (int i = 1; i <= 3; ++i) {
      fed_net.add_host("car-0" + std::to_string(i));
      fed_net.add_duplex("car-0" + std::to_string(i), "cloud",
                         net::LinkSpec{});
    }
    net::TransferManager transfers{fed_net, queue, util::Rng(seed + 2), 2};
    objectstore::ObjectStore fed_blobs;
    serve::ReplicatedRegistry registry{2};
    registry.publish_all(std::shared_ptr<ml::DrivingModel>(
                             ml::make_model(ml::ModelType::Linear, mcfg)),
                         "bootstrap");

    fed::FedOptions fedopt;
    fedopt.rounds = 3;
    fedopt.round_timeout_s = 5.0;  // the whole study spans ~18 virtual s
    fedopt.cloud_host = "cloud";
    fedopt.canary.max_steering_drift = 0.5;
    fedopt.canary.bake_s = 1.0;
    fed::Aggregator agg(queue, registry, transfers, fed_blobs,
                        ml::ModelType::Linear, mcfg, fedopt);
    for (int i = 0; i < 3; ++i) {
      fed::ClientOptions copt;
      copt.name = "car-0" + std::to_string(i + 1);
      copt.seed = seed + 10 + i;
      // Private slices of the band task from Part 2.
      std::vector<ml::Sample> slice(band_train.begin() + i * 8,
                                    band_train.begin() + (i + 1) * 8);
      agg.add_client(copt, std::move(slice));
    }
    agg.set_probes({band_train.begin() + 80, band_train.begin() + 88});
    agg.instrument(nullptr, &metrics);

    fault::ChaosEngine engine(queue, seed);
    engine.attach_fed(agg.fault_hooks());
    engine.instrument(nullptr, &metrics);
    const double round_s = fedopt.round_timeout_s + fedopt.canary.bake_s;
    fault::RandomPlanOptions popt;
    popt.horizon_s = fedopt.rounds * round_s;
    popt.faults = 3;
    popt.mean_duration_s = 3.0;
    popt.client_dropout_hosts = {"car-01", "car-02", "car-03"};
    engine.inject_plan(engine.random_plan(popt));
    // One scripted outage pinned across round 2's start, so a car
    // visibly misses a whole round and rejoins for round 3 regardless of
    // where the seeded windows land.
    fault::FaultSpec outage;
    outage.kind = fault::FaultKind::ClientDropout;
    outage.at = round_s - 0.2;
    outage.duration = round_s - 0.4;  // lifts before round 3 starts
    outage.target = "car-02";
    engine.inject(outage);
    fault::FaultSpec corrupt;
    corrupt.kind = fault::FaultKind::DeltaCorrupt;
    corrupt.at = 0.0;  // armed before the first upload
    corrupt.target = "car-03";
    engine.inject(corrupt);

    const fed::FedReport fr = agg.run();
    fed_summary = fr.summary();
    fed_timeline = engine.report().summary();
    fed_dropouts = engine.report().count(fault::FaultKind::ClientDropout);
    fed_dropout_recoveries =
        engine.report().count(fault::FaultKind::ClientDropout, true);
    fed_corrupts = engine.report().count(fault::FaultKind::DeltaCorrupt);
  }

  tracer.use_clock({});  // the scenario queues are gone
  tracer.write_file("chaos_study.trace.json");

  std::cout << "\n";
  table.print(std::cout,
              "Hybrid placement under chaos (seed " + std::to_string(seed) +
                  ")");
  std::cout << "\nReading the table: the breaker converts each outage into"
               "\nedge-only steering instead of a stalled loop — cloud usage"
               "\ndips for roughly the degraded window, then the half-open"
               "\nprobes re-admit the cloud within a control period or two.\n";

  std::cout << "\n";
  preempt_table.print(std::cout,
                      "Work lost to a mid-fit lease kill vs checkpoint "
                      "interval (seed " +
                          std::to_string(seed) + ")");
  std::cout << "\nReading the table: every resumed fit finishes bitwise-"
               "\nidentically to an uninterrupted one; the interval only"
               "\ntrades re-run batches (recovery time) against checkpoint"
               "\nbytes shipped. Durable envelopes spill to ./checkpoints/."
               "\n\nLast run's fault timeline:\n"
            << last_timeline;
  std::cout << "\n";
  shard_table.print(std::cout,
                    "Geo-sharded fleet under seeded partitions (seed " +
                        std::to_string(seed) + ")");
  std::cout << shed_by_car_line << "\n"
            << fleet_summary
            << "\nReading the table: a dead shard's queued requests reroute"
               "\nto survivors (failed over -> rerouted in); arrivals that"
               "\nfind no live shard or a full survivor shed to their own"
               "\ncar's edge tier. Degraded, never failed.\n"
               "Fleet fault timeline:\n"
            << fleet_timeline;

  std::cout << "\nFederated rounds under chaos (seed " << seed << "):\n"
            << fed_summary << "Fault events this run: "
            << fed_dropouts << " ClientDropout injected, "
            << fed_dropout_recoveries << " lifted (cars rejoined), "
            << fed_corrupts << " DeltaCorrupt armed.\n"
            << "Reading the report: dropped cars miss their round and the"
               "\nquorum that remains still publishes; the corrupted delta is"
               "\nquarantined by its CRC envelope — it never reaches the merge"
               "\n— and its sender retries with backoff next round.\n"
               "Federation fault timeline:\n"
            << fed_timeline;

  std::cout << "\nWrote chaos_study.trace.json (" << tracer.size()
            << " events from the random-plan run) — open it at"
               "\nhttps://ui.perfetto.dev or chrome://tracing; see"
               "\ndocs/observability.md. Metrics across all three runs:\n"
            << metrics.summary();
  return 0;
}
