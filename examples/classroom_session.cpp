// Classroom pathway (§3.4): an instructor prepares a class slot on the
// testbed, enrolls the fleet of cars via BYOD, and a cohort of students
// runs the pipeline; results land on a leaderboard and every interaction
// feeds the Trovi artifact metrics of §5.
//
//   $ ./classroom_session
#include <filesystem>
#include <iostream>

#include "core/pathway.hpp"
#include "core/pipeline.hpp"
#include "edge/container.hpp"
#include "edge/registry.hpp"
#include "hub/hub.hpp"
#include "testbed/deployment.hpp"
#include "testbed/identity.hpp"
#include "testbed/inventory.hpp"
#include "testbed/lease.hpp"
#include "track/track.hpp"
#include "util/table.hpp"

int main() {
  using namespace autolearn;
  namespace fs = std::filesystem;

  // --- 1. The instructor sets up the project and the class slot ---------
  testbed::IdentityService identity;
  identity.add_user("instructor", "University of Missouri");
  identity.create_project("CHI-edu-4242", "Intro to Edge-to-Cloud ML",
                          testbed::ProjectDomain::Education, "instructor");

  const testbed::Inventory inventory = testbed::Inventory::chameleon();
  testbed::LeaseManager leases(inventory);
  util::EventQueue clock;

  // Advance reservation: four V100 nodes for the 2-hour class, starting in
  // an hour — guaranteed to be there when the class begins (§3.2).
  testbed::LeaseRequest slot;
  slot.project_id = "CHI-edu-4242";
  slot.node_type = "gpu_v100";
  slot.count = 4;
  slot.start = 3600;
  slot.duration = 7200;
  const auto lease = leases.request(slot);
  if (!lease) {
    std::cerr << "class slot unavailable!\n";
    return 1;
  }
  std::cout << "Reserved " << leases.lease(*lease).node_ids.size()
            << " V100 nodes for the class slot.\n";

  // --- 2. TA enrolls the cars through BYOD ------------------------------
  edge::EdgeRegistry registry(clock);
  edge::ContainerService containers(registry, clock);
  const char* cars[] = {"donkey-01", "donkey-02", "donkey-03"};
  for (const char* car : cars) {
    registry.register_device(car, "CHI-edu-4242");
    registry.flash_device(car);
    registry.boot_device(car);
  }
  clock.run_until(clock.now() + 60);
  std::cout << "Cars ready: " << registry.ready_devices().size() << "/3\n";
  for (const char* car : cars) {
    containers.launch(car, "CHI-edu-4242",
                      edge::ContainerSpec::autolearn_car());
  }
  clock.run();
  std::cout << "DonkeyCar containers running on every car (zero to ready).\n";

  // --- 3. Class starts: deploy the trainer image on the leased nodes ----
  clock.run_until(3600);
  leases.tick(clock.now());
  testbed::DeploymentService deployments(leases, clock);
  deployments.deploy(*lease, testbed::ImageSpec::autolearn_trainer());
  clock.run();
  std::cout << "Trainer image active on " << deployments.active_count()
            << " node(s).\n";

  // --- 4. Students work through the pipeline; scores go on the board ----
  hub::Hub trovi;
  hub::Artifact& artifact = trovi.create_artifact(
      "autolearn", "AutoLearn: Learning in the Edge to Cloud Continuum",
      {"Esquivel Morel", "Fowler", "Keahey", "Zheng", "Sherman", "Anderson"});
  artifact.publish_version("classroom release", "trovi/autolearn-v1");

  const track::Track track = track::Track::paper_oval();
  struct Entry {
    std::string student;
    ml::ModelType model;
    double laps;
    std::size_t errors;
    double score;
  };
  std::vector<Entry> board;
  const std::pair<const char*, ml::ModelType> students[] = {
      {"kyle", ml::ModelType::Inferred},
      {"will", ml::ModelType::Linear},
      {"dana", ml::ModelType::Categorical},
  };
  for (const auto& [student, model] : students) {
    identity.add_user(student, "Modesto Junior College");
    identity.add_member("CHI-edu-4242", student);
    artifact.record_launch(student);
    artifact.record_cell_execution(student);

    core::PipelineOptions opt;
    opt.data_path = data::DataPath::Sample;
    opt.collect_duration_s = 90.0;
    opt.driver.steering_noise = 0.08;  // recovery examples
    opt.model = model;
    opt.train.epochs = 6;
    opt.eval.duration_s = 45.0;
    opt.seed = 1;
    core::Pipeline pipeline(
        track, opt,
        fs::temp_directory_path() / (std::string("autolearn_class_") + student));
    const core::PipelineReport report = pipeline.run();
    board.push_back({student, model, report.eval_result.laps,
                     report.eval_result.errors, report.eval_result.score()});
  }

  std::sort(board.begin(), board.end(),
            [](const Entry& a, const Entry& b) { return a.score > b.score; });
  util::TablePrinter table({"student", "model", "laps", "errors", "score"});
  for (const Entry& e : board) {
    table.add_row({e.student, ml::to_string(e.model),
                   util::TablePrinter::num(e.laps, 2),
                   util::TablePrinter::num(static_cast<long long>(e.errors)),
                   util::TablePrinter::num(e.score, 3)});
  }
  table.print(std::cout, "Class leaderboard (laps/min / (1+errors))");

  const hub::ArtifactMetrics metrics = artifact.metrics();
  std::cout << "\nTrovi metrics so far: " << metrics.launch_clicks
            << " launches by " << metrics.unique_launch_users << " users, "
            << metrics.users_executed_cell << " executed cells, "
            << metrics.versions << " version(s).\n";
  return 0;
}
