// Edge-to-cloud inference study (§3.3/§3.4 extension; the Zheng SC'23
// poster grew from this exercise): where should the self-driving model
// run? Sweeps the network RTT and compares on-device, cloud, and hybrid
// placements of a trained model.
//
//   $ ./continuum_study
#include <filesystem>
#include <iostream>

#include "core/continuum.hpp"
#include "core/pipeline.hpp"
#include "track/track.hpp"
#include "util/table.hpp"

int main() {
  using namespace autolearn;
  namespace fs = std::filesystem;

  const track::Track track = track::Track::paper_oval();

  // Train the big (linear) cloud model well, and a deliberately small,
  // briefly-trained edge fallback (what actually fits on the Pi beside the
  // data-collection stack).
  auto train_model = [&](ml::ModelType type, std::size_t epochs,
                         ml::ModelConfig mcfg) {
    core::PipelineOptions opt;
    opt.model = type;
    opt.model_config = mcfg;
    opt.collect_duration_s = 120.0;
    opt.driver.steering_noise = 0.08;  // recovery examples
    opt.train.epochs = epochs;
    opt.eval.duration_s = 1.0;  // skip the long built-in eval
    core::Pipeline pipe(track, opt,
                        fs::temp_directory_path() /
                            (std::string("autolearn_cont_") +
                             ml::to_string(type)));
    pipe.run();
    return pipe;
  };
  std::cout << "Training the cloud model (linear)...\n";
  core::Pipeline cloud_pipe =
      train_model(ml::ModelType::Linear, 8, ml::ModelConfig{});
  std::cout << "Training the edge model (inferred, small budget)...\n";
  ml::ModelConfig edge_cfg;
  edge_cfg.inferred_throttle_base = 0.30;
  edge_cfg.inferred_throttle_gain = 0.18;
  core::Pipeline edge_pipe =
      train_model(ml::ModelType::Inferred, 2, edge_cfg);

  util::TablePrinter table(
      {"RTT (ms)", "placement", "latency (ms)", "laps", "errors", "score"});
  eval::EvalOptions eopt;
  eopt.duration_s = 45.0;
  eopt.real_profiles = true;  // evaluation happens on the physical car
  for (double rtt_ms : {10.0, 50.0, 120.0, 250.0}) {
    core::ContinuumOptions copt;
    copt.network_rtt_s = rtt_ms / 1000.0;
    // Model the full-scale 160x120 DonkeyCar network's arithmetic.
    copt.flops_scale = 1500.0;
    for (core::Placement p : {core::Placement::OnDevice,
                              core::Placement::Cloud,
                              core::Placement::Hybrid}) {
      const double latency = core::placement_latency_s(
          p, copt, edge_pipe.model().flops_per_sample(),
          cloud_pipe.model().flops_per_sample());
      const eval::EvalResult r = core::evaluate_placement(
          track, cloud_pipe.model(), edge_pipe.model(), p, copt, eopt);
      table.add_row({util::TablePrinter::num(rtt_ms, 0),
                     core::to_string(p),
                     util::TablePrinter::num(latency * 1000, 1),
                     util::TablePrinter::num(r.laps, 2),
                     util::TablePrinter::num(static_cast<long long>(r.errors)),
                     util::TablePrinter::num(r.score(), 3)});
    }
  }
  table.print(std::cout, "Inference placement vs. network RTT");
  std::cout << "\nReading the table: cloud wins on a fast network (big model,"
               "\nsmall latency), loses as RTT grows; hybrid stays close to"
               "\nthe better of the two at every RTT.\n";
  return 0;
}
