// Digital-twin exploration (§3.4: "a range of interesting projects can be
// based on developing a digital twin model based on comparing the
// simulation output with real-life model evaluation").
//
// Trains a pilot, then drives it in the clean simulator and on the
// "physical car" (noise-calibrated profiles) and reports how far the twin
// diverges as hardware imperfection grows.
//
//   $ ./digital_twin
#include <filesystem>
#include <iostream>

#include "core/pipeline.hpp"
#include "core/twin.hpp"
#include "eval/pilot.hpp"
#include "track/track.hpp"
#include "util/table.hpp"

int main() {
  using namespace autolearn;

  const track::Track track = track::Track::paper_oval();

  std::cout << "Training a linear pilot on the sample dataset...\n";
  core::PipelineOptions opt;
  opt.model = ml::ModelType::Linear;
  opt.collect_duration_s = 120.0;
  opt.driver.steering_noise = 0.08;  // recovery examples
  opt.train.epochs = 8;
  opt.eval.duration_s = 1.0;
  core::Pipeline pipeline(track, opt,
                          std::filesystem::temp_directory_path() /
                              "autolearn_twin");
  pipeline.run();
  eval::ModelPilot pilot(pipeline.model());

  util::TablePrinter table({"noise scale", "traj RMSE (m)", "final gap (m)",
                            "speed RMSE", "sim err", "real err", "fidelity"});
  for (double scale : {0.0, 0.5, 1.0, 2.0}) {
    core::TwinOptions topt;
    topt.duration_s = 45.0;
    topt.noise_scale = scale;
    const core::TwinReport r = core::compare_sim_to_real(track, pilot, topt);
    table.add_row({util::TablePrinter::num(scale, 1),
                   util::TablePrinter::num(r.position_rmse_m, 3),
                   util::TablePrinter::num(r.final_divergence_m, 3),
                   util::TablePrinter::num(r.speed_rmse, 3),
                   util::TablePrinter::num(static_cast<long long>(r.sim_errors)),
                   util::TablePrinter::num(static_cast<long long>(r.real_errors)),
                   util::TablePrinter::num(r.fidelity, 3)});
  }
  table.print(std::cout, "Digital twin: sim vs 'real car' divergence");
  std::cout << "\nfidelity = exp(-RMSE / half-width): 1.0 means the simulator"
               "\nis a perfect twin; it decays as hardware noise grows.\n";
  return 0;
}
