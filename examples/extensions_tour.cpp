// Tour of the §3.3 extension exercises ("Training Additional Models"):
//
//   1. edge detection / line following  — classical CV, no ML
//   2. path following                    — record a GPS trace, follow it
//   3. stop/go signal classification     — camera identifies the object's
//                                          colour code; red means stop
//   4. reinforcement learning            — tabular Q-learning in the sim
//
//   $ ./extensions_tour
#include <iostream>

#include "camera/camera.hpp"
#include "core/competition.hpp"
#include "drone/survey.hpp"
#include "cv/features.hpp"
#include "cv/pilots.hpp"
#include "eval/evaluator.hpp"
#include "rl/qlearning.hpp"
#include "track/track.hpp"
#include "util/table.hpp"
#include "vehicle/car.hpp"

int main() {
  using namespace autolearn;
  const track::Track track = track::Track::paper_oval();
  util::TablePrinter table({"extension", "result"});

  // --- 1. Line following ------------------------------------------------
  {
    cv::LineFollowPilot pilot;
    eval::EvalOptions opt;
    opt.duration_s = 60.0;
    const eval::EvalResult r = eval::run_evaluation(track, pilot, opt);
    table.add_row({"line following (classical CV)",
                   util::TablePrinter::num(r.laps, 2) + " laps, " +
                       std::to_string(r.errors) + " errors"});
  }

  // --- 2. GPS path following --------------------------------------------
  {
    // Record the trace by sampling the centerline ("record a path with
    // GPS"), then follow it from position fixes alone.
    cv::GpsTrace trace;
    for (double s = 0; s < track.length(); s += 0.1) {
      trace.points.push_back(track.position_at(s));
    }
    cv::WaypointPilot pilot(trace);
    vehicle::Car car(vehicle::CarConfig{}, util::Rng(21));
    car.reset(track.position_at(0), track.heading_at(0));
    double progress = 0, s_prev = 0;
    int off_track = 0;
    for (int i = 0; i < 1200; ++i) {  // 60 s at 20 Hz
      car.step(pilot.decide(car.state().pos, car.state().heading), 0.05);
      const auto proj = track.project(car.state().pos);
      progress += track.progress_delta(s_prev, proj.s);
      s_prev = proj.s;
      off_track += !proj.on_track;
    }
    table.add_row({"GPS path following",
                   util::TablePrinter::num(progress / track.length(), 2) +
                       " laps, " + std::to_string(off_track) +
                       " off-track steps"});
  }

  // --- 3. Stop/go signals -------------------------------------------------
  {
    cv::LineFollowPilot inner;
    cv::SignalAwarePilot pilot(inner);
    camera::Camera cam(camera::CameraConfig{}, util::Rng(22));
    vehicle::Car car(vehicle::CarConfig{}, util::Rng(23));
    car.reset(track.position_at(0), track.heading_at(0));
    // A stop signal placed a third of the way around the lap.
    const camera::GroundPatch stop_patch{
        track.position_at(track.length() / 3), 0.16, 0.98f};
    double min_speed_after_seen = 1e9;
    bool seen = false;
    for (int i = 0; i < 1200; ++i) {
      const camera::Image frame =
          cam.render(track, car.state(), {stop_patch});
      car.step(pilot.act(frame), 0.05);
      if (pilot.stops_observed() > 0) seen = true;
      if (seen) min_speed_after_seen = std::min(min_speed_after_seen,
                                                car.state().speed);
    }
    table.add_row({"stop/go signal detection",
                   std::to_string(pilot.stops_observed()) +
                       " stop(s), min speed " +
                       util::TablePrinter::num(min_speed_after_seen, 2) +
                       " m/s"});
  }

  // --- 4. Reinforcement learning ------------------------------------------
  {
    rl::QConfig cfg;
    cfg.episodes = 80;
    rl::QLearningPilot agent(track, cfg, util::Rng(24));
    const auto history = agent.train();
    const rl::EpisodeStats before_stats = history.front();
    const rl::EpisodeStats run = agent.evaluate(60.0);
    table.add_row({"Q-learning (80 episodes)",
                   util::TablePrinter::num(run.distance_m / track.length(), 2) +
                       " laps greedy (first episode reward " +
                       util::TablePrinter::num(before_stats.total_reward, 1) +
                       " -> last " +
                       util::TablePrinter::num(history.back().total_reward, 1) +
                       ")"});
  }

  // --- 5. Track-day competition (§3.3 "students might also compete") ----
  {
    core::Competition comp(core::ScoringRule::SpeedAccuracy);
    cv::LineFollowPilot steady;
    cv::LineFollowConfig hot_cfg;
    hot_cfg.throttle = 0.5;  // faster, riskier
    cv::LineFollowPilot hot(hot_cfg);
    comp.add_entrant({"team-steady", [&]() -> eval::Pilot& { return steady; }});
    comp.add_entrant({"team-hot", [&]() -> eval::Pilot& { return hot; }});
    eval::EvalOptions opt;
    opt.duration_s = 30.0;
    opt.real_profiles = true;
    comp.add_round(&track, opt);
    const auto standings = comp.run();
    table.add_row({"track-day competition",
                   standings[0].team + " wins (score " +
                       util::TablePrinter::num(standings[0].total_score, 2) +
                       " vs " +
                       util::TablePrinter::num(standings[1].total_score, 2) +
                       ")"});
  }

  // --- 6. Drone survey (paper §6 future work) -----------------------------
  {
    drone::Drone uav(drone::DroneConfig{}, util::Rng(25));
    drone::Field field;
    field.width = 80;
    field.height = 50;
    const drone::MissionResult r =
        drone::fly_survey(uav, field, drone::MissionConfig{});
    table.add_row({"drone field survey (future work)",
                   util::TablePrinter::num(r.coverage * 100, 1) +
                       "% coverage in " +
                       util::TablePrinter::num(r.duration_s, 0) + " s"});
  }

  table.print(std::cout, "AutoLearn extension exercises (paper §3.3, §6)");
  return 0;
}
