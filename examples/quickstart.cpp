// Quickstart: the whole AutoLearn pipeline in one sitting.
//
// Collects a driving session on the paper's tape oval (sample-dataset
// path, so no hardware and no randomness), cleans it, trains the inferred
// model, reports the simulated Chameleon GPU time, and closes the loop by
// driving the trained model around the track.
//
//   $ ./quickstart
#include <filesystem>
#include <iostream>

#include "core/pipeline.hpp"
#include "track/track.hpp"
#include "util/table.hpp"

int main() {
  using namespace autolearn;

  const track::Track track = track::Track::paper_oval();
  std::cout << "Track: " << track.name() << " (" << track.length()
            << " m centerline, " << track.width() << " m wide)\n";

  core::PipelineOptions options;
  options.data_path = data::DataPath::Sample;   // no car needed
  options.collect_duration_s = 120.0;           // 2 minutes of driving
  // Weave slightly while collecting: the recorded corrections teach the
  // model to recover (the trick the DonkeyCar instructions recommend).
  options.driver.steering_noise = 0.08;
  options.model = ml::ModelType::Inferred;      // the paper's favourite
  options.train.epochs = 8;
  options.gpu_device = "V100";                  // the node §3.5 used
  options.eval.duration_s = 60.0;

  const std::filesystem::path workdir =
      std::filesystem::temp_directory_path() / "autolearn_quickstart";
  core::Pipeline pipeline(track, options, workdir);
  const core::PipelineReport report = pipeline.run();

  util::TablePrinter table({"phase", "result"});
  table.add_row({"collected records",
                 util::TablePrinter::num(
                     static_cast<long long>(report.collect.records))});
  table.add_row({"records cleaned",
                 util::TablePrinter::num(
                     static_cast<long long>(report.clean.deleted))});
  table.add_row({"training samples",
                 util::TablePrinter::num(
                     static_cast<long long>(report.train_samples))});
  table.add_row({"final val loss",
                 util::TablePrinter::num(report.train_result.best_val_loss, 4)});
  table.add_row({"steering MAE",
                 util::TablePrinter::num(report.steering_mae, 3)});
  table.add_row({"simulated V100 train time (ms)",
                 util::TablePrinter::num(report.simulated_gpu_seconds * 1000,
                                         1)});
  table.add_row({"closed-loop laps",
                 util::TablePrinter::num(report.eval_result.laps, 2)});
  table.add_row({"closed-loop errors",
                 util::TablePrinter::num(
                     static_cast<long long>(report.eval_result.errors))});
  table.add_row({"combined score",
                 util::TablePrinter::num(report.eval_result.score(), 3)});
  table.print(std::cout, "AutoLearn quickstart");

  std::cout << "\nDone. Swap options.model for any of: linear, categorical,\n"
               "inferred, memory, rnn, 3d — and options.data_path for\n"
               "Simulator or PhysicalCar to explore the other Fig. 2 paths.\n";
  return 0;
}
