#include "camera/camera.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace autolearn::camera {

namespace {
struct Vec3 {
  double x, y, z;
};
}  // namespace

Camera::Camera(CameraConfig config, util::Rng rng)
    : config_(config), rng_(rng) {
  if (config_.width == 0 || config_.height == 0) {
    throw std::invalid_argument("Camera: zero resolution");
  }
  if (config_.fov_deg <= 0 || config_.fov_deg >= 180) {
    throw std::invalid_argument("Camera: fov out of range");
  }
  if (config_.mount_height <= 0) {
    throw std::invalid_argument("Camera: mount height must be > 0");
  }
}

Image Camera::render(const track::Track& track,
                     const vehicle::CarState& state,
                     const std::vector<GroundPatch>& patches) {
  const std::size_t W = config_.width, H = config_.height;
  Image img(W, H);

  double heading = state.heading;
  double pitch = config_.pitch_deg * M_PI / 180.0;
  if (config_.noise.pose_jitter > 0) {
    heading += rng_.normal(0, config_.noise.pose_jitter);
    pitch += rng_.normal(0, config_.noise.pose_jitter);
  }
  const double gain =
      config_.noise.exposure_jitter > 0
          ? std::max(0.5, 1.0 + rng_.normal(0, config_.noise.exposure_jitter))
          : 1.0;

  // Focal length in pixels from the horizontal FOV.
  const double f_px =
      (static_cast<double>(W) / 2.0) /
      std::tan(config_.fov_deg * M_PI / 180.0 / 2.0);

  const double cp = std::cos(pitch), sp = std::sin(pitch);
  const double ch = std::cos(heading), sh = std::sin(heading);
  // Camera basis in world coordinates (z up).
  const Vec3 forward{cp * ch, cp * sh, -sp};
  const Vec3 right{sh, -ch, 0.0};
  const Vec3 down{-ch * sp, -sh * sp, -cp};

  const double cam_z = config_.mount_height;
  const double half_w = track.half_width();
  const double tape_half = config_.tape_width / 2.0;

  for (std::size_t py = 0; py < H; ++py) {
    for (std::size_t px = 0; px < W; ++px) {
      const double u = (static_cast<double>(px) + 0.5 -
                        static_cast<double>(W) / 2.0) /
                       f_px;
      const double v = (static_cast<double>(py) + 0.5 -
                        static_cast<double>(H) / 2.0) /
                       f_px;
      const Vec3 dir{forward.x + u * right.x + v * down.x,
                     forward.y + u * right.y + v * down.y,
                     forward.z + u * right.z + v * down.z};
      float value;
      if (dir.z >= -1e-9) {
        value = config_.sky;  // at or above the horizon
      } else {
        const double t = cam_z / -dir.z;
        const track::Vec2 hit{state.pos.x + t * dir.x,
                              state.pos.y + t * dir.y};
        const track::Projection proj = track.project(hit);
        const double lat = std::abs(proj.lateral);
        if (std::abs(lat - half_w) <= tape_half) {
          value = config_.tape;
        } else if (lat < half_w) {
          value = config_.surface;
        } else {
          value = config_.floor;
        }
        // Mild distance attenuation so far geometry is dimmer, which keeps
        // the nearest (most informative) markings dominant.
        const double dist = t;
        value = static_cast<float>(value / (1.0 + 0.08 * dist));
        // Signal patches overlay the ground without attenuation so their
        // intensity code survives for the classifier.
        for (const GroundPatch& patch : patches) {
          if ((hit - patch.center).norm2() <= patch.radius * patch.radius) {
            value = patch.intensity;
          }
        }
      }
      if (config_.noise.pixel_noise > 0) {
        value += static_cast<float>(rng_.normal(0, config_.noise.pixel_noise));
      }
      img.at(px, py) = static_cast<float>(
          std::clamp(static_cast<double>(value) * gain, 0.0, 1.0));
    }
  }
  return img;
}

}  // namespace autolearn::camera
