// Synthetic forward camera.
//
// Renders the view from the car's camera mast by inverse-perspective ray
// casting: each pixel's ray is intersected with the ground plane and the
// hit point is classified against the track — tape lane marking (bright),
// track surface (mid gray), off-track floor (dark), or sky above the
// horizon. This produces the same learning signal as the DonkeyCar camera
// (lane geometry ahead as a function of pose) at a resolution where CPU
// training of all six models is fast.
//
// The "real" profile adds pixel noise, exposure jitter and mounting
// vibration, mirroring the physical car; the "sim" profile is clean like
// the Unity simulator.
#pragma once

#include "camera/image.hpp"
#include "track/track.hpp"
#include "util/rng.hpp"
#include "vehicle/car.hpp"

namespace autolearn::camera {

struct CameraNoise {
  double pixel_noise = 0.0;      // per-pixel gaussian stddev
  double exposure_jitter = 0.0;  // per-frame multiplicative gain stddev
  double pose_jitter = 0.0;      // radians of per-frame pitch/yaw vibration

  static CameraNoise sim() { return {}; }
  static CameraNoise real_car() { return {0.02, 0.05, 0.004}; }
};

struct CameraConfig {
  std::size_t width = 32;
  std::size_t height = 24;
  double fov_deg = 120.0;      // horizontal field of view (wide-angle lens)
  double mount_height = 0.12;  // meters above ground
  double pitch_deg = 18.0;     // downward pitch
  double tape_width = 0.05;    // painted/taped lane line width, meters
  CameraNoise noise = CameraNoise::sim();

  // Surface intensities.
  float sky = 0.05f;
  float floor = 0.15f;
  float surface = 0.45f;
  float tape = 0.95f;
};

/// A flat marker on the ground (the stop/go "objects placed in front of
/// the car" from the §3.3 color-classification exercise). Intensity
/// encodes the colour in the grayscale pipeline; patches render without
/// distance attenuation, like retroreflective markers.
struct GroundPatch {
  track::Vec2 center;
  double radius = 0.1;   // meters
  float intensity = 0.98f;
};

class Camera {
 public:
  Camera(CameraConfig config, util::Rng rng);

  const CameraConfig& config() const { return config_; }

  /// Renders the frame seen from the given car state on the given track.
  /// Optional ground patches (signals/obstacles) overlay the surface.
  Image render(const track::Track& track, const vehicle::CarState& state,
               const std::vector<GroundPatch>& patches = {});

 private:
  CameraConfig config_;
  util::Rng rng_;
};

}  // namespace autolearn::camera
