#include "camera/image.hpp"

#include <algorithm>

namespace autolearn::camera {

float Image::mean() const {
  if (pixels_.empty()) return 0.0f;
  double sum = 0;
  for (float p : pixels_) sum += p;
  return static_cast<float>(sum / static_cast<double>(pixels_.size()));
}

void Image::clamp() {
  for (float& p : pixels_) p = std::clamp(p, 0.0f, 1.0f);
}

}  // namespace autolearn::camera
