// Grayscale image buffer used throughout the vision pipeline.
//
// DonkeyCar records 160x120 RGB JPEGs; the learning signal for lane
// following is lane-marking geometry, which survives grayscale and heavy
// downscaling. AutoLearn's frames are single-channel float images in
// [0, 1], row-major, top row first — small enough (default 32x24) that
// six-model CPU training finishes in seconds while preserving the task.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace autolearn::camera {

class Image {
 public:
  Image() = default;
  Image(std::size_t width, std::size_t height, float fill = 0.0f)
      : width_(width), height_(height), pixels_(width * height, fill) {
    if (width == 0 || height == 0) {
      throw std::invalid_argument("Image: zero dimension");
    }
  }

  std::size_t width() const { return width_; }
  std::size_t height() const { return height_; }
  std::size_t size() const { return pixels_.size(); }
  bool empty() const { return pixels_.empty(); }

  float& at(std::size_t x, std::size_t y) { return pixels_[y * width_ + x]; }
  float at(std::size_t x, std::size_t y) const {
    return pixels_[y * width_ + x];
  }

  /// Bounds-checked accessor used by tests.
  float at_checked(std::size_t x, std::size_t y) const {
    if (x >= width_ || y >= height_) {
      throw std::out_of_range("Image: pixel out of range");
    }
    return at(x, y);
  }

  const std::vector<float>& pixels() const { return pixels_; }
  std::vector<float>& pixels() { return pixels_; }

  /// Mean intensity, used for sanity checks and exposure normalization.
  float mean() const;

  /// Clamps every pixel into [0, 1].
  void clamp();

 private:
  std::size_t width_ = 0;
  std::size_t height_ = 0;
  std::vector<float> pixels_;
};

}  // namespace autolearn::camera
