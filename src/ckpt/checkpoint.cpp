#include "ckpt/checkpoint.hpp"

#include <algorithm>
#include <array>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/binio.hpp"

namespace autolearn::ckpt {
namespace {

constexpr std::uint32_t kMagic = 0x4b434c41;  // "ALCK" little-endian
constexpr std::uint16_t kVersion = 1;

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

util::Json info_to_json(const GenerationInfo& g) {
  util::Json entry = util::Json::object();
  entry.set("generation", util::Json(g.generation));
  entry.set("bytes", util::Json(g.bytes));
  entry.set("crc", util::Json(static_cast<std::size_t>(g.crc)));
  entry.set("quarantined", util::Json(g.quarantined));
  entry.set("epoch", util::Json(g.info.epoch));
  entry.set("step", util::Json(g.info.step));
  entry.set("seed", util::Json(g.info.seed));
  entry.set("note", util::Json(g.info.note));
  util::Json metrics = util::Json::object();
  for (const auto& [name, value] : g.info.metrics) {
    metrics.set(name, util::Json(value));
  }
  entry.set("metrics", std::move(metrics));
  return entry;
}

GenerationInfo info_from_json(const util::Json& entry) {
  GenerationInfo g;
  g.generation = static_cast<std::uint64_t>(entry.at("generation").as_int());
  g.bytes = static_cast<std::uint64_t>(entry.at("bytes").as_int());
  g.crc = static_cast<std::uint32_t>(entry.at("crc").as_int());
  g.quarantined = entry.at("quarantined").as_bool();
  g.info.epoch = static_cast<std::uint64_t>(entry.at("epoch").as_int());
  g.info.step = static_cast<std::uint64_t>(entry.at("step").as_int());
  g.info.seed = static_cast<std::uint64_t>(entry.at("seed").as_int());
  g.info.note = entry.at("note").as_string();
  for (const auto& [name, value] : entry.at("metrics").as_object()) {
    g.info.metrics[name] = value.as_number();
  }
  return g;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = seed ^ 0xffffffffu;
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

std::vector<std::uint8_t> encode_envelope(const std::string& payload,
                                          const CheckpointInfo& info) {
  std::ostringstream os(std::ios::binary);
  util::write_pod(os, kMagic);
  util::write_pod(os, kVersion);
  util::write_pod(os, info.epoch);
  util::write_pod(os, info.step);
  util::write_pod(os, info.seed);
  util::write_string(os, info.note);
  util::write_pod(os, static_cast<std::uint64_t>(payload.size()));
  util::write_pod(os, crc32(payload.data(), payload.size()));
  os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  const std::string s = os.str();
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

DecodedEnvelope decode_envelope(const std::vector<std::uint8_t>& bytes) {
  std::istringstream is(std::string(bytes.begin(), bytes.end()),
                        std::ios::binary);
  std::uint32_t magic = 0;
  std::uint16_t version = 0;
  if (!util::read_pod(is, magic) || magic != kMagic) {
    throw CheckpointError(CheckpointError::Code::BadMagic,
                          "checkpoint: bad magic");
  }
  if (!util::read_pod(is, version) || version > kVersion) {
    throw CheckpointError(CheckpointError::Code::BadVersion,
                          "checkpoint: unsupported format version");
  }
  DecodedEnvelope out;
  std::uint64_t payload_size = 0;
  std::uint32_t expected_crc = 0;
  if (!util::read_pod(is, out.info.epoch) ||
      !util::read_pod(is, out.info.step) ||
      !util::read_pod(is, out.info.seed) ||
      !util::read_string(is, out.info.note) ||
      !util::read_pod(is, payload_size) || !util::read_pod(is, expected_crc)) {
    throw CheckpointError(CheckpointError::Code::Truncated,
                          "checkpoint: truncated header");
  }
  out.payload.resize(payload_size);
  is.read(out.payload.data(), static_cast<std::streamsize>(payload_size));
  if (!is || static_cast<std::uint64_t>(is.gcount()) != payload_size) {
    throw CheckpointError(CheckpointError::Code::Truncated,
                          "checkpoint: truncated payload");
  }
  if (crc32(out.payload.data(), out.payload.size()) != expected_crc) {
    throw CheckpointError(CheckpointError::Code::CrcMismatch,
                          "checkpoint: CRC mismatch");
  }
  return out;
}

CheckpointStore::CheckpointStore(objectstore::ObjectStore& store,
                                 StoreOptions options)
    : store_(store), options_(std::move(options)) {
  if (options_.keep_generations == 0) {
    throw std::invalid_argument("CheckpointStore: keep_generations >= 1");
  }
  if (!store_.has_container(options_.container)) {
    store_.create_container(options_.container);
  }
}

void CheckpointStore::instrument(obs::Tracer* tracer,
                                 obs::MetricsRegistry* metrics) {
  tracer_ = tracer;
  metrics_ = metrics;
}

void CheckpointStore::use_transfer(net::TransferManager& transfers,
                                   std::string from_host,
                                   std::string to_host) {
  transfers_ = &transfers;
  from_host_ = std::move(from_host);
  to_host_ = std::move(to_host);
}

void CheckpointStore::set_commit_hook(
    std::function<void(const std::string&, std::uint64_t, std::size_t)> hook) {
  commit_hook_ = std::move(hook);
}

void CheckpointStore::corrupt_next_upload() { corrupt_next_ = true; }

void CheckpointStore::truncate_next_upload(double fraction) {
  truncate_fraction_ = std::clamp(fraction, 0.0, 1.0);
}

std::string CheckpointStore::object_name(const std::string& key,
                                         std::uint64_t generation) const {
  return key + "#gen-" + std::to_string(generation);
}

util::Json CheckpointStore::read_manifest(const std::string& key) const {
  const auto obj = store_.get(options_.container, key + "#manifest");
  if (!obj) {
    util::Json manifest = util::Json::object();
    manifest.set("key", util::Json(key));
    manifest.set("next_generation", util::Json(std::uint64_t{1}));
    manifest.set("generations", util::Json::array());
    return manifest;
  }
  return util::Json::parse(std::string(obj->bytes.begin(), obj->bytes.end()));
}

void CheckpointStore::write_manifest(const std::string& key,
                                     const util::Json& manifest) {
  store_.put_text(options_.container, key + "#manifest", manifest.dump());
}

std::vector<GenerationInfo> CheckpointStore::manifest(
    const std::string& key) const {
  std::vector<GenerationInfo> out;
  const util::Json m = read_manifest(key);
  for (const util::Json& entry : m.at("generations").as_array()) {
    out.push_back(info_from_json(entry));
  }
  return out;
}

std::uint64_t CheckpointStore::save(const std::string& key,
                                    const std::string& payload,
                                    const CheckpointInfo& info) {
  const obs::SpanGuard span(tracer_, "ckpt.save", "ckpt");
  ++saves_;
  if (metrics_) {
    metrics_->counter("ckpt.saves").inc();
    metrics_->counter("ckpt.save_bytes").inc(payload.size());
  }

  // Reserve the generation number up front so concurrent in-flight uploads
  // commit under distinct names in save order.
  util::Json m = read_manifest(key);
  const std::uint64_t generation =
      static_cast<std::uint64_t>(m.at("next_generation").as_int());
  m.set("next_generation", util::Json(generation + 1));
  write_manifest(key, m);

  std::vector<std::uint8_t> bytes = encode_envelope(payload, info);
  const std::uint32_t payload_crc = crc32(payload.data(), payload.size());

  // Stage first (the "write" half of write-rename): a crash or failed
  // upload beyond this point never affects the visible generations.
  store_.put(options_.container, key + "#staging", bytes,
             {{"generation", std::to_string(generation)},
              {"note", info.note}});

  if (!transfers_) {
    commit(key, generation, std::move(bytes), info, payload_crc);
    return generation;
  }

  ++pending_uploads_;
  auto finish = [this, key, generation, info, payload_crc,
                 bytes = std::move(bytes)](bool ok) mutable {
    --pending_uploads_;
    if (ok) {
      commit(key, generation, std::move(bytes), info, payload_crc);
    } else {
      ++upload_failures_;
      if (metrics_) metrics_->counter("ckpt.upload_failures").inc();
      if (tracer_) {
        util::Json args = util::Json::object();
        args.set("key", util::Json(key));
        args.set("generation", util::Json(generation));
        tracer_->instant("ckpt.upload_failed", "ckpt", std::move(args));
      }
    }
  };
  try {
    transfers_->start(from_host_, to_host_, bytes.size(),
                      [finish](const net::TransferResult& r) mutable {
                        finish(r.status == net::TransferStatus::Done);
                      });
  } catch (const net::UnreachableError&) {
    finish(false);
  }
  return generation;
}

void CheckpointStore::commit(const std::string& key, std::uint64_t generation,
                             std::vector<std::uint8_t> bytes,
                             const CheckpointInfo& info,
                             std::uint32_t payload_crc) {
  if (truncate_fraction_) {
    // Injected torn upload: the object store accepted a prefix. Length and
    // CRC checks catch it at load time; recovery falls back a generation.
    bytes.resize(static_cast<std::size_t>(
        static_cast<double>(bytes.size()) * *truncate_fraction_));
    truncate_fraction_.reset();
    if (metrics_) metrics_->counter("ckpt.truncated_uploads").inc();
  }
  if (corrupt_next_) {
    // Injected in-transit corruption: flip a run of bytes in the back
    // half of the envelope (the payload region — the header sits at the
    // front), so the length checks pass but the payload CRC cannot.
    const std::size_t begin = bytes.size() / 2;
    const std::size_t end = std::min(bytes.size(), begin + 8);
    for (std::size_t i = begin; i < end; ++i) bytes[i] ^= 0xFF;
    corrupt_next_ = false;
    if (metrics_) metrics_->counter("ckpt.corrupted_uploads").inc();
  }

  GenerationInfo entry;
  entry.generation = generation;
  entry.bytes = bytes.size();
  entry.crc = payload_crc;
  entry.info = info;

  spill(key, generation, bytes);
  store_.put(options_.container, object_name(key, generation),
             std::move(bytes),
             {{"epoch", std::to_string(info.epoch)},
              {"step", std::to_string(info.step)},
              {"note", info.note}});
  store_.remove(options_.container, key + "#staging");

  util::Json m = read_manifest(key);
  // Manifest entries commit in generation order even when transfers land
  // out of order, so "newest" stays well-defined.
  util::JsonArray arr = m.at("generations").as_array();
  auto pos = std::find_if(arr.begin(), arr.end(), [&](const util::Json& e) {
    return static_cast<std::uint64_t>(e.at("generation").as_int()) >
           generation;
  });
  arr.insert(pos, info_to_json(entry));

  // Retention: keep the newest keep_generations entries, delete the rest.
  while (arr.size() > options_.keep_generations) {
    const GenerationInfo old = info_from_json(arr.front());
    const std::string name =
        old.quarantined ? object_name(key, old.generation) + "#quarantined"
                        : object_name(key, old.generation);
    store_.remove(options_.container, name);
    arr.erase(arr.begin());
  }
  m.set("generations", util::Json(std::move(arr)));
  write_manifest(key, m);

  if (metrics_) {
    metrics_->counter("ckpt.commits").inc();
    metrics_->gauge("ckpt.generation." + key)
        .set(static_cast<double>(generation));
  }
  if (tracer_) {
    util::Json args = util::Json::object();
    args.set("key", util::Json(key));
    args.set("generation", util::Json(generation));
    args.set("bytes", util::Json(entry.bytes));
    args.set("note", util::Json(info.note));
    tracer_->instant("ckpt.commit", "ckpt", std::move(args));
  }
  if (commit_hook_) commit_hook_(key, generation, entry.bytes);
}

void CheckpointStore::spill(const std::string& key, std::uint64_t generation,
                            const std::vector<std::uint8_t>& bytes) const {
  if (options_.spill_dir.empty()) return;
  namespace fs = std::filesystem;
  std::string flat = key;
  std::replace(flat.begin(), flat.end(), '/', '_');
  fs::create_directories(options_.spill_dir);
  const fs::path path = fs::path(options_.spill_dir) /
                        (flat + ".gen-" + std::to_string(generation) + ".ckpt");
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

void CheckpointStore::quarantine(const std::string& key,
                                 std::uint64_t generation) {
  const std::string name = object_name(key, generation);
  if (const auto obj = store_.get(options_.container, name)) {
    store_.put(options_.container, name + "#quarantined", obj->bytes,
               obj->metadata);
    store_.remove(options_.container, name);
  }
  util::Json m = read_manifest(key);
  util::JsonArray arr = m.at("generations").as_array();
  for (util::Json& entry : arr) {
    if (static_cast<std::uint64_t>(entry.at("generation").as_int()) ==
        generation) {
      entry.set("quarantined", util::Json(true));
    }
  }
  m.set("generations", util::Json(std::move(arr)));
  write_manifest(key, m);
  ++quarantined_;
  if (metrics_) metrics_->counter("ckpt.quarantined").inc();
  if (tracer_) {
    util::Json args = util::Json::object();
    args.set("key", util::Json(key));
    args.set("generation", util::Json(generation));
    tracer_->instant("ckpt.corrupt", "ckpt", std::move(args));
  }
}

std::optional<CheckpointStore::Loaded> CheckpointStore::load_latest(
    const std::string& key) {
  const obs::SpanGuard span(tracer_, "ckpt.restore", "ckpt");
  const std::vector<GenerationInfo> gens = manifest(key);
  std::size_t quarantined_now = 0;
  for (auto it = gens.rbegin(); it != gens.rend(); ++it) {
    if (it->quarantined) continue;
    const auto obj = store_.get(options_.container,
                                object_name(key, it->generation));
    if (!obj) continue;  // commit still in flight (or lost upload)
    try {
      DecodedEnvelope env = decode_envelope(obj->bytes);
      if (metrics_) {
        metrics_->counter("ckpt.restores").inc();
        metrics_->counter("ckpt.restore_bytes").inc(env.payload.size());
      }
      Loaded loaded;
      loaded.payload = std::move(env.payload);
      loaded.generation = *it;
      loaded.quarantined_now = quarantined_now;
      return loaded;
    } catch (const CheckpointError&) {
      // Corrupt (flipped byte, truncated upload): set it aside and fall
      // back to the previous generation rather than crash or misload.
      quarantine(key, it->generation);
      ++quarantined_now;
    }
  }
  if (metrics_) metrics_->counter("ckpt.restore_misses").inc();
  return std::nullopt;
}

std::uint64_t save_checkpoint(CheckpointStore& store, const std::string& key,
                              Checkpointable& object, CheckpointInfo info) {
  if (info.note.empty()) info.note = object.checkpoint_kind();
  std::ostringstream os(std::ios::binary);
  object.save_state(os);
  return store.save(key, os.str(), info);
}

bool restore_checkpoint(CheckpointStore& store, const std::string& key,
                        Checkpointable& object) {
  const auto loaded = store.load_latest(key);
  if (!loaded) return false;
  std::istringstream is(loaded->payload, std::ios::binary);
  object.load_state(is);
  return true;
}

}  // namespace autolearn::ckpt
