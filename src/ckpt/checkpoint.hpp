// Durable checkpoint / restore subsystem for the continuum.
//
// Training runs on leased, preemptible nodes (the paper's students lose
// multi-hour fits to lease expiry), workflow cells die mid-run, and the
// serving tier restarts from nothing — so every stage that accumulates
// state persists it here. A CheckpointStore keeps versioned *generations*
// of a checkpoint key in the objectstore:
//
//   - Atomic write-rename: bytes are staged under "<key>#staging" and only
//     become the visible generation "<key>#gen-N" at commit, so a crashed
//     or failed upload never leaves a half-written current checkpoint.
//   - Self-describing binary envelope: magic + version header, the saver's
//     epoch/step/seed, payload length, and a CRC32 of the payload. A
//     flipped byte or a truncated upload fails decode at load time.
//   - Corruption is quarantined, not fatal: load_latest() walks
//     generations newest -> oldest, moves undecodable ones aside
//     ("<key>#gen-N#quarantined") and falls back to the previous
//     generation instead of crashing or silently misloading.
//   - A manifest object ("<key>#manifest", JSON) lists the live
//     generations with epoch/step/seed/metrics; retention keeps the last
//     `keep_generations`.
//   - Uploads optionally travel through net::TransferManager, inheriting
//     its retry/backoff and the chaos layer's link faults: a failed
//     transfer leaves the previous generation current, and an injected
//     truncation (FaultKind::CheckpointTruncate) commits a prefix whose
//     CRC cannot match.
//
// Anything that can be preempted implements Checkpointable (ml::Trainer,
// workflow::Notebook, published models via serve::ModelRegistry) and round
// trips through save_checkpoint()/restore_checkpoint().
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/transfer.hpp"
#include "objectstore/objectstore.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace autolearn::ckpt {

/// CRC32 (IEEE 802.3 polynomial, the zlib convention) over a byte span.
std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);

class CheckpointError : public std::runtime_error {
 public:
  enum class Code {
    BadMagic,       // not a checkpoint envelope
    BadVersion,     // format from the future
    Truncated,      // envelope shorter than its declared payload
    CrcMismatch,    // payload bytes corrupted
    NotFound,       // no such key / no valid generation
  };

  CheckpointError(Code code, const std::string& what)
      : std::runtime_error(what), code_(code) {}
  Code code() const { return code_; }

 private:
  Code code_;
};

/// Saver-supplied progress metadata, carried in the envelope header and the
/// manifest so recovery tooling can pick a generation without decoding it.
struct CheckpointInfo {
  std::uint64_t epoch = 0;
  std::uint64_t step = 0;
  std::uint64_t seed = 0;
  std::string note;                       // free-form provenance
  std::map<std::string, double> metrics;  // e.g. {"val_loss": 0.004}
};

/// One manifest entry (a committed generation).
struct GenerationInfo {
  std::uint64_t generation = 0;
  std::uint64_t bytes = 0;  // full envelope size as committed
  std::uint32_t crc = 0;    // payload CRC recorded at save time
  bool quarantined = false;
  CheckpointInfo info;
};

/// Binary envelope codec (exposed for tests and for tools that inspect
/// spilled .ckpt files). encode() returns the full envelope; decode()
/// validates magic/version/length/CRC and throws CheckpointError.
std::vector<std::uint8_t> encode_envelope(const std::string& payload,
                                          const CheckpointInfo& info);
struct DecodedEnvelope {
  std::string payload;
  CheckpointInfo info;  // metrics are manifest-only; note/epoch/step/seed set
};
DecodedEnvelope decode_envelope(const std::vector<std::uint8_t>& bytes);

struct StoreOptions {
  std::string container = "checkpoints";
  /// Retention: live generations kept per key (older ones are deleted at
  /// commit time). Must be >= 1.
  std::size_t keep_generations = 3;
  /// When non-empty, committed envelopes are also spilled to local files
  /// "<dir>/<key>.gen-N.ckpt" (examples use ./checkpoints; git-ignored).
  std::string spill_dir;
};

class CheckpointStore {
 public:
  CheckpointStore(objectstore::ObjectStore& store, StoreOptions options = {});

  /// Observability sinks (either may be null): "ckpt.save"/"ckpt.restore"
  /// spans, byte/outcome counters, and a per-key generation gauge.
  void instrument(obs::Tracer* tracer, obs::MetricsRegistry* metrics);

  /// Observer fired at every successful commit (after retention), with the
  /// committed envelope size. On transfer-routed stores the hook runs when
  /// the upload lands, so the federated tier uses it to timestamp delta
  /// arrivals on the virtual clock. Replaces any previous hook.
  void set_commit_hook(
      std::function<void(const std::string& key, std::uint64_t generation,
                         std::size_t bytes)>
          hook);

  /// Routes every save through the simulated network: the envelope is
  /// staged immediately, but the commit (rename + manifest update) happens
  /// only when the transfer completes. Retries/backoff come from the
  /// manager's policy; a Failed transfer (or no route at start) counts as
  /// an upload failure and leaves the previous generation current.
  void use_transfer(net::TransferManager& transfers, std::string from_host,
                    std::string to_host);

  /// Saves one generation. Returns the generation number assigned (commit
  /// may still be in flight when a transfer path is wired — pump the event
  /// queue to land it).
  std::uint64_t save(const std::string& key, const std::string& payload,
                     const CheckpointInfo& info);

  struct Loaded {
    std::string payload;
    GenerationInfo generation;
    std::size_t quarantined_now = 0;  // corrupt generations skipped this load
  };

  /// Newest generation that decodes cleanly; corrupt ones are quarantined
  /// and skipped. nullopt when the key has no loadable generation.
  std::optional<Loaded> load_latest(const std::string& key);

  /// Manifest view (newest last). Empty when the key has never committed.
  std::vector<GenerationInfo> manifest(const std::string& key) const;

  /// Chaos hook (FaultKind::CheckpointTruncate): the next commit keeps only
  /// `fraction` of its envelope bytes, modeling a torn upload the object
  /// store accepted. CRC catches it at load time.
  void truncate_next_upload(double fraction);

  /// Chaos hook (FaultKind::DeltaCorrupt): the next commit's payload bytes
  /// are bit-flipped in place (length preserved), modeling in-transit
  /// corruption the transport accepted. The envelope CRC cannot match, so
  /// load_latest quarantines the generation and falls back.
  void corrupt_next_upload();

  std::size_t saves() const { return saves_; }
  std::size_t upload_failures() const { return upload_failures_; }
  std::size_t quarantined() const { return quarantined_; }
  std::size_t pending_uploads() const { return pending_uploads_; }
  const StoreOptions& options() const { return options_; }

 private:
  void commit(const std::string& key, std::uint64_t generation,
              std::vector<std::uint8_t> bytes, const CheckpointInfo& info,
              std::uint32_t payload_crc);
  void quarantine(const std::string& key, std::uint64_t generation);
  util::Json read_manifest(const std::string& key) const;
  void write_manifest(const std::string& key, const util::Json& manifest);
  std::string object_name(const std::string& key,
                          std::uint64_t generation) const;
  void spill(const std::string& key, std::uint64_t generation,
             const std::vector<std::uint8_t>& bytes) const;

  objectstore::ObjectStore& store_;
  StoreOptions options_;
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  net::TransferManager* transfers_ = nullptr;
  std::function<void(const std::string&, std::uint64_t, std::size_t)>
      commit_hook_;
  std::string from_host_, to_host_;
  std::optional<double> truncate_fraction_;
  bool corrupt_next_ = false;
  std::size_t saves_ = 0;
  std::size_t upload_failures_ = 0;
  std::size_t quarantined_ = 0;
  std::size_t pending_uploads_ = 0;
};

/// Implemented by anything that can be preempted and resumed: the object
/// serializes *all* state needed to continue exactly where it stopped
/// (for ml::Trainer that means optimizer moments, RNG streams, and loop
/// counters — resumed training is bitwise-identical to uninterrupted).
class Checkpointable {
 public:
  virtual ~Checkpointable() = default;

  /// Stable identifier written into checkpoint notes ("ml.trainer", ...).
  virtual const char* checkpoint_kind() const = 0;

  virtual void save_state(std::ostream& os) = 0;
  virtual void load_state(std::istream& is) = 0;
};

/// Serializes `object` and saves it under `key`. Returns the generation.
std::uint64_t save_checkpoint(CheckpointStore& store, const std::string& key,
                              Checkpointable& object, CheckpointInfo info);

/// Restores `object` from the newest valid generation of `key`. Returns
/// false when no loadable checkpoint exists (fresh start).
bool restore_checkpoint(CheckpointStore& store, const std::string& key,
                        Checkpointable& object);

}  // namespace autolearn::ckpt
