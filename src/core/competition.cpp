#include "core/competition.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace autolearn::core {

const char* to_string(ScoringRule rule) {
  switch (rule) {
    case ScoringRule::SpeedAccuracy: return "speed-accuracy";
    case ScoringRule::Generalist: return "generalist";
  }
  return "?";
}

Competition::Competition(ScoringRule rule) : rule_(rule) {}

void Competition::add_entrant(Entrant entrant) {
  if (entrant.team.empty() || !entrant.pilot) {
    throw std::invalid_argument("competition: bad entrant");
  }
  for (const Entrant& e : entrants_) {
    if (e.team == entrant.team) {
      throw std::invalid_argument("competition: duplicate team " +
                                  entrant.team);
    }
  }
  entrants_.push_back(std::move(entrant));
}

void Competition::add_round(const track::Track* track,
                            eval::EvalOptions options) {
  if (!track) throw std::invalid_argument("competition: null track");
  rounds_.push_back(Round{track, options});
}

std::vector<Standing> Competition::run() {
  if (entrants_.empty() || rounds_.empty()) {
    throw std::logic_error("competition: need entrants and rounds");
  }
  results_.clear();
  std::map<std::string, Standing> standings;
  for (const Entrant& e : entrants_) {
    standings[e.team].team = e.team;
  }

  for (const Round& round : rounds_) {
    // Evaluate everyone on this round, then assign ranks within it.
    std::vector<std::pair<std::string, double>> round_scores;
    for (const Entrant& e : entrants_) {
      eval::Pilot& pilot = e.pilot();
      const eval::EvalResult r =
          eval::run_evaluation(*round.track, pilot, round.options);
      results_.push_back(RoundResult{e.team, round.track->name(), r});
      Standing& st = standings[e.team];
      st.total_score += r.score();
      st.total_errors += r.errors;
      ++st.rounds;
      round_scores.emplace_back(e.team, r.score());
    }
    std::sort(round_scores.begin(), round_scores.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    for (std::size_t rank = 0; rank < round_scores.size(); ++rank) {
      standings[round_scores[rank].first].rank_sum +=
          static_cast<double>(rank + 1);
    }
  }

  std::vector<Standing> out;
  out.reserve(standings.size());
  for (auto& [team, st] : standings) out.push_back(st);
  std::sort(out.begin(), out.end(), [this](const Standing& a,
                                           const Standing& b) {
    if (rule_ == ScoringRule::SpeedAccuracy) {
      return a.total_score > b.total_score;
    }
    return a.rank_sum < b.rank_sum;  // generalist: lower rank sum wins
  });
  return out;
}

}  // namespace autolearn::core
