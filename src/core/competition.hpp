// Student competitions (§3.3: "Students might also compete to train models
// yielding a combination of fastest speed with fewest errors, or accuracy
// following tracks of different shapes").
//
// A Competition runs every entrant on every round's track and aggregates
// standings. Two scoring rules mirror the paper's two suggested contests:
//   SpeedAccuracy  the combined score (laps/min divided by 1+errors)
//   Generalist     rank-sum across tracks of different shapes
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "eval/evaluator.hpp"
#include "track/track.hpp"

namespace autolearn::core {

enum class ScoringRule { SpeedAccuracy, Generalist };

const char* to_string(ScoringRule rule);

struct Entrant {
  std::string team;
  /// Factory so each round gets a fresh pilot (no state leaks between
  /// rounds). The pilot must outlive the evaluation; the factory returns a
  /// reference to a pilot owned elsewhere.
  std::function<eval::Pilot&()> pilot;
};

struct RoundResult {
  std::string team;
  std::string track;
  eval::EvalResult result;
};

struct Standing {
  std::string team;
  double total_score = 0.0;   // SpeedAccuracy: sum of scores
  double rank_sum = 0.0;      // Generalist: lower is better
  std::size_t rounds = 0;
  std::size_t total_errors = 0;
};

class Competition {
 public:
  explicit Competition(ScoringRule rule = ScoringRule::SpeedAccuracy);

  void add_entrant(Entrant entrant);
  void add_round(const track::Track* track, eval::EvalOptions options);

  /// Runs all rounds; returns standings sorted best-first.
  std::vector<Standing> run();

  const std::vector<RoundResult>& round_results() const { return results_; }

 private:
  ScoringRule rule_;
  std::vector<Entrant> entrants_;
  struct Round {
    const track::Track* track;
    eval::EvalOptions options;
  };
  std::vector<Round> rounds_;
  std::vector<RoundResult> results_;
};

}  // namespace autolearn::core
