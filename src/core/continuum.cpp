#include "core/continuum.hpp"

#include <algorithm>
#include <stdexcept>

namespace autolearn::core {

const char* to_string(Placement p) {
  switch (p) {
    case Placement::OnDevice: return "on-device";
    case Placement::Cloud: return "cloud";
    case Placement::Hybrid: return "hybrid";
  }
  return "?";
}

double placement_latency_s(Placement placement, const ContinuumOptions& opt,
                           std::uint64_t edge_model_flops,
                           std::uint64_t cloud_model_flops) {
  const auto scaled = [&](std::uint64_t flops) {
    return static_cast<std::uint64_t>(static_cast<double>(flops) *
                                      opt.flops_scale);
  };
  const double edge_infer = gpu::inference_latency_s(
      gpu::device(opt.edge_device), scaled(edge_model_flops));
  const double cloud_infer = gpu::inference_latency_s(
      gpu::device(opt.cloud_device), scaled(cloud_model_flops));
  switch (placement) {
    case Placement::OnDevice:
      // On-device runs the edge-sized model (the big one does not hold
      // the control rate on a Pi).
      return edge_infer;
    case Placement::Cloud: return opt.network_rtt_s + cloud_infer;
    case Placement::Hybrid:
      // The loop is never blocked longer than the edge model's latency.
      return edge_infer;
  }
  throw std::invalid_argument("placement_latency: bad placement");
}

HybridPilot::HybridPilot(ml::DrivingModel& edge_model,
                         ml::DrivingModel& cloud_model,
                         const ContinuumOptions& options, util::Rng rng)
    : edge_(edge_model),
      cloud_(cloud_model),
      cloud_model_(cloud_model),
      options_(options),
      rng_(rng),
      cloud_pipe_(options.control_dt, Stamped{}) {}

void HybridPilot::reset() {
  edge_.reset();
  cloud_.reset();
  cloud_pipe_ = util::DelayLine<Stamped>(options_.control_dt, Stamped{});
  now_ = 0.0;
  steps_ = 0;
  cloud_steps_ = 0;
}

double HybridPilot::cloud_usage() const {
  return steps_ ? static_cast<double>(cloud_steps_) /
                      static_cast<double>(steps_)
                : 0.0;
}

vehicle::DriveCommand HybridPilot::act(const camera::Image& frame) {
  now_ += options_.control_dt;
  ++steps_;
  // Edge model answers within the control period.
  const vehicle::DriveCommand edge_cmd = edge_.act(frame);
  // The same frame is also shipped to the cloud; its (better) command
  // arrives RTT + GPU-inference later.
  const vehicle::DriveCommand cloud_cmd = cloud_.act(frame);
  const double cloud_infer = gpu::inference_latency_s(
      gpu::device(options_.cloud_device),
      static_cast<std::uint64_t>(
          static_cast<double>(cloud_model_.flops_per_sample()) *
          options_.flops_scale));
  double delay = options_.network_rtt_s + cloud_infer;
  if (options_.rtt_jitter_s > 0) {
    delay = std::max(0.0, rng_.normal(delay, options_.rtt_jitter_s));
  }
  cloud_pipe_.push(Stamped{cloud_cmd, now_}, delay);
  const Stamped& freshest = cloud_pipe_.step();
  if (now_ - freshest.time <= options_.hybrid_staleness_s) {
    ++cloud_steps_;
    return freshest.cmd;
  }
  return edge_cmd;
}

eval::EvalResult evaluate_placement(const track::Track& track,
                                    ml::DrivingModel& main_model,
                                    ml::DrivingModel& edge_fallback,
                                    Placement placement,
                                    const ContinuumOptions& options,
                                    const eval::EvalOptions& eval_options) {
  eval::EvalOptions opts = eval_options;
  opts.dt = options.control_dt;
  const std::uint64_t main_flops = main_model.flops_per_sample();
  const std::uint64_t edge_flops = edge_fallback.flops_per_sample();
  switch (placement) {
    case Placement::OnDevice: {
      opts.command_latency_s = placement_latency_s(
          Placement::OnDevice, options, edge_flops, main_flops);
      eval::ModelPilot pilot(edge_fallback);
      return eval::run_evaluation(track, pilot, opts);
    }
    case Placement::Cloud: {
      opts.command_latency_s = placement_latency_s(Placement::Cloud, options,
                                                   edge_flops, main_flops);
      opts.latency_jitter_s = options.rtt_jitter_s;
      eval::ModelPilot pilot(main_model);
      return eval::run_evaluation(track, pilot, opts);
    }
    case Placement::Hybrid: {
      opts.command_latency_s = placement_latency_s(Placement::Hybrid, options,
                                                   edge_flops, main_flops);
      HybridPilot pilot(edge_fallback, main_model, options,
                        util::Rng(eval_options.seed + 17));
      return eval::run_evaluation(track, pilot, opts);
    }
  }
  throw std::invalid_argument("evaluate_placement: bad placement");
}

}  // namespace autolearn::core
