#include "core/continuum.hpp"

#include <algorithm>
#include <stdexcept>

namespace autolearn::core {

const char* to_string(Placement p) {
  switch (p) {
    case Placement::OnDevice: return "on-device";
    case Placement::Cloud: return "cloud";
    case Placement::Hybrid: return "hybrid";
  }
  return "?";
}

double placement_latency_s(Placement placement, const ContinuumOptions& opt,
                           std::uint64_t edge_model_flops,
                           std::uint64_t cloud_model_flops) {
  const auto scaled = [&](std::uint64_t flops) {
    return static_cast<std::uint64_t>(static_cast<double>(flops) *
                                      opt.flops_scale);
  };
  // Batch-of-1 through the batched perf model (bitwise-equal to the legacy
  // single-sample accounting) so eval and serving price compute the same.
  const double edge_infer = gpu::inference_latency_s(
      gpu::device(opt.edge_device), scaled(edge_model_flops), /*batch=*/1);
  const double cloud_infer = gpu::inference_latency_s(
      gpu::device(opt.cloud_device), scaled(cloud_model_flops), /*batch=*/1);
  switch (placement) {
    case Placement::OnDevice:
      // On-device runs the edge-sized model (the big one does not hold
      // the control rate on a Pi).
      return edge_infer;
    case Placement::Cloud: return opt.network_rtt_s + cloud_infer;
    case Placement::Hybrid:
      // The loop is never blocked longer than the edge model's latency.
      return edge_infer;
  }
  throw std::invalid_argument("placement_latency: bad placement");
}

HybridPilot::HybridPilot(ml::DrivingModel& edge_model,
                         ml::DrivingModel& cloud_model,
                         const ContinuumOptions& options, util::Rng rng)
    : edge_(edge_model),
      cloud_(cloud_model),
      cloud_model_(cloud_model),
      options_(options),
      rng_(rng),
      cloud_pipe_(options.control_dt, Stamped{}),
      breaker_(options.breaker) {
  if (options_.tracer || options_.metrics) {
    breaker_.set_on_transition([this](fault::CircuitBreaker::State from,
                                      fault::CircuitBreaker::State to,
                                      double now) {
      if (options_.tracer) {
        util::Json args = util::Json::object();
        args.set("from", util::Json(fault::to_string(from)));
        args.set("to", util::Json(fault::to_string(to)));
        args.set("t", util::Json(now));
        options_.tracer->instant("fault.breaker", "fault", std::move(args));
      }
      if (options_.metrics) {
        options_.metrics->counter("fault.breaker.transitions").inc();
        options_.metrics
            ->counter(std::string("fault.breaker.to_") +
                      fault::to_string(to))
            .inc();
      }
    });
  }
}

void HybridPilot::reset() {
  // Episode reset: the evaluator calls this when the student places the
  // car back on the line. That local intervention clears the control path
  // (model state, in-flight cloud commands) but does not move the wall
  // clock, heal the network, or erase observed degradation — construct a
  // fresh pilot for an independent run.
  edge_.reset();
  cloud_.reset();
  cloud_pipe_ = util::DelayLine<Stamped>(options_.control_dt, Stamped{});
}

double HybridPilot::cloud_usage() const {
  return steps_ ? static_cast<double>(cloud_steps_) /
                      static_cast<double>(steps_)
                : 0.0;
}

fault::DegradationStats HybridPilot::degradation() const {
  fault::DegradationStats stats;
  stats.cloud_usage = cloud_usage();
  stats.failovers = breaker_.times_opened();
  stats.denied_calls = denied_;
  stats.degraded_time_s = breaker_.degraded_s(now_);
  stats.recovery_latency_s = recovery_latency_s_;
  return stats;
}

vehicle::DriveCommand HybridPilot::act(const camera::Image& frame) {
  now_ += options_.control_dt;
  ++steps_;
  // Edge model answers within the control period.
  const vehicle::DriveCommand edge_cmd = edge_.act(frame);
  // The same frame is also shipped to the cloud — unless the breaker is
  // open (a partitioned or preempted cloud) in which case the loop does
  // not even try: the edge model has already taken over.
  if (breaker_.allow(now_)) {
    const bool was_degraded =
        breaker_.state() != fault::CircuitBreaker::State::Closed;
    if (!options_.cloud_probe || options_.cloud_probe(now_)) {
      breaker_.record_success(now_);
      if (was_degraded &&
          breaker_.state() == fault::CircuitBreaker::State::Closed) {
        awaiting_recovery_ = true;  // half-open probe re-closed the breaker
      }
      const vehicle::DriveCommand cloud_cmd = cloud_.act(frame);
      // Batch-of-1 through the batched perf model: the same accounting the
      // fleet serving tier uses for its dynamic batches.
      const double cloud_infer = gpu::inference_latency_s(
          gpu::device(options_.cloud_device),
          static_cast<std::uint64_t>(
              static_cast<double>(cloud_model_.flops_per_sample()) *
              options_.flops_scale),
          /*batch=*/1);
      double delay = options_.network_rtt_s + cloud_infer;
      if (options_.rtt_jitter_s > 0) {
        delay = std::max(0.0, rng_.normal(delay, options_.rtt_jitter_s));
      }
      cloud_pipe_.push(Stamped{cloud_cmd, now_}, delay);
    } else {
      breaker_.record_failure(now_);
    }
  } else {
    ++denied_;
    if (options_.metrics) {
      options_.metrics->counter("core.hybrid.denied").inc();
    }
  }
  if (options_.metrics) options_.metrics->counter("core.hybrid.steps").inc();
  const Stamped& freshest = cloud_pipe_.step();
  const bool cloud_fresh =
      now_ - freshest.time <= options_.hybrid_staleness_s;
  if (cloud_fresh &&
      breaker_.state() == fault::CircuitBreaker::State::Closed) {
    if (awaiting_recovery_) {
      // Full recovery: commands are flowing back through the pipe again.
      recovery_latency_s_ = now_ - breaker_.last_closed_at();
      awaiting_recovery_ = false;
    }
    ++cloud_steps_;
    if (options_.metrics) {
      options_.metrics->counter("core.hybrid.cloud_steps").inc();
    }
    return freshest.cmd;
  }
  return edge_cmd;
}

eval::EvalResult evaluate_placement(const track::Track& track,
                                    ml::DrivingModel& main_model,
                                    ml::DrivingModel& edge_fallback,
                                    Placement placement,
                                    const ContinuumOptions& options,
                                    const eval::EvalOptions& eval_options) {
  eval::EvalOptions opts = eval_options;
  opts.dt = options.control_dt;
  if (!opts.tracer) opts.tracer = options.tracer;
  if (!opts.metrics) opts.metrics = options.metrics;
  const auto scaled = [&](std::uint64_t flops) {
    return static_cast<std::uint64_t>(static_cast<double>(flops) *
                                      options.flops_scale);
  };
  // The evaluator derives the compute part of the command latency through
  // the batched perf model at infer_batch = 1 (bitwise-equal to the legacy
  // precomputed placement_latency_s); command_latency_s carries only the
  // network part.
  const std::uint64_t main_flops = main_model.flops_per_sample();
  const std::uint64_t edge_flops = edge_fallback.flops_per_sample();
  switch (placement) {
    case Placement::OnDevice: {
      opts.infer_device = &gpu::device(options.edge_device);
      opts.infer_flops = scaled(edge_flops);
      eval::ModelPilot pilot(edge_fallback);
      return eval::run_evaluation(track, pilot, opts);
    }
    case Placement::Cloud: {
      opts.command_latency_s = options.network_rtt_s;
      opts.infer_device = &gpu::device(options.cloud_device);
      opts.infer_flops = scaled(main_flops);
      opts.latency_jitter_s = options.rtt_jitter_s;
      eval::ModelPilot pilot(main_model);
      return eval::run_evaluation(track, pilot, opts);
    }
    case Placement::Hybrid: {
      // The loop is never blocked longer than the edge model's latency;
      // the cloud command's extra delay flows through the pilot's pipe.
      opts.infer_device = &gpu::device(options.edge_device);
      opts.infer_flops = scaled(edge_flops);
      HybridPilot pilot(edge_fallback, main_model, options,
                        util::Rng(eval_options.seed + 17));
      eval::EvalResult result = eval::run_evaluation(track, pilot, opts);
      result.degradation = pilot.degradation();
      return result;
    }
  }
  throw std::invalid_argument("evaluate_placement: bad placement");
}

}  // namespace autolearn::core
