// Edge-to-cloud inference placement (§3.3/§3.4 extensions: "exploring the
// edge to cloud interaction by attempting to run inference models in the
// cloud, constructing hybrid edge cloud inference models").
//
// Three placements for the closed control loop. The Pi can only sustain
// the small edge model at the control rate; the big model needs the GPU:
//   OnDevice  the small edge model runs on the car's Pi:
//             latency = Pi inference time, quality = the small model's
//   Cloud     frames go to a GPU node running the big model:
//             latency = network RTT + GPU time, quality = the big model's
//   Hybrid    the small model answers on the Pi every step while the big
//             model's commands stream back from the cloud; the loop uses
//             the cloud command when it is fresh and falls back to the
//             edge model otherwise.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "eval/evaluator.hpp"
#include "fault/circuit_breaker.hpp"
#include "fault/report.hpp"
#include "gpu/perf_model.hpp"
#include "ml/driving_model.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/delay_line.hpp"

namespace autolearn::core {

enum class Placement { OnDevice, Cloud, Hybrid };

const char* to_string(Placement p);

struct ContinuumOptions {
  std::string edge_device = "RaspberryPi4";
  std::string cloud_device = "V100";
  double network_rtt_s = 0.04;   // car <-> cloud round trip
  double rtt_jitter_s = 0.008;
  /// Hybrid: a cloud command older than this is considered stale and the
  /// edge model takes over.
  double hybrid_staleness_s = 0.15;
  double control_dt = 0.05;
  /// Scales model FLOPs when computing inference latency. The library's
  /// models run at reduced resolution (32x24); the paper's cars run the
  /// full DonkeyCar stack at 160x120, roughly 1500x the arithmetic. Set
  /// this to study the full-scale deployment without training it.
  double flops_scale = 1.0;
  /// Circuit breaker guarding cloud inference: consecutive unreachable
  /// probes trip it open and the edge model takes over outright (no frames
  /// shipped); half-open probes re-close it once the cloud is back.
  fault::CircuitBreakerConfig breaker;
  /// Cloud reachability probe, called with the loop's virtual time before
  /// each cloud call. Wire it to the chaos-injected network, e.g.
  ///   opt.cloud_probe = [&net](double) {
  ///     return net.route("car-01", "chi-uc").has_value();
  ///   };
  /// Unset means the cloud is always reachable (the pre-chaos behavior).
  std::function<bool(double now)> cloud_probe;
  /// Observability sinks (either may be null): breaker state transitions
  /// become "fault.breaker" trace instants and counters, cloud/edge step
  /// and denied-call counts land in the registry. evaluate_placement()
  /// forwards them into the evaluator's EvalOptions too.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

/// End-to-end command latency for a placement (excluding jitter).
double placement_latency_s(Placement placement, const ContinuumOptions& opt,
                           std::uint64_t edge_model_flops,
                           std::uint64_t cloud_model_flops);

/// Hybrid pilot: edge model answers immediately; the cloud model's answers
/// arrive RTT+GPU-time later through a delay line and override the edge
/// command while fresh.
class HybridPilot : public eval::Pilot {
 public:
  HybridPilot(ml::DrivingModel& edge_model, ml::DrivingModel& cloud_model,
              const ContinuumOptions& options, util::Rng rng);

  vehicle::DriveCommand act(const camera::Image& frame) override;
  void reset() override;
  std::string name() const override { return "hybrid"; }

  /// Fraction of steps that used the (fresh) cloud command so far.
  double cloud_usage() const;

  /// Breaker-observed degradation so far: failovers, denied cloud calls,
  /// time open, and the latency from re-close to the first cloud command
  /// actually steering the car again.
  fault::DegradationStats degradation() const;

  const fault::CircuitBreaker& breaker() const { return breaker_; }

 private:
  struct Stamped {
    vehicle::DriveCommand cmd;
    double time = -1e9;
  };

  eval::ModelPilot edge_;
  eval::ModelPilot cloud_;
  ml::DrivingModel& cloud_model_;
  ContinuumOptions options_;
  util::Rng rng_;
  util::DelayLine<Stamped> cloud_pipe_;
  fault::CircuitBreaker breaker_;
  double now_ = 0.0;
  std::size_t steps_ = 0;
  std::size_t cloud_steps_ = 0;
  std::size_t denied_ = 0;
  bool awaiting_recovery_ = false;  // breaker re-closed, cloud not used yet
  double recovery_latency_s_ = 0.0;
};

/// Evaluates a placement on a track: wires latency into the evaluator (or
/// builds a HybridPilot) and returns the closed-loop result.
eval::EvalResult evaluate_placement(const track::Track& track,
                                    ml::DrivingModel& main_model,
                                    ml::DrivingModel& edge_fallback,
                                    Placement placement,
                                    const ContinuumOptions& options,
                                    const eval::EvalOptions& eval_options);

}  // namespace autolearn::core
