#include "core/model_zoo.hpp"

#include <sstream>
#include <stdexcept>

namespace autolearn::core {

ModelZoo::ModelZoo(objectstore::ObjectStore& store, std::string container)
    : store_(store), container_(std::move(container)) {
  if (!store_.has_container(container_)) {
    store_.create_container(container_);
  }
}

std::uint64_t ModelZoo::publish(const std::string& name,
                                ml::DrivingModel& model,
                                const std::string& track_name,
                                double val_loss, double steering_mae) {
  if (name.empty()) throw std::invalid_argument("zoo: empty name");
  std::ostringstream blob;
  model.save(blob);
  const std::string bytes = blob.str();
  return store_.put(container_, name,
                    std::vector<std::uint8_t>(bytes.begin(), bytes.end()),
                    {{"model_type", model.type_name()},
                     {"track", track_name},
                     {"val_loss", std::to_string(val_loss)},
                     {"steering_mae", std::to_string(steering_mae)}});
}

ZooEntry ModelZoo::entry_from_metadata(
    const std::string& name, const std::map<std::string, std::string>& meta,
    std::uint64_t version) const {
  ZooEntry e;
  e.name = name;
  e.version = version;
  e.type = ml::model_type_from_string(meta.at("model_type"));
  e.track = meta.at("track");
  e.val_loss = std::stod(meta.at("val_loss"));
  e.steering_mae = std::stod(meta.at("steering_mae"));
  return e;
}

std::vector<ZooEntry> ModelZoo::list() const {
  std::vector<ZooEntry> out;
  for (const objectstore::ObjectInfo& info : store_.list(container_)) {
    const auto obj = store_.get(container_, info.name);
    if (!obj) continue;
    out.push_back(entry_from_metadata(info.name, obj->metadata, obj->version));
  }
  return out;
}

std::vector<ZooEntry> ModelZoo::list_by_type(ml::ModelType type) const {
  std::vector<ZooEntry> out;
  for (ZooEntry& e : list()) {
    if (e.type == type) out.push_back(std::move(e));
  }
  return out;
}

std::optional<ZooEntry> ModelZoo::best_for_track(
    const std::string& track_name) const {
  std::optional<ZooEntry> best;
  for (ZooEntry& e : list()) {
    if (e.track != track_name) continue;
    if (!best || e.steering_mae < best->steering_mae) best = std::move(e);
  }
  return best;
}

bool ModelZoo::contains(const std::string& name) const {
  return store_.get(container_, name).has_value();
}

std::unique_ptr<ml::DrivingModel> ModelZoo::load(
    const std::string& name, const ml::ModelConfig& config) const {
  const auto obj = store_.get(container_, name);
  if (!obj) throw std::invalid_argument("zoo: unknown model " + name);
  auto model = ml::make_model(
      ml::model_type_from_string(obj->metadata.at("model_type")), config);
  std::istringstream in(std::string(obj->bytes.begin(), obj->bytes.end()));
  model->load(in);
  return model;
}

}  // namespace autolearn::core
