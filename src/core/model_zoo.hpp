// Pre-trained model zoo (§3.4: "students can use one of the packed
// pre-trained models or explore new models"; §3.5: "The collected datasets
// and the pre-trained models are stored in Chameleon's object store and
// can be combined with other components of the system in a 'mix and match'
// pathway").
//
// Checkpoints live in an object-store container with structured metadata
// (model type, source track, training stats); students list, filter, and
// instantiate them without training anything.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ml/driving_model.hpp"
#include "objectstore/objectstore.hpp"

namespace autolearn::core {

struct ZooEntry {
  std::string name;         // e.g. "inferred-oval-v2"
  ml::ModelType type = ml::ModelType::Linear;
  std::string track;        // source track name
  double val_loss = 0.0;
  double steering_mae = 0.0;
  std::uint64_t version = 0;
};

class ModelZoo {
 public:
  /// Uses (and creates if needed) the "models" container of the store.
  explicit ModelZoo(objectstore::ObjectStore& store,
                    std::string container = "models");

  /// Serializes the model and publishes it with metadata. Re-publishing
  /// under the same name creates a new version. Returns the version.
  std::uint64_t publish(const std::string& name, ml::DrivingModel& model,
                        const std::string& track_name, double val_loss,
                        double steering_mae);

  /// All entries (latest versions).
  std::vector<ZooEntry> list() const;
  /// Entries of one model type.
  std::vector<ZooEntry> list_by_type(ml::ModelType type) const;
  /// Best entry (lowest steering MAE) for a track, if any.
  std::optional<ZooEntry> best_for_track(const std::string& track_name) const;

  /// Reconstructs a ready-to-drive model from a checkpoint. The model
  /// config must match the one used at publish time (the zoo stores the
  /// type; other config fields use defaults unless provided).
  std::unique_ptr<ml::DrivingModel> load(
      const std::string& name, const ml::ModelConfig& config = {}) const;

  bool contains(const std::string& name) const;

 private:
  ZooEntry entry_from_metadata(
      const std::string& name,
      const std::map<std::string, std::string>& meta,
      std::uint64_t version) const;

  objectstore::ObjectStore& store_;
  std::string container_;
};

}  // namespace autolearn::core
