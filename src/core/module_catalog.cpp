#include "core/module_catalog.hpp"

namespace autolearn::core {

const char* to_string(ComponentGroup g) {
  switch (g) {
    case ComponentGroup::Artifacts: return "artifacts";
    case ComponentGroup::Computation: return "computation";
    case ComponentGroup::Extensions: return "extensions";
  }
  return "?";
}

const char* to_string(Difficulty d) {
  switch (d) {
    case Difficulty::Beginner: return "beginner";
    case Difficulty::Intermediate: return "intermediate";
    case Difficulty::Advanced: return "advanced";
  }
  return "?";
}

const std::vector<ModuleComponent>& module_catalog() {
  static const std::vector<ModuleComponent> catalog = {
      // --- artifacts (Fig. 1 left column) --------------------------------
      {"sample datasets", ComponentGroup::Artifacts, Difficulty::Beginner,
       "pre-collected oval/Waveshare sessions (10-50K records)",
       "data::DataPath::Sample", false, false},
      {"pre-trained models", ComponentGroup::Artifacts, Difficulty::Beginner,
       "packed checkpoints for all six model types",
       "core::ModelZoo", false, false},
      {"instruction notebooks", ComponentGroup::Artifacts,
       Difficulty::Beginner,
       "one-click cells for every pipeline phase",
       "workflow::Notebook + core::to_notebook", false, false},
      // --- computation (Fig. 1 middle column) ----------------------------
      {"data collection", ComponentGroup::Computation, Difficulty::Beginner,
       "drive (expert stand-in) and record tubs over any of the three paths",
       "data::collect_session", true, false},
      {"data cleaning", ComponentGroup::Computation, Difficulty::Beginner,
       "tubclean review pass marking crash segments deleted",
       "data::review_clean", false, false},
      {"model training", ComponentGroup::Computation,
       Difficulty::Intermediate,
       "fit any of the six model types; GPU time via the perf model",
       "ml::fit + gpu::training_time_s", false, true},
      {"model evaluation", ComponentGroup::Computation,
       Difficulty::Intermediate,
       "closed-loop driving with laps/errors/score",
       "eval::run_evaluation", true, true},
      // --- extensions/assignments (Fig. 1 right column) ------------------
      {"track variations", ComponentGroup::Extensions, Difficulty::Beginner,
       "modify the shape of the track, vary surface/conditions",
       "track::PathBuilder", false, false},
      {"model comparisons", ComponentGroup::Extensions,
       Difficulty::Intermediate,
       "compare the six model types on speed vs errors",
       "bench_e2_autonomy", false, false},
      {"path following", ComponentGroup::Extensions,
       Difficulty::Intermediate,
       "record a GPS path and have the car follow it",
       "cv::WaypointPilot", false, false},
      {"line following", ComponentGroup::Extensions,
       Difficulty::Intermediate,
       "edge detection / centre-line keeping without ML",
       "cv::LineFollowPilot", false, false},
      {"obstacle detection", ComponentGroup::Extensions,
       Difficulty::Intermediate,
       "colour-coded stop/go signals in front of the camera",
       "cv::SignalAwarePilot", false, false},
      {"edge-cloud inference", ComponentGroup::Extensions,
       Difficulty::Advanced,
       "in-situ vs cloud vs hybrid placement across network RTTs",
       "core::evaluate_placement", false, true},
      {"reinforcement learning", ComponentGroup::Extensions,
       Difficulty::Advanced,
       "tabular Q-learning in the simulator",
       "rl::QLearningPilot", false, false},
      {"digital twin", ComponentGroup::Extensions, Difficulty::Advanced,
       "compare simulator output with real-life evaluation",
       "core::compare_sim_to_real", true, false},
      {"competitions", ComponentGroup::Extensions, Difficulty::Intermediate,
       "fastest speed with fewest errors; accuracy across track shapes",
       "core::Competition", false, false},
      {"speed-data reliability", ComponentGroup::Extensions,
       Difficulty::Advanced,
       "lap consistency from real-time speed telemetry (Fowler poster)",
       "core::SpeedGovernedPilot", true, false},
      {"drone survey", ComponentGroup::Extensions, Difficulty::Advanced,
       "UAV lawnmower coverage of a field (precision agriculture, §6)",
       "drone::fly_survey", false, false},
  };
  return catalog;
}

std::vector<const ModuleComponent*> components_in_group(ComponentGroup g) {
  std::vector<const ModuleComponent*> out;
  for (const ModuleComponent& c : module_catalog()) {
    if (c.group == g) out.push_back(&c);
  }
  return out;
}

std::vector<const ModuleComponent*> components_at(Difficulty d) {
  std::vector<const ModuleComponent*> out;
  for (const ModuleComponent& c : module_catalog()) {
    if (c.difficulty == d) out.push_back(&c);
  }
  return out;
}

std::vector<const ModuleComponent*> hardware_free_components() {
  std::vector<const ModuleComponent*> out;
  for (const ModuleComponent& c : module_catalog()) {
    if (!c.requires_car && !c.requires_testbed) out.push_back(&c);
  }
  return out;
}

}  // namespace autolearn::core
