// The educational module's structure (Fig. 1): three component groups —
// artifacts, computation, and extensions/assignments — "which can be used
// to reinforce, apply, and assess the new learned skills". The catalog is
// queryable so examples, docs, and the teaching guide stay consistent with
// one source of truth.
#pragma once

#include <string>
#include <vector>

namespace autolearn::core {

enum class ComponentGroup { Artifacts, Computation, Extensions };
enum class Difficulty { Beginner, Intermediate, Advanced };

const char* to_string(ComponentGroup g);
const char* to_string(Difficulty d);

struct ModuleComponent {
  std::string name;
  ComponentGroup group = ComponentGroup::Artifacts;
  Difficulty difficulty = Difficulty::Beginner;
  std::string description;
  /// Library/binary in this repository that implements it.
  std::string implemented_by;
  bool requires_car = false;
  bool requires_testbed = false;
};

/// The full Fig. 1 catalog.
const std::vector<ModuleComponent>& module_catalog();

/// Filters.
std::vector<const ModuleComponent*> components_in_group(ComponentGroup g);
std::vector<const ModuleComponent*> components_at(Difficulty d);
/// Everything a hardware-free (digital-pathway) learner can run.
std::vector<const ModuleComponent*> hardware_free_components();

}  // namespace autolearn::core
