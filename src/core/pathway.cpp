#include "core/pathway.hpp"

#include <stdexcept>

namespace autolearn::core {

const char* to_string(PathwayKind k) {
  switch (k) {
    case PathwayKind::Regular: return "regular";
    case PathwayKind::Classroom: return "classroom";
    case PathwayKind::Digital: return "digital";
  }
  return "?";
}

bool PathwayPlan::needs_physical_car() const {
  for (const PhasePlan& p : phases) {
    if (p.requires_car) return true;
  }
  return false;
}

bool PathwayPlan::needs_testbed() const {
  for (const PhasePlan& p : phases) {
    if (p.requires_testbed) return true;
  }
  return false;
}

PathwayPlan make_pathway(PathwayKind kind) {
  PathwayPlan plan;
  plan.kind = kind;
  switch (kind) {
    case PathwayKind::Regular:
      // Self-paced learner with a car kit and testbed access.
      plan.audience = "self-paced learner with a ~$200 car kit";
      plan.phases = {
          {"data collection", "drive the physical car with the web controller",
           "hands-on engineering is the point of the regular path", true,
           false},
          {"data cleaning", "tubclean review of the recorded video",
           "learners always record some crashes", false, false},
          {"model training", "Chameleon GPU lease + AutoLearn trainer image",
           "training on a laptop is too slow; the notebook reserves a node",
           false, true},
          {"model evaluation", "deploy to the car via CHI@Edge BYOD container",
           "closing the loop on real hardware", true, true},
      };
      break;
    case PathwayKind::Classroom:
      // Instructor-led cohort: advance reservations, shared cars.
      plan.audience = "instructor-led class with shared cars and a TA";
      plan.phases = {
          {"data collection", "shared sample datasets + short car sessions",
           "class time is limited; samples guarantee everyone has data",
           true, false},
          {"data cleaning", "tubclean as a graded warm-up exercise",
           "a beginner-level assignment (§3.4)", false, false},
          {"model training", "advance-reserved GPU nodes for the class slot",
           "advance reservations guarantee availability at class time",
           false, true},
          {"model evaluation", "track day: cars via BYOD, scores compared",
           "competition between student teams (§3.3)", true, true},
      };
      break;
    case PathwayKind::Digital:
      // No car at all: simulator end-to-end.
      plan.audience = "remote self-learner without hardware";
      plan.phases = {
          {"data collection", "DonkeyCar simulator sessions",
           "the simulator runs on any laptop (§3.3)", false, false},
          {"data cleaning", "tubclean on simulator tubs",
           "same workflow, no hardware", false, false},
          {"model training", "Chameleon GPU lease (or local CPU for tiny runs)",
           "the training notebook is identical for sim data", false, true},
          {"model evaluation", "simulator evaluation + digital-twin compare",
           "validating without a car (§3.4)", false, false},
      };
      break;
  }
  return plan;
}

workflow::Notebook to_notebook(
    const PathwayPlan& plan,
    const std::function<std::string(const PhasePlan&)>& phase_runner) {
  if (!phase_runner) throw std::invalid_argument("pathway: null runner");
  workflow::Notebook nb(std::string("autolearn-") + to_string(plan.kind));
  for (const PhasePlan& phase : plan.phases) {
    nb.add_cell(phase.phase + " — " + phase.alternative,
                [phase, phase_runner] { return phase_runner(phase); });
  }
  return nb;
}

}  // namespace autolearn::core
