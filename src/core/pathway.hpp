// Learning pathways (§3.4, §4): "three different pathways, i.e. regular,
// classroom, and digital path, based on student's interests, background or
// goals". A pathway plan enumerates the phases of Fig. 1 with the
// alternative chosen for each and can be materialized as a runnable
// notebook (the artifact form the module ships in).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "workflow/notebook.hpp"

namespace autolearn::core {

enum class PathwayKind { Regular, Classroom, Digital };

const char* to_string(PathwayKind k);

struct PhasePlan {
  std::string phase;        // "data collection", "model training", ...
  std::string alternative;  // which option this pathway uses
  std::string rationale;    // why this alternative fits the pathway
  bool requires_car = false;
  bool requires_testbed = false;
};

struct PathwayPlan {
  PathwayKind kind = PathwayKind::Regular;
  std::string audience;
  std::vector<PhasePlan> phases;

  bool needs_physical_car() const;
  bool needs_testbed() const;
};

/// The three pathways of §4 with the alternatives §3.4 describes.
PathwayPlan make_pathway(PathwayKind kind);

/// Materializes the plan as a notebook whose cells describe (and check)
/// each phase; bodies are supplied by the caller via a phase-runner so the
/// same plan can drive a simulation or a dry run.
workflow::Notebook to_notebook(
    const PathwayPlan& plan,
    const std::function<std::string(const PhasePlan&)>& phase_runner);

}  // namespace autolearn::core
