#include "core/pipeline.hpp"

#include <stdexcept>

#include "data/dataset.hpp"
#include "eval/pilot.hpp"
#include "util/logging.hpp"

namespace autolearn::core {

Pipeline::Pipeline(const track::Track& track, PipelineOptions options,
                   std::filesystem::path workdir)
    : track_(track), options_(std::move(options)), workdir_(std::move(workdir)) {}

ml::DrivingModel& Pipeline::model() {
  if (!model_) throw std::logic_error("pipeline: run() first");
  return *model_;
}

PipelineReport Pipeline::run() {
  PipelineReport report;

  // Phase 1: collect (Fig. 2 path).
  data::CollectOptions copt;
  copt.duration_s = options_.collect_duration_s;
  copt.seed = options_.seed;
  copt.expert = options_.driver;
  copt.img_w = options_.model_config.img_w;
  copt.img_h = options_.model_config.img_h;
  const auto tub_dir = workdir_ / "tub";
  std::filesystem::remove_all(tub_dir);
  report.collect =
      data::collect_session(track_, options_.data_path, copt, tub_dir);

  // Phase 2: clean (tubclean review pass).
  data::Tub tub(tub_dir);
  if (options_.clean) {
    report.clean = data::review_clean(tub);
  }

  // Phase 3: train.
  data::DatasetOptions dopt;
  dopt.seq_len = options_.model_config.seq_len;
  dopt.history_len = options_.model_config.history_len;
  auto samples = data::build_samples(tub.read_all(), dopt);
  auto [train, val] = data::split_train_val(std::move(samples), 0.15,
                                            options_.seed + 7);
  report.train_samples = train.size();
  report.val_samples = val.size();
  if (train.empty()) throw std::runtime_error("pipeline: no training data");

  model_ = ml::make_model(options_.model, options_.model_config);
  report.train_result = ml::fit(*model_, train, val, options_.train);
  report.steering_mae = ml::steering_mae(*model_, val);

  gpu::TrainingWorkload load;
  load.forward_flops = report.train_result.forward_flops;
  load.samples = report.train_result.samples_seen;
  load.batch_size = options_.train.batch_size;
  const gpu::DeviceSpec& spec = gpu::device(options_.gpu_device);
  const gpu::Interconnect link =
      options_.gpu_count > 1 ? (options_.gpu_device == "v100NVLINK" ||
                                        options_.gpu_device == "A100"
                                    ? gpu::Interconnect::NVLink
                                    : gpu::Interconnect::PCIe)
                             : gpu::Interconnect::None;
  report.simulated_gpu_seconds =
      gpu::training_time_s(spec, load, options_.gpu_count, link);

  // Phase 4: evaluate closed-loop.
  eval::ModelPilot pilot(*model_);
  report.eval_result = eval::run_evaluation(track_, pilot, options_.eval);
  report.degradation = report.eval_result.degradation;

  AUTOLEARN_LOG(Info, "pipeline")
      << ml::to_string(options_.model) << " on " << track_.name() << ": mae "
      << report.steering_mae << ", laps " << report.eval_result.laps
      << ", errors " << report.eval_result.errors;
  return report;
}

}  // namespace autolearn::core
