// The AutoLearn pipeline (Fig. 1): data collection -> cleaning -> model
// training -> evaluation, as one orchestrated object. Each phase mirrors a
// section of the educational module and can be swapped the way the paper's
// pathways allow (sample dataset vs. fresh collection, any of the six
// model types, sim vs. physical-car evaluation).
#pragma once

#include <filesystem>
#include <memory>
#include <optional>
#include <string>

#include "data/collector.hpp"
#include "data/tubclean.hpp"
#include "eval/evaluator.hpp"
#include "fault/report.hpp"
#include "gpu/perf_model.hpp"
#include "ml/trainer.hpp"
#include "track/track.hpp"

namespace autolearn::core {

struct PipelineOptions {
  data::DataPath data_path = data::DataPath::Sample;
  double collect_duration_s = 120.0;
  vehicle::ExpertConfig driver;        // imperfection knobs
  bool clean = true;                   // run tubclean before training
  ml::ModelType model = ml::ModelType::Linear;
  ml::ModelConfig model_config;
  ml::TrainOptions train;
  std::string gpu_device = "V100";     // simulated training node
  int gpu_count = 1;
  eval::EvalOptions eval;
  std::uint64_t seed = 1;
};

struct PipelineReport {
  data::CollectStats collect;
  data::CleanStats clean;
  std::size_t train_samples = 0;
  std::size_t val_samples = 0;
  ml::TrainResult train_result;
  double steering_mae = 0.0;
  double simulated_gpu_seconds = 0.0;  // on the configured node
  eval::EvalResult eval_result;
  /// Degradation observed during the evaluation phase (zeros unless the
  /// eval ran a resilient placement under injected faults).
  fault::DegradationStats degradation;
};

/// Runs the full pipeline in a working directory (tub storage) and returns
/// the trained model plus a report of every phase.
class Pipeline {
 public:
  Pipeline(const track::Track& track, PipelineOptions options,
           std::filesystem::path workdir);

  /// Executes collect -> clean -> train -> evaluate.
  PipelineReport run();

  /// The trained model (valid after run()).
  ml::DrivingModel& model();

 private:
  const track::Track& track_;
  PipelineOptions options_;
  std::filesystem::path workdir_;
  std::unique_ptr<ml::DrivingModel> model_;
};

}  // namespace autolearn::core
