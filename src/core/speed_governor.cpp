#include "core/speed_governor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "eval/evaluator.hpp"

namespace autolearn::core {

SpeedGovernedPilot::SpeedGovernedPilot(eval::Pilot& inner,
                                       GovernorConfig config)
    : inner_(inner), config_(config) {
  if (config.target_speed <= 0 || config.kp < 0 || config.ki < 0 ||
      config.dt <= 0 || config.max_speed <= 0) {
    throw std::invalid_argument("governor: bad config");
  }
}

void SpeedGovernedPilot::reset() {
  inner_.reset();
  integral_ = 0.0;
  measured_speed_ = 0.0;
}

vehicle::DriveCommand SpeedGovernedPilot::act(const camera::Image& frame) {
  const vehicle::DriveCommand inner_cmd = inner_.act(frame);
  const double error = config_.target_speed - measured_speed_;
  integral_ = std::clamp(integral_ + error * config_.dt,
                         -config_.integral_limit, config_.integral_limit);
  const double throttle =
      (config_.target_speed + config_.kp * error + config_.ki * integral_) /
      config_.max_speed;
  return vehicle::DriveCommand{inner_cmd.steering, throttle}.clamped();
}

eval::EvalResult run_governed_evaluation(const track::Track& track,
                                         SpeedGovernedPilot& pilot,
                                         const eval::EvalOptions& options) {
  eval::EvalOptions opts = options;
  opts.telemetry = [&pilot](const vehicle::CarState& state) {
    pilot.set_measured_speed(state.speed);
  };
  return eval::run_evaluation(track, pilot, opts);
}

double lap_time_stddev(const eval::EvalResult& result) {
  const auto& laps = result.lap_times;
  if (laps.size() < 2) return 0.0;
  double mean = 0;
  for (double t : laps) mean += t;
  mean /= static_cast<double>(laps.size());
  double s2 = 0;
  for (double t : laps) s2 += (t - mean) * (t - mean);
  return std::sqrt(s2 / static_cast<double>(laps.size() - 1));
}

}  // namespace autolearn::core
