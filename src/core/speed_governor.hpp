// Speed governor — the reliability study that grew out of the module
// (Fowler et al., SC'23 poster: "Road To Reliability: Optimizing
// Self-Driving Consistency With Real-Time Speed Data").
//
// Wraps any pilot and replaces its throttle with a PI controller that
// tracks a target speed from real-time speed telemetry. The inner pilot
// keeps steering. Consistency is measured as the standard deviation of
// lap times — the governed car trades a little raw pace for repeatable
// laps.
#pragma once

#include <string>

#include "eval/evaluator.hpp"
#include "eval/pilot.hpp"

namespace autolearn::core {

struct GovernorConfig {
  double target_speed = 1.3;  // m/s
  double kp = 0.8;            // proportional gain on speed error
  double ki = 0.15;           // integral gain
  double integral_limit = 0.5;
  double dt = 0.05;
  double max_speed = 2.8;     // chassis limit used for normalization
};

/// Speed telemetry source: the evaluator feeds the true speed; on a real
/// car this is the hall-effect sensor the poster used.
class SpeedGovernedPilot : public eval::Pilot {
 public:
  /// Does not own `inner`.
  SpeedGovernedPilot(eval::Pilot& inner, GovernorConfig config = {});

  /// The evaluator (or caller) must publish the measured speed before each
  /// act() call; without telemetry the governor holds its last estimate.
  void set_measured_speed(double speed) { measured_speed_ = speed; }

  vehicle::DriveCommand act(const camera::Image& frame) override;
  void reset() override;
  std::string name() const override { return inner_.name() + "+governor"; }

  const GovernorConfig& config() const { return config_; }

 private:
  eval::Pilot& inner_;
  GovernorConfig config_;
  double measured_speed_ = 0.0;
  double integral_ = 0.0;
};

/// Closed-loop consistency evaluation: like eval::run_evaluation but feeds
/// speed telemetry into a SpeedGovernedPilot each step. Returns the usual
/// result; lap-time consistency is result.lap_times' spread.
eval::EvalResult run_governed_evaluation(const track::Track& track,
                                         SpeedGovernedPilot& pilot,
                                         const eval::EvalOptions& options);

/// Standard deviation of lap times (0 for fewer than 2 laps).
double lap_time_stddev(const eval::EvalResult& result);

}  // namespace autolearn::core
