#include "core/twin.hpp"

#include <cmath>
#include <stdexcept>

#include "camera/camera.hpp"
#include "vehicle/car.hpp"

namespace autolearn::core {
namespace {

struct Trajectory {
  std::vector<track::Vec2> positions;
  std::vector<double> speeds;
  double distance = 0.0;
  std::size_t errors = 0;
};

Trajectory drive(const track::Track& track, eval::Pilot& pilot,
                 const TwinOptions& opt, bool real, double noise_scale) {
  util::Rng rng(opt.seed);

  vehicle::CarConfig car_cfg;
  camera::CameraConfig cam_cfg;
  cam_cfg.width = opt.img_w;
  cam_cfg.height = opt.img_h;
  if (real) {
    vehicle::NoiseProfile nz = vehicle::NoiseProfile::real_car();
    nz.steering_noise *= noise_scale;
    nz.steering_bias *= noise_scale;
    nz.throttle_noise *= noise_scale;
    nz.position_noise *= noise_scale;
    car_cfg.noise = nz;
    camera::CameraNoise cn = camera::CameraNoise::real_car();
    cn.pixel_noise *= noise_scale;
    cn.exposure_jitter *= noise_scale;
    cn.pose_jitter *= noise_scale;
    cam_cfg.noise = cn;
  }
  vehicle::Car car(car_cfg, rng.split());
  car.reset(track.position_at(0), track.heading_at(0));
  camera::Camera cam(cam_cfg, rng.split());

  pilot.reset();
  Trajectory traj;
  const auto steps = static_cast<std::size_t>(opt.duration_s / opt.dt);
  double s_prev = 0.0;
  for (std::size_t i = 0; i < steps; ++i) {
    const camera::Image frame = cam.render(track, car.state());
    car.step(pilot.act(frame), opt.dt);
    traj.positions.push_back(car.state().pos);
    traj.speeds.push_back(car.state().speed);
    const track::Projection proj = track.project(car.state().pos);
    const double delta = track.progress_delta(s_prev, proj.s);
    if (delta > 0) traj.distance += delta;
    s_prev = proj.s;
    if (!proj.on_track &&
        std::abs(proj.lateral) > track.half_width() + 0.10) {
      ++traj.errors;
      car.reset(track.position_at(proj.s), track.heading_at(proj.s), 0.3);
      pilot.reset();
      s_prev = track.project(car.state().pos).s;
    }
  }
  return traj;
}

}  // namespace

TwinReport compare_sim_to_real(const track::Track& track, eval::Pilot& pilot,
                               const TwinOptions& options) {
  if (options.duration_s <= 0 || options.dt <= 0 || options.noise_scale < 0) {
    throw std::invalid_argument("twin: bad options");
  }
  const Trajectory sim =
      drive(track, pilot, options, /*real=*/false, options.noise_scale);
  const Trajectory real =
      drive(track, pilot, options, /*real=*/true, options.noise_scale);

  TwinReport report;
  double pos_se = 0, speed_se = 0;
  const std::size_t n = sim.positions.size();
  for (std::size_t i = 0; i < n; ++i) {
    pos_se += (sim.positions[i] - real.positions[i]).norm2();
    const double dv = sim.speeds[i] - real.speeds[i];
    speed_se += dv * dv;
  }
  report.position_rmse_m = n ? std::sqrt(pos_se / static_cast<double>(n)) : 0;
  report.speed_rmse = n ? std::sqrt(speed_se / static_cast<double>(n)) : 0;
  report.final_divergence_m =
      n ? (sim.positions.back() - real.positions.back()).norm() : 0;
  report.sim_distance_m = sim.distance;
  report.real_distance_m = real.distance;
  report.sim_errors = sim.errors;
  report.real_errors = real.errors;
  report.fidelity = std::exp(-report.position_rmse_m / track.half_width());
  return report;
}

}  // namespace autolearn::core
