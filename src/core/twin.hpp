// Digital-twin comparison (§3.3/§3.4: "combining the simulator and
// real-life validation can lead to interesting exploration of digital twin
// modeling").
//
// The same pilot drives the same track under the clean simulator profiles
// and under the real-car profiles; the comparator time-aligns the two
// trajectories and reports divergence statistics plus a fidelity score in
// [0, 1].
#pragma once

#include <vector>

#include "eval/pilot.hpp"
#include "track/track.hpp"
#include "util/stats.hpp"

namespace autolearn::core {

struct TwinOptions {
  double duration_s = 60.0;
  double dt = 0.05;
  std::size_t img_w = 32;
  std::size_t img_h = 24;
  std::uint64_t seed = 9;
  /// Scales the real-car noise: 0 = twin identical to sim, 1 = calibrated
  /// real car, >1 = worse-than-real hardware.
  double noise_scale = 1.0;
};

struct TwinReport {
  double position_rmse_m = 0.0;     // time-aligned trajectory divergence
  double final_divergence_m = 0.0;  // gap at the end of the run
  double speed_rmse = 0.0;
  double sim_distance_m = 0.0;
  double real_distance_m = 0.0;
  std::size_t sim_errors = 0;
  std::size_t real_errors = 0;
  /// exp(-rmse / track half-width): 1 when the twin tracks reality
  /// perfectly, decaying as the trajectories drift apart.
  double fidelity = 0.0;
};

/// Runs the pilot twice (sim profiles / scaled real profiles) and compares
/// the trajectories sample-by-sample.
TwinReport compare_sim_to_real(const track::Track& track, eval::Pilot& pilot,
                               const TwinOptions& options);

}  // namespace autolearn::core
