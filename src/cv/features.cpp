#include "cv/features.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

namespace autolearn::cv {

camera::Image sobel_magnitude(const camera::Image& img) {
  const std::size_t w = img.width(), h = img.height();
  camera::Image out(w, h, 0.0f);
  if (w < 3 || h < 3) return out;
  for (std::size_t y = 1; y + 1 < h; ++y) {
    for (std::size_t x = 1; x + 1 < w; ++x) {
      const float gx =
          -img.at(x - 1, y - 1) + img.at(x + 1, y - 1) -
          2 * img.at(x - 1, y) + 2 * img.at(x + 1, y) -
          img.at(x - 1, y + 1) + img.at(x + 1, y + 1);
      const float gy =
          -img.at(x - 1, y - 1) - 2 * img.at(x, y - 1) - img.at(x + 1, y - 1) +
          img.at(x - 1, y + 1) + 2 * img.at(x, y + 1) + img.at(x + 1, y + 1);
      out.at(x, y) = std::sqrt(gx * gx + gy * gy);
    }
  }
  return out;
}

camera::Image edge_map(const camera::Image& img, float threshold) {
  camera::Image grad = sobel_magnitude(img);
  for (float& p : grad.pixels()) p = p >= threshold ? 1.0f : 0.0f;
  return grad;
}

std::optional<double> row_lane_center(const camera::Image& img,
                                      std::size_t row, float tape_threshold,
                                      double min_gap_frac) {
  if (row >= img.height()) return std::nullopt;
  std::ptrdiff_t left = -1, right = -1;
  for (std::size_t x = 0; x < img.width(); ++x) {
    if (img.at(x, row) >= tape_threshold) {
      if (left < 0) left = static_cast<std::ptrdiff_t>(x);
      right = static_cast<std::ptrdiff_t>(x);
    }
  }
  const auto min_gap = static_cast<std::ptrdiff_t>(
      min_gap_frac * static_cast<double>(img.width()));
  if (left < 0 || right - left < min_gap) return std::nullopt;
  return (static_cast<double>(left) + static_cast<double>(right)) / 2.0;
}

std::optional<double> lane_center_offset(const camera::Image& img,
                                         std::size_t rows,
                                         float tape_threshold) {
  const std::size_t h = img.height();
  const std::size_t first = h > rows ? h - rows : 0;
  double sum = 0;
  std::size_t count = 0;
  for (std::size_t y = first; y < h; ++y) {
    const auto center = row_lane_center(img, y, tape_threshold);
    if (center) {
      sum += *center;
      ++count;
    }
  }
  if (count == 0) return std::nullopt;
  const double mid = (static_cast<double>(img.width()) - 1) / 2.0;
  return ((sum / static_cast<double>(count)) - mid) / mid;
}

std::vector<Blob> find_blobs(const camera::Image& img, float threshold,
                             std::size_t min_pixels) {
  const std::size_t w = img.width(), h = img.height();
  std::vector<char> visited(w * h, 0);
  std::vector<Blob> blobs;
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      const std::size_t idx = y * w + x;
      if (visited[idx] || img.at(x, y) < threshold) continue;
      // BFS flood fill.
      Blob blob;
      blob.min_x = blob.max_x = x;
      blob.min_y = blob.max_y = y;
      double intensity_sum = 0;
      std::deque<std::pair<std::size_t, std::size_t>> frontier{{x, y}};
      visited[idx] = 1;
      while (!frontier.empty()) {
        const auto [cx, cy] = frontier.front();
        frontier.pop_front();
        ++blob.pixels;
        intensity_sum += img.at(cx, cy);
        blob.min_x = std::min(blob.min_x, cx);
        blob.max_x = std::max(blob.max_x, cx);
        blob.min_y = std::min(blob.min_y, cy);
        blob.max_y = std::max(blob.max_y, cy);
        const std::ptrdiff_t moves[4][2] = {{1, 0}, {-1, 0}, {0, 1}, {0, -1}};
        for (const auto& m : moves) {
          const std::ptrdiff_t nx = static_cast<std::ptrdiff_t>(cx) + m[0];
          const std::ptrdiff_t ny = static_cast<std::ptrdiff_t>(cy) + m[1];
          if (nx < 0 || ny < 0 || nx >= static_cast<std::ptrdiff_t>(w) ||
              ny >= static_cast<std::ptrdiff_t>(h)) {
            continue;
          }
          const std::size_t nidx =
              static_cast<std::size_t>(ny) * w + static_cast<std::size_t>(nx);
          if (visited[nidx] ||
              img.at(static_cast<std::size_t>(nx),
                     static_cast<std::size_t>(ny)) < threshold) {
            continue;
          }
          visited[nidx] = 1;
          frontier.emplace_back(static_cast<std::size_t>(nx),
                                static_cast<std::size_t>(ny));
        }
      }
      if (blob.pixels >= min_pixels) {
        blob.mean_intensity = intensity_sum / static_cast<double>(blob.pixels);
        blobs.push_back(blob);
      }
    }
  }
  return blobs;
}

std::optional<Signal> classify_signal(const camera::Image& img,
                                      float stop_intensity,
                                      float go_intensity, float tolerance) {
  // Look for a compact blob whose mean intensity matches one of the signal
  // codes. Tape lines also exceed the go threshold but span most of the
  // frame; a ground patch seen at a grazing angle is perspective-compressed
  // into a short wide bar, so discriminate on extent relative to the image
  // rather than on aspect ratio.
  const float search_threshold = go_intensity - tolerance;
  for (const Blob& blob : find_blobs(img, search_threshold, 5)) {
    const double bw = static_cast<double>(blob.max_x - blob.min_x) + 1;
    const double bh = static_cast<double>(blob.max_y - blob.min_y) + 1;
    if (bw > 0.45 * static_cast<double>(img.width())) continue;   // tape
    if (bh > 0.45 * static_cast<double>(img.height())) continue;  // tape
    if (std::abs(blob.mean_intensity - stop_intensity) <= tolerance) {
      return Signal::Stop;
    }
    if (std::abs(blob.mean_intensity - go_intensity) <= tolerance) {
      return Signal::Go;
    }
  }
  return std::nullopt;
}

}  // namespace autolearn::cv
