// Classical computer-vision primitives for the paper's extension
// exercises (§3.3 "Training Additional Models"): "various computer vision
// classification algorithms (example: camera identifies color of object
// placed in front of it; red means stop, green means go); and edge
// detection/line following (camera used to identify the edge of the track
// or a center line and keep the car following that)".
//
// Operates on the camera module's grayscale frames: Sobel gradients, edge
// maps, per-row lane-centre estimation, and bright-blob detection.
#pragma once

#include <optional>
#include <vector>

#include "camera/image.hpp"

namespace autolearn::cv {

/// Sobel gradient magnitude (same size as input; border pixels are 0).
camera::Image sobel_magnitude(const camera::Image& img);

/// Binary edge map: gradient magnitude thresholded at `threshold`.
camera::Image edge_map(const camera::Image& img, float threshold = 0.5f);

/// Estimated lane centre for one image row: the midpoint between the
/// leftmost and rightmost bright (tape) pixels, as a column index.
/// Requires the two extremes to be at least `min_gap_frac` of the image
/// width apart — a single visible line (the other out of frame) does not
/// define a centre. nullopt when the row has no such pair.
std::optional<double> row_lane_center(const camera::Image& img,
                                      std::size_t row,
                                      float tape_threshold = 0.55f,
                                      double min_gap_frac = 0.22);

/// Lane-centre offset for steering: averages row_lane_center over the
/// lower `rows` rows and returns the offset from the image centre in
/// [-1, 1] (negative = lane centre left of image centre). nullopt when no
/// row yields an estimate (e.g. off track).
std::optional<double> lane_center_offset(const camera::Image& img,
                                         std::size_t rows = 12,
                                         float tape_threshold = 0.55f);

/// A connected bright region (4-connectivity) above a threshold.
struct Blob {
  std::size_t min_x = 0, max_x = 0, min_y = 0, max_y = 0;
  std::size_t pixels = 0;
  double mean_intensity = 0.0;
  double center_x() const { return (min_x + max_x) / 2.0; }
  double center_y() const { return (min_y + max_y) / 2.0; }
};

/// Finds blobs of at least min_pixels whose intensity exceeds threshold.
std::vector<Blob> find_blobs(const camera::Image& img, float threshold,
                             std::size_t min_pixels = 4);

/// Stop/go signal classification for the obstacle exercise: the simulated
/// signal is rendered as a solid patch whose intensity encodes its colour
/// (stop patches are brighter than the tape, go patches sit between the
/// track surface and the tape). Returns nullopt when no signal-sized blob
/// is present.
enum class Signal { Stop, Go };
std::optional<Signal> classify_signal(const camera::Image& img,
                                      float stop_intensity = 0.98f,
                                      float go_intensity = 0.75f,
                                      float tolerance = 0.08f);

}  // namespace autolearn::cv
