#include "cv/pilots.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace autolearn::cv {

LineFollowPilot::LineFollowPilot(LineFollowConfig config) : config_(config) {}

void LineFollowPilot::reset() {
  last_steer_ = 0.0;
  last_offset_ = 0.0;
  have_last_offset_ = false;
}

vehicle::DriveCommand LineFollowPilot::act(const camera::Image& frame) {
  const auto offset = lane_center_offset(frame, config_.rows);
  double steer;
  if (offset) {
    // Lane centre right of image centre (positive offset) -> the car sits
    // left of the lane -> steer right (negative command). The derivative
    // term damps the weave a pure P controller develops at speed.
    const double d = have_last_offset_ ? *offset - last_offset_ : 0.0;
    steer = -config_.steering_gain * *offset - config_.damping_gain * d;
    last_offset_ = *offset;
    have_last_offset_ = true;
    last_steer_ = steer;
  } else {
    // Line lost: keep searching in the direction we last steered.
    steer = last_steer_ >= 0 ? config_.lost_line_steer
                             : -config_.lost_line_steer;
    have_last_offset_ = false;
  }
  return vehicle::DriveCommand{steer, config_.throttle}.clamped();
}

std::size_t GpsTrace::nearest(const track::Vec2& p) const {
  if (points.empty()) throw std::logic_error("gps trace: empty");
  std::size_t best = 0;
  double best_d2 = std::numeric_limits<double>::max();
  for (std::size_t i = 0; i < points.size(); ++i) {
    const double d2 = (points[i] - p).norm2();
    if (d2 < best_d2) {
      best_d2 = d2;
      best = i;
    }
  }
  return best;
}

WaypointPilot::WaypointPilot(GpsTrace trace, WaypointConfig config)
    : trace_(std::move(trace)), config_(config) {
  if (trace_.points.size() < 3) {
    throw std::invalid_argument("waypoint pilot: trace too short");
  }
}

vehicle::DriveCommand WaypointPilot::decide(const track::Vec2& position,
                                            double heading) const {
  const std::size_t idx = trace_.nearest(position);
  const std::size_t target_idx =
      (idx + static_cast<std::size_t>(config_.lookahead_points)) %
      trace_.points.size();
  const track::Vec2 to_target = trace_.points[target_idx] - position;
  const double bearing = std::atan2(to_target.y, to_target.x);
  const double alpha = track::angle_diff(bearing, heading);
  const double ld = std::max(0.15, to_target.norm());
  const double delta =
      std::atan2(2.0 * config_.wheelbase * std::sin(alpha), ld);
  const double steer =
      config_.steering_gain * delta / config_.max_wheel_angle;
  return vehicle::DriveCommand{steer, config_.throttle}.clamped();
}

SignalAwarePilot::SignalAwarePilot(eval::Pilot& inner,
                                   SignalAwareConfig config)
    : inner_(inner), config_(config) {}

void SignalAwarePilot::reset() {
  inner_.reset();
  hold_ = 0;
  stopped_last_step_ = false;
}

vehicle::DriveCommand SignalAwarePilot::act(const camera::Image& frame) {
  const vehicle::DriveCommand inner_cmd = inner_.act(frame);
  const auto signal =
      classify_signal(frame, config_.stop_intensity, config_.go_intensity);
  if (signal == Signal::Stop) {
    hold_ = config_.hold_steps;
  } else if (hold_ > 0) {
    --hold_;
  }
  const bool stopping = hold_ > 0;
  if (stopping && !stopped_last_step_) ++stops_;
  stopped_last_step_ = stopping;
  if (stopping) {
    return vehicle::DriveCommand{inner_cmd.steering, -1.0};  // brake
  }
  return inner_cmd;
}

}  // namespace autolearn::cv
