// Extension-exercise pilots (§3.3 "Training Additional Models"):
//
//   LineFollowPilot   "edge detection/line following (camera used to
//                      identify the edge of the track or a center line
//                      and keep the car following that)" — a classical
//                      P-controller on the lane-centre offset, no ML.
//   WaypointPilot     "path following (record a path with GPS and have
//                      the car follow that path)" — pure pursuit on a
//                      recorded waypoint list (the GPS trace), using the
//                      car's position fix instead of the camera.
//   SignalAwarePilot  the stop/go exercise: wraps another pilot and
//                      brakes while a Stop signal is visible.
#pragma once

#include <memory>
#include <vector>

#include "cv/features.hpp"
#include "eval/pilot.hpp"
#include "track/geometry.hpp"

namespace autolearn::cv {

struct LineFollowConfig {
  double steering_gain = 1.4;    // P gain on the normalized lane offset
  double damping_gain = 0.35;    // D gain on the offset change per step
  double throttle = 0.38;        // constant cruise throttle
  double lost_line_steer = 0.45; // search steer when no line is visible
  std::size_t rows = 14;         // image rows used for the estimate
};

class LineFollowPilot : public eval::Pilot {
 public:
  explicit LineFollowPilot(LineFollowConfig config = {});

  vehicle::DriveCommand act(const camera::Image& frame) override;
  void reset() override;
  std::string name() const override { return "line-follow"; }

 private:
  LineFollowConfig config_;
  double last_steer_ = 0.0;
  double last_offset_ = 0.0;
  bool have_last_offset_ = false;
};

/// A recorded GPS trace: positions sampled while driving (e.g. by the
/// expert), later followed by the WaypointPilot.
struct GpsTrace {
  std::vector<track::Vec2> points;

  /// Index of the trace point nearest to p.
  std::size_t nearest(const track::Vec2& p) const;
};

struct WaypointConfig {
  double lookahead_points = 10;  // how far ahead along the trace to aim
  double steering_gain = 1.2;
  double throttle = 0.45;
  double wheelbase = 0.17;
  double max_wheel_angle = 0.45;
};

/// Follows a GPS trace from position fixes. Unlike the camera pilots it
/// needs the car's position each step; feed it through set_position_fix
/// before act() (the evaluator-independent usage is direct: decide(pos,
/// heading)).
class WaypointPilot {
 public:
  WaypointPilot(GpsTrace trace, WaypointConfig config = {});

  vehicle::DriveCommand decide(const track::Vec2& position,
                               double heading) const;
  const GpsTrace& trace() const { return trace_; }

 private:
  GpsTrace trace_;
  WaypointConfig config_;
};

struct SignalAwareConfig {
  float stop_intensity = 0.98f;
  float go_intensity = 0.75f;
  /// Steps to keep braking after the stop signal disappears (hysteresis).
  std::size_t hold_steps = 4;
};

class SignalAwarePilot : public eval::Pilot {
 public:
  /// Does not own `inner`.
  SignalAwarePilot(eval::Pilot& inner, SignalAwareConfig config = {});

  vehicle::DriveCommand act(const camera::Image& frame) override;
  void reset() override;
  std::string name() const override { return inner_.name() + "+signals"; }

  std::size_t stops_observed() const { return stops_; }

 private:
  eval::Pilot& inner_;
  SignalAwareConfig config_;
  std::size_t hold_ = 0;
  std::size_t stops_ = 0;
  bool stopped_last_step_ = false;
};

}  // namespace autolearn::cv
