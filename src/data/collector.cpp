#include "data/collector.hpp"

#include <stdexcept>

#include "camera/camera.hpp"
#include "util/logging.hpp"

namespace autolearn::data {

const char* to_string(DataPath path) {
  switch (path) {
    case DataPath::Simulator: return "simulator";
    case DataPath::PhysicalCar: return "physical-car";
    case DataPath::Sample: return "sample";
  }
  return "?";
}

CollectStats collect_session(const track::Track& track, DataPath path,
                             const CollectOptions& options,
                             const std::filesystem::path& dir) {
  if (options.duration_s <= 0 || options.dt <= 0) {
    throw std::invalid_argument("collect: bad duration/dt");
  }
  // The sample path is the fixed dataset shipped with the module: always
  // the same seed, always the clean profiles.
  const bool physical = path == DataPath::PhysicalCar;
  const std::uint64_t seed = path == DataPath::Sample ? 0xA070CAFE : options.seed;
  util::Rng rng(seed);

  vehicle::CarConfig car_cfg;
  car_cfg.noise = physical ? vehicle::NoiseProfile::real_car()
                           : vehicle::NoiseProfile::sim();
  vehicle::Car car(car_cfg, rng.split());
  car.reset(track.position_at(0), track.heading_at(0));

  camera::CameraConfig cam_cfg;
  cam_cfg.width = options.img_w;
  cam_cfg.height = options.img_h;
  cam_cfg.noise = physical ? camera::CameraNoise::real_car()
                           : camera::CameraNoise::sim();
  camera::Camera cam(cam_cfg, rng.split());

  vehicle::ExpertPilot expert(track, options.expert, rng.split(), car_cfg);

  TubWriter writer(dir);
  CollectStats stats;
  const auto steps = static_cast<std::size_t>(options.duration_s / options.dt);
  double speed_sum = 0;
  for (std::size_t i = 0; i < steps; ++i) {
    const camera::Image frame = cam.render(track, car.state());
    const vehicle::DriveCommand cmd = expert.decide(car.state(), options.dt);
    writer.append(frame, static_cast<float>(cmd.steering),
                  static_cast<float>(cmd.throttle),
                  static_cast<float>(car.state().speed), expert.in_mistake());
    stats.mistake_records += expert.in_mistake();
    car.step(cmd, options.dt);
    stats.distance_m += car.state().speed * options.dt;
    speed_sum += car.state().speed;
    ++stats.records;
  }
  writer.close();
  stats.mean_speed = stats.records ? speed_sum / static_cast<double>(stats.records) : 0;
  AUTOLEARN_LOG(Info, "collector")
      << to_string(path) << " session on " << track.name() << ": "
      << stats.records << " records, " << stats.mistake_records
      << " flagged";
  return stats;
}

}  // namespace autolearn::data
