// Driving-session data collection — the first phase of the AutoLearn
// pipeline, with the paper's three collection paths (Fig. 2):
//
//   DataPath::Simulator   clean vehicle/camera profiles (the DonkeyCar
//                         Unity simulator analogue)
//   DataPath::PhysicalCar real-car noise profiles (driving the actual car
//                         around the tape track)
//   DataPath::Sample      a pre-packaged deterministic session (the sample
//                         datasets shipped with the module)
//
// The expert pilot stands in for the human driver; its mistake knobs
// generate the crashes/off-side frames that tubclean later removes.
#pragma once

#include <filesystem>

#include "data/tub.hpp"
#include "track/track.hpp"
#include "vehicle/expert.hpp"

namespace autolearn::data {

enum class DataPath { Simulator, PhysicalCar, Sample };

const char* to_string(DataPath path);

struct CollectOptions {
  double duration_s = 60.0;   // session length
  double dt = 0.05;           // control/record period (20 Hz)
  std::size_t img_w = 32;
  std::size_t img_h = 24;
  std::uint64_t seed = 1;     // ignored for DataPath::Sample (fixed seed)
  vehicle::ExpertConfig expert;  // steering noise / mistakes of the driver
};

struct CollectStats {
  std::size_t records = 0;
  std::size_t mistake_records = 0;
  double distance_m = 0.0;
  double mean_speed = 0.0;
};

/// Drives `track` for the configured duration and writes a tub at `dir`.
CollectStats collect_session(const track::Track& track, DataPath path,
                             const CollectOptions& options,
                             const std::filesystem::path& dir);

}  // namespace autolearn::data
