#include "data/dataset.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "util/rng.hpp"

namespace autolearn::data {

camera::Image flip_horizontal(const camera::Image& img) {
  camera::Image out(img.width(), img.height());
  for (std::size_t y = 0; y < img.height(); ++y) {
    for (std::size_t x = 0; x < img.width(); ++x) {
      out.at(x, y) = img.at(img.width() - 1 - x, y);
    }
  }
  return out;
}

std::vector<ml::Sample> build_samples(const std::vector<TubRecord>& records,
                                      const DatasetOptions& options) {
  if (options.seq_len == 0) {
    throw std::invalid_argument("dataset: seq_len must be >= 1");
  }
  const std::size_t context = std::max(options.seq_len - 1, options.history_len);
  std::vector<ml::Sample> out;
  if (records.size() <= context) return out;
  out.reserve(records.size() - context);
  for (std::size_t i = context; i < records.size(); ++i) {
    ml::Sample s;
    for (std::size_t f = options.seq_len; f-- > 0;) {
      s.frames.push_back(records[i - f].image);
    }
    for (std::size_t h = options.history_len; h-- > 0;) {
      const TubRecord& past = records[i - 1 - h];
      s.history.push_back(past.steering);
      s.history.push_back(past.throttle);
    }
    s.steering = std::clamp(records[i].steering, -1.0f, 1.0f);
    s.throttle = std::clamp(records[i].throttle, 0.0f, 1.0f);
    out.push_back(std::move(s));
  }
  if (options.augment_flip) {
    const std::size_t n = out.size();
    out.reserve(2 * n);
    for (std::size_t i = 0; i < n; ++i) {
      ml::Sample flipped;
      for (const camera::Image& f : out[i].frames) {
        flipped.frames.push_back(flip_horizontal(f));
      }
      flipped.history = out[i].history;
      for (std::size_t h = 0; h < flipped.history.size(); h += 2) {
        flipped.history[h] = -flipped.history[h];  // mirrored steering
      }
      flipped.steering = -out[i].steering;
      flipped.throttle = out[i].throttle;
      out.push_back(std::move(flipped));
    }
  }
  return out;
}

std::pair<std::vector<ml::Sample>, std::vector<ml::Sample>> split_train_val(
    std::vector<ml::Sample> samples, double val_fraction, std::uint64_t seed) {
  if (val_fraction < 0 || val_fraction >= 1) {
    throw std::invalid_argument("dataset: val_fraction in [0,1)");
  }
  util::Rng rng(seed);
  std::vector<std::size_t> order(samples.size());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  const std::size_t n_val =
      static_cast<std::size_t>(val_fraction * static_cast<double>(samples.size()));
  std::vector<ml::Sample> train, val;
  train.reserve(samples.size() - n_val);
  val.reserve(n_val);
  for (std::size_t i = 0; i < order.size(); ++i) {
    auto& dst = i < n_val ? val : train;
    dst.push_back(std::move(samples[order[i]]));
  }
  return {std::move(train), std::move(val)};
}

}  // namespace autolearn::data
