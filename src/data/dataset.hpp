// Converts tub records into training samples for the six model types:
// frame sequences for the RNN/3D models, command history for the memory
// model, train/validation splitting, and horizontal-flip augmentation.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "data/tub.hpp"
#include "ml/driving_model.hpp"

namespace autolearn::data {

struct DatasetOptions {
  std::size_t seq_len = 3;      // frames packed per sample (max model need)
  std::size_t history_len = 3;  // command pairs packed per sample
  bool augment_flip = false;    // add mirrored copies (negated steering)
};

/// Builds samples from consecutive records. Records must be in capture
/// order; the first max(seq_len, history_len) records only seed context.
/// Throttle labels are clamped into [0, 1].
std::vector<ml::Sample> build_samples(const std::vector<TubRecord>& records,
                                      const DatasetOptions& options = {});

/// Deterministic shuffled split; fraction is the validation share (0..1).
std::pair<std::vector<ml::Sample>, std::vector<ml::Sample>> split_train_val(
    std::vector<ml::Sample> samples, double val_fraction,
    std::uint64_t seed = 99);

/// Mirrors an image horizontally (augmentation helper, exposed for tests).
camera::Image flip_horizontal(const camera::Image& img);

}  // namespace autolearn::data
