#include "data/pgm.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace autolearn::data {

void write_pgm(const std::filesystem::path& path, const camera::Image& img) {
  if (img.empty()) throw std::invalid_argument("write_pgm: empty image");
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("write_pgm: cannot open " + path.string());
  os << "P5\n" << img.width() << " " << img.height() << "\n255\n";
  std::vector<unsigned char> row(img.width());
  for (std::size_t y = 0; y < img.height(); ++y) {
    for (std::size_t x = 0; x < img.width(); ++x) {
      const float v = std::clamp(img.at(x, y), 0.0f, 1.0f);
      row[x] = static_cast<unsigned char>(std::lround(v * 255.0f));
    }
    os.write(reinterpret_cast<const char*>(row.data()),
             static_cast<std::streamsize>(row.size()));
  }
  if (!os) throw std::runtime_error("write_pgm: write failed");
}

camera::Image read_pgm(const std::filesystem::path& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("read_pgm: cannot open " + path.string());
  std::string magic;
  is >> magic;
  if (magic != "P5") throw std::runtime_error("read_pgm: not a P5 PGM");
  std::size_t w = 0, h = 0;
  int maxval = 0;
  is >> w >> h >> maxval;
  if (!is || w == 0 || h == 0 || maxval != 255) {
    throw std::runtime_error("read_pgm: bad header");
  }
  is.get();  // single whitespace after header
  camera::Image img(w, h);
  std::vector<unsigned char> row(w);
  for (std::size_t y = 0; y < h; ++y) {
    is.read(reinterpret_cast<char*>(row.data()),
            static_cast<std::streamsize>(row.size()));
    if (!is) throw std::runtime_error("read_pgm: truncated data");
    for (std::size_t x = 0; x < w; ++x) {
      img.at(x, y) = static_cast<float>(row[x]) / 255.0f;
    }
  }
  return img;
}

}  // namespace autolearn::data
