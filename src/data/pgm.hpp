// PGM (P5) image IO.
//
// DonkeyCar stores JPEG frames inside each tub; AutoLearn stores binary
// 8-bit PGM, which keeps the on-disk layout (one image file per record,
// referenced from the catalog) without an image-codec dependency.
#pragma once

#include <filesystem>

#include "camera/image.hpp"

namespace autolearn::data {

/// Writes the image as binary PGM, quantizing [0,1] floats to 8 bits.
void write_pgm(const std::filesystem::path& path, const camera::Image& img);

/// Reads a binary PGM written by write_pgm (max value must be 255).
camera::Image read_pgm(const std::filesystem::path& path);

}  // namespace autolearn::data
