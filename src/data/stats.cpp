#include "data/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace autolearn::data {

SessionStats session_stats(const std::vector<TubRecord>& records,
                           std::size_t histogram_bins) {
  if (histogram_bins < 1) {
    throw std::invalid_argument("session_stats: need >= 1 bin");
  }
  SessionStats s;
  s.records = records.size();
  s.steering_histogram.assign(histogram_bins, 0);
  if (records.empty()) return s;

  double steer_sum = 0, steer_sq = 0, throttle_sum = 0, speed_sum = 0;
  for (const TubRecord& r : records) {
    s.flagged += r.mistake;
    steer_sum += r.steering;
    steer_sq += static_cast<double>(r.steering) * r.steering;
    throttle_sum += r.throttle;
    speed_sum += r.speed;
    s.speed_max = std::max(s.speed_max, static_cast<double>(r.speed));
    s.steering_saturation += std::abs(r.steering) > 0.95f;
    const double t = std::clamp((r.steering + 1.0f) / 2.0f, 0.0f, 1.0f);
    const std::size_t bin = std::min(
        histogram_bins - 1,
        static_cast<std::size_t>(t * static_cast<double>(histogram_bins)));
    ++s.steering_histogram[bin];
  }
  const double n = static_cast<double>(records.size());
  s.steering_mean = steer_sum / n;
  s.steering_stddev =
      std::sqrt(std::max(0.0, steer_sq / n - s.steering_mean * s.steering_mean));
  s.steering_saturation /= n;
  s.throttle_mean = throttle_sum / n;
  s.speed_mean = speed_sum / n;
  return s;
}

SessionVerdict judge_session(const SessionStats& stats,
                             std::size_t min_records,
                             double max_flagged_ratio, double max_saturation,
                             double min_mean_speed) {
  SessionVerdict v;
  if (stats.records < min_records) {
    v.reasons.push_back("session too short: " + std::to_string(stats.records) +
                        " records < " + std::to_string(min_records));
  }
  if (stats.flagged_ratio() > max_flagged_ratio) {
    v.reasons.push_back("too many flagged records: run tubclean first");
  }
  if (stats.steering_saturation > max_saturation) {
    v.reasons.push_back(
        "steering saturated too often: check calibration or driving");
  }
  if (stats.speed_mean < min_mean_speed) {
    v.reasons.push_back("car barely moved: check throttle setup");
  }
  v.usable = v.reasons.empty();
  return v;
}

}  // namespace autolearn::data
