// Session quality statistics — the numbers an instructor checks before
// letting a team train ("does the data represent a valid scenario?"):
// steering/throttle/speed distributions, a steering histogram, the
// flagged-record ratio, and a verdict heuristic.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "data/tub.hpp"

namespace autolearn::data {

struct SessionStats {
  std::size_t records = 0;
  std::size_t flagged = 0;          // ground-truth mistake tags
  double steering_mean = 0.0;
  double steering_stddev = 0.0;
  double steering_saturation = 0.0;  // fraction of |steering| > 0.95
  double throttle_mean = 0.0;
  double speed_mean = 0.0;
  double speed_max = 0.0;
  /// Steering histogram over [-1, 1] with `bins` equal buckets.
  std::vector<std::size_t> steering_histogram;

  double flagged_ratio() const {
    return records ? static_cast<double>(flagged) /
                         static_cast<double>(records)
                   : 0.0;
  }
};

/// Computes stats over tub metadata (no image loading).
SessionStats session_stats(const std::vector<TubRecord>& records,
                           std::size_t histogram_bins = 11);

/// Instructor heuristic: is this session usable for training as-is?
/// Reasons (if any) explain what to fix — too short, too many mistakes,
/// saturated steering, or the car barely moved.
struct SessionVerdict {
  bool usable = true;
  std::vector<std::string> reasons;
};

SessionVerdict judge_session(const SessionStats& stats,
                             std::size_t min_records = 500,
                             double max_flagged_ratio = 0.10,
                             double max_saturation = 0.15,
                             double min_mean_speed = 0.3);

}  // namespace autolearn::data
