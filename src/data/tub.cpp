#include "data/tub.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "data/pgm.hpp"
#include "util/json.hpp"

namespace autolearn::data {

namespace fs = std::filesystem;
using util::Json;

namespace {

std::string image_name(std::size_t index) {
  return std::to_string(index) + "_cam.pgm";
}

std::string read_file(const fs::path& p) {
  std::ifstream is(p);
  if (!is) throw std::runtime_error("tub: cannot read " + p.string());
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

void write_file(const fs::path& p, const std::string& content) {
  std::ofstream os(p);
  if (!os) throw std::runtime_error("tub: cannot write " + p.string());
  os << content;
}

}  // namespace

// --- TubWriter --------------------------------------------------------------

TubWriter::TubWriter(fs::path dir, std::size_t records_per_catalog)
    : dir_(std::move(dir)), records_per_catalog_(records_per_catalog) {
  if (records_per_catalog_ == 0) {
    throw std::invalid_argument("tub: records_per_catalog must be > 0");
  }
  fs::create_directories(dir_ / "images");
  catalog_names_.push_back("catalog_0.catalog");
  catalog_counts_.push_back(0);
}

TubWriter::~TubWriter() {
  try {
    close();
  } catch (...) {
    // Destructor must not throw; an explicit close() surfaces errors.
  }
}

void TubWriter::rotate_catalog() {
  write_file(dir_ / catalog_names_.back(), current_catalog_);
  current_catalog_.clear();
  catalog_names_.push_back("catalog_" + std::to_string(catalog_names_.size()) +
                           ".catalog");
  catalog_counts_.push_back(0);
}

std::size_t TubWriter::append(const camera::Image& image, float steering,
                              float throttle, float speed, bool mistake) {
  if (closed_) throw std::logic_error("tub: append after close");
  const std::size_t index = next_index_++;
  write_pgm(dir_ / "images" / image_name(index), image);

  Json rec = Json::object();
  rec.set("_index", Json(index));
  rec.set("cam/image_array", Json(image_name(index)));
  rec.set("user/angle", Json(static_cast<double>(steering)));
  rec.set("user/throttle", Json(static_cast<double>(throttle)));
  rec.set("user/mode", Json("user"));
  rec.set("car/speed", Json(static_cast<double>(speed)));
  rec.set("session/mistake", Json(mistake));
  current_catalog_ += rec.dump();
  current_catalog_ += "\n";
  ++catalog_counts_.back();
  if (catalog_counts_.back() >= records_per_catalog_) rotate_catalog();
  return index;
}

void TubWriter::close() {
  if (closed_) return;
  closed_ = true;
  write_file(dir_ / catalog_names_.back(), current_catalog_);

  Json catalogs = Json::array();
  Json counts = Json::array();
  for (std::size_t i = 0; i < catalog_names_.size(); ++i) {
    catalogs.push_back(Json(catalog_names_[i]));
    counts.push_back(Json(catalog_counts_[i]));
  }
  Json cat_manifest = Json::object();
  cat_manifest.set("catalogs", catalogs);
  cat_manifest.set("line_counts", std::move(counts));
  write_file(dir_ / "catalog_manifest.json", cat_manifest.dump(2));

  Json manifest = Json::object();
  manifest.set("format", Json("autolearn-tub-v1"));
  manifest.set("total_records", Json(next_index_));
  manifest.set("records_per_catalog", Json(records_per_catalog_));
  manifest.set("deleted_indexes", Json::array());
  write_file(dir_ / "manifest.json", manifest.dump(2));
}

// --- Tub ---------------------------------------------------------------------

Tub::Tub(fs::path dir) : dir_(std::move(dir)) { load_manifest(); }

void Tub::load_manifest() {
  const Json manifest = Json::parse(read_file(dir_ / "manifest.json"));
  if (manifest.at("format").as_string() != "autolearn-tub-v1") {
    throw std::runtime_error("tub: unknown format");
  }
  total_ = static_cast<std::size_t>(manifest.at("total_records").as_int());
  deleted_.clear();
  for (const Json& d : manifest.at("deleted_indexes").as_array()) {
    deleted_.insert(static_cast<std::size_t>(d.as_int()));
  }
  const Json cat = Json::parse(read_file(dir_ / "catalog_manifest.json"));
  catalog_names_.clear();
  for (const Json& name : cat.at("catalogs").as_array()) {
    catalog_names_.push_back(name.as_string());
  }
}

void Tub::save_manifest() const {
  const Json old = Json::parse(read_file(dir_ / "manifest.json"));
  Json manifest = Json::object();
  manifest.set("format", old.at("format"));
  manifest.set("total_records", old.at("total_records"));
  manifest.set("records_per_catalog", old.at("records_per_catalog"));
  Json deleted = Json::array();
  for (std::size_t i : deleted_) deleted.push_back(Json(i));
  manifest.set("deleted_indexes", std::move(deleted));
  write_file(dir_ / "manifest.json", manifest.dump(2));
}

std::vector<TubRecord> Tub::read_metadata() const {
  std::vector<TubRecord> out;
  out.reserve(total_);
  for (const std::string& name : catalog_names_) {
    std::ifstream is(dir_ / name);
    if (!is) throw std::runtime_error("tub: missing catalog " + name);
    std::string line;
    while (std::getline(is, line)) {
      if (line.empty()) continue;
      const Json rec = Json::parse(line);
      TubRecord r;
      r.index = static_cast<std::size_t>(rec.at("_index").as_int());
      r.steering = static_cast<float>(rec.at("user/angle").as_number());
      r.throttle = static_cast<float>(rec.at("user/throttle").as_number());
      r.speed = static_cast<float>(rec.at("car/speed").as_number());
      r.mistake = rec.at("session/mistake").as_bool();
      out.push_back(std::move(r));
    }
  }
  return out;
}

std::vector<TubRecord> Tub::read_all() const {
  std::vector<TubRecord> metas = read_metadata();
  std::vector<TubRecord> out;
  out.reserve(metas.size());
  for (TubRecord& r : metas) {
    if (deleted_.count(r.index)) continue;
    r.image = read_pgm(dir_ / "images" / image_name(r.index));
    out.push_back(std::move(r));
  }
  return out;
}

std::optional<TubRecord> Tub::read(std::size_t index) const {
  if (index >= total_ || deleted_.count(index)) return std::nullopt;
  for (const TubRecord& meta : read_metadata()) {
    if (meta.index == index) {
      TubRecord r = meta;
      r.image = read_pgm(dir_ / "images" / image_name(index));
      return r;
    }
  }
  return std::nullopt;
}

void Tub::mark_deleted(const std::vector<std::size_t>& indexes) {
  for (std::size_t i : indexes) {
    if (i >= total_) throw std::invalid_argument("tub: bad delete index");
    deleted_.insert(i);
  }
  save_manifest();
}

void Tub::restore_all() {
  deleted_.clear();
  save_manifest();
}

std::uint64_t Tub::size_bytes() const {
  std::uint64_t bytes = 0;
  for (const auto& entry : fs::recursive_directory_iterator(dir_)) {
    if (entry.is_regular_file()) {
      bytes += static_cast<std::uint64_t>(entry.file_size());
    }
  }
  return bytes;
}

}  // namespace autolearn::data
