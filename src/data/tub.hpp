// The tub on-disk format (SC-W'23 §3.3 "Sample datasets"):
//
//   <tub>/
//     manifest.json            catalog list + deleted record indexes
//     catalog_0.catalog        JSON-lines records (rotated every 1000)
//     catalog_1.catalog ...
//     catalog_manifest.json    per-catalog bookkeeping (line counts)
//     images/
//       <index>_cam.pgm        one frame per record
//
// Each catalog line stores the steering and throttle recorded while
// driving plus the image reference, exactly mirroring DonkeyCar's
// .catalog records ("Catalog files consist of steering and throttle
// values ... Each of these corresponds to an image in the images
// directory based on their id number"). Records marked for deletion are
// listed in manifest.json and skipped by readers — that is what the
// tubclean step edits.
#pragma once

#include <filesystem>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "camera/image.hpp"

namespace autolearn::data {

struct TubRecord {
  std::size_t index = 0;
  camera::Image image;
  float steering = 0.0f;   // [-1, 1]
  float throttle = 0.0f;   // [0, 1]
  float speed = 0.0f;      // m/s telemetry at capture time
  bool mistake = false;    // ground-truth tag: expert was in a mistake
                           // episode when this frame was captured
};

/// Append-only tub writer. Creates the directory structure on
/// construction; close() finalizes the manifests (also run by the
/// destructor).
class TubWriter {
 public:
  /// records_per_catalog mirrors DonkeyCar's catalog rotation.
  explicit TubWriter(std::filesystem::path dir,
                     std::size_t records_per_catalog = 1000);
  ~TubWriter();

  TubWriter(const TubWriter&) = delete;
  TubWriter& operator=(const TubWriter&) = delete;

  /// Appends one record; returns its index.
  std::size_t append(const camera::Image& image, float steering,
                     float throttle, float speed = 0.0f,
                     bool mistake = false);

  std::size_t count() const { return next_index_; }
  const std::filesystem::path& dir() const { return dir_; }

  /// Flushes catalog data and writes manifest.json / catalog_manifest.json.
  void close();

 private:
  void rotate_catalog();

  std::filesystem::path dir_;
  std::size_t records_per_catalog_;
  std::size_t next_index_ = 0;
  std::vector<std::string> catalog_names_;
  std::vector<std::size_t> catalog_counts_;
  std::string current_catalog_;  // buffered JSON lines
  bool closed_ = false;
};

/// Read access to a finalized tub.
class Tub {
 public:
  explicit Tub(std::filesystem::path dir);

  const std::filesystem::path& dir() const { return dir_; }

  /// Total records written (including deleted).
  std::size_t total_records() const { return total_; }
  /// Records not marked deleted.
  std::size_t active_records() const { return total_ - deleted_.size(); }
  const std::set<std::size_t>& deleted_indexes() const { return deleted_; }

  /// Loads every active record (with images).
  std::vector<TubRecord> read_all() const;
  /// Loads one record by index; nullopt if deleted or out of range.
  std::optional<TubRecord> read(std::size_t index) const;
  /// Metadata only (no image loading) for all records including deleted —
  /// what the tubclean review pass iterates over.
  std::vector<TubRecord> read_metadata() const;

  /// Marks records deleted (persisted to manifest.json immediately).
  void mark_deleted(const std::vector<std::size_t>& indexes);
  /// Clears deletion marks.
  void restore_all();

  /// Approximate on-disk bytes (images dominate) — used to size simulated
  /// rsync transfers to the cloud.
  std::uint64_t size_bytes() const;

 private:
  void load_manifest();
  void save_manifest() const;

  std::filesystem::path dir_;
  std::size_t total_ = 0;
  std::vector<std::string> catalog_names_;
  std::set<std::size_t> deleted_;
};

}  // namespace autolearn::data
