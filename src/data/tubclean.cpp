#include "data/tubclean.hpp"

#include <algorithm>
#include <cmath>
#include <set>

namespace autolearn::data {

std::vector<std::size_t> expand_segments(
    const std::vector<std::size_t>& flagged, std::size_t margin,
    std::size_t total, std::size_t* segment_count) {
  std::set<std::size_t> out;
  for (std::size_t idx : flagged) {
    const std::size_t lo = idx >= margin ? idx - margin : 0;
    const std::size_t hi = std::min(total, idx + margin + 1);
    for (std::size_t i = lo; i < hi; ++i) out.insert(i);
  }
  if (segment_count) {
    std::size_t segments = 0;
    std::size_t prev = SIZE_MAX;
    for (std::size_t i : out) {
      if (prev == SIZE_MAX || i != prev + 1) ++segments;
      prev = i;
    }
    *segment_count = segments;
  }
  return {out.begin(), out.end()};
}

CleanStats review_clean(Tub& tub, std::size_t margin) {
  const auto records = tub.read_metadata();
  std::vector<std::size_t> flagged;
  for (const TubRecord& r : records) {
    if (r.mistake) flagged.push_back(r.index);
  }
  CleanStats stats;
  stats.reviewed = records.size();
  const auto to_delete =
      expand_segments(flagged, margin, tub.total_records(), &stats.segments);
  tub.mark_deleted(to_delete);
  stats.deleted = to_delete.size();
  return stats;
}

CleanStats heuristic_clean(Tub& tub, const HeuristicOptions& options) {
  const auto records = tub.read_metadata();
  std::vector<std::size_t> flagged;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const TubRecord& r = records[i];
    bool bad = std::abs(r.steering) >= options.steering_saturation;
    if (i > 0) {
      const double jerk = std::abs(static_cast<double>(r.steering) -
                                   records[i - 1].steering);
      bad = bad || jerk >= options.jerk_threshold;
    }
    if (bad) flagged.push_back(r.index);
  }
  CleanStats stats;
  stats.reviewed = records.size();
  const auto to_delete = expand_segments(flagged, options.margin,
                                         tub.total_records(), &stats.segments);
  tub.mark_deleted(to_delete);
  stats.deleted = to_delete.size();
  return stats;
}

}  // namespace autolearn::data
