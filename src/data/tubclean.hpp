// tubclean — the data-cleaning step of §3.3 ("Learners will likely
// generate some bad data consisting of mistakes (i.e., crashes or images
// that are off-side) while driving; this data need to be deleted ...
// users watch the video, select the parts that need to be deleted").
//
// Two modes mirror the human workflow:
//   * review_clean: the "student watching the video" — uses the session's
//     ground-truth mistake tags, expanded by a margin on both sides the
//     way a human selects a whole bad segment.
//   * heuristic_clean: an assisted pass that flags suspicious records from
//     the recorded signals alone (steering saturation and jerk), for tubs
//     without tags.
#pragma once

#include <cstddef>
#include <vector>

#include "data/tub.hpp"

namespace autolearn::data {

struct CleanStats {
  std::size_t reviewed = 0;
  std::size_t deleted = 0;
  std::size_t segments = 0;
};

struct HeuristicOptions {
  double steering_saturation = 0.95;  // |steering| above this is suspicious
  double jerk_threshold = 0.8;        // |d steering| between records
  std::size_t margin = 3;             // records expanded around each hit
};

/// Marks all tagged mistake records (plus `margin` records on each side)
/// deleted. Returns what was removed.
CleanStats review_clean(Tub& tub, std::size_t margin = 3);

/// Flags records by signal heuristics and marks them deleted.
CleanStats heuristic_clean(Tub& tub, const HeuristicOptions& options = {});

/// Shared helper: expands a set of flagged indexes into contiguous
/// segments with margin, clipped to [0, total).
std::vector<std::size_t> expand_segments(
    const std::vector<std::size_t>& flagged, std::size_t margin,
    std::size_t total, std::size_t* segment_count = nullptr);

}  // namespace autolearn::data
