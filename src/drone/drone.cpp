#include "drone/drone.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace autolearn::drone {

Drone::Drone(DroneConfig config, util::Rng rng)
    : config_(config), rng_(rng) {
  if (config_.max_speed <= 0 || config_.max_accel <= 0 ||
      config_.velocity_tau <= 0 || config_.altitude <= 0) {
    throw std::invalid_argument("drone: non-positive parameter");
  }
  state_.altitude = config_.altitude;
}

void Drone::reset(const track::Vec2& pos) {
  state_.pos = pos;
  state_.vel = {0, 0};
  state_.altitude = config_.altitude;
}

void Drone::step(const track::Vec2& commanded_velocity, double dt) {
  if (dt <= 0) throw std::invalid_argument("drone: dt must be > 0");
  // Clamp the command to the speed envelope.
  track::Vec2 cmd = commanded_velocity;
  const double cmd_speed = cmd.norm();
  if (cmd_speed > config_.max_speed) {
    cmd = cmd * (config_.max_speed / cmd_speed);
  }
  // First-order response with an acceleration limit.
  track::Vec2 dv = (cmd - state_.vel) * (dt / config_.velocity_tau);
  const double dv_max = config_.max_accel * dt;
  const double dv_norm = dv.norm();
  if (dv_norm > dv_max) dv = dv * (dv_max / dv_norm);
  state_.vel += dv;
  if (config_.wind_noise > 0) {
    state_.vel += track::Vec2{rng_.normal(0, config_.wind_noise),
                              rng_.normal(0, config_.wind_noise)};
  }
  state_.pos += state_.vel * dt;
}

}  // namespace autolearn::drone
