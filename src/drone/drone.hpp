// Future-work extension (§6): "AutoLearn can be extended in other
// technologies within these areas including the integration of other
// intelligent autonomous vehicles in general such as unmanned aerial
// vehicles or drones, in addition to other applications such as precision
// agriculture".
//
// A planar kinematic quadcopter at fixed survey altitude: velocity
// commands with a first-order response and an acceleration limit — the
// same modeling style as the car, so the existing evaluation ideas carry
// over.
#pragma once

#include "track/geometry.hpp"
#include "util/rng.hpp"

namespace autolearn::drone {

struct DroneConfig {
  double max_speed = 6.0;       // m/s horizontal
  double max_accel = 3.0;       // m/s^2
  double velocity_tau = 0.6;    // response time constant, s
  double altitude = 20.0;       // survey altitude, m (fixed)
  double wind_noise = 0.0;      // per-step gaussian velocity disturbance
};

struct DroneState {
  track::Vec2 pos;
  track::Vec2 vel;
  double altitude = 0.0;
};

class Drone {
 public:
  Drone(DroneConfig config, util::Rng rng);

  const DroneConfig& config() const { return config_; }
  const DroneState& state() const { return state_; }

  void reset(const track::Vec2& pos);

  /// Advances dt seconds toward the commanded ground velocity (clamped to
  /// max_speed; acceleration limited).
  void step(const track::Vec2& commanded_velocity, double dt);

 private:
  DroneConfig config_;
  DroneState state_;
  util::Rng rng_;
};

}  // namespace autolearn::drone
