#include "drone/survey.hpp"

#include <cmath>
#include <stdexcept>

namespace autolearn::drone {

std::vector<track::Vec2> lawnmower_waypoints(const Field& field,
                                             double swath) {
  if (swath <= 0 || field.width <= 0 || field.height <= 0) {
    throw std::invalid_argument("survey: bad field/swath");
  }
  std::vector<track::Vec2> out;
  // Rows centred swath/2 from the edges, swath apart, covering the height.
  const auto rows = static_cast<std::size_t>(
      std::ceil(field.height / swath));
  for (std::size_t r = 0; r < rows; ++r) {
    const double y =
        field.origin.y +
        std::min(field.height - swath / 2, swath / 2 + static_cast<double>(r) * swath);
    const double x0 = field.origin.x;
    const double x1 = field.origin.x + field.width;
    if (r % 2 == 0) {
      out.push_back({x0, y});
      out.push_back({x1, y});
    } else {
      out.push_back({x1, y});
      out.push_back({x0, y});
    }
  }
  return out;
}

MissionResult fly_survey(Drone& drone, const Field& field,
                         const MissionConfig& config) {
  if (config.cruise_speed <= 0 || config.dt <= 0 || config.cell_size <= 0 ||
      config.waypoint_radius <= 0) {
    throw std::invalid_argument("survey: bad mission config");
  }
  const std::vector<track::Vec2> waypoints =
      lawnmower_waypoints(field, config.swath);

  const auto nx = static_cast<std::size_t>(
      std::ceil(field.width / config.cell_size));
  const auto ny = static_cast<std::size_t>(
      std::ceil(field.height / config.cell_size));
  std::vector<char> covered(nx * ny, 0);

  MissionResult result;
  result.waypoints_total = waypoints.size();
  drone.reset(waypoints.front());

  std::size_t target = 0;
  const auto max_steps =
      static_cast<std::size_t>(config.timeout_s / config.dt);
  track::Vec2 prev_pos = drone.state().pos;
  for (std::size_t i = 0; i < max_steps && target < waypoints.size(); ++i) {
    const track::Vec2 to_target = waypoints[target] - drone.state().pos;
    if (to_target.norm() <= config.waypoint_radius) {
      ++target;
      ++result.waypoints_hit;
      continue;
    }
    drone.step(to_target.normalized() * config.cruise_speed, config.dt);
    result.duration_s += config.dt;
    result.distance_m += (drone.state().pos - prev_pos).norm();
    prev_pos = drone.state().pos;

    // Mark the swath under the drone as imaged.
    const track::Vec2 rel = drone.state().pos - field.origin;
    const double half = config.swath / 2;
    for (double dx = -half; dx <= half; dx += config.cell_size / 2) {
      for (double dy = -half; dy <= half; dy += config.cell_size / 2) {
        if (dx * dx + dy * dy > half * half) continue;  // circular footprint
        const double cx = rel.x + dx, cy = rel.y + dy;
        if (cx < 0 || cy < 0 || cx >= field.width || cy >= field.height) {
          continue;
        }
        const auto ix = static_cast<std::size_t>(cx / config.cell_size);
        const auto iy = static_cast<std::size_t>(cy / config.cell_size);
        covered[iy * nx + ix] = 1;
      }
    }
  }
  result.completed = target >= waypoints.size();
  std::size_t hit = 0;
  for (char c : covered) hit += c;
  result.coverage = static_cast<double>(hit) / static_cast<double>(nx * ny);
  return result;
}

}  // namespace autolearn::drone
