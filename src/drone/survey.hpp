// Precision-agriculture survey missions (§6 future work).
//
// A rectangular field is covered with a boustrophedon ("lawnmower")
// waypoint pattern sized by the camera swath; the executor flies the
// drone through the waypoints and a coverage grid records which field
// cells were imaged. The result mirrors the car pipeline's evaluation:
// coverage fraction, mission time, distance.
#pragma once

#include <cstddef>
#include <vector>

#include "drone/drone.hpp"

namespace autolearn::drone {

struct Field {
  track::Vec2 origin;  // south-west corner
  double width = 100.0;   // east-west extent, m
  double height = 60.0;   // north-south extent, m
};

/// Boustrophedon waypoints covering the field with the given swath width.
/// Rows run east-west, `swath` apart, alternating direction.
std::vector<track::Vec2> lawnmower_waypoints(const Field& field,
                                             double swath);

struct MissionConfig {
  double swath = 8.0;          // imaged width under the drone, m
  double cruise_speed = 5.0;   // m/s
  double waypoint_radius = 2.0;  // arrival threshold, m
  double dt = 0.1;
  double timeout_s = 600.0;
  double cell_size = 2.0;      // coverage-grid resolution, m
};

struct MissionResult {
  double coverage = 0.0;       // fraction of field cells imaged
  double duration_s = 0.0;
  double distance_m = 0.0;
  std::size_t waypoints_hit = 0;
  std::size_t waypoints_total = 0;
  bool completed = false;      // all waypoints reached before timeout
};

/// Flies the mission and scores coverage.
MissionResult fly_survey(Drone& drone, const Field& field,
                         const MissionConfig& config);

}  // namespace autolearn::drone
