#include "edge/container.hpp"

#include <sstream>
#include <stdexcept>

#include "util/logging.hpp"

namespace autolearn::edge {

const char* to_string(ContainerState s) {
  switch (s) {
    case ContainerState::Pending: return "pending";
    case ContainerState::Pulling: return "pulling";
    case ContainerState::Starting: return "starting";
    case ContainerState::Running: return "running";
    case ContainerState::Exited: return "exited";
    case ContainerState::Failed: return "failed";
  }
  return "?";
}

ContainerSpec ContainerSpec::autolearn_car() {
  ContainerSpec spec;
  spec.image = "autolearn/donkeycar-jupyter:latest";
  spec.image_bytes = 800ull << 20;
  spec.env = {{"DONKEY_CAR_DIR", "/car"}, {"JUPYTER_PORT", "8888"}};
  return spec;
}

ContainerService::ContainerService(EdgeRegistry& registry,
                                   util::EventQueue& queue, Config config)
    : registry_(registry), queue_(queue), config_(config) {
  if (config_.downlink_bps <= 0 || config_.start_delay_s < 0 ||
      config_.restart_delay_s < 0 || config_.max_restarts < 0) {
    throw std::invalid_argument("container: bad config");
  }
  config_.pull_retry.validate();
}

void ContainerService::use_network(net::Network& network,
                                   std::string registry_host, util::Rng rng) {
  if (!network.has_host(registry_host)) {
    throw std::invalid_argument("container: unknown registry host " +
                                registry_host);
  }
  network_ = &network;
  registry_host_ = std::move(registry_host);
  pull_transfers_ = std::make_unique<net::TransferManager>(
      network, queue_, rng, config_.pull_retry);
  pull_transfers_->instrument(tracer_, metrics_);
}

void ContainerService::instrument(obs::Tracer* tracer,
                                  obs::MetricsRegistry* metrics) {
  tracer_ = tracer;
  metrics_ = metrics;
  if (pull_transfers_) pull_transfers_->instrument(tracer, metrics);
}

bool ContainerService::is_live(ContainerState s) const {
  return s == ContainerState::Pulling || s == ContainerState::Starting ||
         s == ContainerState::Running;
}

std::uint64_t ContainerService::launch(
    const std::string& device, const std::string& project, ContainerSpec spec,
    std::function<void(const Container&)> on_running,
    std::function<void(const Container&)> on_failed) {
  const Device& dev = registry_.device(device);
  if (dev.state != DeviceState::Ready) {
    throw std::logic_error("container: device " + device + " is " +
                           to_string(dev.state) + ", not ready");
  }
  if (!registry_.is_allowed(device, project)) {
    throw std::logic_error("container: project " + project +
                           " is not whitelisted on " + device);
  }
  const std::uint64_t id = next_id_++;
  Container c;
  c.id = id;
  c.device = device;
  c.project = project;
  c.spec = spec;
  c.launched_at = queue_.now();
  containers_[id] = std::move(c);
  hooks_[id] = Hooks{std::move(on_running), std::move(on_failed)};
  epochs_[id] = 0;
  if (metrics_) metrics_->counter("edge.container.launched").inc();
  begin_pull(id);
  return id;
}

void ContainerService::begin_pull(std::uint64_t id) {
  Container& c = containers_.at(id);
  c.state = ContainerState::Pulling;
  const std::uint64_t epoch = ++epochs_.at(id);
  pull_began_[id] = queue_.now();

  const bool cached = config_.reuse_image_cache &&
                      image_cache_[c.device].count(c.spec.image) > 0;
  if (metrics_) {
    metrics_->counter(cached ? "edge.container.pulls_cached"
                             : "edge.container.pulls")
        .inc();
  }
  if (cached) {
    queue_.schedule_in(0.5, [this, id, epoch] { finish_pull(id, epoch); });
    return;
  }
  if (network_) {
    // The pull is a real transfer: degradation slows it, drops and
    // partitions burn pull_retry attempts, and exhaustion fails the launch.
    try {
      pull_transfers_->start(
          registry_host_, c.device, c.spec.image_bytes,
          [this, id, epoch](const net::TransferResult& r) {
            const auto it = containers_.find(id);
            if (it == containers_.end() || epochs_.at(id) != epoch ||
                it->second.state != ContainerState::Pulling) {
              return;
            }
            if (r.status == net::TransferStatus::Done) {
              finish_pull(id, epoch);
            } else {
              fail_container(id, "image pull failed (retries exhausted)");
            }
          });
    } catch (const net::UnreachableError&) {
      fail_container(id, "image registry unreachable from " + c.device);
    }
    return;
  }
  const double pull_s =
      static_cast<double>(c.spec.image_bytes) / config_.downlink_bps;
  queue_.schedule_in(pull_s, [this, id, epoch] { finish_pull(id, epoch); });
}

void ContainerService::finish_pull(std::uint64_t id, std::uint64_t epoch) {
  const auto it = containers_.find(id);
  if (it == containers_.end() || epochs_.at(id) != epoch ||
      it->second.state != ContainerState::Pulling) {
    return;
  }
  Container& c = it->second;
  if (registry_.device(c.device).state != DeviceState::Ready) {
    fail_container(id, c.device + " went away during pull");
    return;
  }
  if (tracer_) {
    util::Json args = util::Json::object();
    args.set("id", util::Json(id));
    args.set("device", util::Json(c.device));
    args.set("image", util::Json(c.spec.image));
    tracer_->complete("edge.container.pull", "edge", pull_began_.at(id),
                      queue_.now(), std::move(args));
  }
  if (metrics_) {
    metrics_->histogram("edge.container.pull_s")
        .observe(queue_.now() - pull_began_.at(id));
  }
  c.state = ContainerState::Starting;
  image_cache_[c.device].insert(c.spec.image);
  queue_.schedule_in(config_.start_delay_s, [this, id, epoch] {
    const auto cit = containers_.find(id);
    if (cit == containers_.end() || epochs_.at(id) != epoch ||
        cit->second.state != ContainerState::Starting) {
      return;
    }
    Container& cc = cit->second;
    // The device may have dropped while starting.
    if (registry_.device(cc.device).state != DeviceState::Ready) {
      fail_container(id, cc.device + " went away");
      return;
    }
    cc.state = ContainerState::Running;
    cc.running_at = queue_.now();
    AUTOLEARN_LOG(Info, "container")
        << cc.spec.image << " running on " << cc.device;
    if (tracer_) {
      util::Json args = util::Json::object();
      args.set("id", util::Json(id));
      args.set("device", util::Json(cc.device));
      args.set("image", util::Json(cc.spec.image));
      args.set("restarts", util::Json(cc.restarts));
      tracer_->complete("edge.container.launch", "edge", cc.launched_at,
                        cc.running_at, std::move(args));
    }
    if (metrics_) {
      metrics_->counter("edge.container.running").inc();
      metrics_->histogram("edge.container.launch_s")
          .observe(cc.running_at - cc.launched_at);
    }
    const auto& hooks = hooks_.at(id);
    if (hooks.on_running) hooks.on_running(cc);
  });
}

void ContainerService::fail_container(std::uint64_t id,
                                      const std::string& reason) {
  Container& c = containers_.at(id);
  if (!is_live(c.state)) return;
  c.state = ContainerState::Failed;
  c.failed_at = queue_.now();
  c.failure_reason = reason;
  ++epochs_.at(id);  // invalidate any still-scheduled lifecycle events
  AUTOLEARN_LOG(Warn, "container")
      << "container " << id << " on " << c.device << " failed: " << reason;
  if (tracer_) {
    util::Json args = util::Json::object();
    args.set("id", util::Json(id));
    args.set("device", util::Json(c.device));
    args.set("reason", util::Json(reason));
    tracer_->instant("edge.container.failed", "edge", std::move(args));
  }
  if (metrics_) metrics_->counter("edge.container.failed").inc();
  const auto& hooks = hooks_.at(id);
  if (hooks.on_failed) hooks.on_failed(c);
  maybe_schedule_restart(id);
}

void ContainerService::maybe_schedule_restart(std::uint64_t id) {
  Container& c = containers_.at(id);
  if (!config_.auto_restart || c.restarts >= config_.max_restarts) return;
  ++c.restarts;
  const std::uint64_t epoch = epochs_.at(id);
  queue_.schedule_in(config_.restart_delay_s, [this, id, epoch] {
    const auto it = containers_.find(id);
    if (it == containers_.end() || epochs_.at(id) != epoch ||
        it->second.state != ContainerState::Failed) {
      return;
    }
    if (registry_.device(it->second.device).state != DeviceState::Ready) {
      // Device still down: wait another period (burns a restart slot so a
      // dead device cannot keep a container in limbo forever).
      maybe_schedule_restart(id);
      return;
    }
    AUTOLEARN_LOG(Info, "container")
        << "auto-restarting container " << id << " (attempt "
        << it->second.restarts << ")";
    if (tracer_) {
      util::Json args = util::Json::object();
      args.set("id", util::Json(id));
      args.set("attempt", util::Json(it->second.restarts));
      tracer_->instant("edge.container.restart", "edge", std::move(args));
    }
    if (metrics_) metrics_->counter("edge.container.restarts").inc();
    begin_pull(id);
  });
}

void ContainerService::kill(std::uint64_t id, const std::string& reason) {
  const auto it = containers_.find(id);
  if (it == containers_.end()) {
    throw std::invalid_argument("container: unknown id");
  }
  if (!is_live(it->second.state)) return;
  fail_container(id, reason);
}

std::size_t ContainerService::kill_on_device(const std::string& device,
                                             const std::string& reason) {
  std::vector<std::uint64_t> victims;
  for (const auto& [id, c] : containers_) {
    if (c.device == device && is_live(c.state)) victims.push_back(id);
  }
  for (const std::uint64_t id : victims) fail_container(id, reason);
  return victims.size();
}

void ContainerService::stop(std::uint64_t id) {
  auto it = containers_.find(id);
  if (it == containers_.end()) {
    throw std::invalid_argument("container: unknown id");
  }
  if (it->second.state == ContainerState::Exited) return;
  it->second.state = ContainerState::Exited;
  ++epochs_.at(id);
}

const Container& ContainerService::container(std::uint64_t id) const {
  const auto it = containers_.find(id);
  if (it == containers_.end()) {
    throw std::invalid_argument("container: unknown id");
  }
  return it->second;
}

std::vector<std::uint64_t> ContainerService::running_on(
    const std::string& device) const {
  std::vector<std::uint64_t> out;
  for (const auto& [id, c] : containers_) {
    if (c.device == device && c.state == ContainerState::Running) {
      out.push_back(id);
    }
  }
  return out;
}

void ContainerService::register_command(
    const std::string& name,
    std::function<std::string(const std::string&)> handler) {
  if (!handler) throw std::invalid_argument("container: empty handler");
  commands_[name] = std::move(handler);
}

std::string ContainerService::run_command(std::uint64_t id,
                                          const std::string& command) {
  const Container& c = container(id);
  if (c.state != ContainerState::Running) {
    throw std::logic_error(std::string("container: not running (") +
                           to_string(c.state) + ")");
  }
  std::istringstream is(command);
  std::string head;
  is >> head;
  std::string args;
  std::getline(is, args);
  if (!args.empty() && args.front() == ' ') args.erase(0, 1);
  const auto it = commands_.find(head);
  if (it != commands_.end()) return it->second(args);
  if (head == "echo") return args;
  return head + ": command simulated (no handler registered)";
}

}  // namespace autolearn::edge
