#include "edge/container.hpp"

#include <sstream>
#include <stdexcept>

#include "util/logging.hpp"

namespace autolearn::edge {

const char* to_string(ContainerState s) {
  switch (s) {
    case ContainerState::Pending: return "pending";
    case ContainerState::Pulling: return "pulling";
    case ContainerState::Starting: return "starting";
    case ContainerState::Running: return "running";
    case ContainerState::Exited: return "exited";
    case ContainerState::Failed: return "failed";
  }
  return "?";
}

ContainerSpec ContainerSpec::autolearn_car() {
  ContainerSpec spec;
  spec.image = "autolearn/donkeycar-jupyter:latest";
  spec.image_bytes = 800ull << 20;
  spec.env = {{"DONKEY_CAR_DIR", "/car"}, {"JUPYTER_PORT", "8888"}};
  return spec;
}

ContainerService::ContainerService(EdgeRegistry& registry,
                                   util::EventQueue& queue, Config config)
    : registry_(registry), queue_(queue), config_(config) {
  if (config_.downlink_bps <= 0 || config_.start_delay_s < 0) {
    throw std::invalid_argument("container: bad config");
  }
}

std::uint64_t ContainerService::launch(
    const std::string& device, const std::string& project, ContainerSpec spec,
    std::function<void(const Container&)> on_running) {
  const Device& dev = registry_.device(device);
  if (dev.state != DeviceState::Ready) {
    throw std::logic_error("container: device " + device + " is " +
                           to_string(dev.state) + ", not ready");
  }
  if (!registry_.is_allowed(device, project)) {
    throw std::logic_error("container: project " + project +
                           " is not whitelisted on " + device);
  }
  const std::uint64_t id = next_id_++;
  Container c;
  c.id = id;
  c.device = device;
  c.project = project;
  c.spec = spec;
  c.launched_at = queue_.now();
  c.state = ContainerState::Pulling;
  containers_[id] = std::move(c);

  const bool cached = config_.reuse_image_cache &&
                      image_cache_[device].count(spec.image) > 0;
  const double pull_s =
      cached ? 0.5
             : static_cast<double>(spec.image_bytes) / config_.downlink_bps;
  queue_.schedule_in(pull_s, [this, id, device, image = spec.image] {
    containers_.at(id).state = ContainerState::Starting;
    image_cache_[device].insert(image);
  });
  queue_.schedule_in(
      pull_s + config_.start_delay_s,
      [this, id, on_running = std::move(on_running)] {
        Container& cc = containers_.at(id);
        // The device may have dropped while pulling.
        if (registry_.device(cc.device).state != DeviceState::Ready) {
          cc.state = ContainerState::Failed;
          AUTOLEARN_LOG(Warn, "container")
              << "launch failed: " << cc.device << " went away";
          return;
        }
        cc.state = ContainerState::Running;
        cc.running_at = queue_.now();
        AUTOLEARN_LOG(Info, "container")
            << cc.spec.image << " running on " << cc.device;
        if (on_running) on_running(cc);
      });
  return id;
}

void ContainerService::stop(std::uint64_t id) {
  auto it = containers_.find(id);
  if (it == containers_.end()) {
    throw std::invalid_argument("container: unknown id");
  }
  if (it->second.state == ContainerState::Exited) return;
  it->second.state = ContainerState::Exited;
}

const Container& ContainerService::container(std::uint64_t id) const {
  const auto it = containers_.find(id);
  if (it == containers_.end()) {
    throw std::invalid_argument("container: unknown id");
  }
  return it->second;
}

std::vector<std::uint64_t> ContainerService::running_on(
    const std::string& device) const {
  std::vector<std::uint64_t> out;
  for (const auto& [id, c] : containers_) {
    if (c.device == device && c.state == ContainerState::Running) {
      out.push_back(id);
    }
  }
  return out;
}

void ContainerService::register_command(
    const std::string& name,
    std::function<std::string(const std::string&)> handler) {
  if (!handler) throw std::invalid_argument("container: empty handler");
  commands_[name] = std::move(handler);
}

std::string ContainerService::run_command(std::uint64_t id,
                                          const std::string& command) {
  const Container& c = container(id);
  if (c.state != ContainerState::Running) {
    throw std::logic_error(std::string("container: not running (") +
                           to_string(c.state) + ")");
  }
  std::istringstream is(command);
  std::string head;
  is >> head;
  std::string args;
  std::getline(is, args);
  if (!args.empty() && args.front() == ' ') args.erase(0, 1);
  const auto it = commands_.find(head);
  if (it != commands_.end()) return it->second(args);
  if (head == "echo") return args;
  return head + ": command simulated (no handler registered)";
}

}  // namespace autolearn::edge
