// Container lifecycle on edge devices (§3.2: the added device "is
// reconfigured by deploying a Docker container rather than bare-metal
// reconfiguration"; §3.5: "launch a container on the car's Raspberry Pi
// using a Docker image which pre-installs all DonkeyCar dependencies
// simply by executing one cell ... a 'zero to ready' configuration
// pathway").
//
// Launching checks the device is Ready and the requesting project is
// whitelisted, pulls the image (time sized by image bytes over the edge
// downlink), then starts it. A built-in console runs commands inside a
// Running container (§3.5 "after launching a container, there is a
// built-in console in Jupyter for running commands on the Raspberry Pi").
//
// Failure paths: a crashed device or an image pull over a partitioned or
// exhausted downlink lands the container in ContainerState::Failed and
// fires the launch's on_failed callback. When use_network() is wired, the
// pull is a real TransferManager transfer (so it inherits the shared
// fault::RetryPolicy backoff) between the registry host and the device
// host. kill() is the chaos engine's hook; auto_restart re-pulls a failed
// container after restart_delay_s, up to max_restarts times.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "edge/registry.hpp"
#include "fault/retry.hpp"
#include "net/transfer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/event_queue.hpp"

namespace autolearn::edge {

enum class ContainerState { Pending, Pulling, Starting, Running, Exited,
                            Failed };

const char* to_string(ContainerState s);

struct ContainerSpec {
  std::string image;              // e.g. "autolearn/donkey:latest"
  std::uint64_t image_bytes = 800ull << 20;  // ~800 MiB DonkeyCar stack
  std::map<std::string, std::string> env;

  /// The AutoLearn car image with the Jupyter server baked in (§3.5).
  static ContainerSpec autolearn_car();
};

struct Container {
  std::uint64_t id = 0;
  std::string device;
  std::string project;
  ContainerSpec spec;
  ContainerState state = ContainerState::Pending;
  double launched_at = 0.0;
  double running_at = -1.0;
  double failed_at = -1.0;
  std::string failure_reason;
  int restarts = 0;  // auto-restarts consumed so far
};

struct ContainerConfig {
  double downlink_bps = 4e6;      // edge Wi-Fi image pull bandwidth
  double start_delay_s = 6.0;     // docker create+start on a Pi
  bool reuse_image_cache = true;  // second pull of the same image is free
  /// Backoff for image pulls routed through use_network().
  fault::RetryPolicy pull_retry = fault::RetryPolicy::standard();
  /// Failed containers re-pull automatically after restart_delay_s while
  /// the device is Ready, at most max_restarts times.
  bool auto_restart = false;
  double restart_delay_s = 5.0;
  int max_restarts = 2;
};

class ContainerService {
 public:
  using Config = ContainerConfig;

  ContainerService(EdgeRegistry& registry, util::EventQueue& queue,
                   Config config = {});

  /// Routes image pulls over the simulated network from `registry_host` to
  /// the device's host (device names must be network hosts): pulls then
  /// honor degradation, partitions, and the pull_retry policy.
  void use_network(net::Network& network, std::string registry_host,
                   util::Rng rng = util::Rng(0x517edull));

  /// Wires the observability sinks (either may be null). Spans cover image
  /// pulls and the whole launch; instants mark failures and restarts. When
  /// use_network() is active the underlying TransferManager is instrumented
  /// with the same sinks (per-attempt pull spans).
  void instrument(obs::Tracer* tracer, obs::MetricsRegistry* metrics);

  /// Launches a container for `project` on `device`. Throws if the device
  /// is not Ready or the project is not whitelisted. on_running fires when
  /// the container reaches Running; on_failed fires if the launch (or a
  /// later kill) lands it in Failed.
  std::uint64_t launch(const std::string& device, const std::string& project,
                       ContainerSpec spec,
                       std::function<void(const Container&)> on_running = {},
                       std::function<void(const Container&)> on_failed = {});

  /// Fault injection: forces a live (Pulling/Starting/Running) container to
  /// Failed. No-op on containers already finished.
  void kill(std::uint64_t id, const std::string& reason = "killed");

  /// Kills every live container on a device (used when the device crashes).
  std::size_t kill_on_device(const std::string& device,
                             const std::string& reason);

  void stop(std::uint64_t id);
  const Container& container(std::uint64_t id) const;
  std::vector<std::uint64_t> running_on(const std::string& device) const;

  /// Built-in console: executes a command inside a Running container and
  /// returns its output. A handler table provides domain commands (drive,
  /// ls, calibrate); unknown commands echo like a shell would.
  std::string run_command(std::uint64_t id, const std::string& command);

  /// Installs a console command handler (exact-match on the first word).
  void register_command(
      const std::string& name,
      std::function<std::string(const std::string& args)> handler);

 private:
  struct Hooks {
    std::function<void(const Container&)> on_running;
    std::function<void(const Container&)> on_failed;
  };

  void begin_pull(std::uint64_t id);
  void finish_pull(std::uint64_t id, std::uint64_t epoch);
  void fail_container(std::uint64_t id, const std::string& reason);
  void maybe_schedule_restart(std::uint64_t id);
  bool is_live(ContainerState s) const;

  EdgeRegistry& registry_;
  util::EventQueue& queue_;
  Config config_;
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::map<std::uint64_t, double> pull_began_;  // per-container pull start
  net::Network* network_ = nullptr;
  std::string registry_host_;
  std::unique_ptr<net::TransferManager> pull_transfers_;
  std::map<std::uint64_t, Container> containers_;
  std::map<std::uint64_t, Hooks> hooks_;
  std::map<std::uint64_t, std::uint64_t> epochs_;  // invalidates stale events
  std::map<std::string, std::function<std::string(const std::string&)>>
      commands_;
  std::map<std::string, std::set<std::string>> image_cache_;  // device->images
  std::uint64_t next_id_ = 1;
};

}  // namespace autolearn::edge
