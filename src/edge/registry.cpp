#include "edge/registry.hpp"

#include <stdexcept>

#include "util/logging.hpp"

namespace autolearn::edge {

const char* to_string(DeviceState s) {
  switch (s) {
    case DeviceState::Registered: return "registered";
    case DeviceState::Flashed: return "flashed";
    case DeviceState::Connected: return "connected";
    case DeviceState::Ready: return "ready";
    case DeviceState::Disconnected: return "disconnected";
  }
  return "?";
}

EdgeRegistry::EdgeRegistry(util::EventQueue& queue, Config config)
    : queue_(queue), config_(config) {
  if (config_.heartbeat_period_s <= 0 || config_.missed_heartbeats_limit < 1) {
    throw std::invalid_argument("edge: bad registry config");
  }
}

Device& EdgeRegistry::device_mut(const std::string& name) {
  const auto it = devices_.find(name);
  if (it == devices_.end()) {
    throw std::invalid_argument("edge: unknown device " + name);
  }
  return it->second;
}

const Device& EdgeRegistry::device(const std::string& name) const {
  const auto it = devices_.find(name);
  if (it == devices_.end()) {
    throw std::invalid_argument("edge: unknown device " + name);
  }
  return it->second;
}

std::string EdgeRegistry::register_device(const std::string& name,
                                          const std::string& owner_project) {
  if (name.empty() || owner_project.empty()) {
    throw std::invalid_argument("edge: empty device/project name");
  }
  if (devices_.count(name)) {
    throw std::invalid_argument("edge: duplicate device " + name);
  }
  Device d;
  d.name = name;
  d.owner_project = owner_project;
  d.sd_image_token = "sdcfg-" + std::to_string(next_token_++) + "-" + name;
  d.whitelist.insert(owner_project);
  d.registered_at = queue_.now();
  devices_.emplace(name, std::move(d));
  return devices_.at(name).sd_image_token;
}

void EdgeRegistry::flash_device(const std::string& name) {
  Device& d = device_mut(name);
  if (d.state != DeviceState::Registered) {
    throw std::logic_error("edge: flash requires a registered device");
  }
  d.state = DeviceState::Flashed;
}

void EdgeRegistry::boot_device(const std::string& name,
                               std::function<void(const Device&)> on_ready) {
  Device& d = device_mut(name);
  if (d.state != DeviceState::Flashed) {
    throw std::logic_error("edge: boot requires a flashed device");
  }
  failed_.erase(name);
  queue_.schedule_in(config_.boot_delay_s, [this, name] {
    Device& dev = device_mut(name);
    dev.state = DeviceState::Connected;
    dev.last_heartbeat = queue_.now();
  });
  queue_.schedule_in(
      config_.boot_delay_s + config_.enroll_delay_s,
      [this, name, on_ready = std::move(on_ready)] {
        Device& dev = device_mut(name);
        dev.state = DeviceState::Ready;
        dev.ready_at = queue_.now();
        dev.last_heartbeat = queue_.now();
        AUTOLEARN_LOG(Info, "edge") << name << " ready";
        if (on_ready) on_ready(dev);
      });
}

void EdgeRegistry::allow_project(const std::string& device,
                                 const std::string& project) {
  device_mut(device).whitelist.insert(project);
}

void EdgeRegistry::revoke_project(const std::string& device,
                                  const std::string& project) {
  Device& d = device_mut(device);
  if (project == d.owner_project) {
    throw std::logic_error("edge: cannot revoke the owner project");
  }
  d.whitelist.erase(project);
}

bool EdgeRegistry::is_allowed(const std::string& device,
                              const std::string& project) const {
  return this->device(device).whitelist.count(project) > 0;
}

std::vector<std::string> EdgeRegistry::devices() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : devices_) out.push_back(name);
  return out;
}

std::vector<std::string> EdgeRegistry::ready_devices() const {
  std::vector<std::string> out;
  for (const auto& [name, d] : devices_) {
    if (d.state == DeviceState::Ready) out.push_back(name);
  }
  return out;
}

void EdgeRegistry::fail_device(const std::string& name) {
  Device& dev = device_mut(name);
  if (failed_.count(name)) return;
  failed_.insert(name);
  // The daemon has stopped heartbeating; the liveness monitor notices
  // after missed_heartbeats_limit silent periods and marks the device
  // Disconnected. A healthy daemon needs no standing events — the device's
  // last_heartbeat is implicitly "now" while it is not failed — so the
  // event queue drains once real work is done (no self-rescheduling
  // heartbeat events keeping run() alive).
  dev.last_heartbeat = queue_.now();
  const double detect_after =
      config_.heartbeat_period_s * config_.missed_heartbeats_limit;
  queue_.schedule_in(detect_after, [this, name] {
    Device& d = device_mut(name);
    if (!failed_.count(name)) return;  // recovered in the meantime
    if (d.state == DeviceState::Disconnected) return;
    d.state = DeviceState::Disconnected;
    AUTOLEARN_LOG(Warn, "edge") << name << " disconnected (heartbeats lost)";
  });
}

void EdgeRegistry::revive_device(const std::string& name,
                                 std::function<void(const Device&)> on_ready) {
  Device& d = device_mut(name);
  if (d.state == DeviceState::Disconnected) {
    recover_device(name, std::move(on_ready));
    return;
  }
  if (failed_.erase(name)) {
    d.last_heartbeat = queue_.now();
    if (on_ready && d.state == DeviceState::Ready) on_ready(d);
  }
}

void EdgeRegistry::recover_device(const std::string& name,
                                  std::function<void(const Device&)> on_ready) {
  Device& d = device_mut(name);
  if (d.state != DeviceState::Disconnected) {
    throw std::logic_error("edge: recover requires a disconnected device");
  }
  failed_.erase(name);
  d.state = DeviceState::Flashed;  // power-cycle with the same card
  boot_device(name, std::move(on_ready));
}

}  // namespace autolearn::edge
