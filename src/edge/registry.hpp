// CHI@Edge device registry with BYOD enrolment (§3.2):
//
//   "users can add devices to the testbed by downloading a CHI@Edge
//    command line utility and SD card image; the utility registers the
//    device with the testbed, and configures the SD card image to be
//    flashed onto the device. Once booted up, the image contains a daemon
//    that connects the device to the testbed and configures whitelist-
//    based access policies for the added device."
//
// Enrolment walks Registered -> Flashed -> Connected -> Ready; the daemon
// then heartbeats on the shared event queue, and missed heartbeats mark
// the device Disconnected (failure injection for tests).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/event_queue.hpp"

namespace autolearn::edge {

enum class DeviceState {
  Registered,   // known to the testbed, SD image issued
  Flashed,      // image written to the card
  Connected,    // daemon reached the testbed
  Ready,        // allocatable like any other Chameleon resource
  Disconnected  // heartbeats stopped
};

const char* to_string(DeviceState s);

struct Device {
  std::string name;              // e.g. "donkeycar-pi-03"
  std::string owner_project;
  DeviceState state = DeviceState::Registered;
  std::string sd_image_token;    // config baked into the SD image
  std::set<std::string> whitelist;  // projects allowed to allocate
  /// Last daemon heartbeat time; while the daemon is healthy this tracks
  /// the ready time (a healthy daemon needs no standing simulator events).
  double last_heartbeat = -1.0;
  double registered_at = 0.0;
  double ready_at = -1.0;
};

struct RegistryConfig {
  double boot_delay_s = 25.0;       // power-on to daemon connect
  double enroll_delay_s = 4.0;      // daemon registration handshake
  double heartbeat_period_s = 10.0;
  int missed_heartbeats_limit = 3;
};

class EdgeRegistry {
 public:
  using Config = RegistryConfig;

  EdgeRegistry(util::EventQueue& queue, Config config = {});

  /// BYOD step 1: the CLI utility registers the device and returns the SD
  /// image token. The owning project is whitelisted automatically.
  std::string register_device(const std::string& name,
                              const std::string& owner_project);

  /// BYOD step 2: flash the configured image onto the card.
  void flash_device(const std::string& name);

  /// BYOD step 3: power on. The daemon connects after boot_delay_s and the
  /// device becomes Ready (events on the shared queue). on_ready fires at
  /// that point.
  void boot_device(const std::string& name,
                   std::function<void(const Device&)> on_ready = {});

  /// Whitelist management ("configures whitelist-based access policies").
  void allow_project(const std::string& device, const std::string& project);
  void revoke_project(const std::string& device, const std::string& project);
  bool is_allowed(const std::string& device, const std::string& project) const;

  const Device& device(const std::string& name) const;
  std::vector<std::string> devices() const;
  std::vector<std::string> ready_devices() const;

  /// Failure injection: the device stops heartbeating; after
  /// missed_heartbeats_limit periods the liveness monitor marks it
  /// Disconnected.
  void fail_device(const std::string& name);

  /// Re-boot a disconnected device (it keeps its registration).
  void recover_device(const std::string& name,
                      std::function<void(const Device&)> on_ready = {});

  /// True while the device's daemon is failed (whether or not the liveness
  /// monitor has marked it Disconnected yet).
  bool is_failed(const std::string& name) const { return failed_.count(name); }

  /// Chaos-friendly recovery: if the failure was detected (Disconnected),
  /// reboot as recover_device; if the daemon comes back before detection,
  /// simply resume heartbeating (the device never left Ready).
  void revive_device(const std::string& name,
                     std::function<void(const Device&)> on_ready = {});

  const Config& config() const { return config_; }

 private:
  Device& device_mut(const std::string& name);

  util::EventQueue& queue_;
  Config config_;
  std::map<std::string, Device> devices_;
  std::set<std::string> failed_;  // devices whose daemon stopped
  std::uint64_t next_token_ = 1;
};

}  // namespace autolearn::edge
