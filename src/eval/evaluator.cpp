#include "eval/evaluator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "camera/camera.hpp"
#include "util/delay_line.hpp"
#include "vehicle/car.hpp"

namespace autolearn::eval {

double EvalResult::score() const {
  const double minutes = duration_s / 60.0;
  const double laps_per_min = minutes > 0 ? laps / minutes : 0.0;
  return laps_per_min / (1.0 + static_cast<double>(errors));
}

double EvalResult::best_lap() const {
  if (lap_times.empty()) return 0.0;
  return *std::min_element(lap_times.begin(), lap_times.end());
}

EvalResult run_evaluation(const track::Track& track, Pilot& pilot,
                          const EvalOptions& options) {
  if (options.duration_s <= 0 || options.dt <= 0) {
    throw std::invalid_argument("eval: bad duration/dt");
  }
  util::Rng rng(options.seed);

  vehicle::CarConfig car_cfg;
  car_cfg.noise = options.real_profiles ? vehicle::NoiseProfile::real_car()
                                        : vehicle::NoiseProfile::sim();
  vehicle::Car car(car_cfg, rng.split());
  car.reset(track.position_at(0), track.heading_at(0));

  camera::CameraConfig cam_cfg;
  cam_cfg.width = options.img_w;
  cam_cfg.height = options.img_h;
  cam_cfg.noise = options.real_profiles ? camera::CameraNoise::real_car()
                                        : camera::CameraNoise::sim();
  camera::Camera cam(cam_cfg, rng.split());

  pilot.reset();
  util::DelayLine<vehicle::DriveCommand> pipeline(options.dt,
                                                  vehicle::DriveCommand{});

  // Fixed per-command latency: the network part plus (when a device is
  // given) the batched perf-model inference cost.
  double fixed_latency_s = options.command_latency_s;
  if (options.infer_device) {
    fixed_latency_s += gpu::inference_latency_s(
        *options.infer_device, options.infer_flops, options.infer_batch,
        options.infer_precision);
  }

  EvalResult result;
  const auto steps = static_cast<std::size_t>(options.duration_s / options.dt);
  double s_prev = track.project(car.state().pos).s;
  double lap_progress = 0.0;
  double lap_clock = 0.0;

  const obs::SpanGuard run_span(options.tracer, "eval.run", "eval");
  for (std::size_t i = 0; i < steps; ++i) {
    const obs::SpanGuard tick_span(options.tracer, "eval.tick", "eval");
    if (options.chaos_queue) {
      // Fire any fault events due by this control step before sensing.
      options.chaos_queue->run_until(static_cast<double>(i) * options.dt);
    }
    if (options.telemetry) options.telemetry(car.state());
    const camera::Image frame = cam.render(track, car.state());
    const vehicle::DriveCommand cmd = pilot.act(frame);
    double latency = fixed_latency_s;
    if (options.latency_jitter_s > 0) {
      latency = std::max(0.0, rng.normal(latency, options.latency_jitter_s));
    }
    if (options.metrics) {
      options.metrics->histogram("eval.cmd_latency_s").observe(latency);
    }
    pipeline.push(cmd, latency);
    const vehicle::DriveCommand effective = pipeline.step();
    car.step(effective, options.dt);
    lap_clock += options.dt;

    const track::Projection proj = track.project(car.state().pos);
    const double delta = track.progress_delta(s_prev, proj.s);
    if (delta > 0) {
      result.distance_m += delta;
      lap_progress += delta;
      if (lap_progress >= track.length()) {
        lap_progress -= track.length();
        result.lap_times.push_back(lap_clock);
        lap_clock = 0.0;
      }
    }
    s_prev = proj.s;

    if (std::abs(proj.lateral) >
        track.half_width() + options.off_track_grace) {
      // Off the track: the student places the car back on the line facing
      // forward, at walking pace — and the error counter ticks.
      ++result.errors;
      if (options.tracer) {
        util::Json args = util::Json::object();
        args.set("step", util::Json(i));
        args.set("track_s", util::Json(proj.s));
        options.tracer->instant("eval.off_track", "eval", std::move(args));
      }
      if (options.metrics) options.metrics->counter("eval.errors").inc();
      car.reset(track.position_at(proj.s), track.heading_at(proj.s), 0.3);
      pilot.reset();
      pipeline = util::DelayLine<vehicle::DriveCommand>(
          options.dt, vehicle::DriveCommand{});
      s_prev = track.project(car.state().pos).s;
    }
    ++result.steps;
  }
  result.mean_speed =
      result.steps
          ? result.distance_m / (static_cast<double>(result.steps) * options.dt)
          : 0.0;
  result.laps = result.distance_m / track.length();
  result.duration_s = static_cast<double>(result.steps) * options.dt;
  if (options.metrics) {
    options.metrics->counter("eval.runs").inc();
    options.metrics->counter("eval.steps").inc(result.steps);
    options.metrics->gauge("eval.distance_m").set(result.distance_m);
    options.metrics->gauge("eval.mean_speed").set(result.mean_speed);
  }
  return result;
}

}  // namespace autolearn::eval
