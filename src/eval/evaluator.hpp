// Closed-loop model evaluation (§3.3 "Model Evaluation": students
// "drive [cars] around the track measuring qualities of interest (speed,
// number of errors, etc.)").
//
// The evaluator runs camera -> pilot -> (latency pipeline) -> actuation at
// a fixed control rate. When the car leaves the lane it records an error
// and, like a student, places it back on the centerline and continues.
// End-to-end command latency (inference time plus any network RTT for
// cloud/hybrid placement) is modeled with a DelayLine — this is the knob
// the E7 continuum study sweeps.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "eval/pilot.hpp"
#include "fault/report.hpp"
#include "gpu/perf_model.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "track/track.hpp"
#include "util/event_queue.hpp"
#include "util/rng.hpp"
#include "vehicle/car.hpp"

namespace autolearn::eval {

struct EvalOptions {
  double duration_s = 60.0;
  double dt = 0.05;              // 20 Hz control loop
  std::size_t img_w = 32;
  std::size_t img_h = 24;
  bool real_profiles = false;    // real-car noise on vehicle and camera
  double command_latency_s = 0.0;    // fixed part (network / externally given)
  double latency_jitter_s = 0.0;     // gaussian stddev per command (network)
  /// Batched perf-model latency accounting. When infer_device is set the
  /// per-command latency is command_latency_s (the network part) plus
  /// gpu::inference_latency_s(*infer_device, infer_flops, infer_batch) —
  /// the same batched path the fleet serving tier prices batches with, so
  /// single-car eval (infer_batch = 1) and serving agree bitwise on the
  /// batch-of-1 cost. Unset: command_latency_s is taken literally.
  const gpu::DeviceSpec* infer_device = nullptr;
  std::uint64_t infer_flops = 0;
  std::size_t infer_batch = 1;
  /// Precision the priced model runs at: Int8 engages the device's
  /// integer-path speedup (cloud-fp32 vs edge-int8 sweeps set this from
  /// ml::DrivingModel::precision()).
  gpu::Precision infer_precision = gpu::Precision::Fp32;
  double off_track_grace = 0.10;     // meters beyond the lane edge tolerated
  std::uint64_t seed = 5;
  /// Telemetry tap: called with the true car state before each control
  /// step (speed sensor / GPS feed for pilots that consume telemetry).
  std::function<void(const vehicle::CarState&)> telemetry;
  /// Optional discrete-event clock advanced in lock-step with the control
  /// loop. Chaos plans scheduled on it (partitions, degradations) then fire
  /// mid-evaluation at their exact virtual times.
  util::EventQueue* chaos_queue = nullptr;
  /// Observability sinks (either may be null): an "eval.run" span wrapping
  /// per-tick "eval.tick" spans, off-track instants, and step/error/latency
  /// metrics. Clock the tracer from chaos_queue for virtual-time spans.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

struct EvalResult {
  double distance_m = 0.0;
  double mean_speed = 0.0;       // m/s over the whole run
  double laps = 0.0;             // distance / track length
  std::size_t errors = 0;        // off-track events (car replaced on line)
  std::size_t steps = 0;
  double duration_s = 0.0;       // simulated run length
  std::vector<double> lap_times; // completed laps only
  /// The paper's students "compete to train models yielding a combination
  /// of fastest speed with fewest errors": laps per minute divided by
  /// (1 + errors).
  double score() const;
  double best_lap() const;       // 0 when no lap was completed
  /// Degradation observed by a resilient pilot (zeros for plain pilots);
  /// filled by evaluate_placement(Hybrid) from its circuit breaker.
  fault::DegradationStats degradation;
};

/// Runs the pilot on the track and measures driving quality.
EvalResult run_evaluation(const track::Track& track, Pilot& pilot,
                          const EvalOptions& options);

}  // namespace autolearn::eval
