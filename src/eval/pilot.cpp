#include "eval/pilot.hpp"

namespace autolearn::eval {

ModelPilot::ModelPilot(ml::DrivingModel& model) : model_(model) {}

void ModelPilot::reset() {
  frames_.clear();
  history_.clear();
}

vehicle::DriveCommand ModelPilot::act(const camera::Image& frame) {
  const std::size_t need_frames = model_.seq_len();
  const std::size_t need_hist = 2 * model_.history_len();

  frames_.push_back(frame);
  // Until the buffer fills, repeat the newest frame (cold-start behavior of
  // the real car, which pads with the first camera image).
  while (frames_.size() < need_frames) frames_.push_front(frame);
  while (frames_.size() > need_frames) frames_.pop_front();

  while (history_.size() < need_hist) history_.push_back(0.0f);
  while (history_.size() > need_hist) history_.pop_front();

  ml::Sample obs;
  obs.frames.assign(frames_.begin(), frames_.end());
  obs.history.assign(history_.begin(), history_.end());
  // The control loop is a fleet batch of one: same entry point the serving
  // tier uses, so closed-loop eval and serving share the inference path.
  ml::Prediction p;
  model_.predict_batch(&obs, 1, &p);

  if (need_hist > 0) {
    history_.pop_front();
    history_.pop_front();
    history_.push_back(static_cast<float>(p.steering));
    history_.push_back(static_cast<float>(p.throttle));
  }
  return vehicle::DriveCommand{p.steering, p.throttle}.clamped();
}

}  // namespace autolearn::eval
