// Closed-loop pilots: anything that can turn camera frames into drive
// commands. ModelPilot adapts a trained DrivingModel by maintaining the
// frame buffer and command history its model type needs.
#pragma once

#include <deque>

#include "camera/image.hpp"
#include "ml/driving_model.hpp"
#include "vehicle/car.hpp"

namespace autolearn::eval {

class Pilot {
 public:
  virtual ~Pilot() = default;
  /// One control step: newest camera frame in, command out.
  virtual vehicle::DriveCommand act(const camera::Image& frame) = 0;
  /// Clears internal buffers between runs.
  virtual void reset() = 0;
  virtual std::string name() const = 0;
};

class ModelPilot : public Pilot {
 public:
  /// Does not own the model; the caller keeps it alive.
  explicit ModelPilot(ml::DrivingModel& model);

  vehicle::DriveCommand act(const camera::Image& frame) override;
  void reset() override;
  std::string name() const override { return model_.type_name(); }

 private:
  ml::DrivingModel& model_;
  std::deque<camera::Image> frames_;
  std::deque<float> history_;  // steering, throttle pairs
};

}  // namespace autolearn::eval
