#include "eval/wrappers.hpp"

#include <stdexcept>

namespace autolearn::eval {

FixedThrottlePilot::FixedThrottlePilot(Pilot& inner, double throttle)
    : inner_(inner), throttle_(throttle) {
  if (throttle < 0 || throttle > 1) {
    throw std::invalid_argument("fixed-throttle: throttle in [0,1]");
  }
}

vehicle::DriveCommand FixedThrottlePilot::act(const camera::Image& frame) {
  const vehicle::DriveCommand inner_cmd = inner_.act(frame);
  return vehicle::DriveCommand{inner_cmd.steering, throttle_}.clamped();
}

}  // namespace autolearn::eval
