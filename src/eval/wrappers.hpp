// Pilot wrappers for the driving modes the DonkeyCar web controller offers
// (§3.3: "Both modes provide a variety of options such as setting the
// throttle as constant (useful if the car is used in races with a pilot
// that will steer but does not control throttle)").
#pragma once

#include <string>

#include "eval/pilot.hpp"

namespace autolearn::eval {

/// Race mode: the wrapped pilot steers; the throttle is pinned.
class FixedThrottlePilot : public Pilot {
 public:
  /// Does not own `inner`. throttle in [0, 1].
  FixedThrottlePilot(Pilot& inner, double throttle);

  vehicle::DriveCommand act(const camera::Image& frame) override;
  void reset() override { inner_.reset(); }
  std::string name() const override {
    return inner_.name() + "+fixed-throttle";
  }

  double throttle() const { return throttle_; }

 private:
  Pilot& inner_;
  double throttle_;
};

}  // namespace autolearn::eval
