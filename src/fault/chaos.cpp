#include "fault/chaos.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/logging.hpp"

namespace autolearn::fault {

ChaosEngine::ChaosEngine(util::EventQueue& queue, std::uint64_t seed)
    : queue_(queue), rng_(seed) {}

void ChaosEngine::attach_network(net::Network& network) {
  network_ = &network;
}
void ChaosEngine::attach_registry(edge::EdgeRegistry& registry) {
  registry_ = &registry;
}
void ChaosEngine::attach_containers(edge::ContainerService& containers) {
  containers_ = &containers;
}
void ChaosEngine::attach_leases(testbed::LeaseManager& leases) {
  leases_ = &leases;
}
void ChaosEngine::attach_checkpoints(ckpt::CheckpointStore& checkpoints) {
  checkpoints_ = &checkpoints;
}
void ChaosEngine::attach_load(std::function<void(double)> hook) {
  load_hook_ = std::move(hook);
}
void ChaosEngine::attach_fed(FedHooks hooks) { fed_ = std::move(hooks); }

void ChaosEngine::instrument(obs::Tracer* tracer,
                             obs::MetricsRegistry* metrics) {
  tracer_ = tracer;
  metrics_ = metrics;
}

void ChaosEngine::record(FaultKind kind, const std::string& target,
                         bool recovery, std::string detail) {
  InjectedEvent e;
  e.time = queue_.now();
  e.kind = kind;
  e.target = target;
  e.recovery = recovery;
  e.detail = std::move(detail);
  if (tracer_) {
    util::Json args = util::Json::object();
    args.set("target", util::Json(e.target));
    args.set("recovery", util::Json(e.recovery));
    args.set("detail", util::Json(e.detail));
    tracer_->instant(std::string("chaos.") + to_string(kind), "chaos",
                     std::move(args));
  }
  if (metrics_) {
    metrics_->counter(recovery ? "chaos.recovered" : "chaos.injected").inc();
    metrics_->counter(std::string("chaos.kind.") + to_string(kind)).inc();
  }
  report_.timeline.push_back(std::move(e));
  if (recovery) {
    ++report_.recovered;
  } else {
    ++report_.injected;
  }
}

void ChaosEngine::inject(const FaultSpec& spec) {
  if (spec.at < queue_.now()) {
    throw std::invalid_argument("chaos: fault scheduled in the past");
  }
  switch (spec.kind) {
    case FaultKind::LinkDegrade:
    case FaultKind::TransferFlap:
    case FaultKind::Partition:
      if (!network_) throw std::logic_error("chaos: no network attached");
      break;
    case FaultKind::DeviceCrash:
      if (!registry_) throw std::logic_error("chaos: no registry attached");
      break;
    case FaultKind::ContainerKill:
      if (!containers_) {
        throw std::logic_error("chaos: no container service attached");
      }
      break;
    case FaultKind::LeasePreempt:
      if (!leases_) throw std::logic_error("chaos: no lease manager attached");
      break;
    case FaultKind::CheckpointTruncate:
      if (!checkpoints_) {
        throw std::logic_error("chaos: no checkpoint store attached");
      }
      break;
    case FaultKind::LoadSpike:
      if (!load_hook_) {
        throw std::logic_error("chaos: no load source attached");
      }
      if (spec.load_mult <= 0) {
        throw std::invalid_argument("chaos: load_mult must be > 0");
      }
      break;
    case FaultKind::ClientDropout:
      if (!fed_.client_state) {
        throw std::logic_error("chaos: no fed client hook attached");
      }
      break;
    case FaultKind::DeltaCorrupt:
      if (!fed_.corrupt_next_delta) {
        throw std::logic_error("chaos: no fed delta hook attached");
      }
      break;
    case FaultKind::TrainPreempt:
      throw std::logic_error(
          "chaos: TrainPreempt is armed via arm_preemption(), not inject()");
  }
  // Scheduled-outage accounting happens at planning time so the report
  // reflects the plan even if the run ends inside a fault window.
  if (spec.duration > 0) {
    if (spec.kind == FaultKind::Partition) {
      report_.partition_s += spec.duration;
    } else if (spec.kind == FaultKind::LinkDegrade ||
               spec.kind == FaultKind::TransferFlap) {
      report_.degraded_link_s += spec.duration;
    }
  }
  queue_.schedule_at(spec.at, [this, spec] { apply(spec); });
  if (spec.duration > 0) {
    queue_.schedule_at(spec.at + spec.duration,
                       [this, spec] { revert(spec); });
  }
}

void ChaosEngine::inject_plan(const std::vector<FaultSpec>& plan) {
  for (const FaultSpec& spec : plan) inject(spec);
}

void ChaosEngine::apply(const FaultSpec& spec) {
  switch (spec.kind) {
    case FaultKind::LinkDegrade:
    case FaultKind::TransferFlap: {
      net::LinkFault fault;
      fault.latency_mult = spec.latency_mult;
      fault.loss_add =
          spec.kind == FaultKind::TransferFlap ? 1.0 : spec.loss_add;
      fault.bandwidth_mult = spec.bandwidth_mult;
      network_->degrade_duplex(spec.target, spec.peer, fault);
      std::ostringstream detail;
      detail << "x" << fault.latency_mult << " latency, +" << fault.loss_add
             << " loss";
      record(spec.kind, spec.target + "<->" + spec.peer, false, detail.str());
      break;
    }
    case FaultKind::Partition:
      network_->partition_host(spec.target);
      record(spec.kind, spec.target, false, "host off the routing graph");
      break;
    case FaultKind::DeviceCrash:
      registry_->fail_device(spec.target);
      record(spec.kind, spec.target, false, "daemon stopped");
      if (containers_) {
        const std::size_t killed =
            containers_->kill_on_device(spec.target, "device crashed");
        if (killed > 0) {
          record(FaultKind::ContainerKill, spec.target, false,
                 std::to_string(killed) + " container(s) died with the device");
        }
      }
      break;
    case FaultKind::ContainerKill:
      containers_->kill(spec.id, "chaos kill");
      record(spec.kind, "container-" + std::to_string(spec.id), false,
             "killed");
      break;
    case FaultKind::LeasePreempt: {
      std::vector<std::uint64_t> victims;
      if (spec.id != 0) {
        victims.push_back(spec.id);
      } else {
        victims = leases_->live_leases(spec.target, queue_.now());
      }
      for (const std::uint64_t lease_id : victims) {
        leases_->preempt(lease_id, queue_.now());
        record(spec.kind, "lease-" + std::to_string(lease_id), false,
               "nodes reclaimed");
      }
      break;
    }
    case FaultKind::CheckpointTruncate: {
      checkpoints_->truncate_next_upload(spec.truncate_frac);
      std::ostringstream detail;
      detail << "next upload keeps " << spec.truncate_frac
             << " of its bytes";
      record(spec.kind, spec.target.empty() ? "checkpoints" : spec.target,
             false, detail.str());
      break;
    }
    case FaultKind::LoadSpike: {
      load_hook_(spec.load_mult);
      std::ostringstream detail;
      detail << "offered load x" << spec.load_mult;
      record(spec.kind, spec.target.empty() ? "fleet" : spec.target, false,
             detail.str());
      break;
    }
    case FaultKind::ClientDropout:
      fed_.client_state(spec.target, true);
      record(spec.kind, spec.target, false,
             spec.duration > 0 ? "client offline" : "client gone for good");
      break;
    case FaultKind::DeltaCorrupt:
      fed_.corrupt_next_delta(spec.target);
      record(spec.kind, spec.target, false,
             "next delta upload corrupted in transit");
      break;
    case FaultKind::TrainPreempt:
      break;  // unreachable: rejected at inject()
  }
}

void ChaosEngine::revert(const FaultSpec& spec) {
  switch (spec.kind) {
    case FaultKind::LinkDegrade:
    case FaultKind::TransferFlap:
      network_->clear_degradation_duplex(spec.target, spec.peer);
      record(spec.kind, spec.target + "<->" + spec.peer, true, "link restored");
      break;
    case FaultKind::Partition:
      network_->heal_host(spec.target);
      record(spec.kind, spec.target, true, "host rejoined");
      break;
    case FaultKind::DeviceCrash:
      registry_->revive_device(spec.target);
      record(spec.kind, spec.target, true, "daemon back");
      break;
    case FaultKind::LoadSpike:
      load_hook_(1.0);
      record(spec.kind, spec.target.empty() ? "fleet" : spec.target, true,
             "offered load restored");
      break;
    case FaultKind::ClientDropout:
      fed_.client_state(spec.target, false);
      record(spec.kind, spec.target, true, "client back");
      break;
    case FaultKind::ContainerKill:
    case FaultKind::LeasePreempt:
    case FaultKind::TrainPreempt:
    case FaultKind::CheckpointTruncate:
    case FaultKind::DeltaCorrupt:
      // One-shot faults: recovery (auto-restart, a fresh lease, a resume
      // from the checkpoint store) is the responsibility of the resilience
      // policies under test.
      break;
  }
}

std::uint64_t ChaosEngine::arm_preemption(
    PreemptionToken& token, const PreemptPlanOptions& options) {
  if (options.min_tick == 0 || options.max_tick < options.min_tick) {
    throw std::invalid_argument("chaos: bad preemption tick window");
  }
  const std::uint64_t tick = static_cast<std::uint64_t>(
      rng_.uniform_int(static_cast<std::int64_t>(options.min_tick),
                       static_cast<std::int64_t>(options.max_tick)));
  token.arm(tick);
  token.set_on_fire([this](std::uint64_t fired_at) {
    ++report_.preemptions;
    record(FaultKind::TrainPreempt, "trainer", false,
           "killed at tick " + std::to_string(fired_at));
  });
  return tick;
}

void ChaosEngine::record_preempt_outcome(std::size_t batches_lost,
                                         std::size_t batches_recovered) {
  report_.batches_lost += batches_lost;
  report_.batches_recovered += batches_recovered;
  record(FaultKind::TrainPreempt, "trainer", true,
         std::to_string(batches_lost) + " batch(es) lost, " +
             std::to_string(batches_recovered) +
             " recovered from checkpoint");
}

std::vector<FaultSpec> ChaosEngine::random_plan(
    const RandomPlanOptions& options) {
  if (options.horizon_s <= 0 || options.mean_duration_s <= 0) {
    throw std::invalid_argument("chaos: bad plan options");
  }
  std::vector<std::string> hosts;
  if (!options.partition_host.empty()) hosts.push_back(options.partition_host);
  for (const std::string& h : options.partition_hosts) {
    if (!h.empty()) hosts.push_back(h);
  }
  std::vector<std::string> clients;
  for (const std::string& c : options.client_dropout_hosts) {
    if (!c.empty()) clients.push_back(c);
  }
  // Uniform pick among a host list; a single candidate draws nothing so
  // the one-host stream stays what it always was.
  auto pick = [this](const std::vector<std::string>& from) {
    return from.size() == 1
               ? from.front()
               : from[static_cast<std::size_t>(rng_.uniform_int(
                     0, static_cast<std::int64_t>(from.size()) - 1))];
  };
  std::vector<FaultSpec> plan;
  for (std::size_t i = 0; i < options.faults; ++i) {
    const bool can_partition = !hosts.empty();
    const bool can_degrade = !options.link_from.empty();
    const bool can_dropout = !clients.empty();
    if (!can_partition && !can_degrade && !can_dropout) break;
    FaultSpec spec;
    FaultKind kind;
    if (!can_dropout) {
      // Pre-federated draw sequence, preserved verbatim: plans generated
      // before client_dropout_hosts existed stay bitwise unchanged for
      // the same seed (regression-tested in fed_test).
      kind = can_partition && (!can_degrade || rng_.chance(0.5))
                 ? FaultKind::Partition
                 : FaultKind::LinkDegrade;
    } else {
      std::vector<FaultKind> kinds;
      if (can_partition) kinds.push_back(FaultKind::Partition);
      if (can_degrade) kinds.push_back(FaultKind::LinkDegrade);
      kinds.push_back(FaultKind::ClientDropout);
      kind = kinds.size() == 1
                 ? kinds.front()
                 : kinds[static_cast<std::size_t>(rng_.uniform_int(
                       0, static_cast<std::int64_t>(kinds.size()) - 1))];
    }
    spec.at = queue_.now() + rng_.uniform(0.0, options.horizon_s);
    spec.duration =
        std::min(options.horizon_s, rng_.exponential(options.mean_duration_s));
    spec.kind = kind;
    if (kind == FaultKind::Partition) {
      spec.target = pick(hosts);
    } else if (kind == FaultKind::ClientDropout) {
      spec.target = pick(clients);
    } else {
      spec.target = options.link_from;
      spec.peer = options.link_to;
      spec.latency_mult = options.latency_mult;
      spec.loss_add = options.loss_add;
    }
    plan.push_back(std::move(spec));
  }
  std::sort(plan.begin(), plan.end(),
            [](const FaultSpec& a, const FaultSpec& b) { return a.at < b.at; });
  return plan;
}

}  // namespace autolearn::fault
