// Deterministic chaos engine for the edge-to-cloud continuum.
//
// The paper's substrate fails constantly in practice — Wi-Fi drops,
// Chameleon leases end, containers die mid-session — so the chaos engine
// turns those failures into first-class, seed-reproducible experiment
// inputs. A ChaosEngine is attached to the subsystems it may break and is
// handed FaultSpecs (a timed plan, hand-written or generated from the
// engine's seed); it schedules the fault and its recovery on the shared
// util::EventQueue and records every action in a ChaosReport. The same
// seed and plan always produce the same event timeline.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "edge/container.hpp"
#include "edge/registry.hpp"
#include "fault/preempt.hpp"
#include "fault/report.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "testbed/lease.hpp"
#include "util/event_queue.hpp"
#include "util/rng.hpp"

namespace autolearn::fault {

struct FaultSpec {
  FaultKind kind{};
  double at = 0.0;        // injection time (virtual seconds)
  double duration = 0.0;  // recovery is scheduled at at+duration; 0 = never
  std::string target;     // host / device / lease node type
  std::string peer;       // second endpoint for link faults
  // Link degradation knobs (LinkDegrade; TransferFlap forces loss to 1).
  double latency_mult = 1.0;
  double loss_add = 0.0;
  double bandwidth_mult = 1.0;
  std::uint64_t id = 0;  // container id (ContainerKill) / lease id (optional)
  // CheckpointTruncate: fraction of the next upload's bytes that survive.
  double truncate_frac = 0.5;
  // LoadSpike: offered-load multiplier while the fault is active; the
  // recovery half restores the multiplier to 1.
  double load_mult = 4.0;
};

/// Knobs for random_plan(): a horizon, a fault budget, and the blast
/// radius (which host to partition, which link to degrade).
struct RandomPlanOptions {
  double horizon_s = 60.0;
  std::size_t faults = 4;
  double mean_duration_s = 5.0;
  std::string partition_host;  // empty: no partitions generated
  /// Additional partition candidates; each generated partition picks
  /// uniformly among partition_host + partition_hosts, so a geo-sharded
  /// fleet sees chaos hit different sites across one plan.
  std::vector<std::string> partition_hosts;
  std::string link_from;       // empty: no link degradation generated
  std::string link_to;
  double latency_mult = 5.0;
  double loss_add = 0.3;
  /// Federated clients eligible for generated ClientDropout windows; each
  /// generated dropout picks uniformly among them. Empty: no dropouts —
  /// and the generated plan is bitwise identical to pre-federated plans
  /// for the same seed (the extra draws only happen when this is set).
  std::vector<std::string> client_dropout_hosts;
};

/// Attach points for the federated-learning tier (fault:: stays free of a
/// fed:: dependency — the aggregator hands these in, mirroring
/// attach_load). Either hook may be empty; injecting the matching fault
/// kind then throws at inject() time.
struct FedHooks {
  /// FaultKind::ClientDropout: called with down=true when the client
  /// vanishes and down=false on the recovery half (duration > 0).
  std::function<void(const std::string& client, bool down)> client_state;
  /// FaultKind::DeltaCorrupt (one-shot): the client's next weight-delta
  /// upload is corrupted in transit; the CRC envelope catches it at load.
  std::function<void(const std::string& client)> corrupt_next_delta;
};

/// Tick window for ChaosEngine::arm_preemption(): the fatal tick is drawn
/// uniformly in [min_tick, max_tick] from the engine seed. ml::Trainer
/// ticks twice per batch, so a window of [1, 2*batches] can kill at any
/// boundary or mid-batch point.
struct PreemptPlanOptions {
  std::uint64_t min_tick = 1;
  std::uint64_t max_tick = 16;
};

class ChaosEngine {
 public:
  ChaosEngine(util::EventQueue& queue, std::uint64_t seed = 42);

  // Wire up the subsystems this engine may break. Injecting a fault whose
  // subsystem is not attached throws std::logic_error at inject() time.
  void attach_network(net::Network& network);
  void attach_registry(edge::EdgeRegistry& registry);
  void attach_containers(edge::ContainerService& containers);
  void attach_leases(testbed::LeaseManager& leases);
  void attach_checkpoints(ckpt::CheckpointStore& checkpoints);
  /// Wires a load source (e.g. serve::FleetService::set_load_factor) for
  /// FaultKind::LoadSpike: apply calls hook(spec.load_mult), the recovery
  /// half calls hook(1.0).
  void attach_load(std::function<void(double)> hook);
  /// Wires the federated tier (fed::Aggregator::fault_hooks()) for
  /// FaultKind::ClientDropout / DeltaCorrupt.
  void attach_fed(FedHooks hooks);

  /// Schedules one fault (and its recovery when duration > 0).
  void inject(const FaultSpec& spec);
  void inject_plan(const std::vector<FaultSpec>& plan);

  /// Generates a reproducible plan from the engine's seed: partition and
  /// link-degradation windows at random times within the horizon.
  std::vector<FaultSpec> random_plan(const RandomPlanOptions& options);

  /// Arms a training kill (FaultKind::TrainPreempt): draws the fatal tick
  /// from the engine seed, arms the token, and hooks its on_fire so the
  /// kill lands in the report/trace the moment the loop dies. Returns the
  /// drawn tick so experiments can print/replay it.
  std::uint64_t arm_preemption(PreemptionToken& token,
                               const PreemptPlanOptions& options = {});

  /// Called by the driver after a preempted stage resumed: credits the
  /// checkpoint subsystem with the batches it saved and charges the kill
  /// with the batches it destroyed. Recorded as the recovery half of the
  /// TrainPreempt fault.
  void record_preempt_outcome(std::size_t batches_lost,
                              std::size_t batches_recovered);

  const ChaosReport& report() const { return report_; }

  /// Wires the observability sinks (either may be null): every injection
  /// and recovery becomes a "chaos.<kind>" trace instant plus counters, so
  /// exported traces show faults inline with the spans they perturb.
  void instrument(obs::Tracer* tracer, obs::MetricsRegistry* metrics);

 private:
  void apply(const FaultSpec& spec);
  void revert(const FaultSpec& spec);
  void record(FaultKind kind, const std::string& target, bool recovery,
              std::string detail);

  util::EventQueue& queue_;
  util::Rng rng_;
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  net::Network* network_ = nullptr;
  edge::EdgeRegistry* registry_ = nullptr;
  edge::ContainerService* containers_ = nullptr;
  testbed::LeaseManager* leases_ = nullptr;
  ckpt::CheckpointStore* checkpoints_ = nullptr;
  std::function<void(double)> load_hook_;
  FedHooks fed_;
  ChaosReport report_;
};

}  // namespace autolearn::fault
