#include "fault/circuit_breaker.hpp"

#include <stdexcept>

namespace autolearn::fault {

void CircuitBreakerConfig::validate() const {
  if (failure_threshold < 1) {
    throw std::invalid_argument("breaker: failure_threshold must be >= 1");
  }
  if (open_duration_s <= 0) {
    throw std::invalid_argument("breaker: open_duration_s must be > 0");
  }
  if (half_open_successes < 1) {
    throw std::invalid_argument("breaker: half_open_successes must be >= 1");
  }
}

CircuitBreaker::CircuitBreaker(CircuitBreakerConfig config) : config_(config) {
  config_.validate();
}

void CircuitBreaker::moved(State from, double now) {
  if (on_transition_) on_transition_(from, state_, now);
}

void CircuitBreaker::trip(double now) {
  const State from = state_;
  if (state_ == State::Closed) degraded_since_ = now;
  state_ = State::Open;
  opened_at_ = now;
  last_opened_at_ = now;
  half_open_hits_ = 0;
  consecutive_failures_ = 0;
  ++times_opened_;
  moved(from, now);
}

bool CircuitBreaker::allow(double now) {
  switch (state_) {
    case State::Closed:
      return true;
    case State::Open:
      if (now - opened_at_ >= config_.open_duration_s) {
        state_ = State::HalfOpen;
        half_open_hits_ = 0;
        moved(State::Open, now);
        return true;
      }
      return false;
    case State::HalfOpen:
      return true;
  }
  return false;
}

void CircuitBreaker::record_success(double now) {
  switch (state_) {
    case State::Closed:
      consecutive_failures_ = 0;
      break;
    case State::Open:
      break;  // success reported for a call admitted before the trip
    case State::HalfOpen:
      if (++half_open_hits_ >= config_.half_open_successes) {
        state_ = State::Closed;
        consecutive_failures_ = 0;
        if (degraded_since_ >= 0) {
          degraded_total_s_ += now - degraded_since_;
          degraded_since_ = -1.0;
        }
        last_closed_at_ = now;
        moved(State::HalfOpen, now);
      }
      break;
  }
}

void CircuitBreaker::record_failure(double now) {
  switch (state_) {
    case State::Closed:
      if (++consecutive_failures_ >= config_.failure_threshold) trip(now);
      break;
    case State::Open:
      break;
    case State::HalfOpen:
      trip(now);  // probe failed: back to a full cool-down
      break;
  }
}

double CircuitBreaker::degraded_s(double now) const {
  double total = degraded_total_s_;
  if (degraded_since_ >= 0 && now > degraded_since_) {
    total += now - degraded_since_;
  }
  return total;
}

const char* to_string(CircuitBreaker::State s) {
  switch (s) {
    case CircuitBreaker::State::Closed: return "closed";
    case CircuitBreaker::State::Open: return "open";
    case CircuitBreaker::State::HalfOpen: return "half-open";
  }
  return "?";
}

}  // namespace autolearn::fault
