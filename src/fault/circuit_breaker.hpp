// Circuit breaker guarding calls into an unreliable remote tier.
//
// Closed: calls flow; consecutive failures count up. At the threshold the
// breaker trips Open and calls are denied outright (no timeouts burned on
// a partitioned cloud). After open_duration_s the next allow() moves to
// HalfOpen and lets probe calls through: enough successes re-close the
// breaker, any failure re-trips it. Driven entirely by caller-supplied
// virtual time so simulated runs are reproducible.
#pragma once

#include <cstddef>
#include <functional>

namespace autolearn::fault {

struct CircuitBreakerConfig {
  int failure_threshold = 3;     // consecutive failures that trip the breaker
  double open_duration_s = 2.0;  // cool-down before half-open probing
  int half_open_successes = 1;   // probe successes required to re-close

  void validate() const;
};

class CircuitBreaker {
 public:
  enum class State { Closed, Open, HalfOpen };

  explicit CircuitBreaker(CircuitBreakerConfig config = {});

  /// True when a call may proceed now. Transitions Open -> HalfOpen once
  /// the cool-down has elapsed.
  bool allow(double now);

  void record_success(double now);
  void record_failure(double now);

  State state() const { return state_; }

  /// Number of transitions into Open (failovers to the degraded mode).
  std::size_t times_opened() const { return times_opened_; }

  /// Cumulative seconds spent not Closed, up to `now`.
  double degraded_s(double now) const;

  /// Time of the most recent trip / re-close; -1 when it never happened.
  double last_opened_at() const { return last_opened_at_; }
  double last_closed_at() const { return last_closed_at_; }

  /// Observer for every state transition (trip, half-open probe window,
  /// re-close), fired after the state has changed. Used by the
  /// observability layer to emit trace instants and transition counters.
  using TransitionHook = std::function<void(State from, State to, double now)>;
  void set_on_transition(TransitionHook hook) { on_transition_ = std::move(hook); }

 private:
  void trip(double now);
  void moved(State from, double now);

  TransitionHook on_transition_;
  CircuitBreakerConfig config_;
  State state_ = State::Closed;
  int consecutive_failures_ = 0;
  int half_open_hits_ = 0;
  std::size_t times_opened_ = 0;
  double opened_at_ = -1.0;       // current outage start (Open entry)
  double degraded_since_ = -1.0;  // first left Closed in current outage
  double degraded_total_s_ = 0.0;
  double last_opened_at_ = -1.0;
  double last_closed_at_ = -1.0;
};

const char* to_string(CircuitBreaker::State s);

}  // namespace autolearn::fault
