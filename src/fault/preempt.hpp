// Cooperative preemption for compute loops that run *between* events on
// the virtual clock (ml::Trainer's fit most of all).
//
// A Chameleon lease ending mid-fit is a SIGKILL: the process gets no
// chance to checkpoint. We model that with a PreemptionToken armed at a
// "tick" — the instrumented loop calls tick() at every preemption point
// (ml::Trainer ticks at each batch boundary and again mid-batch, right
// after the GEMM-backed train_batch), and when the armed tick is reached
// the loop throws PreemptedError. Work since the last durable checkpoint
// is lost, exactly like a real kill; recovery restarts from the
// CheckpointStore. ChaosEngine::arm_preemption() draws the fatal tick from
// the engine seed so kill points are reproducible experiment inputs.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>

namespace autolearn::fault {

/// Thrown by an instrumented loop at its armed preemption point.
class PreemptedError : public std::runtime_error {
 public:
  PreemptedError(std::uint64_t tick, const std::string& what)
      : std::runtime_error(what), tick_(tick) {}
  /// The tick count at which the kill fired.
  std::uint64_t tick() const { return tick_; }

 private:
  std::uint64_t tick_;
};

class PreemptionToken {
 public:
  /// Arms the token: tick() returns true when the running tick count
  /// reaches `fire_tick` (1-based; tick 1 is the first preemption point).
  void arm(std::uint64_t fire_tick) {
    fire_tick_ = fire_tick;
    fired_ = false;
  }

  bool armed() const { return fire_tick_ != 0 && !fired_; }
  std::uint64_t fire_tick() const { return fire_tick_; }
  std::uint64_t ticks() const { return ticks_; }
  bool fired() const { return fired_; }

  /// Notifies an observer (the chaos engine records the kill in its
  /// report) the moment the token fires.
  void set_on_fire(std::function<void(std::uint64_t)> cb) {
    on_fire_ = std::move(cb);
  }

  /// Called by the instrumented loop at each preemption point. Returns
  /// true exactly once, at the armed tick; the loop then throws
  /// PreemptedError without checkpointing (kill semantics).
  bool tick() {
    ++ticks_;
    if (!armed() || ticks_ < fire_tick_) return false;
    fired_ = true;
    if (on_fire_) on_fire_(ticks_);
    return true;
  }

  /// Resets the running tick count (a resumed run starts a new process —
  /// its preemption clock starts over). Does not re-arm a fired token.
  void reset_ticks() { ticks_ = 0; }

 private:
  std::uint64_t fire_tick_ = 0;
  std::uint64_t ticks_ = 0;
  bool fired_ = false;
  std::function<void(std::uint64_t)> on_fire_;
};

}  // namespace autolearn::fault
