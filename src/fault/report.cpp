#include "fault/report.hpp"

#include <sstream>

namespace autolearn::fault {

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::LinkDegrade: return "link-degrade";
    case FaultKind::Partition: return "partition";
    case FaultKind::DeviceCrash: return "device-crash";
    case FaultKind::ContainerKill: return "container-kill";
    case FaultKind::LeasePreempt: return "lease-preempt";
    case FaultKind::TransferFlap: return "transfer-flap";
    case FaultKind::TrainPreempt: return "train-preempt";
    case FaultKind::CheckpointTruncate: return "checkpoint-truncate";
    case FaultKind::LoadSpike: return "load-spike";
    case FaultKind::ClientDropout: return "client-dropout";
    case FaultKind::DeltaCorrupt: return "delta-corrupt";
  }
  return "?";
}

bool operator==(const InjectedEvent& a, const InjectedEvent& b) {
  return a.time == b.time && a.kind == b.kind && a.target == b.target &&
         a.recovery == b.recovery && a.detail == b.detail;
}

std::size_t ChaosReport::count(FaultKind k, bool recoveries) const {
  std::size_t n = 0;
  for (const InjectedEvent& e : timeline) {
    if (e.kind == k && e.recovery == recoveries) ++n;
  }
  return n;
}

std::string ChaosReport::summary() const {
  std::ostringstream os;
  os << "chaos: " << injected << " faults, " << recovered << " recoveries, "
     << partition_s << "s partitioned, " << degraded_link_s
     << "s degraded links\n";
  if (preemptions > 0) {
    os << "  preemption: " << preemptions << " kill(s), " << batches_lost
       << " batch(es) of work lost, " << batches_recovered
       << " batch(es) recovered from checkpoints\n";
  }
  for (const InjectedEvent& e : timeline) {
    os << "  t=" << e.time << " " << (e.recovery ? "heal " : "fault ")
       << to_string(e.kind) << " " << e.target;
    if (!e.detail.empty()) os << " (" << e.detail << ")";
    os << "\n";
  }
  return os.str();
}

bool operator==(const ChaosReport& a, const ChaosReport& b) {
  return a.timeline == b.timeline && a.injected == b.injected &&
         a.recovered == b.recovered && a.partition_s == b.partition_s &&
         a.degraded_link_s == b.degraded_link_s &&
         a.preemptions == b.preemptions &&
         a.batches_lost == b.batches_lost &&
         a.batches_recovered == b.batches_recovered;
}

}  // namespace autolearn::fault
