// Chaos bookkeeping: what was injected, and how the system degraded.
//
// ChaosReport is the ground-truth timeline of injected faults and
// recoveries (identical across runs with the same seed and plan);
// DegradationStats is the observed cost on the control loop, surfaced
// through eval::EvalResult and core::PipelineReport.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace autolearn::fault {

enum class FaultKind {
  LinkDegrade,        // latency/loss/bandwidth multipliers on a link
  Partition,          // a host drops off the routing graph
  DeviceCrash,        // an edge device stops heartbeating
  ContainerKill,      // a container transitions to Failed
  LeasePreempt,       // a testbed lease ends early
  TransferFlap,       // transient full-loss window on a link (drops transfers)
  TrainPreempt,       // SIGKILL of a training loop mid-fit (PreemptionToken)
  CheckpointTruncate, // torn checkpoint upload the object store accepted
  LoadSpike,          // offered-load multiplier on an attached load source
  ClientDropout,      // a federated client vanishes mid-round
  DeltaCorrupt        // a client's next weight-delta upload is corrupted
};

const char* to_string(FaultKind k);

struct InjectedEvent {
  double time = 0.0;
  FaultKind kind{};
  std::string target;
  bool recovery = false;  // true for the heal/restart half of a fault
  std::string detail;
};

bool operator==(const InjectedEvent& a, const InjectedEvent& b);

struct ChaosReport {
  std::vector<InjectedEvent> timeline;  // in execution order

  std::size_t injected = 0;   // fault halves
  std::size_t recovered = 0;  // recovery halves
  double partition_s = 0.0;   // scheduled partition seconds
  double degraded_link_s = 0.0;  // scheduled degrade/flap seconds
  // Preemption accounting (filled by arm_preemption / the resumed loop):
  // work lost is batches trained after the last durable checkpoint and
  // thrown away by the kill; work recovered is batches skipped on resume
  // because a checkpoint already held them.
  std::size_t preemptions = 0;
  std::size_t batches_lost = 0;
  std::size_t batches_recovered = 0;

  std::size_t count(FaultKind k, bool recoveries = false) const;
  /// One-line-per-event human-readable dump; equal for equal timelines.
  std::string summary() const;
};

bool operator==(const ChaosReport& a, const ChaosReport& b);

/// Degradation observed by a resilient component (e.g. the hybrid pilot's
/// circuit breaker around cloud inference).
struct DegradationStats {
  double cloud_usage = 0.0;        // fraction of steps served by the cloud
  std::size_t failovers = 0;       // breaker trips (edge took over)
  std::size_t denied_calls = 0;    // cloud calls skipped while open
  double degraded_time_s = 0.0;    // time with the breaker not Closed
  double recovery_latency_s = 0.0; // breaker re-close -> first cloud command
};

}  // namespace autolearn::fault
