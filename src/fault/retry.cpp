#include "fault/retry.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace autolearn::fault {

void RetryPolicy::validate() const {
  if (max_attempts < 1) {
    throw std::invalid_argument("retry: max_attempts must be >= 1");
  }
  if (base_delay_s < 0 || max_delay_s < 0 || attempt_timeout_s < 0) {
    throw std::invalid_argument("retry: negative delay");
  }
  if (multiplier < 1.0) {
    throw std::invalid_argument("retry: multiplier must be >= 1");
  }
  if (max_delay_s < base_delay_s) {
    throw std::invalid_argument("retry: max_delay below base_delay");
  }
}

double RetryPolicy::backoff_s(int failures, double& prev_delay,
                              util::Rng& rng) const {
  if (failures < 1) throw std::invalid_argument("retry: failures must be >= 1");
  const double target = std::min(
      max_delay_s, base_delay_s * std::pow(multiplier, failures - 1));
  double delay = target;
  switch (jitter) {
    case Jitter::None:
      break;
    case Jitter::Full:
      delay = target > 0 ? rng.uniform(0.0, target) : 0.0;
      break;
    case Jitter::Decorrelated: {
      const double hi = std::max(base_delay_s, prev_delay * 3.0);
      delay = hi > base_delay_s ? rng.uniform(base_delay_s, hi) : base_delay_s;
      delay = std::min(delay, max_delay_s);
      break;
    }
  }
  prev_delay = delay;
  return delay;
}

RetryPolicy RetryPolicy::none() {
  RetryPolicy p;
  p.max_attempts = 1;
  p.base_delay_s = 0.0;
  p.jitter = Jitter::None;
  return p;
}

RetryPolicy RetryPolicy::immediate(int attempts) {
  RetryPolicy p;
  p.max_attempts = attempts;
  p.base_delay_s = 0.0;
  p.max_delay_s = 0.0;
  p.jitter = Jitter::None;
  return p;
}

RetryPolicy RetryPolicy::standard() { return RetryPolicy{}; }

RetryState::RetryState(RetryPolicy policy) : policy_(policy) {
  policy_.validate();
}

double RetryState::next_backoff_s(util::Rng& rng) {
  return policy_.backoff_s(std::max(1, attempts_), prev_delay_, rng);
}

}  // namespace autolearn::fault
