// Reusable retry policy: exponential backoff with optional jitter.
//
// The continuum substrate is flaky by design — Wi-Fi drops, leases end,
// links partition — so every retried operation (bulk transfers, container
// image pulls) shares one policy object instead of ad-hoc counters. The
// backoff schedule follows the classic exponential curve with either no
// jitter (deterministic analysis), full jitter (uniform in [0, target]),
// or decorrelated jitter (AWS-style: uniform in [base, 3 * previous]),
// all capped at max_delay_s and driven by an explicit Rng so fault
// timelines replay bit-for-bit from a seed.
#pragma once

#include "util/rng.hpp"

namespace autolearn::fault {

struct RetryPolicy {
  enum class Jitter { None, Full, Decorrelated };

  int max_attempts = 4;          // total attempts, including the first
  double base_delay_s = 0.5;     // backoff after the first failure
  double multiplier = 2.0;       // exponential growth factor
  double max_delay_s = 30.0;     // backoff cap
  double attempt_timeout_s = 0.0;  // per-attempt budget; 0 disables
  Jitter jitter = Jitter::Decorrelated;

  /// Throws std::invalid_argument on nonsensical knobs.
  void validate() const;

  /// Backoff before the next attempt, given how many attempts have already
  /// failed (>= 1). `prev_delay` carries the previous backoff for
  /// decorrelated jitter and is updated in place.
  double backoff_s(int failures, double& prev_delay, util::Rng& rng) const;

  /// Single attempt, no retries.
  static RetryPolicy none();
  /// Legacy bare-counter behavior: `attempts` tries with zero backoff.
  static RetryPolicy immediate(int attempts);
  /// Sensible default for simulated WAN operations.
  static RetryPolicy standard();
};

/// Per-operation cursor over a RetryPolicy: counts attempts and carries the
/// decorrelated-jitter state.
class RetryState {
 public:
  explicit RetryState(RetryPolicy policy);

  int attempts() const { return attempts_; }
  bool exhausted() const { return attempts_ >= policy_.max_attempts; }
  const RetryPolicy& policy() const { return policy_; }

  /// Marks one attempt as started.
  void record_attempt() { ++attempts_; }

  /// Backoff to wait before the next attempt (call after a failure).
  double next_backoff_s(util::Rng& rng);

 private:
  RetryPolicy policy_;
  int attempts_ = 0;
  double prev_delay_ = 0.0;
};

}  // namespace autolearn::fault
