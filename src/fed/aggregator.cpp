#include "fed/aggregator.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>
#include <stdexcept>

namespace autolearn::fed {
namespace {

// Raw little-endian POD codec for the aggregator's checkpoint state.
// Matches the repo's other Checkpointable implementations: the bytes ride
// inside a CRC envelope, so framing errors surface as quarantine, and a
// short read here means a bug, not user input.
template <typename T>
void put_pod(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T get_pod(std::istream& is) {
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!is) {
    throw std::runtime_error("fed: truncated aggregator checkpoint state");
  }
  return value;
}

void put_str(std::ostream& os, const std::string& s) {
  put_pod<std::uint64_t>(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string get_str(std::istream& is) {
  const auto n = get_pod<std::uint64_t>(is);
  std::string s(static_cast<std::size_t>(n), '\0');
  is.read(s.data(), static_cast<std::streamsize>(n));
  if (!is) {
    throw std::runtime_error("fed: truncated aggregator checkpoint state");
  }
  return s;
}

void put_client(std::ostream& os, const ClientRoundRecord& c) {
  put_str(os, c.client);
  put_pod<std::uint8_t>(os, static_cast<std::uint8_t>(c.outcome));
  put_pod<std::uint64_t>(os, c.examples);
  put_pod<double>(os, c.backoff_s);
  put_pod<double>(os, c.upload_start_s);
  put_pod<double>(os, c.committed_s);
  put_str(os, c.detail);
}

ClientRoundRecord get_client(std::istream& is) {
  ClientRoundRecord c;
  c.client = get_str(is);
  c.outcome = static_cast<ClientOutcome>(get_pod<std::uint8_t>(is));
  c.examples = get_pod<std::uint64_t>(is);
  c.backoff_s = get_pod<double>(is);
  c.upload_start_s = get_pod<double>(is);
  c.committed_s = get_pod<double>(is);
  c.detail = get_str(is);
  return c;
}

void put_round(std::ostream& os, const RoundRecord& r) {
  put_pod<std::uint64_t>(os, r.round);
  put_pod<double>(os, r.started_s);
  put_pod<double>(os, r.cutoff_s);
  put_pod<double>(os, r.finished_s);
  put_pod<std::uint64_t>(os, r.base_version);
  put_pod<std::uint64_t>(os, r.published_version);
  put_pod<std::uint8_t>(os, r.quorum_met ? 1 : 0);
  put_pod<std::uint8_t>(os, r.promoted ? 1 : 0);
  put_pod<std::uint8_t>(os, r.rolled_back ? 1 : 0);
  put_pod<std::uint64_t>(os, r.accepted);
  put_pod<std::uint64_t>(os, r.total_examples);
  put_pod<std::uint64_t>(os, r.clients.size());
  for (const ClientRoundRecord& c : r.clients) put_client(os, c);
}

RoundRecord get_round(std::istream& is) {
  RoundRecord r;
  r.round = get_pod<std::uint64_t>(is);
  r.started_s = get_pod<double>(is);
  r.cutoff_s = get_pod<double>(is);
  r.finished_s = get_pod<double>(is);
  r.base_version = get_pod<std::uint64_t>(is);
  r.published_version = get_pod<std::uint64_t>(is);
  r.quorum_met = get_pod<std::uint8_t>(is) != 0;
  r.promoted = get_pod<std::uint8_t>(is) != 0;
  r.rolled_back = get_pod<std::uint8_t>(is) != 0;
  r.accepted = static_cast<std::size_t>(get_pod<std::uint64_t>(is));
  r.total_examples = get_pod<std::uint64_t>(is);
  const auto n = get_pod<std::uint64_t>(is);
  r.clients.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) r.clients.push_back(get_client(is));
  return r;
}

constexpr std::uint32_t kStateVersion = 1;

}  // namespace

void FedOptions::validate() const {
  if (rounds == 0) {
    throw std::invalid_argument("fed: rounds must be >= 1");
  }
  if (!std::isfinite(round_timeout_s) || round_timeout_s <= 0) {
    throw std::invalid_argument("fed: round_timeout_s must be positive");
  }
  if (!std::isfinite(quorum_frac) || quorum_frac <= 0 || quorum_frac > 1) {
    throw std::invalid_argument("fed: quorum_frac must be in (0, 1]");
  }
  if (!std::isfinite(server_lr) || server_lr <= 0) {
    throw std::invalid_argument("fed: server_lr must be positive");
  }
  if (!std::isfinite(retry_backoff_s) || retry_backoff_s < 0) {
    throw std::invalid_argument("fed: retry_backoff_s must be >= 0");
  }
  if (!std::isfinite(backoff_mult) || backoff_mult < 1) {
    throw std::invalid_argument("fed: backoff_mult must be >= 1");
  }
  if (!std::isfinite(max_backoff_s) || max_backoff_s < retry_backoff_s) {
    throw std::invalid_argument("fed: max_backoff_s must be >= retry_backoff_s");
  }
  if (!std::isfinite(upload_jitter_s) || upload_jitter_s < 0) {
    throw std::invalid_argument("fed: upload_jitter_s must be >= 0");
  }
  if (cloud_host.empty()) {
    throw std::invalid_argument("fed: cloud_host must be non-empty");
  }
  if (delta_container.empty() || state_container.empty() ||
      ckpt_key.empty()) {
    throw std::invalid_argument(
        "fed: delta_container/state_container/ckpt_key must be non-empty");
  }
  if (canary_gate) canary.validate();
}

Aggregator::Aggregator(util::EventQueue& queue,
                       serve::ReplicatedRegistry& registry,
                       net::TransferManager& transfers,
                       objectstore::ObjectStore& store, ml::ModelType type,
                       ml::ModelConfig config, FedOptions options)
    : queue_(queue),
      registry_(registry),
      transfers_(transfers),
      objects_(store),
      type_(type),
      config_(config),
      options_(std::move(options)),
      rng_(options_.seed) {
  options_.validate();
  ckpt::StoreOptions so;
  so.container = options_.state_container;
  state_store_ = std::make_unique<ckpt::CheckpointStore>(objects_, so);
}

std::string Aggregator::delta_key(std::size_t client) const {
  return "fed/" + clients_[client]->name() + "/delta";
}

std::size_t Aggregator::add_client(ClientOptions copts,
                                   std::vector<ml::Sample> slice) {
  for (const auto& existing : clients_) {
    if (existing->name() == copts.name) {
      throw std::invalid_argument("fed: duplicate client name " + copts.name);
    }
  }
  const std::size_t index = clients_.size();
  clients_.push_back(std::make_unique<EdgeClient>(std::move(copts), type_,
                                                  config_, std::move(slice)));

  ckpt::StoreOptions so;
  so.container = options_.delta_container;
  auto store = std::make_unique<ckpt::CheckpointStore>(objects_, so);
  store->use_transfer(transfers_, clients_[index]->name(),
                      options_.cloud_host);
  store->instrument(tracer_, metrics_);
  // Timestamps the landing on the virtual clock and meters shipped bytes.
  // A delta landing after its round's cutoff (stale epoch) still counts as
  // shipped bytes but never back-fills a later round's record.
  store->set_commit_hook([this, index](const std::string& key,
                                       std::uint64_t generation,
                                       std::size_t bytes) {
    report_.delta_bytes_shipped += bytes;
    if (metrics_) {
      metrics_->counter("fed.delta.bytes").inc(static_cast<double>(bytes));
    }
    if (index >= record_.clients.size()) return;
    for (const ckpt::GenerationInfo& g : delta_stores_[index]->manifest(key)) {
      if (g.generation == generation && g.info.epoch == record_.round) {
        record_.clients[index].committed_s = queue_.now();
      }
    }
  });
  delta_stores_.push_back(std::move(store));
  down_.push_back(0);
  failure_streak_.push_back(0);
  return index;
}

void Aggregator::set_probes(std::vector<ml::Sample> probes) {
  probes_ = std::move(probes);
}

void Aggregator::instrument(obs::Tracer* tracer,
                            obs::MetricsRegistry* metrics) {
  tracer_ = tracer;
  metrics_ = metrics;
  state_store_->instrument(tracer, metrics);
  for (auto& store : delta_stores_) store->instrument(tracer, metrics);
}

void Aggregator::set_preemption(fault::PreemptionToken* token) {
  preempt_ = token;
}

fault::FedHooks Aggregator::fault_hooks() {
  fault::FedHooks hooks;
  hooks.client_state = [this](const std::string& client, bool down) {
    for (std::size_t i = 0; i < clients_.size(); ++i) {
      if (clients_[i]->name() == client) down_[i] = down ? 1 : 0;
    }
  };
  hooks.corrupt_next_delta = [this](const std::string& client) {
    for (std::size_t i = 0; i < clients_.size(); ++i) {
      if (clients_[i]->name() == client) {
        delta_stores_[i]->corrupt_next_upload();
      }
    }
  };
  return hooks;
}

double Aggregator::backoff_s(std::size_t client) const {
  const std::uint32_t streak = failure_streak_[client];
  if (streak == 0 || options_.retry_backoff_s == 0) return 0.0;
  const double raw = options_.retry_backoff_s *
                     std::pow(options_.backoff_mult,
                              static_cast<double>(streak - 1));
  return std::min(raw, options_.max_backoff_s);
}

void Aggregator::preempt_tick() {
  if (preempt_ && preempt_->tick()) {
    throw fault::PreemptedError(
        preempt_->ticks(),
        "fed aggregator preempted mid-merge (lease expired)");
  }
}

void Aggregator::checkpoint() {
  ckpt::CheckpointInfo info;
  info.epoch = round_index_ + 1;
  info.step = merged_prefix_;
  info.seed = options_.seed;
  ckpt::save_checkpoint(*state_store_, options_.ckpt_key, *this, info);
}

FedReport Aggregator::run() {
  if (clients_.empty()) {
    throw std::logic_error("fed: add_client before run()");
  }
  if (options_.canary_gate && probes_.empty()) {
    throw std::logic_error("fed: canary gate needs probes (set_probes)");
  }

  const bool resumed =
      ckpt::restore_checkpoint(*state_store_, options_.ckpt_key, *this);
  if (resumed) {
    if (metrics_) metrics_->counter("fed.resumes").inc();
    if (tracer_) {
      util::Json args = util::Json::object();
      args.set("round", util::Json(round_index_ + 1));
      args.set("mid_merge", util::Json(phase_ == Phase::Merge));
      args.set("merged_prefix", util::Json(merged_prefix_));
      tracer_->instant("fed.resume", "fed", std::move(args));
    }
  }

  while (round_index_ < options_.rounds) {
    if (phase_ == Phase::Collect) {
      collect_and_cutoff();
      if (!record_.quorum_met) {
        record_.finished_s = queue_.now();
        finalize_round();
        continue;
      }
      phase_ = Phase::Merge;
      acc_.assign(static_cast<std::size_t>(expected_params_), 0.0);
      weight_so_far_ = 0;
      merged_prefix_ = 0;
      checkpoint();  // merge entry point: resume repeats no collect work
    }
    merge_round();
    publish_round();
    finalize_round();
  }
  return report_;
}

void Aggregator::collect_and_cutoff() {
  const double t0 = queue_.now();
  const auto snapshot = registry_.shard(0).current();
  if (!snapshot) {
    throw std::logic_error(
        "fed: bootstrap-publish a model (publish_all) before run()");
  }
  expected_params_ = param_count(*snapshot->model);

  record_ = RoundRecord{};
  record_.round = round_index_ + 1;
  record_.started_s = t0;
  record_.cutoff_s = t0 + options_.round_timeout_s;
  record_.base_version = snapshot->version;
  record_.clients.resize(clients_.size());

  std::vector<char> participant(clients_.size(), 0);
  std::vector<std::size_t> fail_base(clients_.size(), 0);

  for (std::size_t i = 0; i < clients_.size(); ++i) {
    ClientRoundRecord& c = record_.clients[i];
    c.client = clients_[i]->name();
    c.backoff_s = backoff_s(i);
    if (down_[i]) {
      c.outcome = ClientOutcome::Dropout;
      c.detail = "offline at round start";
      continue;
    }
    participant[i] = 1;
    c.outcome = ClientOutcome::Straggler;  // provisional until the scan

    EdgeClient::LocalUpdate update = clients_[i]->compute_update(
        *snapshot->model, snapshot->version, record_.round);
    const double jitter = rng_.uniform(0.0, options_.upload_jitter_s);
    const double at = t0 + c.backoff_s + update.compute_s + jitter;
    c.upload_start_s = at;
    fail_base[i] = delta_stores_[i]->upload_failures();

    std::string payload = encode_delta(update.delta);
    const std::uint64_t round = record_.round;
    queue_.schedule_at(at, [this, i, round,
                            payload = std::move(payload)]() mutable {
      if (record_.round != round) return;  // round moved on; stale upload
      ClientRoundRecord& cr = record_.clients[i];
      if (down_[i]) {
        cr.outcome = ClientOutcome::Dropout;
        cr.detail = "went offline before the upload";
        cr.upload_start_s = -1.0;
        return;
      }
      ckpt::CheckpointInfo info;
      info.epoch = round;
      info.seed = options_.seed;
      info.note = "fed.delta";
      delta_stores_[i]->save(delta_key(i), payload, info);
    });
  }

  queue_.run_until(record_.cutoff_s);

  std::size_t participants = 0;
  for (const char p : participant) participants += p ? 1 : 0;

  accepted_.clear();
  std::uint64_t total_examples = 0;
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    if (!participant[i]) continue;
    ClientRoundRecord& c = record_.clients[i];

    // load_latest quarantines corrupt generations as a side effect, so the
    // manifest scan below sees this round's torn/bit-flipped uploads.
    const auto loaded = delta_stores_[i]->load_latest(delta_key(i));
    bool quarantined_round = false;
    for (const ckpt::GenerationInfo& g :
         delta_stores_[i]->manifest(delta_key(i))) {
      if (g.quarantined && g.info.epoch == record_.round) {
        quarantined_round = true;
      }
    }
    const bool fresh =
        loaded && loaded->generation.info.epoch == record_.round;

    if (fresh) {
      try {
        const WeightDelta d = decode_delta(loaded->payload);
        validate_delta(d, static_cast<std::size_t>(expected_params_));
        c.outcome = ClientOutcome::Accepted;
        c.examples = d.examples;
        c.detail.clear();
        AcceptedEntry entry;
        entry.client = static_cast<std::uint32_t>(i);
        entry.examples = d.examples;
        entry.generation = loaded->generation.generation;
        accepted_.push_back(entry);
        total_examples += d.examples;
      } catch (const DeltaError& e) {
        // Survived the CRC but failed structural/finiteness validation:
        // the second fence. Never merged.
        c.outcome = ClientOutcome::Quarantined;
        c.detail = e.what();
      }
    } else if (quarantined_round) {
      c.outcome = ClientOutcome::Quarantined;
      c.detail = "delta failed the CRC envelope; retrying with backoff";
    } else if (c.outcome == ClientOutcome::Dropout) {
      // Went down before its upload fired; detail set by the upload event.
    } else if (down_[i]) {
      c.outcome = ClientOutcome::Dropout;
      c.detail = "went offline mid-round";
    } else if (delta_stores_[i]->upload_failures() > fail_base[i]) {
      c.outcome = ClientOutcome::TransferFailed;
      c.detail = "transfer attempts exhausted";
    } else {
      c.outcome = ClientOutcome::Straggler;
      c.detail = "missed the cutoff";
    }
  }

  record_.accepted = accepted_.size();
  record_.total_examples = total_examples;
  const auto need = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(
             options_.quorum_frac * static_cast<double>(participants))));
  record_.quorum_met = participants > 0 && accepted_.size() >= need;

  if (tracer_) {
    util::Json args = util::Json::object();
    args.set("round", util::Json(record_.round));
    args.set("participants", util::Json(std::uint64_t{participants}));
    args.set("accepted", util::Json(std::uint64_t{record_.accepted}));
    args.set("quorum_met", util::Json(record_.quorum_met));
    tracer_->instant("fed.cutoff", "fed", std::move(args));
  }
}

void Aggregator::merge_round() {
  while (merged_prefix_ < accepted_.size()) {
    preempt_tick();  // armed kill lands here, before the step checkpoints
    const AcceptedEntry& e = accepted_[merged_prefix_];
    const auto loaded =
        delta_stores_[e.client]->load_latest(delta_key(e.client));
    if (!loaded || loaded->generation.generation != e.generation) {
      throw std::logic_error("fed: accepted delta vanished before merge");
    }
    const WeightDelta d = decode_delta(loaded->payload);

    // Running weighted mean: checkpointable after every step, and exactly
    // equal to sum(w_i * d_i) / sum(w_i) once the prefix is complete.
    const double w = static_cast<double>(e.examples);
    const double total = static_cast<double>(weight_so_far_) + w;
    const double keep = static_cast<double>(weight_so_far_) / total;
    const double add = w / total;
    for (std::size_t j = 0; j < acc_.size(); ++j) {
      acc_[j] = acc_[j] * keep + static_cast<double>(d.values[j]) * add;
    }
    weight_so_far_ += e.examples;
    ++merged_prefix_;
    if (metrics_) metrics_->counter("fed.merge.steps").inc();
    checkpoint();  // durable: a kill now loses zero merged work
  }
  preempt_tick();  // pre-publish kill point; resume re-publishes
}

void Aggregator::publish_round() {
  const auto snapshot = registry_.shard(0).current();
  if (!snapshot || snapshot->version != record_.base_version) {
    throw std::logic_error("fed: registry moved under the aggregator "
                           "mid-round; resume requires the same incumbent");
  }

  std::unique_ptr<ml::DrivingModel> merged = ml::make_model(type_, config_);
  {
    std::stringstream weights;
    snapshot->model->save(weights);
    merged->load(weights);
  }
  std::vector<float> step(acc_.size());
  for (std::size_t j = 0; j < acc_.size(); ++j) {
    step[j] = static_cast<float>(options_.server_lr * acc_[j]);
  }
  add_scaled(*merged, step, 1.0f);
  std::shared_ptr<ml::DrivingModel> candidate(std::move(merged));
  const std::string tag = "fed-round-" + std::to_string(record_.round);

  if (options_.canary_gate) {
    const auto outcome = registry_.publish_canary(
        std::move(candidate), tag, options_.canary, probes_, &queue_);
    if (options_.canary.bake_s > 0) {
      queue_.run_until(queue_.now() + options_.canary.bake_s);
    }
    if (!outcome->decided) {
      throw std::logic_error("fed: canary gate never decided");
    }
    record_.promoted = outcome->promoted;
    record_.rolled_back = outcome->rolled_back;
    record_.published_version =
        outcome->promoted ? registry_.shard(0).version() : 0;
  } else {
    record_.published_version =
        registry_.publish_all(std::move(candidate), tag);
    record_.promoted = true;
  }
  record_.finished_s = queue_.now();

  if (tracer_) {
    util::Json args = util::Json::object();
    args.set("round", util::Json(record_.round));
    args.set("promoted", util::Json(record_.promoted));
    args.set("rolled_back", util::Json(record_.rolled_back));
    args.set("version", util::Json(record_.published_version));
    tracer_->instant("fed.publish", "fed", std::move(args));
  }
}

void Aggregator::finalize_round() {
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    switch (record_.clients[i].outcome) {
      case ClientOutcome::Accepted:
        failure_streak_[i] = 0;
        ++report_.deltas_accepted;
        break;
      case ClientOutcome::Straggler:
        ++report_.stragglers;
        break;
      case ClientOutcome::Dropout:
        ++report_.dropouts;
        break;
      case ClientOutcome::TransferFailed:
        ++failure_streak_[i];
        ++report_.transfer_failures;
        break;
      case ClientOutcome::Quarantined:
        ++failure_streak_[i];
        ++report_.deltas_quarantined;
        break;
    }
  }
  if (!record_.quorum_met) {
    ++report_.rounds_no_quorum;
  } else if (record_.rolled_back) {
    ++report_.rounds_rolled_back;
  } else if (record_.promoted) {
    ++report_.rounds_published;
  }

  if (metrics_) {
    metrics_->counter("fed.rounds").inc();
    if (record_.quorum_met) {
      metrics_->counter(record_.rolled_back ? "fed.rounds.rolled_back"
                                            : "fed.rounds.published")
          .inc();
    } else {
      metrics_->counter("fed.rounds.no_quorum").inc();
    }
    metrics_->counter("fed.deltas.accepted")
        .inc(static_cast<double>(record_.accepted));
    metrics_->gauge("fed.round.examples")
        .set(static_cast<double>(record_.total_examples));
  }
  if (tracer_) {
    util::Json args = util::Json::object();
    args.set("round", util::Json(record_.round));
    args.set("base_version", util::Json(record_.base_version));
    args.set("published_version", util::Json(record_.published_version));
    args.set("accepted", util::Json(std::uint64_t{record_.accepted}));
    args.set("quorum_met", util::Json(record_.quorum_met));
    args.set("promoted", util::Json(record_.promoted));
    args.set("rolled_back", util::Json(record_.rolled_back));
    tracer_->complete("fed.round", "fed", record_.started_s,
                      record_.finished_s, std::move(args));
  }

  report_.rounds.push_back(record_);
  record_ = RoundRecord{};
  accepted_.clear();
  acc_.clear();
  weight_so_far_ = 0;
  merged_prefix_ = 0;
  phase_ = Phase::Collect;
  ++round_index_;
  checkpoint();  // round boundary: a later kill resumes into the next round
}

void Aggregator::save_state(std::ostream& os) {
  put_pod<std::uint32_t>(os, kStateVersion);
  const util::RngState rs = rng_.state();
  for (const std::uint64_t word : rs.s) put_pod<std::uint64_t>(os, word);
  put_pod<double>(os, rs.cached_normal);
  put_pod<std::uint8_t>(os, rs.has_cached_normal ? 1 : 0);

  put_pod<std::uint64_t>(os, round_index_);
  put_pod<std::uint8_t>(os, static_cast<std::uint8_t>(phase_));
  put_pod<std::uint64_t>(os, expected_params_);
  put_pod<std::uint64_t>(os, weight_so_far_);
  put_pod<std::uint64_t>(os, merged_prefix_);

  put_pod<std::uint64_t>(os, accepted_.size());
  for (const AcceptedEntry& e : accepted_) {
    put_pod<std::uint32_t>(os, e.client);
    put_pod<std::uint64_t>(os, e.examples);
    put_pod<std::uint64_t>(os, e.generation);
  }
  put_pod<std::uint64_t>(os, acc_.size());
  for (const double v : acc_) put_pod<double>(os, v);
  put_pod<std::uint64_t>(os, failure_streak_.size());
  for (const std::uint32_t s : failure_streak_) put_pod<std::uint32_t>(os, s);

  put_round(os, record_);

  put_pod<std::uint64_t>(os, report_.rounds.size());
  for (const RoundRecord& r : report_.rounds) put_round(os, r);
  put_pod<std::uint64_t>(os, report_.rounds_published);
  put_pod<std::uint64_t>(os, report_.rounds_rolled_back);
  put_pod<std::uint64_t>(os, report_.rounds_no_quorum);
  put_pod<std::uint64_t>(os, report_.deltas_accepted);
  put_pod<std::uint64_t>(os, report_.deltas_quarantined);
  put_pod<std::uint64_t>(os, report_.stragglers);
  put_pod<std::uint64_t>(os, report_.dropouts);
  put_pod<std::uint64_t>(os, report_.transfer_failures);
  put_pod<std::uint64_t>(os, report_.delta_bytes_shipped);
}

void Aggregator::load_state(std::istream& is) {
  const auto version = get_pod<std::uint32_t>(is);
  if (version != kStateVersion) {
    throw std::runtime_error("fed: aggregator state from a future format");
  }
  util::RngState rs;
  for (std::uint64_t& word : rs.s) word = get_pod<std::uint64_t>(is);
  rs.cached_normal = get_pod<double>(is);
  rs.has_cached_normal = get_pod<std::uint8_t>(is) != 0;
  rng_.set_state(rs);

  round_index_ = get_pod<std::uint64_t>(is);
  phase_ = static_cast<Phase>(get_pod<std::uint8_t>(is));
  expected_params_ = get_pod<std::uint64_t>(is);
  weight_so_far_ = get_pod<std::uint64_t>(is);
  merged_prefix_ = get_pod<std::uint64_t>(is);

  accepted_.clear();
  const auto n_accepted = get_pod<std::uint64_t>(is);
  for (std::uint64_t i = 0; i < n_accepted; ++i) {
    AcceptedEntry e;
    e.client = get_pod<std::uint32_t>(is);
    e.examples = get_pod<std::uint64_t>(is);
    e.generation = get_pod<std::uint64_t>(is);
    accepted_.push_back(e);
  }
  acc_.clear();
  const auto n_acc = get_pod<std::uint64_t>(is);
  for (std::uint64_t i = 0; i < n_acc; ++i) {
    acc_.push_back(get_pod<double>(is));
  }
  failure_streak_.clear();
  const auto n_streak = get_pod<std::uint64_t>(is);
  for (std::uint64_t i = 0; i < n_streak; ++i) {
    failure_streak_.push_back(get_pod<std::uint32_t>(is));
  }
  if (failure_streak_.size() != clients_.size()) {
    throw std::runtime_error(
        "fed: aggregator checkpoint was written for a different client set");
  }

  record_ = get_round(is);

  report_ = FedReport{};
  const auto n_rounds = get_pod<std::uint64_t>(is);
  for (std::uint64_t i = 0; i < n_rounds; ++i) {
    report_.rounds.push_back(get_round(is));
  }
  report_.rounds_published =
      static_cast<std::size_t>(get_pod<std::uint64_t>(is));
  report_.rounds_rolled_back =
      static_cast<std::size_t>(get_pod<std::uint64_t>(is));
  report_.rounds_no_quorum =
      static_cast<std::size_t>(get_pod<std::uint64_t>(is));
  report_.deltas_accepted =
      static_cast<std::size_t>(get_pod<std::uint64_t>(is));
  report_.deltas_quarantined =
      static_cast<std::size_t>(get_pod<std::uint64_t>(is));
  report_.stragglers = static_cast<std::size_t>(get_pod<std::uint64_t>(is));
  report_.dropouts = static_cast<std::size_t>(get_pod<std::uint64_t>(is));
  report_.transfer_failures =
      static_cast<std::size_t>(get_pod<std::uint64_t>(is));
  report_.delta_bytes_shipped = get_pod<std::uint64_t>(is);
}

}  // namespace autolearn::fed
