// Cloud-side FedAvg aggregator, designed failure-first.
//
// One Aggregator owns the round loop of the paper's federated continual
// learning story: every round it asks each reachable car to fine-tune the
// incumbent on its private slice, collects the resulting weight deltas
// through the simulated network (each delta rides a ckpt:: CRC envelope
// over net::TransferManager), merges the example-weighted average of the
// deltas that beat the straggler cutoff, and rolls the merged model out
// through serve::ReplicatedRegistry's canary gate so a bad round rolls
// itself back.
//
// Failure semantics, in the order chaos will find them:
//
//   - Straggler cutoff: the round admits exactly the deltas whose uploads
//     committed by t0 + round_timeout_s, scanned in client-index order —
//     the accepted subset is a deterministic function of the timeline.
//   - Quorum: fewer than ceil(quorum_frac * participants) accepted deltas
//     means the round publishes nothing (the incumbent keeps serving) and
//     every sender retries next round.
//   - Torn / corrupt uploads (CheckpointTruncate, DeltaCorrupt): the CRC
//     envelope quarantines them at load; decode + validate_delta() are a
//     second fence, so no undetected-corrupt delta is ever merged. The
//     sender's next upload is delayed by an exponential backoff.
//   - Client dropout (ClientDropout): an offline car simply misses rounds;
//     it rejoins — with its backoff streak intact — when the fault lifts.
//   - Aggregator preemption (TrainPreempt): the merge loop ticks a
//     PreemptionToken before every merge step and checkpoints
//     {merged partial, accepted set, round RNG, report so far} after each,
//     so a kill loses at most one step and a resumed run() continues to a
//     bitwise-identical published model and an equal FedReport.
//
// The aggregator is itself ckpt::Checkpointable; run() restores from its
// round checkpoint on entry, so calling run() again after a PreemptedError
// IS the recovery path. Resume assumes the same process: the same event
// queue (virtual clock), registry, and delta stores are still alive —
// exactly the scope a lease-preempted aggregator node restarts with.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "fault/chaos.hpp"
#include "fault/preempt.hpp"
#include "fed/client.hpp"
#include "fed/report.hpp"
#include "ml/driving_model.hpp"
#include "net/transfer.hpp"
#include "objectstore/objectstore.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/replication.hpp"
#include "testbed/topology.hpp"
#include "util/event_queue.hpp"
#include "util/rng.hpp"

namespace autolearn::fed {

struct FedOptions {
  /// Rounds to run (or finish, when resuming a preempted run).
  std::uint64_t rounds = 3;
  /// Straggler cutoff: deltas committed after t0 + round_timeout_s wait
  /// for the next round (and are then stale — the client recomputes).
  double round_timeout_s = 30.0;
  /// Quorum fraction of the round's participants (clients online at round
  /// start); the round needs ceil(quorum_frac * participants) accepted
  /// deltas, and always at least one.
  double quorum_frac = 0.5;
  /// Server learning rate: incumbent + server_lr * weighted_mean(deltas).
  double server_lr = 1.0;
  /// Upload retry discipline for clients whose previous delta was
  /// quarantined or whose transfer failed: the next upload waits
  /// retry_backoff_s * backoff_mult^(streak-1), capped at max_backoff_s.
  double retry_backoff_s = 2.0;
  double backoff_mult = 2.0;
  double max_backoff_s = 60.0;
  /// Per-upload jitter drawn from the round RNG in [0, upload_jitter_s),
  /// decorrelating clients with identical compute times.
  double upload_jitter_s = 0.05;
  /// Seed of the round RNG (jitter draws). Checkpointed, so a resumed run
  /// continues the same stream.
  std::uint64_t seed = 42;
  /// Host the deltas upload to (must be in the TransferManager's network).
  std::string cloud_host = testbed::kSiteUC;
  /// Objectstore containers: per-client delta generations and the
  /// aggregator's own round checkpoints.
  std::string delta_container = "fed-deltas";
  std::string state_container = "fed-state";
  std::string ckpt_key = "fed/aggregator";
  /// When true (default) merged models roll out via publish_canary and a
  /// bad round auto-rolls back; set_probes() is then mandatory. When
  /// false, publish_all() pushes every merged model unconditionally.
  bool canary_gate = true;
  serve::CanaryOptions canary;

  void validate() const;
};

class Aggregator : public ckpt::Checkpointable {
 public:
  /// The registry must hold a bootstrap model (publish_all) of the same
  /// (type, config) before run(); deltas are meaningless without a base.
  Aggregator(util::EventQueue& queue, serve::ReplicatedRegistry& registry,
             net::TransferManager& transfers, objectstore::ObjectStore& store,
             ml::ModelType type, ml::ModelConfig config,
             FedOptions options = {});

  /// Registers a car. Its name must be a host in the transfer network
  /// (uploads route name -> options().cloud_host). Returns the client
  /// index; call order fixes the deterministic scan order.
  std::size_t add_client(ClientOptions options, std::vector<ml::Sample> slice);

  /// Probe set for the canary gate (required when options.canary_gate).
  void set_probes(std::vector<ml::Sample> probes);

  /// Spans ("fed.round" completes, cutoff/publish/resume instants) and
  /// "fed.*" counters; also instruments the delta and state stores.
  void instrument(obs::Tracer* tracer, obs::MetricsRegistry* metrics);

  /// Wires the merge loop's preemption points (FaultKind::TrainPreempt via
  /// ChaosEngine::arm_preemption). Null detaches.
  void set_preemption(fault::PreemptionToken* token);

  /// Hooks for ChaosEngine::attach_fed: ClientDropout toggles a client's
  /// reachability, DeltaCorrupt arms corruption on its next upload.
  /// Unknown client names are ignored (chaos may target any host).
  fault::FedHooks fault_hooks();

  /// Runs rounds until options.rounds have completed. Restores from the
  /// round checkpoint first, so re-calling after a PreemptedError resumes
  /// mid-merge with at most one merge step repeated. Throws logic_error
  /// when preconditions are missing (no clients, no bootstrap model, no
  /// probes with the gate on).
  FedReport run();

  const FedReport& report() const { return report_; }
  std::size_t clients() const { return clients_.size(); }
  /// A client's delta store — the attach point for upload-path chaos
  /// (truncate_next_upload / corrupt_next_upload) and for inspection.
  ckpt::CheckpointStore& delta_store(std::size_t client) {
    return *delta_stores_.at(client);
  }
  const FedOptions& options() const { return options_; }

  // ckpt::Checkpointable — {round index, phase, merged partial, accepted
  // set, round RNG, backoff streaks, report so far}.
  const char* checkpoint_kind() const override { return "fed.aggregator"; }
  void save_state(std::ostream& os) override;
  void load_state(std::istream& is) override;

 private:
  enum class Phase : std::uint8_t { Collect = 0, Merge = 1 };

  /// One admitted delta, pinned to the exact generation that passed
  /// validation so the merge (and a resumed merge) reads the same bytes.
  struct AcceptedEntry {
    std::uint32_t client = 0;
    std::uint64_t examples = 0;
    std::uint64_t generation = 0;
  };

  std::string delta_key(std::size_t client) const;
  double backoff_s(std::size_t client) const;
  void collect_and_cutoff();
  void merge_round();
  void publish_round();
  void finalize_round();
  void preempt_tick();
  void checkpoint();

  util::EventQueue& queue_;
  serve::ReplicatedRegistry& registry_;
  net::TransferManager& transfers_;
  objectstore::ObjectStore& objects_;
  ml::ModelType type_;
  ml::ModelConfig config_;
  FedOptions options_;

  std::vector<std::unique_ptr<EdgeClient>> clients_;
  std::vector<std::unique_ptr<ckpt::CheckpointStore>> delta_stores_;
  std::unique_ptr<ckpt::CheckpointStore> state_store_;
  std::vector<ml::Sample> probes_;

  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  fault::PreemptionToken* preempt_ = nullptr;

  // Transient per-process chaos state (deliberately NOT checkpointed: a
  // resumed aggregator re-learns reachability from the live hooks).
  std::vector<char> down_;

  // Checkpointed round state.
  util::Rng rng_{42};
  std::uint64_t round_index_ = 0;  // completed rounds
  Phase phase_ = Phase::Collect;
  std::uint64_t expected_params_ = 0;
  std::vector<AcceptedEntry> accepted_;
  std::vector<double> acc_;  // running weighted mean of accepted deltas
  std::uint64_t weight_so_far_ = 0;
  std::uint64_t merged_prefix_ = 0;  // accepted_ entries merged into acc_
  std::vector<std::uint32_t> failure_streak_;
  RoundRecord record_;  // round under construction
  FedReport report_;
};

}  // namespace autolearn::fed
