#include "fed/client.hpp"

#include <sstream>
#include <stdexcept>

#include "gpu/perf_model.hpp"
#include "ml/trainer.hpp"

namespace autolearn::fed {

void ClientOptions::validate() const {
  if (name.empty()) {
    throw std::invalid_argument("fed client: name must be non-empty");
  }
  if (local_epochs == 0) {
    throw std::invalid_argument("fed client: local_epochs must be >= 1");
  }
  if (local_batch == 0) {
    throw std::invalid_argument("fed client: local_batch must be >= 1");
  }
}

EdgeClient::EdgeClient(ClientOptions options, ml::ModelType type,
                       ml::ModelConfig config,
                       std::vector<ml::Sample> local_data)
    : options_(std::move(options)),
      type_(type),
      config_(config),
      data_(std::move(local_data)) {
  options_.validate();
  if (data_.empty()) {
    throw std::invalid_argument("fed client " + options_.name +
                                ": local slice must be non-empty");
  }
}

EdgeClient::LocalUpdate EdgeClient::compute_update(
    ml::DrivingModel& incumbent, std::uint64_t base_version,
    std::uint64_t round) {
  // A fresh local model adopts the incumbent's *parameters* only:
  // optimizer moments and dropout streams restart from the config seed
  // every round, so the update is a pure function of (incumbent, round).
  std::unique_ptr<ml::DrivingModel> local = ml::make_model(type_, config_);
  std::stringstream weights;
  incumbent.save(weights);
  local->load(weights);

  const std::vector<float> base = flatten_params(*local);

  ml::TrainOptions topt;
  topt.epochs = options_.local_epochs;
  topt.batch_size = options_.local_batch;
  // SplitMix-style round mixing keeps per-round shuffle streams apart
  // without correlating adjacent rounds.
  topt.shuffle_seed = options_.seed ^ (round * 0x9e3779b97f4a7c15ULL + 1);
  const ml::TrainResult result = ml::fit(*local, data_, {}, topt);

  const std::vector<float> tuned = flatten_params(*local);

  LocalUpdate out;
  out.delta.client = options_.name;
  out.delta.round = round;
  out.delta.base_version = base_version;
  out.delta.examples = data_.size();
  out.delta.values.resize(tuned.size());
  for (std::size_t i = 0; i < tuned.size(); ++i) {
    out.delta.values[i] = tuned[i] - base[i];
  }
  out.train_loss = result.final_train_loss;

  gpu::TrainingWorkload load;
  load.forward_flops = result.forward_flops;
  load.samples = result.samples_seen;
  load.batch_size = options_.local_batch;
  out.compute_s = gpu::training_time_s(gpu::device(options_.device), load);
  return out;
}

}  // namespace autolearn::fed
