// Edge-side participant of a federated round.
//
// Each car holds a private tub slice (its own collected observations —
// non-IID by construction, since every car drives its own piece of the
// track) and, when asked, fine-tunes a *copy* of the incumbent on that
// slice for a few local epochs. What leaves the car is a WeightDelta: the
// parameter difference times nothing else — no frames, no labels. The
// local fit runs through the stock ml::Trainer, so it is bitwise
// deterministic given (incumbent, round, seed), and its counted FLOPs are
// priced on the client's device spec (a Raspberry Pi 4 by default) to get
// the virtual-clock compute time the aggregator schedules the upload at.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fed/delta.hpp"
#include "ml/driving_model.hpp"

namespace autolearn::fed {

struct ClientOptions {
  /// Car name; must exist as a host in the network the TransferManager
  /// routes over (uploads travel <name> -> aggregator cloud host).
  std::string name = "car-01";
  /// Local fine-tune shape. One epoch over a small slice keeps a round's
  /// edge compute in the hundreds of milliseconds of virtual time.
  std::size_t local_epochs = 1;
  std::size_t local_batch = 4;
  /// Mixed with the round number for the local shuffle stream, so every
  /// (client, round) pair fine-tunes on its own deterministic order.
  std::uint64_t seed = 1;
  /// gpu:: device catalogue name pricing the local fit.
  std::string device = "RaspberryPi4";

  void validate() const;
};

class EdgeClient {
 public:
  /// `local_data` is the client's private slice; it must be non-empty and
  /// shaped for the model type/config the aggregator serves.
  EdgeClient(ClientOptions options, ml::ModelType type,
             ml::ModelConfig config, std::vector<ml::Sample> local_data);

  const std::string& name() const { return options_.name; }
  std::size_t examples() const { return data_.size(); }

  struct LocalUpdate {
    WeightDelta delta;
    double train_loss = 0.0;
    /// Simulated seconds the local fine-tune took on options().device.
    double compute_s = 0.0;
  };

  /// Fine-tunes a fresh copy of `incumbent` on the local slice and
  /// returns the example-weighted delta. Pure and deterministic: the same
  /// incumbent bytes and round always produce the same delta bytes.
  LocalUpdate compute_update(ml::DrivingModel& incumbent,
                             std::uint64_t base_version, std::uint64_t round);

  const ClientOptions& options() const { return options_; }

 private:
  ClientOptions options_;
  ml::ModelType type_;
  ml::ModelConfig config_;
  std::vector<ml::Sample> data_;
};

}  // namespace autolearn::fed
