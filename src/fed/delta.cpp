#include "fed/delta.hpp"

#include <cmath>
#include <cstring>

namespace autolearn::fed {

namespace {

constexpr char kMagic[4] = {'A', 'L', 'F', 'D'};
constexpr std::uint32_t kVersion = 1;

void put_u32(std::string& out, std::uint32_t v) {
  char buf[sizeof v];
  std::memcpy(buf, &v, sizeof v);
  out.append(buf, sizeof v);
}

void put_u64(std::string& out, std::uint64_t v) {
  char buf[sizeof v];
  std::memcpy(buf, &v, sizeof v);
  out.append(buf, sizeof v);
}

class Reader {
 public:
  explicit Reader(const std::string& data) : data_(data) {}

  const char* take(std::size_t n) {
    if (pos_ + n > data_.size()) {
      throw DeltaError(DeltaError::Code::Truncated,
                       "weight delta: truncated payload");
    }
    const char* p = data_.data() + pos_;
    pos_ += n;
    return p;
  }
  std::uint32_t u32() {
    std::uint32_t v;
    std::memcpy(&v, take(sizeof v), sizeof v);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v;
    std::memcpy(&v, take(sizeof v), sizeof v);
    return v;
  }
  bool exhausted() const { return pos_ == data_.size(); }

 private:
  const std::string& data_;
  std::size_t pos_ = 0;
};

}  // namespace

std::size_t param_count(ml::DrivingModel& model) {
  std::size_t n = 0;
  for (ml::Sequential* net : model.mutable_nets()) {
    for (const ml::Param* p : net->params()) n += p->value.size();
  }
  return n;
}

std::vector<float> flatten_params(ml::DrivingModel& model) {
  std::vector<float> out;
  out.reserve(param_count(model));
  for (ml::Sequential* net : model.mutable_nets()) {
    for (const ml::Param* p : net->params()) {
      const float* data = p->value.data();
      out.insert(out.end(), data, data + p->value.size());
    }
  }
  return out;
}

void add_scaled(ml::DrivingModel& model, const std::vector<float>& delta,
                float scale) {
  if (delta.size() != param_count(model)) {
    throw DeltaError(DeltaError::Code::SizeMismatch,
                     "weight delta: " + std::to_string(delta.size()) +
                         " values for a model with " +
                         std::to_string(param_count(model)) + " parameters");
  }
  std::size_t at = 0;
  for (ml::Sequential* net : model.mutable_nets()) {
    for (ml::Param* p : net->params()) {
      float* data = p->value.data();
      for (std::size_t i = 0; i < p->value.size(); ++i) {
        data[i] += scale * delta[at++];
      }
    }
  }
}

std::string encode_delta(const WeightDelta& delta) {
  std::string out;
  out.reserve(4 + 4 + 4 + delta.client.size() + 3 * 8 + 8 +
              delta.values.size() * sizeof(float));
  out.append(kMagic, sizeof kMagic);
  put_u32(out, kVersion);
  put_u32(out, static_cast<std::uint32_t>(delta.client.size()));
  out.append(delta.client);
  put_u64(out, delta.round);
  put_u64(out, delta.base_version);
  put_u64(out, delta.examples);
  put_u64(out, delta.values.size());
  out.append(reinterpret_cast<const char*>(delta.values.data()),
             delta.values.size() * sizeof(float));
  return out;
}

WeightDelta decode_delta(const std::string& payload) {
  Reader r(payload);
  if (std::memcmp(r.take(sizeof kMagic), kMagic, sizeof kMagic) != 0) {
    throw DeltaError(DeltaError::Code::BadMagic,
                     "weight delta: bad magic");
  }
  const std::uint32_t version = r.u32();
  if (version != kVersion) {
    throw DeltaError(DeltaError::Code::BadMagic,
                     "weight delta: unknown version " +
                         std::to_string(version));
  }
  WeightDelta out;
  const std::uint32_t name_len = r.u32();
  out.client.assign(r.take(name_len), name_len);
  out.round = r.u64();
  out.base_version = r.u64();
  out.examples = r.u64();
  const std::uint64_t count = r.u64();
  out.values.resize(count);
  std::memcpy(out.values.data(), r.take(count * sizeof(float)),
              count * sizeof(float));
  if (!r.exhausted()) {
    throw DeltaError(DeltaError::Code::Truncated,
                     "weight delta: trailing bytes");
  }
  return out;
}

void validate_delta(const WeightDelta& delta, std::size_t expected_params) {
  if (delta.values.size() != expected_params) {
    throw DeltaError(DeltaError::Code::SizeMismatch,
                     "weight delta from " + delta.client + ": " +
                         std::to_string(delta.values.size()) +
                         " values, expected " +
                         std::to_string(expected_params));
  }
  for (const float v : delta.values) {
    if (!std::isfinite(v)) {
      throw DeltaError(DeltaError::Code::NonFinite,
                       "weight delta from " + delta.client +
                           ": non-finite value");
    }
  }
}

}  // namespace autolearn::fed
