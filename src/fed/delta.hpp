// Weight-delta codec for federated rounds.
//
// A participating car never ships raw frames to the cloud — it ships the
// *difference* between its locally fine-tuned parameters and the incumbent
// it started from, weighted by how many examples produced it (the FedAvg
// numerator). The delta is a flat float vector in the model's canonical
// parameter order plus enough header to pin which client, round, and base
// version it belongs to; the bytes then travel inside a ckpt:: CRC
// envelope through net::TransferManager, so a torn or bit-flipped upload
// is quarantined at load time instead of silently merged.
//
// decode_delta() validates structure (magic, declared sizes); the
// aggregator additionally runs validate_delta() against the incumbent —
// parameter-count match and all-finite values — so even a corruption that
// somehow survives the CRC can never reach the merge.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "ml/driving_model.hpp"

namespace autolearn::fed {

/// Typed decode/validation failure. The aggregator maps any DeltaError to
/// a quarantined client round — never a crash, never an accepted merge.
class DeltaError : public std::runtime_error {
 public:
  enum class Code {
    BadMagic,      // not a weight-delta payload
    Truncated,     // payload shorter than its declared value count
    SizeMismatch,  // value count differs from the receiving model
    NonFinite,     // NaN/Inf values (corruption or a diverged client)
  };

  DeltaError(Code code, const std::string& what)
      : std::runtime_error(what), code_(code) {}
  Code code() const { return code_; }

 private:
  Code code_;
};

/// One client's example-weighted model update for one round.
struct WeightDelta {
  std::string client;            // car / host name
  std::uint64_t round = 0;       // round the delta was computed in
  std::uint64_t base_version = 0;  // registry version it diffs against
  std::uint64_t examples = 0;      // local sample count (FedAvg weight)
  std::vector<float> values;       // fine-tuned params minus base params
};

/// Trainable scalar count of the model, in flatten_params order.
std::size_t param_count(ml::DrivingModel& model);

/// All parameter tensors of all the model's nets, concatenated in
/// declaration order — the canonical delta coordinate system. Two models
/// of the same type and config always flatten to the same layout.
std::vector<float> flatten_params(ml::DrivingModel& model);

/// params += scale * delta, in flatten_params order. Throws DeltaError
/// (SizeMismatch) when the vector does not match the model's layout.
void add_scaled(ml::DrivingModel& model, const std::vector<float>& delta,
                float scale);

/// Binary round trip. encode is self-describing (magic + header +
/// declared value count); decode throws DeltaError on structural damage.
std::string encode_delta(const WeightDelta& delta);
WeightDelta decode_delta(const std::string& payload);

/// Aggregator-side acceptance check: the delta must match the incumbent's
/// parameter count and contain only finite values.
void validate_delta(const WeightDelta& delta, std::size_t expected_params);

}  // namespace autolearn::fed
