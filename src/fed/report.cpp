#include "fed/report.hpp"

#include <sstream>

namespace autolearn::fed {

const char* to_string(ClientOutcome outcome) {
  switch (outcome) {
    case ClientOutcome::Accepted: return "accepted";
    case ClientOutcome::Straggler: return "straggler";
    case ClientOutcome::Dropout: return "dropout";
    case ClientOutcome::TransferFailed: return "transfer-failed";
    case ClientOutcome::Quarantined: return "quarantined";
  }
  return "?";
}

bool operator==(const ClientRoundRecord& a, const ClientRoundRecord& b) {
  return a.client == b.client && a.outcome == b.outcome &&
         a.examples == b.examples && a.backoff_s == b.backoff_s &&
         a.upload_start_s == b.upload_start_s &&
         a.committed_s == b.committed_s && a.detail == b.detail;
}

bool operator==(const RoundRecord& a, const RoundRecord& b) {
  return a.round == b.round && a.started_s == b.started_s &&
         a.cutoff_s == b.cutoff_s && a.finished_s == b.finished_s &&
         a.base_version == b.base_version &&
         a.published_version == b.published_version &&
         a.quorum_met == b.quorum_met && a.promoted == b.promoted &&
         a.rolled_back == b.rolled_back && a.accepted == b.accepted &&
         a.total_examples == b.total_examples && a.clients == b.clients;
}

bool operator==(const FedReport& a, const FedReport& b) {
  return a.rounds == b.rounds && a.rounds_published == b.rounds_published &&
         a.rounds_rolled_back == b.rounds_rolled_back &&
         a.rounds_no_quorum == b.rounds_no_quorum &&
         a.deltas_accepted == b.deltas_accepted &&
         a.deltas_quarantined == b.deltas_quarantined &&
         a.stragglers == b.stragglers && a.dropouts == b.dropouts &&
         a.transfer_failures == b.transfer_failures &&
         a.delta_bytes_shipped == b.delta_bytes_shipped;
}

std::string FedReport::summary() const {
  std::ostringstream os;
  os << "fed: " << rounds.size() << " round(s), " << rounds_published
     << " published, " << rounds_rolled_back << " rolled back, "
     << rounds_no_quorum << " below quorum; deltas " << deltas_accepted
     << " accepted / " << deltas_quarantined << " quarantined / "
     << stragglers << " straggled / " << dropouts << " dropped out / "
     << transfer_failures << " transfer-failed; " << delta_bytes_shipped
     << " delta bytes shipped\n";
  for (const RoundRecord& r : rounds) {
    os << "  round " << r.round << " [t=" << r.started_s << " cutoff "
       << r.cutoff_s << " done " << r.finished_s << "] v" << r.base_version
       << " -> "
       << (r.published_version == 0 ? std::string("none")
                                    : "v" + std::to_string(
                                                r.published_version))
       << (r.rolled_back   ? " (rolled back)"
           : r.promoted    ? " (promoted)"
           : !r.quorum_met ? " (no quorum)"
                           : "")
       << ", " << r.accepted << " accepted, " << r.total_examples
       << " examples\n";
    for (const ClientRoundRecord& c : r.clients) {
      os << "    " << c.client << ": " << to_string(c.outcome);
      if (c.backoff_s > 0) os << " backoff=" << c.backoff_s;
      if (c.upload_start_s >= 0) os << " up=" << c.upload_start_s;
      if (c.committed_s >= 0) os << " landed=" << c.committed_s;
      if (!c.detail.empty()) os << " (" << c.detail << ")";
      os << "\n";
    }
  }
  return os.str();
}

}  // namespace autolearn::fed
