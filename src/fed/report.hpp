// Round-by-round ground truth of a federated run.
//
// Every client's fate in every round is recorded with virtual-clock
// timestamps, so a seed pins the whole timeline bit-for-bit — including
// runs where chaos dropped clients, corrupted deltas, or preempted the
// aggregator mid-merge (a resumed run produces a report EQUAL to the
// uninterrupted one; preemption accounting lives in the ChaosReport, not
// here, precisely so that equality holds).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace autolearn::fed {

/// What happened to one client in one round.
enum class ClientOutcome {
  Accepted,        // delta committed, decoded, validated, and merged
  Straggler,       // upload still in flight at the cutoff
  Dropout,         // client was offline (ClientDropout fault) and missed it
  TransferFailed,  // every transfer attempt exhausted before the cutoff
  Quarantined,     // delta committed but failed CRC/decode/validation
};

const char* to_string(ClientOutcome outcome);

struct ClientRoundRecord {
  std::string client;
  ClientOutcome outcome = ClientOutcome::Accepted;
  std::uint64_t examples = 0;    // FedAvg weight (accepted clients only)
  double backoff_s = 0.0;        // retry delay applied this round
  double upload_start_s = -1.0;  // virtual time the upload began; -1 = never
  double committed_s = -1.0;     // virtual time the delta landed; -1 = never
  std::string detail;            // human-readable cause
};

bool operator==(const ClientRoundRecord& a, const ClientRoundRecord& b);

struct RoundRecord {
  std::uint64_t round = 0;  // 1-based
  double started_s = 0.0;
  double cutoff_s = 0.0;
  double finished_s = 0.0;
  std::uint64_t base_version = 0;       // incumbent at round start
  std::uint64_t published_version = 0;  // 0 = round published nothing
  bool quorum_met = false;
  bool promoted = false;     // canary gate passed (or ungated publish)
  bool rolled_back = false;  // canary gate failed; incumbent kept
  std::size_t accepted = 0;
  std::uint64_t total_examples = 0;  // across accepted clients
  std::vector<ClientRoundRecord> clients;  // client-index order
};

bool operator==(const RoundRecord& a, const RoundRecord& b);

struct FedReport {
  std::vector<RoundRecord> rounds;

  std::size_t rounds_published = 0;
  std::size_t rounds_rolled_back = 0;
  std::size_t rounds_no_quorum = 0;
  std::size_t deltas_accepted = 0;
  std::size_t deltas_quarantined = 0;
  std::size_t stragglers = 0;
  std::size_t dropouts = 0;
  std::size_t transfer_failures = 0;
  std::uint64_t delta_bytes_shipped = 0;  // committed envelope bytes

  /// One line per round plus one per client; equal for equal reports —
  /// the determinism tests compare these strings across runs.
  std::string summary() const;
};

bool operator==(const FedReport& a, const FedReport& b);

}  // namespace autolearn::fed
