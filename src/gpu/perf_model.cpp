#include "gpu/perf_model.hpp"

#include <cmath>
#include <stdexcept>

namespace autolearn::gpu {
namespace {

const std::vector<DeviceSpec>& catalogue() {
  // peak fp32 TFLOPS from vendor spec sheets; utilization/overheads chosen
  // so small-model training is launch-bound (as observed in practice) and
  // the device ordering matches the hardware generations.
  // int8_speedup: devices with an integer dot-product path (dp4a on
  // Pascal-successors' successors — Volta/Turing/Ampere — and CDNA) get
  // ~4x over fp32 on small GEMMs; P100/M40/K80 predate dp4a and stay at
  // 1.0; the Pi 4's NEON gets ~2.5x from 8-bit widening multiplies
  // (consistent with the AVX2 qgemm-vs-sgemm ratio in BENCH_quant.json).
  static const std::vector<DeviceSpec> devices = {
      {"A100", 19.5, 0.42, 8.0, 45.0, 4.0, 2020},
      {"V100", 15.7, 0.38, 10.0, 55.0, 4.0, 2017},
      {"v100NVLINK", 15.7, 0.38, 9.0, 55.0, 4.0, 2017},
      {"RTX6000", 16.3, 0.33, 12.0, 60.0, 4.0, 2018},
      {"P100", 9.3, 0.32, 14.0, 70.0, 1.0, 2016},
      {"M40", 6.8, 0.28, 18.0, 90.0, 1.0, 2015},
      {"K80", 4.1, 0.25, 25.0, 120.0, 1.0, 2014},
      {"MI100", 23.1, 0.30, 11.0, 60.0, 4.0, 2020},
      // Edge: Raspberry Pi 4 CPU doing NEON fp32 inference.
      {"RaspberryPi4", 0.0135, 0.50, 0.0, 350.0, 2.5, 2019},
  };
  return devices;
}

}  // namespace

const DeviceSpec& device(const std::string& name) {
  for (const DeviceSpec& d : catalogue()) {
    if (d.name == name) return d;
  }
  throw std::invalid_argument("gpu: unknown device " + name);
}

std::vector<std::string> datacenter_devices() {
  return {"A100", "V100", "v100NVLINK", "RTX6000", "P100"};
}

std::vector<std::string> all_devices() {
  std::vector<std::string> out;
  for (const DeviceSpec& d : catalogue()) out.push_back(d.name);
  return out;
}

double scaling_efficiency(Interconnect link) {
  switch (link) {
    case Interconnect::None: return 1.0;
    case Interconnect::PCIe: return 0.75;
    case Interconnect::NVLink: return 0.92;
  }
  return 1.0;
}

double training_time_s(const DeviceSpec& spec, const TrainingWorkload& load,
                       int count, Interconnect link) {
  if (count < 1) throw std::invalid_argument("gpu: count must be >= 1");
  if (load.batch_size == 0) throw std::invalid_argument("gpu: batch 0");
  if (count > 1 && link == Interconnect::None) {
    throw std::invalid_argument("gpu: multi-GPU needs an interconnect");
  }
  const double total_flops =
      static_cast<double>(load.forward_flops) * load.backward_multiplier;
  // Data-parallel: each device sees samples/count, so the batch count per
  // device shrinks, but gradient all-reduce caps the scaling.
  const double eff_devices =
      count == 1 ? 1.0
                 : 1.0 + (count - 1) * scaling_efficiency(link);
  const double batches = std::ceil(
      static_cast<double>(load.samples) /
      static_cast<double>(load.batch_size) / eff_devices);
  const double compute_s = total_flops / (spec.effective_flops() * eff_devices);
  const double overhead_s = batches * spec.batch_overhead_us * 1e-6;
  return compute_s + overhead_s;
}

double inference_latency_s(const DeviceSpec& spec,
                           std::uint64_t model_flops) {
  return inference_latency_s(spec, model_flops, 1);
}

double inference_latency_s(const DeviceSpec& spec, std::uint64_t model_flops,
                           std::size_t batch) {
  return inference_latency_s(spec, model_flops, batch, Precision::Fp32);
}

double inference_latency_s(const DeviceSpec& spec, std::uint64_t model_flops,
                           std::size_t batch, Precision precision) {
  if (batch == 0) throw std::invalid_argument("gpu: inference batch 0");
  // Written so batch = 1 at Fp32 is bitwise-identical to the historical
  // single-sample formula (overhead + flops / effective): the flops term
  // scales by the batch, the launch overhead does not. (At Fp32 the
  // precision factor is an exact multiply by 1.0.)
  return spec.infer_overhead_us * 1e-6 +
         static_cast<double>(batch) * static_cast<double>(model_flops) /
             spec.effective_flops(precision);
}

}  // namespace autolearn::gpu
