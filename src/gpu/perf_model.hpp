// Accelerator performance model.
//
// The paper trains on Chameleon GPU nodes ("We tested this process on a
// range of GPU nodes available via Chameleon including A100, V100,
// v100NVLINK, RTX6000, and P100"). Without CUDA hardware we train on CPU
// and *separately* convert the counted workload (forward FLOPs x samples,
// batches) into simulated wall-clock per device type. The model is
// deliberately simple and calibrated from public spec sheets:
//
//   time = batches x launch_overhead
//        + total_flops / (peak_fp32 x utilization x multi_gpu_scaling)
//
// Small DonkeyCar-class models are launch-bound on datacenter GPUs, which
// the per-batch overhead term captures; utilization reflects achievable
// throughput on small tensors rather than peak TFLOPS marketing numbers.
// The Raspberry Pi 4 entry models on-device (edge) inference for the
// continuum experiments.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace autolearn::gpu {

/// Arithmetic precision an inference workload runs at. Int8 engages the
/// device's integer dot-product path (dp4a / NEON sdot) where one exists;
/// devices without such a path keep int8_speedup = 1.
enum class Precision { Fp32, Int8 };

struct DeviceSpec {
  std::string name;
  double peak_fp32_tflops = 0.0;   // per device
  double utilization = 0.35;       // achievable fraction on small models
  double batch_overhead_us = 0.0;  // per-batch launch/sync cost
  double infer_overhead_us = 0.0;  // per-inference-call cost
  double int8_speedup = 1.0;       // int8 throughput ratio vs fp32
  int year = 0;                    // release year (for documentation)

  /// Effective training throughput of one device, FLOP/s.
  double effective_flops() const {
    return peak_fp32_tflops * 1e12 * utilization;
  }

  /// Effective inference throughput at the given precision, (equivalent
  /// fp32) FLOP/s: int8 ops are counted as flops and run int8_speedup x
  /// faster, matching how the kernel counters report qgemm work.
  double effective_flops(Precision precision) const {
    return effective_flops() *
           (precision == Precision::Int8 ? int8_speedup : 1.0);
  }
};

/// Interconnect for multi-GPU nodes.
enum class Interconnect { None, PCIe, NVLink };

/// The device catalogue of §3.2: Chameleon accelerators plus the edge
/// device. Names match the paper's spelling.
const DeviceSpec& device(const std::string& name);
std::vector<std::string> datacenter_devices();  // the five the paper lists
std::vector<std::string> all_devices();

struct TrainingWorkload {
  std::uint64_t forward_flops = 0;  // sum over all trained samples
  std::uint64_t samples = 0;
  std::size_t batch_size = 32;
  /// backward+update costs ~2x forward; total = fwd * 3.
  double backward_multiplier = 3.0;
};

/// Simulated seconds to run the workload on `count` devices of this type.
double training_time_s(const DeviceSpec& spec, const TrainingWorkload& load,
                       int count = 1, Interconnect link = Interconnect::None);

/// Multi-GPU scaling efficiency per added device.
double scaling_efficiency(Interconnect link);

/// Simulated single-sample inference latency (seconds) for a model with
/// the given forward FLOPs on this device. Equivalent to the batched
/// variant at batch = 1.
double inference_latency_s(const DeviceSpec& spec, std::uint64_t model_flops);

/// Batched inference latency: one per-call overhead amortized across the
/// whole batch, compute scaled by the batch size. This is the cost model
/// the fleet serving tier and the dynamic batcher are sized against; the
/// single-sample signature above is its batch-of-1 wrapper. Both forward
/// to the precision-aware variant at Fp32 (bitwise-identically).
double inference_latency_s(const DeviceSpec& spec, std::uint64_t model_flops,
                           std::size_t batch);

/// Precision-aware batched inference latency: int8 workloads divide the
/// compute term by the device's int8_speedup, so an edge tier running the
/// quantized path is no longer priced as if it did fp32 math. The launch
/// overhead is precision-independent.
double inference_latency_s(const DeviceSpec& spec, std::uint64_t model_flops,
                           std::size_t batch, Precision precision);

}  // namespace autolearn::gpu
