#include "hub/collaboration.hpp"

#include <stdexcept>

namespace autolearn::hub {

const char* to_string(MergeStatus s) {
  switch (s) {
    case MergeStatus::Open: return "open";
    case MergeStatus::Accepted: return "accepted";
    case MergeStatus::Rejected: return "rejected";
  }
  return "?";
}

ModuleRepo::ModuleRepo(std::string name) : name_(std::move(name)) {
  if (name_.empty()) throw std::invalid_argument("repo: empty name");
}

void ModuleRepo::put_doc(const std::string& path, const std::string& content) {
  if (path.empty()) throw std::invalid_argument("repo: empty path");
  docs_[path] = content;
  ++revision_;
}

std::optional<std::string> ModuleRepo::doc(const std::string& path) const {
  const auto it = docs_.find(path);
  if (it == docs_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> ModuleRepo::docs() const {
  std::vector<std::string> out;
  for (const auto& [path, _] : docs_) out.push_back(path);
  return out;
}

ModuleRepo ModuleRepo::fork(const std::string& fork_name) const {
  ModuleRepo copy(fork_name);
  copy.docs_ = docs_;
  copy.revision_ = revision_;
  return copy;
}

std::vector<std::string> ModuleRepo::diff_against(
    const ModuleRepo& other) const {
  std::vector<std::string> out;
  for (const auto& [path, content] : docs_) {
    const auto theirs = other.doc(path);
    if (!theirs || *theirs != content) out.push_back(path);
  }
  return out;
}

Collaboration::Collaboration(ModuleRepo& upstream, Artifact* artifact)
    : upstream_(upstream), artifact_(artifact) {}

std::uint64_t Collaboration::open_merge_request(const ModuleRepo& fork,
                                                const std::string& author,
                                                const std::string& summary) {
  if (author.empty()) throw std::invalid_argument("mr: empty author");
  const auto changed = fork.diff_against(upstream_);
  if (changed.empty()) {
    throw std::invalid_argument("mr: fork has no changes against upstream");
  }
  MergeRequest mr;
  mr.id = next_id_++;
  mr.author = author;
  mr.summary = summary;
  for (const std::string& path : changed) {
    mr.changes.emplace_back(path, *fork.doc(path));
  }
  requests_[mr.id] = std::move(mr);
  return next_id_ - 1;
}

MergeRequest& Collaboration::request_mut(std::uint64_t id) {
  const auto it = requests_.find(id);
  if (it == requests_.end()) throw std::invalid_argument("mr: unknown id");
  return it->second;
}

const MergeRequest& Collaboration::request(std::uint64_t id) const {
  const auto it = requests_.find(id);
  if (it == requests_.end()) throw std::invalid_argument("mr: unknown id");
  return it->second;
}

void Collaboration::accept(std::uint64_t id, const std::string& review_note) {
  MergeRequest& mr = request_mut(id);
  if (mr.status != MergeStatus::Open) {
    throw std::logic_error("mr: not open");
  }
  for (const auto& [path, content] : mr.changes) {
    upstream_.put_doc(path, content);
  }
  mr.status = MergeStatus::Accepted;
  mr.review_note = review_note;
  if (artifact_) {
    artifact_->publish_version("merge: " + mr.summary + " (by " + mr.author +
                                   ")",
                               upstream_.name() + "@r" +
                                   std::to_string(upstream_.revision()));
  }
}

void Collaboration::reject(std::uint64_t id, const std::string& review_note) {
  MergeRequest& mr = request_mut(id);
  if (mr.status != MergeStatus::Open) {
    throw std::logic_error("mr: not open");
  }
  mr.status = MergeStatus::Rejected;
  mr.review_note = review_note;
}

std::vector<std::uint64_t> Collaboration::open_requests() const {
  std::vector<std::uint64_t> out;
  for (const auto& [id, mr] : requests_) {
    if (mr.status == MergeStatus::Open) out.push_back(id);
  }
  return out;
}

std::size_t Collaboration::accepted_count() const {
  std::size_t n = 0;
  for (const auto& [id, mr] : requests_) {
    n += mr.status == MergeStatus::Accepted;
  }
  return n;
}

}  // namespace autolearn::hub
