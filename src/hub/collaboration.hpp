// Community contribution flow (§4 "Contributions and Feedback"):
//
//   "learners can start their own educational module. This can be synced
//    and learners can make additional changes to the module, make
//    extensions or improvements. Through collaborative support and
//    learning, students can make a merge request to the original
//    repository so then the learning community can have access to
//    different versions and updates of the project."
//
// A ModuleRepo is the GitBook/GitHub-style content store: named documents
// with a linear history. Contributors fork it, edit their fork, and open
// merge requests; accepted requests land upstream and publish a new hub
// artifact version, closing the loop the paper describes.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "hub/hub.hpp"

namespace autolearn::hub {

/// A versioned content repository (the GitBook analogue).
class ModuleRepo {
 public:
  explicit ModuleRepo(std::string name);

  const std::string& name() const { return name_; }
  std::uint64_t revision() const { return revision_; }

  /// Writes/overwrites a document, advancing the revision.
  void put_doc(const std::string& path, const std::string& content);
  std::optional<std::string> doc(const std::string& path) const;
  std::vector<std::string> docs() const;

  /// Deep copy with a new name (the learner "starting their own module").
  ModuleRepo fork(const std::string& fork_name) const;

  /// Documents whose content differs from (or is absent in) `other`.
  std::vector<std::string> diff_against(const ModuleRepo& other) const;

 private:
  std::string name_;
  std::uint64_t revision_ = 0;
  std::map<std::string, std::string> docs_;
};

enum class MergeStatus { Open, Accepted, Rejected };

const char* to_string(MergeStatus s);

struct MergeRequest {
  std::uint64_t id = 0;
  std::string author;
  std::string summary;
  std::vector<std::pair<std::string, std::string>> changes;  // path, content
  MergeStatus status = MergeStatus::Open;
  std::string review_note;
};

/// Maintainer-side queue of merge requests against an upstream repo,
/// wired to a hub artifact so accepted contributions publish versions.
class Collaboration {
 public:
  /// artifact may be null (no hub accounting).
  Collaboration(ModuleRepo& upstream, Artifact* artifact = nullptr);

  /// Opens a merge request carrying the fork's differences from upstream.
  /// Throws if the fork has no changes.
  std::uint64_t open_merge_request(const ModuleRepo& fork,
                                   const std::string& author,
                                   const std::string& summary);

  /// Applies the changes upstream, marks Accepted, publishes an artifact
  /// version (when wired).
  void accept(std::uint64_t id, const std::string& review_note = "");
  /// Marks Rejected with a note; upstream is untouched.
  void reject(std::uint64_t id, const std::string& review_note);

  const MergeRequest& request(std::uint64_t id) const;
  std::vector<std::uint64_t> open_requests() const;
  std::size_t accepted_count() const;

 private:
  MergeRequest& request_mut(std::uint64_t id);

  ModuleRepo& upstream_;
  Artifact* artifact_;
  std::map<std::uint64_t, MergeRequest> requests_;
  std::uint64_t next_id_ = 1;
};

}  // namespace autolearn::hub
