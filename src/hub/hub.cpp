#include "hub/hub.hpp"

#include <stdexcept>

namespace autolearn::hub {

Artifact::Artifact(std::string id, std::string title,
                   std::vector<std::string> authors)
    : id_(std::move(id)),
      title_(std::move(title)),
      authors_(std::move(authors)) {
  if (id_.empty()) throw std::invalid_argument("artifact: empty id");
}

const ArtifactVersion& Artifact::publish_version(std::string notes,
                                                 std::string package_ref) {
  ArtifactVersion v;
  v.number = versions_.empty() ? 1 : versions_.back().number + 1;
  v.notes = std::move(notes);
  v.package_ref = std::move(package_ref);
  versions_.push_back(std::move(v));
  return versions_.back();
}

void Artifact::record_view(const std::string& user) {
  (void)user;  // views are counted anonymously, like Trovi's counter
  ++views_;
}

void Artifact::record_launch(const std::string& user) {
  if (user.empty()) throw std::invalid_argument("artifact: anonymous launch");
  ++launch_clicks_;
  launch_users_.insert(user);
}

void Artifact::record_cell_execution(const std::string& user) {
  if (user.empty()) throw std::invalid_argument("artifact: anonymous exec");
  executing_users_.insert(user);
}

ArtifactMetrics Artifact::metrics() const {
  ArtifactMetrics m;
  m.views = views_;
  m.launch_clicks = launch_clicks_;
  m.unique_launch_users = launch_users_.size();
  m.users_executed_cell = executing_users_.size();
  m.versions = versions_.size();
  return m;
}

Artifact& Hub::create_artifact(const std::string& id, const std::string& title,
                               std::vector<std::string> authors) {
  if (artifacts_.count(id)) {
    throw std::invalid_argument("hub: duplicate artifact " + id);
  }
  return artifacts_.emplace(id, Artifact(id, title, std::move(authors)))
      .first->second;
}

Artifact& Hub::artifact(const std::string& id) {
  const auto it = artifacts_.find(id);
  if (it == artifacts_.end()) {
    throw std::invalid_argument("hub: unknown artifact " + id);
  }
  return it->second;
}

const Artifact& Hub::artifact(const std::string& id) const {
  const auto it = artifacts_.find(id);
  if (it == artifacts_.end()) {
    throw std::invalid_argument("hub: unknown artifact " + id);
  }
  return it->second;
}

bool Hub::has_artifact(const std::string& id) const {
  return artifacts_.count(id) > 0;
}

std::vector<const Artifact*> Hub::find_by_tag(const std::string& tag) const {
  std::vector<const Artifact*> out;
  for (const auto& [id, artifact] : artifacts_) {
    if (artifact.tags().count(tag)) out.push_back(&artifact);
  }
  return out;
}

}  // namespace autolearn::hub
