// Trovi artifact hub analogue (§2, §5).
//
// Artifacts are versioned experiment packages with metadata (tags,
// description, author list). The hub keeps the §5 distribution metrics:
// views, launch-button clicks, unique launching users, users who executed
// at least one cell, and the published version count — "the information
// they provide can be collected in an automated fashion without placing a
// reporting burden on the users".
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace autolearn::hub {

struct ArtifactVersion {
  std::uint64_t number = 0;
  std::string notes;
  /// Object-store reference ("container/object") of the packaged notebooks.
  std::string package_ref;
};

struct ArtifactMetrics {
  std::size_t views = 0;
  std::size_t launch_clicks = 0;
  std::size_t unique_launch_users = 0;
  std::size_t users_executed_cell = 0;
  std::size_t versions = 0;
};

class Artifact {
 public:
  Artifact(std::string id, std::string title, std::vector<std::string> authors);

  const std::string& id() const { return id_; }
  const std::string& title() const { return title_; }
  const std::vector<std::string>& authors() const { return authors_; }

  void set_description(std::string text) { description_ = std::move(text); }
  const std::string& description() const { return description_; }
  void add_tag(const std::string& tag) { tags_.insert(tag); }
  const std::set<std::string>& tags() const { return tags_; }

  /// Publishes a new version (monotonically numbered).
  const ArtifactVersion& publish_version(std::string notes,
                                         std::string package_ref);
  const std::vector<ArtifactVersion>& versions() const { return versions_; }

  // --- §5 life-cycle events ------------------------------------------------
  void record_view(const std::string& user);
  void record_launch(const std::string& user);
  void record_cell_execution(const std::string& user);

  ArtifactMetrics metrics() const;

 private:
  std::string id_;
  std::string title_;
  std::vector<std::string> authors_;
  std::string description_;
  std::set<std::string> tags_;
  std::vector<ArtifactVersion> versions_;
  std::size_t views_ = 0;
  std::size_t launch_clicks_ = 0;
  std::set<std::string> launch_users_;
  std::set<std::string> executing_users_;
};

class Hub {
 public:
  Artifact& create_artifact(const std::string& id, const std::string& title,
                            std::vector<std::string> authors);
  Artifact& artifact(const std::string& id);
  const Artifact& artifact(const std::string& id) const;
  bool has_artifact(const std::string& id) const;

  /// Artifacts carrying the tag (Trovi's discovery path).
  std::vector<const Artifact*> find_by_tag(const std::string& tag) const;
  std::size_t artifact_count() const { return artifacts_.size(); }

 private:
  std::map<std::string, Artifact> artifacts_;
};

}  // namespace autolearn::hub
