#include "ml/conv.hpp"

#include <cmath>
#include <limits>

#include "util/thread_pool.hpp"

namespace autolearn::ml {

Conv2D::Conv2D(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t stride, util::Rng& rng)
    : ic_(in_channels),
      oc_(out_channels),
      k_(kernel),
      stride_(stride),
      w_(Tensor::randn({out_channels, in_channels, kernel, kernel}, rng,
                       std::sqrt(2.0 / static_cast<double>(
                                           in_channels * kernel * kernel)))),
      b_(Tensor({out_channels}, 0.0f)) {
  if (kernel == 0 || stride == 0 || in_channels == 0 || out_channels == 0) {
    throw std::invalid_argument("Conv2D: zero parameter");
  }
}

Tensor Conv2D::forward(const Tensor& x, bool /*train*/) {
  if (x.rank() != 4 || x.dim(1) != ic_) {
    throw std::invalid_argument("Conv2D: bad input shape " + x.shape_str());
  }
  last_input_ = x;
  const std::size_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const std::size_t oh = out_dim(h, k_, stride_), ow = out_dim(w, k_, stride_);
  flops_ = 2ull * oc_ * oh * ow * ic_ * k_ * k_;
  Tensor y({n, oc_, oh, ow});
  const Tensor& wt = w_.value;
  const Tensor& bt = b_.value;
  util::ThreadPool::shared().parallel_for_chunks(
      0, n, [&](std::size_t n0, std::size_t n1) {
        for (std::size_t i = n0; i < n1; ++i) {
          for (std::size_t oc = 0; oc < oc_; ++oc) {
            for (std::size_t oy = 0; oy < oh; ++oy) {
              for (std::size_t ox = 0; ox < ow; ++ox) {
                float acc = bt[oc];
                const std::size_t iy0 = oy * stride_, ix0 = ox * stride_;
                for (std::size_t ic = 0; ic < ic_; ++ic) {
                  for (std::size_t ky = 0; ky < k_; ++ky) {
                    const float* xrow = &x.at(i, ic, iy0 + ky, ix0);
                    const float* wrow = &wt.at(oc, ic, ky, 0);
                    for (std::size_t kx = 0; kx < k_; ++kx) {
                      acc += xrow[kx] * wrow[kx];
                    }
                  }
                }
                y.at(i, oc, oy, ox) = acc;
              }
            }
          }
        }
      });
  return y;
}

Tensor Conv2D::backward(const Tensor& grad_out) {
  const Tensor& x = last_input_;
  const std::size_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const std::size_t oh = out_dim(h, k_, stride_), ow = out_dim(w, k_, stride_);
  if (grad_out.rank() != 4 || grad_out.dim(0) != n || grad_out.dim(1) != oc_ ||
      grad_out.dim(2) != oh || grad_out.dim(3) != ow) {
    throw std::invalid_argument("Conv2D: bad grad shape");
  }
  Tensor grad_in(x.shape());
  const Tensor& wt = w_.value;
  Tensor& dw = w_.grad;
  Tensor& db = b_.grad;
  // Serial over batch: parameter gradient accumulation is shared state.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t oc = 0; oc < oc_; ++oc) {
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          const float g = grad_out.at(i, oc, oy, ox);
          if (g == 0.0f) continue;
          db[oc] += g;
          const std::size_t iy0 = oy * stride_, ix0 = ox * stride_;
          for (std::size_t ic = 0; ic < ic_; ++ic) {
            for (std::size_t ky = 0; ky < k_; ++ky) {
              const float* xrow = &x.at(i, ic, iy0 + ky, ix0);
              float* dxrow = &grad_in.at(i, ic, iy0 + ky, ix0);
              float* dwrow = &dw.at(oc, ic, ky, 0);
              const float* wrow = &wt.at(oc, ic, ky, 0);
              for (std::size_t kx = 0; kx < k_; ++kx) {
                dwrow[kx] += g * xrow[kx];
                dxrow[kx] += g * wrow[kx];
              }
            }
          }
        }
      }
    }
  }
  return grad_in;
}

Tensor MaxPool2D::forward(const Tensor& x, bool /*train*/) {
  if (x.rank() != 4) throw std::invalid_argument("MaxPool2D: rank != 4");
  last_input_ = x;
  const std::size_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const std::size_t oh = h / 2, ow = w / 2;
  if (oh == 0 || ow == 0) {
    throw std::invalid_argument("MaxPool2D: input too small");
  }
  Tensor y({n, c, oh, ow});
  argmax_.assign(y.size(), 0);
  std::size_t out_idx = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t dy = 0; dy < 2; ++dy) {
            for (std::size_t dx = 0; dx < 2; ++dx) {
              const std::size_t iy = oy * 2 + dy, ix = ox * 2 + dx;
              const float v = x.at(i, ch, iy, ix);
              if (v > best) {
                best = v;
                best_idx = ((i * c + ch) * h + iy) * w + ix;
              }
            }
          }
          y[out_idx] = best;
          argmax_[out_idx] = best_idx;
          ++out_idx;
        }
      }
    }
  }
  return y;
}

Tensor MaxPool2D::backward(const Tensor& grad_out) {
  if (grad_out.size() != argmax_.size()) {
    throw std::invalid_argument("MaxPool2D: bad grad size");
  }
  Tensor grad_in(last_input_.shape());
  for (std::size_t i = 0; i < grad_out.size(); ++i) {
    grad_in[argmax_[i]] += grad_out[i];
  }
  return grad_in;
}

Conv3D::Conv3D(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel_d, std::size_t kernel, std::size_t stride_d,
               std::size_t stride, util::Rng& rng)
    : ic_(in_channels),
      oc_(out_channels),
      kd_(kernel_d),
      k_(kernel),
      stride_d_(stride_d),
      stride_(stride),
      w_(Tensor::randn(
          {out_channels, in_channels, kernel_d, kernel, kernel}, rng,
          std::sqrt(2.0 / static_cast<double>(in_channels * kernel_d *
                                              kernel * kernel)))),
      b_(Tensor({out_channels}, 0.0f)) {
  if (kernel == 0 || kernel_d == 0 || stride == 0 || stride_d == 0) {
    throw std::invalid_argument("Conv3D: zero parameter");
  }
}

Tensor Conv3D::forward(const Tensor& x, bool /*train*/) {
  if (x.rank() != 5 || x.dim(1) != ic_) {
    throw std::invalid_argument("Conv3D: bad input shape " + x.shape_str());
  }
  last_input_ = x;
  const std::size_t n = x.dim(0), d = x.dim(2), h = x.dim(3), w = x.dim(4);
  const std::size_t od = Conv2D::out_dim(d, kd_, stride_d_);
  const std::size_t oh = Conv2D::out_dim(h, k_, stride_);
  const std::size_t ow = Conv2D::out_dim(w, k_, stride_);
  flops_ = 2ull * oc_ * od * oh * ow * ic_ * kd_ * k_ * k_;
  Tensor y({n, oc_, od, oh, ow});
  const Tensor& wt = w_.value;
  const Tensor& bt = b_.value;
  util::ThreadPool::shared().parallel_for_chunks(
      0, n, [&](std::size_t n0, std::size_t n1) {
        for (std::size_t i = n0; i < n1; ++i) {
          for (std::size_t oc = 0; oc < oc_; ++oc) {
            for (std::size_t oz = 0; oz < od; ++oz) {
              for (std::size_t oy = 0; oy < oh; ++oy) {
                for (std::size_t ox = 0; ox < ow; ++ox) {
                  float acc = bt[oc];
                  const std::size_t iz0 = oz * stride_d_;
                  const std::size_t iy0 = oy * stride_, ix0 = ox * stride_;
                  for (std::size_t ic = 0; ic < ic_; ++ic) {
                    for (std::size_t kz = 0; kz < kd_; ++kz) {
                      for (std::size_t ky = 0; ky < k_; ++ky) {
                        const float* xrow =
                            &x.at(i, ic, iz0 + kz, iy0 + ky, ix0);
                        const float* wrow = &wt.at(oc, ic, kz, ky, 0);
                        for (std::size_t kx = 0; kx < k_; ++kx) {
                          acc += xrow[kx] * wrow[kx];
                        }
                      }
                    }
                  }
                  y.at(i, oc, oz, oy, ox) = acc;
                }
              }
            }
          }
        }
      });
  return y;
}

Tensor Conv3D::backward(const Tensor& grad_out) {
  const Tensor& x = last_input_;
  const std::size_t n = x.dim(0), d = x.dim(2), h = x.dim(3), w = x.dim(4);
  const std::size_t od = Conv2D::out_dim(d, kd_, stride_d_);
  const std::size_t oh = Conv2D::out_dim(h, k_, stride_);
  const std::size_t ow = Conv2D::out_dim(w, k_, stride_);
  if (grad_out.rank() != 5 || grad_out.dim(0) != n ||
      grad_out.dim(1) != oc_ || grad_out.dim(2) != od ||
      grad_out.dim(3) != oh || grad_out.dim(4) != ow) {
    throw std::invalid_argument("Conv3D: bad grad shape");
  }
  Tensor grad_in(x.shape());
  const Tensor& wt = w_.value;
  Tensor& dw = w_.grad;
  Tensor& db = b_.grad;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t oc = 0; oc < oc_; ++oc) {
      for (std::size_t oz = 0; oz < od; ++oz) {
        for (std::size_t oy = 0; oy < oh; ++oy) {
          for (std::size_t ox = 0; ox < ow; ++ox) {
            const float g = grad_out.at(i, oc, oz, oy, ox);
            if (g == 0.0f) continue;
            db[oc] += g;
            const std::size_t iz0 = oz * stride_d_;
            const std::size_t iy0 = oy * stride_, ix0 = ox * stride_;
            for (std::size_t ic = 0; ic < ic_; ++ic) {
              for (std::size_t kz = 0; kz < kd_; ++kz) {
                for (std::size_t ky = 0; ky < k_; ++ky) {
                  const float* xrow = &x.at(i, ic, iz0 + kz, iy0 + ky, ix0);
                  float* dxrow = &grad_in.at(i, ic, iz0 + kz, iy0 + ky, ix0);
                  float* dwrow = &dw.at(oc, ic, kz, ky, 0);
                  const float* wrow = &wt.at(oc, ic, kz, ky, 0);
                  for (std::size_t kx = 0; kx < k_; ++kx) {
                    dwrow[kx] += g * xrow[kx];
                    dxrow[kx] += g * wrow[kx];
                  }
                }
              }
            }
          }
        }
      }
    }
  }
  return grad_in;
}

}  // namespace autolearn::ml
