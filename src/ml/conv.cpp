#include "ml/conv.hpp"

#include <cmath>
#include <cstring>
#include <limits>

#include "util/thread_pool.hpp"

namespace autolearn::ml {
namespace {

// ScratchArena slot ids shared by Conv2D and Conv3D. Both convolutions
// run the same batched im2col + GEMM pipeline: the whole batch shares one
// [CKK, N*P] patch matrix (sample i owns columns [i*P, (i+1)*P)), so the
// forward pass is a single W[oc, CKK] @ col GEMM and the backward pass is
// the two adjoint GEMMs — the batch reduction for dW happens inside the
// GEMM k-loop, which is what keeps it deterministic under parallelism.
constexpr std::size_t kSlotCol = 0;   // im2col patch matrix   [CKK, N*P]
constexpr std::size_t kSlotOut = 1;   // batched output        [OC, N*P]
constexpr std::size_t kSlotGrad = 2;  // gathered grad_out     [OC, N*P]
constexpr std::size_t kSlotDcol = 3;  // grad patch matrix     [CKK, N*P]

}  // namespace

Conv2D::Conv2D(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t stride, util::Rng& rng)
    : ic_(in_channels),
      oc_(out_channels),
      k_(kernel),
      stride_(stride),
      w_(Tensor::randn({out_channels, in_channels, kernel, kernel}, rng,
                       std::sqrt(2.0 / static_cast<double>(
                                           in_channels * kernel * kernel)))),
      b_(Tensor({out_channels}, 0.0f)) {
  if (kernel == 0 || stride == 0 || in_channels == 0 || out_channels == 0) {
    throw std::invalid_argument("Conv2D: zero parameter");
  }
}

Tensor Conv2D::forward(const Tensor& x, bool /*train*/) {
  if (x.rank() != 4 || x.dim(1) != ic_) {
    throw std::invalid_argument("Conv2D: bad input shape " + x.shape_str());
  }
  in_shape_ = x.shape();
  const std::size_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const std::size_t oh = out_dim(h, k_, stride_), ow = out_dim(w, k_, stride_);
  flops_ = 2ull * oc_ * oh * ow * ic_ * k_ * k_;
  const std::size_t p = oh * ow, ckk = ic_ * k_ * k_, np = n * p;
  float* col = scratch_.get(kSlotCol, ckk * np);
  auto& pool = util::ThreadPool::shared();
  pool.parallel_for_chunks(0, n, [&](std::size_t n0, std::size_t n1) {
    for (std::size_t i = n0; i < n1; ++i) {
      im2col(x.data() + i * ic_ * h * w, ic_, h, w, k_, k_, stride_, stride_,
             col + i * p, np);
    }
  });
  // One GEMM for the whole batch: Y[oc, N*P] = W[oc, CKK] @ col[CKK, N*P].
  float* yall = scratch_.get(kSlotOut, oc_ * np);
  sgemm(false, false, oc_, np, ckk, 1.0f, w_.value.data(), ckk, col, np,
        0.0f, yall, np);
  Tensor y({n, oc_, oh, ow});
  const Tensor& bt = b_.value;
  pool.parallel_for_chunks(0, n, [&](std::size_t n0, std::size_t n1) {
    for (std::size_t i = n0; i < n1; ++i) {
      for (std::size_t oc = 0; oc < oc_; ++oc) {
        const float* src = yall + oc * np + i * p;
        float* dst = y.data() + (i * oc_ + oc) * p;
        const float bias = bt[oc];
        for (std::size_t q = 0; q < p; ++q) dst[q] = src[q] + bias;
      }
    }
  });
  return y;
}

Tensor Conv2D::backward(const Tensor& grad_out) {
  const std::size_t n = in_shape_[0], h = in_shape_[2], w = in_shape_[3];
  const std::size_t oh = out_dim(h, k_, stride_), ow = out_dim(w, k_, stride_);
  if (grad_out.rank() != 4 || grad_out.dim(0) != n || grad_out.dim(1) != oc_ ||
      grad_out.dim(2) != oh || grad_out.dim(3) != ow) {
    throw std::invalid_argument("Conv2D: bad grad shape");
  }
  const std::size_t p = oh * ow, ckk = ic_ * k_ * k_, np = n * p;
  auto& pool = util::ThreadPool::shared();
  // Gather grad_out into the batched [OC, N*P] layout matching col.
  float* gall = scratch_.get(kSlotGrad, oc_ * np);
  pool.parallel_for_chunks(0, n, [&](std::size_t n0, std::size_t n1) {
    for (std::size_t i = n0; i < n1; ++i) {
      for (std::size_t oc = 0; oc < oc_; ++oc) {
        std::memcpy(gall + oc * np + i * p,
                    grad_out.data() + (i * oc_ + oc) * p, p * sizeof(float));
      }
    }
  });
  Tensor& db = b_.grad;
  for (std::size_t oc = 0; oc < oc_; ++oc) {
    const float* row = gall + oc * np;
    float acc = 0.0f;
    for (std::size_t q = 0; q < np; ++q) acc += row[q];
    db[oc] += acc;
  }
  // dW[oc, CKK] += G[oc, N*P] @ col[CKK, N*P]^T — the batch+position
  // reduction runs inside the GEMM k-loop (col is still valid from the
  // forward pass on this batch).
  float* col = scratch_.get(kSlotCol, ckk * np);
  sgemm(false, true, oc_, ckk, np, 1.0f, gall, np, col, np, 1.0f,
        w_.grad.data(), ckk);
  // dcol[CKK, N*P] = W[oc, CKK]^T @ G[oc, N*P], scattered back per sample.
  float* dcol = scratch_.get(kSlotDcol, ckk * np);
  sgemm(true, false, ckk, np, oc_, 1.0f, w_.value.data(), ckk, gall, np,
        0.0f, dcol, np);
  Tensor grad_in(in_shape_);
  pool.parallel_for_chunks(0, n, [&](std::size_t n0, std::size_t n1) {
    for (std::size_t i = n0; i < n1; ++i) {
      col2im(dcol + i * p, np, ic_, h, w, k_, k_, stride_, stride_,
             grad_in.data() + i * ic_ * h * w);
    }
  });
  return grad_in;
}

Tensor MaxPool2D::forward(const Tensor& x, bool /*train*/) {
  if (x.rank() != 4) throw std::invalid_argument("MaxPool2D: rank != 4");
  in_shape_ = x.shape();
  const std::size_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const std::size_t oh = h / 2, ow = w / 2;
  if (oh == 0 || ow == 0) {
    throw std::invalid_argument("MaxPool2D: input too small");
  }
  Tensor y({n, c, oh, ow});
  argmax_.assign(y.size(), 0);
  std::size_t out_idx = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t dy = 0; dy < 2; ++dy) {
            for (std::size_t dx = 0; dx < 2; ++dx) {
              const std::size_t iy = oy * 2 + dy, ix = ox * 2 + dx;
              const float v = x.at(i, ch, iy, ix);
              if (v > best) {
                best = v;
                best_idx = ((i * c + ch) * h + iy) * w + ix;
              }
            }
          }
          y[out_idx] = best;
          argmax_[out_idx] = best_idx;
          ++out_idx;
        }
      }
    }
  }
  return y;
}

Tensor MaxPool2D::backward(const Tensor& grad_out) {
  if (grad_out.size() != argmax_.size()) {
    throw std::invalid_argument("MaxPool2D: bad grad size");
  }
  Tensor grad_in(in_shape_);
  for (std::size_t i = 0; i < grad_out.size(); ++i) {
    grad_in[argmax_[i]] += grad_out[i];
  }
  return grad_in;
}

Conv3D::Conv3D(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel_d, std::size_t kernel, std::size_t stride_d,
               std::size_t stride, util::Rng& rng)
    : ic_(in_channels),
      oc_(out_channels),
      kd_(kernel_d),
      k_(kernel),
      stride_d_(stride_d),
      stride_(stride),
      w_(Tensor::randn(
          {out_channels, in_channels, kernel_d, kernel, kernel}, rng,
          std::sqrt(2.0 / static_cast<double>(in_channels * kernel_d *
                                              kernel * kernel)))),
      b_(Tensor({out_channels}, 0.0f)) {
  if (kernel == 0 || kernel_d == 0 || stride == 0 || stride_d == 0) {
    throw std::invalid_argument("Conv3D: zero parameter");
  }
}

Tensor Conv3D::forward(const Tensor& x, bool /*train*/) {
  if (x.rank() != 5 || x.dim(1) != ic_) {
    throw std::invalid_argument("Conv3D: bad input shape " + x.shape_str());
  }
  in_shape_ = x.shape();
  const std::size_t n = x.dim(0), d = x.dim(2), h = x.dim(3), w = x.dim(4);
  const std::size_t od = Conv2D::out_dim(d, kd_, stride_d_);
  const std::size_t oh = Conv2D::out_dim(h, k_, stride_);
  const std::size_t ow = Conv2D::out_dim(w, k_, stride_);
  flops_ = 2ull * oc_ * od * oh * ow * ic_ * kd_ * k_ * k_;
  const std::size_t p = od * oh * ow, ckk = ic_ * kd_ * k_ * k_, np = n * p;
  float* col = scratch_.get(kSlotCol, ckk * np);
  auto& pool = util::ThreadPool::shared();
  pool.parallel_for_chunks(0, n, [&](std::size_t n0, std::size_t n1) {
    for (std::size_t i = n0; i < n1; ++i) {
      vol2col(x.data() + i * ic_ * d * h * w, ic_, d, h, w, kd_, k_, k_,
              stride_d_, stride_, stride_, col + i * p, np);
    }
  });
  float* yall = scratch_.get(kSlotOut, oc_ * np);
  sgemm(false, false, oc_, np, ckk, 1.0f, w_.value.data(), ckk, col, np,
        0.0f, yall, np);
  Tensor y({n, oc_, od, oh, ow});
  const Tensor& bt = b_.value;
  pool.parallel_for_chunks(0, n, [&](std::size_t n0, std::size_t n1) {
    for (std::size_t i = n0; i < n1; ++i) {
      for (std::size_t oc = 0; oc < oc_; ++oc) {
        const float* src = yall + oc * np + i * p;
        float* dst = y.data() + (i * oc_ + oc) * p;
        const float bias = bt[oc];
        for (std::size_t q = 0; q < p; ++q) dst[q] = src[q] + bias;
      }
    }
  });
  return y;
}

Tensor Conv3D::backward(const Tensor& grad_out) {
  const std::size_t n = in_shape_[0], d = in_shape_[2], h = in_shape_[3],
                    w = in_shape_[4];
  const std::size_t od = Conv2D::out_dim(d, kd_, stride_d_);
  const std::size_t oh = Conv2D::out_dim(h, k_, stride_);
  const std::size_t ow = Conv2D::out_dim(w, k_, stride_);
  if (grad_out.rank() != 5 || grad_out.dim(0) != n ||
      grad_out.dim(1) != oc_ || grad_out.dim(2) != od ||
      grad_out.dim(3) != oh || grad_out.dim(4) != ow) {
    throw std::invalid_argument("Conv3D: bad grad shape");
  }
  const std::size_t p = od * oh * ow, ckk = ic_ * kd_ * k_ * k_, np = n * p;
  auto& pool = util::ThreadPool::shared();
  float* gall = scratch_.get(kSlotGrad, oc_ * np);
  pool.parallel_for_chunks(0, n, [&](std::size_t n0, std::size_t n1) {
    for (std::size_t i = n0; i < n1; ++i) {
      for (std::size_t oc = 0; oc < oc_; ++oc) {
        std::memcpy(gall + oc * np + i * p,
                    grad_out.data() + (i * oc_ + oc) * p, p * sizeof(float));
      }
    }
  });
  Tensor& db = b_.grad;
  for (std::size_t oc = 0; oc < oc_; ++oc) {
    const float* row = gall + oc * np;
    float acc = 0.0f;
    for (std::size_t q = 0; q < np; ++q) acc += row[q];
    db[oc] += acc;
  }
  float* col = scratch_.get(kSlotCol, ckk * np);
  sgemm(false, true, oc_, ckk, np, 1.0f, gall, np, col, np, 1.0f,
        w_.grad.data(), ckk);
  float* dcol = scratch_.get(kSlotDcol, ckk * np);
  sgemm(true, false, ckk, np, oc_, 1.0f, w_.value.data(), ckk, gall, np,
        0.0f, dcol, np);
  Tensor grad_in(in_shape_);
  pool.parallel_for_chunks(0, n, [&](std::size_t n0, std::size_t n1) {
    for (std::size_t i = n0; i < n1; ++i) {
      col2vol(dcol + i * p, np, ic_, d, h, w, kd_, k_, k_, stride_d_, stride_,
              stride_, grad_in.data() + i * ic_ * d * h * w);
    }
  });
  return grad_in;
}

}  // namespace autolearn::ml
