// Convolution and pooling layers (valid padding, square kernels).
//
// These mirror the DonkeyCar Keras models' conv stacks at reduced
// resolution. Layout is channels-first: Conv2D takes [N, C, H, W]; Conv3D
// takes [N, C, D, H, W] where D is the frame (time) axis of the "3D" model.
#pragma once

#include "ml/gemm.hpp"
#include "ml/layer.hpp"
#include "util/rng.hpp"

namespace autolearn::ml {

class Conv2D : public Layer {
 public:
  Conv2D(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel, std::size_t stride, util::Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override { return {&w_, &b_}; }
  std::string name() const override { return "conv2d"; }
  std::uint64_t flops_per_sample() const override { return flops_; }

  static std::size_t out_dim(std::size_t in, std::size_t kernel,
                             std::size_t stride) {
    if (in < kernel) {
      throw std::invalid_argument("conv: input smaller than kernel");
    }
    return (in - kernel) / stride + 1;
  }

  std::size_t in_channels() const { return ic_; }
  std::size_t out_channels() const { return oc_; }
  std::size_t kernel() const { return k_; }
  std::size_t stride() const { return stride_; }

  /// Plan-compile hook (ml/plan.hpp): sets the per-sample FLOP estimate
  /// from the input geometry without running a forward. The compiled path
  /// never calls forward, but serve pricing reads flops_per_sample.
  void prime_flops(std::size_t h, std::size_t w) const {
    flops_ = 2ull * oc_ * out_dim(h, k_, stride_) * out_dim(w, k_, stride_) *
             ic_ * k_ * k_;
  }

 private:
  std::size_t ic_, oc_, k_, stride_;
  Param w_, b_;
  // Backward reads the input only through the im2col scratch (still valid
  // from the forward pass), so only the shape is retained — no copy.
  std::vector<std::size_t> in_shape_;
  // im2col patch matrix, batched output, gathered gradient, and gradient
  // patch matrix — reused across batches so the hot path never allocates.
  ScratchArena scratch_;
  mutable std::uint64_t flops_ = 0;  // set on first forward (needs H, W)
};

/// 2x2 max pooling with stride 2.
class MaxPool2D : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "maxpool2d"; }

 private:
  std::vector<std::size_t> in_shape_;  // backward only needs the shape
  std::vector<std::size_t> argmax_;
};

class Conv3D : public Layer {
 public:
  /// kernel_d along the frame axis; spatial kernel is square.
  Conv3D(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel_d, std::size_t kernel, std::size_t stride_d,
         std::size_t stride, util::Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override { return {&w_, &b_}; }
  std::string name() const override { return "conv3d"; }
  std::uint64_t flops_per_sample() const override { return flops_; }

  std::size_t in_channels() const { return ic_; }
  std::size_t out_channels() const { return oc_; }
  std::size_t kernel_d() const { return kd_; }
  std::size_t kernel() const { return k_; }
  std::size_t stride_d() const { return stride_d_; }
  std::size_t stride() const { return stride_; }

  /// Plan-compile hook; see Conv2D::prime_flops.
  void prime_flops(std::size_t d, std::size_t h, std::size_t w) const {
    flops_ = 2ull * oc_ * Conv2D::out_dim(d, kd_, stride_d_) *
             Conv2D::out_dim(h, k_, stride_) * Conv2D::out_dim(w, k_, stride_) *
             ic_ * kd_ * k_ * k_;
  }

 private:
  std::size_t ic_, oc_, kd_, k_, stride_d_, stride_;
  Param w_, b_;
  std::vector<std::size_t> in_shape_;  // see Conv2D::in_shape_
  ScratchArena scratch_;
  mutable std::uint64_t flops_ = 0;
};

}  // namespace autolearn::ml
