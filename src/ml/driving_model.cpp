#include "ml/driving_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ml/conv.hpp"
#include "ml/layers.hpp"
#include "ml/loss.hpp"
#include "ml/lstm.hpp"
#include "ml/plan.hpp"
#include "util/binio.hpp"

namespace autolearn::ml {

const char* to_string(Precision precision) {
  return precision == Precision::Int8 ? "int8" : "fp32";
}

const char* to_string(ModelType type) {
  switch (type) {
    case ModelType::Linear: return "linear";
    case ModelType::Categorical: return "categorical";
    case ModelType::Inferred: return "inferred";
    case ModelType::Memory: return "memory";
    case ModelType::Rnn: return "rnn";
    case ModelType::Conv3d: return "3d";
  }
  return "?";
}

ModelType model_type_from_string(const std::string& name) {
  for (ModelType t : all_model_types()) {
    if (name == to_string(t)) return t;
  }
  throw std::invalid_argument("unknown model type: " + name);
}

std::vector<ModelType> all_model_types() {
  return {ModelType::Linear, ModelType::Memory, ModelType::Conv3d,
          ModelType::Categorical, ModelType::Inferred, ModelType::Rnn};
}

void DrivingModel::predict_batch(const Sample* obs, std::size_t n,
                                 Prediction* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = predict(obs[i]);
}

namespace {

std::vector<const Sample*> batch_ptrs(const Sample* obs, std::size_t n) {
  std::vector<const Sample*> ptrs;
  ptrs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) ptrs.push_back(obs + i);
  return ptrs;
}

/// Copies the last frame of each sample into an [N, 1, H, W] tensor.
Tensor frames_tensor(const std::vector<const Sample*>& batch,
                     std::size_t img_h, std::size_t img_w) {
  Tensor x({batch.size(), 1, img_h, img_w});
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Sample& s = *batch[i];
    if (s.frames.empty()) throw std::invalid_argument("sample: no frames");
    const camera::Image& img = s.frames.back();
    if (img.height() != img_h || img.width() != img_w) {
      throw std::invalid_argument("sample: frame size mismatch");
    }
    std::copy(img.pixels().begin(), img.pixels().end(),
              x.data() + i * img_h * img_w);
  }
  return x;
}

/// Copies the last `t` frames of each sample into [N*T, 1, H, W]
/// (time folded into the batch for a shared encoder) keeping order
/// oldest..newest per sample.
Tensor frames_tensor_seq(const std::vector<const Sample*>& batch,
                         std::size_t t, std::size_t img_h, std::size_t img_w) {
  Tensor x({batch.size() * t, 1, img_h, img_w});
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Sample& s = *batch[i];
    if (s.frames.size() < t) {
      throw std::invalid_argument("sample: too few frames for sequence");
    }
    for (std::size_t j = 0; j < t; ++j) {
      const camera::Image& img = s.frames[s.frames.size() - t + j];
      if (img.height() != img_h || img.width() != img_w) {
        throw std::invalid_argument("sample: frame size mismatch");
      }
      std::copy(img.pixels().begin(), img.pixels().end(),
                x.data() + (i * t + j) * img_h * img_w);
    }
  }
  return x;
}

/// Stacks the last `t` frames as the depth axis: [N, 1, T, H, W].
Tensor frames_tensor_3d(const std::vector<const Sample*>& batch,
                        std::size_t t, std::size_t img_h, std::size_t img_w) {
  Tensor x({batch.size(), 1, t, img_h, img_w});
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Sample& s = *batch[i];
    if (s.frames.size() < t) {
      throw std::invalid_argument("sample: too few frames for 3d stack");
    }
    for (std::size_t j = 0; j < t; ++j) {
      const camera::Image& img = s.frames[s.frames.size() - t + j];
      std::copy(img.pixels().begin(), img.pixels().end(),
                x.data() + (i * t + j) * img_h * img_w);
    }
  }
  return x;
}

// Raw-pointer staging twins of the frames_tensor helpers above: identical
// validation and copy order, but writing into a CompiledNet's arena input
// slot instead of a freshly allocated Tensor. The plan hot path must not
// allocate, and the bitwise oracle requires identical exception behavior.

void stage_frames(const Sample* obs, std::size_t n, std::size_t img_h,
                  std::size_t img_w, float* x) {
  for (std::size_t i = 0; i < n; ++i) {
    const Sample& s = obs[i];
    if (s.frames.empty()) throw std::invalid_argument("sample: no frames");
    const camera::Image& img = s.frames.back();
    if (img.height() != img_h || img.width() != img_w) {
      throw std::invalid_argument("sample: frame size mismatch");
    }
    std::copy(img.pixels().begin(), img.pixels().end(),
              x + i * img_h * img_w);
  }
}

void stage_frames_seq(const Sample* obs, std::size_t n, std::size_t t,
                      std::size_t img_h, std::size_t img_w, float* x) {
  for (std::size_t i = 0; i < n; ++i) {
    const Sample& s = obs[i];
    if (s.frames.size() < t) {
      throw std::invalid_argument("sample: too few frames for sequence");
    }
    for (std::size_t j = 0; j < t; ++j) {
      const camera::Image& img = s.frames[s.frames.size() - t + j];
      if (img.height() != img_h || img.width() != img_w) {
        throw std::invalid_argument("sample: frame size mismatch");
      }
      std::copy(img.pixels().begin(), img.pixels().end(),
                x + (i * t + j) * img_h * img_w);
    }
  }
}

void stage_frames_3d(const Sample* obs, std::size_t n, std::size_t t,
                     std::size_t img_h, std::size_t img_w, float* x) {
  for (std::size_t i = 0; i < n; ++i) {
    const Sample& s = obs[i];
    if (s.frames.size() < t) {
      throw std::invalid_argument("sample: too few frames for 3d stack");
    }
    for (std::size_t j = 0; j < t; ++j) {
      const camera::Image& img = s.frames[s.frames.size() - t + j];
      std::copy(img.pixels().begin(), img.pixels().end(),
                x + (i * t + j) * img_h * img_w);
    }
  }
}

/// Standard [steering, throttle] regression decode, identical clamps to
/// the interpreted paths.
void decode_regression(const float* y, std::size_t n, Prediction* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = Prediction{std::clamp<double>(y[i * 2 + 0], -1, 1),
                        std::clamp<double>(y[i * 2 + 1], 0, 1)};
  }
}

/// softmax_row (ml/loss.cpp) replicated onto preallocated scratch: float
/// max, float exp values, double denominator accumulation, float(v/denom)
/// — the exact same arithmetic, so the argmax picks the same bin even in
/// near-tie cases.
void softmax_into(const float* row, std::size_t begin, std::size_t end,
                  float* out) {
  const std::size_t classes = end - begin;
  float maxv = row[begin];
  for (std::size_t c = 1; c < classes; ++c) {
    maxv = std::max(maxv, row[begin + c]);
  }
  double denom = 0;
  for (std::size_t c = 0; c < classes; ++c) {
    out[c] = std::exp(row[begin + c] - maxv);
    denom += out[c];
  }
  for (std::size_t c = 0; c < classes; ++c) {
    out[c] = static_cast<float>(out[c] / denom);
  }
}

Tensor targets_tensor(const std::vector<const Sample*>& batch) {
  Tensor y({batch.size(), 2});
  for (std::size_t i = 0; i < batch.size(); ++i) {
    y.at(i, 0) = batch[i]->steering;
    y.at(i, 1) = batch[i]->throttle;
  }
  return y;
}

/// Standard conv encoder for 24x32-class frames: three strided 3x3 convs.
void add_encoder(Sequential& net, util::Rng& rng) {
  net.add<Conv2D>(1, 8, 3, 2, rng);
  net.add<ReLU>();
  net.add<Conv2D>(8, 16, 3, 2, rng);
  net.add<ReLU>();
  net.add<Conv2D>(16, 32, 3, 2, rng);
  net.add<ReLU>();
  net.add<Flatten>();
}

std::size_t encoder_features(std::size_t img_h, std::size_t img_w) {
  auto conv = [](std::size_t d) { return Conv2D::out_dim(d, 3, 2); };
  const std::size_t h = conv(conv(conv(img_h)));
  const std::size_t w = conv(conv(conv(img_w)));
  return 32 * h * w;
}

/// Bin/unbin helpers for the categorical model (linear bins as in
/// donkeycar's linear_bin / linear_unbin utilities).
std::size_t to_bin(double v, double lo, double hi, std::size_t bins) {
  const double t = std::clamp((v - lo) / (hi - lo), 0.0, 1.0);
  return std::min(bins - 1,
                  static_cast<std::size_t>(std::lround(t * (bins - 1))));
}

double from_bin(std::size_t bin, double lo, double hi, std::size_t bins) {
  return lo + (hi - lo) * static_cast<double>(bin) /
                  static_cast<double>(bins - 1);
}

// ---------------------------------------------------------------------------

/// Shared plumbing: a Sequential net + Adam and (de)serialization.
class NetModel : public DrivingModel {
 public:
  explicit NetModel(const ModelConfig& cfg)
      : cfg_(cfg), rng_(cfg.seed), opt_(cfg.lr) {}

  /// Single-sample inference is the batched path at n = 1, so predict and
  /// predict_batch can never drift apart.
  Prediction predict(const Sample& obs) final {
    Prediction p;
    predict_batch(&obs, 1, &p);
    return p;
  }

  /// Every zoo model must provide the real batched forward (the inherited
  /// fallback loop would recurse through predict).
  void predict_batch(const Sample* obs, std::size_t n,
                     Prediction* out) override = 0;

  std::size_t num_parameters() override {
    std::size_t n = 0;
    for (Sequential* s : nets()) n += s->num_parameters();
    return n;
  }
  std::uint64_t flops_per_sample() const override {
    return net_.flops_per_sample();
  }
  std::vector<Sequential*> mutable_nets() override { return nets(); }
  void save(std::ostream& os) override {
    for (Sequential* s : nets()) s->save_params(os);
  }
  void load(std::istream& is) override {
    for (Sequential* s : nets()) s->load_params(is);
    reattach_plan();
  }
  void save_full(std::ostream& os) override {
    for (Sequential* s : nets()) s->save_params(os);
    for (Sequential* s : nets()) s->save_state(os);
    opt_.save_state(os);
    util::write_rng_state(os, rng_.state());
  }
  void load_full(std::istream& is) override {
    for (Sequential* s : nets()) s->load_params(is);
    for (Sequential* s : nets()) s->load_state(is);
    opt_.load_state(is);
    util::RngState st;
    if (!util::read_rng_state(is, st)) {
      throw ModelLoadError(ModelLoadError::Code::Truncated,
                           "DrivingModel: truncated RNG state");
    }
    rng_.set_state(st);
    reattach_plan();
  }

  /// Compiles every net through the model's build_plan hook. Idempotent
  /// for an unchanged cap — replicated registries publish one shared
  /// model to many replicas and must not recompile per replica.
  bool attach_plan(std::size_t max_batch) final {
    if (plan_ && plan_->max_batch() == max_batch) return true;
    plan_.reset();
    auto plan = std::make_unique<CompiledModel>(max_batch);
    build_plan(*plan, max_batch);
    plan_ = std::move(plan);
    return true;
  }
  void detach_plan() final { plan_.reset(); }
  CompiledModel* plan() final { return plan_.get(); }

 protected:
  /// Adds this model's nets to the plan (and sizes any decode scratch).
  /// The CompiledNet pointers the model keeps from add_net stay valid for
  /// the plan's lifetime and are only dereferenced under a plan_ check.
  virtual void build_plan(CompiledModel& plan, std::size_t max_batch) = 0;

  /// True when a batch of n should take the compiled path.
  bool use_plan(std::size_t n) const {
    return plan_ != nullptr && n <= plan_->max_batch();
  }

  /// Parameter loads re-seat tensor storage, which invalidates the
  /// parameter pointers a plan resolved at compile time — rebuild.
  void reattach_plan() {
    if (!plan_) return;
    const std::size_t max_batch = plan_->max_batch();
    plan_.reset();
    attach_plan(max_batch);
  }

  std::unique_ptr<CompiledModel> plan_;

  /// Every Sequential the model owns, in parameter order. The memory/rnn
  /// models add their head here, which hoists all (de)serialization and
  /// parameter counting into NetModel.
  virtual std::vector<Sequential*> nets() { return {&net_}; }

  ModelConfig cfg_;
  util::Rng rng_;
  Sequential net_;
  Adam opt_;
};

// --- linear ----------------------------------------------------------------

class LinearModel : public NetModel {
 public:
  explicit LinearModel(const ModelConfig& cfg) : NetModel(cfg) {
    add_encoder(net_, rng_);
    const std::size_t f = encoder_features(cfg.img_h, cfg.img_w);
    net_.add<Dense>(f, 64, rng_);
    net_.add<ReLU>();
    net_.add<Dropout>(cfg.dropout, rng_.split());
    net_.add<Dense>(64, 2, rng_);
  }

  ModelType type() const override { return ModelType::Linear; }

  void predict_batch(const Sample* obs, std::size_t n,
                     Prediction* out) override {
    if (n == 0) return;
    if (use_plan(n)) {
      stage_frames(obs, n, cfg_.img_h, cfg_.img_w, net_plan_->input());
      decode_regression(net_plan_->run(n), n, out);
      plan_->record_exec(n);
      return;
    }
    const Tensor y = net_.forward(
        frames_tensor(batch_ptrs(obs, n), cfg_.img_h, cfg_.img_w),
        /*train=*/false);
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = Prediction{std::clamp<double>(y.at(i, 0), -1, 1),
                          std::clamp<double>(y.at(i, 1), 0, 1)};
    }
  }

  double train_batch(const std::vector<const Sample*>& batch) override {
    const Tensor x = frames_tensor(batch, cfg_.img_h, cfg_.img_w);
    const Tensor pred = net_.forward(x, /*train=*/true);
    auto [loss, grad] = mse_loss(pred, targets_tensor(batch));
    net_.backward(grad);
    opt_.step(net_.params());
    return loss;
  }

  double eval_batch(const std::vector<const Sample*>& batch) override {
    const Tensor x = frames_tensor(batch, cfg_.img_h, cfg_.img_w);
    const Tensor pred = net_.forward(x, /*train=*/false);
    return mse_loss(pred, targets_tensor(batch)).first;
  }

 protected:
  void build_plan(CompiledModel& plan, std::size_t max_batch) override {
    net_plan_ = &plan.add_net(net_, {1, cfg_.img_h, cfg_.img_w}, max_batch);
  }

 private:
  CompiledNet* net_plan_ = nullptr;
};

// --- categorical -------------------------------------------------------------

class CategoricalModel : public NetModel {
 public:
  explicit CategoricalModel(const ModelConfig& cfg) : NetModel(cfg) {
    add_encoder(net_, rng_);
    const std::size_t f = encoder_features(cfg.img_h, cfg.img_w);
    net_.add<Dense>(f, 64, rng_);
    net_.add<ReLU>();
    net_.add<Dropout>(cfg.dropout, rng_.split());
    net_.add<Dense>(64, cfg.steering_bins + cfg.throttle_bins, rng_);
  }

  ModelType type() const override { return ModelType::Categorical; }

  void predict_batch(const Sample* obs, std::size_t n,
                     Prediction* out) override {
    if (n == 0) return;
    if (use_plan(n)) {
      stage_frames(obs, n, cfg_.img_h, cfg_.img_w, net_plan_->input());
      const float* logits = net_plan_->run(n);
      const std::size_t stride = cfg_.steering_bins + cfg_.throttle_bins;
      for (std::size_t i = 0; i < n; ++i) {
        const float* row = logits + i * stride;
        softmax_into(row, 0, cfg_.steering_bins, plan_ps_.data());
        softmax_into(row, cfg_.steering_bins, stride, plan_pt_.data());
        const std::size_t sb = static_cast<std::size_t>(
            std::max_element(plan_ps_.begin(), plan_ps_.end()) -
            plan_ps_.begin());
        const std::size_t tb = static_cast<std::size_t>(
            std::max_element(plan_pt_.begin(), plan_pt_.end()) -
            plan_pt_.begin());
        out[i] = Prediction{from_bin(sb, -1, 1, cfg_.steering_bins),
                            from_bin(tb, 0, 1, cfg_.throttle_bins)};
      }
      plan_->record_exec(n);
      return;
    }
    const Tensor logits = net_.forward(
        frames_tensor(batch_ptrs(obs, n), cfg_.img_h, cfg_.img_w),
        /*train=*/false);
    for (std::size_t i = 0; i < n; ++i) {
      const auto ps = softmax_row(logits, i, 0, cfg_.steering_bins);
      const auto pt = softmax_row(logits, i, cfg_.steering_bins,
                                  cfg_.steering_bins + cfg_.throttle_bins);
      const std::size_t sb = static_cast<std::size_t>(
          std::max_element(ps.begin(), ps.end()) - ps.begin());
      const std::size_t tb = static_cast<std::size_t>(
          std::max_element(pt.begin(), pt.end()) - pt.begin());
      out[i] = Prediction{from_bin(sb, -1, 1, cfg_.steering_bins),
                          from_bin(tb, 0, 1, cfg_.throttle_bins)};
    }
  }

  double train_batch(const std::vector<const Sample*>& batch) override {
    const Tensor x = frames_tensor(batch, cfg_.img_h, cfg_.img_w);
    const Tensor logits = net_.forward(x, /*train=*/true);
    Tensor grad(logits.shape());
    const double loss = heads_loss(logits, batch, grad);
    net_.backward(grad);
    opt_.step(net_.params());
    return loss;
  }

  double eval_batch(const std::vector<const Sample*>& batch) override {
    const Tensor x = frames_tensor(batch, cfg_.img_h, cfg_.img_w);
    const Tensor logits = net_.forward(x, /*train=*/false);
    Tensor grad(logits.shape());
    return heads_loss(logits, batch, grad);
  }

 protected:
  void build_plan(CompiledModel& plan, std::size_t max_batch) override {
    net_plan_ = &plan.add_net(net_, {1, cfg_.img_h, cfg_.img_w}, max_batch);
    plan_ps_.assign(cfg_.steering_bins, 0.0f);
    plan_pt_.assign(cfg_.throttle_bins, 0.0f);
  }

 private:
  CompiledNet* net_plan_ = nullptr;
  std::vector<float> plan_ps_, plan_pt_;  // per-head softmax scratch

  double heads_loss(const Tensor& logits,
                    const std::vector<const Sample*>& batch, Tensor& grad) {
    std::vector<std::size_t> steer_targets, throttle_targets;
    steer_targets.reserve(batch.size());
    throttle_targets.reserve(batch.size());
    for (const Sample* s : batch) {
      steer_targets.push_back(to_bin(s->steering, -1, 1, cfg_.steering_bins));
      throttle_targets.push_back(to_bin(s->throttle, 0, 1, cfg_.throttle_bins));
    }
    double loss = softmax_xent_slice(logits, 0, cfg_.steering_bins,
                                     steer_targets, grad);
    loss += softmax_xent_slice(logits, cfg_.steering_bins,
                               cfg_.steering_bins + cfg_.throttle_bins,
                               throttle_targets, grad);
    return loss;
  }
};

// --- inferred ----------------------------------------------------------------

class InferredModel : public NetModel {
 public:
  explicit InferredModel(const ModelConfig& cfg) : NetModel(cfg) {
    // Deliberately small: two convs, narrow head. Fast inference is the
    // point — it frees throttle budget in the control loop.
    net_.add<Conv2D>(1, 4, 3, 2, rng_);
    net_.add<ReLU>();
    net_.add<Conv2D>(4, 8, 3, 2, rng_);
    net_.add<ReLU>();
    net_.add<Flatten>();
    auto conv = [](std::size_t d) { return Conv2D::out_dim(d, 3, 2); };
    const std::size_t f = 8 * conv(conv(cfg.img_h)) * conv(conv(cfg.img_w));
    net_.add<Dense>(f, 16, rng_);
    net_.add<ReLU>();
    net_.add<Dense>(16, 1, rng_);
  }

  ModelType type() const override { return ModelType::Inferred; }

  void predict_batch(const Sample* obs, std::size_t n,
                     Prediction* out) override {
    if (n == 0) return;
    if (use_plan(n)) {
      stage_frames(obs, n, cfg_.img_h, cfg_.img_w, net_plan_->input());
      const float* y = net_plan_->run(n);  // one steering column
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = decode_steer(y[i]);
      }
      plan_->record_exec(n);
      return;
    }
    const Tensor y = net_.forward(
        frames_tensor(batch_ptrs(obs, n), cfg_.img_h, cfg_.img_w),
        /*train=*/false);
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = decode_steer(y.at(i, 0));
    }
  }

  double train_batch(const std::vector<const Sample*>& batch) override {
    const Tensor x = frames_tensor(batch, cfg_.img_h, cfg_.img_w);
    const Tensor pred = net_.forward(x, /*train=*/true);
    auto [loss, grad] = mse_loss(pred, steer_targets(batch));
    net_.backward(grad);
    opt_.step(net_.params());
    return loss;
  }

  double eval_batch(const std::vector<const Sample*>& batch) override {
    const Tensor x = frames_tensor(batch, cfg_.img_h, cfg_.img_w);
    const Tensor pred = net_.forward(x, /*train=*/false);
    return mse_loss(pred, steer_targets(batch)).first;
  }

 protected:
  void build_plan(CompiledModel& plan, std::size_t max_batch) override {
    net_plan_ = &plan.add_net(net_, {1, cfg_.img_h, cfg_.img_w}, max_batch);
  }

 private:
  CompiledNet* net_plan_ = nullptr;

  Prediction decode_steer(float raw) const {
    const double steer = std::clamp<double>(raw, -1, 1);
    // Throttle policy: full speed with the wheel straight, easing off as
    // the commanded steering grows.
    const double throttle = std::clamp(
        cfg_.inferred_throttle_base +
            cfg_.inferred_throttle_gain * (1.0 - std::abs(steer)),
        0.0, 1.0);
    return Prediction{steer, throttle};
  }

  static Tensor steer_targets(const std::vector<const Sample*>& batch) {
    Tensor y({batch.size(), 1});
    for (std::size_t i = 0; i < batch.size(); ++i) {
      y.at(i, 0) = batch[i]->steering;
    }
    return y;
  }
};

// --- memory -----------------------------------------------------------------

class MemoryModel : public NetModel {
 public:
  explicit MemoryModel(const ModelConfig& cfg) : NetModel(cfg) {
    add_encoder(net_, rng_);  // net_ is the encoder only
    features_ = encoder_features(cfg.img_h, cfg.img_w);
    hist_ = 2 * cfg.history_len;
    head_.add<Dense>(features_ + hist_, 64, rng_);
    head_.add<ReLU>();
    head_.add<Dense>(64, 2, rng_);
  }

  ModelType type() const override { return ModelType::Memory; }
  std::size_t history_len() const override { return cfg_.history_len; }

  void predict_batch(const Sample* obs, std::size_t n,
                     Prediction* out) override {
    if (n == 0) return;
    if (use_plan(n)) {
      stage_frames(obs, n, cfg_.img_h, cfg_.img_w, enc_plan_->input());
      const float* feats = enc_plan_->run(n);
      float* concat = head_plan_->input();
      const std::size_t row = features_ + hist_;
      for (std::size_t i = 0; i < n; ++i) {
        std::copy(feats + i * features_, feats + (i + 1) * features_,
                  concat + i * row);
        const Sample& s = obs[i];
        if (s.history.size() < hist_) {
          throw std::invalid_argument("memory model: history too short");
        }
        for (std::size_t k = 0; k < hist_; ++k) {
          concat[i * row + features_ + k] =
              s.history[s.history.size() - hist_ + k];
        }
      }
      decode_regression(head_plan_->run(n), n, out);
      plan_->record_exec(n);
      return;
    }
    const Tensor y = forward(batch_ptrs(obs, n), /*train=*/false);
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = Prediction{std::clamp<double>(y.at(i, 0), -1, 1),
                          std::clamp<double>(y.at(i, 1), 0, 1)};
    }
  }

  double train_batch(const std::vector<const Sample*>& batch) override {
    const Tensor pred = forward(batch, /*train=*/true);
    auto [loss, grad] = mse_loss(pred, targets_tensor(batch));
    const Tensor grad_concat = head_.backward(grad);
    // Split: the first `features_` columns flow back into the encoder; the
    // history columns have no upstream parameters.
    const std::size_t n = batch.size();
    Tensor grad_feat({n, features_});
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t k = 0; k < features_; ++k) {
        grad_feat.at(i, k) = grad_concat.at(i, k);
      }
    }
    net_.backward(grad_feat);
    auto params = net_.params();
    for (Param* p : head_.params()) params.push_back(p);
    opt_.step(params);
    return loss;
  }

  double eval_batch(const std::vector<const Sample*>& batch) override {
    const Tensor pred = forward(batch, /*train=*/false);
    return mse_loss(pred, targets_tensor(batch)).first;
  }

  std::uint64_t flops_per_sample() const override {
    return net_.flops_per_sample() + head_.flops_per_sample();
  }

 protected:
  std::vector<Sequential*> nets() override { return {&net_, &head_}; }

  void build_plan(CompiledModel& plan, std::size_t max_batch) override {
    enc_plan_ = &plan.add_net(net_, {1, cfg_.img_h, cfg_.img_w}, max_batch);
    head_plan_ = &plan.add_net(head_, {features_ + hist_}, max_batch);
  }

 private:
  CompiledNet* enc_plan_ = nullptr;
  CompiledNet* head_plan_ = nullptr;

  Tensor forward(const std::vector<const Sample*>& batch, bool train) {
    const Tensor feats =
        net_.forward(frames_tensor(batch, cfg_.img_h, cfg_.img_w), train);
    const std::size_t n = batch.size();
    Tensor concat({n, features_ + hist_});
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t k = 0; k < features_; ++k) {
        concat.at(i, k) = feats.at(i, k);
      }
      const Sample& s = *batch[i];
      if (s.history.size() < hist_) {
        throw std::invalid_argument("memory model: history too short");
      }
      for (std::size_t k = 0; k < hist_; ++k) {
        concat.at(i, features_ + k) = s.history[s.history.size() - hist_ + k];
      }
    }
    return head_.forward(concat, train);
  }

  Sequential head_;
  std::size_t features_ = 0;
  std::size_t hist_ = 0;
};

// --- rnn ---------------------------------------------------------------------

class RnnModel : public NetModel {
 public:
  explicit RnnModel(const ModelConfig& cfg) : NetModel(cfg) {
    add_encoder(net_, rng_);  // shared per-frame encoder (time folded in N)
    features_ = encoder_features(cfg.img_h, cfg.img_w);
    lstm_ = &head_.add<LSTM>(features_, 32, rng_);
    head_.add<Dense>(32, 2, rng_);
  }

  ModelType type() const override { return ModelType::Rnn; }
  std::size_t seq_len() const override { return cfg_.seq_len; }

  void predict_batch(const Sample* obs, std::size_t n,
                     Prediction* out) override {
    if (n == 0) return;
    if (use_plan(n)) {
      stage_frames_seq(obs, n, cfg_.seq_len, cfg_.img_h, cfg_.img_w,
                       enc_plan_->input());
      // Encoder output [n*T, F] is [n, T, F] in memory: the head consumes
      // it in place through the external-input overload (the interpreted
      // path's reshape is likewise copy-free).
      const float* feats = enc_plan_->run(n * cfg_.seq_len);
      decode_regression(head_plan_->run(feats, n), n, out);
      plan_->record_exec(n);
      return;
    }
    const Tensor y = forward(batch_ptrs(obs, n), /*train=*/false);
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = Prediction{std::clamp<double>(y.at(i, 0), -1, 1),
                          std::clamp<double>(y.at(i, 1), 0, 1)};
    }
  }

  double train_batch(const std::vector<const Sample*>& batch) override {
    const Tensor pred = forward(batch, /*train=*/true);
    auto [loss, grad] = mse_loss(pred, targets_tensor(batch));
    const Tensor grad_seq = head_.backward(grad);  // [N, T, F]
    net_.backward(grad_seq.reshaped(
        {batch.size() * cfg_.seq_len, features_}));
    auto params = net_.params();
    for (Param* p : head_.params()) params.push_back(p);
    opt_.step(params);
    return loss;
  }

  double eval_batch(const std::vector<const Sample*>& batch) override {
    const Tensor pred = forward(batch, /*train=*/false);
    return mse_loss(pred, targets_tensor(batch)).first;
  }

  std::uint64_t flops_per_sample() const override {
    return cfg_.seq_len * net_.flops_per_sample() + head_.flops_per_sample();
  }

 protected:
  std::vector<Sequential*> nets() override { return {&net_, &head_}; }

  void build_plan(CompiledModel& plan, std::size_t max_batch) override {
    // Time is folded into the encoder's batch axis, so its row cap is
    // max_batch * seq_len; the LSTM head runs at max_batch rows.
    enc_plan_ = &plan.add_net(net_, {1, cfg_.img_h, cfg_.img_w},
                              max_batch * cfg_.seq_len);
    head_plan_ =
        &plan.add_net(head_, {cfg_.seq_len, features_}, max_batch);
  }

 private:
  CompiledNet* enc_plan_ = nullptr;
  CompiledNet* head_plan_ = nullptr;

  Tensor forward(const std::vector<const Sample*>& batch, bool train) {
    const Tensor x =
        frames_tensor_seq(batch, cfg_.seq_len, cfg_.img_h, cfg_.img_w);
    const Tensor feats = net_.forward(x, train);  // [N*T, F]
    return head_.forward(
        feats.reshaped({batch.size(), cfg_.seq_len, features_}), train);
  }

  Sequential head_;
  LSTM* lstm_ = nullptr;
  std::size_t features_ = 0;
};

// --- 3d ----------------------------------------------------------------------

class Conv3dModel : public NetModel {
 public:
  explicit Conv3dModel(const ModelConfig& cfg) : NetModel(cfg) {
    if (cfg.seq_len < 3) {
      throw std::invalid_argument("3d model: seq_len must be >= 3");
    }
    net_.add<Conv3D>(1, 8, 2, 3, 1, 2, rng_);
    net_.add<ReLU>();
    net_.add<Conv3D>(8, 16, 2, 3, 1, 2, rng_);
    net_.add<ReLU>();
    net_.add<Flatten>();
    auto conv = [](std::size_t d) { return Conv2D::out_dim(d, 3, 2); };
    const std::size_t od = cfg.seq_len - 2;  // two kd=2, sd=1 convs
    const std::size_t f = 16 * od * conv(conv(cfg.img_h)) * conv(conv(cfg.img_w));
    net_.add<Dense>(f, 32, rng_);
    net_.add<ReLU>();
    net_.add<Dense>(32, 2, rng_);
  }

  ModelType type() const override { return ModelType::Conv3d; }
  std::size_t seq_len() const override { return cfg_.seq_len; }

  void predict_batch(const Sample* obs, std::size_t n,
                     Prediction* out) override {
    if (n == 0) return;
    if (use_plan(n)) {
      stage_frames_3d(obs, n, cfg_.seq_len, cfg_.img_h, cfg_.img_w,
                      net_plan_->input());
      decode_regression(net_plan_->run(n), n, out);
      plan_->record_exec(n);
      return;
    }
    const Tensor y = net_.forward(
        frames_tensor_3d(batch_ptrs(obs, n), cfg_.seq_len, cfg_.img_h,
                         cfg_.img_w),
        /*train=*/false);
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = Prediction{std::clamp<double>(y.at(i, 0), -1, 1),
                          std::clamp<double>(y.at(i, 1), 0, 1)};
    }
  }

  double train_batch(const std::vector<const Sample*>& batch) override {
    const Tensor x =
        frames_tensor_3d(batch, cfg_.seq_len, cfg_.img_h, cfg_.img_w);
    const Tensor pred = net_.forward(x, /*train=*/true);
    auto [loss, grad] = mse_loss(pred, targets_tensor(batch));
    net_.backward(grad);
    opt_.step(net_.params());
    return loss;
  }

  double eval_batch(const std::vector<const Sample*>& batch) override {
    const Tensor x =
        frames_tensor_3d(batch, cfg_.seq_len, cfg_.img_h, cfg_.img_w);
    const Tensor pred = net_.forward(x, /*train=*/false);
    return mse_loss(pred, targets_tensor(batch)).first;
  }

 protected:
  void build_plan(CompiledModel& plan, std::size_t max_batch) override {
    net_plan_ = &plan.add_net(
        net_, {1, cfg_.seq_len, cfg_.img_h, cfg_.img_w}, max_batch);
  }

 private:
  CompiledNet* net_plan_ = nullptr;
};

}  // namespace

std::unique_ptr<DrivingModel> make_model(ModelType type,
                                         const ModelConfig& config) {
  switch (type) {
    case ModelType::Linear: return std::make_unique<LinearModel>(config);
    case ModelType::Categorical:
      return std::make_unique<CategoricalModel>(config);
    case ModelType::Inferred: return std::make_unique<InferredModel>(config);
    case ModelType::Memory: return std::make_unique<MemoryModel>(config);
    case ModelType::Rnn: return std::make_unique<RnnModel>(config);
    case ModelType::Conv3d: return std::make_unique<Conv3dModel>(config);
  }
  throw std::invalid_argument("make_model: bad type");
}

namespace {
// "ALMB": model-bundle magic.
constexpr std::uint32_t kBundleMagic = 0x424d4c41;
}  // namespace

void save_model_bundle(std::ostream& os, DrivingModel& model,
                       const ModelConfig& config) {
  util::write_pod(os, kBundleMagic);
  util::write_string(os, model.type_name());
  util::write_pod(os, static_cast<std::uint64_t>(config.img_w));
  util::write_pod(os, static_cast<std::uint64_t>(config.img_h));
  util::write_pod(os, static_cast<std::uint64_t>(config.seq_len));
  util::write_pod(os, static_cast<std::uint64_t>(config.history_len));
  util::write_pod(os, static_cast<std::uint64_t>(config.steering_bins));
  util::write_pod(os, static_cast<std::uint64_t>(config.throttle_bins));
  util::write_pod(os, config.lr);
  util::write_pod(os, config.dropout);
  util::write_pod(os, config.seed);
  util::write_pod(os, config.inferred_throttle_base);
  util::write_pod(os, config.inferred_throttle_gain);
  model.save_full(os);
}

LoadedModelBundle load_model_bundle(std::istream& is) {
  std::uint32_t magic = 0;
  if (!util::read_pod(is, magic)) {
    throw ModelLoadError(ModelLoadError::Code::Truncated,
                         "model bundle: empty stream");
  }
  if (magic != kBundleMagic) {
    throw ModelLoadError(ModelLoadError::Code::BadHeader,
                         "model bundle: bad magic");
  }
  std::string type_name;
  if (!util::read_string(is, type_name)) {
    throw ModelLoadError(ModelLoadError::Code::Truncated,
                         "model bundle: truncated type name");
  }
  ModelConfig cfg;
  auto read_size = [&is](std::size_t& dst) {
    std::uint64_t v = 0;
    if (!util::read_pod(is, v)) return false;
    dst = static_cast<std::size_t>(v);
    return true;
  };
  if (!read_size(cfg.img_w) || !read_size(cfg.img_h) ||
      !read_size(cfg.seq_len) || !read_size(cfg.history_len) ||
      !read_size(cfg.steering_bins) || !read_size(cfg.throttle_bins) ||
      !util::read_pod(is, cfg.lr) || !util::read_pod(is, cfg.dropout) ||
      !util::read_pod(is, cfg.seed) ||
      !util::read_pod(is, cfg.inferred_throttle_base) ||
      !util::read_pod(is, cfg.inferred_throttle_gain)) {
    throw ModelLoadError(ModelLoadError::Code::Truncated,
                         "model bundle: truncated config");
  }
  ModelType type;
  try {
    type = model_type_from_string(type_name);
  } catch (const std::invalid_argument&) {
    throw ModelLoadError(ModelLoadError::Code::BadHeader,
                         "model bundle: unknown model type '" + type_name +
                             "'");
  }
  LoadedModelBundle out;
  out.config = cfg;
  out.model = make_model(type, cfg);
  out.model->load_full(is);
  return out;
}

}  // namespace autolearn::ml
