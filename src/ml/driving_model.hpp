// The six DonkeyCar model types (SC-W'23 §3.3: "AutoLearn comes with six
// tested models, including linear, memory, 3D, categorical, inferred, and
// RNN"), implemented on the from-scratch layer library.
//
//   linear       conv encoder -> dense -> (steering, throttle), MSE
//   categorical  conv encoder -> dense -> 15 steering bins + 20 throttle
//                bins, softmax cross-entropy per head
//   inferred     small conv encoder -> steering only; throttle inferred
//                from steering at inference time (fast on straights) —
//                the model the paper found best
//   memory       conv features concatenated with the last N commands
//   rnn          shared conv encoder per frame -> LSTM -> dense
//   3d           Conv3D over a short frame stack -> dense
//
// All models consume Sample observations; sequence models read the last
// seq_len() frames, the memory model reads history_len() command pairs.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "camera/image.hpp"
#include "ml/optimizer.hpp"
#include "ml/sequential.hpp"

namespace autolearn::ml {

class CompiledModel;  // ml/plan.hpp

/// One labeled observation. For on-line inference the labels are ignored.
struct Sample {
  std::vector<camera::Image> frames;  // oldest first; >= model seq_len
  std::vector<float> history;         // [steer, throttle] pairs, newest last
  float steering = 0.0f;              // label in [-1, 1]
  float throttle = 0.0f;              // label in [0, 1]
};

struct Prediction {
  double steering = 0.0;
  double throttle = 0.0;
};

enum class ModelType { Linear, Categorical, Inferred, Memory, Rnn, Conv3d };

/// Numeric precision of a model's forward path. Quantized wrappers
/// (ml::QuantizedModel) report Int8 so eval and the serving tiers price
/// latency with the matching device throughput.
enum class Precision { Fp32, Int8 };

const char* to_string(Precision precision);
const char* to_string(ModelType type);
ModelType model_type_from_string(const std::string& name);
/// All six types in the paper's listing order.
std::vector<ModelType> all_model_types();

struct ModelConfig {
  std::size_t img_w = 32;
  std::size_t img_h = 24;
  std::size_t seq_len = 3;       // rnn / 3d frame stack
  std::size_t history_len = 3;   // memory model: command pairs
  std::size_t steering_bins = 15;
  std::size_t throttle_bins = 20;
  double lr = 1e-3;
  double dropout = 0.1;
  std::uint64_t seed = 42;
  // Inferred-model throttle policy: fast when the wheel is straight.
  // Calibrated closed-loop on the paper oval: faster than the expert's
  // demonstrations on straights while keeping off-track errors rare.
  double inferred_throttle_base = 0.45;
  double inferred_throttle_gain = 0.30;
};

class DrivingModel {
 public:
  virtual ~DrivingModel() = default;

  virtual ModelType type() const = 0;
  std::string type_name() const { return to_string(type()); }

  /// Frames required per observation (1 for single-frame models).
  virtual std::size_t seq_len() const { return 1; }
  /// Command pairs required in Sample::history (0 if unused).
  virtual std::size_t history_len() const { return 0; }

  /// Inference on one observation. The zoo models implement this as
  /// predict_batch of 1, so the two entry points agree bitwise.
  virtual Prediction predict(const Sample& obs) = 0;

  /// Batched inference: fills out[0..n) from obs[0..n). The zoo models
  /// override this to run a single batched forward through the GEMM
  /// backbone (one im2col + sgemm per layer instead of n), which is what
  /// makes fleet serving amortize per-call cost; the base implementation
  /// is a per-sample fallback loop for external subclasses.
  virtual void predict_batch(const Sample* obs, std::size_t n,
                             Prediction* out);

  /// One optimizer step on a minibatch; returns the batch loss.
  virtual double train_batch(const std::vector<const Sample*>& batch) = 0;

  /// Loss without updating parameters.
  virtual double eval_batch(const std::vector<const Sample*>& batch) = 0;

  virtual std::size_t num_parameters() = 0;

  /// Forward multiply-accumulates per sample; the training workload for
  /// the GPU performance model is ~3x this per sample (fwd + bwd).
  virtual std::uint64_t flops_per_sample() const = 0;

  virtual void save(std::ostream& os) = 0;
  virtual void load(std::istream& is) = 0;

  /// Forward-path precision; Fp32 unless wrapped by a quantized variant.
  virtual Precision precision() const { return Precision::Fp32; }

  /// Compiles the forward path into a static-arena step program
  /// (ml/plan.hpp) specialized for batches up to `max_batch`.
  /// predict_batch then routes batches with n <= max_batch through the
  /// plan — bit-identically to the interpreted path — and falls back to
  /// the layer walk for larger ones. Idempotent when a plan with the same
  /// cap is already attached; re-attaching after load() happens
  /// automatically. Returns false when the model has no compiled path
  /// (external subclasses); throws PlanError when compilation fails.
  virtual bool attach_plan(std::size_t /*max_batch*/) { return false; }
  virtual void detach_plan() {}
  /// The attached plan, or nullptr.
  virtual CompiledModel* plan() { return nullptr; }

  /// The Sequential stacks predict_batch runs, exposed for post-training
  /// transforms: ml::quantize_model swaps Dense/Conv layers for int8
  /// twins in place. The zoo models return their nets; external
  /// subclasses keep the empty default and simply cannot be quantized.
  virtual std::vector<Sequential*> mutable_nets() { return {}; }

  /// Full training-state snapshot: parameters PLUS optimizer slots, layer
  /// RNG streams and the model's own init/dropout RNG. A fit resumed from
  /// save_full continues bitwise-identically to an uninterrupted run; a
  /// plain save/load pair does not (Adam moments and dropout masks reset).
  /// Defaults to save/load for external subclasses with no extra state.
  virtual void save_full(std::ostream& os) { save(os); }
  virtual void load_full(std::istream& is) { load(is); }
};

std::unique_ptr<DrivingModel> make_model(ModelType type,
                                         const ModelConfig& config = {});

/// Self-describing checkpoint payload: model type + full ModelConfig +
/// save_full bytes, so a reader can reconstruct the model without any
/// out-of-band knowledge (used by serve::ModelRegistry warm starts).
void save_model_bundle(std::ostream& os, DrivingModel& model,
                       const ModelConfig& config);

struct LoadedModelBundle {
  std::unique_ptr<DrivingModel> model;
  ModelConfig config;
};

/// Rebuilds the model named in the stream and restores its full state.
/// Throws ModelLoadError on a malformed or truncated bundle.
LoadedModelBundle load_model_bundle(std::istream& is);

}  // namespace autolearn::ml
