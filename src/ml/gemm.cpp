#include "ml/gemm.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "util/thread_pool.hpp"

namespace autolearn::ml {
namespace {

// Register microtile. MR x NR accumulators must fit the baseline SSE2
// register file (16 xmm): 4 rows x 8 columns = 8 vector accumulators plus
// broadcast/load temporaries. The inner loops are written so the compiler
// auto-vectorizes the NR axis.
constexpr std::size_t MR = 4;
constexpr std::size_t NR = 8;

// Cache blocking: KC-deep panels are packed so the microkernel streams
// contiguously; MC/NC are also the parallel tile sizes, so the C
// decomposition is a pure function of the problem shape (never of the
// worker count — see the determinism contract in gemm.hpp).
constexpr std::size_t KC = 256;
constexpr std::size_t MC = 96;   // multiple of MR
constexpr std::size_t NC = 384;  // multiple of NR

static_assert(MC % MR == 0 && NC % NR == 0);

std::atomic<std::uint64_t> g_gemm_calls{0};
std::atomic<std::uint64_t> g_gemm_flops{0};
std::atomic<std::uint64_t> g_im2col_elems{0};
std::atomic<std::uint64_t> g_col2im_elems{0};
std::atomic<std::uint64_t> g_qgemm_calls{0};
std::atomic<std::uint64_t> g_qgemm_ops{0};

// Packing scratch is per worker thread and only ever grows, so steady
// state does no allocation.
thread_local std::vector<float> tl_pack_a;
thread_local std::vector<float> tl_pack_b;

inline const float& at(const float* x, std::size_t ld, bool trans,
                       std::size_t row, std::size_t col) {
  return trans ? x[col * ld + row] : x[row * ld + col];
}

/// Packs op(A)[i0:i0+mt, p0:p0+kc] as MR-wide row panels: panel ir holds
/// kc groups of MR consecutive row values (zero-padded past mt).
void pack_a(const float* a, std::size_t lda, bool trans, std::size_t i0,
            std::size_t mt, std::size_t p0, std::size_t kc, float* pa) {
  for (std::size_t ir = 0; ir < mt; ir += MR) {
    const std::size_t mr = std::min(MR, mt - ir);
    for (std::size_t p = 0; p < kc; ++p) {
      for (std::size_t i = 0; i < MR; ++i) {
        *pa++ = i < mr ? at(a, lda, trans, i0 + ir + i, p0 + p) : 0.0f;
      }
    }
  }
}

/// Packs op(B)[p0:p0+kc, j0:j0+nt] as NR-wide column panels: panel jr
/// holds kc groups of NR consecutive column values (zero-padded past nt).
void pack_b(const float* b, std::size_t ldb, bool trans, std::size_t p0,
            std::size_t kc, std::size_t j0, std::size_t nt, float* pb) {
  for (std::size_t jr = 0; jr < nt; jr += NR) {
    const std::size_t nr = std::min(NR, nt - jr);
    if (!trans && nr == NR) {
      // Hot case: contiguous rows of B, full panel — straight copies.
      for (std::size_t p = 0; p < kc; ++p) {
        std::memcpy(pb, b + (p0 + p) * ldb + j0 + jr, NR * sizeof(float));
        pb += NR;
      }
      continue;
    }
    for (std::size_t p = 0; p < kc; ++p) {
      for (std::size_t j = 0; j < NR; ++j) {
        *pb++ = j < nr ? at(b, ldb, trans, p0 + p, j0 + jr + j) : 0.0f;
      }
    }
  }
}

/// acc[MR][NR] += pa-panel @ pb-panel over kc. Both panels are packed and
/// zero-padded, so no bounds checks; the j loop vectorizes. The same
/// source is compiled twice — once for the portable baseline ISA and once
/// for AVX2+FMA — and the best supported variant is chosen at process
/// start, so the default (-march-less) build still uses wide FMAs on
/// modern x86. Selection is a process-wide constant: it cannot vary with
/// the worker count, so the determinism contract holds.
// The accumulators live in a local array whose address never escapes, so
// the compiler keeps all MR*NR of them in vector registers across the k
// loop (passing `out` directly would force a spill per iteration because
// it could alias the panels).
#define AUTOLEARN_MICRO_KERNEL_BODY                                    \
  float acc[MR][NR] = {};                                              \
  for (std::size_t p = 0; p < kc; ++p) {                               \
    const float* bp = pb + p * NR;                                     \
    const float* ap = pa + p * MR;                                     \
    for (std::size_t i = 0; i < MR; ++i) {                             \
      const float av = ap[i];                                          \
      for (std::size_t j = 0; j < NR; ++j) acc[i][j] += av * bp[j];    \
    }                                                                  \
  }                                                                    \
  for (std::size_t i = 0; i < MR; ++i) {                               \
    for (std::size_t j = 0; j < NR; ++j) out[i][j] = acc[i][j];        \
  }

void micro_kernel_base(std::size_t kc, const float* __restrict pa,
                       const float* __restrict pb, float out[MR][NR]) {
  AUTOLEARN_MICRO_KERNEL_BODY
}

#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
#define AUTOLEARN_GEMM_DISPATCH 1
[[gnu::target("avx2,fma")]] void micro_kernel_avx2(std::size_t kc,
                                                   const float* __restrict pa,
                                                   const float* __restrict pb,
                                                   float out[MR][NR]) {
  AUTOLEARN_MICRO_KERNEL_BODY
}
#endif

using MicroKernelFn = void (*)(std::size_t, const float*, const float*,
                               float[MR][NR]);

MicroKernelFn pick_micro_kernel() {
#ifdef AUTOLEARN_GEMM_DISPATCH
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return micro_kernel_avx2;
  }
#endif
  return micro_kernel_base;
}

const MicroKernelFn micro_kernel = pick_micro_kernel();

/// One C tile [i0:i0+mt, j0:j0+nt], full reduction over k in fixed KC
/// order. Runs entirely on the calling thread.
void gemm_tile(bool trans_a, bool trans_b, std::size_t i0, std::size_t mt,
               std::size_t j0, std::size_t nt, std::size_t k, float alpha,
               const float* a, std::size_t lda, const float* b,
               std::size_t ldb, float beta, float* c, std::size_t ldc) {
  const std::size_t mt_pad = (mt + MR - 1) / MR * MR;
  const std::size_t nt_pad = (nt + NR - 1) / NR * NR;
  if (tl_pack_a.size() < mt_pad * KC) tl_pack_a.resize(mt_pad * KC);
  if (tl_pack_b.size() < nt_pad * KC) tl_pack_b.resize(nt_pad * KC);
  float* pa = tl_pack_a.data();
  float* pb = tl_pack_b.data();

  for (std::size_t p0 = 0; p0 < k; p0 += KC) {
    const std::size_t kc = std::min(KC, k - p0);
    const bool first = p0 == 0;
    pack_b(b, ldb, trans_b, p0, kc, j0, nt, pb);
    pack_a(a, lda, trans_a, i0, mt, p0, kc, pa);
    for (std::size_t jr = 0; jr < nt; jr += NR) {
      const std::size_t nr = std::min(NR, nt - jr);
      const float* pbj = pb + (jr / NR) * kc * NR;
      for (std::size_t ir = 0; ir < mt; ir += MR) {
        const std::size_t mr = std::min(MR, mt - ir);
        const float* pai = pa + (ir / MR) * kc * MR;
        float acc[MR][NR] = {};
        micro_kernel(kc, pai, pbj, acc);
        for (std::size_t i = 0; i < mr; ++i) {
          float* cp = c + (i0 + ir + i) * ldc + j0 + jr;
          if (first) {
            if (beta == 0.0f) {
              for (std::size_t j = 0; j < nr; ++j) cp[j] = alpha * acc[i][j];
            } else {
              for (std::size_t j = 0; j < nr; ++j) {
                cp[j] = beta * cp[j] + alpha * acc[i][j];
              }
            }
          } else {
            for (std::size_t j = 0; j < nr; ++j) cp[j] += alpha * acc[i][j];
          }
        }
      }
    }
  }
}

}  // namespace

void tune_interpreted_allocator() {
  // The interpreted layer-by-layer forward/backward (training, and any
  // model without an attached plan) allocates fresh per-batch tensors
  // whose sizes sit just above glibc's default 128 KiB mmap threshold. An
  // mmap'd block is munmap'd on free, so the next batch's identically-
  // sized allocation gets a fresh zero-filled mapping and every pass over
  // it pays demand paging — measured at ~20x the cost of streaming a
  // recycled heap block (glibc's dynamic threshold ratchets to exactly
  // the freed size, so the largest recurring tensor stays mmap'd
  // forever). Raising the threshold keeps these blocks on the heap where
  // freed chunks are reused warm. The compiled-plan path (ml/plan.hpp)
  // needs none of this — it runs out of a preallocated arena — so the
  // tuning is applied lazily from the interpreted entry points (ml::fit)
  // instead of at static init. AUTOLEARN_MMAP_TUNE=0 disables it for A/B
  // measurements. No effect on numerical results.
  static const bool tuned = [] {
#if defined(__GLIBC__)
    const char* env = std::getenv("AUTOLEARN_MMAP_TUNE");
    if (env == nullptr || std::strcmp(env, "0") != 0) {
      mallopt(M_MMAP_THRESHOLD, 64 << 20);
    }
#endif
    return true;
  }();
  (void)tuned;
}

void sgemm(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
           std::size_t k, float alpha, const float* a, std::size_t lda,
           const float* b, std::size_t ldb, float beta, float* c,
           std::size_t ldc, bool parallel) {
  if (m == 0 || n == 0) return;
  if (k == 0) {
    for (std::size_t i = 0; i < m; ++i) {
      float* cp = c + i * ldc;
      if (beta == 0.0f) {
        std::fill(cp, cp + n, 0.0f);
      } else if (beta != 1.0f) {
        for (std::size_t j = 0; j < n; ++j) cp[j] *= beta;
      }
    }
    return;
  }
  g_gemm_calls.fetch_add(1, std::memory_order_relaxed);
  g_gemm_flops.fetch_add(2ull * m * n * k, std::memory_order_relaxed);

  const std::size_t m_tiles = (m + MC - 1) / MC;
  const std::size_t n_tiles = (n + NC - 1) / NC;
  const std::size_t tiles = m_tiles * n_tiles;
  // The parallel dispatch goes through the allocation-free raw chunk
  // primitive (function pointer + context, no std::function) so a GEMM
  // inside a compiled plan performs zero heap allocation. Tile -> C
  // region is a pure function of the tile index, so the chunking (and the
  // execution order) cannot affect results.
  struct TileCtx {
    bool trans_a, trans_b;
    std::size_t m, n, k;
    float alpha;
    const float* a;
    std::size_t lda;
    const float* b;
    std::size_t ldb;
    float beta;
    float* c;
    std::size_t ldc, n_tiles;
  };
  TileCtx ctx{trans_a, trans_b, m,   n, k,   alpha, a,
              lda,     b,       ldb, beta, c, ldc,   n_tiles};
  const auto run_tiles = +[](void* p, std::size_t t0, std::size_t t1) {
    const TileCtx& ctx = *static_cast<const TileCtx*>(p);
    for (std::size_t t = t0; t < t1; ++t) {
      const std::size_t i0 = (t / ctx.n_tiles) * MC;
      const std::size_t j0 = (t % ctx.n_tiles) * NC;
      gemm_tile(ctx.trans_a, ctx.trans_b, i0, std::min(MC, ctx.m - i0), j0,
                std::min(NC, ctx.n - j0), ctx.k, ctx.alpha, ctx.a, ctx.lda,
                ctx.b, ctx.ldb, ctx.beta, ctx.c, ctx.ldc);
    }
  };
  // Small problems are not worth a pool dispatch regardless of tiling.
  const bool tiny = 2ull * m * n * k < (1ull << 16);
  if (!parallel || tiles == 1 || tiny) {
    run_tiles(&ctx, 0, tiles);
  } else {
    util::ThreadPool::shared().parallel_for_chunks_raw(0, tiles, run_tiles,
                                                       &ctx);
  }
}

void im2col(const float* x, std::size_t c, std::size_t h, std::size_t w,
            std::size_t kh, std::size_t kw, std::size_t sh, std::size_t sw,
            float* col, std::size_t col_stride) {
  vol2col(x, c, 1, h, w, 1, kh, kw, 1, sh, sw, col, col_stride);
}

void col2im(const float* col, std::size_t col_stride, std::size_t c,
            std::size_t h, std::size_t w, std::size_t kh, std::size_t kw,
            std::size_t sh, std::size_t sw, float* x) {
  col2vol(col, col_stride, c, 1, h, w, 1, kh, kw, 1, sh, sw, x);
}

void vol2col(const float* x, std::size_t c, std::size_t d, std::size_t h,
             std::size_t w, std::size_t kd, std::size_t kh, std::size_t kw,
             std::size_t sd, std::size_t sh, std::size_t sw, float* col,
             std::size_t col_stride) {
  const std::size_t od = (d - kd) / sd + 1;
  const std::size_t oh = (h - kh) / sh + 1;
  const std::size_t ow = (w - kw) / sw + 1;
  std::size_t r = 0;
  for (std::size_t ic = 0; ic < c; ++ic) {
    for (std::size_t kz = 0; kz < kd; ++kz) {
      for (std::size_t ky = 0; ky < kh; ++ky) {
        for (std::size_t kx = 0; kx < kw; ++kx) {
          const float* src = x + ((ic * d + kz) * h + ky) * w + kx;
          float* dst = col + r * col_stride;
          for (std::size_t oz = 0; oz < od; ++oz) {
            for (std::size_t oy = 0; oy < oh; ++oy) {
              const float* row = src + (oz * sd * h + oy * sh) * w;
              if (sw == 1) {
                std::memcpy(dst, row, ow * sizeof(float));
                dst += ow;
              } else {
                for (std::size_t ox = 0; ox < ow; ++ox) dst[ox] = row[ox * sw];
                dst += ow;
              }
            }
          }
          ++r;
        }
      }
    }
  }
  g_im2col_elems.fetch_add(
      static_cast<std::uint64_t>(r) * od * oh * ow, std::memory_order_relaxed);
}

void col2vol(const float* col, std::size_t col_stride, std::size_t c,
             std::size_t d, std::size_t h, std::size_t w, std::size_t kd,
             std::size_t kh, std::size_t kw, std::size_t sd, std::size_t sh,
             std::size_t sw, float* x) {
  const std::size_t od = (d - kd) / sd + 1;
  const std::size_t oh = (h - kh) / sh + 1;
  const std::size_t ow = (w - kw) / sw + 1;
  std::size_t r = 0;
  for (std::size_t ic = 0; ic < c; ++ic) {
    for (std::size_t kz = 0; kz < kd; ++kz) {
      for (std::size_t ky = 0; ky < kh; ++ky) {
        for (std::size_t kx = 0; kx < kw; ++kx) {
          float* dst = x + ((ic * d + kz) * h + ky) * w + kx;
          const float* src = col + r * col_stride;
          for (std::size_t oz = 0; oz < od; ++oz) {
            for (std::size_t oy = 0; oy < oh; ++oy) {
              float* row = dst + (oz * sd * h + oy * sh) * w;
              for (std::size_t ox = 0; ox < ow; ++ox) {
                row[ox * sw] += src[ox];
              }
              src += ow;
            }
          }
          ++r;
        }
      }
    }
  }
  g_col2im_elems.fetch_add(
      static_cast<std::uint64_t>(r) * od * oh * ow, std::memory_order_relaxed);
}

KernelCounters kernel_counters() {
  KernelCounters k;
  k.gemm_calls = g_gemm_calls.load(std::memory_order_relaxed);
  k.gemm_flops = g_gemm_flops.load(std::memory_order_relaxed);
  k.im2col_elems = g_im2col_elems.load(std::memory_order_relaxed);
  k.col2im_elems = g_col2im_elems.load(std::memory_order_relaxed);
  k.qgemm_calls = g_qgemm_calls.load(std::memory_order_relaxed);
  k.qgemm_ops = g_qgemm_ops.load(std::memory_order_relaxed);
  return k;
}

namespace detail {
void record_qgemm(std::uint64_t ops) {
  g_qgemm_calls.fetch_add(1, std::memory_order_relaxed);
  g_qgemm_ops.fetch_add(ops, std::memory_order_relaxed);
}
}  // namespace detail

}  // namespace autolearn::ml
