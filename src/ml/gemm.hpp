// The matmul backbone of the ml module: a cache-blocked, register-tiled
// single-precision GEMM plus the im2col/col2im lowering helpers that turn
// convolution into matrix multiplication (the standard cuDNN-style
// lowering, here on CPU).
//
// All matrices are row-major with explicit leading dimensions, so views
// into larger buffers (e.g. one time-step slice of an [N, T, D] tensor)
// work directly.
//
// Determinism contract: for a given problem shape the reduction over k
// runs in one fixed order (KC-sized blocks ascending, elements ascending
// within a block), and parallel workers own disjoint tiles of C — no two
// threads ever accumulate into the same output element. Results are
// therefore bitwise identical regardless of the worker count, which is
// what keeps ml::fit() reproducible under any AUTOLEARN_THREADS setting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace autolearn::ml {

/// C[m,n] = alpha * op(A)[m,k] @ op(B)[k,n] + beta * C   (row-major).
/// op(X) is X or X^T per the trans flag; lda/ldb are the leading
/// dimensions of the *stored* matrices. When beta == 0 the output is
/// overwritten without being read (uninitialized scratch is fine).
/// `parallel` distributes C tiles over the shared ThreadPool; it must be
/// false when the caller already runs inside a pool task (the pool does
/// not support nested parallel sections).
void sgemm(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
           std::size_t k, float alpha, const float* a, std::size_t lda,
           const float* b, std::size_t ldb, float beta, float* c,
           std::size_t ldc, bool parallel = true);

/// im2col for valid (unpadded) convolution, channels-first layout.
/// x: one image [C, H, W]. Writes the patch matrix with one row per
/// kernel tap (row index (ic*KH + ky)*KW + kx, matching a flattened
/// [OC, C, KH, KW] weight tensor) and one column per output position
/// (oy*OW + ox). Row r of the patch matrix starts at col + r*col_stride,
/// so a whole batch can share one [C*KH*KW, N*OH*OW] matrix with each
/// sample occupying a disjoint column band.
void im2col(const float* x, std::size_t c, std::size_t h, std::size_t w,
            std::size_t kh, std::size_t kw, std::size_t sh, std::size_t sw,
            float* col, std::size_t col_stride);

/// Adjoint of im2col: accumulates the patch matrix back into the image
/// (x must be zeroed by the caller first). Overlapping windows sum.
void col2im(const float* col, std::size_t col_stride, std::size_t c,
            std::size_t h, std::size_t w, std::size_t kh, std::size_t kw,
            std::size_t sh, std::size_t sw, float* x);

/// 3D (depth/frame axis) variants for Conv3D: volume [C, D, H, W], row
/// index ((ic*KD + kz)*KH + ky)*KW + kx, column index (oz*OH + oy)*OW + ox.
void vol2col(const float* x, std::size_t c, std::size_t d, std::size_t h,
             std::size_t w, std::size_t kd, std::size_t kh, std::size_t kw,
             std::size_t sd, std::size_t sh, std::size_t sw, float* col,
             std::size_t col_stride);
void col2vol(const float* col, std::size_t col_stride, std::size_t c,
             std::size_t d, std::size_t h, std::size_t w, std::size_t kd,
             std::size_t kh, std::size_t kw, std::size_t sd, std::size_t sh,
             std::size_t sw, float* x);

/// Reusable scratch buffers for the layer hot paths: capacity only grows,
/// so after the first batch the im2col/GEMM pipeline performs no
/// allocation. Slots are caller-defined small integers (one per distinct
/// buffer a layer needs).
class ScratchArena {
 public:
  /// Buffer of at least n floats for `slot`. Contents are unspecified.
  /// The pointer stays valid until the next get() call for the same slot
  /// with a larger n.
  float* get(std::size_t slot, std::size_t n) {
    if (slot >= slots_.size()) slots_.resize(slot + 1);
    if (slots_[slot].size() < n) slots_[slot].resize(n);
    return slots_[slot].data();
  }

 private:
  std::vector<std::vector<float>> slots_;
};

/// Process-wide kernel workload counters (monotonic totals). fit()
/// publishes per-run deltas through obs::MetricsRegistry so traces and
/// the GPU performance model see real workload numbers.
struct KernelCounters {
  std::uint64_t gemm_calls = 0;
  std::uint64_t gemm_flops = 0;     // 2*m*n*k per call
  std::uint64_t im2col_elems = 0;   // patch-matrix elements written
  std::uint64_t col2im_elems = 0;   // patch-matrix elements accumulated
  std::uint64_t qgemm_calls = 0;    // int8 GEMM calls (quant.hpp)
  std::uint64_t qgemm_ops = 0;      // 2*m*n*k integer MACs per qgemm call
};

/// Snapshot of the totals accumulated so far in this process.
KernelCounters kernel_counters();

/// Raises glibc's M_MMAP_THRESHOLD so the interpreted layer-by-layer
/// path's recurring per-batch tensors stay on the heap instead of being
/// mmap'd/munmap'd every batch (~20x demand-paging tax, measured — see
/// docs/performance.md). Idempotent; called lazily from the interpreted
/// entry points (ml::fit). The compiled-plan path (ml/plan.hpp) does not
/// need it: plans run out of a preallocated arena. Set
/// AUTOLEARN_MMAP_TUNE=0 to disable (A/B measurements).
void tune_interpreted_allocator();

namespace detail {
/// Internal: the int8 kernels (quant.cpp) publish into the shared
/// counters so eval/obs see one workload ledger.
void record_qgemm(std::uint64_t ops);
}  // namespace detail

}  // namespace autolearn::ml
