// Layer abstraction: forward caches whatever backward needs; backward
// accumulates parameter gradients and returns the gradient w.r.t. the
// layer input. Layers are single-owner objects composed by Sequential or
// by the model classes directly.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "ml/tensor.hpp"

namespace autolearn::ml {

/// A trainable parameter: value plus accumulated gradient.
struct Param {
  Tensor value;
  Tensor grad;

  explicit Param(Tensor v) : value(std::move(v)), grad(Tensor::zeros_like(value)) {}
  void zero_grad() { grad.fill(0.0f); }
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes outputs for a batch; train enables dropout noise etc.
  virtual Tensor forward(const Tensor& x, bool train) = 0;

  /// Backpropagates: takes dLoss/dOutput, accumulates parameter grads,
  /// returns dLoss/dInput. Must be called after forward on the same batch.
  virtual Tensor backward(const Tensor& grad_out) = 0;

  virtual std::vector<Param*> params() { return {}; }

  virtual std::string name() const = 0;

  /// Multiply-accumulate count per sample (forward pass), used by the GPU
  /// performance model to convert a workload into simulated time.
  virtual std::uint64_t flops_per_sample() const { return 0; }

  /// Checkpoint hooks for non-parameter state that affects training
  /// (Dropout's RNG stream). Parameters travel separately through
  /// Sequential::save_params; layers without such state keep the no-op.
  virtual void save_state(std::ostream& os) const { (void)os; }
  virtual void load_state(std::istream& is) { (void)is; }
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace autolearn::ml
