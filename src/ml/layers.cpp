#include "ml/layers.hpp"

#include <cmath>
#include <stdexcept>

#include "ml/gemm.hpp"
#include "util/binio.hpp"

namespace autolearn::ml {

Dense::Dense(std::size_t in_features, std::size_t out_features,
             util::Rng& rng)
    : in_features_(in_features),
      out_features_(out_features),
      // He initialization: good default for the ReLU stacks used here.
      w_(Tensor::randn({out_features, in_features}, rng,
                       std::sqrt(2.0 / static_cast<double>(in_features)))),
      b_(Tensor({out_features}, 0.0f)) {
  if (in_features == 0 || out_features == 0) {
    throw std::invalid_argument("Dense: zero features");
  }
}

Tensor Dense::forward(const Tensor& x, bool /*train*/) {
  if (x.rank() != 2 || x.dim(1) != in_features_) {
    throw std::invalid_argument("Dense: bad input shape " + x.shape_str());
  }
  last_input_ = x;
  const std::size_t n = x.dim(0);
  Tensor y({n, out_features_});
  const Tensor& b = b_.value;
  for (std::size_t i = 0; i < n; ++i) {
    float* yi = y.data() + i * out_features_;
    for (std::size_t o = 0; o < out_features_; ++o) yi[o] = b[o];
  }
  // y += x @ W^T on top of the broadcast bias.
  sgemm(false, true, n, out_features_, in_features_, 1.0f, x.data(),
        in_features_, w_.value.data(), in_features_, 1.0f, y.data(),
        out_features_);
  return y;
}

Tensor Dense::backward(const Tensor& grad_out) {
  const std::size_t n = last_input_.dim(0);
  if (grad_out.rank() != 2 || grad_out.dim(0) != n ||
      grad_out.dim(1) != out_features_) {
    throw std::invalid_argument("Dense: bad grad shape");
  }
  // dW = g^T @ x, db[o] = sum_i g[i,o], dx = g @ W — the batch reduction
  // for dW runs inside the GEMM k-loop, so the parallel backward is
  // deterministic for any worker count.
  Tensor grad_in({n, in_features_});
  sgemm(false, false, n, in_features_, out_features_, 1.0f, grad_out.data(),
        out_features_, w_.value.data(), in_features_, 0.0f, grad_in.data(),
        in_features_);
  sgemm(true, false, out_features_, in_features_, n, 1.0f, grad_out.data(),
        out_features_, last_input_.data(), in_features_, 1.0f,
        w_.grad.data(), in_features_);
  Tensor& db = b_.grad;
  for (std::size_t o = 0; o < out_features_; ++o) {
    float acc = 0.0f;
    for (std::size_t i = 0; i < n; ++i) {
      acc += grad_out.data()[i * out_features_ + o];
    }
    db[o] += acc;
  }
  return grad_in;
}

Tensor ReLU::forward(const Tensor& x, bool /*train*/) {
  Tensor y = x;
  float* yd = y.data();
  const std::size_t n = y.size();
  mask_.resize(n);
  mask_size_ = n;
  // Branchless select: activation signs are data-dependent, so an `if`
  // here mispredicts about half the time and costs ~10x the arithmetic.
  for (std::size_t i = 0; i < n; ++i) {
    const bool on = yd[i] > 0.0f;
    mask_[i] = static_cast<std::uint8_t>(on);
    yd[i] = on ? yd[i] : 0.0f;
  }
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  if (grad_out.size() != mask_size_) {
    throw std::invalid_argument("relu backward: grad size mismatch");
  }
  Tensor g = grad_out;
  float* gd = g.data();
  for (std::size_t i = 0; i < g.size(); ++i) {
    gd[i] = mask_[i] ? gd[i] : 0.0f;
  }
  return g;
}

Tensor Tanh::forward(const Tensor& x, bool /*train*/) {
  Tensor y = x;
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = std::tanh(y[i]);
  last_output_ = y;
  return y;
}

Tensor Tanh::backward(const Tensor& grad_out) {
  grad_out.check_same_shape(last_output_, "tanh backward");
  Tensor g = grad_out;
  for (std::size_t i = 0; i < g.size(); ++i) {
    g[i] *= 1.0f - last_output_[i] * last_output_[i];
  }
  return g;
}

Tensor Flatten::forward(const Tensor& x, bool /*train*/) {
  last_shape_ = x.shape();
  std::size_t rest = 1;
  for (std::size_t i = 1; i < x.rank(); ++i) rest *= x.dim(i);
  return x.reshaped({x.dim(0), rest});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  return grad_out.reshaped(last_shape_);
}

Dropout::Dropout(double p, util::Rng rng) : p_(p), rng_(rng) {
  if (p < 0 || p >= 1) throw std::invalid_argument("Dropout: p in [0,1)");
}

Tensor Dropout::forward(const Tensor& x, bool train) {
  if (!train || p_ == 0) {
    mask_valid_ = false;
    return x;
  }
  mask_ = Tensor(x.shape());
  const float keep = static_cast<float>(1.0 - p_);
  Tensor y = x;
  for (std::size_t i = 0; i < y.size(); ++i) {
    const bool on = !rng_.chance(p_);
    mask_[i] = on ? 1.0f / keep : 0.0f;
    y[i] *= mask_[i];
  }
  mask_valid_ = true;
  return y;
}

Tensor Dropout::backward(const Tensor& grad_out) {
  if (!mask_valid_) return grad_out;
  grad_out.check_same_shape(mask_, "dropout backward");
  Tensor g = grad_out;
  for (std::size_t i = 0; i < g.size(); ++i) g[i] *= mask_[i];
  return g;
}

void Dropout::save_state(std::ostream& os) const {
  util::write_rng_state(os, rng_.state());
}

void Dropout::load_state(std::istream& is) {
  util::RngState st;
  if (!util::read_rng_state(is, st)) {
    throw std::runtime_error("Dropout: truncated RNG state");
  }
  rng_.set_state(st);
}

}  // namespace autolearn::ml
