#include "ml/layers.hpp"

#include <cmath>

#include "util/thread_pool.hpp"

namespace autolearn::ml {

Dense::Dense(std::size_t in_features, std::size_t out_features,
             util::Rng& rng)
    : in_features_(in_features),
      out_features_(out_features),
      // He initialization: good default for the ReLU stacks used here.
      w_(Tensor::randn({out_features, in_features}, rng,
                       std::sqrt(2.0 / static_cast<double>(in_features)))),
      b_(Tensor({out_features}, 0.0f)) {
  if (in_features == 0 || out_features == 0) {
    throw std::invalid_argument("Dense: zero features");
  }
}

Tensor Dense::forward(const Tensor& x, bool /*train*/) {
  if (x.rank() != 2 || x.dim(1) != in_features_) {
    throw std::invalid_argument("Dense: bad input shape " + x.shape_str());
  }
  last_input_ = x;
  const std::size_t n = x.dim(0);
  Tensor y({n, out_features_});
  auto& pool = util::ThreadPool::shared();
  const Tensor& w = w_.value;
  const Tensor& b = b_.value;
  pool.parallel_for_chunks(0, n, [&](std::size_t b0, std::size_t b1) {
    for (std::size_t i = b0; i < b1; ++i) {
      const float* xi = x.data() + i * in_features_;
      float* yi = y.data() + i * out_features_;
      for (std::size_t o = 0; o < out_features_; ++o) {
        const float* wo = w.data() + o * in_features_;
        float acc = b[o];
        for (std::size_t k = 0; k < in_features_; ++k) acc += wo[k] * xi[k];
        yi[o] = acc;
      }
    }
  });
  return y;
}

Tensor Dense::backward(const Tensor& grad_out) {
  const std::size_t n = last_input_.dim(0);
  if (grad_out.rank() != 2 || grad_out.dim(0) != n ||
      grad_out.dim(1) != out_features_) {
    throw std::invalid_argument("Dense: bad grad shape");
  }
  // dW[o,k] = sum_i g[i,o] * x[i,k]; db[o] = sum_i g[i,o];
  // dx[i,k] = sum_o g[i,o] * W[o,k].
  Tensor grad_in({n, in_features_});
  const Tensor& w = w_.value;
  Tensor& dw = w_.grad;
  Tensor& db = b_.grad;
  for (std::size_t i = 0; i < n; ++i) {
    const float* gi = grad_out.data() + i * out_features_;
    const float* xi = last_input_.data() + i * in_features_;
    float* dxi = grad_in.data() + i * in_features_;
    for (std::size_t o = 0; o < out_features_; ++o) {
      const float g = gi[o];
      if (g == 0.0f) continue;
      db[o] += g;
      float* dwo = dw.data() + o * in_features_;
      const float* wo = w.data() + o * in_features_;
      for (std::size_t k = 0; k < in_features_; ++k) {
        dwo[k] += g * xi[k];
        dxi[k] += g * wo[k];
      }
    }
  }
  return grad_in;
}

Tensor ReLU::forward(const Tensor& x, bool /*train*/) {
  last_input_ = x;
  Tensor y = x;
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y[i] < 0) y[i] = 0;
  }
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  grad_out.check_same_shape(last_input_, "relu backward");
  Tensor g = grad_out;
  for (std::size_t i = 0; i < g.size(); ++i) {
    if (last_input_[i] <= 0) g[i] = 0;
  }
  return g;
}

Tensor Tanh::forward(const Tensor& x, bool /*train*/) {
  Tensor y = x;
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = std::tanh(y[i]);
  last_output_ = y;
  return y;
}

Tensor Tanh::backward(const Tensor& grad_out) {
  grad_out.check_same_shape(last_output_, "tanh backward");
  Tensor g = grad_out;
  for (std::size_t i = 0; i < g.size(); ++i) {
    g[i] *= 1.0f - last_output_[i] * last_output_[i];
  }
  return g;
}

Tensor Flatten::forward(const Tensor& x, bool /*train*/) {
  last_shape_ = x.shape();
  std::size_t rest = 1;
  for (std::size_t i = 1; i < x.rank(); ++i) rest *= x.dim(i);
  return x.reshaped({x.dim(0), rest});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  return grad_out.reshaped(last_shape_);
}

Dropout::Dropout(double p, util::Rng rng) : p_(p), rng_(rng) {
  if (p < 0 || p >= 1) throw std::invalid_argument("Dropout: p in [0,1)");
}

Tensor Dropout::forward(const Tensor& x, bool train) {
  if (!train || p_ == 0) {
    mask_valid_ = false;
    return x;
  }
  mask_ = Tensor(x.shape());
  const float keep = static_cast<float>(1.0 - p_);
  Tensor y = x;
  for (std::size_t i = 0; i < y.size(); ++i) {
    const bool on = !rng_.chance(p_);
    mask_[i] = on ? 1.0f / keep : 0.0f;
    y[i] *= mask_[i];
  }
  mask_valid_ = true;
  return y;
}

Tensor Dropout::backward(const Tensor& grad_out) {
  if (!mask_valid_) return grad_out;
  grad_out.check_same_shape(mask_, "dropout backward");
  Tensor g = grad_out;
  for (std::size_t i = 0; i < g.size(); ++i) g[i] *= mask_[i];
  return g;
}

}  // namespace autolearn::ml
