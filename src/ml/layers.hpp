// Basic layers: Dense, ReLU, Tanh, Flatten, Dropout.
#pragma once

#include <cstdint>

#include "ml/layer.hpp"
#include "util/rng.hpp"

namespace autolearn::ml {

/// Fully connected layer: y = x W^T + b, x [N, in], W [out, in], b [out].
class Dense : public Layer {
 public:
  Dense(std::size_t in_features, std::size_t out_features, util::Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override { return {&w_, &b_}; }
  std::string name() const override { return "dense"; }
  std::uint64_t flops_per_sample() const override {
    return 2ull * in_features_ * out_features_;
  }

  std::size_t in_features() const { return in_features_; }
  std::size_t out_features() const { return out_features_; }

 private:
  std::size_t in_features_, out_features_;
  Param w_, b_;
  Tensor last_input_;
};

class ReLU : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "relu"; }

 private:
  // Backward only needs the sign of each input, so forward records a byte
  // mask instead of copying the whole activation tensor.
  std::vector<std::uint8_t> mask_;
  std::size_t mask_size_ = 0;
};

class Tanh : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "tanh"; }

 private:
  Tensor last_output_;
};

/// Flattens all but the batch dimension.
class Flatten : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "flatten"; }

 private:
  std::vector<std::size_t> last_shape_;
};

/// Inverted dropout: scales surviving activations by 1/(1-p) at train time,
/// identity at inference.
class Dropout : public Layer {
 public:
  Dropout(double p, util::Rng rng);
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "dropout"; }
  /// The mask RNG is training state: a checkpoint must resume the stream
  /// exactly or a restored fit would draw different masks.
  void save_state(std::ostream& os) const override;
  void load_state(std::istream& is) override;

 private:
  double p_;
  util::Rng rng_;
  Tensor mask_;
  bool mask_valid_ = false;
};

}  // namespace autolearn::ml
