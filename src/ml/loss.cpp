#include "ml/loss.hpp"

#include <cmath>
#include <stdexcept>

namespace autolearn::ml {

std::pair<double, Tensor> mse_loss(const Tensor& pred, const Tensor& target) {
  pred.check_same_shape(target, "mse_loss");
  Tensor grad(pred.shape());
  double loss = 0;
  const double inv = 1.0 / static_cast<double>(pred.size());
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double d = static_cast<double>(pred[i]) - target[i];
    loss += d * d;
    grad[i] = static_cast<float>(2.0 * d * inv);
  }
  return {loss * inv, std::move(grad)};
}

double softmax_xent_slice(const Tensor& logits, std::size_t begin,
                          std::size_t end,
                          const std::vector<std::size_t>& targets,
                          Tensor& grad_accum) {
  if (logits.rank() != 2) throw std::invalid_argument("xent: rank != 2");
  const std::size_t n = logits.dim(0), w = logits.dim(1);
  if (end <= begin || end > w) throw std::invalid_argument("xent: bad slice");
  if (targets.size() != n) throw std::invalid_argument("xent: target count");
  grad_accum.check_same_shape(logits, "xent grad");
  const std::size_t classes = end - begin;
  double loss = 0;
  const double invn = 1.0 / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (targets[i] >= classes) throw std::invalid_argument("xent: bad label");
    // Stable softmax.
    float maxv = logits.at(i, begin);
    for (std::size_t c = 1; c < classes; ++c) {
      maxv = std::max(maxv, logits.at(i, begin + c));
    }
    double denom = 0;
    for (std::size_t c = 0; c < classes; ++c) {
      denom += std::exp(static_cast<double>(logits.at(i, begin + c) - maxv));
    }
    for (std::size_t c = 0; c < classes; ++c) {
      const double p =
          std::exp(static_cast<double>(logits.at(i, begin + c) - maxv)) /
          denom;
      grad_accum.at(i, begin + c) +=
          static_cast<float>((p - (c == targets[i] ? 1.0 : 0.0)) * invn);
      if (c == targets[i]) loss -= std::log(std::max(p, 1e-12));
    }
  }
  return loss * invn;
}

std::vector<float> softmax_row(const Tensor& logits, std::size_t row,
                               std::size_t begin, std::size_t end) {
  const std::size_t classes = end - begin;
  std::vector<float> out(classes);
  float maxv = logits.at(row, begin);
  for (std::size_t c = 1; c < classes; ++c) {
    maxv = std::max(maxv, logits.at(row, begin + c));
  }
  double denom = 0;
  for (std::size_t c = 0; c < classes; ++c) {
    out[c] = std::exp(logits.at(row, begin + c) - maxv);
    denom += out[c];
  }
  for (auto& v : out) v = static_cast<float>(v / denom);
  return out;
}

}  // namespace autolearn::ml
