// Loss functions. Each returns the mean loss over the batch and writes the
// gradient w.r.t. the predictions (already divided by batch size, so the
// optimizer sees per-sample-mean gradients).
#pragma once

#include <cstddef>
#include <utility>

#include "ml/tensor.hpp"

namespace autolearn::ml {

/// Mean squared error over all elements: L = mean((pred - target)^2).
/// Returns {loss, grad} with grad shaped like pred.
std::pair<double, Tensor> mse_loss(const Tensor& pred, const Tensor& target);

/// Softmax cross-entropy over a slice of columns [begin, end) of `logits`,
/// with integer class targets. Used twice by the categorical model (one
/// softmax per head sharing a single logits tensor). Adds its gradient into
/// `grad_accum` (same shape as logits) and returns the mean loss.
double softmax_xent_slice(const Tensor& logits, std::size_t begin,
                          std::size_t end,
                          const std::vector<std::size_t>& targets,
                          Tensor& grad_accum);

/// Softmax probabilities of a row slice (inference helper).
std::vector<float> softmax_row(const Tensor& logits, std::size_t row,
                               std::size_t begin, std::size_t end);

}  // namespace autolearn::ml
