#include "ml/lstm.hpp"

#include <cmath>

namespace autolearn::ml {
namespace {

float sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

}  // namespace

LSTM::LSTM(std::size_t input_size, std::size_t hidden_size, util::Rng& rng)
    : d_(input_size),
      h_(hidden_size),
      wx_(Tensor::randn({4 * hidden_size, input_size}, rng,
                        std::sqrt(1.0 / static_cast<double>(input_size)))),
      wh_(Tensor::randn({4 * hidden_size, hidden_size}, rng,
                        std::sqrt(1.0 / static_cast<double>(hidden_size)))),
      b_(Tensor({4 * hidden_size}, 0.0f)) {
  if (input_size == 0 || hidden_size == 0) {
    throw std::invalid_argument("LSTM: zero size");
  }
  // Forget-gate bias starts at 1 so early training does not erase memory.
  for (std::size_t j = 0; j < h_; ++j) b_.value[h_ + j] = 1.0f;
}

Tensor LSTM::forward(const Tensor& x, bool /*train*/) {
  if (x.rank() != 3 || x.dim(2) != d_) {
    throw std::invalid_argument("LSTM: bad input shape " + x.shape_str());
  }
  const std::size_t n = x.dim(0), t_len = x.dim(1);
  last_n_ = n;
  last_t_ = t_len;
  flops_ = 2ull * t_len * 4 * h_ * (d_ + h_);
  cache_.assign(t_len, StepCache{});

  Tensor h({n, h_});
  Tensor c({n, h_});
  for (std::size_t t = 0; t < t_len; ++t) {
    StepCache& sc = cache_[t];
    sc.h_prev = h;
    sc.c_prev = c;
    sc.x = Tensor({n, d_});
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t k = 0; k < d_; ++k) {
        sc.x.at(i, k) = x.at(i, t, k);
      }
    }
    sc.gates = Tensor({n, 4 * h_});
    sc.c = Tensor({n, h_});
    sc.tanh_c = Tensor({n, h_});
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t r = 0; r < 4 * h_; ++r) {
        float acc = b_.value[r];
        const float* wxr = wx_.value.data() + r * d_;
        const float* xr = sc.x.data() + i * d_;
        for (std::size_t k = 0; k < d_; ++k) acc += wxr[k] * xr[k];
        const float* whr = wh_.value.data() + r * h_;
        const float* hr = sc.h_prev.data() + i * h_;
        for (std::size_t k = 0; k < h_; ++k) acc += whr[k] * hr[k];
        sc.gates.at(i, r) = acc;
      }
      for (std::size_t j = 0; j < h_; ++j) {
        const float gi = sigmoid(sc.gates.at(i, j));
        const float gf = sigmoid(sc.gates.at(i, h_ + j));
        const float gg = std::tanh(sc.gates.at(i, 2 * h_ + j));
        const float go = sigmoid(sc.gates.at(i, 3 * h_ + j));
        sc.gates.at(i, j) = gi;
        sc.gates.at(i, h_ + j) = gf;
        sc.gates.at(i, 2 * h_ + j) = gg;
        sc.gates.at(i, 3 * h_ + j) = go;
        const float cv = gf * sc.c_prev.at(i, j) + gi * gg;
        sc.c.at(i, j) = cv;
        sc.tanh_c.at(i, j) = std::tanh(cv);
        h.at(i, j) = go * sc.tanh_c.at(i, j);
        c.at(i, j) = cv;
      }
    }
  }
  return h;
}

Tensor LSTM::backward(const Tensor& grad_out) {
  const std::size_t n = last_n_, t_len = last_t_;
  if (grad_out.rank() != 2 || grad_out.dim(0) != n || grad_out.dim(1) != h_) {
    throw std::invalid_argument("LSTM: bad grad shape");
  }
  Tensor grad_x({n, t_len, d_});
  Tensor dh = grad_out;   // dLoss/dh_t
  Tensor dc({n, h_});     // dLoss/dc_t (from future steps)

  for (std::size_t t = t_len; t-- > 0;) {
    const StepCache& sc = cache_[t];
    Tensor dgates({n, 4 * h_});  // pre-activation gradients
    Tensor dh_prev({n, h_});
    Tensor dc_prev({n, h_});
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < h_; ++j) {
        const float gi = sc.gates.at(i, j);
        const float gf = sc.gates.at(i, h_ + j);
        const float gg = sc.gates.at(i, 2 * h_ + j);
        const float go = sc.gates.at(i, 3 * h_ + j);
        const float tc = sc.tanh_c.at(i, j);
        const float dht = dh.at(i, j);
        float dct = dc.at(i, j) + dht * go * (1 - tc * tc);
        const float dgo = dht * tc;
        const float dgi = dct * gg;
        const float dgg = dct * gi;
        const float dgf = dct * sc.c_prev.at(i, j);
        dc_prev.at(i, j) = dct * gf;
        // Back through the activations (sigmoid / tanh).
        dgates.at(i, j) = dgi * gi * (1 - gi);
        dgates.at(i, h_ + j) = dgf * gf * (1 - gf);
        dgates.at(i, 2 * h_ + j) = dgg * (1 - gg * gg);
        dgates.at(i, 3 * h_ + j) = dgo * go * (1 - go);
      }
      // Accumulate parameter grads and input/hidden grads.
      for (std::size_t r = 0; r < 4 * h_; ++r) {
        const float g = dgates.at(i, r);
        if (g == 0.0f) continue;
        b_.grad[r] += g;
        float* dwxr = wx_.grad.data() + r * d_;
        const float* xr = sc.x.data() + i * d_;
        const float* wxr = wx_.value.data() + r * d_;
        float* gxr = grad_x.data() + (i * t_len + t) * d_;
        for (std::size_t k = 0; k < d_; ++k) {
          dwxr[k] += g * xr[k];
          gxr[k] += g * wxr[k];
        }
        float* dwhr = wh_.grad.data() + r * h_;
        const float* hr = sc.h_prev.data() + i * h_;
        const float* whr = wh_.value.data() + r * h_;
        float* dhp = dh_prev.data() + i * h_;
        for (std::size_t k = 0; k < h_; ++k) {
          dwhr[k] += g * hr[k];
          dhp[k] += g * whr[k];
        }
      }
    }
    dh = dh_prev;
    dc = dc_prev;
  }
  return grad_x;
}

}  // namespace autolearn::ml
