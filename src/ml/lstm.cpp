#include "ml/lstm.hpp"

#include <cmath>

#include "ml/gemm.hpp"

namespace autolearn::ml {
namespace {

float sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

}  // namespace

LSTM::LSTM(std::size_t input_size, std::size_t hidden_size, util::Rng& rng)
    : d_(input_size),
      h_(hidden_size),
      wx_(Tensor::randn({4 * hidden_size, input_size}, rng,
                        std::sqrt(1.0 / static_cast<double>(input_size)))),
      wh_(Tensor::randn({4 * hidden_size, hidden_size}, rng,
                        std::sqrt(1.0 / static_cast<double>(hidden_size)))),
      b_(Tensor({4 * hidden_size}, 0.0f)) {
  if (input_size == 0 || hidden_size == 0) {
    throw std::invalid_argument("LSTM: zero size");
  }
  // Forget-gate bias starts at 1 so early training does not erase memory.
  for (std::size_t j = 0; j < h_; ++j) b_.value[h_ + j] = 1.0f;
}

Tensor LSTM::forward(const Tensor& x, bool /*train*/) {
  if (x.rank() != 3 || x.dim(2) != d_) {
    throw std::invalid_argument("LSTM: bad input shape " + x.shape_str());
  }
  const std::size_t n = x.dim(0), t_len = x.dim(1);
  last_n_ = n;
  last_t_ = t_len;
  flops_ = 2ull * t_len * 4 * h_ * (d_ + h_);
  cache_.assign(t_len, StepCache{});

  Tensor h({n, h_});
  Tensor c({n, h_});
  for (std::size_t t = 0; t < t_len; ++t) {
    StepCache& sc = cache_[t];
    sc.h_prev = h;
    sc.c_prev = c;
    sc.x = Tensor({n, d_});
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t k = 0; k < d_; ++k) {
        sc.x.at(i, k) = x.at(i, t, k);
      }
    }
    sc.gates = Tensor({n, 4 * h_});
    sc.c = Tensor({n, h_});
    sc.tanh_c = Tensor({n, h_});
    // Pre-activation gates = b + x @ Wx^T + h_prev @ Wh^T.
    for (std::size_t i = 0; i < n; ++i) {
      float* gi = sc.gates.data() + i * 4 * h_;
      for (std::size_t r = 0; r < 4 * h_; ++r) gi[r] = b_.value[r];
    }
    sgemm(false, true, n, 4 * h_, d_, 1.0f, sc.x.data(), d_,
          wx_.value.data(), d_, 1.0f, sc.gates.data(), 4 * h_);
    sgemm(false, true, n, 4 * h_, h_, 1.0f, sc.h_prev.data(), h_,
          wh_.value.data(), h_, 1.0f, sc.gates.data(), 4 * h_);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < h_; ++j) {
        const float gi = sigmoid(sc.gates.at(i, j));
        const float gf = sigmoid(sc.gates.at(i, h_ + j));
        const float gg = std::tanh(sc.gates.at(i, 2 * h_ + j));
        const float go = sigmoid(sc.gates.at(i, 3 * h_ + j));
        sc.gates.at(i, j) = gi;
        sc.gates.at(i, h_ + j) = gf;
        sc.gates.at(i, 2 * h_ + j) = gg;
        sc.gates.at(i, 3 * h_ + j) = go;
        const float cv = gf * sc.c_prev.at(i, j) + gi * gg;
        sc.c.at(i, j) = cv;
        sc.tanh_c.at(i, j) = std::tanh(cv);
        h.at(i, j) = go * sc.tanh_c.at(i, j);
        c.at(i, j) = cv;
      }
    }
  }
  return h;
}

Tensor LSTM::backward(const Tensor& grad_out) {
  const std::size_t n = last_n_, t_len = last_t_;
  if (grad_out.rank() != 2 || grad_out.dim(0) != n || grad_out.dim(1) != h_) {
    throw std::invalid_argument("LSTM: bad grad shape");
  }
  Tensor grad_x({n, t_len, d_});
  Tensor dh = grad_out;   // dLoss/dh_t
  Tensor dc({n, h_});     // dLoss/dc_t (from future steps)

  for (std::size_t t = t_len; t-- > 0;) {
    const StepCache& sc = cache_[t];
    Tensor dgates({n, 4 * h_});  // pre-activation gradients
    Tensor dh_prev({n, h_});
    Tensor dc_prev({n, h_});
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < h_; ++j) {
        const float gi = sc.gates.at(i, j);
        const float gf = sc.gates.at(i, h_ + j);
        const float gg = sc.gates.at(i, 2 * h_ + j);
        const float go = sc.gates.at(i, 3 * h_ + j);
        const float tc = sc.tanh_c.at(i, j);
        const float dht = dh.at(i, j);
        float dct = dc.at(i, j) + dht * go * (1 - tc * tc);
        const float dgo = dht * tc;
        const float dgi = dct * gg;
        const float dgg = dct * gi;
        const float dgf = dct * sc.c_prev.at(i, j);
        dc_prev.at(i, j) = dct * gf;
        // Back through the activations (sigmoid / tanh).
        dgates.at(i, j) = dgi * gi * (1 - gi);
        dgates.at(i, h_ + j) = dgf * gf * (1 - gf);
        dgates.at(i, 2 * h_ + j) = dgg * (1 - gg * gg);
        dgates.at(i, 3 * h_ + j) = dgo * go * (1 - go);
      }
    }
    // Parameter and input/hidden grads as GEMMs; the batch reduction for
    // dWx/dWh runs inside the GEMM k-loop (deterministic in parallel).
    for (std::size_t r = 0; r < 4 * h_; ++r) {
      float acc = 0.0f;
      for (std::size_t i = 0; i < n; ++i) acc += dgates.at(i, r);
      b_.grad[r] += acc;
    }
    sgemm(true, false, 4 * h_, d_, n, 1.0f, dgates.data(), 4 * h_,
          sc.x.data(), d_, 1.0f, wx_.grad.data(), d_);
    sgemm(true, false, 4 * h_, h_, n, 1.0f, dgates.data(), 4 * h_,
          sc.h_prev.data(), h_, 1.0f, wh_.grad.data(), h_);
    // grad_x time-step slice is a strided [N, D] view of [N, T, D].
    sgemm(false, false, n, d_, 4 * h_, 1.0f, dgates.data(), 4 * h_,
          wx_.value.data(), d_, 0.0f, grad_x.data() + t * d_, t_len * d_);
    sgemm(false, false, n, h_, 4 * h_, 1.0f, dgates.data(), 4 * h_,
          wh_.value.data(), h_, 0.0f, dh_prev.data(), h_);
    dh = dh_prev;
    dc = dc_prev;
  }
  return grad_x;
}

}  // namespace autolearn::ml
