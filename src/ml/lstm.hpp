// Single-layer LSTM returning the final hidden state.
//
// Used by the RNN driving model: a shared conv encoder produces a feature
// vector per frame, the LSTM consumes the short sequence (default 3
// frames) and its final hidden state feeds the output head. Input shape
// [N, T, D]; output [N, H]. Backward performs truncated BPTT over the
// full (short) sequence.
#pragma once

#include "ml/layer.hpp"
#include "util/rng.hpp"

namespace autolearn::ml {

class LSTM : public Layer {
 public:
  LSTM(std::size_t input_size, std::size_t hidden_size, util::Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override { return {&wx_, &wh_, &b_}; }
  std::string name() const override { return "lstm"; }
  std::uint64_t flops_per_sample() const override { return flops_; }

  std::size_t hidden_size() const { return h_; }
  std::size_t input_size() const { return d_; }

  /// Plan-compile hook; see Conv2D::prime_flops.
  void prime_flops(std::size_t t_len) const {
    flops_ = 2ull * t_len * 4 * h_ * (d_ + h_);
  }

 private:
  std::size_t d_, h_;
  // Gate order within the 4H rows: input, forget, cell(g), output.
  Param wx_;  // [4H, D]
  Param wh_;  // [4H, H]
  Param b_;   // [4H]

  // Per-step caches from the last forward (batch-major, step-indexed).
  struct StepCache {
    Tensor x;      // [N, D]
    Tensor h_prev; // [N, H]
    Tensor c_prev; // [N, H]
    Tensor gates;  // [N, 4H] post-activation (i, f, g, o)
    Tensor c;      // [N, H]
    Tensor tanh_c; // [N, H]
  };
  std::vector<StepCache> cache_;
  std::size_t last_n_ = 0, last_t_ = 0;
  mutable std::uint64_t flops_ = 0;
};

}  // namespace autolearn::ml
