#include "ml/optimizer.hpp"

#include <cmath>
#include <stdexcept>

#include "util/binio.hpp"

namespace autolearn::ml {

SGD::SGD(double lr, double momentum) : lr_(lr), momentum_(momentum) {
  if (lr <= 0) throw std::invalid_argument("SGD: lr must be > 0");
  if (momentum < 0 || momentum >= 1) {
    throw std::invalid_argument("SGD: momentum in [0,1)");
  }
}

void SGD::step(const std::vector<Param*>& params) {
  if (velocity_.empty()) {
    for (const Param* p : params) {
      velocity_.push_back(Tensor::zeros_like(p->value));
    }
  }
  if (velocity_.size() != params.size()) {
    throw std::logic_error("SGD: parameter set changed");
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    Param& p = *params[i];
    Tensor& vel = velocity_[i];
    for (std::size_t k = 0; k < vel.size(); ++k) {
      vel[k] = static_cast<float>(momentum_ * vel[k] - lr_ * p.grad[k]);
      p.value[k] += vel[k];
    }
    p.zero_grad();
  }
}

Adam::Adam(double lr, double beta1, double beta2, double eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  if (lr <= 0) throw std::invalid_argument("Adam: lr must be > 0");
}

void Adam::step(const std::vector<Param*>& params) {
  if (m_.empty()) {
    for (const Param* p : params) {
      m_.push_back(Tensor::zeros_like(p->value));
      v_.push_back(Tensor::zeros_like(p->value));
    }
  }
  if (m_.size() != params.size()) {
    throw std::logic_error("Adam: parameter set changed");
  }
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    Param& p = *params[i];
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    for (std::size_t k = 0; k < m.size(); ++k) {
      const double g = p.grad[k];
      m[k] = static_cast<float>(beta1_ * m[k] + (1 - beta1_) * g);
      v[k] = static_cast<float>(beta2_ * v[k] + (1 - beta2_) * g * g);
      const double mhat = m[k] / bc1;
      const double vhat = v[k] / bc2;
      p.value[k] -=
          static_cast<float>(lr_ * mhat / (std::sqrt(vhat) + eps_));
    }
    p.zero_grad();
  }
}

namespace {

// Slot tensors are stored flat (count, then size + raw floats each): the
// optimizers only ever index them linearly, so shape is not needed to
// resume and a 1-D restore is exact.
void save_slots(std::ostream& os, const std::vector<Tensor>& slots) {
  util::write_pod(os, static_cast<std::uint64_t>(slots.size()));
  for (const Tensor& t : slots) {
    util::write_pod(os, static_cast<std::uint64_t>(t.size()));
    util::write_f32_span(os, t.data(), t.size());
  }
}

void load_slots(std::istream& is, std::vector<Tensor>& slots,
                const char* who) {
  std::uint64_t count = 0;
  if (!util::read_pod(is, count)) {
    throw std::runtime_error(std::string(who) + ": truncated slot count");
  }
  std::vector<Tensor> loaded;
  loaded.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t n = 0;
    if (!util::read_pod(is, n)) {
      throw std::runtime_error(std::string(who) + ": truncated slot size");
    }
    Tensor t({static_cast<std::size_t>(n)});
    if (!util::read_f32_span(is, t.data(), t.size())) {
      throw std::runtime_error(std::string(who) + ": truncated slot data");
    }
    loaded.push_back(std::move(t));
  }
  slots = std::move(loaded);
}

}  // namespace

void SGD::save_state(std::ostream& os) const { save_slots(os, velocity_); }

void SGD::load_state(std::istream& is) { load_slots(is, velocity_, "SGD"); }

void Adam::save_state(std::ostream& os) const {
  util::write_pod(os, static_cast<std::uint64_t>(t_));
  save_slots(os, m_);
  save_slots(os, v_);
}

void Adam::load_state(std::istream& is) {
  std::uint64_t t = 0;
  if (!util::read_pod(is, t)) {
    throw std::runtime_error("Adam: truncated step counter");
  }
  t_ = static_cast<std::size_t>(t);
  load_slots(is, m_, "Adam");
  load_slots(is, v_, "Adam");
}

}  // namespace autolearn::ml
