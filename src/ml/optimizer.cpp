#include "ml/optimizer.hpp"

#include <cmath>
#include <stdexcept>

namespace autolearn::ml {

SGD::SGD(double lr, double momentum) : lr_(lr), momentum_(momentum) {
  if (lr <= 0) throw std::invalid_argument("SGD: lr must be > 0");
  if (momentum < 0 || momentum >= 1) {
    throw std::invalid_argument("SGD: momentum in [0,1)");
  }
}

void SGD::step(const std::vector<Param*>& params) {
  if (velocity_.empty()) {
    for (const Param* p : params) {
      velocity_.push_back(Tensor::zeros_like(p->value));
    }
  }
  if (velocity_.size() != params.size()) {
    throw std::logic_error("SGD: parameter set changed");
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    Param& p = *params[i];
    Tensor& vel = velocity_[i];
    for (std::size_t k = 0; k < vel.size(); ++k) {
      vel[k] = static_cast<float>(momentum_ * vel[k] - lr_ * p.grad[k]);
      p.value[k] += vel[k];
    }
    p.zero_grad();
  }
}

Adam::Adam(double lr, double beta1, double beta2, double eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  if (lr <= 0) throw std::invalid_argument("Adam: lr must be > 0");
}

void Adam::step(const std::vector<Param*>& params) {
  if (m_.empty()) {
    for (const Param* p : params) {
      m_.push_back(Tensor::zeros_like(p->value));
      v_.push_back(Tensor::zeros_like(p->value));
    }
  }
  if (m_.size() != params.size()) {
    throw std::logic_error("Adam: parameter set changed");
  }
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    Param& p = *params[i];
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    for (std::size_t k = 0; k < m.size(); ++k) {
      const double g = p.grad[k];
      m[k] = static_cast<float>(beta1_ * m[k] + (1 - beta1_) * g);
      v[k] = static_cast<float>(beta2_ * v[k] + (1 - beta2_) * g * g);
      const double mhat = m[k] / bc1;
      const double vhat = v[k] / bc2;
      p.value[k] -=
          static_cast<float>(lr_ * mhat / (std::sqrt(vhat) + eps_));
    }
    p.zero_grad();
  }
}

}  // namespace autolearn::ml
