// Optimizers over a flat parameter list.
#pragma once

#include <memory>
#include <vector>

#include "ml/layer.hpp"

namespace autolearn::ml {

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  /// Applies one update using the accumulated gradients, then zeroes them.
  virtual void step(const std::vector<Param*>& params) = 0;
  virtual std::string name() const = 0;
};

/// SGD with classical momentum.
class SGD : public Optimizer {
 public:
  explicit SGD(double lr, double momentum = 0.9);
  void step(const std::vector<Param*>& params) override;
  std::string name() const override { return "sgd"; }

 private:
  double lr_, momentum_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba) with bias correction — the DonkeyCar default.
class Adam : public Optimizer {
 public:
  explicit Adam(double lr = 1e-3, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8);
  void step(const std::vector<Param*>& params) override;
  std::string name() const override { return "adam"; }

 private:
  double lr_, beta1_, beta2_, eps_;
  std::size_t t_ = 0;
  std::vector<Tensor> m_, v_;
};

}  // namespace autolearn::ml
