// Optimizers over a flat parameter list.
#pragma once

#include <iosfwd>
#include <memory>
#include <vector>

#include "ml/layer.hpp"

namespace autolearn::ml {

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  /// Applies one update using the accumulated gradients, then zeroes them.
  virtual void step(const std::vector<Param*>& params) = 0;
  virtual std::string name() const = 0;

  /// Checkpoint hooks: slot tensors (momentum / Adam moments) and step
  /// counters are training state — without them a restored fit diverges
  /// from the uninterrupted run on the first update.
  virtual void save_state(std::ostream& os) const = 0;
  virtual void load_state(std::istream& is) = 0;
};

/// SGD with classical momentum.
class SGD : public Optimizer {
 public:
  explicit SGD(double lr, double momentum = 0.9);
  void step(const std::vector<Param*>& params) override;
  std::string name() const override { return "sgd"; }
  void save_state(std::ostream& os) const override;
  void load_state(std::istream& is) override;

 private:
  double lr_, momentum_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba) with bias correction — the DonkeyCar default.
class Adam : public Optimizer {
 public:
  explicit Adam(double lr = 1e-3, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8);
  void step(const std::vector<Param*>& params) override;
  std::string name() const override { return "adam"; }
  void save_state(std::ostream& os) const override;
  void load_state(std::istream& is) override;

 private:
  double lr_, beta1_, beta2_, eps_;
  std::size_t t_ = 0;
  std::vector<Tensor> m_, v_;
};

}  // namespace autolearn::ml
