#include "ml/plan.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>

#include "ml/conv.hpp"
#include "ml/gemm.hpp"
#include "ml/layers.hpp"
#include "ml/lstm.hpp"
#include "ml/quant.hpp"
#include "ml/quant_layers.hpp"
#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"

namespace autolearn::ml {
namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);
// Arena slots start on 64-byte boundaries relative to the arena base, so
// shared slots never split a cache line between two live buffers.
constexpr std::size_t kAlignFloats = 16;

float sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

std::size_t ceil_div(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

/// Bytes stored in a float-typed slot: round rows up to whole floats.
std::size_t bytes_as_floats(std::size_t bytes) { return ceil_div(bytes, 4); }

// Contexts for the allocation-free parallel regions. The runners are
// capture-less lambdas (decay to function pointers) so the hot path never
// touches std::function.
struct Im2ColCtx {
  const float* x;
  float* col;
  std::size_t c, h, w, k, stride, p, np, chw;
};

struct Vol2ColCtx {
  const float* x;
  float* col;
  std::size_t c, d, h, w, kd, k, sd, s, p, np, cdhw;
};

struct BiasScatterCtx {
  const float* yall;
  float* y;
  const float* bias;
  std::size_t oc, p, np;
  bool relu;
};

// Interpreted conv epilogue: dst[q] = src[q] + bias, then (as a separate
// layer) dst[q] = dst[q] > 0 ? dst[q] : 0. Fused with a local t this is
// the same float additions and the same compare — bitwise identical.
const auto run_bias_scatter = +[](void* pv, std::size_t n0, std::size_t n1) {
  const auto& c = *static_cast<const BiasScatterCtx*>(pv);
  for (std::size_t i = n0; i < n1; ++i) {
    for (std::size_t oc = 0; oc < c.oc; ++oc) {
      const float* src = c.yall + oc * c.np + i * c.p;
      float* dst = c.y + (i * c.oc + oc) * c.p;
      const float bias = c.bias[oc];
      if (c.relu) {
        for (std::size_t q = 0; q < c.p; ++q) {
          const float t = src[q] + bias;
          dst[q] = t > 0.0f ? t : 0.0f;
        }
      } else {
        for (std::size_t q = 0; q < c.p; ++q) dst[q] = src[q] + bias;
      }
    }
  }
};

const auto run_im2col = +[](void* pv, std::size_t n0, std::size_t n1) {
  const auto& c = *static_cast<const Im2ColCtx*>(pv);
  for (std::size_t i = n0; i < n1; ++i) {
    im2col(c.x + i * c.chw, c.c, c.h, c.w, c.k, c.k, c.stride, c.stride,
           c.col + i * c.p, c.np);
  }
};

const auto run_vol2col = +[](void* pv, std::size_t n0, std::size_t n1) {
  const auto& c = *static_cast<const Vol2ColCtx*>(pv);
  for (std::size_t i = n0; i < n1; ++i) {
    vol2col(c.x + i * c.cdhw, c.c, c.d, c.h, c.w, c.kd, c.k, c.k, c.sd, c.s,
            c.s, c.col + i * c.p, c.np);
  }
};

enum class Op {
  Conv2d,
  Conv3d,
  Dense,
  Lstm,
  Relu,   // standalone in-place (fused forms never reach here)
  Tanh,   // in-place
  QuantDense,
  QuantConv2d,
  QuantConv3d,
};

struct Step {
  Op op;
  std::size_t in = kNone, out = kNone;
  std::size_t scr0 = kNone, scr1 = kNone, scr2 = kNone;
  bool fuse_relu = false;

  // Parameter pointers resolved at compile time (re-resolved by
  // attach_plan after any load, which may re-seat tensor storage).
  const float* w = nullptr;
  const float* w2 = nullptr;  // LSTM Wh
  const float* bias = nullptr;
  const QuantizedWeights* qw = nullptr;
  const ActQuant* xq = nullptr;

  // Geometry (per-row / per-sample).
  std::size_t ic = 0, oc = 0, k = 0, stride = 0, kd = 0, stride_d = 0;
  std::size_t h = 0, w_dim = 0, d_dim = 0;
  std::size_t p = 0, ckk = 0;       // conv: out positions, patch rows
  std::size_t in_f = 0, out_f = 0;  // dense/quantdense; lstm: D, H
  std::size_t t_len = 0;            // lstm
};

struct Value {
  std::size_t row_elems = 0;
  std::size_t def = 0;       // first step index live
  std::size_t last_use = 0;  // last step index live (inclusive)
  std::size_t offset = 0;    // assigned arena offset (floats)
};

}  // namespace

struct CompiledNet::Impl {
  std::size_t max_rows = 0;
  std::size_t in_elems = 0;   // per row
  std::size_t out_elems = 0;  // per row
  std::size_t out_value = 0;
  bool input_written = false;  // some step writes the input value in place
  std::vector<Step> steps;
  std::vector<Value> values;
  std::vector<float> arena;
  PlanStats stats;

  std::size_t add_value(std::size_t row_elems, std::size_t def,
                        std::size_t last_use) {
    values.push_back(Value{row_elems, def, last_use, 0});
    return values.size() - 1;
  }

  void compile(Sequential& net, const std::vector<std::size_t>& in_shape);
  void assign_offsets();
  const float* exec(const float* x, std::size_t rows);
};

void CompiledNet::Impl::compile(Sequential& net,
                                const std::vector<std::size_t>& in_shape) {
  if (net.num_layers() == 0) {
    throw PlanError(PlanError::Code::EmptyModel,
                    "plan: cannot compile an empty model");
  }
  in_elems = 1;
  for (std::size_t d : in_shape) in_elems *= d;
  if (in_elems == 0) {
    throw PlanError(PlanError::Code::BadShape,
                    "plan: zero-element input sample shape");
  }

  std::vector<std::size_t> shape = in_shape;  // current per-row shape
  std::size_t cur = add_value(in_elems, 0, 0);

  const auto elems = [](const std::vector<std::size_t>& s) {
    std::size_t e = 1;
    for (std::size_t d : s) e *= d;
    return e;
  };
  const auto bad_shape = [](const std::string& what) {
    return PlanError(PlanError::Code::BadShape, "plan: " + what);
  };

  for (std::size_t li = 0; li < net.num_layers(); ++li) {
    if (!net.has_layer(li)) {
      throw PlanError(PlanError::Code::NullLayer,
                      "plan: layer slot " + std::to_string(li) +
                          " is null (mid-swap model?)");
    }
    Layer& layer = net.layer(li);
    const std::size_t si = steps.size();
    // A ReLU right after a fusable producer folds into its epilogue.
    const auto fuse_next_relu = [&]() -> bool {
      if (li + 1 >= net.num_layers() || !net.has_layer(li + 1)) return false;
      if (dynamic_cast<ReLU*>(&net.layer(li + 1)) == nullptr) return false;
      ++li;
      ++stats.fused_activations;
      return true;
    };

    if (auto* conv = dynamic_cast<Conv2D*>(&layer)) {
      if (shape.size() != 3 || shape[0] != conv->in_channels() ||
          shape[1] < conv->kernel() || shape[2] < conv->kernel()) {
        throw bad_shape("conv2d input mismatch");
      }
      const std::size_t h = shape[1], w = shape[2];
      const std::size_t oh = Conv2D::out_dim(h, conv->kernel(), conv->stride());
      const std::size_t ow = Conv2D::out_dim(w, conv->kernel(), conv->stride());
      conv->prime_flops(h, w);
      Step s{};
      s.op = Op::Conv2d;
      s.ic = conv->in_channels();
      s.oc = conv->out_channels();
      s.k = conv->kernel();
      s.stride = conv->stride();
      s.h = h;
      s.w_dim = w;
      s.p = oh * ow;
      s.ckk = s.ic * s.k * s.k;
      const auto params = conv->params();
      s.w = params[0]->value.data();
      s.bias = params[1]->value.data();
      s.fuse_relu = fuse_next_relu();
      s.in = cur;
      values[cur].last_use = si;
      s.scr0 = add_value(s.ckk * s.p, si, si);  // im2col patch cols
      s.scr1 = add_value(s.oc * s.p, si, si);   // batched GEMM out
      s.out = cur = add_value(s.oc * s.p, si, si);
      shape = {s.oc, oh, ow};
      steps.push_back(s);
    } else if (auto* conv3 = dynamic_cast<Conv3D*>(&layer)) {
      if (shape.size() != 4 || shape[0] != conv3->in_channels() ||
          shape[1] < conv3->kernel_d() || shape[2] < conv3->kernel() ||
          shape[3] < conv3->kernel()) {
        throw bad_shape("conv3d input mismatch");
      }
      const std::size_t d = shape[1], h = shape[2], w = shape[3];
      const std::size_t od =
          Conv2D::out_dim(d, conv3->kernel_d(), conv3->stride_d());
      const std::size_t oh = Conv2D::out_dim(h, conv3->kernel(), conv3->stride());
      const std::size_t ow = Conv2D::out_dim(w, conv3->kernel(), conv3->stride());
      conv3->prime_flops(d, h, w);
      Step s{};
      s.op = Op::Conv3d;
      s.ic = conv3->in_channels();
      s.oc = conv3->out_channels();
      s.kd = conv3->kernel_d();
      s.k = conv3->kernel();
      s.stride_d = conv3->stride_d();
      s.stride = conv3->stride();
      s.d_dim = d;
      s.h = h;
      s.w_dim = w;
      s.p = od * oh * ow;
      s.ckk = s.ic * s.kd * s.k * s.k;
      const auto params = conv3->params();
      s.w = params[0]->value.data();
      s.bias = params[1]->value.data();
      s.fuse_relu = fuse_next_relu();
      s.in = cur;
      values[cur].last_use = si;
      s.scr0 = add_value(s.ckk * s.p, si, si);
      s.scr1 = add_value(s.oc * s.p, si, si);
      s.out = cur = add_value(s.oc * s.p, si, si);
      shape = {s.oc, od, oh, ow};
      steps.push_back(s);
    } else if (auto* dense = dynamic_cast<Dense*>(&layer)) {
      if (elems(shape) != dense->in_features()) {
        throw bad_shape("dense input mismatch");
      }
      Step s{};
      s.op = Op::Dense;
      s.in_f = dense->in_features();
      s.out_f = dense->out_features();
      const auto params = dense->params();
      s.w = params[0]->value.data();
      s.bias = params[1]->value.data();
      s.fuse_relu = fuse_next_relu();
      s.in = cur;
      values[cur].last_use = si;
      s.out = cur = add_value(s.out_f, si, si);
      shape = {s.out_f};
      steps.push_back(s);
    } else if (auto* lstm = dynamic_cast<LSTM*>(&layer)) {
      if (shape.size() != 2 || shape[1] != lstm->input_size()) {
        throw bad_shape("lstm input mismatch");
      }
      const std::size_t t_len = shape[0];
      lstm->prime_flops(t_len);
      Step s{};
      s.op = Op::Lstm;
      s.t_len = t_len;
      s.in_f = lstm->input_size();
      s.out_f = lstm->hidden_size();
      const auto params = lstm->params();
      s.w = params[0]->value.data();   // Wx [4H, D]
      s.w2 = params[1]->value.data();  // Wh [4H, H]
      s.bias = params[2]->value.data();
      s.in = cur;
      values[cur].last_use = si;
      s.scr0 = add_value(s.in_f, si, si);       // x_t slice
      s.scr1 = add_value(4 * s.out_f, si, si);  // gates
      s.scr2 = add_value(s.out_f, si, si);      // cell state
      s.out = cur = add_value(s.out_f, si, si);
      shape = {s.out_f};
      steps.push_back(s);
    } else if (auto* qdense = dynamic_cast<QuantDense*>(&layer)) {
      if (elems(shape) != qdense->in_features()) {
        throw bad_shape("qdense input mismatch");
      }
      Step s{};
      s.op = Op::QuantDense;
      s.in_f = qdense->in_features();
      s.out_f = qdense->out_features();
      s.qw = &qdense->quantized();
      s.xq = &qdense->input_quant();
      s.bias = qdense->params()[1]->value.data();
      s.fuse_relu = fuse_next_relu();
      s.in = cur;
      values[cur].last_use = si;
      s.scr0 = add_value(bytes_as_floats(s.in_f), si, si);  // q(x)^T bytes
      s.scr1 = add_value(s.out_f, si, si);                  // y^T
      s.out = cur = add_value(s.out_f, si, si);
      shape = {s.out_f};
      steps.push_back(s);
    } else if (auto* qconv = dynamic_cast<QuantConv2D*>(&layer)) {
      if (shape.size() != 3 || shape[0] != qconv->in_channels() ||
          shape[1] < qconv->kernel() || shape[2] < qconv->kernel()) {
        throw bad_shape("qconv2d input mismatch");
      }
      const std::size_t h = shape[1], w = shape[2];
      const std::size_t oh = Conv2D::out_dim(h, qconv->kernel(), qconv->stride());
      const std::size_t ow = Conv2D::out_dim(w, qconv->kernel(), qconv->stride());
      qconv->prime_flops(h, w);
      Step s{};
      s.op = Op::QuantConv2d;
      s.ic = qconv->in_channels();
      s.oc = qconv->out_channels();
      s.k = qconv->kernel();
      s.stride = qconv->stride();
      s.h = h;
      s.w_dim = w;
      s.p = oh * ow;
      s.ckk = s.ic * s.k * s.k;
      s.qw = &qconv->quantized();
      s.xq = &qconv->input_quant();
      s.bias = qconv->params()[1]->value.data();
      s.fuse_relu = fuse_next_relu();
      s.in = cur;
      values[cur].last_use = si;
      s.scr0 = add_value(s.ckk * s.p, si, si);                  // float col
      s.scr1 = add_value(bytes_as_floats(s.ckk * s.p), si, si); // q(col)
      s.scr2 = add_value(s.oc * s.p, si, si);                   // GEMM out
      s.out = cur = add_value(s.oc * s.p, si, si);
      shape = {s.oc, oh, ow};
      steps.push_back(s);
    } else if (auto* qconv3 = dynamic_cast<QuantConv3D*>(&layer)) {
      if (shape.size() != 4 || shape[0] != qconv3->in_channels() ||
          shape[1] < qconv3->kernel_d() || shape[2] < qconv3->kernel() ||
          shape[3] < qconv3->kernel()) {
        throw bad_shape("qconv3d input mismatch");
      }
      const std::size_t d = shape[1], h = shape[2], w = shape[3];
      const std::size_t od =
          Conv2D::out_dim(d, qconv3->kernel_d(), qconv3->stride_d());
      const std::size_t oh =
          Conv2D::out_dim(h, qconv3->kernel(), qconv3->stride());
      const std::size_t ow =
          Conv2D::out_dim(w, qconv3->kernel(), qconv3->stride());
      qconv3->prime_flops(d, h, w);
      Step s{};
      s.op = Op::QuantConv3d;
      s.ic = qconv3->in_channels();
      s.oc = qconv3->out_channels();
      s.kd = qconv3->kernel_d();
      s.k = qconv3->kernel();
      s.stride_d = qconv3->stride_d();
      s.stride = qconv3->stride();
      s.d_dim = d;
      s.h = h;
      s.w_dim = w;
      s.p = od * oh * ow;
      s.ckk = s.ic * s.kd * s.k * s.k;
      s.qw = &qconv3->quantized();
      s.xq = &qconv3->input_quant();
      s.bias = qconv3->params()[1]->value.data();
      s.fuse_relu = fuse_next_relu();
      s.in = cur;
      values[cur].last_use = si;
      s.scr0 = add_value(s.ckk * s.p, si, si);
      s.scr1 = add_value(bytes_as_floats(s.ckk * s.p), si, si);
      s.scr2 = add_value(s.oc * s.p, si, si);
      s.out = cur = add_value(s.oc * s.p, si, si);
      shape = {s.oc, od, oh, ow};
      steps.push_back(s);
    } else if (dynamic_cast<ReLU*>(&layer) != nullptr) {
      // Only reached when the producer was not fusable (e.g. after a
      // Flatten or as the first layer): in-place pass over the value.
      Step s{};
      s.op = Op::Relu;
      s.in = s.out = cur;
      values[cur].last_use = si;
      if (cur == 0) input_written = true;
      steps.push_back(s);
    } else if (dynamic_cast<Tanh*>(&layer) != nullptr) {
      Step s{};
      s.op = Op::Tanh;
      s.in = s.out = cur;
      values[cur].last_use = si;
      if (cur == 0) input_written = true;
      steps.push_back(s);
    } else if (dynamic_cast<Flatten*>(&layer) != nullptr) {
      shape = {elems(shape)};  // shape-only: the arena is already flat
    } else if (dynamic_cast<Dropout*>(&layer) != nullptr) {
      // Inference identity (plans only serve train=false).
    } else {
      throw PlanError(
          PlanError::Code::UnsupportedLayer,
          "plan: no compiled step for layer '" + layer.name() + "'");
    }
  }

  out_value = cur;
  out_elems = values[cur].row_elems;
  // The output must survive past the last step.
  values[out_value].last_use = steps.size();
  stats.steps = steps.size();
  stats.values = values.size();
  assign_offsets();
}

void CompiledNet::Impl::assign_offsets() {
  // First-fit offset assignment over live intervals, largest-first within
  // each definition point (the classic static memory-planning heuristic;
  // see the worked example in docs/performance.md).
  std::vector<std::size_t> order(values.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (values[a].def != values[b].def) return values[a].def < values[b].def;
    if (values[a].row_elems != values[b].row_elems) {
      return values[a].row_elems > values[b].row_elems;
    }
    return a < b;
  });
  struct Placed {
    std::size_t offset, size, def, last_use;
  };
  std::vector<Placed> placed;
  std::size_t high_water = 0, naive = 0;
  for (std::size_t vi : order) {
    Value& v = values[vi];
    const std::size_t size =
        ceil_div(v.row_elems * max_rows, kAlignFloats) * kAlignFloats;
    naive += size;
    std::vector<Placed> conflicts;
    for (const Placed& p : placed) {
      if (!(p.last_use < v.def || v.last_use < p.def)) conflicts.push_back(p);
    }
    std::sort(conflicts.begin(), conflicts.end(),
              [](const Placed& a, const Placed& b) {
                return a.offset < b.offset;
              });
    std::size_t off = 0;
    for (const Placed& c : conflicts) {
      if (off + size <= c.offset) break;  // fits in the gap before c
      off = std::max(off, c.offset + c.size);
    }
    v.offset = off;
    placed.push_back(Placed{off, size, v.def, v.last_use});
    high_water = std::max(high_water, off + size);
  }
  stats.arena_floats = high_water;
  stats.naive_floats = naive;
  arena.assign(high_water, 0.0f);
}

const float* CompiledNet::Impl::exec(const float* x, std::size_t rows) {
  if (rows == 0 || rows > max_rows) {
    throw PlanError(PlanError::Code::BadBatch,
                    "plan: run() rows " + std::to_string(rows) +
                        " outside [1, " + std::to_string(max_rows) + "]");
  }
  float* const base = arena.data();
  // External input with an in-place step on value 0: copy into the
  // staging slot rather than scribbling on the caller's buffer.
  if (input_written && x != base + values[0].offset) {
    std::memcpy(base + values[0].offset, x, rows * in_elems * sizeof(float));
    x = base + values[0].offset;
  }
  const auto at = [&](std::size_t vi) { return base + values[vi].offset; };
  const auto src_of = [&](std::size_t vi) -> const float* {
    return vi == 0 ? x : at(vi);
  };
  auto& pool = util::ThreadPool::shared();
  const std::size_t n = rows;

  for (const Step& s : steps) {
    switch (s.op) {
      case Op::Conv2d: {
        const std::size_t np = n * s.p;
        float* col = at(s.scr0);
        Im2ColCtx ic{src_of(s.in), col,          s.ic, s.h,
                     s.w_dim,      s.k,          s.stride, s.p,
                     np,           s.ic * s.h * s.w_dim};
        pool.parallel_for_chunks_raw(0, n, run_im2col, &ic);
        float* yall = at(s.scr1);
        sgemm(false, false, s.oc, np, s.ckk, 1.0f, s.w, s.ckk, col, np, 0.0f,
              yall, np);
        BiasScatterCtx bc{yall, at(s.out), s.bias, s.oc, s.p, np, s.fuse_relu};
        pool.parallel_for_chunks_raw(0, n, run_bias_scatter, &bc);
        break;
      }
      case Op::Conv3d: {
        const std::size_t np = n * s.p;
        float* col = at(s.scr0);
        Vol2ColCtx vc{src_of(s.in),
                      col,
                      s.ic,
                      s.d_dim,
                      s.h,
                      s.w_dim,
                      s.kd,
                      s.k,
                      s.stride_d,
                      s.stride,
                      s.p,
                      np,
                      s.ic * s.d_dim * s.h * s.w_dim};
        pool.parallel_for_chunks_raw(0, n, run_vol2col, &vc);
        float* yall = at(s.scr1);
        sgemm(false, false, s.oc, np, s.ckk, 1.0f, s.w, s.ckk, col, np, 0.0f,
              yall, np);
        BiasScatterCtx bc{yall, at(s.out), s.bias, s.oc, s.p, np, s.fuse_relu};
        pool.parallel_for_chunks_raw(0, n, run_bias_scatter, &bc);
        break;
      }
      case Op::Dense: {
        float* y = at(s.out);
        for (std::size_t i = 0; i < n; ++i) {
          float* yi = y + i * s.out_f;
          for (std::size_t o = 0; o < s.out_f; ++o) yi[o] = s.bias[o];
        }
        sgemm(false, true, n, s.out_f, s.in_f, 1.0f, src_of(s.in), s.in_f,
              s.w, s.in_f, 1.0f, y, s.out_f);
        if (s.fuse_relu) {
          const std::size_t total = n * s.out_f;
          for (std::size_t i = 0; i < total; ++i) {
            y[i] = y[i] > 0.0f ? y[i] : 0.0f;
          }
        }
        break;
      }
      case Op::Lstm: {
        const std::size_t d = s.in_f, hs = s.out_f, t_len = s.t_len;
        const float* xin = src_of(s.in);  // [n, T*D] == [n, T, D]
        float* xt = at(s.scr0);
        float* gates = at(s.scr1);
        float* c = at(s.scr2);
        float* h = at(s.out);
        std::fill(h, h + n * hs, 0.0f);
        std::fill(c, c + n * hs, 0.0f);
        for (std::size_t t = 0; t < t_len; ++t) {
          for (std::size_t i = 0; i < n; ++i) {
            const float* row = xin + (i * t_len + t) * d;
            std::memcpy(xt + i * d, row, d * sizeof(float));
          }
          for (std::size_t i = 0; i < n; ++i) {
            float* gi = gates + i * 4 * hs;
            for (std::size_t r = 0; r < 4 * hs; ++r) gi[r] = s.bias[r];
          }
          sgemm(false, true, n, 4 * hs, d, 1.0f, xt, d, s.w, d, 1.0f, gates,
                4 * hs);
          // h still holds h_{t-1} here: the GEMM consumes it before the
          // elementwise update below overwrites it in place.
          sgemm(false, true, n, 4 * hs, hs, 1.0f, h, hs, s.w2, hs, 1.0f,
                gates, 4 * hs);
          for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < hs; ++j) {
              const float gi = sigmoid(gates[i * 4 * hs + j]);
              const float gf = sigmoid(gates[i * 4 * hs + hs + j]);
              const float gg = std::tanh(gates[i * 4 * hs + 2 * hs + j]);
              const float go = sigmoid(gates[i * 4 * hs + 3 * hs + j]);
              const float cv = gf * c[i * hs + j] + gi * gg;
              c[i * hs + j] = cv;
              h[i * hs + j] = go * std::tanh(cv);
            }
          }
        }
        break;
      }
      case Op::Relu: {
        float* buf = at(s.out);
        const std::size_t total = n * values[s.out].row_elems;
        for (std::size_t i = 0; i < total; ++i) {
          buf[i] = buf[i] > 0.0f ? buf[i] : 0.0f;
        }
        break;
      }
      case Op::Tanh: {
        float* buf = at(s.out);
        const std::size_t total = n * values[s.out].row_elems;
        for (std::size_t i = 0; i < total; ++i) buf[i] = std::tanh(buf[i]);
        break;
      }
      case Op::QuantDense: {
        const float* xin = src_of(s.in);
        auto* qx = reinterpret_cast<std::uint8_t*>(at(s.scr0));
        for (std::size_t i = 0; i < n; ++i) {
          const float* xr = xin + i * s.in_f;
          for (std::size_t p = 0; p < s.in_f; ++p) {
            qx[p * n + i] = quantize_activation(xr[p], *s.xq);
          }
        }
        float* yt = at(s.scr1);
        qgemm(*s.qw, qx, n, *s.xq, yt, n);
        float* y = at(s.out);
        for (std::size_t i = 0; i < n; ++i) {
          float* yr = y + i * s.out_f;
          for (std::size_t o = 0; o < s.out_f; ++o) {
            const float t = yt[o * n + i] + s.bias[o];
            yr[o] = s.fuse_relu ? (t > 0.0f ? t : 0.0f) : t;
          }
        }
        break;
      }
      case Op::QuantConv2d: {
        const std::size_t np = n * s.p;
        float* col = at(s.scr0);
        Im2ColCtx ic{src_of(s.in), col,          s.ic, s.h,
                     s.w_dim,      s.k,          s.stride, s.p,
                     np,           s.ic * s.h * s.w_dim};
        pool.parallel_for_chunks_raw(0, n, run_im2col, &ic);
        auto* qcol = reinterpret_cast<std::uint8_t*>(at(s.scr1));
        quantize_activations(col, s.ckk * np, *s.xq, qcol);
        float* yall = at(s.scr2);
        qgemm(*s.qw, qcol, np, *s.xq, yall, np);
        BiasScatterCtx bc{yall, at(s.out), s.bias, s.oc, s.p, np, s.fuse_relu};
        pool.parallel_for_chunks_raw(0, n, run_bias_scatter, &bc);
        break;
      }
      case Op::QuantConv3d: {
        const std::size_t np = n * s.p;
        float* col = at(s.scr0);
        Vol2ColCtx vc{src_of(s.in),
                      col,
                      s.ic,
                      s.d_dim,
                      s.h,
                      s.w_dim,
                      s.kd,
                      s.k,
                      s.stride_d,
                      s.stride,
                      s.p,
                      np,
                      s.ic * s.d_dim * s.h * s.w_dim};
        pool.parallel_for_chunks_raw(0, n, run_vol2col, &vc);
        auto* qcol = reinterpret_cast<std::uint8_t*>(at(s.scr1));
        quantize_activations(col, s.ckk * np, *s.xq, qcol);
        float* yall = at(s.scr2);
        qgemm(*s.qw, qcol, np, *s.xq, yall, np);
        BiasScatterCtx bc{yall, at(s.out), s.bias, s.oc, s.p, np, s.fuse_relu};
        pool.parallel_for_chunks_raw(0, n, run_bias_scatter, &bc);
        break;
      }
    }
  }
  return src_of(out_value);
}

CompiledNet::CompiledNet(Sequential& net,
                         const std::vector<std::size_t>& in_sample_shape,
                         std::size_t max_rows)
    : impl_(std::make_unique<Impl>()) {
  if (max_rows == 0) {
    throw PlanError(PlanError::Code::BadBatch, "plan: max rows must be >= 1");
  }
  impl_->max_rows = max_rows;
  impl_->compile(net, in_sample_shape);
}

CompiledNet::~CompiledNet() = default;

float* CompiledNet::input() {
  return impl_->arena.data() + impl_->values[0].offset;
}
std::size_t CompiledNet::in_row_elems() const { return impl_->in_elems; }
std::size_t CompiledNet::out_row_elems() const { return impl_->out_elems; }
std::size_t CompiledNet::max_rows() const { return impl_->max_rows; }

const float* CompiledNet::run(std::size_t rows) {
  return impl_->exec(input(), rows);
}
const float* CompiledNet::run(const float* x, std::size_t rows) {
  return impl_->exec(x, rows);
}

const PlanStats& CompiledNet::stats() const { return impl_->stats; }

CompiledModel::CompiledModel(std::size_t max_batch) : max_batch_(max_batch) {
  if (max_batch == 0) {
    throw PlanError(PlanError::Code::BadBatch, "plan: max batch must be >= 1");
  }
}

CompiledModel::~CompiledModel() = default;

CompiledNet& CompiledModel::add_net(
    Sequential& net, const std::vector<std::size_t>& in_sample_shape,
    std::size_t max_rows) {
  nets_.push_back(std::make_unique<CompiledNet>(net, in_sample_shape, max_rows));
  return *nets_.back();
}

PlanStats CompiledModel::stats() const {
  PlanStats total;
  for (const auto& n : nets_) {
    const PlanStats& s = n->stats();
    total.steps += s.steps;
    total.values += s.values;
    total.arena_floats += s.arena_floats;
    total.naive_floats += s.naive_floats;
    total.fused_activations += s.fused_activations;
  }
  return total;
}

void CompiledModel::instrument(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    exec_batches_ = nullptr;
    exec_rows_ = nullptr;
    return;
  }
  exec_batches_ = &metrics->counter("serve.plan.exec.batches");
  exec_rows_ = &metrics->counter("serve.plan.exec.rows");
}

void CompiledModel::record_exec(std::size_t rows) {
  if (exec_batches_ != nullptr) {
    exec_batches_->inc();
    exec_rows_->inc(rows);
  }
}

}  // namespace autolearn::ml
