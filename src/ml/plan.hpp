// Graph-compiled forward path with a static arena memory plan.
//
// The interpreted predict path walks a Sequential layer by layer, with
// every layer allocating its output Tensor (and often scratch) per batch.
// CompiledNet does that walk ONCE: compile() lowers the layer list into a
// flat step program (im2col + GEMM + fused bias/ReLU epilogues for the
// conv stacks, gate GEMMs onto preallocated scratch for the LSTM, packed
// int8 steps for the quantized twins), runs a liveness analysis over every
// intermediate buffer, and first-fit assigns them into ONE float arena
// sized for a fixed batch cap. Steady-state execution then performs zero
// heap allocations: staging, GEMMs and epilogues all run inside the arena
// through the ThreadPool's raw (allocation-free) dispatch.
//
// Bitwise contract: a compiled step issues the exact kernel call sequence
// (same sgemm/qgemm shapes, flags and leading dimensions, same epilogue
// arithmetic, same reduction orders) as the interpreted layer it replaced,
// so outputs are bit-identical to Sequential::forward for every batch
// size up to the cap. ctest -L plan holds this as an oracle across the
// whole model zoo, fp32 and int8.
#pragma once

#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "ml/sequential.hpp"

namespace autolearn::obs {
class Counter;
class MetricsRegistry;
}  // namespace autolearn::obs

namespace autolearn::ml {

/// Typed compile/execute failure. Mirrors ModelLoadError: callers switch
/// on code(); what() carries the human-readable detail.
class PlanError : public std::runtime_error {
 public:
  enum class Code {
    EmptyModel,        // Sequential with no layers
    NullLayer,         // a slot transiently holds null (mid-swap)
    UnsupportedLayer,  // layer type the compiler has no step for
    BadShape,          // input sample shape inconsistent with the layers
    BadBatch,          // max rows == 0, or run() rows out of [1, max]
  };

  PlanError(Code code, const std::string& what)
      : std::runtime_error(what), code_(code) {}
  Code code() const { return code_; }

 private:
  Code code_;
};

/// Compile-time accounting, exposed for tests ("sharing beats the naive
/// sum") and the serve gauges.
struct PlanStats {
  std::size_t steps = 0;              // executable steps (no-ops dropped)
  std::size_t values = 0;             // liveness-tracked buffers
  std::size_t arena_floats = 0;       // arena size after slot sharing
  std::size_t naive_floats = 0;       // sum of value sizes (no sharing)
  std::size_t fused_activations = 0;  // ReLUs folded into producers
};

/// One Sequential compiled for a fixed row cap. Rows are the net's batch
/// dimension — the RNN encoder compiles with max_rows = batch * seq_len
/// since time is folded into the batch axis there.
class CompiledNet {
 public:
  /// Compiles immediately; throws PlanError on empty nets, null slots,
  /// unsupported layers or shape mismatches. `in_sample_shape` is the
  /// per-row shape (no batch dim), e.g. {1, 24, 32} for a conv encoder.
  CompiledNet(Sequential& net, const std::vector<std::size_t>& in_sample_shape,
              std::size_t max_rows);
  ~CompiledNet();
  CompiledNet(const CompiledNet&) = delete;
  CompiledNet& operator=(const CompiledNet&) = delete;

  /// Staging buffer for the input, [max_rows, in_row_elems] row-major
  /// inside the arena. Callers write the batch here, then run(rows).
  float* input();
  std::size_t in_row_elems() const;
  std::size_t out_row_elems() const;
  std::size_t max_rows() const;

  /// Executes the step program on the staged input; returns the output,
  /// [rows, out_row_elems] row-major, valid until the next run. Throws
  /// PlanError{BadBatch} when rows is 0 or exceeds the cap. Performs no
  /// heap allocation (after kernel warm-up) — see docs/performance.md.
  const float* run(std::size_t rows);
  /// Same, reading the input from `x` instead of the staging buffer (used
  /// by the RNN head, which consumes the encoder's output in place).
  const float* run(const float* x, std::size_t rows);

  const PlanStats& stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// A model's full compiled forward: one CompiledNet per Sequential it
/// owns, plus the batch cap the plan was specialized for and optional
/// metrics plumbing. Built by DrivingModel::attach_plan.
class CompiledModel {
 public:
  explicit CompiledModel(std::size_t max_batch);
  ~CompiledModel();
  CompiledModel(const CompiledModel&) = delete;
  CompiledModel& operator=(const CompiledModel&) = delete;

  CompiledNet& add_net(Sequential& net,
                       const std::vector<std::size_t>& in_sample_shape,
                       std::size_t max_rows);

  std::size_t max_batch() const { return max_batch_; }
  /// Aggregate over every net.
  PlanStats stats() const;

  /// Resolves metric handles once so record_exec never does a name lookup
  /// (the registry's string lookup allocates; the hot path must not).
  /// nullptr detaches.
  void instrument(obs::MetricsRegistry* metrics);
  /// Hot-path accounting: one batch of `rows` served through the plan.
  void record_exec(std::size_t rows);

 private:
  std::size_t max_batch_;
  std::vector<std::unique_ptr<CompiledNet>> nets_;
  obs::Counter* exec_batches_ = nullptr;
  obs::Counter* exec_rows_ = nullptr;
};

}  // namespace autolearn::ml
