#include "ml/quant.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
#define AUTOLEARN_QGEMM_DISPATCH 1
#include <immintrin.h>
#endif

#include "ml/gemm.hpp"
#include "util/thread_pool.hpp"

namespace autolearn::ml {
namespace {

// Microtile geometry. QMR weight rows share one 32-byte activation load;
// each accumulator vector covers QNR output columns; k advances in quads
// because vpmaddubsw consumes pairs and vpmaddwd pairs-of-pairs.
constexpr std::size_t QMR = 4;
constexpr std::size_t QNR = 8;
constexpr std::size_t QKQ = 4;

// Parallel / packing tile: QNC columns of C per task. The packed
// activation panel for a tile is QNC * k_pad bytes; model shapes keep
// that comfortably inside L2 (largest zoo k is 192).
constexpr std::size_t QNC = 256;

static_assert(QNC % QNR == 0);

inline std::size_t quads(std::size_t k) { return (k + QKQ - 1) / QKQ; }

// Activation pre-clamp, applied in float before the round-to-int: keeps
// cvtps/lrintf away from the int32-overflow region (where they disagree)
// while being far outside any value the [0, kActMax] clamp could keep.
// Both the scalar and the AVX2 quantizer apply it, which is what makes
// them bitwise interchangeable.
constexpr float kActPreClamp = 1.0e6f;

// Per-thread packed-activation / scalar-accumulator scratch, grow-only
// like the sgemm pack buffers.
thread_local std::vector<std::uint8_t> tl_pack_x;
thread_local std::vector<std::int32_t> tl_acc;

/// Shared writeback: every kernel funnels its int32 accumulators through
/// this exact float expression, which is what makes scalar and AVX2
/// results bitwise identical.
inline void dequant_store(const std::int32_t* acc, std::size_t nr,
                          float scale, std::int32_t corr, float* cp) {
  for (std::size_t j = 0; j < nr; ++j) {
    cp[j] = scale * static_cast<float>(acc[j] - corr);
  }
}

/// Scalar kernel for one column tile [j0, j0+nt). Reads the row-major
/// quantized matrices directly; accumulation order over p is ascending,
/// but integer accumulation is exact so order is immaterial for the
/// bitwise contract.
void qgemm_tile_scalar(const QuantizedWeights& w, const std::uint8_t* x,
                       std::size_t n, const ActQuant& xq, float* c,
                       std::size_t ldc, std::size_t j0, std::size_t nt) {
  const std::size_t k = w.cols;
  if (tl_acc.size() < nt) tl_acc.resize(nt);
  std::int32_t* acc = tl_acc.data();
  for (std::size_t i = 0; i < w.rows; ++i) {
    std::fill(acc, acc + nt, 0);
    const std::int8_t* wr = w.q.data() + i * k;
    for (std::size_t p = 0; p < k; ++p) {
      const std::int32_t wv = wr[p];
      if (wv == 0) continue;
      const std::uint8_t* xr = x + p * n + j0;
      for (std::size_t j = 0; j < nt; ++j) {
        acc[j] += wv * static_cast<std::int32_t>(xr[j]);
      }
    }
    dequant_store(acc, nt, w.scales[i] * xq.scale,
                  xq.zero_point * w.row_sums[i], c + i * ldc + j0);
  }
}

#ifdef AUTOLEARN_QGEMM_DISPATCH

/// Packs columns [j0, j0+nt) of x [k, n] into QNR-column groups of
/// k-quads: group g holds quads(k) 32-byte blocks, block q laying out
/// columns j0+g*8 .. +7 as 4 consecutive k bytes each (the layout
/// vpmaddubsw needs so its pairwise adds stay within one column).
/// Padding (past k or nt) is 0 and multiplies zero-padded weights.
void pack_x_tile(const std::uint8_t* x, std::size_t n, std::size_t k,
                 std::size_t j0, std::size_t nt, std::uint8_t* panel) {
  const std::size_t kq = quads(k);
  for (std::size_t g = 0; g * QNR < nt; ++g) {
    std::uint8_t* dst = panel + g * kq * QNR * QKQ;
    const std::size_t jbase = j0 + g * QNR;
    const std::size_t nr = std::min(QNR, nt - g * QNR);
    for (std::size_t q = 0; q < kq; ++q) {
      for (std::size_t t = 0; t < QKQ; ++t) {
        const std::size_t p = q * QKQ + t;
        if (p >= k) {
          for (std::size_t j = 0; j < QNR; ++j) dst[j * QKQ + t] = 0;
          continue;
        }
        const std::uint8_t* row = x + p * n + jbase;
        for (std::size_t j = 0; j < QNR; ++j) {
          dst[j * QKQ + t] = j < nr ? row[j] : 0;
        }
      }
      dst += QNR * QKQ;
    }
  }
}

/// AVX2 microkernel over one packed column tile: per k-quad, one 32-byte
/// activation load is shared by QMR broadcast weight quads;
/// vpmaddubsw(u8 act, s8 weight) then vpmaddwd(·, 1) yields the four
/// per-column dot-product partials, summed exactly into 8 x int32 lanes
/// (no saturation by the 7-bit activation contract in quant.hpp).
[[gnu::target("avx2")]] void qgemm_tile_avx2(const QuantizedWeights& w,
                                             const std::uint8_t* panel,
                                             std::size_t nt, const ActQuant& xq,
                                             float* c, std::size_t ldc,
                                             std::size_t j0) {
  const std::size_t kq = quads(w.cols);
  const __m256i ones = _mm256_set1_epi16(1);
  for (std::size_t g = 0; g * QNR < nt; ++g) {
    const std::uint8_t* bp0 = panel + g * kq * QNR * QKQ;
    const std::size_t nr = std::min(QNR, nt - g * QNR);
    for (std::size_t ir = 0; ir < w.rows; ir += QMR) {
      // Packed weights: 4-byte k-quads for rows ir..ir+3, 4-byte aligned.
      const std::int32_t* ap = reinterpret_cast<const std::int32_t*>(
          w.packed.data() + (ir / QMR) * kq * QMR * QKQ);
      const std::uint8_t* bp = bp0;
      __m256i acc0 = _mm256_setzero_si256();
      __m256i acc1 = _mm256_setzero_si256();
      __m256i acc2 = _mm256_setzero_si256();
      __m256i acc3 = _mm256_setzero_si256();
      for (std::size_t q = 0; q < kq; ++q) {
        const __m256i bv =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp));
        acc0 = _mm256_add_epi32(
            acc0, _mm256_madd_epi16(
                      _mm256_maddubs_epi16(bv, _mm256_set1_epi32(ap[0])), ones));
        acc1 = _mm256_add_epi32(
            acc1, _mm256_madd_epi16(
                      _mm256_maddubs_epi16(bv, _mm256_set1_epi32(ap[1])), ones));
        acc2 = _mm256_add_epi32(
            acc2, _mm256_madd_epi16(
                      _mm256_maddubs_epi16(bv, _mm256_set1_epi32(ap[2])), ones));
        acc3 = _mm256_add_epi32(
            acc3, _mm256_madd_epi16(
                      _mm256_maddubs_epi16(bv, _mm256_set1_epi32(ap[3])), ones));
        bp += QNR * QKQ;
        ap += QMR;
      }
      alignas(32) std::int32_t tmp[QMR][QNR];
      _mm256_store_si256(reinterpret_cast<__m256i*>(tmp[0]), acc0);
      _mm256_store_si256(reinterpret_cast<__m256i*>(tmp[1]), acc1);
      _mm256_store_si256(reinterpret_cast<__m256i*>(tmp[2]), acc2);
      _mm256_store_si256(reinterpret_cast<__m256i*>(tmp[3]), acc3);
      const std::size_t mr = std::min(QMR, w.rows - ir);
      for (std::size_t i = 0; i < mr; ++i) {
        dequant_store(tmp[i], nr, w.scales[ir + i] * xq.scale,
                      xq.zero_point * w.row_sums[ir + i],
                      c + (ir + i) * ldc + j0 + g * QNR);
      }
    }
  }
}

/// AVX2 activation quantizer, 32 floats per iteration: IEEE divide,
/// round via cvtps (nearest-even, same as the scalar lrintf under the
/// default MXCSR), saturating int32->int16->u8 packs, then a min against
/// kActMax. Bitwise identical to quantize_activation by construction —
/// see the pre-clamp note there.
[[gnu::target("avx2")]] void quantize_acts_avx2(const float* x, std::size_t n,
                                                const ActQuant& q,
                                                std::uint8_t* out) {
  const __m256 scale = _mm256_set1_ps(q.scale);
  const __m256 lo = _mm256_set1_ps(-kActPreClamp);
  const __m256 hi = _mm256_set1_ps(kActPreClamp);
  const __m256i zp = _mm256_set1_epi32(q.zero_point);
  const __m256i maxq = _mm256_set1_epi8(static_cast<char>(kActMax));
  const __m256i order = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i v[4];
    for (std::size_t t = 0; t < 4; ++t) {
      __m256 f = _mm256_div_ps(_mm256_loadu_ps(x + i + t * 8), scale);
      f = _mm256_max_ps(_mm256_min_ps(f, hi), lo);
      v[t] = _mm256_add_epi32(_mm256_cvtps_epi32(f), zp);
    }
    const __m256i ab = _mm256_packs_epi32(v[0], v[1]);
    const __m256i cd = _mm256_packs_epi32(v[2], v[3]);
    __m256i bytes = _mm256_packus_epi16(ab, cd);
    bytes = _mm256_permutevar8x32_epi32(bytes, order);
    bytes = _mm256_min_epu8(bytes, maxq);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), bytes);
  }
  for (; i < n; ++i) out[i] = quantize_activation(x[i], q);
}

bool avx2_supported() { return __builtin_cpu_supports("avx2"); }

#else

bool avx2_supported() { return false; }

#endif  // AUTOLEARN_QGEMM_DISPATCH

// Resolved once at process start, like the sgemm micro-kernel pick: the
// selection can never vary with worker count or call site.
const bool g_use_avx2 = avx2_supported();

}  // namespace

ActQuant choose_act_quant(float lo, float hi) {
  lo = std::min(lo, 0.0f);
  hi = std::max(hi, 0.0f);
  ActQuant q;
  if (!(hi > lo)) return q;  // degenerate/NaN range: identity quantizer
  q.scale = (hi - lo) / static_cast<float>(kActMax);
  q.zero_point = std::clamp<std::int32_t>(
      static_cast<std::int32_t>(std::lround(-lo / q.scale)), 0, kActMax);
  return q;
}

std::uint8_t quantize_activation(float v, const ActQuant& q) {
  // lrintf under the default rounding mode (nearest-even) matches the
  // AVX2 cvtps path exactly; the pre-clamp keeps it out of the region
  // where float->int conversion is unspecified.
  const float f =
      std::max(std::min(v / q.scale, kActPreClamp), -kActPreClamp);
  const std::int32_t r =
      static_cast<std::int32_t>(std::lrintf(f)) + q.zero_point;
  return static_cast<std::uint8_t>(std::clamp<std::int32_t>(r, 0, kActMax));
}

void quantize_activations(const float* x, std::size_t n, const ActQuant& q,
                          std::uint8_t* out) {
#ifdef AUTOLEARN_QGEMM_DISPATCH
  if (g_use_avx2) {
    quantize_acts_avx2(x, n, q, out);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) out[i] = quantize_activation(x[i], q);
}

QuantizedWeights quantize_weights(const float* w, std::size_t rows,
                                  std::size_t cols) {
  QuantizedWeights out;
  out.rows = rows;
  out.cols = cols;
  out.q.resize(rows * cols);
  out.scales.resize(rows);
  out.row_sums.resize(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    const float* wr = w + i * cols;
    float maxabs = 0.0f;
    for (std::size_t p = 0; p < cols; ++p) {
      maxabs = std::max(maxabs, std::fabs(wr[p]));
    }
    const float scale =
        maxabs > 0.0f ? maxabs / static_cast<float>(kWeightMax) : 1.0f;
    out.scales[i] = scale;
    std::int32_t sum = 0;
    for (std::size_t p = 0; p < cols; ++p) {
      const auto v = static_cast<std::int32_t>(std::clamp<long>(
          std::lround(wr[p] / scale), -kWeightMax, kWeightMax));
      out.q[i * cols + p] = static_cast<std::int8_t>(v);
      sum += v;
    }
    out.row_sums[i] = sum;
  }
  // Kernel panels: QMR-row blocks of k-quads, 4 bytes per row per quad,
  // zero-padded past rows/cols so the microkernel needs no edge cases.
  const std::size_t kq = quads(cols);
  const std::size_t blocks = (rows + QMR - 1) / QMR;
  out.packed.assign(blocks * kq * QMR * QKQ, 0);
  for (std::size_t i = 0; i < rows; ++i) {
    const std::size_t block = i / QMR;
    const std::size_t lane = i % QMR;
    for (std::size_t p = 0; p < cols; ++p) {
      const std::size_t q = p / QKQ, t = p % QKQ;
      out.packed[((block * kq + q) * QMR + lane) * QKQ + t] =
          out.q[i * cols + p];
    }
  }
  return out;
}

bool qgemm_isa_supported(QGemmIsa isa) {
  switch (isa) {
    case QGemmIsa::Auto:
    case QGemmIsa::Scalar:
      return true;
    case QGemmIsa::Avx2:
      return g_use_avx2;
  }
  return false;
}

void qgemm(const QuantizedWeights& w, const std::uint8_t* x, std::size_t n,
           const ActQuant& xq, float* c, std::size_t ldc, bool parallel,
           QGemmIsa isa) {
  const std::size_t m = w.rows, k = w.cols;
  if (m == 0 || n == 0) return;
  if (isa == QGemmIsa::Auto) {
    isa = g_use_avx2 ? QGemmIsa::Avx2 : QGemmIsa::Scalar;
  } else if (!qgemm_isa_supported(isa)) {
    throw std::invalid_argument("qgemm: requested ISA not supported here");
  }
  detail::record_qgemm(2ull * m * n * k);

  // Raw (allocation-free) tile dispatch, mirroring sgemm: tile -> C
  // columns is a pure function of the tile index and integer accumulation
  // is exact, so chunking cannot affect the bitwise contract.
  struct TileCtx {
    const QuantizedWeights* w;
    const std::uint8_t* x;
    std::size_t n;
    const ActQuant* xq;
    float* c;
    std::size_t ldc;
    QGemmIsa isa;
  };
  TileCtx ctx{&w, x, n, &xq, c, ldc, isa};
  const auto run_tiles = +[](void* p, std::size_t t0, std::size_t t1) {
    const TileCtx& ctx = *static_cast<const TileCtx*>(p);
    for (std::size_t t = t0; t < t1; ++t) {
      const std::size_t j0 = t * QNC;
      const std::size_t nt = std::min(QNC, ctx.n - j0);
#ifdef AUTOLEARN_QGEMM_DISPATCH
      if (ctx.isa == QGemmIsa::Avx2) {
        const std::size_t k = ctx.w->cols;
        const std::size_t panel_bytes =
            ((nt + QNR - 1) / QNR) * quads(k) * QNR * QKQ;
        if (tl_pack_x.size() < panel_bytes) tl_pack_x.resize(panel_bytes);
        pack_x_tile(ctx.x, ctx.n, k, j0, nt, tl_pack_x.data());
        qgemm_tile_avx2(*ctx.w, tl_pack_x.data(), nt, *ctx.xq, ctx.c,
                        ctx.ldc, j0);
        continue;
      }
#endif
      qgemm_tile_scalar(*ctx.w, ctx.x, ctx.n, *ctx.xq, ctx.c, ctx.ldc, j0,
                        nt);
    }
  };

  const std::size_t tiles = (n + QNC - 1) / QNC;
  const bool tiny = 2ull * m * n * k < (1ull << 16);
  if (!parallel || tiles == 1 || tiny) {
    run_tiles(&ctx, 0, tiles);
  } else {
    util::ThreadPool::shared().parallel_for_chunks_raw(0, tiles, run_tiles,
                                                       &ctx);
  }
}

}  // namespace autolearn::ml
