// Int8 post-training-quantized inference kernels: the precision half of
// the edge/cloud latency trade (ROADMAP item 2). Scheme (gemmlowp-style,
// specialized so the AVX2 path is *exact*):
//
//   weights      per-output-channel symmetric:  w ≈ s_w[row] * q_w,
//                q_w in [-127, 127]
//   activations  per-tensor affine, 7-bit:      x ≈ s_x * (q_x - z_x),
//                q_x in [0, 127]
//
// The 7-bit activation range is deliberate: vpmaddubsw saturates its
// pairwise u8*s8 sums at int16, and 2 * 127 * 127 = 32258 just fits in
// 32767 — so the AVX2 kernel never saturates and produces bit-identical
// accumulators to the portable scalar fallback. The int32 accumulator is
// likewise exact for k < 2^31 / 127^2 ≈ 133,000, far beyond any model
// shape here.
//
// The affine zero point folds out of the GEMM as a per-row constant:
//
//   y[i,j] = Σ_p w[i,p] x[p,j]
//          ≈ s_w[i] s_x ( Σ_p q_w[i,p] q_x[p,j]  -  z_x Σ_p q_w[i,p] )
//
// so qgemm needs only the integer accumulator plus the precomputed row
// sums. Dequantization (subtract, convert, scale) runs through one shared
// scalar helper on every ISA path, so scalar and AVX2 qgemm results are
// bitwise identical — which is what lets the drift oracle commit exact
// thresholds instead of per-machine ones.
//
// Determinism contract: integer accumulation is exact, so results are
// bitwise identical for any worker count and any batch size (a batch row
// depends only on its own column of activations).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace autolearn::ml {

/// Activation quantizer limits: q in [0, kActMax] (7-bit, see above).
inline constexpr std::int32_t kActMax = 127;
/// Weight quantizer limit: q in [-kWeightMax, kWeightMax] (symmetric).
inline constexpr std::int32_t kWeightMax = 127;

/// Per-tensor affine activation quantizer: x ≈ scale * (q - zero_point).
struct ActQuant {
  float scale = 1.0f;
  std::int32_t zero_point = 0;  // in [0, kActMax]
};

/// Chooses the activation quantizer covering [lo, hi]. The range is
/// widened to include 0 so a zero activation (ReLU floor, padding)
/// quantizes exactly. Degenerate ranges yield the identity-ish
/// {scale 1, zp 0} quantizer.
ActQuant choose_act_quant(float lo, float hi);

/// round(x / scale) + zero_point, clamped to [0, kActMax]. In-range
/// values round-trip within scale / 2 (plus float rounding).
std::uint8_t quantize_activation(float v, const ActQuant& q);
void quantize_activations(const float* x, std::size_t n, const ActQuant& q,
                          std::uint8_t* out);
inline float dequantize_activation(std::uint8_t v, const ActQuant& q) {
  return q.scale * static_cast<float>(static_cast<std::int32_t>(v) -
                                      q.zero_point);
}

/// Per-output-channel symmetrically quantized weight matrix, stored both
/// row-major (scalar kernel, introspection) and packed into the AVX2
/// microkernel layout (4-row blocks of 4-deep k quads). Built once at
/// model-quantization time; qgemm reuses it across every batch.
struct QuantizedWeights {
  std::size_t rows = 0, cols = 0;
  std::vector<std::int8_t> q;          // row-major [rows, cols]
  std::vector<std::int8_t> packed;     // kernel panels (internal layout)
  std::vector<float> scales;           // [rows]: w ≈ scales[i] * q[i, :]
  std::vector<std::int32_t> row_sums;  // [rows]: Σ_p q — zero-point term
};

/// Max-abs per-channel symmetric quantization of w [rows, cols]
/// (row-major). Channels never clip: |w - s*q| <= s/2 everywhere; an
/// all-zero channel gets scale 1 and round-trips exactly.
QuantizedWeights quantize_weights(const float* w, std::size_t rows,
                                  std::size_t cols);

/// Kernel selection, mirroring the sgemm process-wide dispatch. Auto
/// resolves once at startup; the explicit variants exist so tests can pin
/// both paths and assert bitwise equality.
enum class QGemmIsa { Auto, Scalar, Avx2 };
bool qgemm_isa_supported(QGemmIsa isa);

/// C[m, n] = dequant(QW[m, k] @ QX[k, n]), with m = w.rows, k = w.cols.
/// x is the quantized activation matrix, row-major [k, n] with values in
/// [0, kActMax] (produced by quantize_activations — larger values would
/// saturate the AVX2 path). C is float with leading dimension ldc and is
/// overwritten (never read). `parallel` follows the sgemm contract: tiles
/// of C columns go to the shared ThreadPool; pass false inside pool
/// tasks. Throws std::invalid_argument if `isa` names an unsupported
/// kernel.
void qgemm(const QuantizedWeights& w, const std::uint8_t* x, std::size_t n,
           const ActQuant& xq, float* c, std::size_t ldc,
           bool parallel = true, QGemmIsa isa = QGemmIsa::Auto);

}  // namespace autolearn::ml
