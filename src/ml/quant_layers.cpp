#include "ml/quant_layers.hpp"

#include <stdexcept>

#include "ml/conv.hpp"
#include "util/thread_pool.hpp"

namespace autolearn::ml {
namespace {

// ScratchArena slots, mirroring Conv2D/Conv3D.
constexpr std::size_t kSlotCol = 0;  // float patch matrix  [CKK, N*P]
constexpr std::size_t kSlotOut = 1;  // batched GEMM output [OC, N*P]

[[noreturn]] void frozen(const char* layer) {
  throw std::logic_error(std::string(layer) +
                         ": quantized layers are inference-only");
}

}  // namespace

QuantDense::QuantDense(const Tensor& w, const Tensor& b, ActQuant xq)
    : in_(w.dim(1)),
      out_(w.dim(0)),
      w_(w),
      b_(b),
      qw_(quantize_weights(w.data(), w.dim(0), w.dim(1))),
      xq_(xq) {
  if (w.rank() != 2 || b.rank() != 1 || b.dim(0) != out_) {
    throw std::invalid_argument("QuantDense: bad weight/bias shape");
  }
}

Tensor QuantDense::forward(const Tensor& x, bool /*train*/) {
  if (x.rank() != 2 || x.dim(1) != in_) {
    throw std::invalid_argument("QuantDense: bad input shape " +
                                x.shape_str());
  }
  const std::size_t n = x.dim(0);
  if (qx_.size() < in_ * n) qx_.resize(in_ * n);
  // qgemm wants activations as [k, n] columns: quantize and transpose in
  // one pass. Per-element math matches quantize_activations exactly.
  for (std::size_t i = 0; i < n; ++i) {
    const float* xr = x.data() + i * in_;
    for (std::size_t p = 0; p < in_; ++p) {
      qx_[p * n + i] = quantize_activation(xr[p], xq_);
    }
  }
  if (yt_.size() < out_ * n) yt_.resize(out_ * n);
  qgemm(qw_, qx_.data(), n, xq_, yt_.data(), n);
  Tensor y({n, out_});
  const Tensor& bt = b_.value;
  for (std::size_t i = 0; i < n; ++i) {
    float* yr = y.data() + i * out_;
    for (std::size_t o = 0; o < out_; ++o) yr[o] = yt_[o * n + i] + bt[o];
  }
  return y;
}

Tensor QuantDense::backward(const Tensor& /*grad_out*/) { frozen("QuantDense"); }

QuantConv2D::QuantConv2D(std::size_t in_channels, std::size_t out_channels,
                         std::size_t kernel, std::size_t stride,
                         const Tensor& w, const Tensor& b, ActQuant xq)
    : ic_(in_channels),
      oc_(out_channels),
      k_(kernel),
      stride_(stride),
      w_(w),
      b_(b),
      qw_(quantize_weights(w.data(), out_channels,
                           in_channels * kernel * kernel)),
      xq_(xq) {
  if (w.rank() != 4 || w.dim(0) != oc_ || w.dim(1) != ic_ || w.dim(2) != k_ ||
      w.dim(3) != k_ || b.rank() != 1 || b.dim(0) != oc_) {
    throw std::invalid_argument("QuantConv2D: bad weight/bias shape");
  }
}

Tensor QuantConv2D::forward(const Tensor& x, bool /*train*/) {
  if (x.rank() != 4 || x.dim(1) != ic_) {
    throw std::invalid_argument("QuantConv2D: bad input shape " +
                                x.shape_str());
  }
  const std::size_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const std::size_t oh = Conv2D::out_dim(h, k_, stride_);
  const std::size_t ow = Conv2D::out_dim(w, k_, stride_);
  flops_ = 2ull * oc_ * oh * ow * ic_ * k_ * k_;
  const std::size_t p = oh * ow, ckk = ic_ * k_ * k_, np = n * p;
  float* col = scratch_.get(kSlotCol, ckk * np);
  auto& pool = util::ThreadPool::shared();
  pool.parallel_for_chunks(0, n, [&](std::size_t n0, std::size_t n1) {
    for (std::size_t i = n0; i < n1; ++i) {
      im2col(x.data() + i * ic_ * h * w, ic_, h, w, k_, k_, stride_, stride_,
             col + i * p, np);
    }
  });
  if (qcol_.size() < ckk * np) qcol_.resize(ckk * np);
  quantize_activations(col, ckk * np, xq_, qcol_.data());
  float* yall = scratch_.get(kSlotOut, oc_ * np);
  qgemm(qw_, qcol_.data(), np, xq_, yall, np);
  Tensor y({n, oc_, oh, ow});
  const Tensor& bt = b_.value;
  pool.parallel_for_chunks(0, n, [&](std::size_t n0, std::size_t n1) {
    for (std::size_t i = n0; i < n1; ++i) {
      for (std::size_t oc = 0; oc < oc_; ++oc) {
        const float* src = yall + oc * np + i * p;
        float* dst = y.data() + (i * oc_ + oc) * p;
        const float bias = bt[oc];
        for (std::size_t q = 0; q < p; ++q) dst[q] = src[q] + bias;
      }
    }
  });
  return y;
}

Tensor QuantConv2D::backward(const Tensor& /*grad_out*/) {
  frozen("QuantConv2D");
}

void QuantConv2D::prime_flops(std::size_t h, std::size_t w) const {
  flops_ = 2ull * oc_ * Conv2D::out_dim(h, k_, stride_) *
           Conv2D::out_dim(w, k_, stride_) * ic_ * k_ * k_;
}

QuantConv3D::QuantConv3D(std::size_t in_channels, std::size_t out_channels,
                         std::size_t kernel_d, std::size_t kernel,
                         std::size_t stride_d, std::size_t stride,
                         const Tensor& w, const Tensor& b, ActQuant xq)
    : ic_(in_channels),
      oc_(out_channels),
      kd_(kernel_d),
      k_(kernel),
      stride_d_(stride_d),
      stride_(stride),
      w_(w),
      b_(b),
      qw_(quantize_weights(w.data(), out_channels,
                           in_channels * kernel_d * kernel * kernel)),
      xq_(xq) {
  if (w.rank() != 5 || w.dim(0) != oc_ || w.dim(1) != ic_ || w.dim(2) != kd_ ||
      w.dim(3) != k_ || w.dim(4) != k_ || b.rank() != 1 || b.dim(0) != oc_) {
    throw std::invalid_argument("QuantConv3D: bad weight/bias shape");
  }
}

Tensor QuantConv3D::forward(const Tensor& x, bool /*train*/) {
  if (x.rank() != 5 || x.dim(1) != ic_) {
    throw std::invalid_argument("QuantConv3D: bad input shape " +
                                x.shape_str());
  }
  const std::size_t n = x.dim(0), d = x.dim(2), h = x.dim(3), w = x.dim(4);
  const std::size_t od = Conv2D::out_dim(d, kd_, stride_d_);
  const std::size_t oh = Conv2D::out_dim(h, k_, stride_);
  const std::size_t ow = Conv2D::out_dim(w, k_, stride_);
  flops_ = 2ull * oc_ * od * oh * ow * ic_ * kd_ * k_ * k_;
  const std::size_t p = od * oh * ow, ckk = ic_ * kd_ * k_ * k_, np = n * p;
  float* col = scratch_.get(kSlotCol, ckk * np);
  auto& pool = util::ThreadPool::shared();
  pool.parallel_for_chunks(0, n, [&](std::size_t n0, std::size_t n1) {
    for (std::size_t i = n0; i < n1; ++i) {
      vol2col(x.data() + i * ic_ * d * h * w, ic_, d, h, w, kd_, k_, k_,
              stride_d_, stride_, stride_, col + i * p, np);
    }
  });
  if (qcol_.size() < ckk * np) qcol_.resize(ckk * np);
  quantize_activations(col, ckk * np, xq_, qcol_.data());
  float* yall = scratch_.get(kSlotOut, oc_ * np);
  qgemm(qw_, qcol_.data(), np, xq_, yall, np);
  Tensor y({n, oc_, od, oh, ow});
  const Tensor& bt = b_.value;
  pool.parallel_for_chunks(0, n, [&](std::size_t n0, std::size_t n1) {
    for (std::size_t i = n0; i < n1; ++i) {
      for (std::size_t oc = 0; oc < oc_; ++oc) {
        const float* src = yall + oc * np + i * p;
        float* dst = y.data() + (i * oc_ + oc) * p;
        const float bias = bt[oc];
        for (std::size_t q = 0; q < p; ++q) dst[q] = src[q] + bias;
      }
    }
  });
  return y;
}

Tensor QuantConv3D::backward(const Tensor& /*grad_out*/) {
  frozen("QuantConv3D");
}

void QuantConv3D::prime_flops(std::size_t d, std::size_t h,
                              std::size_t w) const {
  flops_ = 2ull * oc_ * Conv2D::out_dim(d, kd_, stride_d_) *
           Conv2D::out_dim(h, k_, stride_) * Conv2D::out_dim(w, k_, stride_) *
           ic_ * kd_ * k_ * k_;
}

}  // namespace autolearn::ml
