// Inference-only int8 twins of Dense / Conv2D / Conv3D. quantize_model()
// builds them from a calibrated fp32 model and swaps them into the same
// Sequential slots, so predict/predict_batch run unchanged while every
// GEMM goes through the packed int8 kernels (quant.hpp).
//
// Each layer keeps the original fp32 parameters as its Param set: the
// tensor count and shapes seen by Sequential::save_params are identical
// to the fp32 layer it replaced, so a quantized model serializes like its
// source. backward() throws — quantized models are frozen artifacts.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/gemm.hpp"
#include "ml/layer.hpp"
#include "ml/quant.hpp"

namespace autolearn::ml {

/// y = x W^T + b with W per-channel int8 and x quantized by the
/// calibrated `xq`. w is the trained fp32 weight [out, in], b [out].
class QuantDense : public Layer {
 public:
  QuantDense(const Tensor& w, const Tensor& b, ActQuant xq);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override { return {&w_, &b_}; }
  std::string name() const override { return "qdense"; }
  std::uint64_t flops_per_sample() const override { return 2ull * in_ * out_; }

  const QuantizedWeights& quantized() const { return qw_; }
  const ActQuant& input_quant() const { return xq_; }
  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }

 private:
  std::size_t in_, out_;
  Param w_, b_;
  QuantizedWeights qw_;
  ActQuant xq_;
  // Grow-only forward scratch: transposed quantized input [in, N] and
  // transposed GEMM output [out, N].
  std::vector<std::uint8_t> qx_;
  std::vector<float> yt_;
};

/// Conv2D forward via the shared im2col lowering, with the patch matrix
/// quantized and multiplied by packed int8 weights.
class QuantConv2D : public Layer {
 public:
  QuantConv2D(std::size_t in_channels, std::size_t out_channels,
              std::size_t kernel, std::size_t stride, const Tensor& w,
              const Tensor& b, ActQuant xq);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override { return {&w_, &b_}; }
  std::string name() const override { return "qconv2d"; }
  std::uint64_t flops_per_sample() const override { return flops_; }

  const QuantizedWeights& quantized() const { return qw_; }
  const ActQuant& input_quant() const { return xq_; }
  std::size_t in_channels() const { return ic_; }
  std::size_t out_channels() const { return oc_; }
  std::size_t kernel() const { return k_; }
  std::size_t stride() const { return stride_; }

  /// Plan-compile hook; see Conv2D::prime_flops.
  void prime_flops(std::size_t h, std::size_t w) const;

 private:
  std::size_t ic_, oc_, k_, stride_;
  Param w_, b_;
  QuantizedWeights qw_;
  ActQuant xq_;
  ScratchArena scratch_;               // float col + batched output
  std::vector<std::uint8_t> qcol_;     // quantized patch matrix
  mutable std::uint64_t flops_ = 0;
};

/// Conv3D counterpart (vol2col lowering).
class QuantConv3D : public Layer {
 public:
  QuantConv3D(std::size_t in_channels, std::size_t out_channels,
              std::size_t kernel_d, std::size_t kernel, std::size_t stride_d,
              std::size_t stride, const Tensor& w, const Tensor& b,
              ActQuant xq);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override { return {&w_, &b_}; }
  std::string name() const override { return "qconv3d"; }
  std::uint64_t flops_per_sample() const override { return flops_; }

  const QuantizedWeights& quantized() const { return qw_; }
  const ActQuant& input_quant() const { return xq_; }
  std::size_t in_channels() const { return ic_; }
  std::size_t out_channels() const { return oc_; }
  std::size_t kernel_d() const { return kd_; }
  std::size_t kernel() const { return k_; }
  std::size_t stride_d() const { return stride_d_; }
  std::size_t stride() const { return stride_; }

  /// Plan-compile hook; see Conv2D::prime_flops.
  void prime_flops(std::size_t d, std::size_t h, std::size_t w) const;

 private:
  std::size_t ic_, oc_, kd_, k_, stride_d_, stride_;
  Param w_, b_;
  QuantizedWeights qw_;
  ActQuant xq_;
  ScratchArena scratch_;
  std::vector<std::uint8_t> qcol_;
  mutable std::uint64_t flops_ = 0;
};

}  // namespace autolearn::ml
