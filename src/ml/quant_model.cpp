#include "ml/quant_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "ml/conv.hpp"
#include "ml/layers.hpp"
#include "ml/quant.hpp"
#include "ml/quant_layers.hpp"

namespace autolearn::ml {
namespace {

/// Transparent wrapper recording the value range flowing *into* a layer
/// during calibration. Also keeps a capped sample reservoir so the
/// percentile calibrator can take real quantiles instead of min/max.
class ObservedLayer : public Layer {
 public:
  explicit ObservedLayer(LayerPtr inner) : inner_(std::move(inner)) {}

  Tensor forward(const Tensor& x, bool train) override {
    for (std::size_t i = 0; i < x.size(); ++i) {
      lo_ = std::min(lo_, x[i]);
      hi_ = std::max(hi_, x[i]);
    }
    if (values_.size() < kMaxValues) {
      const std::size_t take = std::min(kMaxValues - values_.size(), x.size());
      values_.insert(values_.end(), x.data(), x.data() + take);
    }
    return inner_->forward(x, train);
  }
  Tensor backward(const Tensor& /*grad_out*/) override {
    throw std::logic_error("ObservedLayer: calibration is forward-only");
  }
  std::vector<Param*> params() override { return inner_->params(); }
  std::string name() const override {
    return "observe(" + inner_->name() + ")";
  }
  std::uint64_t flops_per_sample() const override {
    return inner_->flops_per_sample();
  }

  Layer& inner() { return *inner_; }
  LayerPtr take_inner() { return std::move(inner_); }

  ActQuant act_quant(const QuantizeOptions& options) const {
    if (!(lo_ <= hi_)) return choose_act_quant(0.0f, 0.0f);  // nothing seen
    if (options.calibrator == Calibrator::MaxAbs || values_.empty()) {
      return choose_act_quant(lo_, hi_);
    }
    std::vector<float> v = values_;
    const double p = std::clamp(options.percentile, 0.5, 1.0);
    const auto n = static_cast<double>(v.size() - 1);
    const std::size_t hi_idx = static_cast<std::size_t>(std::llround(p * n));
    const std::size_t lo_idx =
        static_cast<std::size_t>(std::llround((1.0 - p) * n));
    std::nth_element(v.begin(), v.begin() + hi_idx, v.end());
    const float chi = v[hi_idx];
    std::nth_element(v.begin(), v.begin() + lo_idx, v.begin() + hi_idx + 1);
    return choose_act_quant(v[lo_idx], chi);
  }

 private:
  // 2M floats (8 MiB): enough for stable quantiles on any realistic
  // calibration set; observation simply stops growing past the cap.
  static constexpr std::size_t kMaxValues = 1u << 21;

  LayerPtr inner_;
  float lo_ = std::numeric_limits<float>::max();
  float hi_ = std::numeric_limits<float>::lowest();
  std::vector<float> values_;
};

bool quantizable(Layer& layer) {
  return dynamic_cast<Dense*>(&layer) != nullptr ||
         dynamic_cast<Conv2D*>(&layer) != nullptr ||
         dynamic_cast<Conv3D*>(&layer) != nullptr;
}

LayerPtr make_quant_twin(LayerPtr fp32, ActQuant xq) {
  if (auto* d = dynamic_cast<Dense*>(fp32.get())) {
    auto ps = d->params();
    return std::make_unique<QuantDense>(ps[0]->value, ps[1]->value, xq);
  }
  if (auto* c = dynamic_cast<Conv2D*>(fp32.get())) {
    auto ps = c->params();
    return std::make_unique<QuantConv2D>(c->in_channels(), c->out_channels(),
                                         c->kernel(), c->stride(),
                                         ps[0]->value, ps[1]->value, xq);
  }
  if (auto* c = dynamic_cast<Conv3D*>(fp32.get())) {
    auto ps = c->params();
    return std::make_unique<QuantConv3D>(
        c->in_channels(), c->out_channels(), c->kernel_d(), c->kernel(),
        c->stride_d(), c->stride(), ps[0]->value, ps[1]->value, xq);
  }
  throw std::logic_error("make_quant_twin: unsupported layer");
}

}  // namespace

const char* to_string(Calibrator calibrator) {
  return calibrator == Calibrator::Percentile ? "percentile" : "maxabs";
}

double QuantizedModel::train_batch(
    const std::vector<const Sample*>& /*batch*/) {
  throw std::logic_error(
      "QuantizedModel: frozen artifact — retrain the fp32 source and "
      "re-quantize");
}

void QuantizedModel::load(std::istream& /*is*/) {
  throw std::logic_error(
      "QuantizedModel: cannot load parameters — quantized weights are "
      "derived; re-run quantize_model on the fp32 source");
}

std::unique_ptr<QuantizedModel> quantize_model(
    DrivingModel& src, const ModelConfig& cfg,
    const std::vector<Sample>& calibration, const QuantizeOptions& options) {
  if (calibration.empty()) {
    throw std::invalid_argument("quantize_model: empty calibration set");
  }
  auto clone = make_model(src.type(), cfg);
  {
    std::stringstream state;
    src.save(state);
    clone->load(state);
  }
  const auto nets = clone->mutable_nets();
  if (nets.empty()) {
    throw std::invalid_argument("quantize_model: model exposes no nets");
  }

  // 1. Wrap every quantizable layer with a range observer.
  std::vector<std::pair<Sequential*, std::size_t>> sites;
  for (Sequential* net : nets) {
    for (std::size_t i = 0; i < net->num_layers(); ++i) {
      if (!quantizable(net->layer(i))) continue;
      LayerPtr fp32 = net->swap_layer(i, LayerPtr());
      net->swap_layer(i, std::make_unique<ObservedLayer>(std::move(fp32)));
      sites.emplace_back(net, i);
    }
  }
  if (sites.empty()) {
    throw std::invalid_argument("quantize_model: nothing to quantize");
  }

  // 2. Calibration passes: plain batched inference, observers recording.
  const std::size_t bs = std::max<std::size_t>(1, options.calibration_batch);
  std::vector<Prediction> sink(bs);
  for (std::size_t at = 0; at < calibration.size(); at += bs) {
    const std::size_t n = std::min(bs, calibration.size() - at);
    clone->predict_batch(calibration.data() + at, n, sink.data());
  }

  // 3. Swap each observed site for its int8 twin.
  for (auto& [net, i] : sites) {
    auto& obs = static_cast<ObservedLayer&>(net->layer(i));
    const ActQuant xq = obs.act_quant(options);
    LayerPtr twin = make_quant_twin(obs.take_inner(), xq);
    net->swap_layer(i, std::move(twin));
  }
  return std::unique_ptr<QuantizedModel>(
      new QuantizedModel(std::move(clone)));
}

}  // namespace autolearn::ml
