// Post-training quantization of the model zoo: observe activation ranges
// on calibration tub data, then swap every Dense/Conv2D/Conv3D in the
// model's nets for an int8 twin (quant_layers.hpp). The result is a
// frozen QuantizedModel serving through the unchanged predict /
// predict_batch entry points — the paper's edge tier trades ~4x cheaper
// arithmetic for a bounded steering drift (gated by ctest -L quant).
#pragma once

#include <memory>
#include <vector>

#include "ml/driving_model.hpp"

namespace autolearn::ml {

/// How a layer's observed activation range becomes a quantizer.
enum class Calibrator {
  MaxAbs,      // exact observed [min, max] — no clipping, widest scale
  Percentile,  // clip to the [1-p, p] sample quantiles — outlier-robust
};

const char* to_string(Calibrator calibrator);

struct QuantizeOptions {
  Calibrator calibrator = Calibrator::MaxAbs;
  /// Percentile calibrator: p in (0.5, 1]. 0.999 keeps the 0.1% tails
  /// from stretching the scale.
  double percentile = 0.999;
  /// Forward-pass batch size while observing activation ranges.
  std::size_t calibration_batch = 32;
};

/// int8 view of a trained zoo model. Inference delegates to the inner
/// (layer-swapped) model; training and parameter loading throw — a
/// quantized model is a frozen deployment artifact, re-derived from the
/// fp32 source when weights change. save() still works (the quant layers
/// retain the fp32 parameters) so a published variant can be archived.
class QuantizedModel : public DrivingModel {
 public:
  ModelType type() const override { return inner_->type(); }
  Precision precision() const override { return Precision::Int8; }
  std::size_t seq_len() const override { return inner_->seq_len(); }
  std::size_t history_len() const override { return inner_->history_len(); }
  Prediction predict(const Sample& obs) override {
    return inner_->predict(obs);
  }
  void predict_batch(const Sample* obs, std::size_t n,
                     Prediction* out) override {
    inner_->predict_batch(obs, n, out);
  }
  double train_batch(const std::vector<const Sample*>& batch) override;
  double eval_batch(const std::vector<const Sample*>& batch) override {
    return inner_->eval_batch(batch);
  }
  std::size_t num_parameters() override { return inner_->num_parameters(); }
  std::uint64_t flops_per_sample() const override {
    return inner_->flops_per_sample();
  }
  void save(std::ostream& os) override { inner_->save(os); }
  void load(std::istream& is) override;

  /// Plan compilation delegates to the layer-swapped inner model: the
  /// int8 twins compile into packed-qgemm steps in the same arena program.
  bool attach_plan(std::size_t max_batch) override {
    return inner_->attach_plan(max_batch);
  }
  void detach_plan() override { inner_->detach_plan(); }
  CompiledModel* plan() override { return inner_->plan(); }

  /// The layer-swapped model, exposed for introspection in tests.
  DrivingModel& inner() { return *inner_; }

 private:
  friend std::unique_ptr<QuantizedModel> quantize_model(
      DrivingModel& src, const ModelConfig& cfg,
      const std::vector<Sample>& calibration, const QuantizeOptions& options);

  explicit QuantizedModel(std::unique_ptr<DrivingModel> inner)
      : inner_(std::move(inner)) {}

  std::unique_ptr<DrivingModel> inner_;
};

/// Builds an int8 QuantizedModel from a trained source model. `cfg` must
/// be the config `src` was built with (the clone is reconstructed through
/// make_model + save/load). Calibration runs predict_batch over the given
/// samples with range observers attached, then every quantizable layer is
/// replaced in place. Throws std::invalid_argument if `calibration` is
/// empty or the model exposes no nets.
std::unique_ptr<QuantizedModel> quantize_model(
    DrivingModel& src, const ModelConfig& cfg,
    const std::vector<Sample>& calibration,
    const QuantizeOptions& options = {});

}  // namespace autolearn::ml
