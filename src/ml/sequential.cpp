#include "ml/sequential.hpp"

#include <algorithm>
#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "util/binio.hpp"

namespace autolearn::ml {

Tensor Sequential::forward(const Tensor& x, bool train) {
  Tensor cur = x;
  for (auto& l : layers_) cur = l->forward(cur, train);
  return cur;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (std::size_t i = layers_.size(); i-- > 0;) {
    g = layers_[i]->backward(g);
  }
  return g;
}

std::vector<Param*> Sequential::params() {
  std::vector<Param*> out;
  for (auto& l : layers_) {
    for (Param* p : l->params()) out.push_back(p);
  }
  return out;
}

std::size_t Sequential::num_parameters() {
  std::size_t n = 0;
  for (Param* p : params()) n += p->value.size();
  return n;
}

std::uint64_t Sequential::flops_per_sample() const {
  std::uint64_t total = 0;
  for (const auto& l : layers_) total += l->flops_per_sample();
  return total;
}

namespace {
// "ALSQ": parameter-block magic, so a stream that is not a Sequential
// checkpoint fails fast with BadHeader instead of misreading sizes.
constexpr std::uint32_t kParamsMagic = 0x51534c41;
}  // namespace

void Sequential::save_params(std::ostream& os) {
  const auto ps = params();
  util::write_pod(os, kParamsMagic);
  util::write_pod(os, static_cast<std::uint64_t>(ps.size()));
  for (Param* p : ps) {
    const auto& shape = p->value.shape();
    util::write_pod(os, static_cast<std::uint32_t>(shape.size()));
    for (const std::size_t dim : shape) {
      util::write_pod(os, static_cast<std::uint64_t>(dim));
    }
    util::write_f32_span(os, p->value.data(), p->value.size());
  }
}

void Sequential::load_params(std::istream& is) {
  const auto ps = params();
  std::uint32_t magic = 0;
  if (!util::read_pod(is, magic)) {
    throw ModelLoadError(ModelLoadError::Code::Truncated,
                         "Sequential: empty checkpoint stream");
  }
  if (magic != kParamsMagic) {
    throw ModelLoadError(ModelLoadError::Code::BadHeader,
                         "Sequential: not a parameter checkpoint");
  }
  std::uint64_t count = 0;
  if (!util::read_pod(is, count)) {
    throw ModelLoadError(ModelLoadError::Code::Truncated,
                         "Sequential: truncated tensor count");
  }
  if (count != ps.size()) {
    throw ModelLoadError(
        ModelLoadError::Code::LayerCountMismatch,
        "Sequential: checkpoint holds " + std::to_string(count) +
            " tensors, model expects " + std::to_string(ps.size()));
  }
  // Stage everything, validating shape tensor-by-tensor; commit only after
  // the whole stream checked out so a bad checkpoint cannot half-load.
  std::vector<std::vector<float>> staged(ps.size());
  for (std::size_t i = 0; i < ps.size(); ++i) {
    std::uint32_t rank = 0;
    if (!util::read_pod(is, rank)) {
      throw ModelLoadError(ModelLoadError::Code::Truncated,
                           "Sequential: truncated tensor header");
    }
    std::vector<std::size_t> shape(rank);
    for (std::uint32_t d = 0; d < rank; ++d) {
      std::uint64_t dim = 0;
      if (!util::read_pod(is, dim)) {
        throw ModelLoadError(ModelLoadError::Code::Truncated,
                             "Sequential: truncated tensor shape");
      }
      shape[d] = static_cast<std::size_t>(dim);
    }
    if (shape != ps[i]->value.shape()) {
      throw ModelLoadError(
          ModelLoadError::Code::ShapeMismatch,
          "Sequential: tensor " + std::to_string(i) + " shape mismatch");
    }
    staged[i].resize(ps[i]->value.size());
    if (!util::read_f32_span(is, staged[i].data(), staged[i].size())) {
      throw ModelLoadError(ModelLoadError::Code::Truncated,
                           "Sequential: truncated tensor data");
    }
  }
  for (std::size_t i = 0; i < ps.size(); ++i) {
    std::copy(staged[i].begin(), staged[i].end(), ps[i]->value.data());
  }
}

void Sequential::save_state(std::ostream& os) const {
  for (const auto& l : layers_) l->save_state(os);
}

void Sequential::load_state(std::istream& is) {
  for (auto& l : layers_) l->load_state(is);
}

}  // namespace autolearn::ml
