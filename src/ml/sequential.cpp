#include "ml/sequential.hpp"

#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace autolearn::ml {

Tensor Sequential::forward(const Tensor& x, bool train) {
  Tensor cur = x;
  for (auto& l : layers_) cur = l->forward(cur, train);
  return cur;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (std::size_t i = layers_.size(); i-- > 0;) {
    g = layers_[i]->backward(g);
  }
  return g;
}

std::vector<Param*> Sequential::params() {
  std::vector<Param*> out;
  for (auto& l : layers_) {
    for (Param* p : l->params()) out.push_back(p);
  }
  return out;
}

std::size_t Sequential::num_parameters() {
  std::size_t n = 0;
  for (Param* p : params()) n += p->value.size();
  return n;
}

std::uint64_t Sequential::flops_per_sample() const {
  std::uint64_t total = 0;
  for (const auto& l : layers_) total += l->flops_per_sample();
  return total;
}

void Sequential::save_params(std::ostream& os) {
  const auto ps = params();
  const std::uint64_t count = ps.size();
  os.write(reinterpret_cast<const char*>(&count), sizeof count);
  for (Param* p : ps) {
    const std::uint64_t n = p->value.size();
    os.write(reinterpret_cast<const char*>(&n), sizeof n);
    os.write(reinterpret_cast<const char*>(p->value.data()),
             static_cast<std::streamsize>(n * sizeof(float)));
  }
}

void Sequential::load_params(std::istream& is) {
  const auto ps = params();
  std::uint64_t count = 0;
  is.read(reinterpret_cast<char*>(&count), sizeof count);
  if (!is || count != ps.size()) {
    throw std::runtime_error("Sequential: checkpoint layer-count mismatch");
  }
  for (Param* p : ps) {
    std::uint64_t n = 0;
    is.read(reinterpret_cast<char*>(&n), sizeof n);
    if (!is || n != p->value.size()) {
      throw std::runtime_error("Sequential: checkpoint size mismatch");
    }
    is.read(reinterpret_cast<char*>(p->value.data()),
            static_cast<std::streamsize>(n * sizeof(float)));
    if (!is) throw std::runtime_error("Sequential: truncated checkpoint");
  }
}

}  // namespace autolearn::ml
