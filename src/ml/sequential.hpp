// Ordered layer container with serialization.
#pragma once

#include <iosfwd>
#include <memory>
#include <vector>

#include "ml/layer.hpp"

namespace autolearn::ml {

class Sequential {
 public:
  Sequential() = default;
  Sequential(Sequential&&) = default;
  Sequential& operator=(Sequential&&) = default;

  template <typename L, typename... Args>
  L& add(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    layers_.push_back(std::move(layer));
    return ref;
  }

  Tensor forward(const Tensor& x, bool train);
  /// Full backward chain; returns grad w.r.t. the network input.
  Tensor backward(const Tensor& grad_out);

  std::vector<Param*> params();
  std::size_t num_layers() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }

  /// Total trainable scalar count.
  std::size_t num_parameters();

  /// Forward FLOPs per sample (valid after at least one forward pass for
  /// conv layers, which size themselves from their input).
  std::uint64_t flops_per_sample() const;

  /// Writes / reads all parameter tensors in order (binary).
  void save_params(std::ostream& os);
  void load_params(std::istream& is);

 private:
  std::vector<LayerPtr> layers_;
};

}  // namespace autolearn::ml
