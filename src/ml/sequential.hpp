// Ordered layer container with serialization.
#pragma once

#include <iosfwd>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "ml/layer.hpp"

namespace autolearn::ml {

/// Typed load failure: the stream did not match the receiving model.
/// load_params is transactional — on throw, the model is untouched (no
/// silent partial misload).
class ModelLoadError : public std::runtime_error {
 public:
  enum class Code {
    BadHeader,           // missing/unknown magic
    Truncated,           // stream ended mid-checkpoint
    LayerCountMismatch,  // parameter-tensor count differs
    ShapeMismatch,       // a tensor's shape differs from the receiver's
  };

  ModelLoadError(Code code, const std::string& what)
      : std::runtime_error(what), code_(code) {}
  Code code() const { return code_; }

 private:
  Code code_;
};

class Sequential {
 public:
  Sequential() = default;
  Sequential(Sequential&&) = default;
  Sequential& operator=(Sequential&&) = default;

  template <typename L, typename... Args>
  L& add(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    layers_.push_back(std::move(layer));
    return ref;
  }

  Tensor forward(const Tensor& x, bool train);
  /// Full backward chain; returns grad w.r.t. the network input.
  Tensor backward(const Tensor& grad_out);

  std::vector<Param*> params();
  std::size_t num_layers() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }
  /// False while slot i transiently holds null mid-swap (see swap_layer).
  /// Plan compilation (ml/plan.hpp) checks this instead of crashing on a
  /// null dereference in layer().
  bool has_layer(std::size_t i) const { return layers_.at(i) != nullptr; }

  /// Replaces layer i and returns the previous layer — the hook
  /// post-training transforms (ml::quantize_model) use to swap trained
  /// layers for inference twins in place. The slot may hold null
  /// transiently between paired swap calls while a replacement is being
  /// built from the old layer, but the Sequential must not run until a
  /// real layer is back.
  LayerPtr swap_layer(std::size_t i, LayerPtr layer) {
    std::swap(layers_.at(i), layer);
    return layer;
  }

  /// Total trainable scalar count.
  std::size_t num_parameters();

  /// Forward FLOPs per sample (valid after at least one forward pass for
  /// conv layers, which size themselves from their input).
  std::uint64_t flops_per_sample() const;

  /// Writes / reads all parameter tensors in order (binary). The format is
  /// self-describing (magic + per-tensor shapes); load_params validates
  /// tensor count and every shape against this model and throws
  /// ModelLoadError — after staging the whole stream, so a failed load
  /// never leaves the model half-overwritten.
  void save_params(std::ostream& os);
  void load_params(std::istream& is);

  /// Non-parameter training state (layer RNG streams): see Layer::
  /// save_state. Paired with save_params by DrivingModel::save_full.
  void save_state(std::ostream& os) const;
  void load_state(std::istream& is);

 private:
  std::vector<LayerPtr> layers_;
};

}  // namespace autolearn::ml
