#include "ml/tensor.hpp"

#include <numeric>
#include <sstream>

namespace autolearn::ml {

Tensor::Tensor(std::vector<std::size_t> shape, float fill)
    : shape_(std::move(shape)) {
  if (shape_.empty()) throw std::invalid_argument("Tensor: empty shape");
  std::size_t n = 1;
  for (std::size_t d : shape_) {
    if (d == 0) throw std::invalid_argument("Tensor: zero dimension");
    n *= d;
  }
  data_.assign(n, fill);
  compute_strides();
}

void Tensor::compute_strides() {
  strides_.assign(shape_.size(), 1);
  for (std::size_t i = shape_.size(); i-- > 1;) {
    strides_[i - 1] = strides_[i] * shape_[i];
  }
  // strides_[i] for i in [0, rank-2]; last stride is 1 (implicit in
  // accessors: they only use strides_[0..rank-2]).
}

Tensor Tensor::randn(std::vector<std::size_t> shape, util::Rng& rng,
                     double stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.normal(0.0, stddev));
  return t;
}

Tensor Tensor::reshaped(std::vector<std::size_t> new_shape) const {
  Tensor out(std::move(new_shape));
  if (out.size() != size()) {
    throw std::invalid_argument("Tensor: reshape size mismatch " +
                                shape_str() + " -> " + out.shape_str());
  }
  out.data_ = data_;
  return out;
}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

void Tensor::add_scaled(const Tensor& other, float scale) {
  check_same_shape(other, "add_scaled");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += other.data_[i] * scale;
  }
}

void Tensor::scale(float k) {
  for (auto& v : data_) v *= k;
}

void Tensor::check_same_shape(const Tensor& other, const char* what) const {
  if (shape_ != other.shape_) {
    throw std::invalid_argument(std::string("Tensor: shape mismatch in ") +
                                what + ": " + shape_str() + " vs " +
                                other.shape_str());
  }
}

std::string Tensor::shape_str() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << ",";
    os << shape_[i];
  }
  os << "]";
  return os.str();
}

}  // namespace autolearn::ml
