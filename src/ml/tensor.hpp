// Dense row-major float tensor.
//
// The ml module is a small from-scratch neural network library (the
// substitute for Keras/TensorFlow in the paper's training step). Tensors
// are contiguous float32 buffers with an explicit shape; all layout is
// row-major with the batch dimension first.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace autolearn::ml {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<std::size_t> shape, float fill = 0.0f);

  static Tensor zeros_like(const Tensor& other) {
    return Tensor(other.shape());
  }

  /// He/Glorot-style initialization used by the layers.
  static Tensor randn(std::vector<std::size_t> shape, util::Rng& rng,
                      double stddev);

  const std::vector<std::size_t>& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t dim(std::size_t i) const { return shape_.at(i); }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  // Multi-dimensional accessors for ranks 2-5 (unchecked hot paths).
  float& at(std::size_t i, std::size_t j) {
    return data_[i * strides_[0] + j];
  }
  const float& at(std::size_t i, std::size_t j) const {
    return data_[i * strides_[0] + j];
  }
  float& at(std::size_t i, std::size_t j, std::size_t k) {
    return data_[i * strides_[0] + j * strides_[1] + k];
  }
  const float& at(std::size_t i, std::size_t j, std::size_t k) const {
    return data_[i * strides_[0] + j * strides_[1] + k];
  }
  float& at(std::size_t i, std::size_t j, std::size_t k, std::size_t l) {
    return data_[i * strides_[0] + j * strides_[1] + k * strides_[2] + l];
  }
  const float& at(std::size_t i, std::size_t j, std::size_t k, std::size_t l) const {
    return data_[i * strides_[0] + j * strides_[1] + k * strides_[2] + l];
  }
  float& at(std::size_t i, std::size_t j, std::size_t k, std::size_t l,
            std::size_t m) {
    return data_[i * strides_[0] + j * strides_[1] + k * strides_[2] +
                 l * strides_[3] + m];
  }
  const float& at(std::size_t i, std::size_t j, std::size_t k, std::size_t l,
                  std::size_t m) const {
    return data_[i * strides_[0] + j * strides_[1] + k * strides_[2] +
                 l * strides_[3] + m];
  }

  /// Returns a copy with a new shape of equal element count.
  Tensor reshaped(std::vector<std::size_t> new_shape) const;

  void fill(float v);
  /// Element-wise in-place operations used by the optimizer.
  void add_scaled(const Tensor& other, float scale);
  void scale(float k);

  /// Throws unless shapes match exactly.
  void check_same_shape(const Tensor& other, const char* what) const;

  std::string shape_str() const;

 private:
  void compute_strides();

  std::vector<std::size_t> shape_;
  std::vector<std::size_t> strides_;  // strides_[i] = product of dims after i
  std::vector<float> data_;
};

}  // namespace autolearn::ml
