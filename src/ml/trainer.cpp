#include "ml/trainer.hpp"

#include <chrono>
#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "ml/gemm.hpp"
#include "util/logging.hpp"

namespace autolearn::ml {
namespace {

std::vector<const Sample*> batch_view(const std::vector<Sample>& data,
                                      const std::vector<std::size_t>& order,
                                      std::size_t begin, std::size_t end) {
  std::vector<const Sample*> out;
  out.reserve(end - begin);
  for (std::size_t i = begin; i < end; ++i) out.push_back(&data[order[i]]);
  return out;
}

}  // namespace

double evaluate_loss(DrivingModel& model, const std::vector<Sample>& data,
                     std::size_t batch_size) {
  if (data.empty()) return 0.0;
  double total = 0;
  std::size_t count = 0;
  for (std::size_t b = 0; b < data.size(); b += batch_size) {
    const std::size_t e = std::min(data.size(), b + batch_size);
    std::vector<const Sample*> batch;
    batch.reserve(e - b);
    for (std::size_t i = b; i < e; ++i) batch.push_back(&data[i]);
    total += model.eval_batch(batch) * static_cast<double>(e - b);
    count += e - b;
  }
  return total / static_cast<double>(count);
}

double steering_mae(DrivingModel& model, const std::vector<Sample>& data,
                    std::size_t batch_size) {
  if (data.empty()) return 0.0;
  if (batch_size == 0) throw std::invalid_argument("steering_mae: batch 0");
  double total = 0;
  std::vector<Prediction> preds(batch_size);
  for (std::size_t b = 0; b < data.size(); b += batch_size) {
    const std::size_t n = std::min(batch_size, data.size() - b);
    model.predict_batch(data.data() + b, n, preds.data());
    for (std::size_t i = 0; i < n; ++i) {
      total += std::abs(preds[i].steering - data[b + i].steering);
    }
  }
  return total / static_cast<double>(data.size());
}

TrainResult fit(DrivingModel& model, const std::vector<Sample>& train,
                const std::vector<Sample>& val, const TrainOptions& options) {
  if (train.empty()) throw std::invalid_argument("fit: empty training set");
  if (options.batch_size == 0) throw std::invalid_argument("fit: batch 0");
  const auto t0 = std::chrono::steady_clock::now();
  const KernelCounters kernels0 = kernel_counters();
  const obs::SpanGuard fit_span(options.tracer, "ml.fit", "ml");

  util::Rng rng(options.shuffle_seed);
  std::vector<std::size_t> order(train.size());
  std::iota(order.begin(), order.end(), 0);

  TrainResult result;
  result.best_val_loss = std::numeric_limits<double>::max();
  std::size_t since_best = 0;
  std::string best_weights;  // serialized snapshot of the best epoch

  for (std::size_t epoch = 0; epoch < options.epochs; ++epoch) {
    const obs::SpanGuard epoch_span(options.tracer, "ml.epoch", "ml");
    rng.shuffle(order);
    double epoch_loss = 0;
    std::size_t seen = 0;
    for (std::size_t b = 0; b < train.size(); b += options.batch_size) {
      const std::size_t e = std::min(train.size(), b + options.batch_size);
      const auto batch = batch_view(train, order, b, e);
      epoch_loss += model.train_batch(batch) * static_cast<double>(e - b);
      seen += e - b;
    }
    EpochStats stats;
    stats.train_loss = epoch_loss / static_cast<double>(seen);
    stats.val_loss = val.empty() ? stats.train_loss : evaluate_loss(model, val);
    result.history.push_back(stats);
    result.samples_seen += seen;
    ++result.epochs_run;
    if (options.verbose) {
      AUTOLEARN_LOG(Info, "trainer")
          << model.type_name() << " epoch " << epoch << " train "
          << stats.train_loss << " val " << stats.val_loss;
    }
    if (stats.val_loss < result.best_val_loss - 1e-9) {
      result.best_val_loss = stats.val_loss;
      since_best = 0;
      if (options.restore_best) {
        std::ostringstream snapshot;
        model.save(snapshot);
        best_weights = snapshot.str();
      }
    } else if (options.early_stop_patience > 0 &&
               ++since_best >= options.early_stop_patience) {
      break;
    }
  }
  if (options.restore_best && !best_weights.empty()) {
    std::istringstream snapshot(best_weights);
    model.load(snapshot);
  }
  result.final_train_loss = result.history.back().train_loss;
  result.forward_flops =
      model.flops_per_sample() * static_cast<std::uint64_t>(result.samples_seen);
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (options.metrics) {
    options.metrics->counter("ml.train.fits").inc();
    options.metrics->counter("ml.train.epochs").inc(result.epochs_run);
    options.metrics->counter("ml.train.samples").inc(result.samples_seen);
    options.metrics->counter("ml.train.forward_flops")
        .inc(result.forward_flops);
    options.metrics->gauge("ml.train.final_loss")
        .set(result.final_train_loss);
    options.metrics->gauge("ml.train.best_val_loss").set(result.best_val_loss);
    // Per-kernel workload actually executed by this fit (deltas of the
    // process-wide counters, so concurrent-free runs are reproducible).
    const KernelCounters kernels1 = kernel_counters();
    options.metrics->counter("ml.kernel.gemm_calls")
        .inc(kernels1.gemm_calls - kernels0.gemm_calls);
    options.metrics->counter("ml.kernel.gemm_flops")
        .inc(kernels1.gemm_flops - kernels0.gemm_flops);
    options.metrics->counter("ml.kernel.im2col_elems")
        .inc(kernels1.im2col_elems - kernels0.im2col_elems);
    options.metrics->counter("ml.kernel.col2im_elems")
        .inc(kernels1.col2im_elems - kernels0.col2im_elems);
  }
  return result;
}

}  // namespace autolearn::ml
