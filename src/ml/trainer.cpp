#include "ml/trainer.hpp"

#include <chrono>
#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "ml/gemm.hpp"
#include "util/binio.hpp"
#include "util/logging.hpp"

namespace autolearn::ml {
namespace {

std::vector<const Sample*> batch_view(const std::vector<Sample>& data,
                                      const std::vector<std::size_t>& order,
                                      std::size_t begin, std::size_t end) {
  std::vector<const Sample*> out;
  out.reserve(end - begin);
  for (std::size_t i = begin; i < end; ++i) out.push_back(&data[order[i]]);
  return out;
}

}  // namespace

double evaluate_loss(DrivingModel& model, const std::vector<Sample>& data,
                     std::size_t batch_size) {
  if (data.empty()) return 0.0;
  double total = 0;
  std::size_t count = 0;
  for (std::size_t b = 0; b < data.size(); b += batch_size) {
    const std::size_t e = std::min(data.size(), b + batch_size);
    std::vector<const Sample*> batch;
    batch.reserve(e - b);
    for (std::size_t i = b; i < e; ++i) batch.push_back(&data[i]);
    total += model.eval_batch(batch) * static_cast<double>(e - b);
    count += e - b;
  }
  return total / static_cast<double>(count);
}

double steering_mae(DrivingModel& model, const std::vector<Sample>& data,
                    std::size_t batch_size) {
  if (data.empty()) return 0.0;
  if (batch_size == 0) throw std::invalid_argument("steering_mae: batch 0");
  double total = 0;
  std::vector<Prediction> preds(batch_size);
  for (std::size_t b = 0; b < data.size(); b += batch_size) {
    const std::size_t n = std::min(batch_size, data.size() - b);
    model.predict_batch(data.data() + b, n, preds.data());
    for (std::size_t i = 0; i < n; ++i) {
      total += std::abs(preds[i].steering - data[b + i].steering);
    }
  }
  return total / static_cast<double>(data.size());
}

Trainer::Trainer(DrivingModel& model, const std::vector<Sample>& train,
                 const std::vector<Sample>& val, const TrainOptions& options)
    : model_(model),
      train_(train),
      val_(val),
      opts_(options),
      rng_(options.shuffle_seed),
      order_(train.size()) {
  if (train.empty()) throw std::invalid_argument("fit: empty training set");
  if (options.batch_size == 0) throw std::invalid_argument("fit: batch 0");
  std::iota(order_.begin(), order_.end(), 0);
}

void Trainer::preempt_tick() {
  if (opts_.preempt && opts_.preempt->tick()) {
    throw fault::PreemptedError(
        opts_.preempt->ticks(),
        "preempted while fitting " + model_.type_name());
  }
}

void Trainer::checkpoint_now() {
  if (!opts_.checkpoint_store || opts_.checkpoint_key.empty()) return;
  ckpt::CheckpointInfo info;
  info.epoch = epoch_;
  info.step = global_step_;
  info.seed = opts_.shuffle_seed;
  if (!history_.empty()) {
    info.metrics["train_loss"] = history_.back().train_loss;
    info.metrics["val_loss"] = history_.back().val_loss;
  }
  ckpt::save_checkpoint(*opts_.checkpoint_store, opts_.checkpoint_key, *this,
                        info);
  ++checkpoints_saved_;
  batches_since_ckpt_ = 0;
}

void Trainer::save_best_model(double val_loss) {
  if (!opts_.save_best || !opts_.checkpoint_store ||
      opts_.checkpoint_key.empty()) {
    return;
  }
  std::ostringstream snapshot;
  model_.save(snapshot);
  ckpt::CheckpointInfo info;
  info.epoch = epoch_;
  info.step = global_step_;
  info.seed = opts_.shuffle_seed;
  info.note = "best-model";
  info.metrics["val_loss"] = val_loss;
  opts_.checkpoint_store->save(opts_.checkpoint_key + ".best",
                               snapshot.str(), info);
}

TrainResult Trainer::fit() {
  tune_interpreted_allocator();
  const auto t0 = std::chrono::steady_clock::now();
  const KernelCounters kernels0 = kernel_counters();
  const obs::SpanGuard fit_span(opts_.tracer, "ml.fit", "ml");

  if (opts_.checkpoint_store && !opts_.checkpoint_key.empty()) {
    if (ckpt::restore_checkpoint(*opts_.checkpoint_store,
                                 opts_.checkpoint_key, *this)) {
      resumed_ = true;
      resumed_epoch_ = epoch_;
      if (opts_.verbose) {
        AUTOLEARN_LOG(Info, "trainer")
            << model_.type_name() << " resumed at epoch " << epoch_
            << " index " << next_index_;
      }
    }
  }

  bool stop_early = false;
  while (epoch_ < opts_.epochs && !stop_early) {
    const obs::SpanGuard epoch_span(opts_.tracer, "ml.epoch", "ml");
    if (next_index_ == 0) {
      // Fresh epoch. A mid-epoch restore keeps the drawn order and the
      // partial accumulators from the checkpoint instead.
      rng_.shuffle(order_);
      epoch_loss_ = 0;
      epoch_seen_ = 0;
    }
    while (next_index_ < train_.size()) {
      preempt_tick();  // batch boundary
      const std::size_t b = next_index_;
      const std::size_t e = std::min(train_.size(), b + opts_.batch_size);
      const auto batch = batch_view(train_, order_, b, e);
      epoch_loss_ += model_.train_batch(batch) * static_cast<double>(e - b);
      epoch_seen_ += e - b;
      ++global_step_;
      ++batches_run_;
      preempt_tick();  // mid-batch: the GEMM ran, the index did not advance
      next_index_ = e;
      ++batches_since_ckpt_;
      if (opts_.checkpoint_every_batches > 0 &&
          batches_since_ckpt_ >= opts_.checkpoint_every_batches &&
          next_index_ < train_.size()) {
        checkpoint_now();
      }
    }
    next_index_ = 0;
    EpochStats stats;
    stats.train_loss = epoch_loss_ / static_cast<double>(epoch_seen_);
    stats.val_loss =
        val_.empty() ? stats.train_loss : evaluate_loss(model_, val_);
    history_.push_back(stats);
    samples_seen_ += epoch_seen_;
    ++epochs_run_;
    if (opts_.verbose) {
      AUTOLEARN_LOG(Info, "trainer")
          << model_.type_name() << " epoch " << epoch_ << " train "
          << stats.train_loss << " val " << stats.val_loss;
    }
    if (stats.val_loss < best_val_loss_ - 1e-9) {
      best_val_loss_ = stats.val_loss;
      since_best_ = 0;
      if (opts_.restore_best) {
        std::ostringstream snapshot;
        model_.save(snapshot);
        best_weights_ = snapshot.str();
      }
      save_best_model(stats.val_loss);
    } else if (opts_.early_stop_patience > 0 &&
               ++since_best_ >= opts_.early_stop_patience) {
      stop_early = true;
    }
    ++epoch_;
    checkpoint_now();  // epoch-boundary checkpoint (no-op without a store)
  }
  if (opts_.restore_best && !best_weights_.empty()) {
    std::istringstream snapshot(best_weights_);
    model_.load(snapshot);
  }

  TrainResult result;
  result.history = history_;
  result.best_val_loss = best_val_loss_;
  result.epochs_run = epochs_run_;
  result.samples_seen = samples_seen_;
  result.resumed = resumed_;
  result.resumed_epoch = resumed_epoch_;
  result.checkpoints_saved = checkpoints_saved_;
  result.batches_run = batches_run_;
  result.final_train_loss = result.history.back().train_loss;
  result.forward_flops = model_.flops_per_sample() *
                         static_cast<std::uint64_t>(result.samples_seen);
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const TrainOptions& options = opts_;
  if (options.metrics) {
    options.metrics->counter("ml.train.fits").inc();
    options.metrics->counter("ml.train.epochs").inc(result.epochs_run);
    options.metrics->counter("ml.train.samples").inc(result.samples_seen);
    options.metrics->counter("ml.train.forward_flops")
        .inc(result.forward_flops);
    options.metrics->gauge("ml.train.final_loss")
        .set(result.final_train_loss);
    options.metrics->gauge("ml.train.best_val_loss").set(result.best_val_loss);
    // Per-kernel workload actually executed by this fit (deltas of the
    // process-wide counters, so concurrent-free runs are reproducible).
    const KernelCounters kernels1 = kernel_counters();
    options.metrics->counter("ml.kernel.gemm_calls")
        .inc(kernels1.gemm_calls - kernels0.gemm_calls);
    options.metrics->counter("ml.kernel.gemm_flops")
        .inc(kernels1.gemm_flops - kernels0.gemm_flops);
    options.metrics->counter("ml.kernel.im2col_elems")
        .inc(kernels1.im2col_elems - kernels0.im2col_elems);
    options.metrics->counter("ml.kernel.col2im_elems")
        .inc(kernels1.col2im_elems - kernels0.col2im_elems);
  }
  return result;
}

namespace {
// "ALTR": trainer-state magic inside the checkpoint payload.
constexpr std::uint32_t kTrainerMagic = 0x52544c41;

[[noreturn]] void truncated(const char* what) {
  throw ModelLoadError(ModelLoadError::Code::Truncated,
                       std::string("Trainer: truncated ") + what);
}
}  // namespace

void Trainer::save_state(std::ostream& os) {
  util::write_pod(os, kTrainerMagic);
  util::write_rng_state(os, rng_.state());
  util::write_pod(os, static_cast<std::uint64_t>(order_.size()));
  for (const std::size_t i : order_) {
    util::write_pod(os, static_cast<std::uint64_t>(i));
  }
  util::write_pod(os, static_cast<std::uint64_t>(epoch_));
  util::write_pod(os, static_cast<std::uint64_t>(next_index_));
  util::write_pod(os, epoch_loss_);
  util::write_pod(os, static_cast<std::uint64_t>(epoch_seen_));
  util::write_pod(os, static_cast<std::uint64_t>(history_.size()));
  for (const EpochStats& s : history_) {
    util::write_pod(os, s.train_loss);
    util::write_pod(os, s.val_loss);
  }
  util::write_pod(os, static_cast<std::uint64_t>(samples_seen_));
  util::write_pod(os, static_cast<std::uint64_t>(epochs_run_));
  util::write_pod(os, best_val_loss_);
  util::write_pod(os, static_cast<std::uint64_t>(since_best_));
  util::write_string(os, best_weights_);
  util::write_pod(os, global_step_);
  model_.save_full(os);
}

void Trainer::load_state(std::istream& is) {
  std::uint32_t magic = 0;
  if (!util::read_pod(is, magic)) truncated("header");
  if (magic != kTrainerMagic) {
    throw ModelLoadError(ModelLoadError::Code::BadHeader,
                         "Trainer: not a trainer checkpoint");
  }
  util::RngState rng_state;
  if (!util::read_rng_state(is, rng_state)) truncated("RNG state");
  std::uint64_t order_count = 0;
  if (!util::read_pod(is, order_count)) truncated("order size");
  if (order_count != train_.size()) {
    throw std::invalid_argument(
        "Trainer: checkpoint was taken over a different dataset (" +
        std::to_string(order_count) + " vs " +
        std::to_string(train_.size()) + " samples)");
  }
  std::vector<std::size_t> order(order_count);
  for (std::uint64_t i = 0; i < order_count; ++i) {
    std::uint64_t v = 0;
    if (!util::read_pod(is, v)) truncated("order");
    order[i] = static_cast<std::size_t>(v);
  }
  auto read_size = [&is](const char* what) {
    std::uint64_t v = 0;
    if (!util::read_pod(is, v)) truncated(what);
    return static_cast<std::size_t>(v);
  };
  const std::size_t epoch = read_size("epoch");
  const std::size_t next_index = read_size("index");
  double epoch_loss = 0;
  if (!util::read_pod(is, epoch_loss)) truncated("loss accumulator");
  const std::size_t epoch_seen = read_size("seen counter");
  const std::size_t history_count = read_size("history size");
  std::vector<EpochStats> history(history_count);
  for (EpochStats& s : history) {
    if (!util::read_pod(is, s.train_loss)) truncated("history");
    if (!util::read_pod(is, s.val_loss)) truncated("history");
  }
  const std::size_t samples_seen = read_size("sample counter");
  const std::size_t epochs_run = read_size("epoch counter");
  double best_val_loss = 0;
  if (!util::read_pod(is, best_val_loss)) truncated("best val loss");
  const std::size_t since_best = read_size("patience counter");
  std::string best_weights;
  if (!util::read_string(is, best_weights)) truncated("best snapshot");
  std::uint64_t global_step = 0;
  if (!util::read_pod(is, global_step)) truncated("step counter");
  // The model load is transactional on its own; commit the loop state only
  // after everything (model included) deserialized cleanly.
  model_.load_full(is);
  rng_.set_state(rng_state);
  order_ = std::move(order);
  epoch_ = epoch;
  next_index_ = next_index;
  epoch_loss_ = epoch_loss;
  epoch_seen_ = epoch_seen;
  history_ = std::move(history);
  samples_seen_ = samples_seen;
  epochs_run_ = epochs_run;
  best_val_loss_ = best_val_loss;
  since_best_ = since_best;
  best_weights_ = std::move(best_weights);
  global_step_ = global_step;
}

TrainResult fit(DrivingModel& model, const std::vector<Sample>& train,
                const std::vector<Sample>& val, const TrainOptions& options) {
  Trainer trainer(model, train, val, options);
  return trainer.fit();
}

}  // namespace autolearn::ml
