// Mini-batch training loop (the "model training" phase of the AutoLearn
// pipeline): shuffled epochs, validation tracking, optional early
// stopping, and workload accounting (samples and FLOPs) that the GPU
// performance model converts into simulated node-hours.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "fault/preempt.hpp"
#include "ml/driving_model.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace autolearn::ml {

struct TrainOptions {
  std::size_t epochs = 10;
  std::size_t batch_size = 32;
  std::uint64_t shuffle_seed = 7;
  /// Stop when val loss has not improved for this many epochs (0 = off).
  std::size_t early_stop_patience = 0;
  /// After training, restore the weights of the best-val-loss epoch
  /// (Keras's ModelCheckpoint(save_best_only) behaviour, which the
  /// DonkeyCar training script uses). Requires a non-empty val set.
  bool restore_best = false;
  bool verbose = false;
  /// Observability sinks (either may be null): an "ml.fit" span wrapping
  /// per-epoch "ml.epoch" spans, plus sample/epoch counters and loss
  /// gauges. Span timestamps come from the tracer's clock — its logical
  /// tick counter unless it is wired to a simulation clock — never from
  /// wall time, so traces stay seed-deterministic.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  /// Durable checkpointing (null = off). When set, fit() checkpoints the
  /// full trainer state (loop counters, shuffle RNG, optimizer moments,
  /// dropout streams, model weights) under `checkpoint_key` at every epoch
  /// boundary, auto-restores from the newest valid generation on entry,
  /// and the resumed fit continues bitwise-identically to an
  /// uninterrupted run.
  ckpt::CheckpointStore* checkpoint_store = nullptr;
  std::string checkpoint_key = "trainer";
  /// Also checkpoint mid-epoch every N trained batches (0 = epoch
  /// boundaries only).
  std::size_t checkpoint_every_batches = 0;
  /// Persist the best-val-loss model (parameters only) under
  /// "<checkpoint_key>.best" whenever validation improves — the durable
  /// twin of restore_best, so serving can warm-start from *best* even
  /// when *latest* has regressed.
  bool save_best = false;
  /// Cooperative kill switch (see fault/preempt.hpp). fit() ticks the
  /// token at every batch boundary and again right after each
  /// GEMM-backed train_batch; at the armed tick it throws PreemptedError
  /// WITHOUT checkpointing (SIGKILL semantics).
  fault::PreemptionToken* preempt = nullptr;
};

struct EpochStats {
  double train_loss = 0.0;
  double val_loss = 0.0;
};

struct TrainResult {
  std::vector<EpochStats> history;
  double final_train_loss = 0.0;
  double best_val_loss = 0.0;
  std::size_t epochs_run = 0;
  std::size_t samples_seen = 0;       // train samples x epochs actually run
  std::uint64_t forward_flops = 0;    // per-sample forward MACs x samples
  double wall_seconds = 0.0;          // real CPU wall time of this fit
  // Checkpoint/resume accounting (zero when checkpointing is off).
  bool resumed = false;               // state came from a checkpoint
  std::size_t resumed_epoch = 0;      // epoch index the restore landed in
  std::size_t checkpoints_saved = 0;  // saves issued by this fit call
  std::size_t batches_run = 0;        // train_batch calls, this call only
};

/// The training loop as a resumable object. The free fit() below wraps it
/// for the common one-shot case; construct a Trainer directly to drive
/// checkpoint/restore yourself (e.g. from workflow cells or tests).
///
/// State captured by save_state covers everything the loop touches —
/// shuffle RNG and the epoch's drawn order, intra-epoch position, loss
/// accumulators, best-val tracking (including the restore_best snapshot),
/// and the model's save_full — so a restore mid-epoch continues at the
/// exact next batch with identical arithmetic.
class Trainer : public ckpt::Checkpointable {
 public:
  Trainer(DrivingModel& model, const std::vector<Sample>& train,
          const std::vector<Sample>& val, const TrainOptions& options);

  /// Runs (or resumes) the fit. Throws fault::PreemptedError when the
  /// armed preemption token fires.
  TrainResult fit();

  const char* checkpoint_kind() const override { return "ml.trainer"; }
  void save_state(std::ostream& os) override;
  void load_state(std::istream& is) override;

 private:
  void checkpoint_now();
  void save_best_model(double val_loss);
  void preempt_tick();

  DrivingModel& model_;
  const std::vector<Sample>& train_;
  const std::vector<Sample>& val_;
  TrainOptions opts_;

  // Resumable loop state (everything here round-trips through
  // save_state/load_state).
  util::Rng rng_;
  std::vector<std::size_t> order_;
  std::size_t epoch_ = 0;        // epochs fully completed
  std::size_t next_index_ = 0;   // position in order_ (0 = epoch start)
  double epoch_loss_ = 0.0;      // raw accumulator of the running epoch
  std::size_t epoch_seen_ = 0;
  std::vector<EpochStats> history_;
  std::size_t samples_seen_ = 0;
  std::size_t epochs_run_ = 0;
  double best_val_loss_ = std::numeric_limits<double>::max();
  std::size_t since_best_ = 0;
  std::string best_weights_;     // restore_best snapshot of the best epoch
  std::uint64_t global_step_ = 0;  // train_batch calls across all runs

  // Per-call accounting (not serialized).
  bool resumed_ = false;
  std::size_t resumed_epoch_ = 0;
  std::size_t checkpoints_saved_ = 0;
  std::size_t batches_run_ = 0;
  std::size_t batches_since_ckpt_ = 0;
};

/// Trains `model` on `train`, tracking loss on `val` after each epoch.
TrainResult fit(DrivingModel& model, const std::vector<Sample>& train,
                const std::vector<Sample>& val, const TrainOptions& options);

/// Mean loss over a dataset (no updates).
double evaluate_loss(DrivingModel& model, const std::vector<Sample>& data,
                     std::size_t batch_size = 64);

/// Mean absolute steering error of per-sample predictions — the accuracy
/// number reported in the E1 model-comparison table.
/// Mean absolute steering error over the dataset, computed through the
/// batched inference path (chunks of `batch_size`).
double steering_mae(DrivingModel& model, const std::vector<Sample>& data,
                    std::size_t batch_size = 32);

}  // namespace autolearn::ml
