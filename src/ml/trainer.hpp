// Mini-batch training loop (the "model training" phase of the AutoLearn
// pipeline): shuffled epochs, validation tracking, optional early
// stopping, and workload accounting (samples and FLOPs) that the GPU
// performance model converts into simulated node-hours.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/driving_model.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace autolearn::ml {

struct TrainOptions {
  std::size_t epochs = 10;
  std::size_t batch_size = 32;
  std::uint64_t shuffle_seed = 7;
  /// Stop when val loss has not improved for this many epochs (0 = off).
  std::size_t early_stop_patience = 0;
  /// After training, restore the weights of the best-val-loss epoch
  /// (Keras's ModelCheckpoint(save_best_only) behaviour, which the
  /// DonkeyCar training script uses). Requires a non-empty val set.
  bool restore_best = false;
  bool verbose = false;
  /// Observability sinks (either may be null): an "ml.fit" span wrapping
  /// per-epoch "ml.epoch" spans, plus sample/epoch counters and loss
  /// gauges. Span timestamps come from the tracer's clock — its logical
  /// tick counter unless it is wired to a simulation clock — never from
  /// wall time, so traces stay seed-deterministic.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

struct EpochStats {
  double train_loss = 0.0;
  double val_loss = 0.0;
};

struct TrainResult {
  std::vector<EpochStats> history;
  double final_train_loss = 0.0;
  double best_val_loss = 0.0;
  std::size_t epochs_run = 0;
  std::size_t samples_seen = 0;       // train samples x epochs actually run
  std::uint64_t forward_flops = 0;    // per-sample forward MACs x samples
  double wall_seconds = 0.0;          // real CPU wall time of this fit
};

/// Trains `model` on `train`, tracking loss on `val` after each epoch.
TrainResult fit(DrivingModel& model, const std::vector<Sample>& train,
                const std::vector<Sample>& val, const TrainOptions& options);

/// Mean loss over a dataset (no updates).
double evaluate_loss(DrivingModel& model, const std::vector<Sample>& data,
                     std::size_t batch_size = 64);

/// Mean absolute steering error of per-sample predictions — the accuracy
/// number reported in the E1 model-comparison table.
/// Mean absolute steering error over the dataset, computed through the
/// batched inference path (chunks of `batch_size`).
double steering_mae(DrivingModel& model, const std::vector<Sample>& data,
                    std::size_t batch_size = 32);

}  // namespace autolearn::ml
