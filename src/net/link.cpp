#include "net/link.hpp"

#include <algorithm>

namespace autolearn::net {

void LinkSpec::validate() const {
  if (latency_s < 0) throw std::invalid_argument("link: negative latency");
  if (jitter_s < 0) throw std::invalid_argument("link: negative jitter");
  if (bandwidth_bps <= 0) throw std::invalid_argument("link: bad bandwidth");
  if (loss_prob < 0 || loss_prob > 1) {
    throw std::invalid_argument("link: loss_prob outside [0,1]");
  }
}

Link::Link(LinkSpec spec) : spec_(spec) { spec_.validate(); }

double Link::sample_latency(util::Rng& rng) const {
  if (spec_.jitter_s == 0) return spec_.latency_s;
  return std::max(0.0, rng.normal(spec_.latency_s, spec_.jitter_s));
}

double Link::transfer_time(std::uint64_t bytes, util::Rng& rng) const {
  return sample_latency(rng) +
         static_cast<double>(bytes) / spec_.bandwidth_bps;
}

bool Link::drops(util::Rng& rng) const {
  return spec_.loss_prob > 0 && rng.chance(spec_.loss_prob);
}

LinkSpec Link::edge_wifi() {
  return LinkSpec{0.005, 0.002, 3e6, 0.0};
}

LinkSpec Link::campus_to_cloud() {
  return LinkSpec{0.020, 0.004, 60e6, 0.0};
}

LinkSpec Link::datacenter() {
  return LinkSpec{0.0002, 0.00005, 1.2e9, 0.0};
}

LinkSpec Link::fabric_managed(double latency_s) {
  return LinkSpec{latency_s, 0.0005, 100e6, 0.0};
}

}  // namespace autolearn::net
