// Point-to-point network link model.
//
// Links carry the edge-to-cloud traffic of the continuum: camera frames and
// inference commands between the car's Raspberry Pi and a datacenter node,
// and bulk tub/model transfers (the paper's ssh/rsync steps). A link has a
// base one-way latency, optional jitter, a bandwidth, and an optional loss
// probability used for failure injection.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "util/rng.hpp"

namespace autolearn::net {

struct LinkSpec {
  double latency_s = 0.0;      // one-way propagation latency, seconds
  double jitter_s = 0.0;       // stddev of gaussian jitter (truncated >= 0)
  double bandwidth_bps = 1e9;  // bytes per second
  double loss_prob = 0.0;      // probability a message/transfer fails

  /// Validates ranges; throws std::invalid_argument.
  void validate() const;
};

/// A unidirectional link; the Network installs one per direction.
class Link {
 public:
  explicit Link(LinkSpec spec);

  const LinkSpec& spec() const { return spec_; }

  /// One-way latency sample (base + truncated gaussian jitter).
  double sample_latency(util::Rng& rng) const;

  /// Time to push `bytes` through the link including one latency sample
  /// (a single-stream transfer approximation).
  double transfer_time(std::uint64_t bytes, util::Rng& rng) const;

  /// Failure-injection draw.
  bool drops(util::Rng& rng) const;

  // --- Profiles matching the paper's deployment points -------------------

  /// Wi-Fi between the car and a campus gateway: ~5 ms, jittery, ~3 MB/s.
  static LinkSpec edge_wifi();
  /// Campus to Chameleon site over Internet2: ~20 ms, ~60 MB/s.
  static LinkSpec campus_to_cloud();
  /// Intra-datacenter: ~0.2 ms, ~1.2 GB/s.
  static LinkSpec datacenter();
  /// FABRIC managed-latency link: configurable fixed latency, low jitter.
  static LinkSpec fabric_managed(double latency_s);

 private:
  LinkSpec spec_;
};

}  // namespace autolearn::net
