#include "net/network.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <stdexcept>

namespace autolearn::net {

UnreachableError::UnreachableError(std::string from, std::string to)
    : std::runtime_error("network: no route " + from + " -> " + to),
      from_(std::move(from)),
      to_(std::move(to)) {}

void LinkFault::validate() const {
  if (latency_mult < 1.0 || bandwidth_mult <= 0 || bandwidth_mult > 1.0 ||
      loss_add < 0.0 || loss_add > 1.0) {
    throw std::invalid_argument("network: bad link fault");
  }
}

void Network::add_host(const std::string& name) {
  if (name.empty()) throw std::invalid_argument("network: empty host name");
  adj_.try_emplace(name);
}

bool Network::has_host(const std::string& name) const {
  return adj_.count(name) > 0;
}

std::vector<std::string> Network::hosts() const {
  std::vector<std::string> out;
  out.reserve(adj_.size());
  for (const auto& [name, _] : adj_) out.push_back(name);
  return out;
}

void Network::add_link(const std::string& from, const std::string& to,
                       LinkSpec spec) {
  if (!has_host(from) || !has_host(to)) {
    throw std::invalid_argument("network: unknown endpoint " + from + "->" +
                                to);
  }
  if (from == to) throw std::invalid_argument("network: self-link");
  adj_.at(from).insert_or_assign(to, Link(spec));
}

void Network::add_duplex(const std::string& a, const std::string& b,
                         LinkSpec spec) {
  add_link(a, b, spec);
  add_link(b, a, spec);
}

std::optional<std::vector<std::string>> Network::route(
    const std::string& from, const std::string& to) const {
  if (!has_host(from) || !has_host(to)) return std::nullopt;
  if (partitioned(from) || partitioned(to)) return std::nullopt;
  if (from == to) return std::vector<std::string>{from};
  // Dijkstra on (hops, base latency) lexicographic cost.
  struct Cost {
    std::size_t hops = std::numeric_limits<std::size_t>::max();
    double latency = std::numeric_limits<double>::max();
    bool operator<(const Cost& o) const {
      if (hops != o.hops) return hops < o.hops;
      return latency < o.latency;
    }
  };
  std::map<std::string, Cost> best;
  std::map<std::string, std::string> prev;
  best[from] = {0, 0.0};
  // Small graphs: simple label-correcting loop is plenty.
  std::deque<std::string> frontier{from};
  while (!frontier.empty()) {
    const std::string u = frontier.front();
    frontier.pop_front();
    const Cost cu = best[u];
    for (const auto& [v, link] : adj_.at(u)) {
      if (partitioned(v)) continue;
      const Cost cv{cu.hops + 1, cu.latency + link.spec().latency_s};
      auto it = best.find(v);
      if (it == best.end() || cv < it->second) {
        best[v] = cv;
        prev[v] = u;
        frontier.push_back(v);
      }
    }
  }
  if (!best.count(to)) return std::nullopt;
  std::vector<std::string> path{to};
  for (std::string cur = to; cur != from; cur = prev.at(cur)) {
    path.push_back(prev.at(cur));
  }
  std::reverse(path.begin(), path.end());
  return path;
}

const Link& Network::link_between(const std::string& from,
                                  const std::string& to) const {
  return adj_.at(from).at(to);
}

std::vector<Network::Hop> Network::hops_on_route(const std::string& from,
                                                 const std::string& to) const {
  const auto r = route(from, to);
  if (!r) throw UnreachableError(from, to);
  std::vector<Hop> hops;
  for (std::size_t i = 0; i + 1 < r->size(); ++i) {
    Hop hop;
    hop.link = &link_between((*r)[i], (*r)[i + 1]);
    const auto fit = faults_.find((*r)[i]);
    if (fit != faults_.end()) {
      const auto hit = fit->second.find((*r)[i + 1]);
      if (hit != fit->second.end()) hop.fault = hit->second;
    }
    hops.push_back(hop);
  }
  return hops;
}

double Network::sample_latency(const std::string& from, const std::string& to,
                               util::Rng& rng) const {
  double total = 0;
  for (const Hop& h : hops_on_route(from, to)) {
    total += h.link->sample_latency(rng) * h.fault.latency_mult;
  }
  return total;
}

double Network::sample_rtt(const std::string& from, const std::string& to,
                           util::Rng& rng) const {
  return sample_latency(from, to, rng) + sample_latency(to, from, rng);
}

double Network::transfer_time(const std::string& from, const std::string& to,
                              std::uint64_t bytes, util::Rng& rng) const {
  double latency = 0;
  double min_bw = std::numeric_limits<double>::max();
  for (const Hop& h : hops_on_route(from, to)) {
    latency += h.link->sample_latency(rng) * h.fault.latency_mult;
    min_bw = std::min(min_bw,
                      h.link->spec().bandwidth_bps * h.fault.bandwidth_mult);
  }
  return latency + static_cast<double>(bytes) / min_bw;
}

bool Network::drops(const std::string& from, const std::string& to,
                    util::Rng& rng) const {
  for (const Hop& h : hops_on_route(from, to)) {
    const double loss =
        std::min(1.0, h.link->spec().loss_prob + h.fault.loss_add);
    if (rng.chance(loss)) return true;
  }
  return false;
}

double Network::base_latency(const std::string& from,
                             const std::string& to) const {
  double total = 0;
  for (const Hop& h : hops_on_route(from, to)) {
    total += h.link->spec().latency_s * h.fault.latency_mult;
  }
  return total;
}

void Network::degrade_link(const std::string& from, const std::string& to,
                           LinkFault fault) {
  fault.validate();
  const auto it = adj_.find(from);
  if (it == adj_.end() || !it->second.count(to)) {
    throw std::invalid_argument("network: no link to degrade " + from +
                                " -> " + to);
  }
  faults_[from][to] = fault;
}

void Network::degrade_duplex(const std::string& a, const std::string& b,
                             LinkFault fault) {
  degrade_link(a, b, fault);
  degrade_link(b, a, fault);
}

void Network::clear_degradation(const std::string& from,
                                const std::string& to) {
  const auto it = faults_.find(from);
  if (it != faults_.end()) it->second.erase(to);
}

void Network::clear_degradation_duplex(const std::string& a,
                                       const std::string& b) {
  clear_degradation(a, b);
  clear_degradation(b, a);
}

void Network::partition_host(const std::string& name) {
  if (!has_host(name)) {
    throw std::invalid_argument("network: unknown host " + name);
  }
  partitioned_.insert(name);
}

void Network::heal_host(const std::string& name) { partitioned_.erase(name); }

bool Network::partitioned(const std::string& name) const {
  return partitioned_.count(name) > 0;
}

}  // namespace autolearn::net
