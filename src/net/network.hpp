// Host graph with multi-hop routing.
//
// The continuum topology is small and named: a car ("car-01"), a campus
// gateway, Chameleon sites ("chi-uc", "chi-tacc"), GPU nodes. The Network
// registers hosts and directed links, routes by fewest hops (then lowest
// base latency), and answers end-to-end latency/transfer-time queries by
// summing per-hop costs.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/link.hpp"
#include "util/rng.hpp"

namespace autolearn::net {

class Network {
 public:
  /// Registers a host; idempotent.
  void add_host(const std::string& name);
  bool has_host(const std::string& name) const;
  std::vector<std::string> hosts() const;

  /// Installs a directed link. Both endpoints must exist.
  void add_link(const std::string& from, const std::string& to, LinkSpec spec);
  /// Installs the same spec in both directions.
  void add_duplex(const std::string& a, const std::string& b, LinkSpec spec);

  /// Fewest-hop route (ties broken by total base latency); empty optional
  /// when unreachable. The route includes both endpoints.
  std::optional<std::vector<std::string>> route(const std::string& from,
                                                const std::string& to) const;

  /// One-way latency sample along the route; throws if unreachable.
  double sample_latency(const std::string& from, const std::string& to,
                        util::Rng& rng) const;

  /// Round-trip latency sample (forward + reverse routes).
  double sample_rtt(const std::string& from, const std::string& to,
                    util::Rng& rng) const;

  /// Store-and-forward transfer time for `bytes` along the route: per-hop
  /// latency plus serialization at the bottleneck bandwidth.
  double transfer_time(const std::string& from, const std::string& to,
                       std::uint64_t bytes, util::Rng& rng) const;

  /// Failure injection: true if any hop drops.
  bool drops(const std::string& from, const std::string& to,
             util::Rng& rng) const;

  /// Base (jitter-free) one-way latency along the route; throws if
  /// unreachable. Useful for deterministic analysis.
  double base_latency(const std::string& from, const std::string& to) const;

 private:
  const Link& link_between(const std::string& from,
                           const std::string& to) const;
  std::vector<const Link*> links_on_route(const std::string& from,
                                          const std::string& to) const;

  std::map<std::string, std::map<std::string, Link>> adj_;
};

}  // namespace autolearn::net
