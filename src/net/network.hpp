// Host graph with multi-hop routing and fault overlays.
//
// The continuum topology is small and named: a car ("car-01"), a campus
// gateway, Chameleon sites ("chi-uc", "chi-tacc"), GPU nodes. The Network
// registers hosts and directed links, routes by fewest hops (then lowest
// base latency), and answers end-to-end latency/transfer-time queries by
// summing per-hop costs.
//
// Fault injection (the chaos engine's hooks) layers on top of the static
// topology without touching the installed LinkSpecs: a LinkFault multiplies
// a link's latency/bandwidth and adds loss for the duration of a degrade
// window, and a partitioned host vanishes from routing until healed.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/link.hpp"
#include "util/rng.hpp"

namespace autolearn::net {

/// Thrown when a query needs a route that does not exist. Carries both
/// endpoints so callers can tell a partition-induced (retryable) failure
/// apart from a programming error and react per-route.
class UnreachableError : public std::runtime_error {
 public:
  UnreachableError(std::string from, std::string to);
  const std::string& from() const { return from_; }
  const std::string& to() const { return to_; }

 private:
  std::string from_;
  std::string to_;
};

/// Multiplicative/additive degradation applied to one directed link.
struct LinkFault {
  double latency_mult = 1.0;    // scales base latency and jitter
  double loss_add = 0.0;        // added to the link's loss probability
  double bandwidth_mult = 1.0;  // scales available bandwidth

  void validate() const;
};

class Network {
 public:
  /// Registers a host; idempotent.
  void add_host(const std::string& name);
  bool has_host(const std::string& name) const;
  std::vector<std::string> hosts() const;

  /// Installs a directed link. Both endpoints must exist.
  void add_link(const std::string& from, const std::string& to, LinkSpec spec);
  /// Installs the same spec in both directions.
  void add_duplex(const std::string& a, const std::string& b, LinkSpec spec);

  /// Fewest-hop route (ties broken by total base latency); empty optional
  /// when unreachable. Partitioned hosts are invisible to routing. The
  /// route includes both endpoints.
  std::optional<std::vector<std::string>> route(const std::string& from,
                                                const std::string& to) const;

  /// One-way latency sample along the route; throws UnreachableError when
  /// no route exists.
  double sample_latency(const std::string& from, const std::string& to,
                        util::Rng& rng) const;

  /// Round-trip latency sample (forward + reverse routes).
  double sample_rtt(const std::string& from, const std::string& to,
                    util::Rng& rng) const;

  /// Store-and-forward transfer time for `bytes` along the route: per-hop
  /// latency plus serialization at the bottleneck bandwidth.
  double transfer_time(const std::string& from, const std::string& to,
                       std::uint64_t bytes, util::Rng& rng) const;

  /// Failure injection: true if any hop drops.
  bool drops(const std::string& from, const std::string& to,
             util::Rng& rng) const;

  /// Base (jitter-free) one-way latency along the route, including any
  /// active degradation; throws UnreachableError when no route exists.
  double base_latency(const std::string& from, const std::string& to) const;

  // --- Fault overlays (chaos engine hooks) -------------------------------

  /// Applies a degradation overlay to an installed link (one direction).
  void degrade_link(const std::string& from, const std::string& to,
                    LinkFault fault);
  /// Applies the overlay in both directions.
  void degrade_duplex(const std::string& a, const std::string& b,
                      LinkFault fault);
  /// Removes the overlay (one direction / both directions).
  void clear_degradation(const std::string& from, const std::string& to);
  void clear_degradation_duplex(const std::string& a, const std::string& b);

  /// Removes the host from routing (links stay installed) until healed.
  void partition_host(const std::string& name);
  void heal_host(const std::string& name);
  bool partitioned(const std::string& name) const;

 private:
  struct Hop {
    const Link* link = nullptr;
    LinkFault fault;  // identity when no overlay is active
  };

  const Link& link_between(const std::string& from,
                           const std::string& to) const;
  std::vector<Hop> hops_on_route(const std::string& from,
                                 const std::string& to) const;

  std::map<std::string, std::map<std::string, Link>> adj_;
  std::map<std::string, std::map<std::string, LinkFault>> faults_;
  std::set<std::string> partitioned_;
};

}  // namespace autolearn::net
