#include "net/transfer.hpp"

#include <stdexcept>

#include "util/logging.hpp"

namespace autolearn::net {

TransferManager::TransferManager(Network& network, util::EventQueue& queue,
                                 util::Rng rng, int max_retries)
    : network_(network),
      queue_(queue),
      rng_(rng),
      max_retries_(max_retries) {
  if (max_retries < 0) {
    throw std::invalid_argument("transfer: negative retries");
  }
}

std::uint64_t TransferManager::start(
    const std::string& from, const std::string& to, std::uint64_t bytes,
    std::function<void(const TransferResult&)> on_done) {
  if (!network_.route(from, to)) {
    throw std::runtime_error("transfer: no route " + from + " -> " + to);
  }
  const std::uint64_t id = next_id_++;
  TransferResult r;
  r.id = id;
  r.started_at = queue_.now();
  r.bytes = bytes;
  results_[id] = r;
  ++in_flight_;
  attempt(id, from, to, std::move(on_done));
  return id;
}

void TransferManager::attempt(
    std::uint64_t id, const std::string& from, const std::string& to,
    std::function<void(const TransferResult&)> on_done) {
  TransferResult& r = results_.at(id);
  ++r.attempts;
  const bool dropped = network_.drops(from, to, rng_);
  const double duration =
      network_.transfer_time(from, to, r.bytes, rng_);
  if (!dropped) {
    queue_.schedule_in(duration, [this, id, on_done = std::move(on_done)] {
      TransferResult& res = results_.at(id);
      res.status = TransferStatus::Done;
      res.finished_at = queue_.now();
      --in_flight_;
      ++completed_;
      if (on_done) on_done(res);
    });
    return;
  }
  // Drop detected mid-transfer: waste half the transfer time, then retry or
  // give up.
  const double wasted = duration / 2;
  if (r.attempts > max_retries_) {
    queue_.schedule_in(wasted, [this, id, on_done = std::move(on_done)] {
      TransferResult& res = results_.at(id);
      res.status = TransferStatus::Failed;
      res.finished_at = queue_.now();
      --in_flight_;
      ++failed_;
      AUTOLEARN_LOG(Warn, "net")
          << "transfer " << id << " failed after " << res.attempts
          << " attempts";
      if (on_done) on_done(res);
    });
    return;
  }
  queue_.schedule_in(wasted,
                     [this, id, from, to, on_done = std::move(on_done)] {
                       attempt(id, from, to, std::move(on_done));
                     });
}

const TransferResult& TransferManager::result(std::uint64_t id) const {
  const auto it = results_.find(id);
  if (it == results_.end()) {
    throw std::invalid_argument("transfer: unknown id");
  }
  return it->second;
}

}  // namespace autolearn::net
