#include "net/transfer.hpp"

#include <stdexcept>

#include "util/logging.hpp"

namespace autolearn::net {
namespace {

util::Json attempt_args(const TransferResult& r, const char* outcome) {
  util::Json args = util::Json::object();
  args.set("id", util::Json(r.id));
  args.set("attempt", util::Json(r.attempts));
  args.set("outcome", util::Json(outcome));
  return args;
}

util::Json transfer_args(const TransferResult& r, const char* outcome) {
  util::Json args = util::Json::object();
  args.set("id", util::Json(r.id));
  args.set("bytes", util::Json(r.bytes));
  args.set("attempts", util::Json(r.attempts));
  args.set("outcome", util::Json(outcome));
  return args;
}

}  // namespace

TransferManager::TransferManager(Network& network, util::EventQueue& queue,
                                 util::Rng rng, fault::RetryPolicy policy)
    : network_(network), queue_(queue), rng_(rng), policy_(policy) {
  policy_.validate();
}

TransferManager::TransferManager(Network& network, util::EventQueue& queue,
                                 util::Rng rng, int max_retries)
    : TransferManager(network, queue, rng, [max_retries] {
        if (max_retries < 0) {
          throw std::invalid_argument("transfer: negative retries");
        }
        return fault::RetryPolicy::immediate(max_retries + 1);
      }()) {}

void TransferManager::instrument(obs::Tracer* tracer,
                                 obs::MetricsRegistry* metrics) {
  tracer_ = tracer;
  metrics_ = metrics;
}

std::uint64_t TransferManager::start(
    const std::string& from, const std::string& to, std::uint64_t bytes,
    std::function<void(const TransferResult&)> on_done) {
  if (!network_.route(from, to)) throw UnreachableError(from, to);
  const std::uint64_t id = next_id_++;
  TransferResult r;
  r.id = id;
  r.started_at = queue_.now();
  r.bytes = bytes;
  results_[id] = r;
  backoff_state_[id] = 0.0;
  ++in_flight_;
  if (metrics_) {
    metrics_->counter("net.transfer.started").inc();
    metrics_->counter("net.transfer.bytes_requested").inc(bytes);
    metrics_->histogram("net.transfer.bytes",
                        obs::MetricsRegistry::bytes_buckets())
        .observe(static_cast<double>(bytes));
    metrics_->gauge("net.transfer.in_flight")
        .set(static_cast<double>(in_flight_));
  }
  attempt(id, from, to, std::move(on_done));
  return id;
}

void TransferManager::attempt(
    std::uint64_t id, const std::string& from, const std::string& to,
    std::function<void(const TransferResult&)> on_done) {
  TransferResult& r = results_.at(id);
  ++r.attempts;
  r.attempt_starts.push_back(queue_.now());

  bool dropped = false;
  double duration = 0.0;
  try {
    dropped = network_.drops(from, to, rng_);
    duration = network_.transfer_time(from, to, r.bytes, rng_);
  } catch (const UnreachableError&) {
    // The route vanished (partition) since the last attempt. Nothing was
    // transmitted, so no time is wasted beyond the backoff.
    retry_or_fail(id, from, to, /*wasted_s=*/0.0, "unreachable",
                  std::move(on_done));
    return;
  }
  if (policy_.attempt_timeout_s > 0 && duration > policy_.attempt_timeout_s) {
    // The attempt would overrun its budget: abort at the timeout.
    retry_or_fail(id, from, to, policy_.attempt_timeout_s, "timeout",
                  std::move(on_done));
    return;
  }
  if (!dropped) {
    queue_.schedule_in(duration, [this, id, on_done = std::move(on_done)] {
      TransferResult& res = results_.at(id);
      res.status = TransferStatus::Done;
      res.finished_at = queue_.now();
      backoff_state_.erase(id);
      --in_flight_;
      ++completed_;
      if (tracer_) {
        tracer_->complete("net.transfer.attempt", "net",
                          res.attempt_starts.back(), res.finished_at,
                          attempt_args(res, "done"));
        tracer_->complete("net.transfer", "net", res.started_at,
                          res.finished_at, transfer_args(res, "done"));
      }
      if (metrics_) {
        metrics_->counter("net.transfer.completed").inc();
        metrics_->counter("net.transfer.bytes_moved").inc(res.bytes);
        metrics_->histogram("net.transfer.duration_s")
            .observe(res.duration());
        metrics_->gauge("net.transfer.in_flight")
            .set(static_cast<double>(in_flight_));
      }
      if (on_done) on_done(res);
    });
    return;
  }
  // Drop detected mid-transfer: waste half the transfer time, then retry
  // (after the policy's backoff) or give up.
  retry_or_fail(id, from, to, duration / 2, "dropped", std::move(on_done));
}

void TransferManager::retry_or_fail(
    std::uint64_t id, const std::string& from, const std::string& to,
    double wasted_s, const char* reason,
    std::function<void(const TransferResult&)> on_done) {
  TransferResult& r = results_.at(id);
  if (tracer_) {
    // The attempt's cost (half the transfer for a drop, the timeout for an
    // overrun, nothing for a partition) elapses via the scheduled event;
    // the span covers it with explicit timestamps.
    tracer_->complete("net.transfer.attempt", "net", r.attempt_starts.back(),
                      queue_.now() + wasted_s, attempt_args(r, reason));
  }
  if (r.attempts >= policy_.max_attempts) {
    queue_.schedule_in(wasted_s, [this, id, reason,
                                  on_done = std::move(on_done)] {
      TransferResult& res = results_.at(id);
      res.status = TransferStatus::Failed;
      res.finished_at = queue_.now();
      backoff_state_.erase(id);
      --in_flight_;
      ++failed_;
      AUTOLEARN_LOG(Warn, "net")
          << "transfer " << id << " failed after " << res.attempts
          << " attempts (" << reason << ")";
      if (tracer_) {
        tracer_->complete("net.transfer", "net", res.started_at,
                          res.finished_at, transfer_args(res, reason));
      }
      if (metrics_) {
        metrics_->counter("net.transfer.failed").inc();
        metrics_->gauge("net.transfer.in_flight")
            .set(static_cast<double>(in_flight_));
      }
      if (on_done) on_done(res);
    });
    return;
  }
  if (metrics_) {
    metrics_->counter("net.transfer.retries").inc();
    metrics_->counter(std::string("net.transfer.retry.") + reason).inc();
  }
  const double backoff =
      policy_.backoff_s(r.attempts, backoff_state_.at(id), rng_);
  if (metrics_) metrics_->histogram("net.transfer.backoff_s").observe(backoff);
  queue_.schedule_in(wasted_s + backoff,
                     [this, id, from, to, on_done = std::move(on_done)] {
                       attempt(id, from, to, std::move(on_done));
                     });
}

const TransferResult& TransferManager::result(std::uint64_t id) const {
  const auto it = results_.find(id);
  if (it == results_.end()) {
    throw std::invalid_argument("transfer: unknown id");
  }
  return it->second;
}

}  // namespace autolearn::net
