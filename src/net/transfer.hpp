// Asynchronous bulk transfers over the simulated network.
//
// Models the paper's data-movement steps — "data ... can be manually
// transferred to the cloud using SSH", "the student copies the training
// data using rsync" — as events on the shared discrete-event clock. A
// transfer has a source/destination host, a byte count, a completion
// callback, and a fault::RetryPolicy governing how dropped or partitioned
// attempts back off before retrying: injected drops waste half the
// transfer time, a mid-flight partition (net::UnreachableError) wastes
// nothing but waits out the backoff, and both retry until the policy's
// attempt budget is exhausted.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "fault/retry.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/event_queue.hpp"
#include "util/rng.hpp"

namespace autolearn::net {

enum class TransferStatus { InFlight, Done, Failed };

struct TransferResult {
  std::uint64_t id = 0;
  TransferStatus status = TransferStatus::InFlight;
  double started_at = 0.0;
  double finished_at = 0.0;
  std::uint64_t bytes = 0;
  int attempts = 0;
  std::vector<double> attempt_starts;  // virtual time each attempt began
  double duration() const { return finished_at - started_at; }
};

class TransferManager {
 public:
  /// Retries follow `policy` (attempt cap, exponential backoff, jitter,
  /// optional per-attempt timeout).
  TransferManager(Network& network, util::EventQueue& queue, util::Rng rng,
                  fault::RetryPolicy policy);

  /// Legacy counter interface: max_retries additional attempts after a
  /// dropped transfer, retried back-to-back with no backoff.
  TransferManager(Network& network, util::EventQueue& queue, util::Rng rng,
                  int max_retries = 2);

  /// Schedules a transfer starting now; on_done fires from the event queue
  /// when it completes or exhausts retries. Returns the transfer id.
  /// Throws UnreachableError when no route exists at start time (a
  /// partition opening mid-transfer is retried instead).
  std::uint64_t start(const std::string& from, const std::string& to,
                      std::uint64_t bytes,
                      std::function<void(const TransferResult&)> on_done = {});

  /// Status lookup for a known id; throws for unknown ids.
  const TransferResult& result(std::uint64_t id) const;

  const fault::RetryPolicy& policy() const { return policy_; }

  /// Wires the observability sinks (either may be null). Spans cover each
  /// attempt ("net.transfer.attempt") and the whole transfer
  /// ("net.transfer"); metrics cover bytes, attempts, retries, outcomes,
  /// and in-flight depth. See docs/observability.md for the catalog.
  void instrument(obs::Tracer* tracer, obs::MetricsRegistry* metrics);

  std::size_t in_flight() const { return in_flight_; }
  std::size_t completed() const { return completed_; }
  std::size_t failed() const { return failed_; }

 private:
  void attempt(std::uint64_t id, const std::string& from,
               const std::string& to,
               std::function<void(const TransferResult&)> on_done);
  void retry_or_fail(std::uint64_t id, const std::string& from,
                     const std::string& to, double wasted_s,
                     const char* reason,
                     std::function<void(const TransferResult&)> on_done);

  Network& network_;
  util::EventQueue& queue_;
  util::Rng rng_;
  fault::RetryPolicy policy_;
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, TransferResult> results_;
  std::map<std::uint64_t, double> backoff_state_;  // decorrelated-jitter memory
  std::size_t in_flight_ = 0;
  std::size_t completed_ = 0;
  std::size_t failed_ = 0;
};

}  // namespace autolearn::net
