// Asynchronous bulk transfers over the simulated network.
//
// Models the paper's data-movement steps — "data ... can be manually
// transferred to the cloud using SSH", "the student copies the training
// data using rsync" — as events on the shared discrete-event clock. A
// transfer has a source/destination host, a byte count, retries on
// injected drops, and a completion callback.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "net/network.hpp"
#include "util/event_queue.hpp"
#include "util/rng.hpp"

namespace autolearn::net {

enum class TransferStatus { InFlight, Done, Failed };

struct TransferResult {
  std::uint64_t id = 0;
  TransferStatus status = TransferStatus::InFlight;
  double started_at = 0.0;
  double finished_at = 0.0;
  std::uint64_t bytes = 0;
  int attempts = 0;
  double duration() const { return finished_at - started_at; }
};

class TransferManager {
 public:
  /// max_retries: additional attempts after a dropped transfer before the
  /// transfer is reported Failed.
  TransferManager(Network& network, util::EventQueue& queue, util::Rng rng,
                  int max_retries = 2);

  /// Schedules a transfer starting now; on_done fires from the event queue
  /// when it completes or exhausts retries. Returns the transfer id.
  std::uint64_t start(const std::string& from, const std::string& to,
                      std::uint64_t bytes,
                      std::function<void(const TransferResult&)> on_done = {});

  /// Status lookup for a known id; throws for unknown ids.
  const TransferResult& result(std::uint64_t id) const;

  std::size_t in_flight() const { return in_flight_; }
  std::size_t completed() const { return completed_; }
  std::size_t failed() const { return failed_; }

 private:
  void attempt(std::uint64_t id, const std::string& from,
               const std::string& to,
               std::function<void(const TransferResult&)> on_done);

  Network& network_;
  util::EventQueue& queue_;
  util::Rng rng_;
  int max_retries_;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, TransferResult> results_;
  std::size_t in_flight_ = 0;
  std::size_t completed_ = 0;
  std::size_t failed_ = 0;
};

}  // namespace autolearn::net
