#include "net/tunnel.hpp"

#include <stdexcept>

namespace autolearn::net {

const char* to_string(TunnelState s) {
  switch (s) {
    case TunnelState::Closed: return "closed";
    case TunnelState::Opening: return "opening";
    case TunnelState::Open: return "open";
    case TunnelState::Broken: return "broken";
  }
  return "?";
}

SshTunnel::SshTunnel(Network& network, util::EventQueue& queue, util::Rng rng,
                     std::string local_host, std::string remote_host,
                     int remote_port)
    : network_(network),
      queue_(queue),
      rng_(rng),
      local_(std::move(local_host)),
      remote_(std::move(remote_host)),
      remote_port_(remote_port) {
  if (remote_port <= 0 || remote_port > 65535) {
    throw std::invalid_argument("tunnel: bad port");
  }
}

void SshTunnel::open(std::function<void()> on_open) {
  if (state_ != TunnelState::Closed) {
    throw std::logic_error(std::string("tunnel: open from state ") +
                           to_string(state_));
  }
  if (!network_.route(local_, remote_)) {
    throw std::runtime_error("tunnel: no route " + local_ + " -> " + remote_);
  }
  state_ = TunnelState::Opening;
  // TCP + SSH key exchange: three round trips.
  const double handshake = 3 * network_.sample_rtt(local_, remote_, rng_);
  queue_.schedule_in(handshake, [this, on_open = std::move(on_open)] {
    if (state_ != TunnelState::Opening) return;  // broken mid-handshake
    state_ = TunnelState::Open;
    opened_at_ = queue_.now();
    if (on_open) on_open();
  });
}

double SshTunnel::request(std::uint64_t bytes_up, std::uint64_t bytes_down,
                          std::function<void()> on_done) {
  if (state_ != TunnelState::Open) {
    throw std::logic_error(std::string("tunnel: request on ") +
                           to_string(state_) + " tunnel");
  }
  if (network_.drops(local_, remote_, rng_) ||
      network_.drops(remote_, local_, rng_)) {
    state_ = TunnelState::Broken;
    throw std::runtime_error("tunnel: connection reset");
  }
  const double up = network_.transfer_time(local_, remote_, bytes_up, rng_);
  const double down =
      network_.transfer_time(remote_, local_, bytes_down, rng_);
  const double duration = up + down;
  ++requests_;
  queue_.schedule_in(duration, [on_done = std::move(on_done)] {
    if (on_done) on_done();
  });
  return duration;
}

void SshTunnel::close() { state_ = TunnelState::Closed; }

void SshTunnel::break_tunnel() {
  if (state_ == TunnelState::Closed) return;
  state_ = TunnelState::Broken;
}

}  // namespace autolearn::net
