// SSH tunnel (§3.5: "this allows students to access the Jupyter Notebook
// executing on the Raspberry Pi (and containing all the data collection
// functionality) from their own laptops using an SSH tunnel").
//
// A tunnel binds a local port on the student's laptop to a port on the
// remote device across the simulated network: opening costs a TCP+SSH
// handshake (three round trips), after which request() models one
// HTTP-over-tunnel exchange (request bytes up, response bytes down) and
// returns its simulated duration. Failure injection follows the
// underlying links.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/network.hpp"
#include "util/event_queue.hpp"

namespace autolearn::net {

enum class TunnelState { Closed, Opening, Open, Broken };

const char* to_string(TunnelState s);

class SshTunnel {
 public:
  /// local/remote must be hosts of `network`; remote_port is bookkeeping
  /// (the Jupyter port, 8888 in the AutoLearn image).
  SshTunnel(Network& network, util::EventQueue& queue, util::Rng rng,
            std::string local_host, std::string remote_host,
            int remote_port = 8888);

  /// Starts the handshake; on_open fires when the tunnel reaches Open.
  /// Throws if no route exists or the tunnel is not Closed.
  void open(std::function<void()> on_open = {});

  /// One request/response over the open tunnel. Returns the simulated
  /// duration and schedules on_done at completion. Throws unless Open.
  double request(std::uint64_t bytes_up, std::uint64_t bytes_down,
                 std::function<void()> on_done = {});

  void close();

  /// Simulates a network break: the tunnel goes Broken; open() may be
  /// called again after close().
  void break_tunnel();

  TunnelState state() const { return state_; }
  int remote_port() const { return remote_port_; }
  std::size_t requests_served() const { return requests_; }
  double opened_at() const { return opened_at_; }

 private:
  Network& network_;
  util::EventQueue& queue_;
  util::Rng rng_;
  std::string local_;
  std::string remote_;
  int remote_port_;
  TunnelState state_ = TunnelState::Closed;
  std::size_t requests_ = 0;
  double opened_at_ = -1.0;
};

}  // namespace autolearn::net
