#include "objectstore/objectstore.hpp"

#include <stdexcept>

namespace autolearn::objectstore {

void ObjectStore::create_container(const std::string& name) {
  if (name.empty()) throw std::invalid_argument("store: empty container");
  if (!containers_.try_emplace(name).second) {
    throw std::invalid_argument("store: duplicate container " + name);
  }
}

bool ObjectStore::has_container(const std::string& name) const {
  return containers_.count(name) > 0;
}

std::vector<std::string> ObjectStore::containers() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : containers_) out.push_back(name);
  return out;
}

const std::map<std::string, ObjectStore::History>& ObjectStore::container_ref(
    const std::string& name) const {
  const auto it = containers_.find(name);
  if (it == containers_.end()) {
    throw std::invalid_argument("store: unknown container " + name);
  }
  return it->second;
}

std::uint64_t ObjectStore::put(const std::string& container,
                               const std::string& name,
                               std::vector<std::uint8_t> bytes,
                               std::map<std::string, std::string> metadata) {
  auto it = containers_.find(container);
  if (it == containers_.end()) {
    throw std::invalid_argument("store: unknown container " + container);
  }
  if (name.empty()) throw std::invalid_argument("store: empty object name");
  History& history = it->second[name];
  ObjectVersion v;
  v.version = history.empty() ? 1 : history.back().version + 1;
  v.bytes = std::move(bytes);
  v.metadata = std::move(metadata);
  history.push_back(std::move(v));
  return history.back().version;
}

std::uint64_t ObjectStore::put_text(
    const std::string& container, const std::string& name,
    const std::string& text, std::map<std::string, std::string> metadata) {
  return put(container, name,
             std::vector<std::uint8_t>(text.begin(), text.end()),
             std::move(metadata));
}

std::optional<ObjectVersion> ObjectStore::get(const std::string& container,
                                              const std::string& name) const {
  const auto& objs = container_ref(container);
  const auto it = objs.find(name);
  if (it == objs.end() || it->second.empty()) return std::nullopt;
  return it->second.back();
}

std::optional<ObjectVersion> ObjectStore::get_version(
    const std::string& container, const std::string& name,
    std::uint64_t version) const {
  const auto& objs = container_ref(container);
  const auto it = objs.find(name);
  if (it == objs.end()) return std::nullopt;
  for (const ObjectVersion& v : it->second) {
    if (v.version == version) return v;
  }
  return std::nullopt;
}

std::string ObjectStore::get_text(const std::string& container,
                                  const std::string& name) const {
  const auto v = get(container, name);
  if (!v) throw std::invalid_argument("store: missing object " + name);
  return std::string(v->bytes.begin(), v->bytes.end());
}

std::vector<ObjectInfo> ObjectStore::list(const std::string& container) const {
  std::vector<ObjectInfo> out;
  for (const auto& [name, history] : container_ref(container)) {
    if (history.empty()) continue;
    ObjectInfo info;
    info.name = name;
    info.latest_version = history.back().version;
    info.size_bytes = history.back().bytes.size();
    out.push_back(std::move(info));
  }
  return out;
}

bool ObjectStore::remove(const std::string& container,
                         const std::string& name) {
  auto it = containers_.find(container);
  if (it == containers_.end()) {
    throw std::invalid_argument("store: unknown container " + container);
  }
  return it->second.erase(name) > 0;
}

std::uint64_t ObjectStore::container_bytes(const std::string& container) const {
  std::uint64_t total = 0;
  for (const ObjectInfo& info : list(container)) total += info.size_bytes;
  return total;
}

}  // namespace autolearn::objectstore
