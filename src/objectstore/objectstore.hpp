// Chameleon object store analogue (§3.5: "The collected datasets and the
// pre-trained models are stored in Chameleon's object store and can be
// combined with other components of the system in a 'mix and match'
// pathway").
//
// Swift-style containers hold named objects; objects are versioned byte
// blobs with free-form metadata. Storage is in-memory — the store models
// the service's semantics (naming, versioning, listing), while transfer
// costs live in the net module.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace autolearn::objectstore {

struct ObjectVersion {
  std::uint64_t version = 0;
  std::vector<std::uint8_t> bytes;
  std::map<std::string, std::string> metadata;
};

struct ObjectInfo {
  std::string name;
  std::uint64_t latest_version = 0;
  std::size_t size_bytes = 0;
};

class ObjectStore {
 public:
  /// Creates a container; throws on duplicates.
  void create_container(const std::string& name);
  bool has_container(const std::string& name) const;
  std::vector<std::string> containers() const;

  /// Puts an object (new version if it exists). Returns the version.
  std::uint64_t put(const std::string& container, const std::string& name,
                    std::vector<std::uint8_t> bytes,
                    std::map<std::string, std::string> metadata = {});

  /// Convenience for text payloads.
  std::uint64_t put_text(const std::string& container, const std::string& name,
                         const std::string& text,
                         std::map<std::string, std::string> metadata = {});

  /// Latest version; nullopt when absent.
  std::optional<ObjectVersion> get(const std::string& container,
                                   const std::string& name) const;
  /// Specific version.
  std::optional<ObjectVersion> get_version(const std::string& container,
                                           const std::string& name,
                                           std::uint64_t version) const;
  std::string get_text(const std::string& container,
                       const std::string& name) const;

  std::vector<ObjectInfo> list(const std::string& container) const;

  /// Deletes all versions. Returns false when the object was absent.
  bool remove(const std::string& container, const std::string& name);

  /// Total bytes across all latest versions in a container (for sizing
  /// simulated transfers).
  std::uint64_t container_bytes(const std::string& container) const;

 private:
  using History = std::vector<ObjectVersion>;
  const std::map<std::string, History>& container_ref(
      const std::string& name) const;

  std::map<std::string, std::map<std::string, History>> containers_;
};

}  // namespace autolearn::objectstore
