#include "obs/metrics.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace autolearn::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("histogram: bounds must be sorted");
  }
  buckets_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++buckets_[static_cast<std::size_t>(it - bounds_.begin())];
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

double Histogram::mean() const {
  return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

util::Json Histogram::to_json() const {
  util::Json j = util::Json::object();
  j.set("count", util::Json(count_));
  j.set("sum", util::Json(sum_));
  j.set("min", util::Json(min_));
  j.set("max", util::Json(max_));
  util::JsonArray bounds;
  for (const double b : bounds_) bounds.emplace_back(b);
  j.set("bounds", util::Json(std::move(bounds)));
  util::JsonArray buckets;
  for (const std::uint64_t c : buckets_) {
    buckets.emplace_back(static_cast<std::size_t>(c));
  }
  j.set("buckets", util::Json(std::move(buckets)));
  return j;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(name, Histogram(std::move(bounds)))
      .first->second;
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

double MetricsRegistry::gauge_value(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second.value();
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::vector<double> MetricsRegistry::latency_buckets_s() {
  // 1 ms .. ~100 s in half-decade steps: spans Pi inference (~ms),
  // WAN RTTs (~0.1 s), and bulk transfers (~tens of seconds).
  return {0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0};
}

std::vector<double> MetricsRegistry::bytes_buckets() {
  // 1 KiB .. 1 GiB in decade-ish steps.
  return {1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9};
}

util::Json MetricsRegistry::to_json() const {
  util::Json counters = util::Json::object();
  for (const auto& [name, c] : counters_) {
    counters.set(name, util::Json(static_cast<std::size_t>(c.value())));
  }
  util::Json gauges = util::Json::object();
  for (const auto& [name, g] : gauges_) gauges.set(name, util::Json(g.value()));
  util::Json histograms = util::Json::object();
  for (const auto& [name, h] : histograms_) histograms.set(name, h.to_json());
  util::Json j = util::Json::object();
  j.set("counters", std::move(counters));
  j.set("gauges", std::move(gauges));
  j.set("histograms", std::move(histograms));
  return j;
}

std::string MetricsRegistry::summary() const {
  std::ostringstream os;
  for (const auto& [name, c] : counters_) {
    os << name << " = " << c.value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    os << name << " = " << g.value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    os << name << " n=" << h.count() << " mean=" << h.mean()
       << " min=" << h.min() << " max=" << h.max() << "\n";
  }
  return os.str();
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace autolearn::obs
