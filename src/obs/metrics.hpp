// Metric primitives for the continuum: counters, gauges, and fixed-bucket
// histograms behind a name-keyed registry.
//
// Components are handed an optional MetricsRegistry* and record what the
// control loop, the transfer layer, and the resilience policies are doing:
// inference latencies, transfer bytes and retries, queue depths, breaker
// state transitions. Everything is deterministic — metric iteration order
// is the lexicographic name order and histogram buckets are fixed at
// construction — so a registry snapshot from a seeded simulation is
// byte-for-byte reproducible. A null registry pointer is the kill switch:
// instrumented code guards every touch with a single branch.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace autolearn::obs {

class Counter {
 public:
  void inc(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double delta) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram: `bounds` are the inclusive upper edges of the
/// first bounds.size() buckets; one overflow bucket catches the rest.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return min_; }  // 0 when empty
  double max() const { return max_; }
  double mean() const;
  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }

  util::Json to_json() const;

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Name-keyed metric store. Lookups create on first use so call sites do
/// not need registration boilerplate; names follow the dotted convention
/// documented in docs/observability.md (e.g. "net.transfer.attempts").
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` applies on first creation only; later calls reuse the
  /// existing histogram regardless.
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = latency_buckets_s());

  /// Value accessors that do not create: 0 / empty for unknown names.
  std::uint64_t counter_value(const std::string& name) const;
  double gauge_value(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  /// Default bucket ladders (seconds / bytes), shared so the same metric
  /// name always has the same shape across components.
  static std::vector<double> latency_buckets_s();
  static std::vector<double> bytes_buckets();

  /// Snapshot of every metric, ordered by name within each kind.
  util::Json to_json() const;
  /// Human-readable one-line-per-metric dump (stable ordering).
  std::string summary() const;

  void clear();

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace autolearn::obs
