#include "obs/trace.hpp"

#include <fstream>
#include <stdexcept>

namespace autolearn::obs {

double Tracer::now() {
  if (clock_) return clock_();
  return logical_++;
}

std::uint64_t Tracer::begin(std::string name, std::string cat) {
  if (!enabled_) return 0;
  OpenSpan span;
  span.name = std::move(name);
  span.cat = std::move(cat);
  span.ts = now();
  span.token = next_token_++;
  open_.push_back(std::move(span));
  return open_.back().token;
}

void Tracer::end(std::uint64_t token, util::Json args) {
  if (token == 0) return;
  // Spans close LIFO in the common nested case; scan from the back so an
  // out-of-order close (overlapping async spans) still finds its begin.
  for (std::size_t i = open_.size(); i-- > 0;) {
    if (open_[i].token != token) continue;
    TraceEvent e;
    e.name = std::move(open_[i].name);
    e.cat = std::move(open_[i].cat);
    e.ph = 'X';
    e.ts = open_[i].ts;
    e.dur = now() - open_[i].ts;
    e.args = std::move(args);
    open_.erase(open_.begin() + static_cast<std::ptrdiff_t>(i));
    events_.push_back(std::move(e));
    return;
  }
  throw std::logic_error("tracer: end() for unknown span token");
}

void Tracer::complete(std::string name, std::string cat, double begin_ts,
                      double end_ts, util::Json args) {
  if (!enabled_) return;
  TraceEvent e;
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.ph = 'X';
  e.ts = begin_ts;
  e.dur = end_ts - begin_ts;
  e.args = std::move(args);
  events_.push_back(std::move(e));
}

void Tracer::instant(std::string name, std::string cat, util::Json args) {
  if (!enabled_) return;
  TraceEvent e;
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.ph = 'i';
  e.ts = now();
  e.args = std::move(args);
  events_.push_back(std::move(e));
}

util::Json Tracer::to_json() const {
  util::JsonArray events;
  events.reserve(events_.size());
  for (const TraceEvent& e : events_) {
    util::Json j = util::Json::object();
    j.set("name", util::Json(e.name));
    j.set("cat", util::Json(e.cat));
    j.set("ph", util::Json(std::string(1, e.ph)));
    j.set("ts", util::Json(e.ts * 1e6));  // the format counts microseconds
    if (e.ph == 'X') j.set("dur", util::Json(e.dur * 1e6));
    j.set("pid", util::Json(1));
    j.set("tid", util::Json(1));
    if (e.ph == 'i') j.set("s", util::Json("g"));  // global-scope instant
    if (!e.args.is_null()) j.set("args", e.args);
    events.push_back(std::move(j));
  }
  util::Json root = util::Json::object();
  root.set("traceEvents", util::Json(std::move(events)));
  root.set("displayTimeUnit", util::Json("ms"));
  return root;
}

std::string Tracer::dump() const { return to_json().dump(); }

void Tracer::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("tracer: cannot write " + path);
  out << dump();
}

void Tracer::clear() {
  open_.clear();
  events_.clear();
  logical_ = 0.0;
  next_token_ = 1;
}

}  // namespace autolearn::obs
