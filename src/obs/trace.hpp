// Span tracer with Chrome trace_event JSON export.
//
// The simulation advances on a shared virtual clock (util::EventQueue), so
// a trace of begin/end spans over that clock is *deterministic*: the same
// seed yields a byte-identical canonical trace. That turns the tracer into
// a regression harness — tier-1 tests snapshot a small scenario's trace
// (tests/golden/) and fail on any unintended behavioral drift — and the
// export opens directly in chrome://tracing or Perfetto for eyeballing
// where continuum time goes.
//
// Clocking: use_clock() points the tracer at the simulation clock
// (typically [&queue] { return queue.now(); }). Without a clock the tracer
// falls back to a logical tick counter — still fully deterministic, which
// matters for spans recorded off the simulated clock (e.g. ml::fit runs
// between queue events; wall time would break golden traces).
//
// Kill switches. Runtime: instrumented components hold a nullable
// Tracer* — the disabled path is one branch on a null pointer (see
// bench_obs_overhead); set_enabled(false) mutes a live tracer the same
// way. Compile time: defining AUTOLEARN_OBS_DISABLED (cmake
// -DAUTOLEARN_OBS=OFF) compiles SpanGuard down to an empty object.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace autolearn::obs {

/// One trace event. `ph` follows the Chrome trace_event phases used here:
/// 'X' (complete span with duration) and 'i' (instant). Times are virtual
/// seconds (exported as microseconds, the format's unit).
struct TraceEvent {
  std::string name;
  std::string cat;
  char ph = 'X';
  double ts = 0.0;
  double dur = 0.0;      // 'X' only
  util::Json args;       // object, or null when absent
};

class Tracer {
 public:
  Tracer() = default;

  /// Points now() at the simulation clock. Unset: logical ticks (one per
  /// timestamp taken).
  void use_clock(std::function<double()> clock) { clock_ = std::move(clock); }

  /// Runtime mute: while disabled, begin/end/instant/complete are no-ops.
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  double now();

  /// Opens a span; close it with end(). Returns a token (0 while muted —
  /// end(0) is a no-op).
  std::uint64_t begin(std::string name, std::string cat);
  void end(std::uint64_t token, util::Json args = util::Json());

  /// Complete span with explicit timestamps, for work that crosses event
  /// boundaries (a transfer attempt ends inside a later queue callback).
  void complete(std::string name, std::string cat, double begin_ts,
                double end_ts, util::Json args = util::Json());

  /// Point event (fault injected, breaker tripped, container failed).
  void instant(std::string name, std::string cat,
               util::Json args = util::Json());

  std::size_t size() const { return events_.size(); }
  const std::vector<TraceEvent>& events() const { return events_; }

  /// Chrome trace_event JSON object: {"traceEvents": [...]}.
  util::Json to_json() const;
  /// Canonical byte form (compact dump of to_json()); equal seeds produce
  /// equal strings — this is what golden tests snapshot.
  std::string dump() const;
  /// Writes dump() to a file loadable by chrome://tracing / Perfetto.
  void write_file(const std::string& path) const;

  void clear();

 private:
  struct OpenSpan {
    std::string name;
    std::string cat;
    double ts = 0.0;
    std::uint64_t token = 0;
  };

  std::function<double()> clock_;
  bool enabled_ = true;
  double logical_ = 0.0;
  std::uint64_t next_token_ = 1;
  std::vector<OpenSpan> open_;
  std::vector<TraceEvent> events_;
};

/// RAII span for synchronous scopes: one branch when the tracer is null or
/// muted, begin/end otherwise.
class SpanGuard {
 public:
  SpanGuard() = default;
  SpanGuard(Tracer* tracer, const char* name, const char* cat) {
#ifndef AUTOLEARN_OBS_DISABLED
    if (tracer && tracer->enabled()) {
      tracer_ = tracer;
      token_ = tracer->begin(name, cat);
    }
#else
    (void)tracer;
    (void)name;
    (void)cat;
#endif
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;
  ~SpanGuard() {
#ifndef AUTOLEARN_OBS_DISABLED
    if (tracer_) tracer_->end(token_);
#endif
  }

 private:
#ifndef AUTOLEARN_OBS_DISABLED
  Tracer* tracer_ = nullptr;
  std::uint64_t token_ = 0;
#endif
};

}  // namespace autolearn::obs
