#include "rl/qlearning.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace autolearn::rl {

QLearningPilot::QLearningPilot(const track::Track& track, QConfig config,
                               util::Rng rng)
    : track_(track), config_(config), rng_(rng) {
  if (config_.actions < 2 || config_.lateral_bins < 2 ||
      config_.heading_bins < 2 || config_.curvature_bins < 1) {
    throw std::invalid_argument("qlearning: bad discretization");
  }
  if (config_.alpha <= 0 || config_.alpha > 1 || config_.gamma < 0 ||
      config_.gamma >= 1) {
    throw std::invalid_argument("qlearning: bad alpha/gamma");
  }
  const std::size_t states =
      config_.lateral_bins * config_.heading_bins * config_.curvature_bins;
  q_.assign(states * config_.actions, 0.0);
}

double QLearningPilot::action_steering(std::size_t a) const {
  return -1.0 + 2.0 * static_cast<double>(a) /
                    static_cast<double>(config_.actions - 1);
}

std::size_t QLearningPilot::state_index(
    const vehicle::CarState& state) const {
  const track::Projection proj = track_.project(state.pos);
  auto bin = [](double v, double range, std::size_t bins) {
    const double t = std::clamp((v + range) / (2 * range), 0.0, 1.0);
    return std::min(bins - 1, static_cast<std::size_t>(
                                  t * static_cast<double>(bins)));
  };
  const std::size_t lat_bin =
      bin(proj.lateral, config_.lateral_range, config_.lateral_bins);
  const double herr = track::angle_diff(state.heading, proj.heading);
  const std::size_t head_bin =
      bin(herr, config_.heading_range, config_.heading_bins);
  // Upcoming curvature, a half-meter ahead.
  const double kappa = track_.curvature_at(proj.s + 0.5);
  std::size_t curv_bin = 1;  // straight
  if (config_.curvature_bins >= 3) {
    if (kappa > 1e-3) curv_bin = 2;       // left turn ahead
    else if (kappa < -1e-3) curv_bin = 0; // right turn ahead
  } else {
    curv_bin = 0;
  }
  return (curv_bin * config_.heading_bins + head_bin) * config_.lateral_bins +
         lat_bin;
}

std::size_t QLearningPilot::best_action(std::size_t state) const {
  std::size_t best = 0;
  double best_q = q(state, 0);
  for (std::size_t a = 1; a < config_.actions; ++a) {
    if (q(state, a) > best_q) {
      best_q = q(state, a);
      best = a;
    }
  }
  return best;
}

std::pair<double, bool> QLearningPilot::step_env(vehicle::Car& car,
                                                 std::size_t action,
                                                 double& s_prev) const {
  car.step({action_steering(action), config_.throttle}, config_.dt);
  const track::Projection proj = track_.project(car.state().pos);
  const double progress = track_.progress_delta(s_prev, proj.s);
  s_prev = proj.s;
  if (!proj.on_track) {
    return {config_.offtrack_penalty, true};
  }
  const double reward =
      std::max(progress, 0.0) - config_.lateral_cost * std::abs(proj.lateral) * config_.dt;
  return {reward, false};
}

std::vector<EpisodeStats> QLearningPilot::train() {
  std::vector<EpisodeStats> stats;
  stats.reserve(config_.episodes);
  const auto steps_per_episode =
      static_cast<std::size_t>(config_.episode_s / config_.dt);
  for (std::size_t ep = 0; ep < config_.episodes; ++ep) {
    const double frac = config_.episodes > 1
                            ? static_cast<double>(ep) /
                                  static_cast<double>(config_.episodes - 1)
                            : 1.0;
    const double epsilon =
        config_.epsilon_start +
        (config_.epsilon_end - config_.epsilon_start) * frac;

    vehicle::Car car(vehicle::CarConfig{}, rng_.split());
    // Start at a random point, slightly perturbed, rolling.
    const double s0 = rng_.uniform(0, track_.length());
    car.reset(track_.position_at(s0) +
                  track::heading_vec(track_.heading_at(s0)).perp() *
                      rng_.uniform(-0.1, 0.1),
              track_.heading_at(s0) + rng_.uniform(-0.15, 0.15),
              config_.throttle * 2.0);
    double s_prev = track_.project(car.state().pos).s;

    EpisodeStats es;
    std::size_t state = state_index(car.state());
    for (std::size_t i = 0; i < steps_per_episode; ++i) {
      const std::size_t action =
          rng_.chance(epsilon)
              ? static_cast<std::size_t>(rng_.uniform_int(
                    0, static_cast<std::int64_t>(config_.actions) - 1))
              : best_action(state);
      const auto [reward, done] = step_env(car, action, s_prev);
      const std::size_t next_state = state_index(car.state());
      const double target =
          done ? reward
               : reward + config_.gamma * q(next_state, best_action(next_state));
      q(state, action) += config_.alpha * (target - q(state, action));
      es.total_reward += reward;
      es.distance_m += std::max(reward, 0.0);  // progress part only (approx)
      state = next_state;
      if (done) {
        es.crashed = true;
        break;
      }
    }
    stats.push_back(es);
  }
  return stats;
}

vehicle::DriveCommand QLearningPilot::decide(
    const vehicle::CarState& state) const {
  const std::size_t s = state_index(state);
  return vehicle::DriveCommand{action_steering(best_action(s)),
                               config_.throttle}
      .clamped();
}

EpisodeStats QLearningPilot::evaluate(double duration_s,
                                      std::uint64_t seed) const {
  vehicle::Car car(vehicle::CarConfig{}, util::Rng(seed));
  car.reset(track_.position_at(0), track_.heading_at(0),
            config_.throttle * 2.0);
  double s_prev = track_.project(car.state().pos).s;
  EpisodeStats es;
  const auto steps = static_cast<std::size_t>(duration_s / config_.dt);
  for (std::size_t i = 0; i < steps; ++i) {
    const std::size_t state = state_index(car.state());
    car.step({action_steering(best_action(state)), config_.throttle},
             config_.dt);
    const track::Projection proj = track_.project(car.state().pos);
    const double progress = track_.progress_delta(s_prev, proj.s);
    if (progress > 0) es.distance_m += progress;
    es.total_reward += std::max(progress, 0.0);
    s_prev = proj.s;
    if (!proj.on_track) {
      es.crashed = true;
      // Like the evaluator: put the car back and continue.
      car.reset(track_.position_at(proj.s), track_.heading_at(proj.s),
                config_.throttle * 2.0);
      s_prev = track_.project(car.state().pos).s;
    }
  }
  return es;
}

void QLearningPilot::save(std::ostream& os) const {
  const std::uint64_t n = q_.size();
  os.write(reinterpret_cast<const char*>(&n), sizeof n);
  os.write(reinterpret_cast<const char*>(q_.data()),
           static_cast<std::streamsize>(n * sizeof(double)));
}

void QLearningPilot::load(std::istream& is) {
  std::uint64_t n = 0;
  is.read(reinterpret_cast<char*>(&n), sizeof n);
  if (!is || n != q_.size()) {
    throw std::runtime_error("qlearning: table size mismatch");
  }
  is.read(reinterpret_cast<char*>(q_.data()),
          static_cast<std::streamsize>(n * sizeof(double)));
  if (!is) throw std::runtime_error("qlearning: truncated table");
}

}  // namespace autolearn::rl
