// Reinforcement-learning extension (§3.3/§3.4: evaluation-phase
// assignments include "experiment with reinforcement learning providing
// the opportunity for more advanced assignments").
//
// Tabular Q-learning in the driving simulator: the state is the
// discretized (lateral offset, heading error, upcoming curvature) triple
// from the track's ground truth — what the simulator exposes to advanced
// students — and actions are discrete steering commands at a fixed cruise
// throttle. Training runs episodes with epsilon-greedy exploration; the
// greedy policy then drives the track. This is deliberately the classic
// classroom formulation, not deep RL.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "track/track.hpp"
#include "util/rng.hpp"
#include "vehicle/car.hpp"

namespace autolearn::rl {

struct QConfig {
  std::size_t lateral_bins = 9;
  std::size_t heading_bins = 9;
  std::size_t curvature_bins = 3;  // turning left / straight / right
  std::size_t actions = 7;         // steering commands spread over [-1, 1]
  double lateral_range = 0.55;     // meters covered by the lateral bins
  double heading_range = 0.8;      // radians covered by the heading bins
  double alpha = 0.25;             // learning rate
  double gamma = 0.95;             // discount
  double epsilon_start = 0.5;      // exploration schedule (linear decay)
  double epsilon_end = 0.02;
  double throttle = 0.40;          // cruise throttle during RL
  double dt = 0.05;
  std::size_t episodes = 80;
  double episode_s = 20.0;         // seconds per episode
  double offtrack_penalty = -5.0;
  double lateral_cost = 0.3;       // shaping: penalize riding the edge
};

struct EpisodeStats {
  double total_reward = 0.0;
  double distance_m = 0.0;
  bool crashed = false;
};

class QLearningPilot {
 public:
  QLearningPilot(const track::Track& track, QConfig config, util::Rng rng);

  /// Runs the configured number of training episodes; returns per-episode
  /// stats (reward should trend upward).
  std::vector<EpisodeStats> train();

  /// Greedy action for a car state (valid after train(), but callable on
  /// the zero-initialized table too).
  vehicle::DriveCommand decide(const vehicle::CarState& state) const;

  /// Evaluates the greedy policy for `duration_s`; returns the episode
  /// stats of the run (no learning, no exploration).
  EpisodeStats evaluate(double duration_s, std::uint64_t seed = 123) const;

  std::size_t state_count() const { return q_.size() / config_.actions; }
  std::size_t state_index(const vehicle::CarState& state) const;

  /// Q-table persistence (binary).
  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  double action_steering(std::size_t a) const;
  double& q(std::size_t state, std::size_t action) {
    return q_[state * config_.actions + action];
  }
  double q(std::size_t state, std::size_t action) const {
    return q_[state * config_.actions + action];
  }
  std::size_t best_action(std::size_t state) const;
  /// One simulated step; returns (reward, done).
  std::pair<double, bool> step_env(vehicle::Car& car, std::size_t action,
                                   double& s_prev) const;

  const track::Track& track_;
  QConfig config_;
  mutable util::Rng rng_;
  std::vector<double> q_;
};

}  // namespace autolearn::rl
