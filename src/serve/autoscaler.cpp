#include "serve/autoscaler.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace autolearn::serve {

void AutoScalerOptions::check(ConfigIssues& out) const {
  if (sample_interval_s <= 0.0) {
    out.emplace_back("autoscaler.sample_interval_s", "must be > 0");
  }
  if (queue_high <= 0.0 || queue_high > 1.0) {
    out.emplace_back("autoscaler.queue_high", "must be in (0, 1]");
  }
  if (queue_low < 0.0 || queue_low >= queue_high) {
    out.emplace_back("autoscaler.queue_low",
                     "must be in [0, queue_high)");
  }
  if (p99_high_s < 0.0) {
    out.emplace_back("autoscaler.p99_high_s", "must be >= 0");
  }
  if (p99_low_s < 0.0 || (p99_high_s > 0.0 && p99_low_s >= p99_high_s)) {
    out.emplace_back("autoscaler.p99_low_s",
                     "must be >= 0 and below p99_high_s");
  }
  if (shed_high < 0.0 || shed_high > 1.0) {
    out.emplace_back("autoscaler.shed_high", "must be in [0, 1]");
  }
  if (util_low < 0.0 || util_low > 1.0) {
    out.emplace_back("autoscaler.util_low", "must be in [0, 1]");
  }
  if (breach_samples == 0) {
    out.emplace_back("autoscaler.breach_samples", "must be >= 1");
  }
  if (idle_samples == 0) {
    out.emplace_back("autoscaler.idle_samples", "must be >= 1");
  }
  if (cooldown_s < 0.0) {
    out.emplace_back("autoscaler.cooldown_s", "must be >= 0");
  }
  if (min_shards == 0) {
    out.emplace_back("autoscaler.min_shards", "must be >= 1");
  }
  if (max_shards < min_shards) {
    out.emplace_back("autoscaler.max_shards", "must be >= min_shards");
  }
  if (step == 0) {
    out.emplace_back("autoscaler.step", "must be >= 1");
  }
}

void AutoScalerOptions::validate() const {
  ConfigIssues issues;
  check(issues);
  if (!issues.empty()) throw issues.front();
}

AutoScaler::AutoScaler(util::EventQueue& queue, AutoScalerOptions options)
    : queue_(queue), options_(options) {
  options_.validate();
}

void AutoScaler::start(double horizon_s) {
  if (started_) throw std::logic_error("AutoScaler::start: call once");
  if (!sampler_ || !resizer_) {
    throw std::logic_error("AutoScaler::start: sampler and resizer required");
  }
  started_ = true;
  horizon_s_ = horizon_s;
  schedule_next();
}

void AutoScaler::schedule_next() {
  const double next = queue_.now() + options_.sample_interval_s;
  if (next <= horizon_s_) {
    queue_.schedule_at(next, [this] {
      tick();
      schedule_next();
    });
  }
}

void AutoScaler::tick() {
  const double now = queue_.now();
  const ScaleSignals s = sampler_(now);

  if (metrics_) {
    metrics_->gauge("serve.autoscaler.shards")
        .set(static_cast<double>(s.active_shards));
    metrics_->gauge("serve.autoscaler.live_shards")
        .set(static_cast<double>(s.live_shards));
    metrics_->gauge("serve.autoscaler.queue_frac")
        .set(s.queue_budget > 0.0 ? s.mean_queue_depth / s.queue_budget : 0.0);
    metrics_->gauge("serve.autoscaler.p99_s").set(s.p99_s);
    metrics_->gauge("serve.autoscaler.shed_rate").set(s.shed_rate);
    metrics_->gauge("serve.autoscaler.utilization").set(s.utilization);
  }

  const std::string breach = breach_reason(s);
  if (!breach.empty()) {
    ++breach_streak_;
    idle_streak_ = 0;
  } else if (idle(s)) {
    ++idle_streak_;
    breach_streak_ = 0;
  } else {
    breach_streak_ = 0;
    idle_streak_ = 0;
  }

  const bool cooled = now - last_scale_t_ >= options_.cooldown_s;
  if (breach_streak_ >= options_.breach_samples && cooled &&
      s.active_shards < options_.max_shards) {
    decide(/*up=*/true, s, breach);
  } else if (idle_streak_ >= options_.idle_samples && cooled &&
             s.active_shards > options_.min_shards) {
    decide(/*up=*/false, s, "idle: queue/util/shed below low bands");
  }
}

std::string AutoScaler::breach_reason(const ScaleSignals& s) const {
  std::ostringstream why;
  const double frac =
      s.queue_budget > 0.0 ? s.mean_queue_depth / s.queue_budget : 0.0;
  if (frac >= options_.queue_high) {
    why << "queue " << frac << ">=" << options_.queue_high;
  }
  if (options_.p99_high_s > 0.0 && s.p99_s >= options_.p99_high_s) {
    if (why.tellp() > 0) why << ", ";
    why << "p99 " << s.p99_s << ">=" << options_.p99_high_s;
  }
  if (s.shed_rate > options_.shed_high) {
    if (why.tellp() > 0) why << ", ";
    why << "shed " << s.shed_rate << ">" << options_.shed_high;
  }
  return why.str();
}

bool AutoScaler::idle(const ScaleSignals& s) const {
  // Shrinking while a chaos partition masks capacity would flap: the
  // partition heals, load returns, and the scaler grows right back. Hold
  // the fleet size until every admitted shard is health-alive again.
  if (s.live_shards < s.active_shards) return false;
  if (s.shed_rate > 0.0) return false;
  const double frac =
      s.queue_budget > 0.0 ? s.mean_queue_depth / s.queue_budget : 0.0;
  if (frac > options_.queue_low) return false;
  if (s.utilization > options_.util_low) return false;
  if (options_.p99_low_s > 0.0 && s.p99_s > options_.p99_low_s) return false;
  return true;
}

void AutoScaler::decide(bool up, const ScaleSignals& signals,
                        std::string reason) {
  const double now = queue_.now();
  const std::size_t from = signals.active_shards;
  const std::size_t target =
      up ? std::min(from + options_.step, options_.max_shards)
         : std::max(from - std::min(options_.step, from - 1),
                    options_.min_shards);

  ScaleDecision d;
  d.t = now;
  d.up = up;
  d.from_shards = from;
  d.to_shards = target;
  d.reason = std::move(reason);
  d.signals = signals;
  d.applied = resizer_(target, now, d.reason);

  breach_streak_ = 0;
  idle_streak_ = 0;
  last_scale_t_ = now;
  if (d.applied) {
    if (up) {
      ++scale_ups_;
    } else {
      ++scale_downs_;
    }
  }

  if (metrics_) {
    metrics_->counter(up ? "serve.autoscaler.scale_ups"
                         : "serve.autoscaler.scale_downs")
        .inc();
  }
  if (tracer_) {
    util::Json args = util::Json::object();
    args.set("dir", util::Json(std::string(up ? "up" : "down")));
    args.set("from", util::Json(d.from_shards));
    args.set("to", util::Json(d.to_shards));
    args.set("applied", util::Json(d.applied));
    args.set("reason", util::Json(d.reason));
    args.set("p99_s", util::Json(signals.p99_s));
    args.set("queue", util::Json(signals.mean_queue_depth));
    args.set("shed_rate", util::Json(signals.shed_rate));
    tracer_->instant("serve.scale", "serve", std::move(args));
  }
  decisions_.push_back(std::move(d));
}

}  // namespace autolearn::serve
