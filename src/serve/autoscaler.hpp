// Metrics-driven fleet autoscaler on the virtual clock.
//
// The scaler is a control loop riding the FleetService event queue: every
// sample_interval_s it pulls one ScaleSignals snapshot from the service
// (per-shard queue depth against the admission budget, p99 queueing
// latency over the completions since the last tick, shed rate,
// busy-worker utilization, and the live-vs-admitted shard split the
// HealthMonitor maintains) and holds it against the target bands. A
// decision needs agreement, not a spike:
//
//   scale UP    `breach_samples` CONSECUTIVE ticks where any pressure
//               signal breaches its high band (queue >= queue_high of
//               budget, p99 >= p99_high_s, shed rate > shed_high), and
//               the cooldown since the last scale event has elapsed;
//   scale DOWN  `idle_samples` CONSECUTIVE ticks where every signal sits
//               below its low band AND every admitted shard is
//               health-alive — capacity is never retired while a chaos
//               partition is masking it (that would flap: the partition
//               heals, load returns, the scaler grows right back).
//
// Hysteresis (separate consecutive-tick requirements per direction),
// cooldown, and the [min_shards, max_shards] clamp make the loop stable
// under Poisson arrival noise by construction. The loop draws no RNG and
// samples only virtual-clock state, so a seed pins the entire decision
// timeline bit-for-bit — ScaleDecision records are part of the
// ServeReport determinism contract.
//
// The scaler never touches shards itself: it asks the service for a
// resize via the Resizer callback, which may decline (already at a
// bound, fleet fully dark). Declined targets still reset the streak so a
// saturated signal cannot spin the loop.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/errors.hpp"
#include "util/event_queue.hpp"

namespace autolearn::serve {

struct AutoScalerOptions {
  /// Master switch; the service only starts the loop when true.
  bool enabled = false;
  /// Sampling cadence on the virtual clock.
  double sample_interval_s = 0.05;
  /// Pressure bands, as a fraction of the per-shard admission budget the
  /// mean live-shard queue depth may reach before it counts as a breach
  /// (high) or as idle headroom (low).
  double queue_high = 0.75;
  double queue_low = 0.10;
  /// p99 queueing-latency band in seconds; 0 disables the latency signal
  /// on that side.
  double p99_high_s = 0.0;
  double p99_low_s = 0.0;
  /// Shed-rate high watermark (sheds / arrivals per tick); any tick
  /// shedding above this counts as a breach. Sheds always veto scale-down.
  double shed_high = 0.0;
  /// Busy-worker fraction the fleet must stay at or below for a tick to
  /// count toward scale-down.
  double util_low = 0.35;
  /// Hysteresis: consecutive breaching / idle ticks required.
  std::size_t breach_samples = 2;
  std::size_t idle_samples = 6;
  /// Minimum virtual seconds between scale events (either direction).
  double cooldown_s = 0.25;
  /// Shard-count clamp; the scaler never targets outside [min, max].
  std::size_t min_shards = 1;
  std::size_t max_shards = 8;
  /// Shards added or retired per scale event.
  std::size_t step = 1;

  /// Appends every violation (prefix "autoscaler.") without throwing.
  void check(ConfigIssues& out) const;
  /// Throw-on-first shim over check().
  void validate() const;
};

/// One sampling tick's view of the fleet, produced by the service.
struct ScaleSignals {
  std::size_t active_shards = 0;  // admitted (not retired) workers
  std::size_t live_shards = 0;    // active AND health-alive
  double mean_queue_depth = 0.0;  // over live shards
  double max_queue_depth = 0.0;
  double queue_budget = 1.0;      // per-shard admission budget
  double p99_s = 0.0;             // p99 queued_s of this tick's completions
  double shed_rate = 0.0;         // sheds / arrivals this tick
  double utilization = 0.0;       // busy live workers / live workers
  std::size_t arrivals = 0;       // arrivals this tick
};

/// One scale event in the deterministic timeline.
struct ScaleDecision {
  double t = 0.0;
  bool up = false;
  std::size_t from_shards = 0;
  std::size_t to_shards = 0;
  std::string reason;      // breached / idle signal, human-readable
  ScaleSignals signals;    // the tick that tipped the decision
  bool applied = false;    // resizer accepted
};

class AutoScaler {
 public:
  using Sampler = std::function<ScaleSignals(double now)>;
  /// Asked to take the fleet to `target` shards; returns whether the
  /// resize was applied.
  using Resizer = std::function<bool(std::size_t target, double now,
                                     const std::string& reason)>;

  AutoScaler(util::EventQueue& queue, AutoScalerOptions options);

  void set_sampler(Sampler sampler) { sampler_ = std::move(sampler); }
  void set_resizer(Resizer resizer) { resizer_ = std::move(resizer); }

  /// Optional sinks: every tick updates serve.autoscaler.* gauges; every
  /// scale event emits a "serve.scale" instant plus direction counters.
  void instrument(obs::Tracer* tracer, obs::MetricsRegistry* metrics) {
    tracer_ = tracer;
    metrics_ = metrics;
  }

  /// Begins sampling; ticks self-reschedule while the next one lands at
  /// or before `horizon_s`. Call once; sampler and resizer must be set.
  void start(double horizon_s);

  /// Runs one sampling tick immediately (the scheduled path calls this;
  /// exposed so unit tests can drive the loop by hand).
  void tick();

  const std::vector<ScaleDecision>& decisions() const { return decisions_; }
  std::size_t scale_ups() const { return scale_ups_; }
  std::size_t scale_downs() const { return scale_downs_; }
  const AutoScalerOptions& options() const { return options_; }

 private:
  void schedule_next();
  /// Non-empty = the breached band(s), e.g. "queue 0.81>=0.75".
  std::string breach_reason(const ScaleSignals& s) const;
  bool idle(const ScaleSignals& s) const;
  void decide(bool up, const ScaleSignals& signals, std::string reason);

  util::EventQueue& queue_;
  AutoScalerOptions options_;
  Sampler sampler_;
  Resizer resizer_;
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  double horizon_s_ = 0.0;
  bool started_ = false;
  std::size_t breach_streak_ = 0;
  std::size_t idle_streak_ = 0;
  double last_scale_t_ = -1e300;  // cooldown reference; no event yet
  std::vector<ScaleDecision> decisions_;
  std::size_t scale_ups_ = 0;
  std::size_t scale_downs_ = 0;
};

}  // namespace autolearn::serve
