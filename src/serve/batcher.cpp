#include "serve/batcher.hpp"

#include <limits>
#include <utility>

#include "serve/errors.hpp"

namespace autolearn::serve {

void BatcherConfig::check(ConfigIssues& out) const {
  if (max_batch == 0) {
    out.emplace_back("batcher.max_batch", "must be >= 1");
  }
  if (max_delay_s < 0.0) {
    out.emplace_back("batcher.max_delay_s", "must be >= 0");
  }
}

void BatcherConfig::validate() const {
  ConfigIssues issues;
  check(issues);
  if (!issues.empty()) throw issues.front();
}

DynamicBatcher::DynamicBatcher(BatcherConfig config)
    : config_(config) {
  config_.validate();
}

void DynamicBatcher::push(ServeRequest request) {
  queue_.push_back(std::move(request));
}

double DynamicBatcher::deadline() const {
  if (queue_.empty()) return std::numeric_limits<double>::infinity();
  return queue_.front().t_arrive + config_.max_delay_s;
}

bool DynamicBatcher::ready(double now) const {
  if (queue_.empty()) return false;
  return full() || now >= deadline();
}

std::vector<ServeRequest> DynamicBatcher::take() {
  const std::size_t n = std::min(queue_.size(), config_.max_batch);
  std::vector<ServeRequest> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  return out;
}

std::vector<ServeRequest> DynamicBatcher::drain() {
  std::vector<ServeRequest> out;
  out.reserve(queue_.size());
  while (!queue_.empty()) {
    out.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  return out;
}

}  // namespace autolearn::serve
