// Dynamic batching queue for the fleet inference service.
//
// Requests accumulate FIFO; a batch is ready to flush when either the
// batch cap is reached (max_batch) or the oldest pending request has
// waited its latency budget (max_delay_s). Pure data structure on the
// simulated clock — the service owns event scheduling — so batch
// boundaries are a deterministic function of the arrival schedule.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "serve/errors.hpp"
#include "serve/request.hpp"

namespace autolearn::serve {

struct BatcherConfig {
  /// Flush when this many requests are pending.
  std::size_t max_batch = 16;
  /// Flush when the oldest pending request has waited this long.
  double max_delay_s = 0.02;

  /// Appends every violation (prefix "batcher.") without throwing.
  void check(ConfigIssues& out) const;
  /// Throw-on-first shim over check().
  void validate() const;
};

class DynamicBatcher {
 public:
  explicit DynamicBatcher(BatcherConfig config = {});

  void push(ServeRequest request);

  std::size_t pending() const { return queue_.size(); }
  bool empty() const { return queue_.empty(); }
  bool full() const { return queue_.size() >= config_.max_batch; }

  /// Absolute time the oldest pending request must flush by; +inf when
  /// empty. Monotonically non-decreasing across push/take.
  double deadline() const;

  /// True when a batch should flush now: the cap is reached or the oldest
  /// request has aged out.
  bool ready(double now) const;

  /// Removes and returns up to max_batch oldest requests (FIFO order).
  std::vector<ServeRequest> take();

  /// Removes and returns EVERYTHING pending (FIFO order), ignoring the
  /// cap — the failover path uses this to reroute a dead shard's queue.
  std::vector<ServeRequest> drain();

  const BatcherConfig& config() const { return config_; }

 private:
  BatcherConfig config_;
  std::deque<ServeRequest> queue_;
};

}  // namespace autolearn::serve
