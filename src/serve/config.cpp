#include "serve/config.hpp"

namespace autolearn::serve {

ConfigIssues ServeConfig::issues() const {
  ConfigIssues out;
  fleet.check(out);  // includes batcher, health, autoscaler, load spikes
  canary.check(out);
  return out;
}

void ServeConfig::validate() const {
  ConfigIssues found = issues();
  if (!found.empty()) throw ConfigErrorList(std::move(found));
}

}  // namespace autolearn::serve
