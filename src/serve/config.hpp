// One configuration surface for the serving tier.
//
// The serve:: subsystems each grew their own options struct — FleetOptions,
// BatcherConfig, HealthOptions, AutoScalerOptions, CanaryOptions — and a
// caller assembling a full serving stack had to validate five structs in
// the right order and catch five separate throw-on-first errors.
// ServeConfig aggregates them behind a single validate() that collects
// EVERY violation before throwing one ConfigErrorList, each entry
// carrying its dotted field() path ("autoscaler.cooldown_s",
// "batcher.max_batch", ...). One pass over a config reports all the
// typos, not just the first.
//
// Migration: the per-struct validate() methods still exist and still
// throw the FIRST violation as a plain ConfigError — they are shims over
// the same check() collectors, so code written against the old surface
// compiles and behaves unchanged. New code should build a ServeConfig,
// call validate() once, and hand .fleet / .canary to the constructors.
#pragma once

#include "serve/autoscaler.hpp"
#include "serve/batcher.hpp"
#include "serve/errors.hpp"
#include "serve/health.hpp"
#include "serve/replication.hpp"
#include "serve/service.hpp"

namespace autolearn::serve {

struct ServeConfig {
  /// Fleet shape, sharding, admission control, autoscaling bands, load
  /// spikes — everything FleetService consumes.
  FleetOptions fleet;
  /// Canary rollout gate for ReplicatedRegistry::publish_canary.
  CanaryOptions canary;

  // Aliases into the nested structs, so call sites read uniformly
  // (config.batcher().max_batch, config.autoscaler().cooldown_s).
  BatcherConfig& batcher() { return fleet.batcher; }
  const BatcherConfig& batcher() const { return fleet.batcher; }
  HealthOptions& health() { return fleet.health; }
  const HealthOptions& health() const { return fleet.health; }
  AutoScalerOptions& autoscaler() { return fleet.autoscaler; }
  const AutoScalerOptions& autoscaler() const { return fleet.autoscaler; }

  /// Every violation across every nested struct, in declaration order;
  /// empty means the config is serveable.
  ConfigIssues issues() const;

  /// Throws ConfigErrorList carrying ALL violations (never just the
  /// first); no-op on a valid config.
  void validate() const;
};

}  // namespace autolearn::serve
