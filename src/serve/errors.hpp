// Typed configuration errors for the serving tier.
//
// Every serve-side options struct (FleetOptions, BatcherConfig,
// HealthOptions, CanaryOptions, ShardRouterConfig, AutoScalerOptions)
// rejects degenerate values with a ConfigError naming the offending
// field, so callers can react programmatically instead of
// string-matching a generic what(). ConfigError derives from
// std::invalid_argument, so pre-existing catch sites keep working
// unchanged.
//
// The aggregate ServeConfig::validate() collects EVERY violation before
// throwing, as a ConfigErrorList whose errors() each carry their own
// field() path — one pass over a config file reports all the typos, not
// just the first. Per-struct validate() keeps the old throw-on-first
// contract as a shim over the same check() collectors.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

namespace autolearn::serve {

class ConfigError : public std::invalid_argument {
 public:
  ConfigError(std::string field, const std::string& why)
      : std::invalid_argument("serve config: " + field + ": " + why),
        field_(std::move(field)) {}

  /// Dotted path of the rejected option, e.g. "fleet.cars" or
  /// "autoscaler.cooldown_s".
  const std::string& field() const { return field_; }

 private:
  std::string field_;
};

/// Every violation a ServeConfig::validate() pass found, in declaration
/// order. what() lists all the offending field paths on one line.
class ConfigErrorList : public std::invalid_argument {
 public:
  explicit ConfigErrorList(std::vector<ConfigError> errors)
      : std::invalid_argument(join(errors)), errors_(std::move(errors)) {}

  const std::vector<ConfigError>& errors() const { return errors_; }
  std::size_t size() const { return errors_.size(); }

  /// True when some violation names `field` (exact dotted-path match).
  bool has(const std::string& field) const {
    for (const ConfigError& e : errors_) {
      if (e.field() == field) return true;
    }
    return false;
  }

 private:
  static std::string join(const std::vector<ConfigError>& errors) {
    std::string out = "serve config: " + std::to_string(errors.size()) +
                      " violation(s):";
    for (const ConfigError& e : errors) out += " [" + e.field() + "]";
    return out;
  }

  std::vector<ConfigError> errors_;
};

/// Collector the per-struct check() methods append into; validate()
/// shims throw the first entry to preserve the original behavior.
using ConfigIssues = std::vector<ConfigError>;

}  // namespace autolearn::serve
