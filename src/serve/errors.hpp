// Typed configuration errors for the serving tier.
//
// Every serve-side options struct (FleetOptions, BatcherConfig,
// HealthOptions, CanaryOptions, ShardRouterConfig) rejects degenerate
// values with a ConfigError naming the offending field, so callers can
// react programmatically instead of string-matching a generic what().
// ConfigError derives from std::invalid_argument, so pre-existing
// catch sites keep working unchanged.
#pragma once

#include <stdexcept>
#include <string>

namespace autolearn::serve {

class ConfigError : public std::invalid_argument {
 public:
  ConfigError(std::string field, const std::string& why)
      : std::invalid_argument("serve config: " + field + ": " + why),
        field_(std::move(field)) {}

  /// Dotted path of the rejected option, e.g. "fleet.cars" or
  /// "batcher.max_batch".
  const std::string& field() const { return field_; }

 private:
  std::string field_;
};

}  // namespace autolearn::serve
