#include "serve/health.hpp"

#include <stdexcept>
#include <utility>

namespace autolearn::serve {

void HealthOptions::check(ConfigIssues& out) const {
  if (check_interval_s <= 0.0) {
    out.emplace_back("health.check_interval_s", "must be > 0");
  }
  if (timeout_s <= 0.0) {
    out.emplace_back("health.timeout_s", "must be > 0");
  }
}

void HealthOptions::validate() const {
  ConfigIssues issues;
  check(issues);
  if (!issues.empty()) throw issues.front();
}

HealthMonitor::HealthMonitor(util::EventQueue& queue, HealthOptions options)
    : queue_(queue), options_(options) {
  options_.validate();
}

std::size_t HealthMonitor::add_shard(std::string site) {
  Entry e;
  e.site = std::move(site);
  e.last_ok = queue_.now();
  shards_.push_back(std::move(e));
  return shards_.size() - 1;
}

void HealthMonitor::retire(std::size_t shard) {
  if (shard >= shards_.size()) {
    throw std::out_of_range("HealthMonitor::retire: bad shard index");
  }
  shards_[shard].retired = true;
}

void HealthMonitor::readmit(std::size_t shard, bool alive_now) {
  if (shard >= shards_.size()) {
    throw std::out_of_range("HealthMonitor::readmit: bad shard index");
  }
  Entry& e = shards_[shard];
  e.retired = false;
  e.alive = alive_now;
  e.last_ok = queue_.now();
}

bool HealthMonitor::retired(std::size_t shard) const {
  if (shard >= shards_.size()) {
    throw std::out_of_range("HealthMonitor::retired: bad shard index");
  }
  return shards_[shard].retired;
}

void HealthMonitor::start(double horizon_s) {
  if (started_) throw std::logic_error("HealthMonitor::start: call once");
  started_ = true;
  horizon_s_ = horizon_s;
  const double now = queue_.now();
  for (Entry& e : shards_) e.last_ok = now;
  const double first = now + options_.check_interval_s;
  if (first <= horizon_s_) {
    queue_.schedule_at(first, [this] { sweep(); });
  }
}

bool HealthMonitor::alive(std::size_t shard) const {
  if (shard >= shards_.size()) {
    throw std::out_of_range("HealthMonitor::alive: bad shard index");
  }
  return shards_[shard].alive;
}

const std::string& HealthMonitor::site(std::size_t shard) const {
  if (shard >= shards_.size()) {
    throw std::out_of_range("HealthMonitor::site: bad shard index");
  }
  return shards_[shard].site;
}

void HealthMonitor::sweep() {
  const double now = queue_.now();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Entry& e = shards_[s];
    if (e.retired) continue;
    const bool reachable = probe_ ? probe_(e.site, now) : true;
    if (reachable) {
      e.last_ok = now;
      if (!e.alive) {
        e.alive = true;
        ++ups_;
        transition(s, /*up=*/true);
        if (on_up_) on_up_(s);
      }
    } else if (e.alive && now - e.last_ok >= options_.timeout_s) {
      e.alive = false;
      ++downs_;
      transition(s, /*up=*/false);
      if (on_down_) on_down_(s);
    }
  }
  const double next = now + options_.check_interval_s;
  if (next <= horizon_s_) {
    queue_.schedule_at(next, [this] { sweep(); });
  }
}

void HealthMonitor::transition(std::size_t shard, bool up) {
  if (metrics_) {
    metrics_->counter(up ? "serve.health.ups" : "serve.health.downs").inc();
  }
  if (tracer_) {
    util::Json args = util::Json::object();
    args.set("shard", util::Json(shard));
    args.set("site", util::Json(shards_[shard].site));
    tracer_->instant(up ? "serve.shard_up" : "serve.shard_down", "serve",
                     std::move(args));
  }
}

}  // namespace autolearn::serve
