// Heartbeat-driven shard health monitor on the virtual clock.
//
// Every check_interval_s the monitor sweeps the shard table in index
// order and asks the site probe whether each shard's pinned site is
// reachable (the probe is typically wired to net::Network routing, so a
// chaos-injected partition of the site makes its heartbeats miss). A
// shard whose last successful heartbeat is older than timeout_s is
// declared Down — the on_down hook fires once and the router reroutes its
// cars; the first successful heartbeat after that declares it Up again.
// Sweeps are plain event-queue callbacks with no RNG draws, so the whole
// detect-and-recover timeline is a deterministic function of the fault
// plan. Sweeping stops at the horizon handed to start() so a draining
// simulation still terminates.
//
// The autoscaler grows and shrinks the shard table mid-run: add_shard()
// is allowed after start() (the newcomer's heartbeat clock begins at
// admission), retire() drops a shard from future sweeps without
// disturbing the indices of its neighbors, and readmit() re-activates a
// previously retired index with a fresh heartbeat clock and an explicit
// initial liveness — a shard readmitted onto a still-partitioned site
// starts dead rather than attracting traffic for a sweep interval.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/errors.hpp"
#include "util/event_queue.hpp"

namespace autolearn::serve {

struct HealthOptions {
  /// Heartbeat sweep cadence.
  double check_interval_s = 0.02;
  /// Unreachable this long -> Down.
  double timeout_s = 0.05;

  /// Appends every violation (prefix "health.") without throwing.
  void check(ConfigIssues& out) const;
  /// Throw-on-first shim over check().
  void validate() const;
};

class HealthMonitor {
 public:
  using Probe = std::function<bool(const std::string& site, double now)>;
  using ShardHook = std::function<void(std::size_t shard)>;

  HealthMonitor(util::EventQueue& queue, HealthOptions options);

  /// Registers a shard pinned to `site`; indices are assigned in call
  /// order and must match the service's shard indices. Allowed after
  /// start(): a scaled-in shard's heartbeat clock begins at admission.
  std::size_t add_shard(std::string site);

  /// Drops `shard` from future sweeps (no more verdicts for it); its
  /// index stays reserved so neighbors keep theirs. Idempotent.
  void retire(std::size_t shard);

  /// Re-activates a retired index with a fresh heartbeat clock.
  /// `alive_now` is the shard's starting verdict — pass the probe's
  /// answer at admission so a still-dark site never starts Up.
  void readmit(std::size_t shard, bool alive_now);

  bool retired(std::size_t shard) const;

  /// Reachability oracle; unset means every site is always reachable.
  void set_probe(Probe probe) { probe_ = std::move(probe); }
  void set_on_down(ShardHook hook) { on_down_ = std::move(hook); }
  void set_on_up(ShardHook hook) { on_up_ = std::move(hook); }

  /// Optional sinks: transitions become "serve.shard_down"/"serve.shard_up"
  /// trace instants plus serve.health.* counters.
  void instrument(obs::Tracer* tracer, obs::MetricsRegistry* metrics) {
    tracer_ = tracer;
    metrics_ = metrics;
  }

  /// Begins sweeping; sweeps self-reschedule while the next one lands at
  /// or before `horizon_s`. Call once.
  void start(double horizon_s);

  bool alive(std::size_t shard) const;
  const std::string& site(std::size_t shard) const;
  std::size_t shard_count() const { return shards_.size(); }
  std::size_t downs() const { return downs_; }
  std::size_t ups() const { return ups_; }

 private:
  struct Entry {
    std::string site;
    double last_ok = 0.0;
    bool alive = true;
    bool retired = false;
  };

  void sweep();
  void transition(std::size_t shard, bool up);

  util::EventQueue& queue_;
  HealthOptions options_;
  std::vector<Entry> shards_;
  Probe probe_;
  ShardHook on_down_;
  ShardHook on_up_;
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  double horizon_s_ = 0.0;
  bool started_ = false;
  std::size_t downs_ = 0;
  std::size_t ups_ = 0;
};

}  // namespace autolearn::serve
