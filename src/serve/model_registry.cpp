#include "serve/model_registry.hpp"

#include <sstream>
#include <stdexcept>
#include <utility>

#include "ml/plan.hpp"

namespace autolearn::serve {

void ModelRegistry::set_plan_batch(std::size_t max_batch) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    plan_batch_ = max_batch;
  }
  // Compile the already-published model too: enabling plans after
  // warm_start must not leave the fleet on the interpreted path until the
  // next retrain.
  const auto snap = current();
  if (snap) compile_model(*snap->model, "set_plan_batch");
}

std::size_t ModelRegistry::plan_batch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return plan_batch_;
}

void ModelRegistry::compile_model(ml::DrivingModel& model,
                                  const char* reason) {
  std::size_t cap = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    cap = plan_batch_;
  }
  if (cap == 0) return;
  // attach_plan is idempotent for a matching cap; skip the observability
  // emit when nothing was actually compiled (e.g. republishing a shared
  // model into several replicas).
  ml::CompiledModel* before = model.plan();
  if (before != nullptr && before->max_batch() == cap) return;
  if (!model.attach_plan(cap)) return;  // model type has no compiled path
  ml::CompiledModel* plan = model.plan();
  if (plan == nullptr) return;
  const ml::PlanStats stats = plan->stats();
  if (metrics_) {
    plan->instrument(metrics_);
    metrics_->counter("serve.plan.compiles").inc();
    metrics_->gauge("serve.plan.steps")
        .set(static_cast<double>(stats.steps));
    metrics_->gauge("serve.plan.arena_floats")
        .set(static_cast<double>(stats.arena_floats));
    metrics_->gauge("serve.plan.fused_activations")
        .set(static_cast<double>(stats.fused_activations));
  }
  if (tracer_) {
    util::Json args = util::Json::object();
    args.set("model", util::Json(std::string(model.type_name())));
    args.set("max_batch", util::Json(cap));
    args.set("steps", util::Json(stats.steps));
    args.set("arena_floats", util::Json(stats.arena_floats));
    args.set("naive_floats", util::Json(stats.naive_floats));
    args.set("fused", util::Json(stats.fused_activations));
    args.set("reason", util::Json(std::string(reason)));
    if (!label_.empty()) args.set("registry", util::Json(label_));
    tracer_->instant("plan.compile", "serve", std::move(args));
  }
}

std::uint64_t ModelRegistry::publish(std::shared_ptr<ml::DrivingModel> model,
                                     std::string tag) {
  if (!model) {
    throw std::invalid_argument("ModelRegistry::publish: null model");
  }
  compile_model(*model, "publish");
  auto snap = std::make_shared<ModelSnapshot>();
  snap->model = std::move(model);
  snap->tag = std::move(tag);
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap->version = next_version_++;
    snapshot_ = std::move(snap);
  }
  const auto current = this->current();
  if (metrics_) metrics_->counter("serve.model.publishes").inc();
  if (tracer_) {
    util::Json args = util::Json::object();
    args.set("version", util::Json(current->version));
    args.set("tag", util::Json(current->tag));
    args.set("model", util::Json(std::string(current->model->type_name())));
    if (!label_.empty()) args.set("registry", util::Json(label_));
    tracer_->instant("serve.model_swap", "serve", std::move(args));
  }
  return current->version;
}

void ModelRegistry::adopt(std::shared_ptr<const ModelSnapshot> snapshot) {
  if (!snapshot || !snapshot->model) {
    throw std::invalid_argument("ModelRegistry::adopt: null snapshot");
  }
  // Level the plan too: the donor normally compiled it already (attach is
  // an idempotent no-op then), but an adopter with plans enabled must not
  // serve an interpreted model.
  compile_model(*snapshot->model, "adopt");
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot_ = snapshot;
    if (next_version_ <= snapshot->version) {
      next_version_ = snapshot->version + 1;
    }
  }
  if (metrics_) metrics_->counter("serve.model.adoptions").inc();
  if (tracer_) {
    util::Json args = util::Json::object();
    args.set("version", util::Json(snapshot->version));
    args.set("tag", util::Json(snapshot->tag));
    args.set("model", util::Json(std::string(snapshot->model->type_name())));
    if (!label_.empty()) args.set("registry", util::Json(label_));
    tracer_->instant("serve.model_adopt", "serve", std::move(args));
  }
}

std::shared_ptr<const ModelSnapshot> ModelRegistry::current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_;
}

std::uint64_t ModelRegistry::version() const {
  const auto snap = current();
  return snap ? snap->version : 0;
}

std::size_t ModelRegistry::swaps() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_version_ > 2 ? static_cast<std::size_t>(next_version_ - 2) : 0;
}

std::optional<std::uint64_t> ModelRegistry::checkpoint_current(
    ckpt::CheckpointStore& store, const std::string& key,
    const ml::ModelConfig& config) {
  const auto snap = current();
  if (!snap) return std::nullopt;
  std::ostringstream bundle;
  ml::save_model_bundle(bundle, *snap->model, config);
  ckpt::CheckpointInfo info;
  info.epoch = snap->version;
  info.seed = config.seed;
  info.note = std::string("model-bundle:") + snap->model->type_name();
  return store.save(key, bundle.str(), info);
}

std::optional<std::uint64_t> ModelRegistry::warm_start(
    ckpt::CheckpointStore& store, const std::string& key) {
  auto loaded = store.load_latest(key);
  if (!loaded) return std::nullopt;
  std::istringstream bundle(loaded->payload);
  ml::LoadedModelBundle restored = ml::load_model_bundle(bundle);
  return publish(std::move(restored.model),
                 "warm-start:gen-" +
                     std::to_string(loaded->generation.generation));
}

}  // namespace autolearn::serve
