#include "serve/model_registry.hpp"

#include <sstream>
#include <stdexcept>
#include <utility>

namespace autolearn::serve {

std::uint64_t ModelRegistry::publish(std::shared_ptr<ml::DrivingModel> model,
                                     std::string tag) {
  if (!model) {
    throw std::invalid_argument("ModelRegistry::publish: null model");
  }
  auto snap = std::make_shared<ModelSnapshot>();
  snap->model = std::move(model);
  snap->tag = std::move(tag);
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap->version = next_version_++;
    snapshot_ = std::move(snap);
  }
  const auto current = this->current();
  if (metrics_) metrics_->counter("serve.model.publishes").inc();
  if (tracer_) {
    util::Json args = util::Json::object();
    args.set("version", util::Json(current->version));
    args.set("tag", util::Json(current->tag));
    args.set("model", util::Json(std::string(current->model->type_name())));
    if (!label_.empty()) args.set("registry", util::Json(label_));
    tracer_->instant("serve.model_swap", "serve", std::move(args));
  }
  return current->version;
}

std::shared_ptr<const ModelSnapshot> ModelRegistry::current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_;
}

std::uint64_t ModelRegistry::version() const {
  const auto snap = current();
  return snap ? snap->version : 0;
}

std::size_t ModelRegistry::swaps() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_version_ > 2 ? static_cast<std::size_t>(next_version_ - 2) : 0;
}

std::optional<std::uint64_t> ModelRegistry::checkpoint_current(
    ckpt::CheckpointStore& store, const std::string& key,
    const ml::ModelConfig& config) {
  const auto snap = current();
  if (!snap) return std::nullopt;
  std::ostringstream bundle;
  ml::save_model_bundle(bundle, *snap->model, config);
  ckpt::CheckpointInfo info;
  info.epoch = snap->version;
  info.seed = config.seed;
  info.note = std::string("model-bundle:") + snap->model->type_name();
  return store.save(key, bundle.str(), info);
}

std::optional<std::uint64_t> ModelRegistry::warm_start(
    ckpt::CheckpointStore& store, const std::string& key) {
  auto loaded = store.load_latest(key);
  if (!loaded) return std::nullopt;
  std::istringstream bundle(loaded->payload);
  ml::LoadedModelBundle restored = ml::load_model_bundle(bundle);
  return publish(std::move(restored.model),
                 "warm-start:gen-" +
                     std::to_string(loaded->generation.generation));
}

}  // namespace autolearn::serve
