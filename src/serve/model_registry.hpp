// Versioned model registry with atomic hot-swap.
//
// The serving tier never touches a model directly: workers grab an
// immutable Snapshot (model + version + tag) at batch-dispatch time, so a
// publish() racing a running batch is safe — in-flight batches finish on
// the version they started with, the next dispatch sees the new one.
// Versions are 1-based and strictly monotonic; a publish from a scheduled
// event models the trainer pushing a freshly fitted model into the fleet.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "ml/driving_model.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace autolearn::serve {

/// Immutable view of one published model. Holders keep the model alive
/// through shared ownership even after it is superseded.
struct ModelSnapshot {
  std::shared_ptr<ml::DrivingModel> model;
  std::uint64_t version = 0;
  std::string tag;  // free-form provenance ("bootstrap", "retrain-3", ...)
};

class ModelRegistry {
 public:
  ModelRegistry() = default;

  /// Optional observability sinks: publishes become "serve.model_swap"
  /// trace instants and a "serve.model.publishes" counter.
  void instrument(obs::Tracer* tracer, obs::MetricsRegistry* metrics) {
    tracer_ = tracer;
    metrics_ = metrics;
  }

  /// Atomically replaces the current model; returns the new version.
  std::uint64_t publish(std::shared_ptr<ml::DrivingModel> model,
                        std::string tag = "");

  /// Latest published snapshot; nullptr before the first publish.
  std::shared_ptr<const ModelSnapshot> current() const;

  bool empty() const { return current() == nullptr; }
  /// Version of the current snapshot; 0 before the first publish.
  std::uint64_t version() const;
  /// Hot-swaps performed: publishes beyond the first.
  std::size_t swaps() const;

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const ModelSnapshot> snapshot_;
  std::uint64_t next_version_ = 1;
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace autolearn::serve
