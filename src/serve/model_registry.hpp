// Versioned model registry with atomic hot-swap.
//
// The serving tier never touches a model directly: workers grab an
// immutable Snapshot (model + version + tag) at batch-dispatch time, so a
// publish() racing a running batch is safe — in-flight batches finish on
// the version they started with, the next dispatch sees the new one.
// Versions are 1-based and strictly monotonic; a publish from a scheduled
// event models the trainer pushing a freshly fitted model into the fleet.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "ckpt/checkpoint.hpp"
#include "ml/driving_model.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace autolearn::serve {

/// Immutable view of one published model. Holders keep the model alive
/// through shared ownership even after it is superseded.
struct ModelSnapshot {
  std::shared_ptr<ml::DrivingModel> model;
  std::uint64_t version = 0;
  std::string tag;  // free-form provenance ("bootstrap", "retrain-3", ...)
};

class ModelRegistry {
 public:
  ModelRegistry() = default;

  /// Optional observability sinks: publishes become "serve.model_swap"
  /// trace instants and a "serve.model.publishes" counter.
  void instrument(obs::Tracer* tracer, obs::MetricsRegistry* metrics) {
    tracer_ = tracer;
    metrics_ = metrics;
  }

  /// Attribution label for sharded fleets (e.g. "shard-2"); included in
  /// swap instants when non-empty so per-replica publishes stay tellable
  /// apart in one trace.
  void set_label(std::string label) { label_ = std::move(label); }
  const std::string& label() const { return label_; }

  /// Atomically replaces the current model; returns the new version.
  /// When a plan batch is set (set_plan_batch), the model is compiled for
  /// that batch cap before the snapshot is installed, so serving never
  /// observes a published-but-uncompiled model.
  std::uint64_t publish(std::shared_ptr<ml::DrivingModel> model,
                        std::string tag = "");

  /// Enables graph compilation: every model published from now on (and the
  /// currently published one, if any) gets a CompiledModel plan attached
  /// for batches up to `max_batch`, so steady-state predict_batch runs the
  /// arena-planned zero-allocation path. `max_batch == 0` disables
  /// compilation for future publishes (existing plans stay attached).
  void set_plan_batch(std::size_t max_batch);

  /// Plan batch cap compiled into published models; 0 when disabled.
  std::size_t plan_batch() const;

  /// Installs an existing snapshot (shared with another replica) without
  /// minting a new version: the registry's current() becomes `snapshot`
  /// and the next publish() continues from snapshot->version + 1. The
  /// replication tier uses this to bring a scaled-in replica level with
  /// the incumbents — same model object, same version, plan already
  /// attached — before the new shard admits traffic.
  void adopt(std::shared_ptr<const ModelSnapshot> snapshot);

  /// Latest published snapshot; nullptr before the first publish.
  std::shared_ptr<const ModelSnapshot> current() const;

  bool empty() const { return current() == nullptr; }
  /// Version of the current snapshot; 0 before the first publish.
  std::uint64_t version() const;
  /// Hot-swaps performed: publishes beyond the first.
  std::size_t swaps() const;

  /// Persists the current model (a self-describing type+config+full-state
  /// bundle) as a new checkpoint generation under `key`. Returns the
  /// generation, or nullopt before the first publish.
  std::optional<std::uint64_t> checkpoint_current(
      ckpt::CheckpointStore& store, const std::string& key,
      const ml::ModelConfig& config);

  /// Warm start: rebuilds the model from the newest *valid* checkpoint
  /// generation of `key` (corrupt ones are quarantined and skipped by the
  /// store) and publishes it tagged "warm-start:gen-N" — the fleet serves
  /// its first request without retraining. Returns the published version,
  /// or nullopt when no loadable checkpoint exists.
  std::optional<std::uint64_t> warm_start(ckpt::CheckpointStore& store,
                                          const std::string& key);

 private:
  /// Attaches a plan to `model` when plan_batch_ is set; emits the
  /// "plan.compile" instant + serve.plan.* gauges when a compile actually
  /// ran (attach_plan is an idempotent no-op for an already-matching cap).
  void compile_model(ml::DrivingModel& model, const char* reason);

  mutable std::mutex mu_;
  std::shared_ptr<const ModelSnapshot> snapshot_;
  std::size_t plan_batch_ = 0;
  std::uint64_t next_version_ = 1;
  std::string label_;
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace autolearn::serve
