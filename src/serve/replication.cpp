#include "serve/replication.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "serve/errors.hpp"

namespace autolearn::serve {

void CanaryOptions::check(ConfigIssues& out) const {
  if (canary_shards == 0) {
    out.emplace_back("canary.canary_shards", "must be >= 1");
  }
  if (max_steering_drift < 0.0) {
    out.emplace_back("canary.max_steering_drift", "must be >= 0");
  }
  if (max_error_rate < 0.0 || max_error_rate > 1.0) {
    out.emplace_back("canary.max_error_rate", "must be in [0, 1]");
  }
  if (bake_s < 0.0) {
    out.emplace_back("canary.bake_s", "must be >= 0");
  }
}

void CanaryOptions::validate() const {
  ConfigIssues issues;
  check(issues);
  if (!issues.empty()) throw issues.front();
}

ReplicatedRegistry::ReplicatedRegistry(std::size_t shards) {
  if (shards == 0) {
    throw ConfigError("replication.shards", "must be >= 1");
  }
  replicas_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    replicas_.push_back(std::make_unique<ModelRegistry>());
    replicas_.back()->set_label("shard-" + std::to_string(i));
  }
}

ModelRegistry& ReplicatedRegistry::shard(std::size_t index) {
  if (index >= replicas_.size()) {
    throw std::out_of_range("ReplicatedRegistry::shard: bad index");
  }
  return *replicas_[index];
}

const ModelRegistry& ReplicatedRegistry::shard(std::size_t index) const {
  if (index >= replicas_.size()) {
    throw std::out_of_range("ReplicatedRegistry::shard: bad index");
  }
  return *replicas_[index];
}

std::size_t ReplicatedRegistry::add_replica() {
  const std::size_t index = replicas_.size();
  replicas_.push_back(std::make_unique<ModelRegistry>());
  ModelRegistry& replica = *replicas_.back();
  replica.set_label("shard-" + std::to_string(index));
  replica.instrument(tracer_, metrics_);
  if (plan_batch_ > 0) replica.set_plan_batch(plan_batch_);
  level_replica(index);
  return index;
}

void ReplicatedRegistry::level_replica(std::size_t index) {
  if (index >= replicas_.size()) {
    throw std::out_of_range("ReplicatedRegistry::level_replica: bad index");
  }
  if (index == 0) return;
  const auto incumbent = replicas_[0]->current();
  if (!incumbent) return;
  const auto mine = replicas_[index]->current();
  if (mine && mine->version == incumbent->version &&
      mine->model == incumbent->model) {
    return;
  }
  replicas_[index]->adopt(incumbent);
}

void ReplicatedRegistry::instrument(obs::Tracer* tracer,
                                    obs::MetricsRegistry* metrics) {
  tracer_ = tracer;
  metrics_ = metrics;
  for (auto& r : replicas_) r->instrument(tracer, metrics);
}

void ReplicatedRegistry::set_plan_batch(std::size_t max_batch) {
  plan_batch_ = max_batch;
  for (auto& r : replicas_) r->set_plan_batch(max_batch);
}

std::uint64_t ReplicatedRegistry::publish_all(
    std::shared_ptr<ml::DrivingModel> model, std::string tag) {
  std::uint64_t version = 0;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    const std::uint64_t v = replicas_[i]->publish(model, tag);
    if (i == 0) {
      version = v;
    } else if (v != version) {
      throw std::logic_error(
          "ReplicatedRegistry::publish_all: replicas diverged (mix of "
          "canary and fleet-wide publishes?); shard 0 is at version " +
          std::to_string(version) + ", shard " + std::to_string(i) +
          " at " + std::to_string(v));
    }
  }
  return version;
}

std::shared_ptr<const CanaryOutcome> ReplicatedRegistry::publish_canary(
    std::shared_ptr<ml::DrivingModel> model, std::string tag,
    const CanaryOptions& options, std::vector<ml::Sample> probes,
    util::EventQueue* queue) {
  options.validate();
  if (!model) {
    throw std::invalid_argument("publish_canary: null model");
  }
  if (probes.empty()) {
    throw ConfigError("canary.probes", "need at least one probe sample");
  }
  if (options.canary_shards >= replicas_.size()) {
    throw ConfigError("canary.canary_shards",
                      "slice must leave at least one non-canary shard");
  }
  const auto incumbent = replicas_[options.canary_shards]->current();
  if (!incumbent) {
    throw std::logic_error("publish_canary: no incumbent published");
  }

  auto outcome = std::make_shared<CanaryOutcome>();
  outcome->canary_shard_indices.reserve(options.canary_shards);
  for (std::size_t i = 0; i < options.canary_shards; ++i) {
    outcome->canary_version = replicas_[i]->publish(model, "canary:" + tag);
    outcome->canary_shard_indices.push_back(i);
  }
  if (metrics_) metrics_->counter("serve.canary.published").inc();
  if (tracer_) {
    util::Json args = util::Json::object();
    args.set("tag", util::Json(tag));
    args.set("slice", util::Json(options.canary_shards));
    args.set("version", util::Json(outcome->canary_version));
    tracer_->instant("serve.canary_publish", "serve", std::move(args));
  }

  if (options.bake_s > 0.0 && queue) {
    queue->schedule_in(options.bake_s,
                       [this, model, tag, options, probes, incumbent,
                        outcome]() mutable {
                         decide(std::move(model), std::move(tag), options,
                                std::move(probes), incumbent, outcome);
                       });
  } else {
    decide(std::move(model), std::move(tag), options, std::move(probes),
           incumbent, outcome);
  }
  return outcome;
}

void ReplicatedRegistry::decide(std::shared_ptr<ml::DrivingModel> model,
                                std::string tag, CanaryOptions options,
                                std::vector<ml::Sample> probes,
                                std::shared_ptr<ModelSnapshot const> incumbent,
                                std::shared_ptr<CanaryOutcome> outcome) {
  const std::size_t n = probes.size();
  std::vector<ml::Prediction> cand(n);
  std::vector<ml::Prediction> base(n);
  model->predict_batch(probes.data(), n, cand.data());
  incumbent->model->predict_batch(probes.data(), n, base.data());

  double drift = 0.0;
  std::size_t errors = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const bool finite = std::isfinite(cand[i].steering) &&
                        std::isfinite(cand[i].throttle);
    const bool in_range = finite && std::abs(cand[i].steering) <= 1.2 &&
                          cand[i].throttle >= -0.2 && cand[i].throttle <= 1.2;
    if (!in_range) {
      ++errors;
      continue;  // a broken command contributes to error rate, not drift
    }
    drift += std::abs(cand[i].steering - base[i].steering);
  }
  const std::size_t ok = n - errors;
  outcome->steering_drift = ok > 0 ? drift / static_cast<double>(ok) : 0.0;
  outcome->error_rate = static_cast<double>(errors) / static_cast<double>(n);
  outcome->decided = true;

  std::ostringstream reason;
  if (outcome->error_rate > options.max_error_rate) {
    reason << "error rate " << outcome->error_rate << " > "
           << options.max_error_rate;
  } else if (outcome->steering_drift > options.max_steering_drift) {
    reason << "steering drift " << outcome->steering_drift << " > "
           << options.max_steering_drift;
  }

  if (reason.str().empty()) {
    // Gate pass: the candidate goes fleet-wide.
    outcome->promoted = true;
    outcome->reason = "promoted";
    ++promotions_;
    for (std::size_t i = options.canary_shards; i < replicas_.size(); ++i) {
      replicas_[i]->publish(model, "promoted:" + tag);
    }
    if (metrics_) metrics_->counter("serve.canary.promoted").inc();
  } else {
    // Gate fail: the slice reverts to the incumbent model; the rest of
    // the fleet never served the candidate.
    outcome->rolled_back = true;
    outcome->reason = reason.str();
    ++rollbacks_;
    for (const std::size_t i : outcome->canary_shard_indices) {
      replicas_[i]->publish(incumbent->model, "rollback:" + tag);
    }
    if (metrics_) metrics_->counter("serve.canary.rolled_back").inc();
  }
  if (tracer_) {
    util::Json args = util::Json::object();
    args.set("tag", util::Json(tag));
    args.set("promoted", util::Json(outcome->promoted));
    args.set("drift", util::Json(outcome->steering_drift));
    args.set("error_rate", util::Json(outcome->error_rate));
    args.set("reason", util::Json(outcome->reason));
    tracer_->instant("serve.canary_decision", "serve", std::move(args));
  }
}

}  // namespace autolearn::serve
