// Per-shard model replication with a gated canary rollout path.
//
// Every shard worker reads its own ModelRegistry replica, so a model push
// is a per-shard decision and a bad model's blast radius is configurable.
// publish_all() is the bootstrap/hot-swap path: the same model lands on
// every replica atomically (one shared snapshot each). publish_canary()
// is the careful path the trainer uses:
//
//   1. the candidate is published to the first `canary_shards` replicas
//      only (the canary slice), tagged "canary:<tag>";
//   2. after bake_s virtual seconds (scheduled on the caller's event
//      queue; immediate when bake_s == 0 or no queue is given) the gate
//      runs the candidate AND the incumbent over the probe set and
//      compares them: mean |steering| drift and the rate of non-finite /
//      out-of-actuator-range commands;
//   3. gate pass -> the candidate is promoted to the remaining shards
//      ("promoted:<tag>"); gate fail -> the slice is rolled back to the
//      incumbent model ("rollback:<tag>") and the rest of the fleet never
//      sees the candidate.
//
// The returned CanaryOutcome is shared state filled at gate time, so a
// simulation can fire the rollout mid-run and inspect the decision after
// the queue drains. Everything is deterministic: slice selection is by
// shard index, the gate is a pure function of the probe set.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/errors.hpp"
#include "serve/model_registry.hpp"
#include "util/event_queue.hpp"

namespace autolearn::serve {

struct CanaryOptions {
  /// Slice size: the candidate lands on shards [0, canary_shards) first.
  std::size_t canary_shards = 1;
  /// Gate: mean |candidate - incumbent| steering over the probe set must
  /// stay at or below this.
  double max_steering_drift = 0.25;
  /// Gate: fraction of probe commands that are non-finite or outside the
  /// actuator range (|steering| > 1.2, throttle outside [-0.2, 1.2]).
  double max_error_rate = 0.0;
  /// Virtual seconds the slice serves the candidate before the gate runs.
  double bake_s = 0.0;

  /// Appends every violation (prefix "canary.") without throwing.
  void check(ConfigIssues& out) const;
  /// Throw-on-first shim over check().
  void validate() const;
};

struct CanaryOutcome {
  bool decided = false;      // gate has run
  bool promoted = false;     // candidate reached the whole fleet
  bool rolled_back = false;  // slice reverted to the incumbent
  double steering_drift = 0.0;
  double error_rate = 0.0;
  std::uint64_t canary_version = 0;  // slice version during the bake
  std::vector<std::size_t> canary_shard_indices;
  std::string reason;  // human-readable gate verdict
};

class ReplicatedRegistry {
 public:
  explicit ReplicatedRegistry(std::size_t shards);

  std::size_t shards() const { return replicas_.size(); }
  ModelRegistry& shard(std::size_t index);
  const ModelRegistry& shard(std::size_t index) const;

  /// Appends one replica for a scaled-in shard and brings it level with
  /// the incumbents before it sees traffic: sinks wired, the fleet's plan
  /// batch applied, and replica 0's current snapshot adopted (same model
  /// object, same version — publish_all stays convergent). Returns the
  /// new replica's index. Scale-down never removes replicas; a retired
  /// shard's replica idles and is re-leveled by the next grow.
  std::size_t add_replica();

  /// Re-levels an existing replica (a previously retired shard being
  /// readmitted): adopts replica 0's current snapshot when the replica
  /// has fallen behind. No-op when already level.
  void level_replica(std::size_t index);

  /// Wires sinks into every replica; replica i's publish instants carry
  /// the label "shard-i".
  void instrument(obs::Tracer* tracer, obs::MetricsRegistry* metrics);

  /// Forwards set_plan_batch to every replica. publish_all shares ONE
  /// model across replicas, so the first replica compiles it and the rest
  /// see a matching plan already attached (idempotent no-op).
  void set_plan_batch(std::size_t max_batch);

  /// Publishes to every replica (bootstrap / ungated hot-swap). Returns
  /// the version the replicas agreed on; throws std::logic_error if the
  /// replicas have diverged (different next version).
  std::uint64_t publish_all(std::shared_ptr<ml::DrivingModel> model,
                            std::string tag = "");

  /// Gated rollout as documented above. `probes` must be non-empty and
  /// shaped for both models. Requires a previous publish (an incumbent).
  std::shared_ptr<const CanaryOutcome> publish_canary(
      std::shared_ptr<ml::DrivingModel> model, std::string tag,
      const CanaryOptions& options, std::vector<ml::Sample> probes,
      util::EventQueue* queue = nullptr);

  std::size_t promotions() const { return promotions_; }
  std::size_t rollbacks() const { return rollbacks_; }

 private:
  void decide(std::shared_ptr<ml::DrivingModel> model, std::string tag,
              CanaryOptions options, std::vector<ml::Sample> probes,
              std::shared_ptr<ModelSnapshot const> incumbent,
              std::shared_ptr<CanaryOutcome> outcome);

  std::vector<std::unique_ptr<ModelRegistry>> replicas_;
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::size_t plan_batch_ = 0;  // last set_plan_batch, for new replicas
  std::size_t promotions_ = 0;
  std::size_t rollbacks_ = 0;
};

}  // namespace autolearn::serve
