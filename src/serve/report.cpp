#include "serve/report.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace autolearn::serve {

const char* to_string(Tier t) {
  switch (t) {
    case Tier::Edge: return "edge";
    case Tier::Cloud: return "cloud";
  }
  return "?";
}

double ServeReport::mean_batch() const {
  if (batch_sizes.empty()) return 0.0;
  std::size_t total = 0;
  for (std::size_t s : batch_sizes) total += s;
  return static_cast<double>(total) / static_cast<double>(batch_sizes.size());
}

std::size_t ServeReport::max_batch() const {
  std::size_t best = 0;
  for (std::size_t s : batch_sizes) best = std::max(best, s);
  return best;
}

namespace {

double quantile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q in [0,1]");
  std::sort(v.begin(), v.end());
  const double idx = q * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(idx));
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

}  // namespace

double ServeReport::queued_quantile_s(double q) const {
  std::vector<double> waits;
  waits.reserve(records.size());
  for (const ServeRecord& r : records) {
    if (!r.shed) waits.push_back(r.queued_s());
  }
  return quantile(std::move(waits), q);
}

double ServeReport::total_quantile_s(double q) const {
  std::vector<double> totals;
  totals.reserve(records.size());
  for (const ServeRecord& r : records) totals.push_back(r.total_s());
  return quantile(std::move(totals), q);
}

double ServeReport::mean_abs_steering() const {
  if (records.empty()) return 0.0;
  double total = 0.0;
  for (const ServeRecord& r : records) {
    total += std::abs(r.prediction.steering);
  }
  return total / static_cast<double>(records.size());
}

util::Json ServeReport::to_json() const {
  util::Json out = util::Json::object();
  out.set("requests", requests);
  out.set("completed", completed);
  out.set("shed", shed);
  out.set("denied", denied);
  out.set("batches", batches);
  out.set("cloud_batches", cloud_batches);
  out.set("edge_batches", edge_batches);
  out.set("failover_batches", failover_batches);
  out.set("duration_s", duration_s);
  out.set("throughput_rps", throughput_rps);
  out.set("mean_batch", mean_batch());
  out.set("max_batch", max_batch());
  out.set("shards", shards);
  out.set("shard_downs", shard_downs);
  out.set("shard_ups", shard_ups);
  out.set("rebalanced", rebalanced);
  out.set("initial_shards", initial_shards);
  out.set("final_shards", final_shards);
  out.set("scale_ups", scale_ups);
  out.set("scale_downs", scale_downs);
  util::Json scales = util::Json::array();
  for (const ScaleEvent& e : scale_events) {
    util::Json row = util::Json::object();
    row.set("t", util::Json(e.t));
    row.set("dir", util::Json(std::string(e.up ? "up" : "down")));
    row.set("from", util::Json(e.from_shards));
    row.set("to", util::Json(e.to_shards));
    row.set("moved_cars", util::Json(e.moved_cars));
    row.set("churn_frac", util::Json(e.churn_frac));
    row.set("drained", util::Json(e.drained));
    row.set("reason", util::Json(e.reason));
    scales.push_back(std::move(row));
  }
  out.set("scale_events", std::move(scales));
  // Conservation invariant, spelled out so BENCH consumers can assert
  // "zero failed requests" without re-deriving it.
  out.set("failed", requests - completed - shed);
  util::Json shed_cars = util::Json::array();
  for (std::size_t s : shed_by_car) shed_cars.push_back(util::Json(s));
  out.set("shed_by_car", std::move(shed_cars));
  util::Json failovers = util::Json::array();
  for (std::size_t s : failover_by_shard) failovers.push_back(util::Json(s));
  out.set("failover_by_shard", std::move(failovers));
  util::Json shard_rows = util::Json::array();
  for (const ShardStats& s : shard_stats) {
    util::Json row = util::Json::object();
    row.set("site", util::Json(s.site));
    row.set("requests", util::Json(s.requests));
    row.set("completed", util::Json(s.completed));
    row.set("batches", util::Json(s.batches));
    row.set("shed", util::Json(s.shed));
    row.set("denied", util::Json(s.denied));
    row.set("failed_over", util::Json(s.failed_over));
    row.set("rerouted_in", util::Json(s.rerouted_in));
    row.set("downs", util::Json(s.downs));
    row.set("admitted_at", util::Json(s.admitted_at));
    row.set("retired_at", util::Json(s.retired_at));
    shard_rows.push_back(std::move(row));
  }
  out.set("shard_stats", std::move(shard_rows));
  util::Json sizes = util::Json::array();
  for (std::size_t s : batch_sizes) sizes.push_back(util::Json(s));
  out.set("batch_sizes", std::move(sizes));
  out.set("queued_p50_s", queued_quantile_s(0.50));
  out.set("queued_p99_s", queued_quantile_s(0.99));
  out.set("total_p50_s", total_quantile_s(0.50));
  out.set("total_p99_s", total_quantile_s(0.99));
  out.set("mean_abs_steering", mean_abs_steering());
  util::Json by_version = util::Json::object();
  for (const auto& [version, count] : requests_by_version) {
    by_version.set("v" + std::to_string(version), util::Json(count));
  }
  out.set("requests_by_version", std::move(by_version));
  util::Json deg = util::Json::object();
  deg.set("cloud_usage", degradation.cloud_usage);
  deg.set("failovers", degradation.failovers);
  deg.set("denied_calls", degradation.denied_calls);
  deg.set("degraded_time_s", degradation.degraded_time_s);
  deg.set("recovery_latency_s", degradation.recovery_latency_s);
  out.set("degradation", std::move(deg));
  return out;
}

std::string ServeReport::summary() const {
  std::ostringstream os;
  os << requests << " requests, " << completed << " completed in " << batches
     << " batches (mean " << mean_batch() << ", max " << max_batch() << "), "
     << shed << " shed, " << denied << " denied; " << throughput_rps
     << " req/s, queued p50 " << queued_quantile_s(0.50) << " s, p99 "
     << queued_quantile_s(0.99) << " s";
  if (shards > 1) {
    os << "; " << shards << " shards, " << shard_downs << " down(s), "
       << rebalanced << " rerouted";
  }
  if (!scale_events.empty()) {
    os << "; scaled " << initial_shards << "->" << final_shards << " ("
       << scale_ups << " up, " << scale_downs << " down)";
  }
  return os.str();
}

}  // namespace autolearn::serve
