// Aggregate outcome of a fleet serving run.
//
// Deterministic for a fixed seed and arrival schedule: the batch-boundary
// vector and the JSON snapshot are byte-for-byte reproducible, which is
// what the serve determinism tests pin.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fault/report.hpp"
#include "serve/request.hpp"
#include "util/json.hpp"

namespace autolearn::serve {

/// Per-shard slice of a fleet run; attribution for degradation under
/// chaos ("which site's loss cost what").
struct ShardStats {
  std::string site;              // testbed topology host the worker is on
  std::size_t requests = 0;      // arrivals routed to this shard
  std::size_t completed = 0;     // served by this shard's batcher
  std::size_t batches = 0;
  std::size_t shed = 0;          // admission-control sheds at this shard
  std::size_t denied = 0;        // requests denied by this shard's breaker
  std::size_t failed_over = 0;   // queued requests rerouted AWAY on death
  std::size_t rerouted_in = 0;   // failover requests absorbed FROM others
  std::size_t downs = 0;         // health-monitor death verdicts
  double admitted_at = 0.0;      // virtual time the shard joined the fleet
  double retired_at = -1.0;      // scale-down teardown time; -1 = never
};

/// One autoscaler ring resize in timeline order — part of the
/// determinism fingerprint (same seed ⇒ identical event list).
struct ScaleEvent {
  double t = 0.0;
  bool up = false;               // grow (true) or shrink
  std::size_t from_shards = 0;   // active workers before
  std::size_t to_shards = 0;     // active workers after
  std::size_t moved_cars = 0;    // keys the ring remapped
  double churn_frac = 0.0;       // moved_cars / fleet size
  std::size_t drained = 0;       // queued requests moved off retiring shards
  std::string reason;            // breached/idle band that tipped the scaler
};

struct ServeReport {
  std::size_t requests = 0;         // arrivals offered to the service
  std::size_t completed = 0;        // served through the dynamic batcher
  std::size_t shed = 0;             // admission control -> per-sample edge
  std::size_t denied = 0;           // batched while the breaker was open
  std::size_t batches = 0;
  std::size_t cloud_batches = 0;
  std::size_t edge_batches = 0;
  std::size_t failover_batches = 0;  // cloud probe failed, edge took the batch
  double duration_s = 0.0;           // makespan: first arrival to last response
  double throughput_rps = 0.0;       // completed / duration_s

  // --- sharded-fleet attribution -----------------------------------------
  std::size_t shards = 1;        // PEAK worker slots over the run
  std::size_t shard_downs = 0;   // shard death verdicts across the run
  std::size_t shard_ups = 0;     // recoveries (re-admissions) across the run
  std::size_t rebalanced = 0;    // queued requests rerouted off dead shards

  // --- autoscaling --------------------------------------------------------
  std::size_t initial_shards = 1;  // workers at t = 0
  std::size_t final_shards = 1;    // active workers when the run drained
  std::size_t scale_ups = 0;
  std::size_t scale_downs = 0;
  /// Ring resizes in timeline order; empty when the autoscaler is off.
  std::vector<ScaleEvent> scale_events;
  /// Per-car shed counts (size = cars): who paid for saturation.
  std::vector<std::size_t> shed_by_car;
  /// Per-shard count of queued requests rerouted away when that shard
  /// died (size = shards): which site's loss forced how much churn.
  std::vector<std::size_t> failover_by_shard;
  /// Per-shard aggregates (size = shards).
  std::vector<ShardStats> shard_stats;

  /// Batch boundaries in dispatch order — the determinism fingerprint.
  std::vector<std::size_t> batch_sizes;
  /// Every finished request in completion order (shed ones included).
  std::vector<ServeRecord> records;
  /// Completed requests per model version (hot-swap visibility).
  std::map<std::uint64_t, std::size_t> requests_by_version;
  /// Breaker-observed degradation (cloud usage, failovers, denied calls).
  fault::DegradationStats degradation;

  double mean_batch() const;
  std::size_t max_batch() const;
  /// Quantile (0..1) of time spent waiting in the batcher, over completed
  /// (non-shed) requests; 0 when none completed.
  double queued_quantile_s(double q) const;
  /// Quantile of arrival-to-response time over all records.
  double total_quantile_s(double q) const;
  /// Mean |steering| over all predictions — evidence the batched forward
  /// actually ran through the model.
  double mean_abs_steering() const;

  /// Deterministic snapshot (aggregates + batch boundaries + quantiles;
  /// per-record data summarized, not dumped).
  util::Json to_json() const;
  /// One-line human-readable summary; equal runs produce equal strings.
  std::string summary() const;
};

}  // namespace autolearn::serve
