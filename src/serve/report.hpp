// Aggregate outcome of a fleet serving run.
//
// Deterministic for a fixed seed and arrival schedule: the batch-boundary
// vector and the JSON snapshot are byte-for-byte reproducible, which is
// what the serve determinism tests pin.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fault/report.hpp"
#include "serve/request.hpp"
#include "util/json.hpp"

namespace autolearn::serve {

struct ServeReport {
  std::size_t requests = 0;         // arrivals offered to the service
  std::size_t completed = 0;        // served through the dynamic batcher
  std::size_t shed = 0;             // admission control -> per-sample edge
  std::size_t denied = 0;           // batched while the breaker was open
  std::size_t batches = 0;
  std::size_t cloud_batches = 0;
  std::size_t edge_batches = 0;
  std::size_t failover_batches = 0;  // cloud probe failed, edge took the batch
  double duration_s = 0.0;           // makespan: first arrival to last response
  double throughput_rps = 0.0;       // completed / duration_s

  /// Batch boundaries in dispatch order — the determinism fingerprint.
  std::vector<std::size_t> batch_sizes;
  /// Every finished request in completion order (shed ones included).
  std::vector<ServeRecord> records;
  /// Completed requests per model version (hot-swap visibility).
  std::map<std::uint64_t, std::size_t> requests_by_version;
  /// Breaker-observed degradation (cloud usage, failovers, denied calls).
  fault::DegradationStats degradation;

  double mean_batch() const;
  std::size_t max_batch() const;
  /// Quantile (0..1) of time spent waiting in the batcher, over completed
  /// (non-shed) requests; 0 when none completed.
  double queued_quantile_s(double q) const;
  /// Quantile of arrival-to-response time over all records.
  double total_quantile_s(double q) const;
  /// Mean |steering| over all predictions — evidence the batched forward
  /// actually ran through the model.
  double mean_abs_steering() const;

  /// Deterministic snapshot (aggregates + batch boundaries + quantiles;
  /// per-record data summarized, not dumped).
  util::Json to_json() const;
  /// One-line human-readable summary; equal runs produce equal strings.
  std::string summary() const;
};

}  // namespace autolearn::serve
