// Fleet serving request/response records.
//
// The §3.3/§3.4 continuum models inference for exactly one car; the
// serving tier models a whole fleet hitting a shared inference service.
// A ServeRequest is one car's observation entering the service queue; a
// ServeRecord is the finished request with its full timing breakdown
// (queued -> batched -> executed), which tier answered it, and which model
// version produced the command.
#pragma once

#include <cstdint>

#include "ml/driving_model.hpp"

namespace autolearn::serve {

/// Which tier executed a request's batch.
enum class Tier { Edge, Cloud };

const char* to_string(Tier t);

/// Sentinel shard index for requests no shard worker owned (shed while
/// the whole fleet was down).
inline constexpr std::size_t kNoShard = static_cast<std::size_t>(-1);

/// One car's inference request, timestamped on the simulated clock.
struct ServeRequest {
  std::uint64_t id = 0;
  std::size_t car = 0;
  double t_arrive = 0.0;
  bool rerouted = false;  // moved off a dead shard by the failover path
  ml::Sample sample;
};

/// A finished request (completion order). Shed requests never queued: the
/// car's own edge tier answered per-sample, so t_dispatch == t_arrive and
/// batch == 1.
struct ServeRecord {
  std::uint64_t id = 0;
  std::size_t car = 0;
  std::size_t shard = 0;        // worker that answered (kNoShard when none)
  bool shed = false;            // bounced by admission control
  bool rerouted = false;        // answered by a failover target shard
  Tier tier = Tier::Edge;
  std::uint64_t model_version = 0;
  std::size_t batch = 1;        // size of the executed batch
  double t_arrive = 0.0;
  double t_dispatch = 0.0;      // batch formation time
  double t_done = 0.0;          // response delivered to the car
  ml::Prediction prediction;

  double queued_s() const { return t_dispatch - t_arrive; }
  double total_s() const { return t_done - t_arrive; }
};

}  // namespace autolearn::serve
