#include "serve/service.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "gpu/perf_model.hpp"

namespace autolearn::serve {

void FleetOptions::validate() const {
  if (cars == 0) throw std::invalid_argument("fleet: cars must be >= 1");
  if (duration_s <= 0.0) {
    throw std::invalid_argument("fleet: duration_s must be > 0");
  }
  if (mean_interarrival_s <= 0.0) {
    throw std::invalid_argument("fleet: mean_interarrival_s must be > 0");
  }
  if (queue_budget == 0) {
    throw std::invalid_argument("fleet: queue_budget must be >= 1");
  }
  if (img_w == 0 || img_h == 0) {
    throw std::invalid_argument("fleet: zero image dimension");
  }
  batcher.validate();
}

FleetService::FleetService(util::EventQueue& queue, ModelRegistry& registry,
                           FleetOptions options)
    : queue_(queue),
      registry_(registry),
      options_(std::move(options)),
      batcher_(options_.batcher),
      breaker_(options_.continuum.breaker),
      rng_(options_.seed) {
  options_.validate();
  car_rng_.reserve(options_.cars);
  for (std::size_t i = 0; i < options_.cars; ++i) {
    car_rng_.push_back(rng_.split());
  }
  jitter_rng_ = rng_.split();

  obs::Tracer* tracer = options_.continuum.tracer;
  obs::MetricsRegistry* metrics = options_.continuum.metrics;
  if (tracer || metrics) {
    breaker_.set_on_transition([this, tracer, metrics](
                                   fault::CircuitBreaker::State from,
                                   fault::CircuitBreaker::State to,
                                   double now) {
      if (to == fault::CircuitBreaker::State::Closed) {
        awaiting_recovery_ = true;
      }
      if (tracer) {
        util::Json args = util::Json::object();
        args.set("from", util::Json(fault::to_string(from)));
        args.set("to", util::Json(fault::to_string(to)));
        args.set("t", util::Json(now));
        tracer->instant("fault.breaker", "fault", std::move(args));
      }
      if (metrics) {
        metrics->counter("fault.breaker.transitions").inc();
        metrics
            ->counter(std::string("fault.breaker.to_") + fault::to_string(to))
            .inc();
      }
    });
  } else {
    breaker_.set_on_transition(
        [this](fault::CircuitBreaker::State, fault::CircuitBreaker::State to,
               double) {
          if (to == fault::CircuitBreaker::State::Closed) {
            awaiting_recovery_ = true;
          }
        });
  }
}

ServeReport FleetService::run() {
  if (ran_) throw std::logic_error("FleetService::run: call once");
  ran_ = true;
  if (registry_.empty()) {
    throw std::logic_error("FleetService::run: no model published");
  }

  for (std::size_t car = 0; car < options_.cars; ++car) {
    schedule_arrival(car);
  }
  queue_.run_until(options_.duration_s);

  // Arrival window closed: force-flush whatever the batcher still holds
  // (partial batches included) and drain in-flight work.
  draining_ = true;
  try_dispatch();
  queue_.run();

  const double makespan = queue_.now();
  report_.duration_s = makespan;
  report_.throughput_rps =
      makespan > 0.0 ? static_cast<double>(report_.completed) / makespan : 0.0;
  report_.degradation.cloud_usage =
      report_.records.empty()
          ? 0.0
          : static_cast<double>(cloud_requests_) /
                static_cast<double>(report_.records.size());
  report_.degradation.failovers = breaker_.times_opened();
  report_.degradation.denied_calls = denied_batches_;
  report_.degradation.degraded_time_s = breaker_.degraded_s(makespan);
  report_.degradation.recovery_latency_s = recovery_latency_s_;
  set_queue_gauge();
  return report_;
}

void FleetService::schedule_arrival(std::size_t car) {
  const double t =
      queue_.now() + car_rng_[car].exponential(options_.mean_interarrival_s);
  if (t >= options_.duration_s) return;
  queue_.schedule_at(t, [this, car] { on_arrival(car); });
}

void FleetService::on_arrival(std::size_t car) {
  const double now = queue_.now();
  const auto snapshot = registry_.current();
  ServeRequest request;
  request.id = next_id_++;
  request.car = car;
  request.t_arrive = now;
  request.sample = make_sample(car_rng_[car], *snapshot->model);

  ++report_.requests;
  obs::MetricsRegistry* metrics = options_.continuum.metrics;
  if (metrics) metrics->counter("serve.requests").inc();

  if (batcher_.pending() >= options_.queue_budget) {
    shed_request(std::move(request));
  } else {
    batcher_.push(std::move(request));
    set_queue_gauge();
    try_dispatch();
  }
  schedule_arrival(car);
}

void FleetService::shed_request(ServeRequest request) {
  const double now = queue_.now();
  const auto snapshot = registry_.current();
  ml::Prediction prediction;
  snapshot->model->predict_batch(&request.sample, 1, &prediction);

  // The car's own edge tier absorbs the overflow per-sample: degraded
  // latency amortization, never a dropped command.
  const gpu::DeviceSpec& edge = gpu::device(options_.continuum.edge_device);
  const double exec_s =
      gpu::inference_latency_s(edge, scaled_flops(*snapshot->model), 1);

  ServeRecord record;
  record.id = request.id;
  record.car = request.car;
  record.shed = true;
  record.tier = Tier::Edge;
  record.model_version = snapshot->version;
  record.batch = 1;
  record.t_arrive = request.t_arrive;
  record.t_dispatch = now;
  record.t_done = now + exec_s;
  record.prediction = prediction;

  obs::MetricsRegistry* metrics = options_.continuum.metrics;
  if (metrics) metrics->counter("serve.shed").inc();
  if (obs::Tracer* tracer = options_.continuum.tracer) {
    util::Json args = util::Json::object();
    args.set("car", util::Json(record.car));
    args.set("queue_depth", util::Json(batcher_.pending()));
    tracer->instant("serve.shed", "serve", std::move(args));
    util::Json span = util::Json::object();
    span.set("car", util::Json(record.car));
    span.set("shed", util::Json(true));
    span.set("tier", util::Json(to_string(record.tier)));
    span.set("version", util::Json(record.model_version));
    span.set("queued_s", util::Json(0.0));
    span.set("exec_s", util::Json(exec_s));
    tracer->complete("serve.request", "serve", record.t_arrive, record.t_done,
                     std::move(span));
  }
  queue_.schedule_at(record.t_done, [this, record] { deliver(record); });
}

void FleetService::try_dispatch() {
  while (!worker_busy_ && !batcher_.empty() &&
         (draining_ || batcher_.ready(queue_.now()))) {
    dispatch_batch();
  }
  if (!worker_busy_ && !draining_ && !batcher_.empty()) arm_deadline();
}

void FleetService::arm_deadline() {
  if (deadline_armed_) return;
  deadline_armed_ = true;
  const double t = std::max(queue_.now(), batcher_.deadline());
  queue_.schedule_at(t, [this] {
    deadline_armed_ = false;
    try_dispatch();
  });
}

void FleetService::dispatch_batch() {
  const double now = queue_.now();
  std::vector<ServeRequest> batch = batcher_.take();
  set_queue_gauge();
  const std::size_t n = batch.size();
  const auto snapshot = registry_.current();

  // One batched forward through the GEMM backbone — this is the whole
  // point of the batcher. Run it before pricing: conv layers size
  // themselves on the first forward, so flops_per_sample() is only
  // meaningful afterwards.
  std::vector<ml::Sample> samples;
  samples.reserve(n);
  for (ServeRequest& r : batch) samples.push_back(std::move(r.sample));
  std::vector<ml::Prediction> predictions(n);
  snapshot->model->predict_batch(samples.data(), n, predictions.data());

  const std::uint64_t flops = scaled_flops(*snapshot->model);
  const Tier tier = choose_tier(now, n, flops);
  const gpu::DeviceSpec& spec =
      gpu::device(tier == Tier::Cloud ? options_.continuum.cloud_device
                                      : options_.continuum.edge_device);
  const double exec_s = gpu::inference_latency_s(spec, flops, n);
  const double t_exec_done = now + exec_s;

  double rtt_s = 0.0;
  if (tier == Tier::Cloud) {
    rtt_s = options_.continuum.network_rtt_s;
    if (options_.continuum.rtt_jitter_s > 0.0) {
      rtt_s += jitter_rng_.normal(0.0, options_.continuum.rtt_jitter_s);
    }
    rtt_s = std::max(0.0, rtt_s);
  }
  const double t_done = t_exec_done + rtt_s;

  ++report_.batches;
  report_.batch_sizes.push_back(n);
  if (tier == Tier::Cloud) {
    ++report_.cloud_batches;
    cloud_requests_ += n;
  } else {
    ++report_.edge_batches;
  }

  obs::MetricsRegistry* metrics = options_.continuum.metrics;
  obs::Tracer* tracer = options_.continuum.tracer;
  if (metrics) {
    metrics->counter("serve.batches").inc();
    metrics->histogram("serve.batch_size", {1, 2, 4, 8, 16, 32, 64})
        .observe(static_cast<double>(n));
    metrics->histogram("serve.batch_exec_s").observe(exec_s);
  }
  if (tracer) {
    util::Json args = util::Json::object();
    args.set("size", util::Json(n));
    args.set("tier", util::Json(to_string(tier)));
    args.set("version", util::Json(snapshot->version));
    args.set("exec_s", util::Json(exec_s));
    tracer->complete("serve.batch", "serve", now, t_exec_done,
                     std::move(args));
  }

  for (std::size_t i = 0; i < n; ++i) {
    const ServeRequest& r = batch[i];
    ServeRecord record;
    record.id = r.id;
    record.car = r.car;
    record.shed = false;
    record.tier = tier;
    record.model_version = snapshot->version;
    record.batch = n;
    record.t_arrive = r.t_arrive;
    record.t_dispatch = now;
    record.t_done = t_done;
    record.prediction = predictions[i];

    const double queued_s = now - r.t_arrive;
    if (metrics) metrics->histogram("serve.queued_s").observe(queued_s);
    if (tracer) {
      util::Json span = util::Json::object();
      span.set("car", util::Json(record.car));
      span.set("shed", util::Json(false));
      span.set("tier", util::Json(to_string(tier)));
      span.set("version", util::Json(record.model_version));
      span.set("batch", util::Json(n));
      span.set("queued_s", util::Json(queued_s));
      span.set("exec_s", util::Json(exec_s));
      span.set("rtt_s", util::Json(rtt_s));
      tracer->complete("serve.request", "serve", record.t_arrive,
                       record.t_done, std::move(span));
    }
    queue_.schedule_at(t_done, [this, record] { deliver(record); });
  }

  worker_busy_ = true;
  queue_.schedule_at(t_exec_done, [this] {
    worker_busy_ = false;
    try_dispatch();
  });
}

Tier FleetService::choose_tier(double now, std::size_t batch,
                               std::uint64_t flops) {
  bool want_cloud = false;
  switch (options_.placement) {
    case core::Placement::OnDevice:
      want_cloud = false;
      break;
    case core::Placement::Cloud:
      want_cloud = true;
      break;
    case core::Placement::Hybrid: {
      // Per-batch cost gate on the same perf model the continuum uses:
      // ship only when RTT + cloud compute beats local compute.
      const double edge_s = gpu::inference_latency_s(
          gpu::device(options_.continuum.edge_device), flops, batch);
      const double cloud_s =
          options_.continuum.network_rtt_s +
          gpu::inference_latency_s(gpu::device(options_.continuum.cloud_device),
                                   flops, batch);
      want_cloud = cloud_s < edge_s;
      break;
    }
  }
  if (!want_cloud) return Tier::Edge;

  obs::MetricsRegistry* metrics = options_.continuum.metrics;
  if (!breaker_.allow(now)) {
    ++denied_batches_;
    report_.denied += batch;
    if (metrics) metrics->counter("serve.denied").inc(batch);
    return Tier::Edge;
  }
  const bool reachable = options_.continuum.cloud_probe
                             ? options_.continuum.cloud_probe(now)
                             : true;
  if (!reachable) {
    breaker_.record_failure(now);
    ++report_.failover_batches;
    if (metrics) metrics->counter("serve.failovers").inc();
    return Tier::Edge;
  }
  breaker_.record_success(now);
  if (awaiting_recovery_ && breaker_.last_closed_at() >= 0.0) {
    recovery_latency_s_ = now - breaker_.last_closed_at();
    awaiting_recovery_ = false;
  }
  return Tier::Cloud;
}

void FleetService::deliver(ServeRecord record) {
  if (record.shed) {
    ++report_.shed;
  } else {
    ++report_.completed;
  }
  ++report_.requests_by_version[record.model_version];
  report_.records.push_back(std::move(record));
}

void FleetService::set_queue_gauge() {
  if (obs::MetricsRegistry* metrics = options_.continuum.metrics) {
    metrics->gauge("serve.queue_depth")
        .set(static_cast<double>(batcher_.pending()));
  }
}

ml::Sample FleetService::make_sample(util::Rng& rng,
                                     const ml::DrivingModel& model) const {
  ml::Sample s;
  const std::size_t frames = std::max<std::size_t>(1, model.seq_len());
  s.frames.reserve(frames);
  for (std::size_t f = 0; f < frames; ++f) {
    s.frames.emplace_back(options_.img_w, options_.img_h,
                          static_cast<float>(rng.uniform(0.0, 1.0)));
  }
  for (std::size_t h = 0; h < model.history_len(); ++h) {
    s.history.push_back(static_cast<float>(rng.uniform(-1.0, 1.0)));
    s.history.push_back(0.5f);
  }
  return s;
}

std::uint64_t FleetService::scaled_flops(const ml::DrivingModel& model) const {
  // Call sites run a forward first: conv layers size lazily, so
  // flops_per_sample() only counts the full stack after one pass.
  return static_cast<std::uint64_t>(
      static_cast<double>(model.flops_per_sample()) *
      options_.continuum.flops_scale);
}

}  // namespace autolearn::serve
