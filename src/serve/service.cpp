#include "serve/service.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "gpu/perf_model.hpp"
#include "serve/errors.hpp"
#include "testbed/topology.hpp"

namespace autolearn::serve {
namespace {

/// Latency pricing must follow the published model's arithmetic: an int8
/// variant in the registry is billed at the device's int8 throughput.
gpu::Precision pricing_precision(const ml::DrivingModel& model) {
  return model.precision() == ml::Precision::Int8 ? gpu::Precision::Int8
                                                  : gpu::Precision::Fp32;
}

double p99(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double idx = 0.99 * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(idx));
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

}  // namespace

void FleetOptions::check(ConfigIssues& out) const {
  if (cars == 0) out.emplace_back("fleet.cars", "must be >= 1");
  if (duration_s <= 0.0) {
    out.emplace_back("fleet.duration_s", "must be > 0");
  }
  if (mean_interarrival_s <= 0.0) {
    out.emplace_back("fleet.mean_interarrival_s", "must be > 0");
  }
  if (queue_budget == 0) {
    out.emplace_back("fleet.queue_budget", "must be >= 1");
  }
  if (img_w == 0 || img_h == 0) {
    out.emplace_back("fleet.img", "zero image dimension");
  }
  if (shards == 0) out.emplace_back("fleet.shards", "must be >= 1");
  if (ring_replicas == 0) {
    out.emplace_back("fleet.ring_replicas", "must be >= 1");
  }
  for (const std::string& site : sites) {
    if (site.empty()) {
      out.emplace_back("fleet.sites", "empty site name");
      break;
    }
  }
  // Full load-spike sweep at validate() time: a NaN window or a
  // non-positive factor used to sail through here and only blow up when
  // run() scheduled the spike / set_load_factor rejected it mid-run.
  // Paths are indexed so a config with several spikes names the culprit.
  for (std::size_t i = 0; i < load_spikes.size(); ++i) {
    const LoadSpike& spike = load_spikes[i];
    const std::string path =
        "fleet.load_spikes[" + std::to_string(i) + "].";
    if (!std::isfinite(spike.at) || spike.at < 0.0) {
      out.emplace_back(path + "at", "must be finite and >= 0");
    }
    if (!std::isfinite(spike.duration) || spike.duration < 0.0) {
      out.emplace_back(path + "duration", "must be finite and >= 0");
    }
    if (!std::isfinite(spike.factor) || spike.factor <= 0.0) {
      out.emplace_back(path + "factor", "must be finite and > 0");
    }
    if (std::isfinite(spike.at) && std::isfinite(spike.duration) &&
        spike.duration > 0.0 && spike.at + spike.duration <= spike.at) {
      // Inverted/degenerate window: the restore-to-1 event would be
      // scheduled at or before the spike itself.
      out.emplace_back(path + "duration", "window ends before it starts");
    }
  }
  if (autoscaler.enabled && shards != 0 &&
      (shards < autoscaler.min_shards || shards > autoscaler.max_shards)) {
    out.emplace_back("fleet.shards",
                     "starting shard count outside the autoscaler clamp [" +
                         std::to_string(autoscaler.min_shards) + ", " +
                         std::to_string(autoscaler.max_shards) + "]");
  }
  health.check(out);
  batcher.check(out);
  autoscaler.check(out);
}

void FleetOptions::validate() const {
  ConfigIssues issues;
  check(issues);
  if (!issues.empty()) throw issues.front();
}

FleetService::FleetService(util::EventQueue& queue, ModelRegistry& registry,
                           FleetOptions options)
    : queue_(queue), options_(std::move(options)) {
  options_.validate();
  base_registry_ = &registry;
  // Unreplicated mode: every shard reads the same registry.
  init(std::vector<ModelRegistry*>(options_.shards, &registry));
}

FleetService::FleetService(util::EventQueue& queue,
                           ReplicatedRegistry& registry, FleetOptions options)
    : queue_(queue), options_(std::move(options)) {
  options_.validate();
  if (registry.shards() < options_.shards) {
    throw ConfigError("fleet.shards",
                      "replicated registry has " +
                          std::to_string(registry.shards()) +
                          " replicas, options ask for " +
                          std::to_string(options_.shards));
  }
  replicated_ = &registry;
  std::vector<ModelRegistry*> registries;
  registries.reserve(options_.shards);
  for (std::size_t i = 0; i < options_.shards; ++i) {
    registries.push_back(&registry.shard(i));
  }
  init(std::move(registries));
}

void FleetService::init(std::vector<ModelRegistry*> registries) {
  ShardRouterConfig rcfg;
  rcfg.shards = options_.shards;
  rcfg.replicas = options_.ring_replicas;
  rcfg.salt = hash_mix(options_.seed);
  router_ = ShardRouter(rcfg);

  rng_ = util::Rng(options_.seed);
  car_rng_.reserve(options_.cars);
  for (std::size_t i = 0; i < options_.cars; ++i) {
    car_rng_.push_back(rng_.split());
  }

  sites_ = options_.sites.empty()
               ? testbed::shard_sites(std::max(
                     options_.shards, options_.autoscaler.enabled
                                          ? options_.autoscaler.max_shards
                                          : options_.shards))
               : options_.sites;

  shards_.resize(options_.shards);
  for (std::size_t s = 0; s < options_.shards; ++s) {
    Shard& shard = shards_[s];
    shard.site = sites_[s % sites_.size()];
    shard.registry = registries[s];
    shard.batcher = std::make_unique<DynamicBatcher>(options_.batcher);
    shard.breaker =
        std::make_unique<fault::CircuitBreaker>(options_.continuum.breaker);
    shard.jitter_rng = rng_.split();
    wire_breaker(s);
  }
  active_shards_ = options_.shards;

  if (options_.compile_plans) {
    // Unreplicated mode aliases one registry across every shard — enable
    // plans once per distinct registry. Models published later compile at
    // publish() time; an already-published model compiles right here.
    if (replicated_) {
      // Covers idle replicas too, so a scale-up past options_.shards
      // serves a compiled model from its first batch.
      replicated_->set_plan_batch(options_.batcher.max_batch);
    } else {
      base_registry_->set_plan_batch(options_.batcher.max_batch);
    }
  }

  obs::Tracer* tracer = options_.continuum.tracer;
  obs::MetricsRegistry* metrics = options_.continuum.metrics;
  if (options_.site_probe) {
    health_ = std::make_unique<HealthMonitor>(queue_, options_.health);
    for (const Shard& shard : shards_) health_->add_shard(shard.site);
    health_->set_probe(options_.site_probe);
    health_->set_on_down([this](std::size_t s) { on_shard_down(s); });
    health_->set_on_up([this](std::size_t s) { on_shard_up(s); });
    health_->instrument(tracer, metrics);
  }

  if (options_.autoscaler.enabled) {
    scaler_ = std::make_unique<AutoScaler>(queue_, options_.autoscaler);
    scaler_->set_sampler([this](double now) { return sample_signals(now); });
    scaler_->set_resizer(
        [this](std::size_t target, double, const std::string& reason) {
          return resize(target, reason);
        });
    scaler_->instrument(tracer, metrics);
  }

  report_.shards = options_.shards;
  report_.initial_shards = options_.shards;
  report_.final_shards = options_.shards;
  report_.shed_by_car.assign(options_.cars, 0);
  report_.failover_by_shard.assign(options_.shards, 0);
  report_.shard_stats.resize(options_.shards);
  for (std::size_t s = 0; s < options_.shards; ++s) {
    report_.shard_stats[s].site = shards_[s].site;
  }
}

void FleetService::wire_breaker(std::size_t s) {
  obs::Tracer* tracer = options_.continuum.tracer;
  obs::MetricsRegistry* metrics = options_.continuum.metrics;
  shards_[s].breaker->set_on_transition([this, s, tracer, metrics](
                                            fault::CircuitBreaker::State from,
                                            fault::CircuitBreaker::State to,
                                            double now) {
    if (to == fault::CircuitBreaker::State::Closed) {
      shards_[s].awaiting_recovery = true;
    }
    if (tracer) {
      util::Json args = util::Json::object();
      args.set("from", util::Json(fault::to_string(from)));
      args.set("to", util::Json(fault::to_string(to)));
      args.set("t", util::Json(now));
      args.set("shard", util::Json(s));
      tracer->instant("fault.breaker", "fault", std::move(args));
    }
    if (metrics) {
      metrics->counter("fault.breaker.transitions").inc();
      metrics
          ->counter(std::string("fault.breaker.to_") + fault::to_string(to))
          .inc();
    }
  });
}

const fault::CircuitBreaker& FleetService::breaker(std::size_t shard) const {
  if (shard >= shards_.size()) {
    throw std::out_of_range("FleetService::breaker: bad shard index");
  }
  return *shards_[shard].breaker;
}

ServeReport FleetService::run() {
  if (ran_) throw std::logic_error("FleetService::run: call once");
  ran_ = true;
  for (const Shard& shard : shards_) {
    if (shard.registry->empty()) {
      throw std::logic_error("FleetService::run: no model published");
    }
  }

  if (health_) health_->start(options_.duration_s);
  if (scaler_) scaler_->start(options_.duration_s);
  for (const LoadSpike& spike : options_.load_spikes) {
    queue_.schedule_at(spike.at,
                       [this, spike] { set_load_factor(spike.factor); });
    if (spike.duration > 0.0) {
      queue_.schedule_at(spike.at + spike.duration,
                         [this] { set_load_factor(1.0); });
    }
  }
  for (std::size_t car = 0; car < options_.cars; ++car) {
    schedule_arrival(car);
  }
  queue_.run_until(options_.duration_s);

  // Arrival window closed: force-flush whatever the batchers still hold
  // (partial batches included) and drain in-flight work.
  draining_ = true;
  for (std::size_t s = 0; s < shards_.size(); ++s) try_dispatch(s);
  queue_.run();

  const double makespan = queue_.now();
  report_.duration_s = makespan;
  report_.throughput_rps =
      makespan > 0.0 ? static_cast<double>(report_.completed) / makespan : 0.0;
  std::size_t cloud_requests = 0;
  std::size_t denied_batches = 0;
  std::size_t failovers = 0;
  double degraded_s = 0.0;
  double recovery_s = 0.0;
  for (const Shard& shard : shards_) {
    cloud_requests += shard.cloud_requests;
    denied_batches += shard.denied_batches;
    failovers += shard.breaker->times_opened();
    degraded_s += shard.breaker->degraded_s(makespan);
    recovery_s += shard.recovery_latency_s;
  }
  report_.degradation.cloud_usage =
      report_.records.empty()
          ? 0.0
          : static_cast<double>(cloud_requests) /
                static_cast<double>(report_.records.size());
  report_.degradation.failovers = failovers;
  report_.degradation.denied_calls = denied_batches;
  report_.degradation.degraded_time_s = degraded_s;
  report_.degradation.recovery_latency_s = recovery_s;
  if (health_) {
    report_.shard_downs = health_->downs();
    report_.shard_ups = health_->ups();
  }
  report_.shards = shards_.size();  // peak slots over the run
  report_.final_shards = active_shards_;
  set_queue_gauge(0);
  return report_;
}

void FleetService::set_load_factor(double factor) {
  if (factor <= 0.0 || !std::isfinite(factor)) {
    throw std::invalid_argument(
        "FleetService::set_load_factor: factor must be finite and > 0");
  }
  load_factor_ = factor;
  if (obs::MetricsRegistry* metrics = options_.continuum.metrics) {
    metrics->gauge("serve.load_factor").set(factor);
  }
}

ScaleSignals FleetService::sample_signals(double now) {
  ScaleSignals s;
  s.active_shards = active_shards_;
  std::size_t live = 0;
  std::size_t busy = 0;
  double queue_sum = 0.0;
  for (std::size_t i = 0; i < active_shards_; ++i) {
    if (!router_.alive(i)) continue;
    ++live;
    if (shards_[i].busy) ++busy;
    const double depth = static_cast<double>(shards_[i].batcher->pending());
    queue_sum += depth;
    s.max_queue_depth = std::max(s.max_queue_depth, depth);
  }
  s.live_shards = live;
  s.mean_queue_depth = live > 0 ? queue_sum / static_cast<double>(live) : 0.0;
  s.queue_budget = static_cast<double>(options_.queue_budget);
  s.p99_s = p99(std::move(window_queued_));
  s.shed_rate = window_arrivals_ > 0
                    ? static_cast<double>(window_sheds_) /
                          static_cast<double>(window_arrivals_)
                    : 0.0;
  s.utilization = live > 0
                      ? static_cast<double>(busy) / static_cast<double>(live)
                      : 0.0;
  s.arrivals = window_arrivals_;
  window_queued_.clear();
  window_sheds_ = 0;
  window_arrivals_ = 0;
  (void)now;
  return s;
}

void FleetService::admit_shard(std::size_t s, double now) {
  const bool fresh = s >= shards_.size();
  if (fresh) {
    shards_.emplace_back();
    Shard& shard = shards_.back();
    shard.site = sites_[s % sites_.size()];
    shard.batcher = std::make_unique<DynamicBatcher>(options_.batcher);
    shard.breaker =
        std::make_unique<fault::CircuitBreaker>(options_.continuum.breaker);
    shard.jitter_rng = rng_.split();
    wire_breaker(s);
    report_.failover_by_shard.push_back(0);
    report_.shard_stats.emplace_back();
    report_.shard_stats[s].site = shard.site;
  }
  Shard& shard = shards_[s];
  shard.retired = false;
  report_.shard_stats[s].admitted_at = now;
  report_.shard_stats[s].retired_at = -1.0;

  // Level the model BEFORE the shard can attract traffic: the newcomer
  // serves the incumbent snapshot — compiled plan included — from its
  // first batch.
  if (replicated_) {
    if (s < replicated_->shards()) {
      replicated_->level_replica(s);
    } else if (replicated_->add_replica() != s) {
      throw std::logic_error("FleetService::admit_shard: replica index skew");
    }
    shard.registry = &replicated_->shard(s);
  } else {
    shard.registry = base_registry_;
  }

  // A shard scaled onto a still-dark site joins DEAD: it must not attract
  // cars for a sweep interval while its heartbeats are already missing.
  const bool alive_now = health_ ? site_reachable(s, now) : true;
  if (health_) {
    if (s < health_->shard_count()) {
      health_->readmit(s, alive_now);
    } else {
      health_->add_shard(shard.site);
      if (!alive_now) health_->readmit(s, false);
    }
  }
  router_.set_alive(s, alive_now);
}

void FleetService::reroute(ServeRequest request,
                           std::vector<bool>& touched) {
  request.rerouted = true;
  if (!router_.any_alive()) {
    shed_request(std::move(request), kNoShard);
    return;
  }
  const std::size_t target = router_.shard_for(request.car);
  if (shards_[target].batcher->pending() >= options_.queue_budget) {
    shed_request(std::move(request), target);
  } else {
    shards_[target].batcher->push(std::move(request));
    ++report_.shard_stats[target].rerouted_in;
    touched[target] = true;
  }
}

bool FleetService::resize(std::size_t target, const std::string& reason) {
  if (target == 0) {
    throw ConfigError("fleet.shards", "resize target must be >= 1");
  }
  if (target == active_shards_ || draining_) return false;
  const double now = queue_.now();
  const std::size_t from = active_shards_;
  const bool up = target > from;

  const bool churn_known = router_.any_alive();
  std::vector<std::size_t> before;
  if (churn_known) before = router_.mapping(options_.cars);

  std::size_t drained = 0;
  if (up) {
    for (std::size_t s = from; s < target; ++s) {
      // Router first so set_alive() in admit_shard sees the slot.
      router_.resize(s + 1);
      admit_shard(s, now);
    }
  } else {
    // Drain the retiring slots' queues BEFORE the ring forgets them, then
    // reroute each orphan through the shrunken ring.
    std::vector<ServeRequest> orphans;
    for (std::size_t s = target; s < from; ++s) {
      Shard& shard = shards_[s];
      std::vector<ServeRequest> mine = shard.batcher->drain();
      drained += mine.size();
      for (ServeRequest& r : mine) orphans.push_back(std::move(r));
      shard.retired = true;
      report_.shard_stats[s].retired_at = now;
      if (health_) health_->retire(s);
    }
    router_.resize(target);
    std::vector<bool> touched(shards_.size(), false);
    for (ServeRequest& r : orphans) reroute(std::move(r), touched);
    for (std::size_t t = 0; t < shards_.size(); ++t) {
      if (touched[t]) {
        set_queue_gauge(t);
        try_dispatch(t);
      }
    }
  }
  active_shards_ = target;

  // Bounded-churn invariant (always on): a grow moves cars only TO the
  // admitted shards, a shrink moves only the retired shards' cars. The
  // statistical |to-from|/max bound lives in the tests; this structural
  // half holds for every fleet size and even under partitions.
  std::size_t moved = 0;
  if (churn_known && router_.any_alive()) {
    const std::vector<std::size_t> after = router_.mapping(options_.cars);
    for (std::size_t car = 0; car < options_.cars; ++car) {
      if (before[car] == after[car]) continue;
      ++moved;
      if (up && after[car] < from) {
        throw std::logic_error(
            "FleetService::resize: grow moved a car between incumbents");
      }
      if (!up && before[car] < target) {
        throw std::logic_error(
            "FleetService::resize: shrink moved a surviving shard's car");
      }
    }
  }

  ScaleEvent event;
  event.t = now;
  event.up = up;
  event.from_shards = from;
  event.to_shards = target;
  event.moved_cars = moved;
  event.churn_frac =
      options_.cars > 0
          ? static_cast<double>(moved) / static_cast<double>(options_.cars)
          : 0.0;
  event.drained = drained;
  event.reason = reason;
  report_.scale_events.push_back(event);
  if (up) {
    ++report_.scale_ups;
  } else {
    ++report_.scale_downs;
  }

  obs::MetricsRegistry* metrics = options_.continuum.metrics;
  obs::Tracer* tracer = options_.continuum.tracer;
  if (metrics) {
    metrics->gauge("serve.shards").set(static_cast<double>(target));
  }
  if (tracer) {
    util::Json args = util::Json::object();
    args.set("dir", util::Json(std::string(up ? "up" : "down")));
    args.set("from", util::Json(from));
    args.set("to", util::Json(target));
    args.set("moved_cars", util::Json(moved));
    args.set("drained", util::Json(drained));
    args.set("reason", util::Json(reason));
    tracer->instant("serve.resize", "serve", std::move(args));
  }
  return true;
}

void FleetService::schedule_arrival(std::size_t car) {
  const double t = queue_.now() + car_rng_[car].exponential(
                                      options_.mean_interarrival_s /
                                      load_factor_);
  if (t >= options_.duration_s) return;
  queue_.schedule_at(t, [this, car] { on_arrival(car); });
}

void FleetService::on_arrival(std::size_t car) {
  const double now = queue_.now();
  // Any registry works for sampling geometry; route first so the sample
  // is drawn against the owning shard's served model.
  ++report_.requests;
  ++window_arrivals_;
  obs::MetricsRegistry* metrics = options_.continuum.metrics;
  if (metrics) metrics->counter("serve.requests").inc();

  if (!router_.any_alive()) {
    // Whole fleet dark (every site partitioned): the car's own edge tier
    // answers — degraded, never an error.
    ServeRequest request;
    request.id = next_id_++;
    request.car = car;
    request.t_arrive = now;
    request.sample = make_sample(car_rng_[car], *shards_[0].registry
                                                     ->current()
                                                     ->model);
    shed_request(std::move(request), kNoShard);
    schedule_arrival(car);
    return;
  }

  const std::size_t s = router_.shard_for(car);
  Shard& shard = shards_[s];
  ++report_.shard_stats[s].requests;
  const auto snapshot = shard.registry->current();
  ServeRequest request;
  request.id = next_id_++;
  request.car = car;
  request.t_arrive = now;
  request.sample = make_sample(car_rng_[car], *snapshot->model);

  if (shard.batcher->pending() >= options_.queue_budget) {
    shed_request(std::move(request), s);
  } else {
    shard.batcher->push(std::move(request));
    set_queue_gauge(s);
    try_dispatch(s);
  }
  schedule_arrival(car);
}

void FleetService::shed_request(ServeRequest request, std::size_t shard) {
  const double now = queue_.now();
  ++window_sheds_;
  ModelRegistry* registry =
      shard == kNoShard ? shards_[0].registry : shards_[shard].registry;
  const auto snapshot = registry->current();
  ml::Prediction prediction;
  snapshot->model->predict_batch(&request.sample, 1, &prediction);

  // The car's own edge tier absorbs the overflow per-sample: degraded
  // latency amortization, never a dropped command.
  const gpu::DeviceSpec& edge = gpu::device(options_.continuum.edge_device);
  const double exec_s =
      gpu::inference_latency_s(edge, scaled_flops(*snapshot->model), 1,
                               pricing_precision(*snapshot->model));

  ServeRecord record;
  record.id = request.id;
  record.car = request.car;
  record.shard = shard;
  record.shed = true;
  record.rerouted = request.rerouted;
  record.tier = Tier::Edge;
  record.model_version = snapshot->version;
  record.batch = 1;
  record.t_arrive = request.t_arrive;
  record.t_dispatch = now;
  record.t_done = now + exec_s;
  record.prediction = prediction;

  obs::MetricsRegistry* metrics = options_.continuum.metrics;
  if (metrics) metrics->counter("serve.shed").inc();
  if (obs::Tracer* tracer = options_.continuum.tracer) {
    const std::size_t depth =
        shard == kNoShard ? 0 : shards_[shard].batcher->pending();
    util::Json args = util::Json::object();
    args.set("car", util::Json(record.car));
    args.set("queue_depth", util::Json(depth));
    tracer->instant("serve.shed", "serve", std::move(args));
    util::Json span = util::Json::object();
    span.set("car", util::Json(record.car));
    span.set("shed", util::Json(true));
    span.set("tier", util::Json(to_string(record.tier)));
    span.set("version", util::Json(record.model_version));
    span.set("queued_s", util::Json(0.0));
    span.set("exec_s", util::Json(exec_s));
    tracer->complete("serve.request", "serve", record.t_arrive, record.t_done,
                     std::move(span));
  }
  queue_.schedule_at(record.t_done, [this, record] { deliver(record); });
}

void FleetService::try_dispatch(std::size_t s) {
  Shard& shard = shards_[s];
  // A retired slot's queue was drained at retirement; late callbacks
  // (deadline, batch completion) land here and must not revive it.
  if (shard.retired) return;
  while (!shard.busy && !shard.batcher->empty() &&
         (draining_ || shard.batcher->ready(queue_.now()))) {
    dispatch_batch(s);
  }
  if (!shard.busy && !draining_ && !shard.batcher->empty()) arm_deadline(s);
}

void FleetService::arm_deadline(std::size_t s) {
  Shard& shard = shards_[s];
  if (shard.deadline_armed) return;
  shard.deadline_armed = true;
  const double t = std::max(queue_.now(), shard.batcher->deadline());
  queue_.schedule_at(t, [this, s] {
    shards_[s].deadline_armed = false;
    try_dispatch(s);
  });
}

void FleetService::dispatch_batch(std::size_t s) {
  Shard& shard = shards_[s];
  const double now = queue_.now();
  std::vector<ServeRequest> batch = shard.batcher->take();
  set_queue_gauge(s);
  const std::size_t n = batch.size();
  const auto snapshot = shard.registry->current();

  // One batched forward through the GEMM backbone — this is the whole
  // point of the batcher. Run it before pricing: conv layers size
  // themselves on the first forward, so flops_per_sample() is only
  // meaningful afterwards.
  std::vector<ml::Sample> samples;
  samples.reserve(n);
  for (ServeRequest& r : batch) samples.push_back(std::move(r.sample));
  std::vector<ml::Prediction> predictions(n);
  snapshot->model->predict_batch(samples.data(), n, predictions.data());

  const std::uint64_t flops = scaled_flops(*snapshot->model);
  const gpu::Precision precision = pricing_precision(*snapshot->model);
  const Tier tier = choose_tier(s, now, n, flops, precision);
  const gpu::DeviceSpec& spec =
      gpu::device(tier == Tier::Cloud ? options_.continuum.cloud_device
                                      : options_.continuum.edge_device);
  const double exec_s = gpu::inference_latency_s(spec, flops, n, precision);
  const double t_exec_done = now + exec_s;

  double rtt_s = 0.0;
  if (tier == Tier::Cloud) {
    rtt_s = options_.continuum.network_rtt_s;
    if (options_.continuum.rtt_jitter_s > 0.0) {
      rtt_s += shard.jitter_rng.normal(0.0, options_.continuum.rtt_jitter_s);
    }
    rtt_s = std::max(0.0, rtt_s);
  }
  const double t_done = t_exec_done + rtt_s;

  ++report_.batches;
  ++report_.shard_stats[s].batches;
  report_.batch_sizes.push_back(n);
  if (tier == Tier::Cloud) {
    ++report_.cloud_batches;
    shard.cloud_requests += n;
  } else {
    ++report_.edge_batches;
  }

  obs::MetricsRegistry* metrics = options_.continuum.metrics;
  obs::Tracer* tracer = options_.continuum.tracer;
  if (metrics) {
    metrics->counter("serve.batches").inc();
    metrics->counter("serve.shard." + std::to_string(s) + ".batches").inc();
    metrics->histogram("serve.batch_size", {1, 2, 4, 8, 16, 32, 64})
        .observe(static_cast<double>(n));
    metrics->histogram("serve.batch_exec_s").observe(exec_s);
  }
  if (tracer) {
    util::Json args = util::Json::object();
    args.set("size", util::Json(n));
    args.set("tier", util::Json(to_string(tier)));
    args.set("version", util::Json(snapshot->version));
    args.set("exec_s", util::Json(exec_s));
    args.set("shard", util::Json(s));
    tracer->complete("serve.batch", "serve", now, t_exec_done,
                     std::move(args));
  }

  for (std::size_t i = 0; i < n; ++i) {
    const ServeRequest& r = batch[i];
    ServeRecord record;
    record.id = r.id;
    record.car = r.car;
    record.shard = s;
    record.shed = false;
    record.rerouted = r.rerouted;
    record.tier = tier;
    record.model_version = snapshot->version;
    record.batch = n;
    record.t_arrive = r.t_arrive;
    record.t_dispatch = now;
    record.t_done = t_done;
    record.prediction = predictions[i];

    const double queued_s = now - r.t_arrive;
    window_queued_.push_back(queued_s);
    if (metrics) metrics->histogram("serve.queued_s").observe(queued_s);
    if (tracer) {
      util::Json span = util::Json::object();
      span.set("car", util::Json(record.car));
      span.set("shed", util::Json(false));
      span.set("tier", util::Json(to_string(tier)));
      span.set("version", util::Json(record.model_version));
      span.set("batch", util::Json(n));
      span.set("queued_s", util::Json(queued_s));
      span.set("exec_s", util::Json(exec_s));
      span.set("rtt_s", util::Json(rtt_s));
      span.set("shard", util::Json(s));
      tracer->complete("serve.request", "serve", record.t_arrive,
                       record.t_done, std::move(span));
    }
    queue_.schedule_at(t_done, [this, record] { deliver(record); });
  }

  shard.busy = true;
  queue_.schedule_at(t_exec_done, [this, s] {
    shards_[s].busy = false;
    try_dispatch(s);
  });
}

Tier FleetService::choose_tier(std::size_t s, double now, std::size_t batch,
                               std::uint64_t flops,
                               gpu::Precision precision) {
  Shard& shard = shards_[s];
  bool want_cloud = false;
  switch (options_.placement) {
    case core::Placement::OnDevice:
      want_cloud = false;
      break;
    case core::Placement::Cloud:
      want_cloud = true;
      break;
    case core::Placement::Hybrid: {
      // Per-batch cost gate on the same perf model the continuum uses:
      // ship only when RTT + cloud compute beats local compute.
      const double edge_s = gpu::inference_latency_s(
          gpu::device(options_.continuum.edge_device), flops, batch,
          precision);
      const double cloud_s =
          options_.continuum.network_rtt_s +
          gpu::inference_latency_s(gpu::device(options_.continuum.cloud_device),
                                   flops, batch, precision);
      want_cloud = cloud_s < edge_s;
      break;
    }
  }
  if (!want_cloud) return Tier::Edge;

  obs::MetricsRegistry* metrics = options_.continuum.metrics;
  if (!shard.breaker->allow(now)) {
    ++shard.denied_batches;
    report_.denied += batch;
    report_.shard_stats[s].denied += batch;
    if (metrics) metrics->counter("serve.denied").inc(batch);
    return Tier::Edge;
  }
  if (!site_reachable(s, now)) {
    shard.breaker->record_failure(now);
    ++report_.failover_batches;
    if (metrics) metrics->counter("serve.failovers").inc();
    return Tier::Edge;
  }
  shard.breaker->record_success(now);
  if (shard.awaiting_recovery && shard.breaker->last_closed_at() >= 0.0) {
    shard.recovery_latency_s = now - shard.breaker->last_closed_at();
    shard.awaiting_recovery = false;
  }
  return Tier::Cloud;
}

bool FleetService::site_reachable(std::size_t s, double now) const {
  if (options_.site_probe) return options_.site_probe(shards_[s].site, now);
  if (options_.continuum.cloud_probe) {
    return options_.continuum.cloud_probe(now);
  }
  return true;
}

void FleetService::on_shard_down(std::size_t s) {
  router_.set_alive(s, false);
  ++report_.shard_stats[s].downs;

  // Reroute the dead shard's queue to the survivors. Consistent hashing
  // bounds the churn: only this shard's cars move, everyone else keeps
  // their worker. An executing batch completes — its responses are
  // already in flight back to the cars.
  std::vector<ServeRequest> orphans = shards_[s].batcher->drain();
  set_queue_gauge(s);
  if (orphans.empty()) return;

  obs::MetricsRegistry* metrics = options_.continuum.metrics;
  obs::Tracer* tracer = options_.continuum.tracer;
  if (metrics) {
    metrics->counter("serve.failover.rerouted").inc(orphans.size());
  }
  if (tracer) {
    util::Json args = util::Json::object();
    args.set("shard", util::Json(s));
    args.set("site", util::Json(shards_[s].site));
    args.set("rerouted", util::Json(orphans.size()));
    tracer->instant("serve.failover", "serve", std::move(args));
  }

  report_.rebalanced += orphans.size();
  report_.failover_by_shard[s] += orphans.size();
  report_.shard_stats[s].failed_over += orphans.size();

  std::vector<bool> touched(shards_.size(), false);
  for (ServeRequest& r : orphans) reroute(std::move(r), touched);
  for (std::size_t t = 0; t < shards_.size(); ++t) {
    if (touched[t]) {
      set_queue_gauge(t);
      try_dispatch(t);
    }
  }
}

void FleetService::on_shard_up(std::size_t s) {
  // Re-admit the shard: exactly its original cars route back to it on
  // their next arrival (consistent hashing again bounds the churn).
  router_.set_alive(s, true);
}

void FleetService::deliver(ServeRecord record) {
  if (record.shed) {
    ++report_.shed;
    ++report_.shed_by_car[record.car];
    if (record.shard != kNoShard) ++report_.shard_stats[record.shard].shed;
  } else {
    ++report_.completed;
    ++report_.shard_stats[record.shard].completed;
  }
  ++report_.requests_by_version[record.model_version];
  report_.records.push_back(std::move(record));
}

void FleetService::set_queue_gauge(std::size_t s) {
  obs::MetricsRegistry* metrics = options_.continuum.metrics;
  if (!metrics) return;
  std::size_t total = 0;
  for (const Shard& shard : shards_) total += shard.batcher->pending();
  metrics->gauge("serve.queue_depth").set(static_cast<double>(total));
  if (shards_.size() > 1) {
    metrics->gauge("serve.shard." + std::to_string(s) + ".queue_depth")
        .set(static_cast<double>(shards_[s].batcher->pending()));
  }
}

ml::Sample FleetService::make_sample(util::Rng& rng,
                                     const ml::DrivingModel& model) const {
  ml::Sample s;
  const std::size_t frames = std::max<std::size_t>(1, model.seq_len());
  s.frames.reserve(frames);
  for (std::size_t f = 0; f < frames; ++f) {
    s.frames.emplace_back(options_.img_w, options_.img_h,
                          static_cast<float>(rng.uniform(0.0, 1.0)));
  }
  for (std::size_t h = 0; h < model.history_len(); ++h) {
    s.history.push_back(static_cast<float>(rng.uniform(-1.0, 1.0)));
    s.history.push_back(0.5f);
  }
  return s;
}

std::uint64_t FleetService::scaled_flops(const ml::DrivingModel& model) const {
  // Call sites run a forward first: conv layers size lazily, so
  // flops_per_sample() only counts the full stack after one pass.
  return static_cast<std::uint64_t>(
      static_cast<double>(model.flops_per_sample()) *
      options_.continuum.flops_scale);
}

}  // namespace autolearn::serve
