// Geo-sharded fleet inference service on the simulated clock.
//
// N cars emit observations with exponential interarrival times; a
// consistent-hash ShardRouter assigns each car to one of `shards` shard
// workers, each pinned to a testbed:: topology site and running its own
// DynamicBatcher behind its own fault::CircuitBreaker. Each worker forms
// batches (flush on cap or age-out) and executes each batch as ONE
// predict_batch call through the GEMM backbone, priced by the
// gpu::perf_model batched latency. Placement semantics mirror
// core::Continuum:
//
//   OnDevice  every batch runs on the edge device spec
//   Cloud     batches ship to the shard's site; responses pay RTT+jitter;
//             the shard's breaker guards the site — denied or
//             probe-failed batches fail over to the edge spec
//   Hybrid    per-batch cost gate: the cheaper of edge vs RTT+cloud wins
//             (cloud still behind the breaker)
//
// Failure tolerance: a HealthMonitor heartbeats every shard's site on the
// virtual clock (wire `site_probe` to a chaos-partitioned net::Network).
// A shard whose site stays unreachable past the health timeout is
// declared dead: its queued requests are rerouted to surviving shards
// (bounded churn — consistent hashing moves only the dead shard's cars)
// and its future arrivals route around it; when the site heals, exactly
// those cars return. A batch already executing when its shard dies
// completes (its responses are modeled as already in flight).
//
// Admission control: when a car's shard already holds queue_budget
// requests — or no shard is alive at all — the arrival is shed and the
// car's own edge tier answers it per-sample (graceful degradation, never
// an error). Everything runs on one util::EventQueue with per-car and
// per-shard Rng splits, so a seed pins the arrival schedule, the batch
// boundaries, the failover timeline, and the whole ServeReport
// bit-for-bit — including runs with chaos-injected site partitions.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/continuum.hpp"
#include "serve/batcher.hpp"
#include "serve/health.hpp"
#include "serve/model_registry.hpp"
#include "serve/replication.hpp"
#include "serve/report.hpp"
#include "serve/shard_router.hpp"
#include "util/event_queue.hpp"
#include "util/rng.hpp"

namespace autolearn::serve {

struct FleetOptions {
  std::size_t cars = 8;
  double duration_s = 10.0;            // arrival window (virtual seconds)
  double mean_interarrival_s = 0.1;    // per car, exponential
  BatcherConfig batcher;
  core::Placement placement = core::Placement::Cloud;
  /// Device specs, RTT/jitter, flops_scale, breaker config, cloud_probe,
  /// and the tracer/metrics sinks all come from here — the serving tier
  /// reuses the continuum's cost model wholesale.
  core::ContinuumOptions continuum;
  /// Admission control, per shard: arrivals finding this many requests
  /// pending at their shard are shed to per-sample edge execution.
  std::size_t queue_budget = 64;
  /// Observation geometry for synthetic fleet frames; must match the
  /// served model's input (ml::ModelConfig defaults).
  std::size_t img_w = 32;
  std::size_t img_h = 24;
  std::uint64_t seed = 1;
  /// Graph-compile served models for the batcher's max_batch cap
  /// (registry.set_plan_batch): steady-state inference runs the static
  /// arena plan with zero per-batch heap allocation. Off = interpreted
  /// per-layer path (the pre-plan behavior, used by the bench A/B).
  bool compile_plans = true;

  // --- sharding ------------------------------------------------------------
  /// Shard workers the fleet is spread over (1 = the pre-sharding
  /// single-worker service, bit-for-bit).
  std::size_t shards = 1;
  /// testbed:: topology site each shard is pinned to, cycled when shorter
  /// than `shards`. Empty: testbed::shard_sites() (the two principal
  /// Chameleon sites, alternating).
  std::vector<std::string> sites;
  /// Virtual ring points per shard (consistent-hash smoothing).
  std::size_t ring_replicas = 64;
  /// Heartbeat cadence and death timeout for the health monitor. The
  /// monitor only runs when `site_probe` is set — with no probe there is
  /// nothing that can fail.
  HealthOptions health;
  /// Reachability of a shard's pinned site at virtual time `now`; wire to
  /// a chaos-partitioned network, e.g.
  ///   opt.site_probe = [&net](const std::string& site, double) {
  ///     return net.route(testbed::kCampusGateway, site).has_value();
  ///   };
  /// Drives BOTH the per-batch breaker probe and the health monitor's
  /// heartbeats. Unset: fall back to continuum.cloud_probe (all sites
  /// share one cloud), else always reachable.
  std::function<bool(const std::string& site, double now)> site_probe;

  void validate() const;
};

class FleetService {
 public:
  /// Single-registry mode: every shard worker reads `registry` (shared,
  /// unreplicated — canary rollouts need the replicated constructor).
  /// The service borrows the queue so tests can co-schedule hot-swaps or
  /// chaos on the same clock.
  FleetService(util::EventQueue& queue, ModelRegistry& registry,
               FleetOptions options);

  /// Replicated mode: shard i reads `registry.shard(i)`; the registry
  /// must have exactly options.shards replicas. This is the path canary
  /// rollouts and rollbacks run through.
  FleetService(util::EventQueue& queue, ReplicatedRegistry& registry,
               FleetOptions options);

  /// Runs the full scenario: arrivals for duration_s, then drains the
  /// queue (partial batches force-flush). Call once.
  ServeReport run();

  /// Shard 0's breaker (single-shard compatibility accessor).
  const fault::CircuitBreaker& breaker() const { return breaker(0); }
  const fault::CircuitBreaker& breaker(std::size_t shard) const;
  const ShardRouter& router() const { return router_; }
  /// Null when no site_probe was configured.
  const HealthMonitor* health() const { return health_.get(); }

 private:
  struct Shard {
    std::string site;
    ModelRegistry* registry = nullptr;
    std::unique_ptr<DynamicBatcher> batcher;
    std::unique_ptr<fault::CircuitBreaker> breaker;
    util::Rng jitter_rng{0};
    bool busy = false;
    bool deadline_armed = false;
    bool awaiting_recovery = false;
    std::size_t denied_batches = 0;
    std::size_t cloud_requests = 0;
    double recovery_latency_s = 0.0;
  };

  void init(std::vector<ModelRegistry*> registries);
  void schedule_arrival(std::size_t car);
  void on_arrival(std::size_t car);
  void shed_request(ServeRequest request, std::size_t shard);
  void try_dispatch(std::size_t shard);
  void arm_deadline(std::size_t shard);
  void dispatch_batch(std::size_t shard);
  Tier choose_tier(std::size_t shard, double now, std::size_t batch,
                   std::uint64_t flops, gpu::Precision precision);
  bool site_reachable(std::size_t shard, double now) const;
  void on_shard_down(std::size_t shard);
  void on_shard_up(std::size_t shard);
  void deliver(ServeRecord record);
  void set_queue_gauge(std::size_t shard);
  ml::Sample make_sample(util::Rng& rng,
                         const ml::DrivingModel& model) const;
  std::uint64_t scaled_flops(const ml::DrivingModel& model) const;

  util::EventQueue& queue_;
  FleetOptions options_;
  ShardRouter router_;
  std::vector<Shard> shards_;
  std::unique_ptr<HealthMonitor> health_;
  util::Rng rng_;
  std::vector<util::Rng> car_rng_;

  std::uint64_t next_id_ = 1;
  bool draining_ = false;
  bool ran_ = false;

  ServeReport report_;
};

}  // namespace autolearn::serve
